// Package stripetier composes N child core.Backends into one striped,
// replicated backend with transparent failover — the multi-FSN fan-out the
// simulator already models (internal/storage) brought to the real server
// stack. Writes are split into block-aligned stripes and each stripe is
// written to R members (chain order rotated per stripe so load spreads);
// reads recombine stripes and fail over to a surviving replica on error. A
// per-member health tracker ejects members that keep failing and re-admits
// them after successful half-open probes, and a background repair loop
// re-replicates stripes whose replica count dropped while a member was out.
//
// All health decisions are driven by observed operation results on a
// logical op-count clock — never the wall clock — so the whole subsystem
// stays deterministic and replayable under the repository's simclock
// discipline.
package stripetier

// span is one stripe-aligned piece of a byte range: the part of stripe
// number stripe covering buf[bufLo:bufHi] at logical offset off. Members
// store stripes at their logical offsets (a sparse layout), so off is both
// the logical and the member-local offset; what striping changes is only
// which members hold the bytes.
type span struct {
	stripe int64
	off    int64
	bufLo  int
	bufHi  int
}

// spans splits the range [off, off+n) into per-stripe pieces in ascending
// stripe order. stripeSize must be positive.
func spans(off int64, n int, stripeSize int64) []span {
	if n <= 0 {
		return nil
	}
	out := make([]span, 0, int64(n)/stripeSize+2)
	pos := off
	end := off + int64(n)
	for pos < end {
		s := pos / stripeSize
		stripeEnd := (s + 1) * stripeSize
		if stripeEnd > end {
			stripeEnd = end
		}
		out = append(out, span{
			stripe: s,
			off:    pos,
			bufLo:  int(pos - off),
			bufHi:  int(stripeEnd - off),
		})
		pos = stripeEnd
	}
	return out
}

// replicaChain returns the members holding stripe s, primary first. The
// chain starts at s mod n and wraps, so consecutive stripes rotate their
// primary (and every replica position) across the membership — the load
// spread GPFS gets from rotating first-server placement per file, applied
// per stripe.
func replicaChain(s int64, members, replicas int) []int {
	if replicas > members {
		replicas = members
	}
	chain := make([]int, replicas)
	first := int(s % int64(members))
	for i := range chain {
		chain[i] = (first + i) % members
	}
	return chain
}
