package stripetier

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/core/fault"
)

// TestFailoverEndToEnd is the ISSUE's demo scenario over the full TCP
// stack: a forwarding server fronts a 4-member tier with 2 replicas while
// member 2 is scripted (via the seeded fault backend's op-index window) to
// fail 100% of its ops mid-run. The client must see zero errors, member 2
// must visibly eject and later re-admit, the repair counter must move, and
// every byte must read back intact.
func TestFailoverEndToEnd(t *testing.T) {
	const (
		stripeSize = 4096
		members    = 4
		blocks     = 64
	)
	backing := make([]*core.MemBackend, members)
	tierMembers := make([]core.Backend, members)
	for i := range tierMembers {
		backing[i] = core.NewMemBackend()
		if i == 2 {
			// Ops 10..39 on member 2 fail with EIO — a deterministic
			// outage window, no wall clock involved. The member's op
			// index freezes while it is ejected, so the probes that
			// eventually land past op 40 succeed and drive readmission.
			tierMembers[i] = fault.New(backing[i], fault.Config{
				Seed:    fault.DeriveSeed(7, i),
				ErrRate: 1,
				From:    10,
				Until:   40,
			})
		} else {
			tierMembers[i] = backing[i]
		}
	}
	tier, err := New(tierMembers, Config{
		StripeSize: stripeSize,
		Replicas:   2,
		Health:     testHealthCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	srv := core.NewServer(core.Config{Mode: core.ModeWorkQueue, Workers: 4, Backend: tier})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	cl, err := core.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f, err := cl.Open(context.Background(), "checkpoint/rank0000")
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: stream the checkpoint. Member 2 starts failing at its 10th
	// op; every client write must still succeed via the surviving replica.
	buf := make([]byte, stripeSize)
	for i := 0; i < blocks; i++ {
		off := int64(i) * stripeSize
		fill(buf, off)
		if n, err := f.WriteAt(buf, off); err != nil || n != stripeSize {
			t.Fatalf("write block %d: n=%d err=%v (client must never see the outage)", i, n, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if st := tier.Stats(); st.Ejections == 0 || st.DegradedWrites == 0 {
		t.Fatalf("outage left no trace: ejections=%d degraded=%d", st.Ejections, st.DegradedWrites)
	}
	sawEjected := tier.MemberState(2) == StateEjected

	// Phase 2: read the checkpoint back, repeatedly. Reads fail over around
	// the ejected member and — being traffic — advance the logical clock
	// through the probe backoff; once member 2's fault window is exhausted
	// the probes succeed, it re-admits, and the repair loop restores the
	// stripes it missed.
	deadline := time.Now().Add(15 * time.Second)
	got := make([]byte, stripeSize)
	want := make([]byte, stripeSize)
	for {
		for i := 0; i < blocks; i++ {
			off := int64(i) * stripeSize
			if n, err := f.ReadAt(got, off); err != nil || n != stripeSize {
				t.Fatalf("read block %d: n=%d err=%v (client must never see the outage)", i, n, err)
			}
			fill(want, off)
			if !bytes.Equal(got, want) {
				t.Fatalf("read block %d: data mismatch", i)
			}
		}
		if tier.MemberState(2) == StateEjected {
			sawEjected = true
		}
		s := tier.Stats()
		if s.MemberStates[2] == StateHealthy && s.PendingRepairs == 0 && s.Repairs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("member 2 never recovered: %+v", s)
		}
	}
	if !sawEjected {
		t.Fatal("member 2 was never observed ejected")
	}
	s := tier.Stats()
	if s.Readmissions == 0 {
		t.Fatalf("no readmission recorded: %+v", s)
	}
	if s.ReadFailovers == 0 {
		t.Fatalf("no read failovers recorded: %+v", s)
	}

	// Member 2's backing store must hold the repaired bytes for every
	// stripe it replicates.
	data, ok := backing[2].Bytes("checkpoint/rank0000")
	if !ok {
		t.Fatal("member 2 holds no object after repair")
	}
	for st := int64(0); st < blocks; st++ {
		inChain := false
		for _, m := range replicaChain(st, members, 2) {
			if m == 2 {
				inChain = true
			}
		}
		if !inChain {
			continue
		}
		lo, hi := st*stripeSize, (st+1)*stripeSize
		if int64(len(data)) < hi {
			t.Fatalf("member 2 data ends at %d, stripe %d needs %d", len(data), st, hi)
		}
		fill(want, lo)
		if !bytes.Equal(data[lo:hi], want) {
			t.Fatalf("member 2 stripe %d stale after repair", st)
		}
	}
}

// fill writes the offset-dependent test pattern into buf.
func fill(buf []byte, off int64) {
	for i := range buf {
		buf[i] = byte(1 + (off+int64(i))%251)
	}
}
