package stripetier

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

func TestJournalEntryRoundTrip(t *testing.T) {
	keys := []repairKey{
		{name: "a", stripe: 0, member: 0},
		{name: "some/long/object-name", stripe: 1 << 40, member: 17},
	}
	for _, k := range keys {
		for _, op := range []byte{journalAdd, journalDel} {
			gotOp, gotK, err := decodeJournalEntry(encodeJournalEntry(op, k))
			if err != nil {
				t.Fatalf("decode(%d, %+v): %v", op, k, err)
			}
			if gotOp != op || gotK != k {
				t.Fatalf("round trip: got (%d, %+v), want (%d, %+v)", gotOp, gotK, op, k)
			}
		}
	}
	for _, bad := range [][]byte{
		nil,
		{journalAdd},
		{9, 0, 1, 'x', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},        // unknown op
		{journalAdd, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // empty name
		encodeJournalEntry(journalAdd, keys[0])[:10],              // truncated
	} {
		if _, _, err := decodeJournalEntry(bad); err == nil {
			t.Fatalf("decode accepted bad payload %v", bad)
		}
	}
}

// newPersistTier builds a 2-member, 2-replica tier whose pending set is
// journaled at path.
func newPersistTier(t *testing.T, path string, mems []*core.MemBackend) (*Tier, []*flakyMember) {
	t.Helper()
	flaky := make([]*flakyMember, len(mems))
	members := make([]core.Backend, len(mems))
	for i := range mems {
		flaky[i] = &flakyMember{inner: mems[i]}
		members[i] = flaky[i]
	}
	tier, err := New(members, Config{
		StripeSize:     16,
		Replicas:       2,
		Health:         testHealthCfg(),
		PendingJournal: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tier, flaky
}

func waitPendingDrained(t *testing.T, tier *Tier) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tier.repair.pendingCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending set never drained (%d left)", tier.repair.pendingCount())
		}
		tier.repair.kickNow()
		time.Sleep(time.Millisecond)
	}
}

// TestPendingSetSurvivesRestart is the satellite's core promise: a stale
// replica marked for repair before a restart is still marked — and gets
// repaired — after one.
func TestPendingSetSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pending.journal")
	mems := []*core.MemBackend{core.NewMemBackend(), core.NewMemBackend()}

	tier, flaky := newPersistTier(t, path, mems)
	flaky[1].fail.Store(true) // member 1 drops its replica writes
	h, err := tier.Open("obj", true)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(0, 16)
	if n, err := h.WriteAt(data, 0); err != nil || n != 16 {
		t.Fatalf("degraded write: n=%d err=%v", n, err)
	}
	if !tier.repair.isPending("obj", 0, 1) {
		t.Fatal("failed replica write did not queue a repair")
	}
	_ = h.Close()
	// Close with member 1 still sick: the entry must stay durably queued.
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	if got, ok := mems[1].Bytes("obj"); ok && len(got) > 0 {
		t.Fatal("member 1 has bytes it never acknowledged")
	}

	// Restart over the same members, member 1 healthy again. The journal
	// must reload the pending entry and the kicked repair loop drain it.
	tier2, _ := newPersistTier(t, path, mems)
	defer tier2.Close()
	if !tier2.repair.isPending("obj", 0, 1) {
		t.Fatal("pending entry lost across restart")
	}
	waitPendingDrained(t, tier2)
	got, ok := mems[1].Bytes("obj")
	if !ok || !bytes.Equal(got[:16], data) {
		t.Fatalf("member 1 not repaired after restart (ok=%v len=%d)", ok, len(got))
	}
}

// TestJournalTornTailTolerated hand-writes a journal whose last entry is
// cut mid-frame: loading must keep everything before the tear.
func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pending.journal")
	k1 := repairKey{name: "obj", stripe: 1, member: 0}
	k2 := repairKey{name: "obj", stripe: 2, member: 1}
	var buf bytes.Buffer
	if err := wal.AppendFrame(&buf, encodeJournalEntry(journalAdd, k1)); err != nil {
		t.Fatal(err)
	}
	if err := wal.AppendFrame(&buf, encodeJournalEntry(journalAdd, k2)); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-5]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	set, err := loadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("loaded %d entries, want 1 (tail torn)", len(set))
	}
	if _, ok := set[k1]; !ok {
		t.Fatalf("intact entry missing from %v", set)
	}
}

// TestJournalCompactsOnLoad: dels and dead adds are dropped by the rewrite
// in openJournal, leaving one frame per live entry.
func TestJournalCompactsOnLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pending.journal")
	live := repairKey{name: "obj", stripe: 3, member: 1}
	dead := repairKey{name: "obj", stripe: 4, member: 0}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		op byte
		k  repairKey
	}{{journalAdd, dead}, {journalAdd, live}, {journalDel, dead}} {
		if err := wal.AppendFrame(f, encodeJournalEntry(e.op, e.k)); err != nil {
			t.Fatal(err)
		}
	}
	_ = f.Close()

	set, jf, err := openJournal(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if len(set) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(set))
	}
	if _, ok := set[live]; !ok {
		t.Fatalf("live entry missing from %v", set)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	oneFrame := int64(8 + len(encodeJournalEntry(journalAdd, live)))
	if info.Size() != oneFrame {
		t.Fatalf("compacted journal is %d bytes, want exactly one frame (%d)", info.Size(), oneFrame)
	}
}

// TestJournalDropsOutOfBoundsMembers: entries recorded under a larger tier
// must not be replayed into a smaller one.
func TestJournalDropsOutOfBoundsMembers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pending.journal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []repairKey{
		{name: "obj", stripe: 0, member: 1},
		{name: "obj", stripe: 0, member: 7}, // beyond the 2-member tier
	} {
		if err := wal.AppendFrame(f, encodeJournalEntry(journalAdd, k)); err != nil {
			t.Fatal(err)
		}
	}
	_ = f.Close()

	mems := []*core.MemBackend{core.NewMemBackend(), core.NewMemBackend()}
	tier, _ := newPersistTier(t, path, mems)
	if tier.repair.isPending("obj", 0, 7) {
		t.Fatal("out-of-bounds member survived the reload")
	}
	if !tier.repair.isPending("obj", 0, 1) {
		t.Fatal("in-bounds entry dropped by the reload")
	}
	tier.Close()
	// The entry is filtered before the compaction rewrite, so it must be
	// gone from the on-disk journal too — not just the in-memory set —
	// or it would linger across every restart.
	reloaded, err := loadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reloaded[repairKey{name: "obj", stripe: 0, member: 7}]; ok {
		t.Fatal("out-of-bounds entry survived the compaction rewrite on disk")
	}
	if _, ok := reloaded[repairKey{name: "obj", stripe: 0, member: 1}]; !ok {
		t.Fatal("in-bounds entry missing from the compacted journal")
	}
}
