package stripetier

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// Config tunes the tier. The zero value gets 64 KiB stripes and a
// replication factor of 2 (capped at the member count).
type Config struct {
	// StripeSize is the block-aligned striping unit in bytes (default
	// 64 KiB). Writes are split on stripe boundaries; each stripe lives on
	// Replicas members.
	StripeSize int64
	// Replicas is how many members hold each stripe (default 2, capped at
	// the member count). 1 means pure striping with no redundancy.
	Replicas int
	// Health tunes the per-member ejection state machine.
	Health HealthConfig
	// PendingJournal, when non-empty, persists the repair pending set to
	// this file (WAL frame codec, see persist.go) so replica-staleness
	// markers survive a daemon restart. Empty keeps the set in memory only.
	PendingJournal string
}

// Tier is a striped, replicated composite over N child backends. It
// implements core.Backend, so a Server drives it exactly like a single
// target — the degraded-mode behaviour (ejection, failover, repair) is
// invisible to the protocol.
type Tier struct {
	members []core.Backend
	cfg     Config
	health  *health
	metrics *tierMetrics
	repair  *repairer
}

// Stats is a snapshot of the tier's counters, for tests and status lines.
type Stats struct {
	ReadFailovers  uint64
	Repairs        uint64
	RepairFailures uint64
	DegradedWrites uint64
	Ejections      uint64
	Readmissions   uint64
	PendingRepairs int64
	MemberStates   []State
}

// New builds a tier over members and starts its repair loop. Call Close to
// stop it.
func New(members []core.Backend, cfg Config) (*Tier, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("stripetier: no members")
	}
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = 64 << 10
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(members) {
		cfg.Replicas = len(members)
	}
	t := &Tier{
		members: members,
		cfg:     cfg,
		health:  newHealth(len(members), cfg.Health),
		metrics: newTierMetrics(len(members)),
	}
	t.health.onTransition = t.onTransition
	r, err := newRepairer(t, cfg.PendingJournal)
	if err != nil {
		return nil, err
	}
	t.repair = r
	go t.repair.loop()
	if t.repair.pendingCount() > 0 {
		// Entries reloaded from the journal: start draining immediately
		// instead of waiting for the first degraded write.
		t.repair.kickNow()
	}
	return t, nil
}

// Close stops the background repair loop. With PendingJournal set, queued
// repairs persist and a restart resumes them; otherwise they are dropped.
func (t *Tier) Close() error {
	t.repair.close()
	return nil
}

// Members returns the member count.
func (t *Tier) Members() int { return len(t.members) }

// MemberState returns member m's current health state.
func (t *Tier) MemberState(m int) State { return t.health.state(m) }

// Stats returns a snapshot of the tier counters.
func (t *Tier) Stats() Stats {
	s := Stats{
		ReadFailovers:  t.metrics.readFailovers.Value(),
		Repairs:        t.metrics.repairs.Value(),
		RepairFailures: t.metrics.repairErrs.Value(),
		DegradedWrites: t.metrics.degraded.Value(),
		Ejections:      t.metrics.ejections.Value(),
		Readmissions:   t.metrics.readmissions.Value(),
		PendingRepairs: t.repair.pendingCount(),
		MemberStates:   make([]State, len(t.members)),
	}
	for i := range t.members {
		s.MemberStates[i] = t.health.state(i)
	}
	return s
}

// Open implements core.Backend. With create set it succeeds immediately
// (member objects are created lazily on first write); without it, the
// object must be readable on at least one reachable member.
func (t *Tier) Open(name string, create bool) (core.Handle, error) {
	h := &tierHandle{t: t, name: name, create: create, handles: make([]core.Handle, len(t.members))}
	if create {
		return h, nil
	}
	var lastErr error
	found := false
	for m := range t.members {
		ok, probe := t.health.allowed(m)
		if !ok {
			continue
		}
		mh, err := t.members[m].Open(name, false)
		t.recordOp(m, probe, ignoreNotFound(err))
		if err != nil {
			if !isNotFound(err) {
				lastErr = err
			}
			continue
		}
		h.handles[m] = mh
		found = true
	}
	if !found {
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, core.ENOENT
	}
	return h, nil
}

// tierHandle is one open object across the membership. Member handles open
// lazily, so a member ejected at Open time is simply absent until traffic
// (or repair) reaches it again.
type tierHandle struct {
	t      *Tier
	name   string
	create bool

	mu      sync.RWMutex
	handles []core.Handle
}

// member returns the (lazily opened) handle on member m. The fast path is a
// read lock only — every data op of every stripe passes through here, so a
// write lock would serialize the whole tier on one cache line. The open
// itself happens outside the lock — a stalling member must not serialize
// the other replicas — and a racing duplicate open is closed.
func (h *tierHandle) member(m int, forWrite bool) (core.Handle, error) {
	h.mu.RLock()
	mh := h.handles[m]
	h.mu.RUnlock()
	if mh != nil {
		return mh, nil
	}
	mh, err := h.t.members[m].Open(h.name, h.create || forWrite)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	if cur := h.handles[m]; cur != nil {
		h.mu.Unlock()
		_ = mh.Close()
		return cur, nil
	}
	h.handles[m] = mh
	h.mu.Unlock()
	return mh, nil
}

// WriteAt stripes b across the membership: each stripe-aligned piece goes
// to its rotated replica chain. A piece succeeds when at least one replica
// accepts it; missed replicas (ejected members, failed writes) are queued
// for repair and the write is acknowledged degraded. Only when every
// replica of some piece fails does the write error.
func (h *tierHandle) WriteAt(b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, core.EINVAL
	}
	t := h.t
	written := 0
	for _, sp := range spans(off, len(b), t.cfg.StripeSize) {
		chain := replicaChain(sp.stripe, len(t.members), t.cfg.Replicas)
		okCount := 0
		for _, m := range chain {
			ok, probe := t.health.allowed(m)
			if !ok {
				t.repair.enqueue(h.name, sp.stripe, m)
				continue
			}
			mh, err := h.member(m, true)
			if err == nil {
				// Bump the member's pending version (if queued for repair)
				// before the bytes land: an in-flight repair holding an
				// older survivor snapshot must see the bump and keep the
				// entry, instead of overwriting this write and marking the
				// member clean — see repairer.touch.
				t.repair.touch(h.name, sp.stripe, m)
				piece := b[sp.bufLo:sp.bufHi]
				var n int
				n, err = mh.WriteAt(piece, sp.off)
				if err == nil && n < len(piece) {
					err = fmt.Errorf("%w: short replica write (%d of %d bytes)", core.EIO, n, len(piece))
				}
			}
			t.recordOp(m, probe, err)
			if err != nil {
				t.repair.enqueue(h.name, sp.stripe, m)
				continue
			}
			// A replica already queued for repair stays queued even after
			// this successful write: the new piece may cover only part of
			// the stripe, and repair copies the whole stripe anyway.
			okCount++
		}
		if okCount == 0 {
			return written, fmt.Errorf("%w: stripe %d: no replica accepted the write", core.EIO, sp.stripe)
		}
		if okCount < len(chain) {
			t.metrics.degraded.Inc()
		}
		written = sp.bufHi
	}
	return written, nil
}

// ReadAt recombines b from the stripes holding [off, off+len(b)). Each
// piece is served by the first replica in chain order that is healthy,
// not stale (queued for repair), and actually returns the data; failing
// or skipped replicas fail the read over to the next one. A stripe whose
// chain holds less data than requested is checked against the logical
// object size: below it the gap is a hole (chain members of a sparse
// object that never received a write) and reads as zeros, at or past it
// the read ends short with a nil error — exactly the single-target
// backends' sparse semantics.
func (h *tierHandle) ReadAt(b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, core.EINVAL
	}
	t := h.t
	total := 0
	logSize := int64(-1) // lazily computed, at most once per call
	for _, sp := range spans(off, len(b), t.cfg.StripeSize) {
		chain := replicaChain(sp.stripe, len(t.members), t.cfg.Replicas)
		got := -1
		skipped := 0
		sawEmpty := false
		var lastErr error
		for _, m := range chain {
			// The staleness check comes before the health gate: allowed()
			// hands out the half-open probe slot, which must not be taken
			// for a replica we would skip anyway. Skipping a stale replica
			// also kicks the repair loop: read-only traffic must be able
			// to drain the pending set too.
			if t.repair.isPending(h.name, sp.stripe, m) {
				skipped++
				t.repair.kickNow()
				continue
			}
			ok, probe := t.health.allowed(m)
			if !ok {
				skipped++
				continue
			}
			mh, err := h.member(m, false)
			if err != nil {
				t.recordOp(m, probe, ignoreNotFound(err))
				if isNotFound(err) {
					sawEmpty = true
				} else {
					lastErr = err
				}
				skipped++
				continue
			}
			n, err := mh.ReadAt(b[sp.bufLo:sp.bufHi], sp.off)
			t.recordOp(m, probe, err)
			if err != nil {
				lastErr = err
				skipped++
				continue
			}
			got = n
			break
		}
		if got < 0 {
			if lastErr != nil || !sawEmpty {
				// A replica that failed (or was skipped wholesale) may hold
				// the data: this is an I/O failure, not absence.
				return total, fmt.Errorf("%w: stripe %d: no replica readable: %v", core.EIO, sp.stripe, lastErr)
			}
			// Every reachable chain member reports the object absent. With
			// more members than replicas this can be a hole stripe of a
			// sparse object whose later stripes hold data — fall through to
			// the size check with zero bytes read rather than ending early.
			got = 0
		} else if skipped > 0 {
			t.metrics.readFailovers.Inc()
		}
		total += got
		if want := sp.bufHi - sp.bufLo; got < want {
			if logSize < 0 {
				sz, err := h.Size()
				if err != nil {
					return total, err
				}
				logSize = sz
			}
			readEnd := sp.off + int64(got)
			if readEnd >= logSize {
				return total, nil
			}
			// Hole: zero-fill up to the logical size (or the span end) and
			// keep going.
			fillEnd := sp.off + int64(want)
			if logSize < fillEnd {
				fillEnd = logSize
			}
			hole := b[sp.bufLo+got : sp.bufLo+int(fillEnd-sp.off)]
			for i := range hole {
				hole[i] = 0
			}
			total += len(hole)
			if fillEnd < sp.off+int64(want) {
				return total, nil
			}
		}
	}
	return total, nil
}

// Sync flushes every member handle this tier handle has written through.
// It fails only when the failure count reaches the replication factor —
// below that, every stripe still has at least one synced replica.
func (h *tierHandle) Sync() error {
	t := h.t
	h.mu.RLock()
	open := make([]int, 0, len(h.handles))
	for m, mh := range h.handles {
		if mh != nil {
			open = append(open, m)
		}
	}
	h.mu.RUnlock()
	attempts, failures := 0, 0
	var firstErr error
	for _, m := range open {
		ok, probe := t.health.allowed(m)
		if !ok {
			continue
		}
		mh, err := h.member(m, false)
		if err == nil {
			err = mh.Sync()
		}
		t.recordOp(m, probe, err)
		attempts++
		if err != nil {
			failures++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if len(open) > 0 && attempts == 0 {
		// Data went through member handles but no member would take a sync:
		// acknowledging durability here would be a lie.
		return fmt.Errorf("%w: no member reachable to sync (%d member handles open)", core.EIO, len(open))
	}
	if failures > 0 && (failures >= t.cfg.Replicas || failures == attempts) {
		return fmt.Errorf("%w: %d of %d member syncs failed: %v", core.EIO, failures, attempts, firstErr)
	}
	return nil
}

// Size returns the logical object size: the maximum extent over reachable
// members. Members store stripes at their logical offsets (sparse layout),
// so whichever replica holds the final stripe reports the full size.
func (h *tierHandle) Size() (int64, error) {
	t := h.t
	best := int64(-1)
	var lastErr error
	for m := range t.members {
		ok, probe := t.health.allowed(m)
		if !ok {
			continue
		}
		mh, err := h.member(m, false)
		if err != nil {
			t.recordOp(m, probe, ignoreNotFound(err))
			if isNotFound(err) && best < 0 {
				best = 0
			} else if !isNotFound(err) {
				lastErr = err
			}
			continue
		}
		sz, err := mh.Size()
		t.recordOp(m, probe, err)
		if err != nil {
			lastErr = err
			continue
		}
		if sz > best {
			best = sz
		}
	}
	if best < 0 {
		if lastErr != nil {
			return 0, lastErr
		}
		return 0, fmt.Errorf("%w: no member reachable for size", core.EIO)
	}
	return best, nil
}

// Close closes the open member handles. Errors from unhealthy members are
// dropped (their data is already queued for repair); the first error from
// a healthy member is returned.
func (h *tierHandle) Close() error {
	h.mu.Lock()
	handles := make([]core.Handle, len(h.handles))
	copy(handles, h.handles)
	for m := range h.handles {
		h.handles[m] = nil
	}
	h.mu.Unlock()
	var firstErr error
	for m, mh := range handles {
		if mh == nil {
			continue
		}
		if err := mh.Close(); err != nil && firstErr == nil && h.t.health.state(m) == StateHealthy {
			firstErr = err
		}
	}
	return firstErr
}

// isNotFound reports whether err is the backend's object-absent answer.
func isNotFound(err error) bool { return errors.Is(err, core.ENOENT) }

// ignoreNotFound maps ENOENT to success for health accounting: a member
// that does not hold an object is healthy, not failing.
func ignoreNotFound(err error) error {
	if isNotFound(err) {
		return nil
	}
	return err
}
