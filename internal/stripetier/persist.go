package stripetier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/wal"
)

// The repair pending set is a staleness marker: a replica queued here must
// not serve reads, because it holds older bytes (or none) for its stripe.
// Losing the set across a restart therefore silently re-admits stale
// replicas. With Config.PendingJournal set, the set is mirrored to an
// append-only journal of add/del entries using the WAL frame codec
// (length-prefixed CRC32C — torn tails are detected and discarded exactly
// like WAL segments), loaded on startup, and compacted when the dead-entry
// ratio grows.
//
// Durability policy: an "add" is fsynced before the entry takes effect —
// a write acknowledged as degraded must leave a durable stale marker, or
// a crash would let the skipped replica serve garbage. A "del" is not
// fsynced: losing one merely re-repairs an already-whole replica.
//
// Journal entry payload (inside a wal frame):
//
//	0 op     uint8    1 = add, 2 = del
//	1 nameLen uint16
//	3 name   ...
//	. stripe uint64
//	. member uint32
const (
	journalAdd = 1
	journalDel = 2
)

// encodeJournalEntry builds one pending-set journal payload.
func encodeJournalEntry(op byte, k repairKey) []byte {
	buf := make([]byte, 1+2+len(k.name)+8+4)
	buf[0] = op
	binary.BigEndian.PutUint16(buf[1:], uint16(len(k.name)))
	at := 3 + copy(buf[3:], k.name)
	binary.BigEndian.PutUint64(buf[at:], uint64(k.stripe))
	binary.BigEndian.PutUint32(buf[at+8:], uint32(k.member))
	return buf
}

// decodeJournalEntry parses one journal payload.
func decodeJournalEntry(payload []byte) (op byte, k repairKey, err error) {
	if len(payload) < 3 {
		return 0, k, fmt.Errorf("%w: short journal entry", core.EIO)
	}
	op = payload[0]
	if op != journalAdd && op != journalDel {
		return 0, k, fmt.Errorf("%w: bad journal op %d", core.EIO, op)
	}
	nameLen := int(binary.BigEndian.Uint16(payload[1:]))
	if nameLen == 0 || len(payload) != 3+nameLen+8+4 {
		return 0, k, fmt.Errorf("%w: journal entry length mismatch", core.EIO)
	}
	k.name = string(payload[3 : 3+nameLen])
	k.stripe = int64(binary.BigEndian.Uint64(payload[3+nameLen:]))
	k.member = int(binary.BigEndian.Uint32(payload[3+nameLen+8:]))
	if k.stripe < 0 || k.member < 0 {
		return 0, k, fmt.Errorf("%w: journal entry out of range", core.EIO)
	}
	return op, k, nil
}

// loadJournal replays an existing journal file into a pending set. A torn
// tail (partial last entry from a crash mid-append) ends the scan cleanly;
// everything before it is intact by CRC. A missing file is an empty set.
func loadJournal(path string) (map[repairKey]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return make(map[repairKey]uint64), nil
		}
		return nil, fmt.Errorf("%w: opening pending journal: %v", core.EIO, err)
	}
	defer f.Close()
	set := make(map[repairKey]uint64)
	sc := wal.NewScanner(f)
	for {
		payload, err := sc.Next()
		if err != nil {
			if err == io.EOF || errors.Is(err, wal.ErrTorn) {
				break
			}
			return nil, err
		}
		op, k, derr := decodeJournalEntry(payload)
		if derr != nil {
			break // corrupt past-the-CRC entry: treat like a torn tail
		}
		switch op {
		case journalAdd:
			set[k] = 1
		case journalDel:
			delete(set, k)
		}
	}
	return set, nil
}

// openJournal loads path, compacts it (rewriting only the live adds, so
// startup drops the accumulated dels and any torn tail), and returns the
// loaded set plus the journal open for appending. Entries whose member is
// outside [0, nMembers) — a journal written under a larger tier — are
// dropped before the compaction rewrite, so they neither linger on disk
// across restarts nor enter the in-memory set they could never repair.
func openJournal(path string, nMembers int) (map[repairKey]uint64, *os.File, error) {
	set, err := loadJournal(path)
	if err != nil {
		return nil, nil, err
	}
	for k := range set {
		if k.member >= nMembers {
			delete(set, k)
		}
	}
	f, err := rewriteJournal(path, set)
	if err != nil {
		return nil, nil, err
	}
	return set, f, nil
}

// rewriteJournal atomically replaces path with a compacted journal holding
// one add per live entry and returns it open for appending.
func rewriteJournal(path string, set map[repairKey]uint64) (*os.File, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: creating pending journal: %v", core.EIO, err)
	}
	for k := range set {
		if err := wal.AppendFrame(f, encodeJournalEntry(journalAdd, k)); err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
			return nil, err
		}
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return nil, fmt.Errorf("%w: syncing pending journal: %v", core.EIO, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return nil, fmt.Errorf("%w: installing pending journal: %v", core.EIO, err)
	}
	return f, nil
}

// journalAppendLocked mirrors one pending-set mutation to the journal.
// Called with r.mu held (file writes are not on the lockhold blocking
// list, and the journal only sees the degraded path). A journal I/O error
// degrades the set to in-memory-only for this entry and is counted; the
// repair machinery itself keeps working.
func (r *repairer) journalAppendLocked(op byte, k repairKey, fsync bool) {
	if r.journal == nil {
		return
	}
	if err := wal.AppendFrame(r.journal, encodeJournalEntry(op, k)); err != nil {
		r.t.metrics.journalErrs.Inc()
		return
	}
	if fsync {
		if err := r.journal.Sync(); err != nil {
			r.t.metrics.journalErrs.Inc()
			return
		}
	}
	r.journalWrites++
	// Compact once the journal holds several times more entries than the
	// live set (dead adds and dels dominate); the rewrite is small — one
	// frame per live entry.
	if r.journalWrites >= 1024 && r.journalWrites >= 4*(len(r.pending)+1) {
		snapshot := make(map[repairKey]uint64, len(r.pending))
		for key, v := range r.pending {
			snapshot[key] = v
		}
		f, err := rewriteJournal(r.journalPath, snapshot)
		if err != nil {
			r.t.metrics.journalErrs.Inc()
			return
		}
		_ = r.journal.Close()
		r.journal = f
		r.journalWrites = 0
	}
}

// closeJournalLocked releases the journal file.
func (r *repairer) closeJournalLocked() {
	if r.journal != nil {
		_ = r.journal.Close()
		r.journal = nil
	}
}
