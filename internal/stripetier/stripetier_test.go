package stripetier

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// flakyMember wraps a backend with switchable failure injection, for
// deterministic degraded-mode tests (the seeded fault backend is exercised
// in the e2e test; here we want exact control of when a member is sick).
type flakyMember struct {
	inner    core.Backend
	fail     atomic.Bool // data ops return EIO
	failOpen atomic.Bool // opens return EIO
}

func (f *flakyMember) Open(name string, create bool) (core.Handle, error) {
	if f.failOpen.Load() {
		return nil, fmt.Errorf("%w: injected open failure", core.EIO)
	}
	h, err := f.inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &flakyHandle{f: f, inner: h}, nil
}

type flakyHandle struct {
	f     *flakyMember
	inner core.Handle
}

func (h *flakyHandle) WriteAt(b []byte, off int64) (int, error) {
	if h.f.fail.Load() {
		return 0, fmt.Errorf("%w: injected write failure", core.EIO)
	}
	return h.inner.WriteAt(b, off)
}

func (h *flakyHandle) ReadAt(b []byte, off int64) (int, error) {
	if h.f.fail.Load() {
		return 0, fmt.Errorf("%w: injected read failure", core.EIO)
	}
	return h.inner.ReadAt(b, off)
}

func (h *flakyHandle) Sync() error {
	if h.f.fail.Load() {
		return fmt.Errorf("%w: injected sync failure", core.EIO)
	}
	return h.inner.Sync()
}
func (h *flakyHandle) Size() (int64, error) { return h.inner.Size() }
func (h *flakyHandle) Close() error         { return h.inner.Close() }

// pattern fills a deterministic, offset-dependent byte string so stripe
// reassembly errors (wrong member, wrong offset) are always visible.
func pattern(off int64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(1 + (off+int64(i))%251)
	}
	return b
}

// newTestTier builds a tier over n flaky-wrapped MemBackends with a fast
// health config.
func newTestTier(t *testing.T, n, replicas int, stripeSize int64) (*Tier, []*flakyMember, []*core.MemBackend) {
	t.Helper()
	mems := make([]*core.MemBackend, n)
	flaky := make([]*flakyMember, n)
	members := make([]core.Backend, n)
	for i := range members {
		mems[i] = core.NewMemBackend()
		flaky[i] = &flakyMember{inner: mems[i]}
		members[i] = flaky[i]
	}
	tier, err := New(members, Config{
		StripeSize: stripeSize,
		Replicas:   replicas,
		Health:     testHealthCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tier.Close() })
	return tier, flaky, mems
}

func TestStripeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		members, replicas int
		stripe            int64
	}{
		{1, 1, 16}, {2, 1, 16}, {2, 2, 16}, {4, 2, 16}, {5, 3, 32}, {4, 4, 16},
	} {
		name := fmt.Sprintf("n%d_r%d_s%d", tc.members, tc.replicas, tc.stripe)
		t.Run(name, func(t *testing.T) {
			tier, _, _ := newTestTier(t, tc.members, tc.replicas, tc.stripe)
			h, err := tier.Open("obj", true)
			if err != nil {
				t.Fatal(err)
			}
			// Unaligned writes crossing several stripes, out of order.
			writes := []struct {
				off int64
				n   int
			}{{40, 30}, {0, 45}, {100, 7}, {45, 55}}
			max := int64(0)
			for _, w := range writes {
				data := pattern(w.off, w.n)
				n, err := h.WriteAt(data, w.off)
				if err != nil || n != w.n {
					t.Fatalf("WriteAt(%d, %d) = %d, %v", w.off, w.n, n, err)
				}
				if end := w.off + int64(w.n); end > max {
					max = end
				}
			}
			if sz, err := h.Size(); err != nil || sz != max {
				t.Fatalf("Size = %d, %v, want %d", sz, err, max)
			}
			// Full readback.
			got := make([]byte, max)
			n, err := h.ReadAt(got, 0)
			if err != nil || int64(n) != max {
				t.Fatalf("ReadAt full = %d, %v, want %d", n, err, max)
			}
			if !bytes.Equal(got, pattern(0, int(max))) {
				t.Fatal("full readback mismatch")
			}
			// Unaligned partial read crossing stripes.
			got = make([]byte, 50)
			if n, err := h.ReadAt(got, 13); err != nil || n != 50 {
				t.Fatalf("ReadAt(13, 50) = %d, %v", n, err)
			}
			if !bytes.Equal(got, pattern(13, 50)) {
				t.Fatal("partial readback mismatch")
			}
			// Read past EOF is short with nil error (single-target
			// semantics).
			got = make([]byte, 64)
			n, err = h.ReadAt(got, max-10)
			if err != nil || n != 10 {
				t.Fatalf("ReadAt past EOF = %d, %v, want 10, nil", n, err)
			}
			if err := h.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := h.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

func TestStripeOpenSemantics(t *testing.T) {
	tier, _, _ := newTestTier(t, 3, 2, 16)
	if _, err := tier.Open("missing", false); !errors.Is(err, core.ENOENT) {
		t.Fatalf("Open(missing) = %v, want ENOENT", err)
	}
	h, err := tier.Open("obj", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(pattern(0, 40), 0); err != nil {
		t.Fatal(err)
	}
	h2, err := tier.Open("obj", false)
	if err != nil {
		t.Fatalf("Open(existing, create=false): %v", err)
	}
	got := make([]byte, 40)
	if n, err := h2.ReadAt(got, 0); err != nil || n != 40 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, pattern(0, 40)) {
		t.Fatal("readback through second handle mismatch")
	}
}

func TestStripeReadFailover(t *testing.T) {
	tier, flaky, _ := newTestTier(t, 3, 2, 16)
	h, err := tier.Open("obj", true)
	if err != nil {
		t.Fatal(err)
	}
	const size = 96 // stripes 0..5, primaries rotate over the 3 members
	if _, err := h.WriteAt(pattern(0, size), 0); err != nil {
		t.Fatal(err)
	}
	// Member 0 starts failing reads; every stripe it serves as primary
	// (0 and 3) must transparently come from the replica.
	flaky[0].fail.Store(true)
	got := make([]byte, size)
	n, err := h.ReadAt(got, 0)
	if err != nil || n != size {
		t.Fatalf("ReadAt with sick primary = %d, %v", n, err)
	}
	if !bytes.Equal(got, pattern(0, size)) {
		t.Fatal("failover readback mismatch")
	}
	if fo := tier.Stats().ReadFailovers; fo == 0 {
		t.Fatal("no failovers counted")
	}
}

func TestStripeWriteAllReplicasDown(t *testing.T) {
	tier, flaky, _ := newTestTier(t, 2, 2, 16)
	flaky[0].fail.Store(true)
	flaky[1].fail.Store(true)
	h, err := tier.Open("obj", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(pattern(0, 16), 0); !errors.Is(err, core.EIO) {
		t.Fatalf("write with all replicas down = %v, want EIO", err)
	}
	flaky[0].fail.Store(false)
	flaky[1].fail.Store(false)
	if _, err := h.WriteAt(pattern(0, 16), 0); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	// Reads with both members sick also error once data exists.
	flaky[0].fail.Store(true)
	flaky[1].fail.Store(true)
	buf := make([]byte, 16)
	if _, err := h.ReadAt(buf, 0); !errors.Is(err, core.EIO) {
		t.Fatalf("read with all replicas down = %v, want EIO", err)
	}
}

// TestStaleReplicaSkipped is the corruption guard: a write that misses a
// member queues that (stripe, member) for repair, and reads must not be
// served from the stale replica even after the member recovers, until the
// repair has actually run.
func TestStaleReplicaSkipped(t *testing.T) {
	tier, flaky, mems := newTestTier(t, 2, 2, 16)
	h, err := tier.Open("obj", true)
	if err != nil {
		t.Fatal(err)
	}
	// Seed both replicas, then make member 1 miss an overwrite.
	if _, err := h.WriteAt(bytes.Repeat([]byte{0xEE}, 16), 0); err != nil {
		t.Fatal(err)
	}
	flaky[1].fail.Store(true)
	want := pattern(1000, 16)
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	st := tier.Stats()
	if st.DegradedWrites == 0 || st.PendingRepairs == 0 {
		t.Fatalf("degraded=%d pending=%d, want both > 0", st.DegradedWrites, st.PendingRepairs)
	}
	// Member 1 heals, but its copy of stripe 0 is stale (still 0xEE). The
	// repair has not run yet (member 1 is under ejection/probation or the
	// loop has not won the race); reads of stripe 0 must come from member
	// 0 regardless.
	flaky[1].fail.Store(false)
	for i := 0; i < 50; i++ {
		got := make([]byte, 16)
		if n, err := h.ReadAt(got, 0); err != nil || n != 16 {
			t.Fatalf("read %d = %d, %v", i, n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d returned stale replica data", i)
		}
	}
	// Drive traffic until the repair drains (the health clock and probe
	// admission are op-driven), then verify member 1's bytes were fixed.
	deadline := time.Now().Add(10 * time.Second)
	for tier.Stats().PendingRepairs > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("repair did not drain: %+v", tier.Stats())
		}
		buf := make([]byte, 16)
		if _, err := h.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := mems[1].Bytes("obj"); !ok || !bytes.Equal(got[:16], want) {
		t.Fatalf("member 1 not repaired: ok=%v got=%x", ok, got)
	}
	if tier.Stats().Repairs == 0 {
		t.Fatal("repairs counter did not move")
	}
}

// TestStripeEjectionRepairCycle drives the full degraded-mode story at the
// tier level: sick member ejected, writes continue degraded, member heals,
// probes re-admit it, repair restores every missed stripe.
func TestStripeEjectionRepairCycle(t *testing.T) {
	tier, flaky, mems := newTestTier(t, 4, 2, 16)
	h, err := tier.Open("obj", true)
	if err != nil {
		t.Fatal(err)
	}
	flaky[2].fail.Store(true)
	// Write enough stripes that member 2 sees MaxConsecutiveErrs failures
	// and is ejected; every write must still succeed via the replica.
	const blocks = 32
	for i := 0; i < blocks; i++ {
		data := pattern(int64(i)*16, 16)
		if _, err := h.WriteAt(data, int64(i)*16); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if st := tier.MemberState(2); st != StateEjected {
		t.Fatalf("member 2 state %v after sustained failures, want ejected", st)
	}
	st := tier.Stats()
	if st.Ejections == 0 || st.DegradedWrites == 0 {
		t.Fatalf("ejections=%d degraded=%d, want both > 0", st.Ejections, st.DegradedWrites)
	}
	// Heal the member; keep traffic flowing so the logical clock advances
	// through the backoff, the probes, and the repairs.
	flaky[2].fail.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := tier.Stats()
		if s.MemberStates[2] == StateHealthy && s.PendingRepairs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("member 2 never recovered: %+v", s)
		}
		buf := make([]byte, 16)
		if _, err := h.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	s := tier.Stats()
	if s.Readmissions == 0 || s.Repairs == 0 {
		t.Fatalf("readmissions=%d repairs=%d, want both > 0", s.Readmissions, s.Repairs)
	}
	// Every stripe member 2 replicates must now hold the written bytes at
	// its logical offset.
	data, ok := mems[2].Bytes("obj")
	if !ok {
		t.Fatal("member 2 holds no object")
	}
	for s := int64(0); s < blocks; s++ {
		inChain := false
		for _, m := range replicaChain(s, 4, 2) {
			if m == 2 {
				inChain = true
			}
		}
		if !inChain {
			continue
		}
		lo, hi := s*16, (s+1)*16
		if int64(len(data)) < hi {
			t.Fatalf("member 2 data ends at %d, stripe %d needs %d", len(data), s, hi)
		}
		if !bytes.Equal(data[lo:hi], pattern(lo, 16)) {
			t.Fatalf("member 2 stripe %d not repaired", s)
		}
	}
	// Full readback stays correct.
	got := make([]byte, blocks*16)
	if n, err := h.ReadAt(got, 0); err != nil || n != len(got) {
		t.Fatalf("final readback = %d, %v", n, err)
	}
	if !bytes.Equal(got, pattern(0, blocks*16)) {
		t.Fatal("final readback mismatch")
	}
}

// TestStripeAllReplicasPendingDrains covers the all-replicas-pending
// deadlock: a write that fails on every replica (brief outage) queues all
// of them for repair, leaving no fresh copy anywhere. Once the outage
// clears, the pending set must converge on one surviving copy and drain —
// read traffic alone must be enough to drive it — instead of the stripe
// staying EIO forever.
func TestStripeAllReplicasPendingDrains(t *testing.T) {
	tier, flaky, _ := newTestTier(t, 2, 2, 16)
	h, err := tier.Open("obj", true)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(0, 16)
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	// Outage: the overwrite fails on both replicas; the client sees the
	// error, and both members are queued as stale.
	flaky[0].fail.Store(true)
	flaky[1].fail.Store(true)
	if _, err := h.WriteAt(bytes.Repeat([]byte{0xAA}, 16), 0); !errors.Is(err, core.EIO) {
		t.Fatalf("write during outage = %v, want EIO", err)
	}
	if tier.Stats().PendingRepairs != 2 {
		t.Fatalf("pending=%d after all-replica failure, want 2", tier.Stats().PendingRepairs)
	}
	flaky[0].fail.Store(false)
	flaky[1].fail.Store(false)
	// Only reads from here on: they must kick the repair loop until the
	// set drains and then serve the last acknowledged bytes.
	deadline := time.Now().Add(10 * time.Second)
	got := make([]byte, 16)
	for {
		n, err := h.ReadAt(got, 0)
		if err == nil && n == 16 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stripe never became readable again: n=%d err=%v stats=%+v", n, err, tier.Stats())
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-drain read = %x, want last acknowledged write %x", got, want)
	}
	for tier.Stats().PendingRepairs > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending set did not drain: %+v", tier.Stats())
		}
		if _, err := h.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStripeSparseHoleRead covers hole stripes: with more members than
// replicas, a sparse object can have a stripe whose chain members never
// received the object while later stripes hold data. Reads must zero-fill
// the hole and continue — matching single-backend sparse semantics — not
// end early at the hole.
func TestStripeSparseHoleRead(t *testing.T) {
	tier, _, _ := newTestTier(t, 4, 2, 16)
	h, err := tier.Open("obj", true)
	if err != nil {
		t.Fatal(err)
	}
	// Only stripe 2 is written: its chain is members [2,3], so members 0
	// and 1 (stripe 0's whole chain) never see the object.
	data := pattern(32, 16)
	if _, err := h.WriteAt(data, 32); err != nil {
		t.Fatal(err)
	}
	want := append(make([]byte, 32), data...)
	// A fresh read handle exercises the all-ENOENT path (members 0 and 1
	// hold no object at all).
	h2, err := tier.Open("obj", false)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 48)
	if n, err := h2.ReadAt(got, 0); err != nil || n != 48 {
		t.Fatalf("fresh handle ReadAt = %d, %v, want 48, nil", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fresh handle: hole not zero-filled")
	}
	// The writing handle exercises the short-read path (its lazy opens
	// create empty member objects).
	got = make([]byte, 48)
	if n, err := h.ReadAt(got, 0); err != nil || n != 48 {
		t.Fatalf("create handle ReadAt = %d, %v, want 48, nil", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("create handle: hole not zero-filled")
	}
	// Reads at and past the logical size still end short with nil error.
	if n, err := h2.ReadAt(make([]byte, 16), 48); err != nil || n != 0 {
		t.Fatalf("ReadAt past EOF = %d, %v, want 0, nil", n, err)
	}
	if n, err := h2.ReadAt(make([]byte, 32), 40); err != nil || n != 8 {
		t.Fatalf("ReadAt across EOF = %d, %v, want 8, nil", n, err)
	}
}

// TestStripeSyncUnreachable pins Sync's degraded answer: with data written
// through member handles but every member ejected, Sync must not
// acknowledge durability it never attempted.
func TestStripeSyncUnreachable(t *testing.T) {
	tier, flaky, _ := newTestTier(t, 2, 2, 16)
	h, err := tier.Open("obj", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(pattern(0, 16), 0); err != nil {
		t.Fatal(err)
	}
	// Eject both members (MaxConsecutiveErrs failing writes each).
	flaky[0].fail.Store(true)
	flaky[1].fail.Store(true)
	for i := 0; i < 3; i++ {
		if _, err := h.WriteAt(pattern(0, 16), 0); !errors.Is(err, core.EIO) {
			t.Fatalf("write %d during outage = %v, want EIO", i, err)
		}
	}
	if tier.MemberState(0) != StateEjected || tier.MemberState(1) != StateEjected {
		t.Fatalf("states %v/%v, want both ejected", tier.MemberState(0), tier.MemberState(1))
	}
	if err := h.Sync(); !errors.Is(err, core.EIO) {
		t.Fatalf("Sync with no member reachable = %v, want EIO", err)
	}
	// A handle that never wrote anything has nothing to make durable.
	h2, err := tier.Open("empty", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Sync(); err != nil {
		t.Fatalf("Sync of never-written handle = %v, want nil", err)
	}
}

// TestRepairVersioning pins the pending-entry version mechanics that close
// the repair/write TOCTOU: enqueue and touch bump the version of a queued
// entry, touch never creates one, and a repair only deletes an entry whose
// version it saw unchanged.
func TestRepairVersioning(t *testing.T) {
	tier, _, _ := newTestTier(t, 2, 2, 16)
	r := tier.repair
	k := repairKey{"o", 0, 1}
	r.enqueue("o", 0, 1)
	v1, ok := r.version(k)
	if !ok || v1 == 0 {
		t.Fatalf("version after enqueue = %d, %v", v1, ok)
	}
	r.touch("o", 0, 1)
	v2, ok := r.version(k)
	if !ok || v2 <= v1 {
		t.Fatalf("touch did not bump version: %d -> %d", v1, v2)
	}
	r.enqueue("o", 0, 1)
	v3, ok := r.version(k)
	if !ok || v3 <= v2 {
		t.Fatalf("re-enqueue did not bump version: %d -> %d", v2, v3)
	}
	// touch on a key that is not queued must not create an entry.
	r.touch("o", 0, 0)
	if _, ok := r.version(repairKey{"o", 0, 0}); ok {
		t.Fatal("touch created a pending entry")
	}
}

func TestStripeSizeAndNegativeOffsets(t *testing.T) {
	tier, _, _ := newTestTier(t, 2, 2, 16)
	h, err := tier.Open("obj", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte{1}, -1); !errors.Is(err, core.EINVAL) {
		t.Fatalf("WriteAt(-1) = %v, want EINVAL", err)
	}
	if _, err := h.ReadAt(make([]byte, 1), -1); !errors.Is(err, core.EINVAL) {
		t.Fatalf("ReadAt(-1) = %v, want EINVAL", err)
	}
	if sz, err := h.Size(); err != nil || sz != 0 {
		t.Fatalf("Size of empty = %d, %v", sz, err)
	}
}

func TestStripeTierConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("New with no members succeeded")
	}
	tier, err := New([]core.Backend{core.NewMemBackend()}, Config{Replicas: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	if tier.cfg.Replicas != 1 {
		t.Fatalf("replicas %d, want capped to member count 1", tier.cfg.Replicas)
	}
	if tier.cfg.StripeSize != 64<<10 {
		t.Fatalf("default stripe size %d, want 64 KiB", tier.cfg.StripeSize)
	}
}

// TestEnqueueRepairDrainIntoRepair pins the drain-into-repair entry point:
// EnqueueRepair must queue every chain member of every stripe overlapping
// the failed record — after a botched WAL drain the replicas hold an
// unknown mix of old and new bytes, so all of them are stale until the
// repair loop converges them — and the pending set must then drain via the
// stale-replica fallback without losing the stripes' readable bytes.
func TestEnqueueRepairDrainIntoRepair(t *testing.T) {
	tier, _, _ := newTestTier(t, 4, 2, 16)
	h, err := tier.Open("obj", true)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(0, 48)
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	// Degenerate ranges queue nothing.
	if n := tier.EnqueueRepair("", 0, 16); n != 0 {
		t.Fatalf("EnqueueRepair with empty name queued %d entries", n)
	}
	if n := tier.EnqueueRepair("obj", -1, 16); n != 0 {
		t.Fatalf("EnqueueRepair with negative offset queued %d entries", n)
	}
	if n := tier.EnqueueRepair("obj", 0, 0); n != 0 {
		t.Fatalf("EnqueueRepair with zero length queued %d entries", n)
	}
	// [8, 40) overlaps stripes 0, 1, 2: each chain has 2 replicas.
	if n := tier.EnqueueRepair("obj", 8, 32); n != 6 {
		t.Fatalf("EnqueueRepair(8, 32) queued %d entries, want 6", n)
	}
	for s := int64(0); s < 3; s++ {
		for _, m := range replicaChain(s, 4, 2) {
			if !tier.repair.isPending("obj", s, m) {
				t.Fatalf("stripe %d member %d not pending after EnqueueRepair", s, m)
			}
		}
	}
	// Re-enqueueing the same range bumps versions instead of growing the set.
	if n := tier.EnqueueRepair("obj", 8, 32); n != 6 {
		t.Fatalf("second EnqueueRepair queued %d entries, want 6", n)
	}
	if p := tier.Stats().PendingRepairs; p != 6 {
		t.Fatalf("pending=%d after duplicate enqueue, want 6", p)
	}
	// Every chain member is pending, so repairs must converge through the
	// stale-replica fallback; read traffic drives the loop until it drains.
	deadline := time.Now().Add(10 * time.Second)
	got := make([]byte, 48)
	for tier.Stats().PendingRepairs > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending set did not drain: %+v", tier.Stats())
		}
		_, _ = h.ReadAt(got, 0)
	}
	if n, err := h.ReadAt(got, 0); err != nil || n != 48 {
		t.Fatalf("post-repair read = %d, %v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-repair bytes differ from the acknowledged write")
	}
}
