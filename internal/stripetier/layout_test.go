package stripetier

import (
	"reflect"
	"testing"
)

func TestSpans(t *testing.T) {
	cases := []struct {
		off        int64
		n          int
		stripeSize int64
		want       []span
	}{
		{0, 0, 16, nil},
		{0, 10, 16, []span{{0, 0, 0, 10}}},
		{0, 16, 16, []span{{0, 0, 0, 16}}},
		{0, 17, 16, []span{{0, 0, 0, 16}, {1, 16, 16, 17}}},
		{5, 16, 16, []span{{0, 5, 0, 11}, {1, 16, 11, 16}}},
		{16, 16, 16, []span{{1, 16, 0, 16}}},
		{30, 40, 16, []span{{1, 30, 0, 2}, {2, 32, 2, 18}, {3, 48, 18, 34}, {4, 64, 34, 40}}},
	}
	for _, c := range cases {
		got := spans(c.off, c.n, c.stripeSize)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("spans(%d, %d, %d) = %+v, want %+v", c.off, c.n, c.stripeSize, got, c.want)
		}
		// Pieces must tile [off, off+n) exactly.
		covered := 0
		for _, sp := range got {
			if sp.bufLo != covered {
				t.Errorf("spans(%d,%d,%d): gap at bufLo %d", c.off, c.n, c.stripeSize, sp.bufLo)
			}
			if sp.off != c.off+int64(sp.bufLo) {
				t.Errorf("spans(%d,%d,%d): off %d does not match bufLo %d", c.off, c.n, c.stripeSize, sp.off, sp.bufLo)
			}
			covered = sp.bufHi
		}
		if covered != c.n && c.n > 0 {
			t.Errorf("spans(%d,%d,%d): covered %d of %d bytes", c.off, c.n, c.stripeSize, covered, c.n)
		}
	}
}

func TestReplicaChain(t *testing.T) {
	if got := replicaChain(0, 4, 2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("chain(0,4,2) = %v", got)
	}
	if got := replicaChain(3, 4, 2); !reflect.DeepEqual(got, []int{3, 0}) {
		t.Errorf("chain(3,4,2) = %v", got)
	}
	if got := replicaChain(6, 4, 3); !reflect.DeepEqual(got, []int{2, 3, 0}) {
		t.Errorf("chain(6,4,3) = %v", got)
	}
	// Replicas capped at the member count.
	if got := replicaChain(1, 2, 5); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Errorf("chain(1,2,5) = %v", got)
	}
	// Rotation spreads primaries evenly.
	counts := make([]int, 4)
	for s := int64(0); s < 40; s++ {
		counts[replicaChain(s, 4, 2)[0]]++
	}
	for m, c := range counts {
		if c != 10 {
			t.Errorf("member %d is primary for %d of 40 stripes, want 10", m, c)
		}
	}
}
