package stripetier

import "testing"

// testHealthCfg is a small, fast state machine for unit tests.
func testHealthCfg() HealthConfig {
	return HealthConfig{
		MaxConsecutiveErrs: 3,
		WindowOps:          8,
		MaxErrorRate:       0.5,
		MinWindowSamples:   4,
		ProbeBackoffOps:    4,
		MaxProbeBackoffOps: 16,
		ProbeSuccesses:     2,
	}
}

func TestHealthConsecutiveEjection(t *testing.T) {
	h := newHealth(2, testHealthCfg())
	for i := 0; i < 2; i++ {
		if !h.allowed(0) {
			t.Fatalf("op %d: healthy member refused", i)
		}
		h.record(0, false)
		if h.state(0) != StateHealthy {
			t.Fatalf("ejected after %d errors, threshold is 3", i+1)
		}
	}
	h.allowed(0)
	if tr := h.record(0, false); tr != transEjected {
		t.Fatalf("third consecutive error: transition %v, want eject", tr)
	}
	if h.state(0) != StateEjected {
		t.Fatalf("state %v, want ejected", h.state(0))
	}
	if h.allowed(0) {
		t.Fatal("ejected member still receives traffic")
	}
}

func TestHealthRateEjection(t *testing.T) {
	h := newHealth(1, testHealthCfg())
	// Alternate ok/err: consecutive never reaches 3, but the windowed rate
	// hits 50% once MinWindowSamples (4) results are in.
	pattern := []bool{true, false, true, false, true, false}
	ejected := false
	for _, ok := range pattern {
		if h.state(0) == StateEjected {
			ejected = true
			break
		}
		h.allowed(0)
		if h.record(0, ok) == transEjected {
			ejected = true
			break
		}
	}
	if !ejected {
		t.Fatalf("50%% error rate over %d samples did not eject", len(pattern))
	}
}

func TestHealthRateNeedsMinSamples(t *testing.T) {
	h := newHealth(1, testHealthCfg())
	// Two results, one error = 50% rate, but below MinWindowSamples.
	h.allowed(0)
	h.record(0, true)
	h.allowed(0)
	h.record(0, false)
	if h.state(0) != StateHealthy {
		t.Fatal("rate trip fired below the minimum sample count")
	}
}

func TestHealthProbeRecovery(t *testing.T) {
	h := newHealth(2, testHealthCfg())
	for i := 0; i < 3; i++ {
		h.allowed(0)
		h.record(0, false)
	}
	if h.state(0) != StateEjected {
		t.Fatal("not ejected")
	}
	// Advance the logical clock with traffic on the sibling; backoff is 4.
	for i := 0; i < 4; i++ {
		if h.allowed(0) {
			t.Fatalf("probe admitted after only %d ticks (backoff 4)", i)
		}
		h.allowed(1)
		h.record(1, true)
	}
	if !h.allowed(0) {
		t.Fatal("backoff elapsed but member not half-open")
	}
	if h.state(0) != StateHalfOpen {
		t.Fatalf("state %v, want half-open", h.state(0))
	}
	// Only one probe in flight at a time.
	if h.allowed(0) {
		t.Fatal("second concurrent probe admitted")
	}
	h.record(0, true)
	if !h.allowed(0) {
		t.Fatal("second probe refused after first succeeded")
	}
	if tr := h.record(0, true); tr != transReadmitted {
		t.Fatalf("after 2 probe successes: transition %v, want readmit", tr)
	}
	if h.state(0) != StateHealthy {
		t.Fatalf("state %v, want healthy", h.state(0))
	}
}

func TestHealthProbeFailureDoublesBackoff(t *testing.T) {
	h := newHealth(2, testHealthCfg())
	for i := 0; i < 3; i++ {
		h.allowed(0)
		h.record(0, false)
	}
	// First backoff: 4 ticks.
	for i := 0; i < 4; i++ {
		h.allowed(1)
		h.record(1, true)
	}
	if !h.allowed(0) {
		t.Fatal("probe not admitted after first backoff")
	}
	h.record(0, false) // failed probe: re-eject with doubled backoff (8)
	if h.state(0) != StateEjected {
		t.Fatal("failed probe did not re-eject")
	}
	for i := 0; i < 7; i++ {
		if h.allowed(0) {
			t.Fatalf("probe admitted after %d ticks, doubled backoff is 8", i)
		}
		h.allowed(1)
		h.record(1, true)
	}
	h.allowed(1)
	h.record(1, true)
	if !h.allowed(0) {
		t.Fatal("probe not admitted after doubled backoff")
	}
	// Successful recovery resets the backoff to the base value.
	h.record(0, true)
	h.allowed(0)
	h.record(0, true)
	if h.state(0) != StateHealthy {
		t.Fatal("not readmitted")
	}
	if h.members[0].backoff != testHealthCfg().ProbeBackoffOps {
		t.Fatalf("backoff %d after readmission, want reset to %d",
			h.members[0].backoff, testHealthCfg().ProbeBackoffOps)
	}
}

func TestHealthTransitionCallback(t *testing.T) {
	h := newHealth(1, testHealthCfg())
	var events []transition
	h.onTransition = func(m int, s State, tr transition) { events = append(events, tr) }
	for i := 0; i < 3; i++ {
		h.allowed(0)
		h.record(0, false)
	}
	for i := 0; i < 4; i++ {
		h.tick.Add(1) // no sibling: advance the clock directly
	}
	h.allowed(0)
	h.record(0, true)
	h.allowed(0)
	h.record(0, true)
	want := []transition{transEjected, transHalfOpen, transReadmitted}
	if len(events) != len(want) {
		t.Fatalf("events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, events[i], want[i])
		}
	}
}
