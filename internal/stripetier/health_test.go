package stripetier

import "testing"

// testHealthCfg is a small, fast state machine for unit tests.
func testHealthCfg() HealthConfig {
	return HealthConfig{
		MaxConsecutiveErrs: 3,
		WindowOps:          8,
		MaxErrorRate:       0.5,
		MinWindowSamples:   4,
		ProbeBackoffOps:    4,
		MaxProbeBackoffOps: 16,
		ProbeSuccesses:     2,
	}
}

// op routes one result through the allowed/record pair, threading the
// probe token like the tier does.
func (h *health) op(m int, ok bool) transition {
	allowed, probe := h.allowed(m)
	if !allowed {
		return transNone
	}
	return h.record(m, ok, probe)
}

// admit reports whether member m accepts an op right now. Use it only
// where refusal is expected: a true return takes (and leaks) the probe
// slot, since the token is dropped.
func (h *health) admit(t *testing.T, m int) bool {
	t.Helper()
	ok, _ := h.allowed(m)
	return ok
}

func TestHealthConsecutiveEjection(t *testing.T) {
	h := newHealth(2, testHealthCfg())
	for i := 0; i < 2; i++ {
		ok, probe := h.allowed(0)
		if !ok {
			t.Fatalf("op %d: healthy member refused", i)
		}
		h.record(0, false, probe)
		if h.state(0) != StateHealthy {
			t.Fatalf("ejected after %d errors, threshold is 3", i+1)
		}
	}
	if tr := h.op(0, false); tr != transEjected {
		t.Fatalf("third consecutive error: transition %v, want eject", tr)
	}
	if h.state(0) != StateEjected {
		t.Fatalf("state %v, want ejected", h.state(0))
	}
	if h.admit(t, 0) {
		t.Fatal("ejected member still receives traffic")
	}
}

func TestHealthRateEjection(t *testing.T) {
	h := newHealth(1, testHealthCfg())
	// Alternate ok/err: consecutive never reaches 3, but the windowed rate
	// hits 50% once MinWindowSamples (4) results are in.
	pattern := []bool{true, false, true, false, true, false}
	ejected := false
	for _, ok := range pattern {
		if h.state(0) == StateEjected {
			ejected = true
			break
		}
		if h.op(0, ok) == transEjected {
			ejected = true
			break
		}
	}
	if !ejected {
		t.Fatalf("50%% error rate over %d samples did not eject", len(pattern))
	}
}

func TestHealthRateNeedsMinSamples(t *testing.T) {
	h := newHealth(1, testHealthCfg())
	// Two results, one error = 50% rate, but below MinWindowSamples.
	h.op(0, true)
	h.op(0, false)
	if h.state(0) != StateHealthy {
		t.Fatal("rate trip fired below the minimum sample count")
	}
}

func TestHealthProbeRecovery(t *testing.T) {
	h := newHealth(2, testHealthCfg())
	for i := 0; i < 3; i++ {
		h.op(0, false)
	}
	if h.state(0) != StateEjected {
		t.Fatal("not ejected")
	}
	// Advance the logical clock with traffic on the sibling; backoff is 4.
	for i := 0; i < 4; i++ {
		if h.admit(t, 0) {
			t.Fatalf("probe admitted after only %d ticks (backoff 4)", i)
		}
		h.op(1, true)
	}
	ok, probe := h.allowed(0)
	if !ok {
		t.Fatal("backoff elapsed but member not half-open")
	}
	if probe == 0 {
		t.Fatal("half-open admission carried no probe token")
	}
	if h.state(0) != StateHalfOpen {
		t.Fatalf("state %v, want half-open", h.state(0))
	}
	// Only one probe in flight at a time.
	if h.admit(t, 0) {
		t.Fatal("second concurrent probe admitted")
	}
	h.record(0, true, probe)
	ok, probe = h.allowed(0)
	if !ok {
		t.Fatal("second probe refused after first succeeded")
	}
	if tr := h.record(0, true, probe); tr != transReadmitted {
		t.Fatalf("after 2 probe successes: transition %v, want readmit", tr)
	}
	if h.state(0) != StateHealthy {
		t.Fatalf("state %v, want healthy", h.state(0))
	}
}

func TestHealthProbeFailureDoublesBackoff(t *testing.T) {
	h := newHealth(2, testHealthCfg())
	for i := 0; i < 3; i++ {
		h.op(0, false)
	}
	// First backoff: 4 ticks.
	for i := 0; i < 4; i++ {
		h.op(1, true)
	}
	ok, probe := h.allowed(0)
	if !ok {
		t.Fatal("probe not admitted after first backoff")
	}
	h.record(0, false, probe) // failed probe: re-eject with doubled backoff (8)
	if h.state(0) != StateEjected {
		t.Fatal("failed probe did not re-eject")
	}
	for i := 0; i < 7; i++ {
		if h.admit(t, 0) {
			t.Fatalf("probe admitted after %d ticks, doubled backoff is 8", i)
		}
		h.op(1, true)
	}
	h.op(1, true)
	ok, probe = h.allowed(0)
	if !ok {
		t.Fatal("probe not admitted after doubled backoff")
	}
	// Successful recovery resets the backoff to the base value.
	h.record(0, true, probe)
	h.op(0, true)
	if h.state(0) != StateHealthy {
		t.Fatal("not readmitted")
	}
	if h.members[0].backoff != testHealthCfg().ProbeBackoffOps {
		t.Fatalf("backoff %d after readmission, want reset to %d",
			h.members[0].backoff, testHealthCfg().ProbeBackoffOps)
	}
}

// TestHealthProbeStragglerIgnored pins the straggler rule: a result for an
// op admitted while the member was still healthy can arrive during
// half-open, and it must neither release the single probe slot nor
// re-eject the member — only the probe's own result may.
func TestHealthProbeStragglerIgnored(t *testing.T) {
	h := newHealth(2, testHealthCfg())
	// Admit an op while healthy (token 0) but hold its result: the
	// straggler in flight.
	ok, stragglerTok := h.allowed(0)
	if !ok || stragglerTok != 0 {
		t.Fatalf("healthy admission = %v token %d, want true, 0", ok, stragglerTok)
	}
	// Eject the member, run out the backoff, and take the probe slot.
	for i := 0; i < 3; i++ {
		h.op(0, false)
	}
	for i := 0; i < 4; i++ {
		h.op(1, true)
	}
	ok, probe := h.allowed(0)
	if !ok || probe == 0 {
		t.Fatalf("probe admission = %v token %d, want true, nonzero", ok, probe)
	}
	// The straggler fails while the probe is in flight: the member must
	// stay half-open (no re-eject) and the probe slot must stay taken.
	if tr := h.record(0, false, stragglerTok); tr != transNone {
		t.Fatalf("straggler failure caused transition %v", tr)
	}
	if h.state(0) != StateHalfOpen {
		t.Fatalf("state %v after straggler failure, want half-open", h.state(0))
	}
	if h.admit(t, 0) {
		t.Fatal("straggler released the probe slot")
	}
	// The probe's own success counts toward readmission as usual.
	h.record(0, true, probe)
	ok, probe = h.allowed(0)
	if !ok {
		t.Fatal("second probe refused after first succeeded")
	}
	// A stale token from an already-settled probe is a straggler too.
	if tr := h.record(0, true, probe-1); tr != transNone {
		t.Fatalf("stale probe token caused transition %v", tr)
	}
	if tr := h.record(0, true, probe); tr != transReadmitted {
		t.Fatalf("probe success: transition %v, want readmit", tr)
	}
}

func TestHealthTransitionCallback(t *testing.T) {
	h := newHealth(1, testHealthCfg())
	var events []transition
	h.onTransition = func(m int, s State, tr transition) { events = append(events, tr) }
	for i := 0; i < 3; i++ {
		h.op(0, false)
	}
	for i := 0; i < 4; i++ {
		h.tick.Add(1) // no sibling: advance the clock directly
	}
	h.op(0, true)
	h.op(0, true)
	want := []transition{transEjected, transHalfOpen, transReadmitted}
	if len(events) != len(want) {
		t.Fatalf("events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, events[i], want[i])
		}
	}
}
