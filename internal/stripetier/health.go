package stripetier

import (
	"sync"
	"sync/atomic"
)

// State is one member's position in the ejection state machine.
type State int32

// Member states. The exported values double as the value of the
// iofwd_stripe_member_state gauge.
const (
	// StateHealthy members receive normal traffic.
	StateHealthy State = iota
	// StateHalfOpen members receive one probe operation at a time; enough
	// consecutive successes re-admit them, any failure re-ejects them with a
	// doubled backoff.
	StateHalfOpen
	// StateEjected members receive no traffic until their backoff (measured
	// in observed operations, not wall time) elapses.
	StateEjected
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateHalfOpen:
		return "half_open"
	case StateEjected:
		return "ejected"
	}
	return "unknown"
}

// HealthConfig tunes the per-member ejection state machine. Every duration
// in it is a count of observed operation results (the tier's logical
// clock), never wall time: a tier that stops receiving traffic stops
// aging, which keeps chaos tests deterministic and replayable.
type HealthConfig struct {
	// MaxConsecutiveErrs ejects a member after this many back-to-back
	// failures (default 5).
	MaxConsecutiveErrs int
	// WindowOps is the sliding window (in results) for the error-rate
	// trip, capped at 256 (default 64).
	WindowOps int
	// MaxErrorRate ejects a member whose windowed error rate reaches this
	// fraction (default 0.5).
	MaxErrorRate float64
	// MinWindowSamples is the minimum window population before the rate
	// trip can fire, so one early error cannot eject a member (default 16).
	MinWindowSamples int
	// ProbeBackoffOps is the logical delay (observed results, tier-wide)
	// before an ejected member becomes half-open (default 256). Each
	// re-ejection doubles the member's current backoff up to
	// MaxProbeBackoffOps.
	ProbeBackoffOps int64
	// MaxProbeBackoffOps caps the doubled backoff (default 8192).
	MaxProbeBackoffOps int64
	// ProbeSuccesses is how many consecutive successful probes re-admit a
	// half-open member (default 3).
	ProbeSuccesses int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.MaxConsecutiveErrs <= 0 {
		c.MaxConsecutiveErrs = 5
	}
	if c.WindowOps <= 0 {
		c.WindowOps = 64
	}
	if c.WindowOps > 256 {
		c.WindowOps = 256
	}
	if c.MaxErrorRate <= 0 {
		c.MaxErrorRate = 0.5
	}
	if c.MinWindowSamples <= 0 {
		c.MinWindowSamples = 16
	}
	if c.ProbeBackoffOps <= 0 {
		c.ProbeBackoffOps = 256
	}
	if c.MaxProbeBackoffOps <= 0 {
		c.MaxProbeBackoffOps = 8192
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 3
	}
	return c
}

// transition is an observable state-machine event, reported to the tier so
// it can update gauges and kick the repair loop.
type transition int

const (
	transNone transition = iota
	transEjected
	transHalfOpen
	transReadmitted
)

// memberHealth is one member's tracker state, guarded by its own mutex so
// members never contend with each other.
type memberHealth struct {
	mu     sync.Mutex
	state  State
	consec int
	// window is a ring of recent results (true = error).
	window  []bool
	winIdx  int
	winLen  int
	winErrs int
	// reopenAt is the logical tick at which an ejected member turns
	// half-open; backoff is the delay the next ejection will use.
	reopenAt int64
	backoff  int64
	probeOK  int
	probing  bool
	// probeSeq numbers granted probe slots. record only treats a result as
	// the probe's when its token matches, so stragglers — results of ops
	// admitted earlier, while the member was still healthy — can neither
	// release the probe slot nor re-eject a half-open member.
	probeSeq uint64
}

// health tracks every member's state on a shared logical clock.
type health struct {
	cfg HealthConfig
	// tick advances once per observed operation result, across all
	// members: the logical clock every backoff is measured on.
	tick    atomic.Int64
	members []memberHealth
	// onTransition, when non-nil, is called (outside the member lock) for
	// every state change.
	onTransition func(member int, s State, t transition)
}

func newHealth(n int, cfg HealthConfig) *health {
	h := &health{cfg: cfg.withDefaults(), members: make([]memberHealth, n)}
	for i := range h.members {
		h.members[i].window = make([]bool, h.cfg.WindowOps)
		h.members[i].backoff = h.cfg.ProbeBackoffOps
	}
	return h
}

// state returns member m's current state.
func (h *health) state(m int) State {
	mh := &h.members[m]
	mh.mu.Lock()
	defer mh.mu.Unlock()
	return mh.state
}

// allowed reports whether an operation may be routed to member m right
// now, plus a probe token: nonzero when this call was granted the member's
// single half-open probe slot. A true return must be paired with exactly
// one record call carrying the same token — the probe slot is only
// released by the probe's own result, never by a straggling result of an
// op admitted earlier (while the member was still healthy).
func (h *health) allowed(m int) (ok bool, probe uint64) {
	mh := &h.members[m]
	mh.mu.Lock()
	var tr transition
	switch mh.state {
	case StateHealthy:
		ok = true
	case StateEjected:
		if h.tick.Load() >= mh.reopenAt {
			mh.state = StateHalfOpen
			mh.probeOK = 0
			mh.probing = true
			mh.probeSeq++
			probe = mh.probeSeq
			tr = transHalfOpen
			ok = true
		}
	case StateHalfOpen:
		if !mh.probing {
			mh.probing = true
			mh.probeSeq++
			probe = mh.probeSeq
			ok = true
		}
	}
	mh.mu.Unlock()
	if tr != transNone && h.onTransition != nil {
		h.onTransition(m, StateHalfOpen, tr)
	}
	return ok, probe
}

// record feeds one observed operation result for member m into the state
// machine and advances the logical clock. probe is the token allowed
// returned for this op (zero for ops admitted outside a probe slot). It
// returns the transition the result caused, if any.
func (h *health) record(m int, opOK bool, probe uint64) transition {
	h.tick.Add(1)
	mh := &h.members[m]
	mh.mu.Lock()
	// Only the outstanding probe's own result drives the half-open state:
	// stragglers update the window but cannot release the probe slot,
	// count toward probe successes, or re-eject the member.
	isProbe := probe != 0 && mh.probing && probe == mh.probeSeq
	if isProbe {
		mh.probing = false
	}
	// Slide the window.
	if mh.winLen == len(mh.window) {
		if mh.window[mh.winIdx] {
			mh.winErrs--
		}
	} else {
		mh.winLen++
	}
	mh.window[mh.winIdx] = !opOK
	if !opOK {
		mh.winErrs++
	}
	mh.winIdx = (mh.winIdx + 1) % len(mh.window)

	tr := transNone
	var newState State
	if opOK {
		mh.consec = 0
		if mh.state == StateHalfOpen && isProbe {
			mh.probeOK++
			if mh.probeOK >= h.cfg.ProbeSuccesses {
				mh.state = StateHealthy
				mh.backoff = h.cfg.ProbeBackoffOps
				mh.resetWindow()
				tr, newState = transReadmitted, StateHealthy
			}
		}
	} else {
		mh.consec++
		switch mh.state {
		case StateHalfOpen:
			// A failed probe re-ejects immediately with a doubled backoff.
			// A straggler failure is not the probe failing: leave the probe
			// in flight and let its own result decide.
			if isProbe {
				h.ejectLocked(mh)
				tr, newState = transEjected, StateEjected
			}
		case StateHealthy:
			rateTripped := mh.winLen >= h.cfg.MinWindowSamples &&
				float64(mh.winErrs) >= h.cfg.MaxErrorRate*float64(mh.winLen)
			if mh.consec >= h.cfg.MaxConsecutiveErrs || rateTripped {
				h.ejectLocked(mh)
				tr, newState = transEjected, StateEjected
			}
		}
	}
	mh.mu.Unlock()
	if tr != transNone && h.onTransition != nil {
		h.onTransition(m, newState, tr)
	}
	return tr
}

// ejectLocked moves mh to StateEjected and schedules its next probe on the
// logical clock. Caller holds mh.mu.
func (h *health) ejectLocked(mh *memberHealth) {
	mh.state = StateEjected
	mh.reopenAt = h.tick.Load() + mh.backoff
	if next := mh.backoff * 2; next <= h.cfg.MaxProbeBackoffOps {
		mh.backoff = next
	} else {
		mh.backoff = h.cfg.MaxProbeBackoffOps
	}
	mh.consec = 0
	mh.resetWindow()
}

// resetWindow clears the sliding window so a fresh state does not inherit
// stale samples. Caller holds mh.mu.
func (mh *memberHealth) resetWindow() {
	mh.winIdx, mh.winLen, mh.winErrs = 0, 0, 0
	for i := range mh.window {
		mh.window[i] = false
	}
}
