package stripetier

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/core"
)

// repairKey identifies one missing stripe replica: member never received
// (or failed) the write of stripe on the named object.
type repairKey struct {
	name   string
	stripe int64
	member int
}

// repairer re-replicates stripes whose replica count dropped. Writes that
// skip an ejected member (or observe a replica write fail) enqueue the gap
// here; the background loop copies the stripe from a surviving replica to
// the missing member once that member accepts traffic again. Repair
// attempts go through the same allowed/record gate as client traffic, so
// they double as probes for half-open members.
//
// The pending set also serves reads: a replica queued for repair is stale
// (it would return zeros, not data), so the read path skips it — see
// tierHandle.ReadAt.
//
// Each entry carries a version, bumped on every enqueue and on every
// client write that is about to land on the member (touch). A repair only
// deletes its entry when the version is unchanged across the whole
// copy — otherwise a client write racing with the repair could be
// overwritten by the repair's older survivor snapshot and the member
// still be marked clean (split-brain between replicas).
type repairer struct {
	t *Tier

	mu      sync.Mutex
	pending map[repairKey]uint64
	closed  bool

	// Pending-set journal (see persist.go); nil when persistence is off.
	journal       *os.File
	journalPath   string
	journalWrites int

	// kick wakes the loop; buffered so enqueue never blocks.
	kick chan struct{}
	done chan struct{}
}

// newRepairer builds the repairer, loading the persisted pending set from
// journalPath when one is configured ("" disables persistence).
func newRepairer(t *Tier, journalPath string) (*repairer, error) {
	r := &repairer{
		t:       t,
		pending: make(map[repairKey]uint64),
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if journalPath != "" {
		// openJournal drops entries out of bounds for the configured
		// membership (a journal written under a larger tier) before its
		// compaction rewrite, so they cannot persist on disk either.
		set, f, err := openJournal(journalPath, len(t.members))
		if err != nil {
			return nil, err
		}
		r.pending = set
		r.journal = f
		r.journalPath = journalPath
	}
	return r, nil
}

// enqueue records a missing replica (bumping its version if already
// queued) and wakes the loop. A newly inserted entry is journaled durably
// before enqueue returns: the stale-replica marker must survive a crash
// that happens after the degraded write is acknowledged.
func (r *repairer) enqueue(name string, stripe int64, member int) {
	key := repairKey{name, stripe, member}
	r.mu.Lock()
	if !r.closed {
		_, existed := r.pending[key]
		r.pending[key]++
		if !existed {
			r.journalAppendLocked(journalAdd, key, true)
		}
	}
	r.mu.Unlock()
	r.kickNow()
}

// EnqueueRepair queues every replica of every stripe overlapping
// [off, off+length) of name for repair. It is the drain-into-repair hook:
// when a WAL-spilled record's drain or recovery replay fails against the
// tier, the backend's copies of the affected stripes are in an unknown
// mix of old and new bytes, so all chain members are marked stale. The
// repair loop's stale-replica fallback (see readSurvivor) then converges
// the whole chain onto one consistent copy instead of leaving replicas
// that silently disagree. Degraded-but-successful writes do not need this
// hook — the write path already enqueues exactly the replicas it missed.
// Entries are versioned and journaled like any other enqueue. Returns the
// number of (stripe, member) entries queued or bumped.
func (t *Tier) EnqueueRepair(name string, off, length int64) int {
	if name == "" || length <= 0 || off < 0 {
		return 0
	}
	n := 0
	for _, sp := range spans(off, int(length), t.cfg.StripeSize) {
		for _, m := range replicaChain(sp.stripe, len(t.members), t.cfg.Replicas) {
			t.repair.enqueue(name, sp.stripe, m)
			n++
		}
	}
	return n
}

// touch bumps the version of member's pending entry, if one exists. The
// write path calls it immediately before writing stripe data to the
// member: an in-flight repair that read its survivor snapshot before this
// write must observe the bump and keep the entry queued (re-copying the
// now-fresh survivor on the next pass) instead of marking the member
// clean under the repair's stale bytes.
func (r *repairer) touch(name string, stripe int64, member int) {
	key := repairKey{name, stripe, member}
	r.mu.Lock()
	if _, ok := r.pending[key]; ok {
		r.pending[key]++
	}
	r.mu.Unlock()
}

// version returns the pending entry's current version, if queued.
func (r *repairer) version(k repairKey) (uint64, bool) {
	r.mu.Lock()
	v, ok := r.pending[k]
	r.mu.Unlock()
	return v, ok
}

// isPending reports whether member's copy of stripe is queued for repair
// (and therefore stale for reads).
func (r *repairer) isPending(name string, stripe int64, member int) bool {
	key := repairKey{name, stripe, member}
	r.mu.Lock()
	_, ok := r.pending[key]
	r.mu.Unlock()
	return ok
}

// pendingCount is the repair-queue depth gauge.
func (r *repairer) pendingCount() int64 {
	r.mu.Lock()
	n := len(r.pending)
	r.mu.Unlock()
	return int64(n)
}

// kickNow nudges the loop without blocking.
func (r *repairer) kickNow() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// close stops the loop, waits for it to exit, and releases the journal.
// Pending entries stay in the journal: a restart reloads and drains them.
func (r *repairer) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.kickNow()
	<-r.done
	r.mu.Lock()
	r.closeJournalLocked()
	r.mu.Unlock()
}

// loop drains the pending set whenever kicked. Entries whose member is
// still ejected stay queued; the next kick (more traffic, a readmission)
// retries them. The loop owns no timer: like the health tracker it is
// driven purely by observed events.
func (r *repairer) loop() {
	defer close(r.done)
	for range r.kick {
		r.mu.Lock()
		closed := r.closed
		keys := make([]repairKey, 0, len(r.pending))
		for k := range r.pending {
			keys = append(keys, k)
		}
		r.mu.Unlock()
		if closed {
			return
		}
		// Deterministic order: name, then stripe, then member.
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.name != b.name {
				return a.name < b.name
			}
			if a.stripe != b.stripe {
				return a.stripe < b.stripe
			}
			return a.member < b.member
		})
		for _, k := range keys {
			r.repairOne(k)
		}
	}
}

// repairOne copies stripe k.stripe from a surviving replica onto k.member
// and, when the copy lands without a client write racing it (pending
// version unchanged end to end), removes the entry from the pending set.
func (r *repairer) repairOne(k repairKey) {
	t := r.t
	// Capture the entry's version before reading the survivor: a client
	// write bumps it (touch/enqueue) before touching the member's bytes,
	// so an unchanged version below proves the snapshot is still current.
	startVer, live := r.version(k)
	if !live {
		return
	}
	ok, probe := t.health.allowed(k.member)
	if !ok {
		return
	}
	// The member accepted the probe slot: from here every outcome must be
	// recorded exactly once.
	data, n, ok := r.readSurvivor(k)
	if !ok {
		// No surviving replica is readable right now; release the probe
		// slot with a neutral success (the target member did nothing
		// wrong) and keep the entry queued.
		t.recordOp(k.member, probe, nil)
		t.metrics.repairErrs.Inc()
		return
	}
	if n == 0 {
		// The stripe was never durably written anywhere (the write that
		// enqueued this entry failed everywhere, or it is beyond EOF).
		// There is nothing to copy and nothing missing.
		t.recordOp(k.member, probe, nil)
	} else {
		h, err := t.members[k.member].Open(k.name, true)
		if err != nil {
			t.recordOp(k.member, probe, err)
			t.metrics.repairErrs.Inc()
			return
		}
		defer h.Close()
		wn, err := h.WriteAt(data[:n], k.stripe*t.cfg.StripeSize)
		if err == nil && wn < n {
			err = fmt.Errorf("%w: short repair write (%d of %d bytes)", core.EIO, wn, n)
		}
		t.recordOp(k.member, probe, err)
		if err != nil {
			t.metrics.repairErrs.Inc()
			return
		}
	}
	// Mark the member clean only if no client write raced the copy.
	r.mu.Lock()
	if cur, queued := r.pending[k]; queued && cur == startVer {
		delete(r.pending, k)
		// Unsynced del: losing it only re-repairs a whole replica.
		r.journalAppendLocked(journalDel, k, false)
		r.mu.Unlock()
		t.metrics.repairs.Inc()
		return
	}
	r.mu.Unlock()
	// The version moved: the stripe changed under the repair, so the copy
	// may hold stale bytes. Keep the entry and retry promptly with a fresh
	// survivor snapshot.
	r.kickNow()
}

// readSurvivor reads stripe k.stripe from the first healthy, non-stale
// replica. It reports ok=false when no survivor could be read. When every
// reachable survivor reports ENOENT the stripe was never durably written
// anywhere, which readSurvivor reports as (nil, 0, true): whole by vacancy.
//
// When every other chain member is itself queued for repair, no fresh copy
// of the stripe exists anywhere (e.g. a write failed on all replicas
// during an outage); readSurvivor then falls back to the stale replicas so
// the set converges on one copy and drains, instead of deadlocking with
// the stripe unreadable forever. A member with no other chain members at
// all (replication factor 1) is whole by definition: its own bytes are the
// only copy there is.
func (r *repairer) readSurvivor(k repairKey) (data []byte, n int, ok bool) {
	t := r.t
	fresh := make([]int, 0, t.cfg.Replicas)
	stale := make([]int, 0, t.cfg.Replicas)
	for _, m := range replicaChain(k.stripe, len(t.members), t.cfg.Replicas) {
		if m == k.member {
			continue
		}
		if r.isPending(k.name, k.stripe, m) {
			stale = append(stale, m)
		} else {
			fresh = append(fresh, m)
		}
	}
	candidates := fresh
	if len(fresh) == 0 {
		if len(stale) == 0 {
			return nil, 0, true
		}
		candidates = stale
	}
	buf := make([]byte, t.cfg.StripeSize)
	off := k.stripe * t.cfg.StripeSize
	attempted, notFound := 0, 0
	for _, m := range candidates {
		ok, probe := t.health.allowed(m)
		if !ok {
			continue
		}
		attempted++
		h, err := t.members[m].Open(k.name, false)
		if err != nil {
			// ENOENT means this member legitimately holds no data for the
			// object (a healthy answer, not an I/O failure).
			t.recordOp(m, probe, ignoreNotFound(err))
			if isNotFound(err) {
				notFound++
			}
			continue
		}
		rn, err := h.ReadAt(buf, off)
		_ = h.Close()
		t.recordOp(m, probe, err)
		if err != nil {
			continue
		}
		return buf, rn, true
	}
	if attempted > 0 && notFound == attempted {
		return nil, 0, true
	}
	return nil, 0, false
}
