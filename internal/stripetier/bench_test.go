package stripetier

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// BenchmarkStripeScaling measures aggregate write throughput into ONE
// shared object (the N-to-1 checkpoint pattern) as the member count grows.
//
// Two member flavours:
//
//   - raw: bare MemBackends. With one member every writer serializes on
//     that member's per-file lock; striping spreads the lock traffic. On a
//     multi-core machine this arm scales until memory bandwidth saturates;
//     on a single-core CI runner it is flat (the copies themselves are the
//     serialized resource) — which is itself the honest number.
//   - sink: MemBackends behind a per-member 256 MiB/s bandwidth throttle
//     (core.SinkBackend — the same device the repo's other benchmarks use
//     to model a real file server on a development machine). Here the
//     measured quantity is aggregate member bandwidth, the thing striping
//     actually buys: N members ≈ N × 256 MiB/s until the replication
//     factor eats the gain back.
func BenchmarkStripeScaling(b *testing.B) {
	const (
		stripeSize = 64 << 10
		// windowStripes bounds the shared object's extent so the dense
		// in-memory members stay small no matter how long the bench runs.
		windowStripes = 64
		sinkRate      = 256 << 20 // per-member bytes/sec for the sink arm
	)
	member := func(flavour string) core.Backend {
		switch flavour {
		case "raw":
			return core.NewMemBackend()
		default:
			return core.NewSinkBackend(core.NewMemBackend(), sinkRate, 0)
		}
	}
	for _, flavour := range []string{"raw", "sink"} {
		for _, n := range []int{1, 2, 4, 8} {
			for _, r := range []int{1, 2} {
				if r > n {
					continue
				}
				name := fmt.Sprintf("%s/members=%d/replicas=%d", flavour, n, r)
				b.Run(name, func(b *testing.B) {
					members := make([]core.Backend, n)
					for i := range members {
						members[i] = member(flavour)
					}
					tier, err := New(members, Config{StripeSize: stripeSize, Replicas: r})
					if err != nil {
						b.Fatal(err)
					}
					defer tier.Close()
					h, err := tier.Open("shared/checkpoint", true)
					if err != nil {
						b.Fatal(err)
					}
					var next atomic.Int64
					payload := make([]byte, stripeSize)
					for i := range payload {
						payload[i] = byte(i)
					}
					// The sink arm is latency-bound (each op waits out its
					// modeled transfer time), so it needs enough in-flight
					// writers to keep all members busy at once.
					b.SetParallelism(32)
					b.SetBytes(stripeSize)
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						buf := make([]byte, stripeSize)
						copy(buf, payload)
						for pb.Next() {
							s := next.Add(1) % windowStripes
							if _, err := h.WriteAt(buf, s*stripeSize); err != nil {
								b.Error(err)
								return
							}
						}
					})
				})
			}
		}
	}
}
