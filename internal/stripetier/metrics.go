package stripetier

import (
	"strconv"

	"repro/internal/telemetry"
)

// tierMetrics holds the tier's instruments. Like the fault backend's
// counters they work unregistered (tests, embedded use); Register exports
// them on a telemetry.Registry for /metrics.
type tierMetrics struct {
	memberState   []telemetry.Gauge   // iofwd_stripe_member_state{member}
	memberOpsOK   []telemetry.Counter // iofwd_stripe_member_ops_total{member,result="ok"}
	memberOpsErr  []telemetry.Counter // iofwd_stripe_member_ops_total{member,result="error"}
	readFailovers telemetry.Counter   // iofwd_stripe_reads_failed_over_total
	repairs       telemetry.Counter   // iofwd_stripe_repairs_total
	repairErrs    telemetry.Counter   // iofwd_stripe_repair_failures_total
	degraded      telemetry.Counter   // iofwd_stripe_degraded_writes_total
	ejections     telemetry.Counter   // iofwd_stripe_ejections_total
	readmissions  telemetry.Counter   // iofwd_stripe_readmissions_total
	journalErrs   telemetry.Counter   // iofwd_stripe_journal_errors_total
}

func newTierMetrics(n int) *tierMetrics {
	return &tierMetrics{
		memberState:  make([]telemetry.Gauge, n),
		memberOpsOK:  make([]telemetry.Counter, n),
		memberOpsErr: make([]telemetry.Counter, n),
	}
}

// Register exports the tier's metric families on reg. Per-member series
// carry a member="<index>" label.
func (t *Tier) Register(reg *telemetry.Registry) {
	m := t.metrics
	for i := range t.members {
		member := telemetry.L("member", strconv.Itoa(i))
		reg.MustRegister("iofwd_stripe_member_state",
			"Stripe-tier member health state: 0 healthy, 1 half-open (probing), 2 ejected.",
			&m.memberState[i], member)
		reg.MustRegister("iofwd_stripe_member_ops_total",
			"Stripe-tier operations routed to each member, by result.",
			&m.memberOpsOK[i], member, telemetry.L("result", "ok"))
		reg.MustRegister("iofwd_stripe_member_ops_total",
			"Stripe-tier operations routed to each member, by result.",
			&m.memberOpsErr[i], member, telemetry.L("result", "error"))
	}
	reg.MustRegister("iofwd_stripe_reads_failed_over_total",
		"Stripe reads served by a non-primary replica after the preferred member failed or was ejected.",
		&m.readFailovers)
	reg.MustRegister("iofwd_stripe_repairs_total",
		"Stripes re-replicated onto a member that missed a write (background repair).",
		&m.repairs)
	reg.MustRegister("iofwd_stripe_repair_failures_total",
		"Repair attempts that failed and stayed queued.",
		&m.repairErrs)
	reg.MustRegister("iofwd_stripe_degraded_writes_total",
		"Writes acknowledged with fewer than the configured replica count (under-replicated until repaired).",
		&m.degraded)
	reg.MustRegister("iofwd_stripe_ejections_total",
		"Member transitions into the ejected state.",
		&m.ejections)
	reg.MustRegister("iofwd_stripe_readmissions_total",
		"Member transitions back to healthy after successful probes.",
		&m.readmissions)
	reg.MustRegister("iofwd_stripe_journal_errors_total",
		"Pending-set journal I/O failures (the entry degraded to in-memory only).",
		&m.journalErrs)
	reg.GaugeFunc("iofwd_stripe_repair_pending",
		"Stripe replicas currently queued for repair.",
		t.repair.pendingCount)
}

// recordOp updates the per-member op counters and feeds the health
// tracker; probe is the token the paired allowed call returned.
// Transitions update the state gauge, the transition counters, and kick
// the repair loop on readmission (newly healthy members can now accept
// their queued repairs).
func (t *Tier) recordOp(m int, probe uint64, err error) {
	ok := err == nil
	if ok {
		t.metrics.memberOpsOK[m].Inc()
	} else {
		t.metrics.memberOpsErr[m].Inc()
	}
	t.health.record(m, ok, probe)
}

// onTransition is the health tracker's callback (set in New).
func (t *Tier) onTransition(member int, s State, tr transition) {
	t.metrics.memberState[member].Set(int64(s))
	switch tr {
	case transEjected:
		t.metrics.ejections.Inc()
	case transReadmitted:
		t.metrics.readmissions.Inc()
		t.repair.kickNow()
	}
}
