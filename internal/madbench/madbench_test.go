package madbench

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/iofwd"
	"repro/internal/iofwd/ciod"
	"repro/internal/iofwd/staging"
	"repro/internal/iofwd/zoid"
	"repro/internal/sim"
)

func TestOpSizesMatchPaper(t *testing.T) {
	// Paper V-B: NPIX=4096 at 64 nodes and NPIX=8192 at 256 nodes give
	// roughly 2 MiB per operation per process.
	if got := OpBytes(4096, 64); got != 2<<20 {
		t.Fatalf("OpBytes(4096, 64) = %d, want 2 MiB", got)
	}
	if got := OpBytes(8192, 256); got != 2<<20 {
		t.Fatalf("OpBytes(8192, 256) = %d, want 2 MiB", got)
	}
	// "In aggregate, the I/O performed by the benchmark totaled 128 GB for
	// 64 nodes": one full pass of 1024 matrices.
	total := MatrixBytes(4096) * 1024
	if total != 128<<30 {
		t.Fatalf("one pass = %d bytes, want 128 GiB", total)
	}
}

func run(t *testing.T, nodes int, mk func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder, phases string) Result {
	t.Helper()
	return Run(Config{
		Nodes: nodes, NPix: 4096, NBin: 4, Alpha: 1, Phases: phases,
		NewForwarder: mk,
	})
}

func TestPhasesMoveExpectedBytes(t *testing.T) {
	mk := func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder { return zoid.New(e, ps, p) }
	r := run(t, 64, mk, "SWC")
	want := int64(64) * 4 * OpBytes(4096, 64) * 3
	if r.TotalBytes != want {
		t.Fatalf("total bytes %d, want %d", r.TotalBytes, want)
	}
	if r.PhaseS <= 0 || r.PhaseW <= 0 || r.PhaseC <= 0 {
		t.Fatalf("phase durations %v %v %v", r.PhaseS, r.PhaseW, r.PhaseC)
	}
	if r.OpBytes != 2<<20 {
		t.Fatalf("op bytes %d", r.OpBytes)
	}
}

func TestWriteOnlyPhase(t *testing.T) {
	mk := func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder { return zoid.New(e, ps, p) }
	r := run(t, 64, mk, "S")
	want := int64(64) * 4 * OpBytes(4096, 64)
	if r.TotalBytes != want {
		t.Fatalf("total bytes %d, want %d", r.TotalBytes, want)
	}
	if r.PhaseW != 0 || r.PhaseC != 0 {
		t.Fatalf("skipped phases have durations %v %v", r.PhaseW, r.PhaseC)
	}
}

// TestStagingBeatsBaselines is the figure-13 headline at small scale: the
// optimized forwarder outperforms CIOD on the MADbench2 workload.
func TestStagingBeatsBaselines(t *testing.T) {
	ciodR := run(t, 64, func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder {
		return ciod.New(e, ps, p)
	}, "SWC")
	asyncR := run(t, 64, func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder {
		return staging.New(e, ps, p, staging.Config{Workers: 4})
	}, "SWC")
	if asyncR.ThroughputMiBps < ciodR.ThroughputMiBps*1.3 {
		t.Fatalf("async %.0f not >30%% over ciod %.0f (paper: +53%%)",
			asyncR.ThroughputMiBps, ciodR.ThroughputMiBps)
	}
}

func TestWeakScaling(t *testing.T) {
	mk := func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder { return zoid.New(e, ps, p) }
	r64 := Run(Config{Nodes: 64, NPix: 4096, NBin: 2, Alpha: 1, NewForwarder: mk})
	r256 := Run(Config{Nodes: 256, NPix: 8192, NBin: 2, Alpha: 1, NewForwarder: mk})
	// 4 psets move ~4x the aggregate of 1 pset.
	if r256.ThroughputMiBps < 3*r64.ThroughputMiBps {
		t.Fatalf("256 nodes %.0f not ~4x of 64 nodes %.0f", r256.ThroughputMiBps, r64.ThroughputMiBps)
	}
}

func TestBusyworkExtendsRuntime(t *testing.T) {
	mk := func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder { return zoid.New(e, ps, p) }
	io := Run(Config{Nodes: 64, NPix: 4096, NBin: 2, Alpha: 1, Phases: "S", NewForwarder: mk})
	busy := Run(Config{Nodes: 64, NPix: 4096, NBin: 2, Alpha: 3, Phases: "S", NewForwarder: mk})
	if busy.Elapsed <= io.Elapsed {
		t.Fatalf("alpha=3 run (%v) not longer than I/O mode (%v)", busy.Elapsed, io.Elapsed)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder { return zoid.New(e, ps, p) }
	a := run(t, 64, mk, "S")
	b := run(t, 64, mk, "S")
	if a.Elapsed != b.Elapsed {
		t.Fatalf("runs diverged: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
