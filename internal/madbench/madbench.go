// Package madbench models MADbench2 (paper V-B), the out-of-core cosmic
// microwave background analysis benchmark derived from the MADspec code. In
// I/O mode it is a generator of very large contiguous writes and reads:
// every process writes its share of NBin component matrices in the S phase,
// reads them back with busy-work in the W phase, and reads again in the C
// phase. The paper runs it with α = 1 (no significant computation, no MPI),
// RMOD = WMOD = 1 (all processes perform I/O concurrently), NPIX = 4096 at
// 64 nodes and 8192 at 256 nodes, giving roughly 2 MiB per operation per
// process.
package madbench

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/iofwd"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config parameterizes a run.
type Config struct {
	// Nodes is the number of compute processes (one per CN); must be a
	// multiple of 64 or less than 64 for a single pset.
	Nodes int
	// NPix is the pixel count: each component matrix is NPix^2 pixels of 8
	// bytes, split evenly across processes.
	NPix int
	// NBin is the number of component matrices (the paper uses 1024; runs
	// here default lower and scale linearly, which EXPERIMENTS.md records).
	NBin int
	// Alpha is the busy-work exponent; <= 1 means I/O mode (no significant
	// computation), matching the paper's configuration.
	Alpha float64
	// Phases selects which of S (write), W (read+busywork), C (read) run;
	// empty means all three.
	Phases string
	// Forwarder selects the I/O forwarding mechanism under test.
	NewForwarder func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder
	// Params overrides the machine parameters.
	Params *bgp.Params
	// Storage overrides the filesystem configuration.
	Storage *storage.Config
}

// Result reports a run's aggregate I/O performance.
type Result struct {
	ThroughputMiBps float64
	Elapsed         sim.Time
	TotalBytes      int64
	// Phase durations, in order S, W, C (zero if skipped).
	PhaseS, PhaseW, PhaseC sim.Time
	// OpBytes is the per-process operation size (paper: ~2 MiB).
	OpBytes int64
}

// MatrixBytes returns the total size of one component matrix.
func MatrixBytes(npix int) int64 { return int64(npix) * int64(npix) * 8 }

// OpBytes returns the per-process share of one matrix.
func OpBytes(npix, nodes int) int64 { return MatrixBytes(npix) / int64(nodes) }

// Run executes the benchmark on a fresh simulated machine and returns the
// aggregate throughput across all phases, computed the way the benchmark
// reports it: total bytes moved over total elapsed time.
func Run(cfg Config) Result {
	if cfg.Nodes <= 0 || cfg.NPix <= 0 || cfg.NBin <= 0 {
		panic(fmt.Sprintf("madbench: invalid config %+v", cfg))
	}
	if cfg.Phases == "" {
		cfg.Phases = "SWC"
	}
	e := sim.New(1)
	p := bgp.Default()
	if cfg.Params != nil {
		p = *cfg.Params
	}
	psets := (cfg.Nodes + 63) / 64
	perPset := cfg.Nodes / psets
	m := bgp.NewMachine(e, bgp.Config{Psets: psets, CNsPerPset: perPset, Params: &p})

	scfg := storage.Config{
		FSNs:          p.FSNCount,
		StripeBytes:   p.StripeBytes,
		NICBandwidth:  p.FSNBandwidth,
		DiskBandwidth: p.FSNDiskBandwidth,
		OpenLatency:   p.FileOpenLatency,
	}
	if cfg.Storage != nil {
		scfg = *cfg.Storage
	}
	fs := storage.New(e, scfg)

	op := OpBytes(cfg.NPix, cfg.Nodes)
	phases := cfg.Phases
	hasPhase := func(ph byte) bool {
		for i := 0; i < len(phases); i++ {
			if phases[i] == ph {
				return true
			}
		}
		return false
	}

	var fwds []iofwd.Forwarder
	total := cfg.Nodes
	startBar := newPhaseBarrier(e, total)
	sBar := newPhaseBarrier(e, total)
	wBar := newPhaseBarrier(e, total)
	var endAt sim.Time
	finished := 0

	for pi, ps := range m.Psets {
		fwd := cfg.NewForwarder(e, ps, p)
		fwds = append(fwds, fwd)
		for cn := 0; cn < ps.CNs; cn++ {
			rank := pi*ps.CNs + cn
			cn := cn
			e.Spawn(fmt.Sprintf("madbench-rank%d", rank), func(proc *sim.Proc) {
				// One file per process, as MADbench2's individual-file mode.
				file := fs.Open(proc, fmt.Sprintf("rank%08d.dat", rank))
				sink := iofwd.NewFileSink(e, ps.ION, p, file)
				fd, err := fwd.Open(proc, cn, sink)
				if err != nil {
					panic(err)
				}
				startBar.wait(proc)
				if hasPhase('S') {
					for b := 0; b < cfg.NBin; b++ {
						busywork(proc, cfg.Alpha, op)
						if err := fwd.Write(proc, cn, fd, op); err != nil {
							panic(err)
						}
					}
					fwd.Drain(proc)
				}
				sBar.wait(proc)
				if hasPhase('W') {
					sink.SeekRead(0)
					for b := 0; b < cfg.NBin; b++ {
						if err := fwd.Read(proc, cn, fd, op); err != nil {
							panic(err)
						}
						busywork(proc, cfg.Alpha, op)
					}
				}
				wBar.wait(proc)
				if hasPhase('C') {
					sink.SeekRead(0)
					for b := 0; b < cfg.NBin; b++ {
						if err := fwd.Read(proc, cn, fd, op); err != nil {
							panic(err)
						}
					}
				}
				if err := fwd.Close(proc, cn, fd); err != nil {
					panic(err)
				}
				finished++
				if finished == total {
					endAt = proc.Now()
				}
			})
		}
	}
	e.Run(0)
	for _, fwd := range fwds {
		fwd.Shutdown()
	}

	var bytes int64
	perPhase := int64(cfg.Nodes) * int64(cfg.NBin) * op
	var r Result
	if hasPhase('S') {
		bytes += perPhase
		r.PhaseS = sBar.at - startBar.at
	}
	if hasPhase('W') {
		bytes += perPhase
		r.PhaseW = wBar.at - sBar.at
	}
	if hasPhase('C') {
		bytes += perPhase
		r.PhaseC = endAt - wBar.at
	}
	elapsed := endAt - startBar.at
	r.ThroughputMiBps = float64(bytes) / elapsed.Seconds() / bgp.MiB
	r.Elapsed = elapsed
	r.TotalBytes = bytes
	r.OpBytes = op
	return r
}

// busywork models the α-scaled computation between I/O operations; α <= 1
// is I/O mode (the paper's setting) and performs none.
func busywork(p *sim.Proc, alpha float64, opBytes int64) {
	if alpha <= 1 {
		return
	}
	// Busy-work scales superlinearly with α, normalized so that α = 2
	// computes for about as long as one 2 MiB operation takes to forward.
	base := float64(opBytes) / (400e6)
	p.Sleep(sim.Seconds(base * (alpha - 1)))
}

// phaseBarrier is a reusable single-shot barrier recording its release time.
type phaseBarrier struct {
	eng     *sim.Engine
	n       int
	arrived int
	waiting []*sim.Proc
	at      sim.Time
}

func newPhaseBarrier(e *sim.Engine, n int) *phaseBarrier {
	return &phaseBarrier{eng: e, n: n}
}

func (b *phaseBarrier) wait(p *sim.Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.at = p.Now()
		for _, w := range b.waiting {
			b.eng.Ready(w)
		}
		b.waiting = nil
		return
	}
	b.waiting = append(b.waiting, p)
	p.Suspend()
}
