// Package simcpu models a multicore CPU under a time-slicing scheduler with
// resource contention.
//
// This is the component that reproduces the central observation of the paper
// (Section III): the BG/P I/O node is a 4-core 850 MHz PowerPC 450, and with
// one forwarding thread or process per compute node, 64 concurrent tasks
// contend for those cores. Throughput rises with a few tasks (more
// parallelism drives the NIC) and then falls (context-switch and
// memory-bandwidth overhead), peaking around 4 tasks — Figures 4, 5 and 11.
//
// The CPU is a processor-sharing server over "core-seconds": a task
// demanding d core-seconds completes after d wall-clock seconds when running
// alone on a core. Contention enters through an efficiency curve applied to
// the total delivered rate.
package simcpu

import (
	"fmt"

	"repro/internal/sim"
)

// ContentionCurve returns the fraction of aggregate CPU capacity actually
// delivered when k tasks are runnable on a cores-core CPU:
//
//	eff(k) = 1 / (1 + share*(min(k,cores)-1) + swtch*max(0, k-cores))
//
// share models per-additional-runnable-task degradation from shared memory
// bandwidth, cache pressure, and kernel locking while k <= cores; swtch adds
// the context-switch tax once tasks oversubscribe the cores. Both are
// dimensionless per-task coefficients fitted to Section III of the paper
// (see internal/bgp/params.go for the calibration).
func ContentionCurve(cores int, share, swtch float64) func(k int) float64 {
	if cores <= 0 || share < 0 || swtch < 0 {
		panic(fmt.Sprintf("simcpu: invalid curve cores=%d share=%g swtch=%g", cores, share, swtch))
	}
	return func(k int) float64 {
		if k <= 1 {
			return 1
		}
		inCore := k
		if inCore > cores {
			inCore = cores
		}
		return 1 / (1 + share*float64(inCore-1) + swtch*float64(max(0, k-cores)))
	}
}

// CPU is a multicore processor-sharing CPU.
type CPU struct {
	name  string
	cores int
	ps    *sim.PS
}

// Config describes a CPU.
type Config struct {
	Name  string
	Cores int
	// Share and Switch are the ContentionCurve coefficients. Zero values
	// give a perfectly scaling CPU.
	Share  float64
	Switch float64
}

// New returns a CPU with the given core count and contention coefficients.
// Demands are expressed in core-seconds, so the per-core rate is 1.
func New(e *sim.Engine, cfg Config) *CPU {
	if cfg.Cores <= 0 {
		panic(fmt.Sprintf("simcpu: %d cores", cfg.Cores))
	}
	ps := sim.NewPS(e, cfg.Cores, 1.0)
	if cfg.Share != 0 || cfg.Switch != 0 {
		ps.SetEfficiency(ContentionCurve(cfg.Cores, cfg.Share, cfg.Switch))
	}
	return &CPU{name: cfg.Name, cores: cfg.Cores, ps: ps}
}

// Name returns the CPU name.
func (c *CPU) Name() string { return c.name }

// Cores returns the core count.
func (c *CPU) Cores() int { return c.cores }

// Compute blocks the process for coreSeconds of CPU demand under contention.
func (c *CPU) Compute(p *sim.Proc, coreSeconds float64) { c.ps.Serve(p, coreSeconds) }

// ComputeAsync submits CPU demand and calls done on completion without
// blocking, for overlapping CPU work with wire time.
func (c *CPU) ComputeAsync(coreSeconds float64, done func()) { c.ps.ServeAsync(coreSeconds, done) }

// Runnable returns the number of tasks currently in service.
func (c *CPU) Runnable() int { return c.ps.Active() }

// BusyTime returns cumulative non-idle time.
func (c *CPU) BusyTime() sim.Time { return c.ps.BusyTime() }

// CoreSecondsDelivered returns total CPU work delivered.
func (c *CPU) CoreSecondsDelivered() float64 { return c.ps.TotalWork() }
