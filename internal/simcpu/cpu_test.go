package simcpu

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/sim"
)

func TestContentionCurveShape(t *testing.T) {
	eff := ContentionCurve(4, 0.2, 0.02)
	if eff(1) != 1 {
		t.Fatalf("eff(1) = %v, want 1", eff(1))
	}
	prev := eff(1)
	for k := 2; k <= 64; k++ {
		cur := eff(k)
		if cur >= prev {
			t.Fatalf("eff not strictly decreasing at k=%d: %v >= %v", k, cur, prev)
		}
		if cur <= 0 || cur > 1 {
			t.Fatalf("eff(%d) = %v outside (0,1]", k, cur)
		}
		prev = cur
	}
	// Beyond the core count the switch term kicks in: the drop from k=4 to
	// k=8 must exceed the pure-share prediction.
	if eff(8) >= eff(4) {
		t.Fatal("no oversubscription penalty")
	}
}

// TestAggregateThroughputPeaksNearCoreCount reproduces the qualitative shape
// of paper Figure 5/11: total delivered rate rises up to the core count and
// declines under oversubscription.
func TestAggregateThroughputPeaksNearCoreCount(t *testing.T) {
	totalRate := func(k int) float64 {
		eff := ContentionCurve(4, 0.19, 0.02)
		return float64(min(k, 4)) * eff(k)
	}
	if !(totalRate(2) > totalRate(1)) || !(totalRate(4) > totalRate(2)) {
		t.Fatal("no rise toward core count")
	}
	if !(totalRate(8) < totalRate(4)) {
		t.Fatal("no decline past core count")
	}
	if !(totalRate(64) < totalRate(8)) {
		t.Fatal("no further decline at heavy oversubscription")
	}
}

func TestCPUSingleTask(t *testing.T) {
	e := sim.New(1)
	c := New(e, Config{Name: "ion", Cores: 4})
	var done sim.Time
	e.Spawn("t", func(p *sim.Proc) {
		c.Compute(p, 0.25)
		done = p.Now()
	})
	e.Run(0)
	if math.Abs(done.Seconds()-0.25) > 1e-9 {
		t.Fatalf("done at %v, want 0.25s", done)
	}
}

func TestCPUOversubscription(t *testing.T) {
	e := sim.New(1)
	c := New(e, Config{Name: "ion", Cores: 2})
	var done [4]sim.Time
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			c.Compute(p, 1)
			done[i] = p.Now()
		})
	}
	e.Run(0)
	// 4 core-seconds of demand on 2 perfect cores takes 2 seconds.
	for i, d := range done {
		if math.Abs(d.Seconds()-2.0) > 1e-6 {
			t.Fatalf("task %d done at %v, want 2s", i, d)
		}
	}
}

func TestCPUContentionSlowsCompletion(t *testing.T) {
	run := func(share float64) sim.Time {
		e := sim.New(1)
		c := New(e, Config{Name: "ion", Cores: 4, Share: share})
		for i := 0; i < 4; i++ {
			e.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) { c.Compute(p, 1) })
		}
		return e.Run(0)
	}
	perfect := run(0)
	contended := run(0.2)
	if contended <= perfect {
		t.Fatalf("contention did not slow completion: %v <= %v", contended, perfect)
	}
	// eff(4) = 1/(1+0.2*3) = 0.625, so 1s of perfect time becomes 1.6s.
	if math.Abs(contended.Seconds()-1.6) > 1e-6 {
		t.Fatalf("contended makespan %v, want 1.6s", contended)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero cores")
		}
	}()
	New(sim.New(1), Config{Cores: 0})
}
