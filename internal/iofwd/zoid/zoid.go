// Package zoid models the ZeptoOS I/O Daemon (paper II-B2): a multithreaded
// forwarder with a pool of threads "large enough to handle simultaneous I/O
// operations from all CNs on separate threads". Relative to CIOD it saves
// one data copy and pays thread rather than process context switches, which
// the paper measures as a ~2% edge; it remains fully synchronous, so under
// 64 concurrent clients its threads still fight for the 4 ION cores.
package zoid

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/iofwd"
	"repro/internal/sim"
)

// Forwarder is the stock ZOID mechanism: thread-per-CN, synchronous, one
// ION-side copy into a ZOID-managed buffer.
type Forwarder struct {
	iofwd.Base
}

// copies is the single copy into the ZOID buffer ("first copied into a
// buffer managed by ZOID").
const copies = 1

// New returns a ZOID forwarder for the pset.
func New(e *sim.Engine, ps *bgp.Pset, p bgp.Params) *Forwarder {
	return &Forwarder{Base: iofwd.NewBase(e, ps, p)}
}

// Name implements iofwd.Forwarder.
func (f *Forwarder) Name() string { return "zoid" }

// Open implements iofwd.Forwarder.
func (f *Forwarder) Open(p *sim.Proc, cn int, sink iofwd.Sink) (int, error) {
	f.UplinkControl(p, f.P.IONCtrlCPUThread)
	d := f.DB.Open(sink)
	f.OpenSink(p, sink)
	f.Reply(p)
	return d.FD, nil
}

// Write forwards a write: the ZOID thread receives the payload, copies it,
// executes the write on behalf of the CN, sends back the result, and
// deletes the buffer (paper II-B2).
func (f *Forwarder) Write(p *sim.Proc, cn int, fd int, n int64) error {
	d, err := f.DB.Lookup(fd)
	if err != nil {
		return err
	}
	f.UplinkControl(p, f.P.IONCtrlCPUThread)
	f.UplinkData(p, n, copies)
	werr := d.Sink.Write(p, n)
	f.Reply(p)
	f.CountWrite(n)
	if werr != nil {
		return fmt.Errorf("zoid: write fd %d: %w", fd, werr)
	}
	return nil
}

// Read forwards a read synchronously.
func (f *Forwarder) Read(p *sim.Proc, cn int, fd int, n int64) error {
	d, err := f.DB.Lookup(fd)
	if err != nil {
		return err
	}
	f.UplinkControl(p, f.P.IONCtrlCPUThread)
	rerr := d.Sink.Read(p, n)
	f.DownlinkData(p, n, copies)
	f.CountRead(n)
	if rerr != nil {
		return fmt.Errorf("zoid: read fd %d: %w", fd, rerr)
	}
	return nil
}

// Close implements iofwd.Forwarder.
func (f *Forwarder) Close(p *sim.Proc, cn int, fd int) error {
	d, err := f.DB.Lookup(fd)
	if err != nil {
		return err
	}
	f.UplinkControl(p, f.P.IONCtrlCPUThread)
	f.CloseSink(p, d.Sink)
	err = f.DB.Close(p, d)
	f.Reply(p)
	return err
}

// Drain is a no-op: ZOID has no asynchronous work.
func (f *Forwarder) Drain(p *sim.Proc) {}

// Shutdown is a no-op: the per-CN threads are modelled implicitly.
func (f *Forwarder) Shutdown() {}
