package zoid

import (
	"errors"
	"testing"

	"repro/internal/bgp"
	"repro/internal/iofwd"
	"repro/internal/sim"
)

func TestSynchronousSemantics(t *testing.T) {
	e := sim.New(1)
	p := bgp.Default()
	m := bgp.NewMachine(e, bgp.Config{Psets: 1, CNsPerPset: 1, DANodes: 1, Params: &p})
	f := New(e, m.Psets[0], p)
	slow := &slowSink{delay: sim.Second}
	var wrote sim.Time
	e.Spawn("cn", func(proc *sim.Proc) {
		fd, err := f.Open(proc, 0, slow)
		if err != nil {
			t.Errorf("open: %v", err)
		}
		if err := f.Write(proc, 0, fd, 4096); err != nil {
			t.Errorf("write: %v", err)
		}
		wrote = proc.Now()
		if err := f.Close(proc, 0, fd); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	e.Run(0)
	if wrote < sim.Second {
		t.Fatalf("write returned at %v; ZOID must block for the sink", wrote)
	}
	if st := f.Stats(); st.BytesWritten != 4096 || st.Ops != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestErrorsReturnedDirectly(t *testing.T) {
	e := sim.New(1)
	p := bgp.Default()
	m := bgp.NewMachine(e, bgp.Config{Psets: 1, CNsPerPset: 1, Params: &p})
	f := New(e, m.Psets[0], p)
	boom := errors.New("boom")
	sink := &iofwd.FailingSink{Sink: &iofwd.NullSink{ION: m.Psets[0].ION, P: p}, FailAfter: 0, Err: boom}
	e.Spawn("cn", func(proc *sim.Proc) {
		fd, _ := f.Open(proc, 0, sink)
		if err := f.Write(proc, 0, fd, 128); !errors.Is(err, boom) {
			t.Errorf("write = %v, want boom immediately", err)
		}
		_ = f.Close(proc, 0, fd)
	})
	e.Run(0)
}

func TestBadDescriptor(t *testing.T) {
	e := sim.New(1)
	p := bgp.Default()
	m := bgp.NewMachine(e, bgp.Config{Psets: 1, CNsPerPset: 1, Params: &p})
	f := New(e, m.Psets[0], p)
	e.Spawn("cn", func(proc *sim.Proc) {
		if err := f.Write(proc, 0, 12345, 128); err == nil {
			t.Error("write on unknown fd succeeded")
		}
		if err := f.Close(proc, 0, 12345); err == nil {
			t.Error("close on unknown fd succeeded")
		}
	})
	e.Run(0)
}

type slowSink struct{ delay sim.Time }

func (s *slowSink) Write(p *sim.Proc, n int64) error { p.Sleep(s.delay); return nil }
func (s *slowSink) Read(p *sim.Proc, n int64) error  { p.Sleep(s.delay); return nil }
