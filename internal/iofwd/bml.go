package iofwd

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

// BML is the buffer management layer of the asynchronous staging design
// (paper Section IV, Figure 8): a capacity-bounded pool from which the
// forwarder allocates staging buffers in power-of-2 size classes. When the
// pool cannot satisfy an allocation, the forwarded operation blocks until
// enough queued operations complete and return their buffers — the paper's
// back-pressure rule ("If there is insufficient memory to stage the data,
// the I/O operation is blocked until a number of queued I/O operations
// complete and sufficient memory is available").
type BML struct {
	mem *sim.Resource

	// MinClass is the smallest buffer class in bytes (allocations round up
	// to at least this).
	minClass int64

	allocated int64
	peak      int64
	stall     sim.Time
	allocs    uint64
}

// MinBufferClass is the smallest BML buffer class: tiny operations still
// consume a 4 KiB buffer, as a real slab allocator would.
const MinBufferClass = 4 * 1024

// NewBML returns a buffer pool with the given total capacity in bytes
// ("The total memory managed by BML can be controlled by an environment
// variable during the application launch").
func NewBML(e *sim.Engine, capacity int64) *BML {
	if capacity < MinBufferClass {
		panic(fmt.Sprintf("iofwd: BML capacity %d below minimum class", capacity))
	}
	return &BML{mem: sim.NewResource(e, capacity), minClass: MinBufferClass}
}

// ClassSize returns the power-of-2 buffer class that holds n bytes ("the
// buffer management allocates buffers that are powers of 2 bytes").
func ClassSize(n int64) int64 {
	if n <= MinBufferClass {
		return MinBufferClass
	}
	return 1 << uint(bits.Len64(uint64(n-1)))
}

// Capacity returns the configured pool size.
func (b *BML) Capacity() int64 { return b.mem.Capacity() }

// Allocated returns the bytes currently held by staged operations.
func (b *BML) Allocated() int64 { return b.allocated }

// Peak returns the allocation high-water mark.
func (b *BML) Peak() int64 { return b.peak }

// StallTime returns cumulative time allocations spent blocked on the cap.
func (b *BML) StallTime() sim.Time { return b.stall }

// Allocs returns the number of successful allocations.
func (b *BML) Allocs() uint64 { return b.allocs }

// Get allocates a buffer for n payload bytes, blocking p until the rounded
// class size fits under the capacity. It returns the class size actually
// reserved, which the caller must pass back to Put.
func (b *BML) Get(p *sim.Proc, n int64) int64 {
	c := ClassSize(n)
	if c > b.mem.Capacity() {
		panic(fmt.Sprintf("iofwd: buffer class %d exceeds BML capacity %d", c, b.mem.Capacity()))
	}
	before := p.Now()
	b.mem.Acquire(p, c)
	b.stall += p.Now() - before
	b.allocated += c
	b.allocs++
	if b.allocated > b.peak {
		b.peak = b.allocated
	}
	return c
}

// TryGet allocates without blocking; it returns (class, true) on success.
func (b *BML) TryGet(n int64) (int64, bool) {
	c := ClassSize(n)
	if !b.mem.TryAcquire(c) {
		return 0, false
	}
	b.allocated += c
	b.allocs++
	if b.allocated > b.peak {
		b.peak = b.allocated
	}
	return c, true
}

// Put returns a buffer of the given class size to the pool ("On completion
// of the I/O operation, the worker thread returns the memory buffer to the
// buffer pool").
func (b *BML) Put(class int64) {
	if class <= 0 || class > b.allocated {
		panic(fmt.Sprintf("iofwd: BML Put(%d) with %d allocated", class, b.allocated))
	}
	b.allocated -= class
	b.mem.Release(class)
}
