package iofwd

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/bgp"
	"repro/internal/sim"
)

func testMachine(e *sim.Engine) (*bgp.Machine, bgp.Params) {
	p := bgp.Default()
	m := bgp.NewMachine(e, bgp.Config{Psets: 1, CNsPerPset: 4, DANodes: 1, Params: &p})
	return m, p
}

func TestClassSizePowerOfTwo(t *testing.T) {
	cases := []struct {
		n, want int64
	}{{0, 4096}, {1, 4096}, {4096, 4096}, {4097, 8192}, {1 << 20, 1 << 20}, {(1 << 20) + 1, 2 << 20}}
	for _, c := range cases {
		if got := ClassSize(c.n); got != c.want {
			t.Errorf("ClassSize(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	prop := func(n uint32) bool {
		c := ClassSize(int64(n))
		return c >= int64(n) && c&(c-1) == 0 && c >= MinBufferClass
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBMLBackpressure(t *testing.T) {
	e := sim.New(1)
	bml := NewBML(e, 64*1024)
	var secondAt sim.Time
	e.Spawn("first", func(p *sim.Proc) {
		c := bml.Get(p, 60*1024) // rounds to 64 KiB: whole pool
		p.Sleep(sim.Second)
		bml.Put(c)
	})
	e.Spawn("second", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		c := bml.Get(p, 1024) // must wait for the full pool to free
		secondAt = p.Now()
		bml.Put(c)
	})
	e.Run(0)
	if secondAt != sim.Second {
		t.Fatalf("second Get at %v, want 1s", secondAt)
	}
	if bml.StallTime() < sim.Second-2*sim.Millisecond {
		t.Fatalf("stall time %v", bml.StallTime())
	}
	if bml.Allocated() != 0 {
		t.Fatalf("allocated %d at end", bml.Allocated())
	}
	if bml.Peak() != 64*1024 {
		t.Fatalf("peak %d", bml.Peak())
	}
}

func TestDescriptorDBDeferredErrors(t *testing.T) {
	e := sim.New(1)
	db := NewDescriptorDB(e)
	d := db.Open(nil)
	boom := errors.New("boom")
	e.Spawn("t", func(p *sim.Proc) {
		op1 := db.Start(d)
		op2 := db.Start(d)
		db.Complete(d, op1, boom)
		db.Complete(d, op2, errors.New("second, must not overwrite"))
		err := d.TakeError()
		if err == nil || !errors.Is(err, boom) {
			t.Errorf("TakeError = %v, want wrapped boom", err)
		}
		if d.TakeError() != nil {
			t.Error("error not cleared")
		}
	})
	e.Run(0)
}

func TestDescriptorDBDrain(t *testing.T) {
	e := sim.New(1)
	db := NewDescriptorDB(e)
	d := db.Open(nil)
	var drainedAt, closedAt sim.Time
	op := db.Start(d)
	e.Spawn("completer", func(p *sim.Proc) {
		p.Sleep(2 * sim.Second)
		db.Complete(d, op, nil)
	})
	e.Spawn("drainer", func(p *sim.Proc) {
		db.WaitAll(p)
		drainedAt = p.Now()
	})
	e.Spawn("closer", func(p *sim.Proc) {
		if err := db.Close(p, d); err != nil {
			t.Errorf("close: %v", err)
		}
		closedAt = p.Now()
	})
	e.Run(0)
	if drainedAt != 2*sim.Second || closedAt != 2*sim.Second {
		t.Fatalf("drained at %v, closed at %v, want 2s", drainedAt, closedAt)
	}
	if _, err := db.Lookup(d.FD); err == nil {
		t.Fatal("descriptor still visible after close")
	}
}

func TestWorkerPoolExecutesAndBalances(t *testing.T) {
	for _, disc := range []Discipline{SharedFIFO, LeastLoaded, Sharded} {
		e := sim.New(1)
		m, p := testMachine(e)
		ion := m.Psets[0].ION
		pool := NewWorkerPool(e, ion.CPU, PoolConfig{Workers: 2, Batch: 4, DispatchCPU: 1e-6, Discipline: disc})
		db := NewDescriptorDB(e)
		sink := &NullSink{ION: ion, P: p}
		completions := 0
		e.Spawn("submitter", func(proc *sim.Proc) {
			for i := 0; i < 10; i++ {
				d := db.Open(sink)
				op := db.Start(d)
				pool.Submit(&Task{Kind: TaskWrite, Desc: d, Op: op, Bytes: 1024, Done: func(err error) {
					if err != nil {
						t.Errorf("task error: %v", err)
					}
					completions++
					db.Complete(d, op, err)
				}})
			}
			db.WaitAll(proc)
		})
		e.Run(0)
		if completions != 10 {
			t.Fatalf("discipline %v: %d completions, want 10", disc, completions)
		}
		if pool.Executed() != 10 {
			t.Fatalf("executed %d", pool.Executed())
		}
		pool.Shutdown()
	}
}

// TestShardedPoolStealsAndPreservesOrder homes every task to one shard (all
// descriptors share an FD residue), leaving the other workers idle: the
// backlog must drain through steals, and each descriptor's operations must
// still complete in issue order.
func TestShardedPoolStealsAndPreservesOrder(t *testing.T) {
	e := sim.New(1)
	m, p := testMachine(e)
	ion := m.Psets[0].ION
	const workers = 4
	pool := NewWorkerPool(e, ion.CPU, PoolConfig{Workers: workers, Batch: 2, DispatchCPU: 1e-6, Discipline: Sharded})
	db := NewDescriptorDB(e)
	sink := &NullSink{ION: ion, P: p}

	// Open descriptors until we hold several with the same FD%workers, so
	// every submission homes to a single shard.
	var hot []*Descriptor
	var residue int = -1
	for len(hot) < 3 {
		d := db.Open(sink)
		if residue == -1 {
			residue = d.FD % workers
		}
		if d.FD%workers == residue {
			hot = append(hot, d)
		}
	}
	order := make(map[int][]uint64)
	total := 0
	e.Spawn("submitter", func(proc *sim.Proc) {
		for round := 0; round < 8; round++ {
			for _, d := range hot {
				d := d
				op := db.Start(d)
				total++
				pool.Submit(&Task{Kind: TaskWrite, Desc: d, Op: op, Bytes: 4096, Done: func(err error) {
					if err != nil {
						t.Errorf("task error: %v", err)
					}
					order[d.FD] = append(order[d.FD], op)
					db.Complete(d, op, err)
				}})
			}
		}
		db.WaitAll(proc)
	})
	e.Run(0)
	done := 0
	for fd, ops := range order {
		done += len(ops)
		for i := 1; i < len(ops); i++ {
			if ops[i] <= ops[i-1] {
				t.Fatalf("fd %d completed out of order: %v", fd, ops)
			}
		}
	}
	if done != total {
		t.Fatalf("completed %d of %d tasks", done, total)
	}
	if pool.Steals() == 0 {
		t.Fatal("single hot shard drained with zero steals; idle workers never helped")
	}
	pool.Shutdown()
}

// TestShardedPoolDeterministic runs the same sharded workload twice and
// requires identical virtual end times and steal counts — the sim's
// reproducibility contract extends to the stealing scheduler.
func TestShardedPoolDeterministic(t *testing.T) {
	run := func() (sim.Time, uint64) {
		e := sim.New(1)
		m, p := testMachine(e)
		ion := m.Psets[0].ION
		pool := NewWorkerPool(e, ion.CPU, PoolConfig{Workers: 4, Batch: 2, DispatchCPU: 1e-6, Discipline: Sharded})
		db := NewDescriptorDB(e)
		sink := &NullSink{ION: ion, P: p}
		e.Spawn("submitter", func(proc *sim.Proc) {
			var ds []*Descriptor
			for i := 0; i < 6; i++ {
				ds = append(ds, db.Open(sink))
			}
			for round := 0; round < 10; round++ {
				for _, d := range ds {
					d := d
					op := db.Start(d)
					pool.Submit(&Task{Kind: TaskWrite, Desc: d, Op: op, Bytes: 8192, Done: func(err error) {
						db.Complete(d, op, err)
					}})
				}
			}
			db.WaitAll(proc)
		})
		end := e.Run(0)
		return end, pool.Steals()
	}
	end1, steals1 := run()
	end2, steals2 := run()
	if end1 != end2 || steals1 != steals2 {
		t.Fatalf("sharded runs diverged: end %v vs %v, steals %d vs %d", end1, end2, steals1, steals2)
	}
}

func TestWorkerPoolShutdownExecutesPendingFirst(t *testing.T) {
	e := sim.New(1)
	m, p := testMachine(e)
	ion := m.Psets[0].ION
	pool := NewWorkerPool(e, ion.CPU, PoolConfig{Workers: 1, Batch: 2, DispatchCPU: 1e-6})
	db := NewDescriptorDB(e)
	sink := &NullSink{ION: ion, P: p}
	done := 0
	e.Spawn("s", func(proc *sim.Proc) {
		d := db.Open(sink)
		for i := 0; i < 5; i++ {
			op := db.Start(d)
			pool.Submit(&Task{Kind: TaskWrite, Desc: d, Op: op, Bytes: 64, Done: func(err error) {
				done++
				db.Complete(d, op, err)
			}})
		}
		pool.Shutdown()
		db.WaitAll(proc)
	})
	e.Run(0)
	if done != 5 {
		t.Fatalf("%d tasks done before poison, want 5", done)
	}
}

func TestFailingSinkInjectsAfterQuota(t *testing.T) {
	e := sim.New(1)
	m, p := testMachine(e)
	boom := errors.New("disk on fire")
	s := &FailingSink{Sink: &NullSink{ION: m.Psets[0].ION, P: p}, FailAfter: 2, Err: boom}
	e.Spawn("t", func(proc *sim.Proc) {
		for i := 0; i < 2; i++ {
			if err := s.Write(proc, 10); err != nil {
				t.Errorf("write %d failed early: %v", i, err)
			}
		}
		if err := s.Write(proc, 10); !errors.Is(err, boom) {
			t.Errorf("third write err = %v", err)
		}
	})
	e.Run(0)
}

// TestForwardedBytesConservation checks, for every mechanism, that the bytes
// the application wrote equal the bytes the forwarder accounted and that
// Close/Drain leave nothing in flight.
func TestForwardedBytesConservation(t *testing.T) {
	mechs := []struct {
		name string
		make func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) Forwarder
	}{}
	_ = mechs
	// Mechanism constructors live in subpackages; this invariant is covered
	// end-to-end in internal/experiments tests. Here we check DASink window
	// accounting directly instead.
	e := sim.New(1)
	m, p := testMachine(e)
	sink := NewDASink(e, m.Psets[0].ION, m.DAs[0], p)
	e.Spawn("w", func(proc *sim.Proc) {
		for i := 0; i < 8; i++ {
			if err := sink.Write(proc, 300*1024); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		sink.CloseCost(proc) // drains the socket buffer
	})
	e.Run(0)
	moved := m.Psets[0].ION.NIC.BytesMoved()
	want := float64(8 * 300 * 1024)
	if moved < want {
		t.Fatalf("NIC moved %.0f wire bytes, want >= %.0f", moved, want)
	}
	if err := func() error {
		var err error
		e2 := sim.New(1)
		m2, p2 := testMachine(e2)
		s2 := NewDASink(e2, m2.Psets[0].ION, m2.DAs[0], p2)
		e2.Spawn("w", func(proc *sim.Proc) {
			s2.CloseCost(proc)
			err = s2.Write(proc, 1024)
		})
		e2.Run(0)
		return err
	}(); err == nil {
		t.Fatal("write on closed sink succeeded")
	}
}

func TestUplinkDataChargesTreeAndCPU(t *testing.T) {
	e := sim.New(1)
	m, p := testMachine(e)
	b := NewBase(e, m.Psets[0], p)
	const n = 1 << 20
	e.Spawn("t", func(proc *sim.Proc) {
		b.UplinkData(proc, n, 1)
	})
	end := e.Run(0)
	// The transfer cannot beat the packetized wire time.
	minTime := sim.Seconds(float64(n) / p.CollPeakPayload())
	if end < minTime {
		t.Fatalf("uplink of 1 MiB took %v, faster than wire %v", end, minTime)
	}
	if m.Psets[0].Tree.BytesMoved() == 0 {
		t.Fatal("no bytes on the tree")
	}
}

func TestStatsCounting(t *testing.T) {
	e := sim.New(1)
	m, p := testMachine(e)
	b := NewBase(e, m.Psets[0], p)
	b.CountWrite(100)
	b.CountWrite(50)
	b.CountRead(25)
	st := b.Stats()
	if st.Ops != 3 || st.BytesWritten != 150 || st.BytesRead != 25 {
		t.Fatalf("stats %+v", st)
	}
	_ = fmt.Sprint(m)
}
