// Package ciod models IBM's Control and I/O Daemon, the stock BG/P
// forwarding infrastructure (paper II-B1): a user-level daemon on the ION
// receives requests from the collective network, copies them into a
// shared-memory region, and hands them to a dedicated per-CN I/O proxy
// *process* that executes the call and returns the result. The extra
// shared-memory copy and the process (rather than thread) context switches
// are what ZOID improves on by about 2% (paper III-A), and what the work
// queue and staging mechanisms improve on much further.
package ciod

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/iofwd"
	"repro/internal/sim"
)

// Forwarder is the CIOD mechanism: fully synchronous, one I/O proxy process
// per compute node, two data copies on the ION.
type Forwarder struct {
	iofwd.Base
}

// sharedMemoryCopies is the number of ION-side data copies CIOD performs
// (paper II-B1, figure 2a): the daemon receives the payload off the
// collective network into its own buffer and copies it into the
// shared-memory region from which the per-CN I/O proxy process executes the
// call — one memory traversal more than ZOID's single copy into a
// ZOID-managed buffer. On top of that, the daemon-to-proxy handoff costs
// process context switches (IONCtrlCPUProc vs ZOID's cheaper thread
// dispatch).
const sharedMemoryCopies = 2

// New returns a CIOD forwarder for the pset.
func New(e *sim.Engine, ps *bgp.Pset, p bgp.Params) *Forwarder {
	return &Forwarder{Base: iofwd.NewBase(e, ps, p)}
}

// Name implements iofwd.Forwarder.
func (f *Forwarder) Name() string { return "ciod" }

// Open implements iofwd.Forwarder.
func (f *Forwarder) Open(p *sim.Proc, cn int, sink iofwd.Sink) (int, error) {
	f.UplinkControl(p, f.P.IONCtrlCPUProc)
	d := f.DB.Open(sink)
	f.OpenSink(p, sink)
	f.Reply(p)
	return d.FD, nil
}

// Write forwards a write; the application blocks until the proxy process
// has executed the I/O ("the application on the CN is blocked until the I/O
// operation is completed by the I/O forwarding mechanism", paper IV).
func (f *Forwarder) Write(p *sim.Proc, cn int, fd int, n int64) error {
	d, err := f.DB.Lookup(fd)
	if err != nil {
		return err
	}
	f.UplinkControl(p, f.P.IONCtrlCPUProc)
	f.UplinkData(p, n, sharedMemoryCopies)
	werr := d.Sink.Write(p, n)
	f.Reply(p)
	f.CountWrite(n)
	if werr != nil {
		return fmt.Errorf("ciod: write fd %d: %w", fd, werr)
	}
	return nil
}

// Read forwards a read; the data travels back down the tree before the
// application unblocks.
func (f *Forwarder) Read(p *sim.Proc, cn int, fd int, n int64) error {
	d, err := f.DB.Lookup(fd)
	if err != nil {
		return err
	}
	f.UplinkControl(p, f.P.IONCtrlCPUProc)
	rerr := d.Sink.Read(p, n)
	f.DownlinkData(p, n, sharedMemoryCopies)
	f.CountRead(n)
	if rerr != nil {
		return fmt.Errorf("ciod: read fd %d: %w", fd, rerr)
	}
	return nil
}

// Close implements iofwd.Forwarder.
func (f *Forwarder) Close(p *sim.Proc, cn int, fd int) error {
	d, err := f.DB.Lookup(fd)
	if err != nil {
		return err
	}
	f.UplinkControl(p, f.P.IONCtrlCPUProc)
	f.CloseSink(p, d.Sink)
	err = f.DB.Close(p, d)
	f.Reply(p)
	return err
}

// Drain is a no-op: CIOD has no asynchronous work.
func (f *Forwarder) Drain(p *sim.Proc) {}

// Shutdown is a no-op: CIOD has no worker processes.
func (f *Forwarder) Shutdown() {}
