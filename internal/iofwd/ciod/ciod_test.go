package ciod

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/iofwd"
	"repro/internal/iofwd/zoid"
	"repro/internal/sim"
)

// TestCIODSlowerThanZOID checks the ~2% ordering of paper figure 4: for the
// same workload, the process-based CIOD must be slightly slower than the
// thread-based ZOID, never faster.
func TestCIODSlowerThanZOID(t *testing.T) {
	run := func(mk func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder) sim.Time {
		e := sim.New(1)
		p := bgp.Default()
		m := bgp.NewMachine(e, bgp.Config{Psets: 1, CNsPerPset: 1, Params: &p})
		f := mk(e, m.Psets[0], p)
		sink := &iofwd.NullSink{ION: m.Psets[0].ION, P: p}
		e.Spawn("cn", func(proc *sim.Proc) {
			fd, _ := f.Open(proc, 0, sink)
			for i := 0; i < 50; i++ {
				if err := f.Write(proc, 0, fd, 1<<20); err != nil {
					t.Errorf("write: %v", err)
				}
			}
			_ = f.Close(proc, 0, fd)
		})
		return e.Run(0)
	}
	ciodTime := run(func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder { return New(e, ps, p) })
	zoidTime := run(func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder { return zoid.New(e, ps, p) })
	if ciodTime <= zoidTime {
		t.Fatalf("CIOD (%v) not slower than ZOID (%v)", ciodTime, zoidTime)
	}
	ratio := float64(ciodTime) / float64(zoidTime)
	if ratio > 1.10 {
		t.Fatalf("CIOD %.1f%% slower than ZOID; paper reports ~2%%", (ratio-1)*100)
	}
}

func TestReadPath(t *testing.T) {
	e := sim.New(1)
	p := bgp.Default()
	m := bgp.NewMachine(e, bgp.Config{Psets: 1, CNsPerPset: 1, Params: &p})
	f := New(e, m.Psets[0], p)
	sink := &iofwd.NullSink{ION: m.Psets[0].ION, P: p}
	e.Spawn("cn", func(proc *sim.Proc) {
		fd, _ := f.Open(proc, 0, sink)
		if err := f.Read(proc, 0, fd, 1<<20); err != nil {
			t.Errorf("read: %v", err)
		}
		_ = f.Close(proc, 0, fd)
	})
	end := e.Run(0)
	minWire := sim.Seconds(float64(1<<20) / p.CollPeakPayload())
	if end < minWire {
		t.Fatalf("read finished at %v, faster than the tree wire %v", end, minWire)
	}
	if st := f.Stats(); st.BytesRead != 1<<20 {
		t.Fatalf("stats %+v", st)
	}
}
