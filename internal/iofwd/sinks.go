package iofwd

import (
	"errors"

	"repro/internal/bgp"
	"repro/internal/sim"
)

// errClosed is returned for writes on a torn-down connection.
var errClosed = errors.New("iofwd: write on closed connection")

// NullSink models writing to /dev/null on the ION — the collective-network
// microbenchmark of paper Section III-A: data is forwarded and the terminal
// write costs only a short syscall.
type NullSink struct {
	ION *bgp.ION
	P   bgp.Params
}

// Write charges the /dev/null write syscall.
func (s *NullSink) Write(p *sim.Proc, n int64) error {
	s.ION.CPU.Compute(p, s.P.IONNullWriteCPU)
	return nil
}

// Read charges the /dev/null (or /dev/zero) read syscall.
func (s *NullSink) Read(p *sim.Proc, n int64) error {
	s.ION.CPU.Compute(p, s.P.IONNullWriteCPU)
	return nil
}

// DASink models one TCP connection from the ION to a data-analysis node.
//
// A socket write on the ION behaves like the real syscall: the caller copies
// the payload into the kernel socket buffer and returns as soon as the
// buffer accepts it; the kernel then drains the buffer asynchronously,
// spending ION CPU on the TCP transmit path (the Section III-B bottleneck:
// one 850 MHz core sustains only 307 MiB/s) overlapped with the ION NIC, the
// DA NIC, and the DA-side receive. When the buffer is full the writer blocks
// until in-flight bytes drain — the back-pressure that couples a synchronous
// forwarder to the send path. The fast Xeon DA node is never the constraint,
// matching the paper's nuttcp observations.
type DASink struct {
	ION *bgp.ION
	DA  *bgp.DANode
	P   bgp.Params

	window  *sim.Resource     // socket-buffer occupancy cap
	drainq  *sim.Queue[int64] // chunks awaiting transmit, in order
	drainer *sim.Proc
	closed  bool
}

// NewDASink returns a connected DASink with its socket buffer and transmit
// path. Callers must eventually invoke CloseCost (forwarders do, via
// SinkOpener) to stop the connection's transmit process.
func NewDASink(e *sim.Engine, ion *bgp.ION, da *bgp.DANode, p bgp.Params) *DASink {
	s := &DASink{ION: ion, DA: da, P: p}
	s.init(e)
	return s
}

func (s *DASink) init(e *sim.Engine) {
	if s.window != nil {
		return
	}
	w := s.P.SockBufBytes
	if w <= 0 {
		w = 256 * 1024
	}
	s.window = sim.NewResource(e, w)
	s.drainq = sim.NewQueue[int64](e, 0)
	s.drainer = e.SpawnDaemon("tcp-drain", s.drain)
}

// drain is the per-connection transmit path: chunks leave the socket buffer
// strictly in order, each paying the TCP transmit CPU (a single stream's
// protocol work is serialized, which is why one stream cannot exceed one
// core's ~307 MiB/s no matter how fast the NIC is) overlapped with the ION
// NIC, DA NIC, and DA receive.
func (s *DASink) drain(p *sim.Proc) {
	eng := p.Engine()
	for {
		c := s.drainq.Get(p)
		if c < 0 {
			return // connection closed
		}
		sim.Fork(p,
			func(done func()) { s.ION.CPU.ComputeAsync(float64(c)*s.P.IONSendCost, done) },
			func(done func()) { s.ION.NIC.TransferAsync(eng, c, done) },
			func(done func()) { s.DA.NIC.TransferAsync(eng, c, done) },
			func(done func()) { s.DA.CPU.ComputeAsync(float64(c)*s.P.DARecvCost, done) },
		)
		s.window.Release(c)
	}
}

// Write copies n bytes into the socket in SockChunkBytes pieces: the writer
// blocks on socket-buffer space and the copy into the kernel buffer, while
// the connection's transmit path drains concurrently.
func (s *DASink) Write(p *sim.Proc, n int64) error {
	s.init(p.Engine())
	if s.closed {
		return errClosed
	}
	chunk := s.P.SockChunkBytes
	if chunk <= 0 {
		chunk = 128 * 1024
	}
	for off := int64(0); off < n; off += chunk {
		c := min(chunk, n-off)
		s.window.Acquire(p, c)
		// The copy into the kernel buffer is accounted inside IONSendCost:
		// the paper's 307 MiB/s single-stream figure measures copy +
		// protocol work together on one core, and both are serialized on
		// the stream's transmit path.
		s.drainq.TryPut(c)
	}
	return nil
}

// WriteConfirm writes n bytes and then waits until the connection's socket
// buffer has fully drained, so the caller knows the data is on the wire.
// The work-queue worker pool uses this: a worker drives its stream to
// completion before dequeuing the next task, which is what makes the worker
// count the machine's I/O parallelism (paper fig 11: one worker cannot
// exceed the ~307 MiB/s a single core sustains, exactly as in fig 5).
func (s *DASink) WriteConfirm(p *sim.Proc, n int64) error {
	if err := s.Write(p, n); err != nil {
		return err
	}
	s.window.Acquire(p, s.window.Capacity())
	s.window.Release(s.window.Capacity())
	return nil
}

// Read streams n bytes DA -> ION (the reverse path, e.g. staging analysis
// results back).
func (s *DASink) Read(p *sim.Proc, n int64) error {
	eng := p.Engine()
	s.init(eng)
	sim.Fork(p,
		func(done func()) { s.DA.CPU.ComputeAsync(float64(n)*s.P.DASendCost, done) },
		func(done func()) { s.DA.NIC.TransferAsync(eng, n, done) },
		func(done func()) { s.ION.NIC.TransferAsync(eng, n, done) },
		func(done func()) { s.ION.CPU.ComputeAsync(float64(n)*s.P.IONSendCost, done) },
	)
	return nil
}

// OpenCost models the TCP connect round trip.
func (s *DASink) OpenCost(p *sim.Proc) {
	s.init(p.Engine())
	p.Sleep(2 * s.P.ExtLatency)
}

// CloseCost models the TCP teardown: it lingers until the socket buffer has
// fully drained (accounting for every byte in flight), then stops the
// connection's transmit process.
func (s *DASink) CloseCost(p *sim.Proc) {
	s.init(p.Engine())
	s.window.Acquire(p, s.window.Capacity())
	s.window.Release(s.window.Capacity())
	s.closed = true
	s.drainq.TryPut(-1)
	p.Sleep(s.P.ExtLatency)
}

// FailingSink wraps a Sink and injects an error into every write after the
// first FailAfter successes — used to exercise the deferred-error path of
// asynchronous staging.
type FailingSink struct {
	Sink
	FailAfter int
	Err       error

	writes int
}

// Write fails once the quota of successful writes is exhausted.
func (s *FailingSink) Write(p *sim.Proc, n int64) error {
	s.writes++
	if s.writes > s.FailAfter {
		return s.Err
	}
	return s.Sink.Write(p, n)
}
