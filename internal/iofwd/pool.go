package iofwd

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simcpu"
)

// TaskKind distinguishes queued I/O work.
type TaskKind int

// Task kinds.
const (
	TaskWrite TaskKind = iota
	TaskRead
)

// Task is one I/O operation enqueued on the work queue (paper Figure 7:
// "Instead of executing the I/O operation, the ZOID thread now enqueues the
// I/O task into the work queue").
type Task struct {
	Kind  TaskKind
	Desc  *Descriptor
	Op    uint64
	Bytes int64
	// Done is invoked in the worker's context with the operation result:
	// it wakes the blocked application (synchronous scheduling) or releases
	// the staging buffer and records status (asynchronous staging).
	Done func(err error)
}

// Discipline selects how tasks are distributed to workers.
type Discipline int

const (
	// SharedFIFO is the paper's design: one shared first-in first-out work
	// queue drained by all workers.
	SharedFIFO Discipline = iota
	// LeastLoaded gives each worker a private queue and enqueues to the
	// shortest — the "simple load-balancing heuristic" the paper mentions
	// could be extended; kept for the ablation benchmark.
	LeastLoaded
)

// PoolConfig configures a WorkerPool.
type PoolConfig struct {
	// Workers is the number of worker processes ("launched at job startup,
	// and the number of worker threads can be controlled via an environment
	// variable"). The paper finds 4 optimal on the 4-core ION (fig 11).
	Workers int
	// Batch is the maximum number of tasks a worker dequeues per wakeup and
	// executes in its event loop ("To facilitate I/O multiplexing per
	// thread, a worker thread dequeues multiple I/O requests and executes
	// them in an event loop").
	Batch int
	// DispatchCPU is the fixed ION CPU cost per task dispatched from the
	// event loop.
	DispatchCPU float64
	// Discipline selects the queueing discipline (default SharedFIFO).
	Discipline Discipline
}

// WorkerPool executes queued I/O tasks on a fixed set of worker processes,
// decoupling the number of I/O-executing threads from the number of compute
// clients — the paper's I/O scheduling mechanism.
type WorkerPool struct {
	eng    *sim.Engine
	cpu    *simcpu.CPU
	cfg    PoolConfig
	queues []*sim.Queue[*Task]
	rr     int

	executed uint64
	batches  uint64
	stopped  bool
}

// NewWorkerPool starts the worker processes on e, charging their CPU use to
// cpu.
func NewWorkerPool(e *sim.Engine, cpu *simcpu.CPU, cfg PoolConfig) *WorkerPool {
	if cfg.Workers <= 0 {
		panic(fmt.Sprintf("iofwd: %d workers", cfg.Workers))
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	wp := &WorkerPool{eng: e, cpu: cpu, cfg: cfg}
	nq := 1
	if cfg.Discipline == LeastLoaded {
		nq = cfg.Workers
	}
	for i := 0; i < nq; i++ {
		wp.queues = append(wp.queues, sim.NewQueue[*Task](e, 0))
	}
	for w := 0; w < cfg.Workers; w++ {
		q := wp.queues[0]
		if cfg.Discipline == LeastLoaded {
			q = wp.queues[w]
		}
		e.SpawnDaemon(fmt.Sprintf("worker%d", w), func(p *sim.Proc) { wp.run(p, q) })
	}
	return wp
}

// Submit enqueues a task. The queues are unbounded, so Submit never blocks;
// back-pressure comes from the BML capacity under staging and from the
// blocked application under synchronous scheduling.
func (wp *WorkerPool) Submit(t *Task) {
	if wp.stopped {
		panic("iofwd: submit on stopped pool")
	}
	q := wp.queues[0]
	if wp.cfg.Discipline == LeastLoaded {
		best := 0
		for i, cand := range wp.queues {
			if cand.Len() < wp.queues[best].Len() {
				best = i
			}
		}
		q = wp.queues[best]
	}
	q.TryPut(t)
}

// QueueDepth returns the total number of queued, unexecuted tasks.
func (wp *WorkerPool) QueueDepth() int {
	n := 0
	for _, q := range wp.queues {
		n += q.Len()
	}
	return n
}

// Executed returns the number of completed tasks.
func (wp *WorkerPool) Executed() uint64 { return wp.executed }

// Batches returns the number of worker wakeups, for measuring multiplexing.
func (wp *WorkerPool) Batches() uint64 { return wp.batches }

// Shutdown stops the workers by poisoning the queues. Pending tasks ahead
// of the poison still execute.
func (wp *WorkerPool) Shutdown() {
	if wp.stopped {
		return
	}
	wp.stopped = true
	if wp.cfg.Discipline == LeastLoaded {
		for _, q := range wp.queues {
			q.TryPut(nil)
		}
		return
	}
	for w := 0; w < wp.cfg.Workers; w++ {
		wp.queues[0].TryPut(nil)
	}
}

// run is the worker event loop: dequeue up to Batch tasks per wakeup and
// execute them back to back — the paper's "a worker thread dequeues multiple
// I/O requests and executes them in an event loop". Serial execution within
// a worker is deliberate: it is what bounds the number of concurrently
// I/O-executing threads to the pool size, the core of the scheduling win.
func (wp *WorkerPool) run(p *sim.Proc, q *sim.Queue[*Task]) {
	for {
		batch := q.GetBatch(p, wp.cfg.Batch)
		wp.batches++
		for _, t := range batch {
			if t == nil {
				return // poison: shut down
			}
			wp.exec(p, t)
		}
	}
}

// ConfirmedWriter is implemented by sinks that can report when written data
// has actually left the node, not merely entered a buffer. Workers prefer
// it so each worker fully drives one stream at a time.
type ConfirmedWriter interface {
	WriteConfirm(p *sim.Proc, n int64) error
}

// exec dispatches and executes one task, delivering its result.
func (wp *WorkerPool) exec(p *sim.Proc, t *Task) {
	wp.cpu.Compute(p, wp.cfg.DispatchCPU)
	var err error
	switch t.Kind {
	case TaskWrite:
		if cw, ok := t.Desc.Sink.(ConfirmedWriter); ok {
			err = cw.WriteConfirm(p, t.Bytes)
		} else {
			err = t.Desc.Sink.Write(p, t.Bytes)
		}
	case TaskRead:
		err = t.Desc.Sink.Read(p, t.Bytes)
	default:
		panic(fmt.Sprintf("iofwd: bad task kind %d", t.Kind))
	}
	wp.executed++
	t.Done(err)
}
