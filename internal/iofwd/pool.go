package iofwd

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simcpu"
)

// TaskKind distinguishes queued I/O work.
type TaskKind int

// Task kinds.
const (
	TaskWrite TaskKind = iota
	TaskRead
)

// Task is one I/O operation enqueued on the work queue (paper Figure 7:
// "Instead of executing the I/O operation, the ZOID thread now enqueues the
// I/O task into the work queue").
type Task struct {
	Kind  TaskKind
	Desc  *Descriptor
	Op    uint64
	Bytes int64
	// Done is invoked in the worker's context with the operation result:
	// it wakes the blocked application (synchronous scheduling) or releases
	// the staging buffer and records status (asynchronous staging).
	Done func(err error)
}

// Discipline selects how tasks are distributed to workers.
type Discipline int

const (
	// SharedFIFO is the paper's design: one shared first-in first-out work
	// queue drained by all workers.
	SharedFIFO Discipline = iota
	// LeastLoaded gives each worker a private queue and enqueues to the
	// shortest — the "simple load-balancing heuristic" the paper mentions
	// could be extended; kept for the ablation benchmark.
	LeastLoaded
	// Sharded mirrors internal/core's production scheduler: each worker owns
	// a queue, tasks home to a shard by descriptor FD (so one descriptor's
	// operations never run concurrently or out of order), and an idle worker
	// steals half a batch from the busiest sibling before parking.
	Sharded
)

// PoolConfig configures a WorkerPool.
type PoolConfig struct {
	// Workers is the number of worker processes ("launched at job startup,
	// and the number of worker threads can be controlled via an environment
	// variable"). The paper finds 4 optimal on the 4-core ION (fig 11).
	Workers int
	// Batch is the maximum number of tasks a worker dequeues per wakeup and
	// executes in its event loop ("To facilitate I/O multiplexing per
	// thread, a worker thread dequeues multiple I/O requests and executes
	// them in an event loop").
	Batch int
	// DispatchCPU is the fixed ION CPU cost per task dispatched from the
	// event loop.
	DispatchCPU float64
	// Discipline selects the queueing discipline (default SharedFIFO).
	Discipline Discipline
}

// WorkerPool executes queued I/O tasks on a fixed set of worker processes,
// decoupling the number of I/O-executing threads from the number of compute
// clients — the paper's I/O scheduling mechanism.
type WorkerPool struct {
	eng    *sim.Engine
	cpu    *simcpu.CPU
	cfg    PoolConfig
	queues []*sim.Queue[*Task]
	rr     int

	// Sharded-discipline state: per-FD in-execution counts (the ordering
	// guard), parked workers awaiting a poke, and the steal count.
	executing map[int]int
	idle      []*sim.Proc
	steals    uint64

	executed uint64
	batches  uint64
	stopped  bool
}

// NewWorkerPool starts the worker processes on e, charging their CPU use to
// cpu.
func NewWorkerPool(e *sim.Engine, cpu *simcpu.CPU, cfg PoolConfig) *WorkerPool {
	if cfg.Workers <= 0 {
		panic(fmt.Sprintf("iofwd: %d workers", cfg.Workers))
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	wp := &WorkerPool{eng: e, cpu: cpu, cfg: cfg, executing: make(map[int]int)}
	nq := 1
	if cfg.Discipline != SharedFIFO {
		nq = cfg.Workers
	}
	for i := 0; i < nq; i++ {
		wp.queues = append(wp.queues, sim.NewQueue[*Task](e, 0))
	}
	for w := 0; w < cfg.Workers; w++ {
		w := w
		q := wp.queues[0]
		if cfg.Discipline != SharedFIFO {
			q = wp.queues[w]
		}
		if cfg.Discipline == Sharded {
			e.SpawnDaemon(fmt.Sprintf("worker%d", w), func(p *sim.Proc) { wp.runSharded(p, w) })
		} else {
			e.SpawnDaemon(fmt.Sprintf("worker%d", w), func(p *sim.Proc) { wp.run(p, q) })
		}
	}
	return wp
}

// Submit enqueues a task. The queues are unbounded, so Submit never blocks;
// back-pressure comes from the BML capacity under staging and from the
// blocked application under synchronous scheduling.
func (wp *WorkerPool) Submit(t *Task) {
	if wp.stopped {
		panic("iofwd: submit on stopped pool")
	}
	q := wp.queues[0]
	switch wp.cfg.Discipline {
	case LeastLoaded:
		best := 0
		for i, cand := range wp.queues {
			if cand.Len() < wp.queues[best].Len() {
				best = i
			}
		}
		q = wp.queues[best]
	case Sharded:
		// Home the task by descriptor FD: every operation of one descriptor
		// lands on one shard, which (with the executing guard) keeps its
		// operations ordered even under stealing.
		q = wp.queues[t.Desc.FD%len(wp.queues)]
	}
	q.TryPut(t)
	if wp.cfg.Discipline == Sharded {
		wp.wakeOneIdle()
	}
}

// wakeOneIdle pokes the longest-parked sharded worker, if any.
func (wp *WorkerPool) wakeOneIdle() {
	if len(wp.idle) == 0 {
		return
	}
	p := wp.idle[0]
	wp.idle = wp.idle[1:]
	wp.eng.Ready(p)
}

// QueueDepth returns the total number of queued, unexecuted tasks.
func (wp *WorkerPool) QueueDepth() int {
	n := 0
	for _, q := range wp.queues {
		n += q.Len()
	}
	return n
}

// Executed returns the number of completed tasks.
func (wp *WorkerPool) Executed() uint64 { return wp.executed }

// Batches returns the number of worker wakeups, for measuring multiplexing.
func (wp *WorkerPool) Batches() uint64 { return wp.batches }

// Steals returns the number of half-batches idle workers stole from sibling
// shards (Sharded discipline only).
func (wp *WorkerPool) Steals() uint64 { return wp.steals }

// Shutdown stops the workers by poisoning the queues. Pending tasks ahead
// of the poison still execute.
func (wp *WorkerPool) Shutdown() {
	if wp.stopped {
		return
	}
	wp.stopped = true
	switch wp.cfg.Discipline {
	case LeastLoaded:
		for _, q := range wp.queues {
			q.TryPut(nil)
		}
	case Sharded:
		for _, q := range wp.queues {
			q.TryPut(nil)
		}
		for _, p := range wp.idle {
			wp.eng.Ready(p)
		}
		wp.idle = nil
	default:
		for w := 0; w < wp.cfg.Workers; w++ {
			wp.queues[0].TryPut(nil)
		}
	}
}

// run is the worker event loop: dequeue up to Batch tasks per wakeup and
// execute them back to back — the paper's "a worker thread dequeues multiple
// I/O requests and executes them in an event loop". Serial execution within
// a worker is deliberate: it is what bounds the number of concurrently
// I/O-executing threads to the pool size, the core of the scheduling win.
func (wp *WorkerPool) run(p *sim.Proc, q *sim.Queue[*Task]) {
	for {
		batch := q.GetBatch(p, wp.cfg.Batch)
		wp.batches++
		for _, t := range batch {
			if t == nil {
				return // poison: shut down
			}
			wp.exec(p, t)
		}
	}
}

// runSharded is the Sharded-discipline worker loop: drain the worker's own
// shard, steal half a batch from the busiest sibling when it is empty, and
// park on the pool's idle list when there is nothing runnable anywhere. The
// executing guard in takeRunnable keeps one descriptor's operations from
// ever running concurrently, so stealing cannot reorder them.
func (wp *WorkerPool) runSharded(p *sim.Proc, id int) {
	own := wp.queues[id]
	for {
		batch := wp.takeRunnable(own, wp.cfg.Batch)
		if len(batch) == 0 {
			if v, ok := own.Peek(); ok && v == nil && own.Len() == 1 {
				own.TryGet() // lone poison: shard drained, shut down
				return
			}
			batch = wp.stealSharded(id)
		}
		if len(batch) == 0 {
			wp.idle = append(wp.idle, p)
			p.Suspend()
			continue
		}
		wp.batches++
		for _, t := range batch {
			wp.exec(p, t)
			wp.executing[t.Desc.FD]--
			if wp.executing[t.Desc.FD] == 0 {
				delete(wp.executing, t.Desc.FD)
			}
		}
		if wp.stopped {
			// A finished batch may have unblocked nothing but lone poisons;
			// parked siblings must re-check so they can exit.
			for _, ip := range wp.idle {
				wp.eng.Ready(ip)
			}
			wp.idle = nil
		}
	}
}

// takeRunnable removes up to max runnable tasks from q: a task is runnable
// when no other worker is executing an operation of its descriptor, or when
// this batch already holds one (the batch executes serially, so order is
// preserved). Taken tasks are marked executing. Poison (nil) stays queued.
func (wp *WorkerPool) takeRunnable(q *sim.Queue[*Task], max int) []*Task {
	held := make(map[int]bool)
	batch := q.TakeFunc(max, func(t *Task) bool {
		if t == nil {
			return false
		}
		if wp.executing[t.Desc.FD] == 0 || held[t.Desc.FD] {
			held[t.Desc.FD] = true
			return true
		}
		return false
	})
	for _, t := range batch {
		wp.executing[t.Desc.FD]++
	}
	return batch
}

// stealSharded takes half the runnable backlog (capped at Batch) from the
// deepest sibling shard, falling back to shallower siblings so a runnable
// task anywhere guarantees progress.
func (wp *WorkerPool) stealSharded(id int) []*Task {
	order := make([]int, 0, len(wp.queues)-1)
	for i := range wp.queues {
		if i != id {
			order = append(order, i)
		}
	}
	// Deepest first; index order breaks ties deterministically.
	for a := 1; a < len(order); a++ {
		for b := a; b > 0 && wp.queues[order[b]].Len() > wp.queues[order[b-1]].Len(); b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	for _, vi := range order {
		victim := wp.queues[vi]
		want := (victim.Len() + 1) / 2
		if want > wp.cfg.Batch {
			want = wp.cfg.Batch
		}
		if got := wp.takeRunnable(victim, want); len(got) > 0 {
			wp.steals++
			return got
		}
	}
	return nil
}

// ConfirmedWriter is implemented by sinks that can report when written data
// has actually left the node, not merely entered a buffer. Workers prefer
// it so each worker fully drives one stream at a time.
type ConfirmedWriter interface {
	WriteConfirm(p *sim.Proc, n int64) error
}

// exec dispatches and executes one task, delivering its result.
func (wp *WorkerPool) exec(p *sim.Proc, t *Task) {
	wp.cpu.Compute(p, wp.cfg.DispatchCPU)
	var err error
	switch t.Kind {
	case TaskWrite:
		if cw, ok := t.Desc.Sink.(ConfirmedWriter); ok {
			err = cw.WriteConfirm(p, t.Bytes)
		} else {
			err = t.Desc.Sink.Write(p, t.Bytes)
		}
	case TaskRead:
		err = t.Desc.Sink.Read(p, t.Bytes)
	default:
		panic(fmt.Sprintf("iofwd: bad task kind %d", t.Kind))
	}
	wp.executed++
	t.Done(err)
}
