package iofwd

import (
	"fmt"

	"repro/internal/sim"
)

// Descriptor is one open I/O descriptor in the forwarder's database. The
// paper (Section IV): "we maintain a database of open I/O descriptors; for
// each, we keep a list of completed and in-progress operations and their
// associated status, including errors. We distinguish the various I/O
// operations performed on a particular descriptor via a counter. Errors are
// passed to the application on subsequent operations on the descriptor."
type Descriptor struct {
	FD   int
	Sink Sink

	// OpCounter distinguishes operations issued on this descriptor.
	OpCounter uint64
	// InFlight is the number of staged operations not yet completed.
	InFlight int
	// Completed counts finished operations.
	Completed uint64

	// pendingErr is the first unreported error from a completed staged
	// operation; it is returned (and cleared) by the next operation.
	pendingErr error
	// pendingErrOp is the op counter of the failed operation.
	pendingErrOp uint64

	waiters []*sim.Proc // procs blocked in Close/drain on this descriptor
	closed  bool
}

// DescriptorDB tracks open descriptors and global in-flight staged work.
type DescriptorDB struct {
	eng    *sim.Engine
	byFD   map[int]*Descriptor
	nextFD int

	inFlight     int
	drainWaiters []*sim.Proc
}

// NewDescriptorDB returns an empty database.
func NewDescriptorDB(e *sim.Engine) *DescriptorDB {
	return &DescriptorDB{eng: e, byFD: make(map[int]*Descriptor), nextFD: 3}
}

// Open allocates a descriptor bound to sink.
func (db *DescriptorDB) Open(sink Sink) *Descriptor {
	d := &Descriptor{FD: db.nextFD, Sink: sink}
	db.nextFD++
	db.byFD[d.FD] = d
	return d
}

// Lookup resolves fd; it returns an error for unknown or closed descriptors.
func (db *DescriptorDB) Lookup(fd int) (*Descriptor, error) {
	d, ok := db.byFD[fd]
	if !ok || d.closed {
		return nil, fmt.Errorf("iofwd: bad descriptor %d", fd)
	}
	return d, nil
}

// Len returns the number of open descriptors.
func (db *DescriptorDB) Len() int { return len(db.byFD) }

// TakeError returns and clears the deferred error on d, tagged with the
// operation counter it belongs to.
func (d *Descriptor) TakeError() error {
	if d.pendingErr == nil {
		return nil
	}
	err := fmt.Errorf("iofwd: deferred error from op %d on fd %d: %w", d.pendingErrOp, d.FD, d.pendingErr)
	d.pendingErr = nil
	return err
}

// Start records the submission of a staged operation and returns its op
// counter.
func (db *DescriptorDB) Start(d *Descriptor) uint64 {
	d.OpCounter++
	d.InFlight++
	db.inFlight++
	return d.OpCounter
}

// Complete records the completion of staged operation op with its result
// and wakes anyone draining this descriptor or the whole database.
func (db *DescriptorDB) Complete(d *Descriptor, op uint64, err error) {
	if d.InFlight <= 0 {
		panic(fmt.Sprintf("iofwd: completion with no in-flight ops on fd %d", d.FD))
	}
	d.InFlight--
	d.Completed++
	if err != nil && d.pendingErr == nil {
		d.pendingErr = err
		d.pendingErrOp = op
	}
	if d.InFlight == 0 {
		for _, p := range d.waiters {
			db.eng.Ready(p)
		}
		d.waiters = nil
	}
	db.inFlight--
	if db.inFlight == 0 {
		for _, p := range db.drainWaiters {
			db.eng.Ready(p)
		}
		db.drainWaiters = nil
	}
}

// WaitDescriptor blocks p until d has no in-flight operations.
func (db *DescriptorDB) WaitDescriptor(p *sim.Proc, d *Descriptor) {
	for d.InFlight > 0 {
		d.waiters = append(d.waiters, p)
		p.Suspend()
	}
}

// WaitAll blocks p until the database has no in-flight operations at all.
func (db *DescriptorDB) WaitAll(p *sim.Proc) {
	for db.inFlight > 0 {
		db.drainWaiters = append(db.drainWaiters, p)
		p.Suspend()
	}
}

// Close drains d, removes it, and returns any unreported deferred error.
func (db *DescriptorDB) Close(p *sim.Proc, d *Descriptor) error {
	db.WaitDescriptor(p, d)
	d.closed = true
	delete(db.byFD, d.FD)
	return d.TakeError()
}
