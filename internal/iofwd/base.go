package iofwd

import (
	"repro/internal/bgp"
	"repro/internal/sim"
)

// Base carries the plumbing every forwarding mechanism shares: the pset it
// serves, the parameter table, the descriptor database, and the modelling of
// the two-step forwarding protocol over the collective network.
type Base struct {
	Eng  *sim.Engine
	Pset *bgp.Pset
	P    bgp.Params
	DB   *DescriptorDB

	stats Stats
}

// NewBase wires a Base for the given pset.
func NewBase(e *sim.Engine, ps *bgp.Pset, p bgp.Params) Base {
	return Base{Eng: e, Pset: ps, P: p, DB: NewDescriptorDB(e)}
}

// Stats returns a copy of the forwarder counters.
func (b *Base) Stats() Stats { return b.stats }

// CountWrite accumulates per-op statistics.
func (b *Base) CountWrite(n int64) {
	b.stats.Ops++
	b.stats.BytesWritten += n
}

// CountRead accumulates per-op statistics.
func (b *Base) CountRead(n int64) {
	b.stats.Ops++
	b.stats.BytesRead += n
}

// UplinkControl models the first step of the two-step forwarding protocol:
// the CN marshals and sends the function parameters over the tree, and the
// ION-side handler (thread, proxy process, or worker) is dispatched at a
// fixed CPU cost ctrlCPU. Paper V-A2: "CIOD and ZOID use a two-step approach
// wherein the function parameters are first sent from the CN to the ION and
// the data is then transferred" — this step gates small-message rates.
func (b *Base) UplinkControl(p *sim.Proc, ctrlCPU float64) {
	p.Sleep(b.P.CNOverhead)
	b.Pset.Tree.Transfer(p, b.P.CtrlBytes)
	b.Pset.ION.CPU.Compute(p, ctrlCPU)
}

// UplinkData moves n payload bytes CN -> ION: the tree clocks the packets,
// the ION tree-device engine moves them into memory, and the forwarding
// thread copies them into its buffer as they arrive — all overlapped, since
// reception is streamed packet by packet. `copies` is the number of memory
// copies (ZOID: one, into the ZOID-managed buffer; CIOD: one, into the
// shared-memory region the I/O proxy consumes directly, paper II-B1).
func (b *Base) UplinkData(p *sim.Proc, n int64, copies int) {
	if n <= 0 {
		return
	}
	eng := b.Eng
	sim.Fork(p,
		func(done func()) { b.Pset.Tree.TransferAsync(eng, n, done) },
		func(done func()) { b.Pset.ION.TreeDev.ServeAsync(float64(n), done) },
		func(done func()) {
			b.Pset.ION.CPU.ComputeAsync(float64(n)*float64(copies)*b.P.IONCopyCost, done)
		},
	)
}

// DownlinkData moves n payload bytes ION -> CN for reads: the copy out of
// the I/O buffer overlaps the tree-device injection and the wire transfer.
func (b *Base) DownlinkData(p *sim.Proc, n int64, copies int) {
	if n <= 0 {
		return
	}
	eng := b.Eng
	sim.Fork(p,
		func(done func()) { b.Pset.Tree.TransferAsync(eng, n, done) },
		func(done func()) { b.Pset.ION.TreeDev.ServeAsync(float64(n), done) },
		func(done func()) {
			b.Pset.ION.CPU.ComputeAsync(float64(n)*float64(copies)*b.P.IONCopyCost, done)
		},
	)
}

// Reply models the completion message ION -> CN that unblocks the
// application (or, under staging, acknowledges the copy).
func (b *Base) Reply(p *sim.Proc) {
	b.Pset.Tree.Transfer(p, b.P.ReplyBytes)
}

// OpenSink charges the sink's open cost if it declares one.
func (b *Base) OpenSink(p *sim.Proc, s Sink) {
	if so, ok := s.(SinkOpener); ok {
		so.OpenCost(p)
	}
}

// CloseSink charges the sink's close cost if it declares one.
func (b *Base) CloseSink(p *sim.Proc, s Sink) {
	if so, ok := s.(SinkOpener); ok {
		so.CloseCost(p)
	}
}
