package staging

import (
	"errors"
	"testing"

	"repro/internal/bgp"
	"repro/internal/iofwd"
	"repro/internal/sim"
)

func machine(e *sim.Engine) (*bgp.Machine, bgp.Params) {
	p := bgp.Default()
	return bgp.NewMachine(e, bgp.Config{Psets: 1, CNsPerPset: 4, DANodes: 1, Params: &p}), p
}

func TestWriteReturnsBeforeSinkCompletes(t *testing.T) {
	e := sim.New(1)
	m, p := machine(e)
	f := New(e, m.Psets[0], p, Config{Workers: 1, Batch: 1})
	slow := &slowSink{delay: sim.Second}
	var writeReturned, drained sim.Time
	e.Spawn("cn", func(proc *sim.Proc) {
		fd, err := f.Open(proc, 0, slow)
		if err != nil {
			t.Errorf("open: %v", err)
		}
		if err := f.Write(proc, 0, fd, 1<<20); err != nil {
			t.Errorf("write: %v", err)
		}
		writeReturned = proc.Now()
		f.Drain(proc)
		drained = proc.Now()
		if err := f.Close(proc, 0, fd); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	e.Run(0)
	f.Shutdown()
	// The application resumes long before the slow sink finishes; Drain
	// waits for the full second of sink time.
	if writeReturned >= sim.Second {
		t.Fatalf("write blocked until %v; staging did not overlap", writeReturned)
	}
	if drained < sim.Second {
		t.Fatalf("drain returned at %v, before the sink completed", drained)
	}
}

func TestDeferredErrorSurfacesOnNextOp(t *testing.T) {
	e := sim.New(1)
	m, p := machine(e)
	f := New(e, m.Psets[0], p, Config{Workers: 1, Batch: 1})
	boom := errors.New("remote wall unplugged")
	sink := &failOnceSink{Sink: &iofwd.NullSink{ION: m.Psets[0].ION, P: p}, err: boom}
	e.Spawn("cn", func(proc *sim.Proc) {
		fd, _ := f.Open(proc, 0, sink)
		if err := f.Write(proc, 0, fd, 4096); err != nil {
			t.Errorf("first write returned %v; the failure had not happened yet", err)
		}
		f.Drain(proc)
		err := f.Write(proc, 0, fd, 4096)
		if err == nil || !errors.Is(err, boom) {
			t.Errorf("second write = %v, want deferred boom", err)
		}
		// The second write itself was staged successfully and its (nil)
		// status must not resurrect the consumed error.
		f.Drain(proc)
		if err := f.Close(proc, 0, fd); err != nil {
			t.Errorf("close after consumed error = %v", err)
		}
	})
	e.Run(0)
	f.Shutdown()
}

func TestCloseDrainsAndReportsError(t *testing.T) {
	e := sim.New(1)
	m, p := machine(e)
	f := New(e, m.Psets[0], p, Config{Workers: 1, Batch: 1})
	boom := errors.New("boom")
	sink := &iofwd.FailingSink{Sink: &iofwd.NullSink{ION: m.Psets[0].ION, P: p}, FailAfter: 0, Err: boom}
	e.Spawn("cn", func(proc *sim.Proc) {
		fd, _ := f.Open(proc, 0, sink)
		if err := f.Write(proc, 0, fd, 4096); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := f.Close(proc, 0, fd); err == nil || !errors.Is(err, boom) {
			t.Errorf("close = %v, want deferred boom", err)
		}
	})
	e.Run(0)
	f.Shutdown()
}

func TestBMLCapBlocksStaging(t *testing.T) {
	e := sim.New(1)
	m, p := machine(e)
	// Room for exactly one staged 1 MiB buffer.
	f := New(e, m.Psets[0], p, Config{Workers: 1, Batch: 1, BMLBytes: 1 << 20})
	slow := &slowSink{delay: sim.Second}
	var second sim.Time
	e.Spawn("cn", func(proc *sim.Proc) {
		fd, _ := f.Open(proc, 0, slow)
		_ = f.Write(proc, 0, fd, 1<<20)
		_ = f.Write(proc, 0, fd, 1<<20) // must block until the first buffer frees
		second = proc.Now()
		f.Drain(proc)
		_ = f.Close(proc, 0, fd)
	})
	e.Run(0)
	f.Shutdown()
	if second < sim.Second {
		t.Fatalf("second staged write returned at %v; BML cap not enforced", second)
	}
	if f.BML().StallTime() == 0 {
		t.Fatal("no BML stall recorded")
	}
}

func TestReadsOrderedBehindStagedWrites(t *testing.T) {
	e := sim.New(1)
	m, p := machine(e)
	f := New(e, m.Psets[0], p, Config{Workers: 2, Batch: 2})
	slow := &slowSink{delay: sim.Second}
	var readAt sim.Time
	e.Spawn("cn", func(proc *sim.Proc) {
		fd, _ := f.Open(proc, 0, slow)
		_ = f.Write(proc, 0, fd, 4096)
		if err := f.Read(proc, 0, fd, 4096); err != nil {
			t.Errorf("read: %v", err)
		}
		readAt = proc.Now()
		_ = f.Close(proc, 0, fd)
	})
	e.Run(0)
	f.Shutdown()
	if readAt < sim.Second {
		t.Fatalf("read completed at %v, before the staged write (1s)", readAt)
	}
}

// failOnceSink fails exactly the first write, then recovers.
type failOnceSink struct {
	iofwd.Sink
	err    error
	failed bool
}

func (s *failOnceSink) Write(p *sim.Proc, n int64) error {
	if !s.failed {
		s.failed = true
		return s.err
	}
	return s.Sink.Write(p, n)
}

// slowSink spends fixed virtual time per operation.
type slowSink struct{ delay sim.Time }

func (s *slowSink) Write(p *sim.Proc, n int64) error { p.Sleep(s.delay); return nil }
func (s *slowSink) Read(p *sim.Proc, n int64) error  { p.Sleep(s.delay); return nil }
