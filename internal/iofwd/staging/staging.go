// Package staging implements the paper's second optimization (Section IV,
// Figure 8): asynchronous data staging layered on work-queue I/O scheduling.
//
// A write blocks the application "only for the duration of copying data from
// the CN to the ION": the ZOID thread receives the payload into a buffer
// allocated from the buffer management layer (BML), enqueues the I/O task,
// and replies immediately, letting computation proceed concurrently with the
// I/O. The descriptor database tracks in-progress and completed operations
// per descriptor; errors are passed to the application on subsequent
// operations on the same descriptor. Opens, closes, and attribute queries
// stay synchronous, and when the BML memory cap is reached the operation
// blocks until queued operations complete and release buffers.
package staging

import (
	"repro/internal/bgp"
	"repro/internal/iofwd"
	"repro/internal/sim"
)

// Config selects the staging parameters.
type Config struct {
	// Workers is the worker-thread count (paper default and optimum: 4).
	Workers int
	// Batch caps tasks dequeued per worker wakeup.
	Batch int
	// BMLBytes is the staging memory cap; zero uses the machine default.
	BMLBytes int64
	// Discipline selects the queueing discipline.
	Discipline iofwd.Discipline
}

// DefaultConfig matches the paper's configuration.
func DefaultConfig() Config { return Config{Workers: 4, Batch: 8} }

// Forwarder is ZOID with work-queue scheduling plus asynchronous staging.
type Forwarder struct {
	iofwd.Base
	pool *iofwd.WorkerPool
	bml  *iofwd.BML
}

// New returns an asynchronous-staging forwarder for the pset.
func New(e *sim.Engine, ps *bgp.Pset, p bgp.Params, cfg Config) *Forwarder {
	if cfg.Workers <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.BMLBytes <= 0 {
		cfg.BMLBytes = p.BMLBytes
	}
	f := &Forwarder{Base: iofwd.NewBase(e, ps, p)}
	f.pool = iofwd.NewWorkerPool(e, ps.ION.CPU, iofwd.PoolConfig{
		Workers:     cfg.Workers,
		Batch:       cfg.Batch,
		DispatchCPU: p.IONWorkerDispatchCPU,
		Discipline:  cfg.Discipline,
	})
	f.bml = iofwd.NewBML(e, cfg.BMLBytes)
	return f
}

// Name implements iofwd.Forwarder.
func (f *Forwarder) Name() string { return "zoid+wq+async" }

// Pool exposes the worker pool for experiment instrumentation.
func (f *Forwarder) Pool() *iofwd.WorkerPool { return f.pool }

// BML exposes the buffer pool for experiment instrumentation.
func (f *Forwarder) BML() *iofwd.BML { return f.bml }

// Open implements iofwd.Forwarder. "Operations for opening and closing
// files and sockets or querying their attributes are handled synchronously."
func (f *Forwarder) Open(p *sim.Proc, cn int, sink iofwd.Sink) (int, error) {
	f.UplinkControl(p, f.P.IONCtrlCPUThread)
	d := f.DB.Open(sink)
	f.OpenSink(p, sink)
	f.Reply(p)
	return d.FD, nil
}

// Write stages a write asynchronously: allocate a BML buffer (blocking under
// the memory cap), receive and copy the payload, enqueue the task, and
// return. Any deferred error from an earlier staged operation on this
// descriptor is reported now.
func (f *Forwarder) Write(p *sim.Proc, cn int, fd int, n int64) error {
	d, err := f.DB.Lookup(fd)
	if err != nil {
		return err
	}
	deferred := d.TakeError()
	f.UplinkControl(p, f.P.IONCtrlCPUThread)
	class := f.bml.Get(p, n)
	f.UplinkData(p, n, 1)
	op := f.DB.Start(d)
	f.pool.Submit(&iofwd.Task{
		Kind:  iofwd.TaskWrite,
		Desc:  d,
		Op:    op,
		Bytes: n,
		Done: func(err error) {
			f.bml.Put(class)
			f.DB.Complete(d, op, err)
		},
	})
	f.Reply(p) // acknowledges the copy; computation proceeds
	f.CountWrite(n)
	return deferred
}

// Read goes through the work queue but blocks for the data: a read cannot
// return before the bytes exist on the CN. Deferred write errors on the
// descriptor are reported here too.
func (f *Forwarder) Read(p *sim.Proc, cn int, fd int, n int64) error {
	d, err := f.DB.Lookup(fd)
	if err != nil {
		return err
	}
	deferred := d.TakeError()
	f.UplinkControl(p, f.P.IONCtrlCPUThread)
	// Reads are ordered behind staged writes on the same descriptor so the
	// application observes its own writes.
	f.DB.WaitDescriptor(p, d)
	op := f.DB.Start(d)
	var result error
	completed := false
	f.pool.Submit(&iofwd.Task{
		Kind:  iofwd.TaskRead,
		Desc:  d,
		Op:    op,
		Bytes: n,
		Done: func(err error) {
			result = err
			completed = true
			f.DB.Complete(d, op, nil)
			f.Eng.Ready(p)
		},
	})
	for !completed {
		p.Suspend()
	}
	f.DownlinkData(p, n, 1)
	f.CountRead(n)
	if deferred != nil {
		return deferred
	}
	return result
}

// Close drains the descriptor's staged operations, closes the sink, and
// reports any unconsumed deferred error.
func (f *Forwarder) Close(p *sim.Proc, cn int, fd int) error {
	d, err := f.DB.Lookup(fd)
	if err != nil {
		return err
	}
	f.UplinkControl(p, f.P.IONCtrlCPUThread)
	err = f.DB.Close(p, d)
	f.CloseSink(p, d.Sink)
	f.Reply(p)
	return err
}

// Drain blocks until every staged operation in the database has completed.
func (f *Forwarder) Drain(p *sim.Proc) { f.DB.WaitAll(p) }

// Shutdown stops the worker pool.
func (f *Forwarder) Shutdown() { f.pool.Shutdown() }
