package iofwd

import (
	"repro/internal/bgp"
	"repro/internal/sim"
	"repro/internal/storage"
)

// FileSink is the ION-side parallel-filesystem client for one (process,
// file) stream: sequential writes and reads against a striped storage.File,
// with the same buffered-client dynamics as the socket path — a write
// returns once the client buffer accepts the payload and a bounded amount of
// data may be in flight to the servers, while reads block for the data.
type FileSink struct {
	ION *bgp.ION
	P   bgp.Params
	F   *storage.File

	wcursor int64 // next sequential write offset
	rcursor int64 // next sequential read offset

	window  *sim.Resource
	drainq  *sim.Queue[[2]int64] // {offset, bytes}
	drainer *sim.Proc
	closed  bool
}

// NewFileSink opens a client stream over f.
func NewFileSink(e *sim.Engine, ion *bgp.ION, p bgp.Params, f *storage.File) *FileSink {
	s := &FileSink{ION: ion, P: p, F: f}
	s.init(e)
	return s
}

func (s *FileSink) init(e *sim.Engine) {
	if s.window != nil {
		return
	}
	w := s.P.SockBufBytes
	if w <= 0 {
		w = 256 * 1024
	}
	s.window = sim.NewResource(e, w)
	s.drainq = sim.NewQueue[[2]int64](e, 0)
	s.drainer = e.SpawnDaemon("fs-drain", s.drain)
}

// drain is the per-stream writeback path: the filesystem-client CPU work is
// serialized per stream (like a TCP transmit path), overlapped with the ION
// NIC and the storage servers.
func (s *FileSink) drain(p *sim.Proc) {
	eng := p.Engine()
	for {
		job := s.drainq.Get(p)
		if job[1] < 0 {
			return // stream closed
		}
		off, c := job[0], job[1]
		sim.Fork(p,
			func(done func()) {
				s.ION.CPU.ComputeAsync(float64(c)*(s.P.IONSendCost+s.P.IONFSCost), done)
			},
			func(done func()) { s.ION.NIC.TransferAsync(eng, c, done) },
			func(done func()) {
				eng.Spawn("fs-store", func(sp *sim.Proc) {
					if err := s.F.ServeWrite(sp, off, c); err != nil {
						panic(err) // offsets are generated internally; cannot be invalid
					}
					done()
				})
			},
		)
		s.window.Release(c)
	}
}

// Write appends n bytes at the stream's write cursor.
func (s *FileSink) Write(p *sim.Proc, n int64) error {
	s.init(p.Engine())
	if s.closed {
		return errClosed
	}
	chunk := s.P.SockChunkBytes
	if chunk <= 0 {
		chunk = 128 * 1024
	}
	for rem := n; rem > 0; {
		c := min(chunk, rem)
		s.window.Acquire(p, c)
		s.drainq.TryPut([2]int64{s.wcursor, c})
		s.wcursor += c
		rem -= c
	}
	return nil
}

// WriteConfirm writes and waits until the stream's buffered data reaches the
// servers (see DASink.WriteConfirm).
func (s *FileSink) WriteConfirm(p *sim.Proc, n int64) error {
	if err := s.Write(p, n); err != nil {
		return err
	}
	s.window.Acquire(p, s.window.Capacity())
	s.window.Release(s.window.Capacity())
	return nil
}

// Read fetches n bytes at the stream's read cursor, blocking for the
// server round trip, the ION NIC, and the client CPU work.
func (s *FileSink) Read(p *sim.Proc, n int64) error {
	s.init(p.Engine())
	if s.closed {
		return errClosed
	}
	eng := p.Engine()
	off := s.rcursor
	s.rcursor += n
	// Reading back what this stream wrote: wait for writeback to reach the
	// needed offset first (the client cache would otherwise satisfy it; the
	// conservative choice keeps ordering strict).
	if s.rcursor > s.F.Size() {
		s.window.Acquire(p, s.window.Capacity())
		s.window.Release(s.window.Capacity())
	}
	err := error(nil)
	sim.Fork(p,
		func(done func()) {
			s.ION.CPU.ComputeAsync(float64(n)*(s.P.IONSendCost+s.P.IONFSCost), done)
		},
		func(done func()) { s.ION.NIC.TransferAsync(eng, n, done) },
		func(done func()) {
			eng.Spawn("fs-load", func(sp *sim.Proc) {
				err = s.F.ServeRead(sp, off, n)
				done()
			})
		},
	)
	return err
}

// SeekRead resets the read cursor (e.g. to re-read matrices).
func (s *FileSink) SeekRead(off int64) { s.rcursor = off }

// OpenCost charges the filesystem metadata latency.
func (s *FileSink) OpenCost(p *sim.Proc) {
	s.init(p.Engine())
	if s.P.FileOpenLatency > 0 {
		p.Sleep(s.P.FileOpenLatency)
	}
}

// CloseCost drains the stream, stops its writeback process, and closes the
// file.
func (s *FileSink) CloseCost(p *sim.Proc) {
	s.init(p.Engine())
	s.window.Acquire(p, s.window.Capacity())
	s.window.Release(s.window.Capacity())
	s.closed = true
	s.drainq.TryPut([2]int64{0, -1})
	s.F.Close(p)
}
