package wq

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/bgp"
	"repro/internal/iofwd"
	"repro/internal/sim"
)

func machine(e *sim.Engine, cns int) (*bgp.Machine, bgp.Params) {
	p := bgp.Default()
	return bgp.NewMachine(e, bgp.Config{Psets: 1, CNsPerPset: cns, DANodes: 1, Params: &p}), p
}

func TestSynchronousCompletion(t *testing.T) {
	e := sim.New(1)
	m, p := machine(e, 1)
	f := New(e, m.Psets[0], p, Config{Workers: 2, Batch: 4})
	slow := &slowSink{delay: sim.Second}
	var wrote sim.Time
	e.Spawn("cn", func(proc *sim.Proc) {
		fd, _ := f.Open(proc, 0, slow)
		if err := f.Write(proc, 0, fd, 4096); err != nil {
			t.Errorf("write: %v", err)
		}
		wrote = proc.Now()
		_ = f.Close(proc, 0, fd)
	})
	e.Run(0)
	f.Shutdown()
	if wrote < sim.Second {
		t.Fatalf("write returned at %v; scheduling is synchronous", wrote)
	}
}

func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	// 8 clients but a single worker: 8 one-second operations must take
	// ~8 seconds, because only the worker executes I/O.
	e := sim.New(1)
	m, p := machine(e, 8)
	f := New(e, m.Psets[0], p, Config{Workers: 1, Batch: 2})
	slow := &slowSink{delay: sim.Second}
	for cn := 0; cn < 8; cn++ {
		cn := cn
		e.Spawn(fmt.Sprintf("cn%d", cn), func(proc *sim.Proc) {
			fd, _ := f.Open(proc, cn, slow)
			if err := f.Write(proc, cn, fd, 4096); err != nil {
				t.Errorf("write: %v", err)
			}
			_ = f.Close(proc, cn, fd)
		})
	}
	end := e.Run(0)
	f.Shutdown()
	if end < 8*sim.Second {
		t.Fatalf("8 serialized 1s ops finished at %v, want >= 8s", end)
	}
	if f.Pool().Executed() != 8 {
		t.Fatalf("executed %d", f.Pool().Executed())
	}
}

func TestMultiplexingBatches(t *testing.T) {
	e := sim.New(1)
	m, p := machine(e, 8)
	f := New(e, m.Psets[0], p, Config{Workers: 1, Batch: 8})
	sink := &iofwd.NullSink{ION: m.Psets[0].ION, P: p}
	for cn := 0; cn < 8; cn++ {
		cn := cn
		e.Spawn(fmt.Sprintf("cn%d", cn), func(proc *sim.Proc) {
			fd, _ := f.Open(proc, cn, sink)
			for i := 0; i < 4; i++ {
				if err := f.Write(proc, cn, fd, 64*1024); err != nil {
					t.Errorf("write: %v", err)
				}
			}
			_ = f.Close(proc, cn, fd)
		})
	}
	e.Run(0)
	f.Shutdown()
	pool := f.Pool()
	if pool.Executed() != 32 {
		t.Fatalf("executed %d, want 32", pool.Executed())
	}
	if pool.Batches() >= pool.Executed() {
		t.Fatalf("batches %d not smaller than tasks %d; no multiplexing happened",
			pool.Batches(), pool.Executed())
	}
}

func TestErrorsPassedBackThroughQueue(t *testing.T) {
	e := sim.New(1)
	m, p := machine(e, 1)
	f := New(e, m.Psets[0], p, Config{Workers: 1, Batch: 1})
	boom := errors.New("boom")
	sink := &iofwd.FailingSink{Sink: &iofwd.NullSink{ION: m.Psets[0].ION, P: p}, FailAfter: 1, Err: boom}
	e.Spawn("cn", func(proc *sim.Proc) {
		fd, _ := f.Open(proc, 0, sink)
		if err := f.Write(proc, 0, fd, 128); err != nil {
			t.Errorf("first write: %v", err)
		}
		if err := f.Write(proc, 0, fd, 128); !errors.Is(err, boom) {
			t.Errorf("second write = %v, want boom", err)
		}
		_ = f.Close(proc, 0, fd)
	})
	e.Run(0)
	f.Shutdown()
}

func TestLeastLoadedDiscipline(t *testing.T) {
	e := sim.New(1)
	m, p := machine(e, 4)
	f := New(e, m.Psets[0], p, Config{Workers: 2, Batch: 2, Discipline: iofwd.LeastLoaded})
	sink := &iofwd.NullSink{ION: m.Psets[0].ION, P: p}
	for cn := 0; cn < 4; cn++ {
		cn := cn
		e.Spawn(fmt.Sprintf("cn%d", cn), func(proc *sim.Proc) {
			fd, _ := f.Open(proc, cn, sink)
			for i := 0; i < 3; i++ {
				if err := f.Write(proc, cn, fd, 1024); err != nil {
					t.Errorf("write: %v", err)
				}
			}
			_ = f.Close(proc, cn, fd)
		})
	}
	e.Run(0)
	f.Shutdown()
	if f.Pool().Executed() != 12 {
		t.Fatalf("executed %d", f.Pool().Executed())
	}
}

type slowSink struct{ delay sim.Time }

func (s *slowSink) Write(p *sim.Proc, n int64) error { p.Sleep(s.delay); return nil }
func (s *slowSink) Read(p *sim.Proc, n int64) error  { p.Sleep(s.delay); return nil }
