// Package wq implements the paper's first optimization (Section IV,
// Figure 7): I/O scheduling for ZOID using a shared FIFO work queue and a
// pool of worker threads. The per-CN ZOID thread no longer executes the I/O
// operation itself — it enqueues the task, and a small worker pool (default
// 4 on the 4-core ION) dequeues multiple requests per wakeup and executes
// them in an event loop. This decouples the number of I/O-executing threads
// from the number of compute clients and mitigates the ION resource
// contention identified in Section III.
//
// Data staging remains synchronous: the application stays blocked until the
// worker has completed the I/O operation.
package wq

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/iofwd"
	"repro/internal/sim"
)

// Config selects the worker-pool parameters.
type Config struct {
	// Workers is the worker-thread count (paper default and optimum: 4).
	Workers int
	// Batch caps tasks dequeued per worker wakeup (I/O multiplexing).
	Batch int
	// Discipline selects SharedFIFO (the paper), LeastLoaded (ablation), or
	// Sharded (the production scheduler's work-stealing model).
	Discipline iofwd.Discipline
}

// DefaultConfig matches the paper's configuration.
func DefaultConfig() Config { return Config{Workers: 4, Batch: 8} }

// Forwarder is ZOID augmented with work-queue I/O scheduling.
type Forwarder struct {
	iofwd.Base
	pool *iofwd.WorkerPool
}

// New returns a work-queue forwarder for the pset.
func New(e *sim.Engine, ps *bgp.Pset, p bgp.Params, cfg Config) *Forwarder {
	if cfg.Workers <= 0 {
		cfg = DefaultConfig()
	}
	f := &Forwarder{Base: iofwd.NewBase(e, ps, p)}
	f.pool = iofwd.NewWorkerPool(e, ps.ION.CPU, iofwd.PoolConfig{
		Workers:     cfg.Workers,
		Batch:       cfg.Batch,
		DispatchCPU: p.IONWorkerDispatchCPU,
		Discipline:  cfg.Discipline,
	})
	return f
}

// Name implements iofwd.Forwarder.
func (f *Forwarder) Name() string { return "zoid+wq" }

// Pool exposes the worker pool for experiment instrumentation.
func (f *Forwarder) Pool() *iofwd.WorkerPool { return f.pool }

// Open implements iofwd.Forwarder; opens stay synchronous.
func (f *Forwarder) Open(p *sim.Proc, cn int, sink iofwd.Sink) (int, error) {
	f.UplinkControl(p, f.P.IONCtrlCPUThread)
	d := f.DB.Open(sink)
	f.OpenSink(p, sink)
	f.Reply(p)
	return d.FD, nil
}

// submitAndWait enqueues the task and blocks the application until a worker
// completes it ("Once the worker thread completes an I/O task, it wakes up
// the associated ZOID thread and passes the status of the I/O operation",
// paper IV).
func (f *Forwarder) submitAndWait(p *sim.Proc, d *iofwd.Descriptor, kind iofwd.TaskKind, n int64) error {
	op := f.DB.Start(d)
	var result error
	completed := false
	f.pool.Submit(&iofwd.Task{
		Kind:  kind,
		Desc:  d,
		Op:    op,
		Bytes: n,
		Done: func(err error) {
			result = err
			completed = true
			f.DB.Complete(d, op, nil) // status handed back directly
			f.Eng.Ready(p)
		},
	})
	for !completed {
		p.Suspend()
	}
	return result
}

// Write forwards a write through the work queue; the application blocks
// until the worker has executed it.
func (f *Forwarder) Write(p *sim.Proc, cn int, fd int, n int64) error {
	d, err := f.DB.Lookup(fd)
	if err != nil {
		return err
	}
	f.UplinkControl(p, f.P.IONCtrlCPUThread)
	f.UplinkData(p, n, 1)
	werr := f.submitAndWait(p, d, iofwd.TaskWrite, n)
	f.Reply(p)
	f.CountWrite(n)
	if werr != nil {
		return fmt.Errorf("zoid+wq: write fd %d: %w", fd, werr)
	}
	return nil
}

// Read forwards a read through the work queue.
func (f *Forwarder) Read(p *sim.Proc, cn int, fd int, n int64) error {
	d, err := f.DB.Lookup(fd)
	if err != nil {
		return err
	}
	f.UplinkControl(p, f.P.IONCtrlCPUThread)
	rerr := f.submitAndWait(p, d, iofwd.TaskRead, n)
	f.DownlinkData(p, n, 1)
	f.CountRead(n)
	if rerr != nil {
		return fmt.Errorf("zoid+wq: read fd %d: %w", fd, rerr)
	}
	return nil
}

// Close implements iofwd.Forwarder.
func (f *Forwarder) Close(p *sim.Proc, cn int, fd int) error {
	d, err := f.DB.Lookup(fd)
	if err != nil {
		return err
	}
	f.UplinkControl(p, f.P.IONCtrlCPUThread)
	f.CloseSink(p, d.Sink)
	err = f.DB.Close(p, d)
	f.Reply(p)
	return err
}

// Drain waits for all queued operations; with synchronous staging there is
// never queued work once the applications return, so this returns quickly.
func (f *Forwarder) Drain(p *sim.Proc) { f.DB.WaitAll(p) }

// Shutdown stops the worker pool.
func (f *Forwarder) Shutdown() { f.pool.Shutdown() }
