// Package iofwd defines the I/O-forwarding abstractions shared by the four
// forwarding mechanisms evaluated in the paper — CIOD, ZOID, ZOID with I/O
// scheduling (work queue), and ZOID with I/O scheduling plus asynchronous
// data staging — together with their common substrate: the descriptor
// database, the buffer management layer (BML), and the ION-side sinks
// (/dev/null, data-analysis nodes, files).
//
// A Forwarder executes I/O operations on behalf of a compute node, exactly
// as the BG/P compute node kernel ships every I/O call to the pset's I/O
// node. Whether the compute node blocks for the full operation (CIOD, ZOID,
// work queue) or only for the copy onto the ION (asynchronous staging) is
// the mechanism under study.
package iofwd

import (
	"repro/internal/sim"
)

// Sink is the terminal consumer or producer of forwarded data on the ION
// side: /dev/null, a socket to a data-analysis node, or a file on the
// parallel filesystem. Implementations charge the simulated resources the
// real operation would consume.
type Sink interface {
	// Write consumes n bytes from ION memory, executed by proc p (the
	// forwarder thread or worker that performs the I/O).
	Write(p *sim.Proc, n int64) error
	// Read produces n bytes into ION memory.
	Read(p *sim.Proc, n int64) error
}

// SinkOpener is optionally implemented by sinks with open/close costs
// (socket connect, file metadata). Open and close are always synchronous,
// even under asynchronous staging (paper Section IV).
type SinkOpener interface {
	OpenCost(p *sim.Proc)
	CloseCost(p *sim.Proc)
}

// Forwarder is one I/O-forwarding mechanism serving the compute nodes of a
// single pset.
type Forwarder interface {
	// Name identifies the mechanism ("ciod", "zoid", "zoid+wq",
	// "zoid+wq+async").
	Name() string
	// Open forwards an open, binding fd to sink. Synchronous.
	Open(p *sim.Proc, cn int, sink Sink) (fd int, err error)
	// Write forwards a write of n bytes on fd from compute node cn. The
	// calling process is the CN-side application; it blocks according to
	// the mechanism's semantics. A non-nil error may describe a previous
	// staged operation on the same descriptor (deferred reporting).
	Write(p *sim.Proc, cn int, fd int, n int64) error
	// Read forwards a read of n bytes on fd. Reads block for the data in
	// every mechanism.
	Read(p *sim.Proc, cn int, fd int, n int64) error
	// Close drains outstanding staged operations on fd, releases it, and
	// returns any still-unreported deferred error. Synchronous.
	Close(p *sim.Proc, cn int, fd int) error
	// Drain blocks until every staged operation has completed, so
	// benchmarks time full data delivery rather than enqueueing.
	Drain(p *sim.Proc)
	// Shutdown stops worker processes. The forwarder must not be used
	// afterwards.
	Shutdown()
}

// Stats captures forwarder-side counters for tests and experiments.
type Stats struct {
	Ops          uint64
	BytesWritten int64
	BytesRead    int64
	// StagedPeak is the high-water mark of staged-but-unwritten bytes
	// (asynchronous mechanism only).
	StagedPeak int64
	// StallTime is the cumulative virtual time operations spent blocked
	// waiting for BML memory (asynchronous mechanism only).
	StallTime sim.Time
}
