// Package bgp models the IBM Blue Gene/P I/O subsystem of the Argonne
// Leadership Computing Facility as described in Section II of the paper:
// compute nodes (CNs) grouped 64-to-a-pset around a dedicated I/O node
// (ION), the collective (tree) network between them, the external 10 GbE
// network to data-analysis (DA) nodes and file-server nodes (FSNs), and the
// calibrated cost parameters that reproduce the Section III measurements.
package bgp

import "repro/internal/sim"

// MiB is 2^20 bytes; the paper reports all throughput in MiB/s.
const MiB = 1 << 20

// Params holds every calibrated constant of the machine model. Each field
// is annotated with the paper observation that pins it. Values not directly
// reported in the paper are fitted so the Section III microbenchmarks land
// near the reported numbers; the fit is documented in EXPERIMENTS.md.
type Params struct {
	// --- Collective (tree) network: CN <-> ION (paper III-A) ---

	// CollBandwidth is the raw tree link bandwidth. Paper: theoretical peak
	// 850 MB/s.
	CollBandwidth float64
	// CollPayload and CollOverhead give the packet format: 256-byte payload
	// with 16 bytes of I/O-forwarding header plus 10 bytes of hardware
	// header, for a packetized peak of ~731 MiB/s.
	CollPayload  int64
	CollOverhead int64
	// CollLatency is the one-way tree traversal latency per message.
	CollLatency sim.Time
	// CollShare is the fan-in efficiency-loss coefficient on the tree
	// uplink: delivered bandwidth is scaled by 1/(1 + CollShare*ln(k)) for
	// k concurrent streams. This models the arbitration/flow-control cost
	// of many CNs converging on one ION and produces the figure-4 decline
	// beyond 32 CNs.
	CollShare float64
	// CtrlBytes is the size of the first step of the two-step forwarding
	// protocol ("function parameters are first sent from the CN to the
	// ION"), which gates small-message throughput (paper V-A2).
	CtrlBytes int64
	// ReplyBytes is the size of the completion message back to the CN.
	ReplyBytes int64
	// CNOverhead is the CN-side fixed cost per forwarded operation (CNK
	// trap, marshalling).
	CNOverhead sim.Time

	// --- I/O node (paper II-A: quad-core 850 MHz PPC450, 2 GB) ---

	// IONCores is 4.
	IONCores int
	// IONShare and IONSwitch are the contention-curve coefficients for the
	// ION CPU (see simcpu.ContentionCurve): memory/cache pressure per
	// additional in-core task, and context-switch tax per oversubscribed
	// task. Fitted to: 1 sender thread sustains 307 MiB/s, 4 sustain ~791,
	// 8 decline (III-B, fig 5/11), and end-to-end forwarding peaks near
	// 420 MiB/s (III-C, fig 6).
	IONShare  float64
	IONSwitch float64
	// TreeDevBandwidth is the ION tree-device engine rate in bytes/second:
	// reception from the collective network is serialized through the
	// device's DMA/descriptor path rather than costing per-CN thread CPU.
	// It is provisioned well above the wire peak so it orders, but does not
	// bottleneck, reception.
	TreeDevBandwidth float64
	// IONCopyCost is core-seconds per byte for a memory copy on the ION
	// (one copy into the forwarder's buffer; CIOD pays a second copy
	// through its shared-memory region, paper II-B1).
	IONCopyCost float64
	// IONSendCost is core-seconds per byte for a socket send on the ION.
	// Paper III-B: a single thread sustains only 307 MiB/s, so
	// IONSendCost = 1/(307 MiB/s).
	IONSendCost float64
	// IONCtrlCPUThread is the fixed ION CPU cost to receive, decode, and
	// dispatch one forwarded operation in a thread-based forwarder (ZOID).
	IONCtrlCPUThread float64
	// IONCtrlCPUProc is the same for a process-based forwarder (CIOD):
	// higher because the daemon hands the request to a per-CN I/O proxy
	// process through shared memory (paper II-B1), paying process context
	// switches. This is the source of ZOID's ~2% edge in fig 4.
	IONCtrlCPUProc float64
	// IONWorkerDispatchCPU is the fixed cost for a work-queue worker to
	// pick up one task from the shared FIFO inside its event loop — cheaper
	// than a full thread wakeup, which is part of the scheduling win.
	IONWorkerDispatchCPU float64
	// IONNullWriteCPU is the per-operation cost of the terminal write to
	// /dev/null in the fig-4 benchmark.
	IONNullWriteCPU float64

	// --- External I/O network: ION <-> DA/FSN (paper III-B) ---

	// ExtBandwidth is the 10 Gbps NIC, ~1190 MiB/s theoretical peak.
	ExtBandwidth float64
	// ExtPayload/ExtOverhead model Ethernet+TCP framing.
	ExtPayload  int64
	ExtOverhead int64
	// ExtLatency is the one-way latency ION->DA across the Myrinet complex.
	ExtLatency sim.Time
	// SockBufBytes is the per-connection kernel socket buffer on the ION: a
	// send returns once the buffer accepts the payload and blocks when it
	// is full, so sends overlap computation by up to this much per stream.
	SockBufBytes int64
	// SockChunkBytes is the granularity at which payload moves into the
	// socket buffer.
	SockChunkBytes int64

	// --- Data-analysis nodes (paper II-A: dual quad-core 2 GHz Xeon) ---

	DACores int
	DAShare float64
	// DASendCost: nuttcp between two DA nodes sustains 1110 MiB/s with a
	// single thread (III-B), so DASendCost = 1/(1110 MiB/s).
	DASendCost float64
	// DARecvCost is the DA-side per-byte receive cost.
	DARecvCost float64

	// --- Staging (paper IV) ---

	// BMLBytes is the buffer-management-layer memory cap on the ION.
	// The ION has 2 GB; the forwarder can stage most of it.
	BMLBytes int64

	// --- File-server nodes / GPFS (paper II-A, V-B) ---

	// FSNCount is the number of file server nodes (128 at ALCF).
	FSNCount int
	// FSNBandwidth is each FSN's NIC bandwidth (10 Gbps).
	FSNBandwidth float64
	// FSNDiskBandwidth is the effective per-FSN storage bandwidth of its
	// share of the DDN arrays on the shared, heavily used production
	// filesystem.
	FSNDiskBandwidth float64
	// StripeBytes is the GPFS block/stripe size.
	StripeBytes int64
	// FileOpenLatency is the metadata cost of open/close, handled
	// synchronously even under staging (paper IV).
	FileOpenLatency sim.Time
	// IONFSCost is the ION CPU per-byte cost of the parallel-filesystem
	// client path (on top of the socket send cost).
	IONFSCost float64
}

// Default returns the calibrated ALCF parameter set.
func Default() Params {
	return Params{
		CollBandwidth: 850e6,
		CollPayload:   256,
		CollOverhead:  16 + 10,
		CollLatency:   25 * sim.Microsecond,
		CollShare:     0.035,
		CtrlBytes:     128,
		ReplyBytes:    64,
		CNOverhead:    20 * sim.Microsecond,

		IONCores:         4,
		IONShare:         0.186,
		IONSwitch:        0.006,
		TreeDevBandwidth: 2500.0 * MiB,
		// 1/(1800 MiB/s): one memcpy at roughly half of memory bandwidth.
		IONCopyCost: 1.0 / (1800.0 * MiB),
		// 1/(307 MiB/s): paper fig 5, single sender thread.
		IONSendCost:          1.0 / (307.0 * MiB),
		IONCtrlCPUThread:     60e-6,
		IONCtrlCPUProc:       90e-6,
		IONWorkerDispatchCPU: 6e-6,
		IONNullWriteCPU:      3e-6,

		ExtBandwidth:   1.25e9,
		ExtPayload:     1460,
		ExtOverhead:    78,
		ExtLatency:     90 * sim.Microsecond,
		SockBufBytes:   512 * 1024,
		SockChunkBytes: 128 * 1024,

		DACores: 8,
		DAShare: 0.03,
		// 1/(1110 MiB/s): paper III-B, DA-to-DA single stream.
		DASendCost: 1.0 / (1110.0 * MiB),
		DARecvCost: 1.0 / (2200.0 * MiB),

		BMLBytes: 1536 * MiB,

		FSNCount:         128,
		FSNBandwidth:     1.25e9,
		FSNDiskBandwidth: 350e6,
		StripeBytes:      4 * MiB,
		FileOpenLatency:  800 * sim.Microsecond,
		IONFSCost:        1.0 / (1400.0 * MiB),
	}
}

// CollPacketEfficiency returns the payload fraction of the collective
// network after header overhead (~0.908, giving the ~731 MiB/s peak).
func (p Params) CollPacketEfficiency() float64 {
	return float64(p.CollPayload) / float64(p.CollPayload+p.CollOverhead)
}

// CollPeakPayload returns the packetized collective-network payload peak in
// bytes per second (paper: ~731 MiB/s).
func (p Params) CollPeakPayload() float64 {
	return p.CollBandwidth * p.CollPacketEfficiency()
}

// ExtPeakPayload returns the external network payload peak in bytes per
// second (paper: ~1190 MiB/s raw minus framing).
func (p Params) ExtPeakPayload() float64 {
	return p.ExtBandwidth * float64(p.ExtPayload) / float64(p.ExtPayload+p.ExtOverhead)
}

// MaxAchievable returns the end-to-end bound the paper plots as the
// "maximum throughput" line in figures 6 and 9: the minimum of the maximum
// sustained collective-network and external-network throughputs (~650
// MiB/s, paper III-C).
func (p Params) MaxAchievable(collSustained, extSustained float64) float64 {
	if collSustained < extSustained {
		return collSustained
	}
	return extSustained
}
