package bgp

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/simcpu"
	"repro/internal/simnet"
)

// ION is an I/O node: a quad-core CPU, a 10 GbE NIC, and the tree-device
// engine that serializes collective-network reception. One ION serves the
// 64 compute nodes of its pset.
type ION struct {
	ID  int
	CPU *simcpu.CPU
	NIC *simnet.Link
	// TreeDev is the tree DMA/descriptor engine: per-byte reception work
	// that is ordered through the device rather than charged to forwarder
	// threads.
	TreeDev *sim.PS
}

// Pset is a group of compute nodes sharing one ION over a collective (tree)
// network uplink (paper II-A: 64 nodes per pset).
type Pset struct {
	ID int
	// Tree is the shared uplink from the pset's CNs to the ION. Both
	// directions share the same fair-queued device model.
	Tree *simnet.Link
	ION  *ION
	// CNs is the number of compute nodes in the pset.
	CNs int
}

// DANode is a data-analysis (Eureka) node: fast Xeon CPU, 10 GbE NIC.
type DANode struct {
	ID  int
	CPU *simcpu.CPU
	NIC *simnet.Link
}

// Machine is a simulated slice of the ALCF: one or more psets, a set of DA
// sink nodes, and the parameter table. File server nodes live in
// internal/storage and attach via the same external network.
type Machine struct {
	Eng   *sim.Engine
	P     Params
	Psets []*Pset
	DAs   []*DANode
}

// Config selects the machine slice to build.
type Config struct {
	// Psets is the number of psets (each contributes one ION).
	Psets int
	// CNsPerPset is the number of compute nodes per pset (<= 64).
	CNsPerPset int
	// DANodes is the number of data-analysis sink nodes.
	DANodes int
	// Params overrides the default parameter table when non-nil.
	Params *Params
}

// NewMachine builds the machine slice on the given engine.
func NewMachine(e *sim.Engine, cfg Config) *Machine {
	if cfg.Psets <= 0 || cfg.CNsPerPset <= 0 || cfg.CNsPerPset > 64 {
		panic(fmt.Sprintf("bgp: invalid machine config %+v", cfg))
	}
	p := Default()
	if cfg.Params != nil {
		p = *cfg.Params
	}
	m := &Machine{Eng: e, P: p}
	for i := 0; i < cfg.Psets; i++ {
		tree := simnet.NewLink(e, fmt.Sprintf("tree%d", i), p.CollBandwidth)
		tree.SetFraming(simnet.Framing{PayloadBytes: p.CollPayload, OverheadBytes: p.CollOverhead})
		tree.SetLatency(p.CollLatency)
		if p.CollShare > 0 {
			share := p.CollShare
			// Logarithmic fan-in loss: doubling the number of concurrent
			// streams costs a fixed increment of arbitration overhead, so
			// the decline is visible but does not collapse at 64 CNs.
			tree.SetEfficiency(func(k int) float64 {
				if k <= 1 {
					return 1
				}
				return 1 / (1 + share*math.Log(float64(k)))
			})
		}
		// Propagation latency is charged per connection (at open/teardown),
		// not per chunk: TCP pipelines segments, so latency never
		// serializes a stream's throughput.
		nic := simnet.NewLink(e, fmt.Sprintf("ion%d-nic", i), p.ExtBandwidth)
		nic.SetFraming(simnet.Framing{PayloadBytes: p.ExtPayload, OverheadBytes: p.ExtOverhead})
		ion := &ION{
			ID: i,
			CPU: simcpu.New(e, simcpu.Config{
				Name:   fmt.Sprintf("ion%d", i),
				Cores:  p.IONCores,
				Share:  p.IONShare,
				Switch: p.IONSwitch,
			}),
			NIC:     nic,
			TreeDev: sim.NewPS(e, 1, p.TreeDevBandwidth),
		}
		m.Psets = append(m.Psets, &Pset{ID: i, Tree: tree, ION: ion, CNs: cfg.CNsPerPset})
	}
	for i := 0; i < cfg.DANodes; i++ {
		nic := simnet.NewLink(e, fmt.Sprintf("da%d-nic", i), p.ExtBandwidth)
		nic.SetFraming(simnet.Framing{PayloadBytes: p.ExtPayload, OverheadBytes: p.ExtOverhead})
		m.DAs = append(m.DAs, &DANode{
			ID:  i,
			CPU: simcpu.New(e, simcpu.Config{Name: fmt.Sprintf("da%d", i), Cores: p.DACores, Share: p.DAShare}),
			NIC: nic,
		})
	}
	return m
}

// TotalCNs returns the number of compute nodes across all psets.
func (m *Machine) TotalCNs() int {
	n := 0
	for _, ps := range m.Psets {
		n += ps.CNs
	}
	return n
}
