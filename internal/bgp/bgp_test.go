package bgp

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestCollectivePacketEfficiency(t *testing.T) {
	p := Default()
	// Paper III-A: 256-byte payload + 16-byte forwarding header + 10-byte
	// hardware header gives ~90.8% efficiency and a ~731 MiB/s peak over
	// the raw 850 MB/s.
	if math.Abs(p.CollPacketEfficiency()-256.0/282.0) > 1e-12 {
		t.Fatalf("efficiency %v", p.CollPacketEfficiency())
	}
	peak := p.CollPeakPayload() / MiB
	if peak < 725 || peak > 740 {
		t.Fatalf("packetized peak %.1f MiB/s, want ~731", peak)
	}
}

func TestExtPeakPayloadNearTheoretical(t *testing.T) {
	p := Default()
	peak := p.ExtPeakPayload() / MiB
	// Paper III-B: ~1190 MiB/s theoretical for 10 Gbps; framing trims a
	// few percent.
	if peak < 1100 || peak > 1195 {
		t.Fatalf("external peak %.1f MiB/s", peak)
	}
}

func TestCalibratedCostsMatchPaperAnchors(t *testing.T) {
	p := Default()
	// One ION core sustains 307 MiB/s of socket sends (III-B).
	if got := 1.0 / p.IONSendCost / MiB; math.Abs(got-307) > 0.5 {
		t.Fatalf("single-core send rate %.1f MiB/s, want 307", got)
	}
	// One DA stream sustains 1110 MiB/s (III-B).
	if got := 1.0 / p.DASendCost / MiB; math.Abs(got-1110) > 0.5 {
		t.Fatalf("DA send rate %.1f MiB/s, want 1110", got)
	}
	// Process dispatch must cost more than thread dispatch (II-B1 vs II-B2).
	if p.IONCtrlCPUProc <= p.IONCtrlCPUThread {
		t.Fatal("CIOD per-op cost not above ZOID's")
	}
}

func TestMaxAchievable(t *testing.T) {
	p := Default()
	if got := p.MaxAchievable(680, 791); got != 680 {
		t.Fatalf("MaxAchievable = %v", got)
	}
	if got := p.MaxAchievable(900, 791); got != 791 {
		t.Fatalf("MaxAchievable = %v", got)
	}
}

func TestMachineTopology(t *testing.T) {
	e := sim.New(1)
	m := NewMachine(e, Config{Psets: 4, CNsPerPset: 64, DANodes: 20})
	if len(m.Psets) != 4 || len(m.DAs) != 20 {
		t.Fatalf("topology %d psets, %d DAs", len(m.Psets), len(m.DAs))
	}
	if m.TotalCNs() != 256 {
		t.Fatalf("total CNs %d", m.TotalCNs())
	}
	for i, ps := range m.Psets {
		if ps.ION == nil || ps.Tree == nil || ps.ION.TreeDev == nil {
			t.Fatalf("pset %d incomplete", i)
		}
		if ps.ION.CPU.Cores() != 4 {
			t.Fatalf("ION %d has %d cores, want 4", i, ps.ION.CPU.Cores())
		}
	}
	for i, da := range m.DAs {
		if da.CPU.Cores() != 8 {
			t.Fatalf("DA %d has %d cores", i, da.CPU.Cores())
		}
	}
}

func TestMachineConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for pset of 65 CNs")
		}
	}()
	NewMachine(sim.New(1), Config{Psets: 1, CNsPerPset: 65})
}

func TestTreeFanInEfficiencyDeclines(t *testing.T) {
	e := sim.New(1)
	p := Default()
	m := NewMachine(e, Config{Psets: 1, CNsPerPset: 64, Params: &p})
	tree := m.Psets[0].Tree
	// Time a lone transfer vs one of 64 concurrent transfers: fan-in must
	// make the concurrent case worse than the ideal 64x slowdown.
	var lone sim.Time
	e.Spawn("lone", func(proc *sim.Proc) {
		start := proc.Now()
		tree.Transfer(proc, 1<<20)
		lone = proc.Now() - start
	})
	e.Run(0)

	e2 := sim.New(1)
	m2 := NewMachine(e2, Config{Psets: 1, CNsPerPset: 64, Params: &p})
	var longest sim.Time
	for i := 0; i < 64; i++ {
		e2.Spawn("t", func(proc *sim.Proc) {
			start := proc.Now()
			m2.Psets[0].Tree.Transfer(proc, 1<<20)
			if d := proc.Now() - start; d > longest {
				longest = d
			}
		})
	}
	e2.Run(0)
	if longest <= 64*lone {
		t.Fatalf("64-way fan-in took %v, ideal sharing is %v; no arbitration loss", longest, 64*lone)
	}
}
