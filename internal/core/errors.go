package core

import (
	"errors"
	"fmt"
)

// Errno is the compact error code carried by the wire protocol.
type Errno uint16

// Wire error codes.
const (
	EOK Errno = iota
	EIO
	EBADF
	ENOENT
	EINVAL
	ENOSPC
	ECLOSED
	EEXIST
	// EAGAIN is the overload-shedding code: the server refused the
	// operation before taking any side effect (no cursor movement, no
	// staging), so the client may safely retry it after a backoff.
	EAGAIN
)

func (e Errno) Error() string {
	switch e {
	case EOK:
		return "ok"
	case EIO:
		return "I/O error"
	case EBADF:
		return "bad descriptor"
	case ENOENT:
		return "no such file"
	case EINVAL:
		return "invalid argument"
	case ENOSPC:
		return "no space"
	case ECLOSED:
		return "connection closed"
	case EEXIST:
		return "already exists"
	case EAGAIN:
		return "server overloaded, try again"
	}
	return fmt.Sprintf("errno(%d)", uint16(e))
}

// Typed client-side failure roots. They are wrapped (with the underlying
// cause) into the errors the Client returns, so callers can classify
// failures with errors.Is without string matching.
var (
	// ErrConnectionLost reports that the transport failed while the
	// operation was in flight (or before it could be sent) and the
	// operation was not safely replayable. Whether the server executed it
	// is unknown.
	ErrConnectionLost = errors.New("core: connection lost")
	// ErrClientClosed reports that the Client was closed locally by Close.
	ErrClientClosed = errors.New("core: client closed")
	// ErrOpTimeout reports that a per-operation deadline (WithTimeout)
	// expired before the response arrived. The operation may still execute
	// on the server; only idempotent positional operations should be
	// reissued.
	ErrOpTimeout = errors.New("core: operation deadline exceeded")
)

// toErrno maps a backend error onto a wire code.
func toErrno(err error) Errno {
	if err == nil {
		return EOK
	}
	var e Errno
	if errors.As(err, &e) {
		return e
	}
	return EIO
}

// DeferredError reports that a previously staged operation on a descriptor
// failed; it is surfaced by a later operation, exactly as the paper's
// descriptor database does ("Errors are passed to the application on
// subsequent operations on the descriptor").
type DeferredError struct {
	// FD is the descriptor the failed operation was staged on.
	FD uint64
	// Op is the operation counter of the failed staged operation.
	Op uint64
	// Err is the failure.
	Err error
}

func (d *DeferredError) Error() string {
	return fmt.Sprintf("deferred error from staged op %d on fd %d: %v", d.Op, d.FD, d.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (d *DeferredError) Unwrap() error { return d.Err }
