package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"net"
	"testing"
)

func TestSubsampleFilter(t *testing.T) {
	f := &SubsampleFilter{RecordBytes: 4, Keep1InN: 2}
	in := []byte("aaaabbbbccccdddd")
	out, err := f.Apply("x", 0, in)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "aaaacccc" {
		t.Fatalf("subsample = %q", out)
	}
	// Degenerate configuration passes through.
	pass, _ := (&SubsampleFilter{}).Apply("x", 0, in)
	if !bytes.Equal(pass, in) {
		t.Fatal("degenerate subsample altered data")
	}
}

func TestChecksumFilterObserves(t *testing.T) {
	f := NewChecksumFilter()
	a := []byte("hello ")
	b := []byte("world")
	if out, _ := f.Apply("obj", 0, a); !bytes.Equal(out, a) {
		t.Fatal("checksum filter altered data")
	}
	_, _ = f.Apply("obj", 6, b)
	want := crc32.ChecksumIEEE([]byte("hello world"))
	if got := f.Sum("obj"); got != want {
		t.Fatalf("running crc %#x, want %#x", got, want)
	}
}

func TestMinMaxFilter(t *testing.T) {
	f := NewMinMaxFilter()
	samples := []float64{3.5, -2.25, 7.75, 0}
	buf := make([]byte, 8*len(samples))
	for i, v := range samples {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	if _, err := f.Apply("field", 0, buf); err != nil {
		t.Fatal(err)
	}
	lo, hi, n := f.Range("field")
	if lo != -2.25 || hi != 7.75 || n != 4 {
		t.Fatalf("range = [%v, %v] n=%d", lo, hi, n)
	}
}

func TestFilterChainComposesAndAccounts(t *testing.T) {
	chain := NewFilterChain(
		&SubsampleFilter{RecordBytes: 2, Keep1InN: 2},
		&TruncateFilter{Max: 4},
	)
	out, err := chain.Apply("x", 0, []byte("aabbccddee"))
	if err != nil {
		t.Fatal(err)
	}
	// Subsample keeps aa, cc, ee (6 bytes); truncate caps at 4.
	if string(out) != "aacc" {
		t.Fatalf("chain output %q", out)
	}
	in, outN := chain.Reduction()
	if in != 10 || outN != 4 {
		t.Fatalf("reduction %d->%d", in, outN)
	}
}

func TestFilterChainErrorPropagates(t *testing.T) {
	boom := errors.New("bad record")
	chain := NewFilterChain(filterFunc(func(name string, off int64, d []byte) ([]byte, error) {
		return nil, boom
	}))
	if _, err := chain.Apply("x", 0, []byte("data")); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestServerSideReduction is the paper's future-work scenario end to end:
// the forwarding node subsamples the stream, so storage receives less than
// the application wrote while the application sees full-size acknowledged
// writes.
func TestServerSideReduction(t *testing.T) {
	backend := NewMemBackend()
	chain := NewFilterChain(&SubsampleFilter{RecordBytes: 8, Keep1InN: 4})
	srv := NewServer(Config{Mode: ModeAsync, Workers: 2, Backend: backend, Filters: chain})
	cc, sc := net.Pipe()
	go func() { _ = srv.ServeConn(sc) }()
	c := NewClient(cc)
	defer c.Close()
	defer srv.Close()

	f, err := c.Open(context.Background(), "reduced")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("01234567"), 128) // 1024 bytes, 128 records
	for i := 0; i < 4; i++ {
		n, err := f.Write(payload)
		if err != nil || n != len(payload) {
			t.Fatalf("write: n=%d err=%v", n, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	size, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(4 * 1024 / 4) // one record in four survives
	if size != want {
		t.Fatalf("stored %d bytes, want %d", size, want)
	}
	if in, out := chain.Reduction(); in != 4096 || out != uint64(want) {
		t.Fatalf("chain accounted %d->%d", in, out)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestObserveOnlyFilterKeepsDataIntact runs a checksum filter in the write
// path and verifies both the stored bytes and the observed checksum.
func TestObserveOnlyFilterKeepsDataIntact(t *testing.T) {
	backend := NewMemBackend()
	sum := NewChecksumFilter()
	srv := NewServer(Config{Mode: ModeWorkQueue, Workers: 1, Backend: backend, Filters: NewFilterChain(sum)})
	cc, sc := net.Pipe()
	go func() { _ = srv.ServeConn(sc) }()
	c := NewClient(cc)
	defer c.Close()
	defer srv.Close()

	f, err := c.Open(context.Background(), "intact")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 9000)
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, ok := backend.Bytes("intact")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("observe-only filter corrupted data")
	}
	if sum.Sum("intact") != crc32.ChecksumIEEE(payload) {
		t.Fatal("checksum mismatch")
	}
}

// filterFunc adapts a function to Filter for tests.
type filterFunc func(name string, off int64, data []byte) ([]byte, error)

func (f filterFunc) Name() string { return "func" }
func (f filterFunc) Apply(name string, off int64, data []byte) ([]byte, error) {
	return f(name, off, data)
}
