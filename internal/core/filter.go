package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync/atomic"
)

// Filter transforms data on the forwarding node before it reaches the
// backend — the paper's future-work direction ("Since the compute
// capabilities of the I/O forwarding nodes are usually underutilized, we
// are investigating techniques to offload data filtering onto the I/O
// forwarding nodes in order to reduce the amount of data written to storage
// as well as to facilitate in situ analytics"), and the ZOID plug-in
// mechanism it would ride on (paper II-B2).
//
// A Filter sees every write payload for the descriptors it is attached to.
// It may observe the data (analytics), rewrite it, or shrink it (reduction)
// by returning a different slice. Returned slices must remain valid until
// the write executes; returning the input unmodified is the observe-only
// case.
type Filter interface {
	// Name identifies the filter in statistics.
	Name() string
	// Apply processes one write payload destined for offset off of the
	// named object and returns the bytes to actually store.
	Apply(name string, off int64, data []byte) ([]byte, error)
}

// FilterChain composes filters in order; the output of one feeds the next.
type FilterChain struct {
	filters []Filter

	in  atomic.Uint64
	out atomic.Uint64
}

// NewFilterChain builds a chain. An empty chain passes data through.
func NewFilterChain(filters ...Filter) *FilterChain {
	return &FilterChain{filters: filters}
}

// Apply runs the chain.
func (fc *FilterChain) Apply(name string, off int64, data []byte) ([]byte, error) {
	fc.in.Add(uint64(len(data)))
	var err error
	for _, f := range fc.filters {
		data, err = f.Apply(name, off, data)
		if err != nil {
			return nil, fmt.Errorf("core: filter %q: %w", f.Name(), err)
		}
	}
	fc.out.Add(uint64(len(data)))
	return data, nil
}

// Reduction reports bytes in and bytes out across the chain's lifetime —
// "the amount of data written to storage" saved.
func (fc *FilterChain) Reduction() (in, out uint64) {
	return fc.in.Load(), fc.out.Load()
}

// --- Built-in filters ---

// SubsampleFilter keeps every Nth fixed-size record — the classic in-situ
// reduction for visualization-grade output.
type SubsampleFilter struct {
	// RecordBytes is the record granularity.
	RecordBytes int
	// Keep1InN keeps one record in every N.
	Keep1InN int
}

// Name implements Filter.
func (f *SubsampleFilter) Name() string { return "subsample" }

// Apply implements Filter.
func (f *SubsampleFilter) Apply(name string, off int64, data []byte) ([]byte, error) {
	if f.RecordBytes <= 0 || f.Keep1InN <= 1 {
		return data, nil
	}
	out := make([]byte, 0, len(data)/f.Keep1InN+f.RecordBytes)
	for i, rec := 0, 0; i < len(data); i, rec = i+f.RecordBytes, rec+1 {
		if rec%f.Keep1InN != 0 {
			continue
		}
		end := min(i+f.RecordBytes, len(data))
		out = append(out, data[i:end]...)
	}
	return out, nil
}

// ChecksumFilter observes the stream and maintains a running CRC32 per
// object — in-situ integrity analytics with zero data reduction.
type ChecksumFilter struct {
	sums map[string]uint32
}

// NewChecksumFilter returns an empty checksum observer. It is not
// goroutine-safe across objects written concurrently by multiple workers;
// attach one per descriptor or serialize externally.
func NewChecksumFilter() *ChecksumFilter {
	return &ChecksumFilter{sums: make(map[string]uint32)}
}

// Name implements Filter.
func (f *ChecksumFilter) Name() string { return "crc32" }

// Apply implements Filter.
func (f *ChecksumFilter) Apply(name string, off int64, data []byte) ([]byte, error) {
	f.sums[name] = crc32.Update(f.sums[name], crc32.IEEETable, data)
	return data, nil
}

// Sum returns the running checksum for an object.
func (f *ChecksumFilter) Sum(name string) uint32 { return f.sums[name] }

// MinMaxFilter computes running min/max of float64 samples — the kind of
// lightweight statistic an in-situ analysis pipeline extracts while data
// streams past the forwarding node.
type MinMaxFilter struct {
	mins map[string]float64
	maxs map[string]float64
	n    map[string]uint64
}

// NewMinMaxFilter returns an empty statistics observer.
func NewMinMaxFilter() *MinMaxFilter {
	return &MinMaxFilter{
		mins: make(map[string]float64),
		maxs: make(map[string]float64),
		n:    make(map[string]uint64),
	}
}

// Name implements Filter.
func (f *MinMaxFilter) Name() string { return "minmax" }

// Apply implements Filter.
func (f *MinMaxFilter) Apply(name string, off int64, data []byte) ([]byte, error) {
	for i := 0; i+8 <= len(data); i += 8 {
		v := float64FromBits(binary.LittleEndian.Uint64(data[i:]))
		if f.n[name] == 0 {
			f.mins[name], f.maxs[name] = v, v
		} else {
			if v < f.mins[name] {
				f.mins[name] = v
			}
			if v > f.maxs[name] {
				f.maxs[name] = v
			}
		}
		f.n[name]++
	}
	return data, nil
}

// Range returns the observed sample range and count for an object.
func (f *MinMaxFilter) Range(name string) (lo, hi float64, n uint64) {
	return f.mins[name], f.maxs[name], f.n[name]
}

// TruncateFilter caps each write to a byte budget — a degenerate reduction
// used in tests and as a template.
type TruncateFilter struct{ Max int }

// Name implements Filter.
func (f *TruncateFilter) Name() string { return "truncate" }

// Apply implements Filter.
func (f *TruncateFilter) Apply(name string, off int64, data []byte) ([]byte, error) {
	if f.Max >= 0 && len(data) > f.Max {
		return data[:f.Max], nil
	}
	return data, nil
}

func float64FromBits(b uint64) float64 {
	return math.Float64frombits(b)
}
