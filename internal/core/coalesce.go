package core

import (
	"context"
	"sync"
	"time"
)

// coalescer merges adjacent same-descriptor positional writes into one wire
// operation — the client-side half of the paper's §IV argument that request
// aggregation, not link speed, sets delivered bandwidth. Merging only
// happens when the congestion window is full: while there is admission
// headroom a write goes straight out (no added latency), but once the
// window saturates, writes that would otherwise park on the window instead
// pile into a per-descriptor buffer. The first parked writer becomes the
// buffer's owner; a background sender lingers briefly for neighbors, seals
// the buffer, sends it as a single Pwrite through the ordinary call path
// (one window slot, one RTT, retry/replay like any idempotent op), and
// splits the acknowledgement back onto the constituent writes in order.
//
// Only OpPwrite frames are merged: positional writes are idempotent, so a
// merged frame caught in flight by a connection failure is replayed
// verbatim on the new transport. Cursor writes (OpWrite) never coalesce —
// they are non-idempotent and fail fast on failover, merged or not.
type coalescer struct {
	c        *Client
	maxBytes int
	maxOps   int
	linger   time.Duration

	mu   sync.Mutex
	bufs map[uint64]*coalBuf
}

// coalBuf is one open merge buffer: a contiguous run of sub-writes starting
// at off on descriptor fd.
type coalBuf struct {
	fd     uint64
	off    uint64
	data   []byte
	subs   []*coalSub
	sealed bool
	full   chan struct{} // closed when the buffer fills before linger
}

// coalSub is one caller's share of a merged frame.
type coalSub struct {
	n    int
	done chan coalResult // cap 1: exactly one result per sub
}

type coalResult struct {
	n   int
	err error
}

func newCoalescer(c *Client, cfg CoalesceConfig) *coalescer {
	return &coalescer{
		c:        c,
		maxBytes: cfg.MaxBytes,
		maxOps:   cfg.MaxOps,
		linger:   cfg.Linger,
		bufs:     make(map[uint64]*coalBuf),
	}
}

func (b *coalBuf) end() uint64 { return b.off + uint64(len(b.data)) }

// writeAt is the coalescing write path. It returns handled=false when the
// write should take the ordinary single-op path: the window has headroom
// and there is no open buffer this write extends.
func (co *coalescer) writeAt(ctx context.Context, fd uint64, b []byte, off int64) (n int, err error, handled bool) {
	if len(b) == 0 || len(b) > co.maxBytes {
		return 0, nil, false
	}
	co.mu.Lock()
	if buf := co.bufs[fd]; buf != nil && !buf.sealed {
		if buf.end() == uint64(off) &&
			len(buf.data)+len(b) <= co.maxBytes && len(buf.subs) < co.maxOps {
			// Join the open buffer as a follower.
			sub := &coalSub{n: len(b), done: make(chan coalResult, 1)}
			buf.data = append(buf.data, b...)
			buf.subs = append(buf.subs, sub)
			co.c.met.coalesced.Inc()
			if len(buf.data) >= co.maxBytes || len(buf.subs) >= co.maxOps {
				buf.sealed = true
				delete(co.bufs, fd)
				close(buf.full) // wake the sender early: the buffer is full
			}
			co.mu.Unlock()
			return co.await(ctx, sub)
		}
		// An open chain exists but this write does not extend it. Take the
		// ordinary path and leave the chain lingering: usurping the map slot
		// here would orphan the chain mid-linger, so one out-of-order
		// arrival (descriptor offsets race their writers) would break every
		// in-order merge behind it.
		co.mu.Unlock()
		return 0, nil, false
	}
	if co.c.cg.hasRoom() {
		// Window headroom: no reason to add linger latency; take the
		// ordinary single-op path, which acquires its own slot.
		co.mu.Unlock()
		return 0, nil, false
	}
	// Window full and nothing to extend: open a buffer and own it. The
	// sender goroutine lingers for neighbors, then drives the merged frame;
	// it is joined by Client.Close via coalWG.
	sub := &coalSub{n: len(b), done: make(chan coalResult, 1)}
	buf := &coalBuf{
		fd:   fd,
		off:  uint64(off),
		data: append([]byte(nil), b...),
		subs: []*coalSub{sub},
		full: make(chan struct{}),
	}
	co.bufs[fd] = buf
	co.c.coalWG.Add(1)
	go co.send(buf)
	co.mu.Unlock()
	return co.await(ctx, sub)
}

// send lingers for followers, seals the buffer, drives the merged frame
// through the ordinary call path, and splits the result across the
// sub-writes. It runs on its own goroutine so a caller whose context ends
// mid-merge can return immediately without abandoning its neighbors.
func (co *coalescer) send(buf *coalBuf) {
	defer co.c.coalWG.Done()
	if co.linger > 0 {
		t := time.NewTimer(co.linger)
		select {
		case <-t.C:
		case <-buf.full:
			t.Stop()
		}
	}
	co.mu.Lock()
	if !buf.sealed {
		buf.sealed = true
		if co.bufs[buf.fd] == buf {
			delete(co.bufs, buf.fd)
		}
	}
	data, subs := buf.data, buf.subs
	co.mu.Unlock()
	// The merged frame uses its own context: the constituent writers wait
	// with their callers' contexts, and an individual cancellation must not
	// cancel neighbors' bytes. ClientConfig.Timeout still bounds the op
	// inside call, and Client.Close fails it fast.
	r, err := co.c.call(context.Background(), OpPwrite, buf.fd, buf.off, uint32(len(data)), "", data)
	if err != nil {
		for _, s := range subs {
			s.done <- coalResult{0, err}
		}
		return
	}
	opErr := respErr(buf.fd, r)
	remaining := r.value
	for _, s := range subs {
		n := int64(s.n)
		if n > remaining {
			n = remaining
		}
		remaining -= n
		sErr := opErr
		if int(n) < s.n && sErr == nil {
			sErr = EIO // short merged write with a clean errno: surface it
		}
		s.done <- coalResult{int(n), sErr}
	}
}

// await waits for the caller's share of a merged frame. A context that ends
// first abandons only this sub-write's result — the merged frame still
// completes (or fails) for its neighbors, and the buffered result channel
// absorbs the late delivery.
func (co *coalescer) await(ctx context.Context, sub *coalSub) (int, error, bool) {
	select {
	case r := <-sub.done:
		return r.n, r.err, true
	case <-ctx.Done():
		return 0, co.c.ctxErr(ctx, OpPwrite, "waiting on a coalesced write"), true
	}
}
