package core

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// BML is the buffer management layer (paper Section IV): a capacity-bounded
// pool of power-of-2-sized staging buffers. Get blocks while the pool is
// exhausted — the paper's back-pressure rule for asynchronous staging — and
// Put returns a buffer for reuse. GetTimeout bounds the admission wait so a
// server can degrade to the synchronous path instead of blocking forever on
// exhaustion.
type BML struct {
	capacity int64
	minClass int64

	mu      sync.Mutex
	used    int64
	free    map[int64][][]byte // class size -> stack of free buffers
	waiters int
	// waitc is closed (and replaced) on every Put while waiters exist; it
	// is the broadcast that replaces sync.Cond so admission waits can be
	// combined with a timeout in a select.
	waitc chan struct{}

	// Counters are telemetry atomics so snapshot reads are race-free and
	// the registry exports the same values BMLStats reports (one source of
	// truth; see internal/core/metrics.go for the registered names).
	allocs    telemetry.Counter
	fresh     telemetry.Counter
	stalls    telemetry.Counter
	timeouts  telemetry.Counter
	peak      telemetry.MaxGauge
	stallWait telemetry.Histogram
}

// BMLStats reports pool behaviour.
type BMLStats struct {
	// Allocs is the number of Get calls satisfied.
	Allocs uint64
	// Fresh is how many of those required a new allocation (the rest were
	// recycled).
	Fresh uint64
	// Stalls counts Gets that had to wait for capacity.
	Stalls uint64
	// Timeouts counts GetTimeout calls that gave up waiting.
	Timeouts uint64
	// Peak is the high-water mark of reserved bytes.
	Peak int64
}

// minBMLClass is the smallest buffer class.
const minBMLClass = 4 * 1024

// NewBML returns a pool with the given capacity in bytes.
func NewBML(capacity int64) *BML {
	if capacity < minBMLClass {
		panic(fmt.Sprintf("core: BML capacity %d below minimum class", capacity))
	}
	return &BML{
		capacity: capacity,
		minClass: minBMLClass,
		free:     make(map[int64][][]byte),
		waitc:    make(chan struct{}),
	}
}

// Capacity returns the configured pool size.
func (b *BML) Capacity() int64 { return b.capacity }

// Used returns the bytes currently reserved.
func (b *BML) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Waiters returns the number of Gets currently blocked on admission — the
// instantaneous back-pressure depth (exported as iofwd_bml_waiters).
func (b *BML) Waiters() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int64(b.waiters)
}

// Stats returns a snapshot of the pool counters.
func (b *BML) Stats() BMLStats {
	return BMLStats{
		Allocs:   b.allocs.Value(),
		Fresh:    b.fresh.Value(),
		Stalls:   b.stalls.Value(),
		Timeouts: b.timeouts.Value(),
		Peak:     b.peak.Value(),
	}
}

// classFor rounds n up to the pool's power-of-2 class ("the buffer
// management allocates buffers that are powers of 2 bytes").
func classFor(n int) int64 {
	if n <= minBMLClass {
		return minBMLClass
	}
	return 1 << uint(bits.Len64(uint64(n-1)))
}

// Get returns a buffer whose capacity is the power-of-2 class holding n,
// sliced to length n. It blocks while the pool is at capacity.
func (b *BML) Get(n int) []byte {
	buf, _ := b.GetTimeout(n, 0)
	return buf
}

// GetTimeout is Get with a bounded admission wait: if the pool cannot admit
// the request within d it returns (nil, false) and the caller must degrade
// (the server falls back to an unpooled buffer and the synchronous write
// path). d <= 0 waits forever, matching Get.
func (b *BML) GetTimeout(n int, d time.Duration) ([]byte, bool) {
	c := classFor(n)
	if c > b.capacity {
		panic(fmt.Sprintf("core: buffer class %d exceeds BML capacity %d", c, b.capacity))
	}
	b.mu.Lock()
	if b.used+c > b.capacity {
		// Allocation stall: the paper's back-pressure rule. Time the wait
		// so the stall distribution is visible next to the stall count.
		t0 := time.Now()
		var deadline <-chan time.Time
		if d > 0 {
			timer := time.NewTimer(d)
			defer timer.Stop()
			deadline = timer.C
		}
		for b.used+c > b.capacity {
			ch := b.waitc
			b.waiters++
			b.mu.Unlock()
			//lint:allow ctxpropagate server-side staging admission: the wait is bounded by this method's own timeout argument (Config.BMLTimeout), not by client contexts, which end at the wire
			select {
			case <-ch:
				b.mu.Lock()
				b.waiters--
			case <-deadline:
				b.mu.Lock()
				b.waiters--
				b.mu.Unlock()
				b.timeouts.Inc()
				b.stalls.Inc()
				b.stallWait.Observe(time.Since(t0).Nanoseconds())
				return nil, false
			}
		}
		b.stalls.Inc()
		b.stallWait.Observe(time.Since(t0).Nanoseconds())
	}
	b.used += c
	b.peak.Observe(b.used)
	b.allocs.Inc()
	var buf []byte
	if stack := b.free[c]; len(stack) > 0 {
		buf = stack[len(stack)-1]
		stack[len(stack)-1] = nil
		b.free[c] = stack[:len(stack)-1]
	} else {
		b.fresh.Inc()
	}
	b.mu.Unlock()
	if buf == nil {
		buf = make([]byte, c)
	}
	return buf[:n], true
}

// Lease returns a reply-frame buffer: headerSize bytes of header room
// followed by n payload bytes, all in one pooled allocation. Backends read
// directly into frame[headerSize:headerSize+n], the connection writer
// encodes the response header into frame[:headerSize] and writes the whole
// frame with a single conn write, then returns it with Put — the zero-copy
// reply path (no scratch-buffer copy, no separate header write). Lease
// blocks under the capacity cap exactly like Get; the caller owns the full
// frame and must Put it exactly once.
func (b *BML) Lease(n int) []byte {
	return b.Get(headerSize + n)
}

// LeaseFits reports whether a Lease for n payload bytes can ever be
// admitted: the padded power-of-2 class must not exceed the pool capacity.
// Callers reject oversized reads up front instead of panicking in Get.
func (b *BML) LeaseFits(n int) bool {
	return classFor(headerSize+n) <= b.capacity
}

// Put returns a buffer obtained from Get. The buffer must not be used after
// Put.
func (b *BML) Put(buf []byte) {
	c := int64(cap(buf))
	if c == 0 {
		return
	}
	if c&(c-1) != 0 || c < b.minClass {
		panic(fmt.Sprintf("core: Put of non-pool buffer (cap %d)", c))
	}
	b.mu.Lock()
	if b.used < c {
		b.mu.Unlock()
		panic("core: BML Put without matching Get")
	}
	b.used -= c
	b.free[c] = append(b.free[c], buf[:c])
	if b.waiters > 0 {
		close(b.waitc)
		b.waitc = make(chan struct{})
	}
	b.mu.Unlock()
}
