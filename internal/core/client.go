package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Client is the compute-node side of the forwarding protocol — the role of
// the compute node kernel, which ships every I/O call to the I/O node. A
// Client multiplexes concurrent requests from many goroutines over one
// connection.
//
// A configured Client (see ClientConfig) is fault-tolerant and adaptive:
// Timeout bounds every operation, MaxRetries retries operations the server
// shed with EAGAIN, ReconnectAttempts re-establishes a failed transport
// with exponential backoff plus jitter (re-opening descriptors and
// replaying idempotent in-flight operations; non-idempotent ones fail fast
// with ErrConnectionLost), Window gates admission through an AIMD
// congestion window fed by an EWMA RTT estimator, and Coalesce merges
// adjacent positional writes into single wire operations when the window
// is full. Every public operation takes a context.Context; cancellation
// and deadlines propagate to admission waits, reconnect parks, retry
// backoffs, and response waits.
type Client struct {
	cfg ClientConfig // normalized
	met clientMetrics

	cg     *congestion // nil: congestion control disabled (legacy admission)
	coal   *coalescer  // nil: write coalescing disabled
	coalWG sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand

	wmu sync.Mutex // serializes request frames on the current conn

	mu      sync.Mutex
	nc      net.Conn
	gen     uint64 // connection generation, bumped on every failover
	nextID  uint64
	nextFD  uint64
	pending map[uint64]*pendingCall
	files   map[uint64]*openFile // client-visible fd -> remote state
	ready   chan struct{}        // closed while a conn is installed
	lastErr error                // terminal failure; nil while usable
	closed  bool
}

// openFile tracks one client-visible descriptor so it can be re-opened on a
// fresh connection after failover. serverFD is the descriptor on the
// *current* connection; it equals the client fd until the first reconnect.
type openFile struct {
	name     string
	serverFD uint64
}

// pendingCall is one in-flight request. The original arguments are retained
// so idempotent calls can be replayed verbatim on a new connection. sentAt
// timestamps the first transmission for the RTT estimator and the
// congestion epoch filter; replayed marks calls re-sent after a failover,
// whose round trips straddle a reconnect and must not feed the estimator
// (Karn's algorithm).
type pendingCall struct {
	ch       chan callResult
	op       Op
	fd       uint64 // client-visible fd
	offset   uint64
	length   uint32
	path     string
	payload  []byte
	sentAt   time.Time
	replayed bool // written under Client.mu; read after receiving on ch
}

type callResult struct {
	resp *response
	err  error
}

type response struct {
	flags   uint16
	errno   Errno
	value   int64
	payload []byte
}

// clientMetrics are the client-side counters; they are always counted and
// additionally exported when ClientConfig.Metrics supplies a registry.
type clientMetrics struct {
	retries    telemetry.Counter
	timeouts   telemetry.Counter
	reconnects telemetry.Counter
	replays    telemetry.Counter
	lostOps    telemetry.Counter

	coalesced     telemetry.Counter
	cwndDecreases telemetry.Counter
	rttNS         telemetry.Histogram
	cwnd          telemetry.Gauge
}

func (m *clientMetrics) register(reg *telemetry.Registry) {
	reg.MustRegister("iofwd_retries_total",
		"Operations retried by the client (EAGAIN backoff retries and post-reconnect replays).", &m.retries)
	reg.MustRegister("iofwd_timeouts_total",
		"Operations abandoned because the per-op deadline expired.", &m.timeouts)
	reg.MustRegister("iofwd_reconnects_total",
		"Successful transport re-establishments after a connection failure.", &m.reconnects)
	reg.MustRegister("iofwd_replays_total",
		"Idempotent in-flight operations replayed on a fresh connection.", &m.replays)
	reg.MustRegister("iofwd_lost_ops_total",
		"Non-idempotent in-flight operations failed with ErrConnectionLost on a connection failure.", &m.lostOps)
}

// registerCongestion exports the congestion-control families; registered
// only when the window is enabled so legacy clients keep their exact
// metric surface. The RTT family is iofwd_client_rtt_ns, not _seconds:
// the repo's histograms carry explicit unit suffixes (_ns/_bytes/_ops)
// enforced by telemetry.ValidateName and the metricname analyzer.
func (m *clientMetrics) registerCongestion(reg *telemetry.Registry) {
	reg.MustRegister("iofwd_client_cwnd",
		"Current AIMD congestion window in in-flight operation slots.", &m.cwnd)
	reg.MustRegister("iofwd_client_rtt_ns",
		"Per-operation round-trip times feeding the EWMA estimator (replayed operations excluded).", &m.rttNS)
	reg.MustRegister("iofwd_cwnd_decreases_total",
		"Multiplicative window decreases triggered by EAGAIN sheds or operation timeouts.", &m.cwndDecreases)
	reg.MustRegister("iofwd_coalesced_writes_total",
		"Positional writes merged into an adjacent in-flight frame instead of taking their own wire operation.", &m.coalesced)
}

// newClient builds the Client from a normalized config around an
// established connection; both constructor surfaces (ClientConfig and the
// deprecated options) funnel through here.
func (cfg ClientConfig) newClient(nc net.Conn) *Client {
	n := cfg.normalized()
	c := &Client{
		cfg:     n,
		rng:     rand.New(rand.NewSource(n.Seed)),
		nc:      nc,
		nextID:  1,
		nextFD:  3, // mirrors the server's numbering until the first failover
		pending: make(map[uint64]*pendingCall),
		files:   make(map[uint64]*openFile),
		ready:   make(chan struct{}),
	}
	close(c.ready)
	if n.Window.Max > 0 {
		c.cg = newCongestion(n.Window, &c.met)
		if n.Coalesce.MaxBytes > 0 {
			c.coal = newCoalescer(c, n.Coalesce)
		}
	}
	if n.Metrics != nil {
		c.met.register(n.Metrics)
		if c.cg != nil {
			c.met.registerCongestion(n.Metrics)
		}
	}
	//lint:allow goroleak readLoop exits on its conn's read error; Client.Close closes nc, which unblocks and ends it
	go c.readLoop(nc, c.gen)
	return c
}

// ClientStats is a point-in-time snapshot of the client's fault counters
// and congestion-control state. The congestion fields (Cwnd, SRTT, RTTVar,
// Inflight) are zero when the window is disabled.
type ClientStats struct {
	Retries    uint64
	Timeouts   uint64
	Reconnects uint64
	Replays    uint64
	LostOps    uint64

	CoalescedWrites uint64
	CwndDecreases   uint64
	Cwnd            float64
	SRTT            time.Duration
	RTTVar          time.Duration
	Inflight        int
}

// Stats returns a snapshot of the client's counters and congestion state.
func (c *Client) Stats() ClientStats {
	s := ClientStats{
		Retries:         c.met.retries.Value(),
		Timeouts:        c.met.timeouts.Value(),
		Reconnects:      c.met.reconnects.Value(),
		Replays:         c.met.replays.Value(),
		LostOps:         c.met.lostOps.Value(),
		CoalescedWrites: c.met.coalesced.Value(),
		CwndDecreases:   c.met.cwndDecreases.Value(),
	}
	if c.cg != nil {
		s.Cwnd, s.SRTT, s.RTTVar, s.Inflight = c.cg.snapshot()
	}
	return s
}

// Metrics returns the five original fault counters positionally: retries,
// timeouts, reconnects, replays, lost ops.
//
// Deprecated: use Stats, which names the fields and carries the
// congestion-control counters too.
func (c *Client) Metrics() (retries, timeouts, reconnects, replays, lost uint64) {
	s := c.Stats()
	return s.Retries, s.Timeouts, s.Reconnects, s.Replays, s.LostOps
}

// readLoop demultiplexes responses to their callers by request id. One loop
// runs per connection generation; a stale loop exits silently.
func (c *Client) readLoop(nc net.Conn, gen uint64) {
	var h header
	for {
		if err := readHeader(nc, &h); err != nil {
			c.connFailed(gen, err)
			return
		}
		var payload []byte
		if h.length > 0 {
			payload = make([]byte, h.length)
			if _, err := io.ReadFull(nc, payload); err != nil {
				c.connFailed(gen, err)
				return
			}
		}
		c.mu.Lock()
		if c.gen != gen {
			c.mu.Unlock()
			return
		}
		pc := c.pending[h.reqID]
		delete(c.pending, h.reqID)
		c.mu.Unlock()
		if pc != nil {
			pc.ch <- callResult{resp: &response{
				flags: h.flags, errno: Errno(h.pathLen), value: int64(h.offset), payload: payload,
			}}
		}
	}
}

// idempotentOp reports whether an in-flight op may be replayed on a fresh
// connection without risking duplicate effects: positional reads and writes
// and stat are safe; cursor ops, open/close/fsync/flush/errpoll are not
// (cursor position and deferred-error state do not survive failover).
func idempotentOp(op Op) bool {
	switch op {
	case OpPread, OpPwrite, OpStat:
		return true
	}
	return false
}

// connFailed handles a transport failure observed on generation gen: it
// either fails everything (no redialer / client closed) or starts a
// reconnect, failing non-idempotent in-flight ops fast and keeping
// idempotent ones for replay.
func (c *Client) connFailed(gen uint64, cause error) {
	c.mu.Lock()
	if c.gen != gen || c.lastErr != nil {
		c.mu.Unlock()
		return
	}
	_ = c.nc.Close()
	if c.closed {
		c.failLocked(fmt.Errorf("%w: %v", ErrClientClosed, cause))
		c.mu.Unlock()
		return
	}
	if c.cfg.Redial == nil {
		c.failLocked(fmt.Errorf("%w: %v", ErrConnectionLost, cause))
		c.mu.Unlock()
		return
	}
	// Failover: invalidate the generation, block new calls on a fresh
	// ready gate, split the in-flight set.
	c.gen++
	c.ready = make(chan struct{})
	var replay []*pendingCall
	var replayIDs []uint64
	for id, pc := range c.pending {
		if idempotentOp(pc.op) {
			pc.replayed = true // exclude its round trip from the RTT estimator
			replay = append(replay, pc)
			replayIDs = append(replayIDs, id)
			continue
		}
		delete(c.pending, id)
		c.met.lostOps.Inc()
		//lint:allow lockhold pc.ch is buffered (cap 1) with exactly one send per call, so this send never blocks
		pc.ch <- callResult{err: fmt.Errorf("%w: %v", ErrConnectionLost, cause)}
	}
	files := make([]*openFile, 0, len(c.files))
	for _, f := range c.files {
		files = append(files, f)
	}
	c.mu.Unlock()
	//lint:allow goroleak reconnect is one-shot and self-terminating: it exits after redial success, retry exhaustion, or observing the client closed
	go c.reconnect(cause, files, replay, replayIDs)
}

// failLocked delivers a terminal error to every in-flight call, to all
// parked admission waiters, and to all future calls. Callers hold c.mu.
func (c *Client) failLocked(err error) {
	c.lastErr = err
	if c.cg != nil {
		c.cg.close(err)
	}
	for id, pc := range c.pending {
		delete(c.pending, id)
		//lint:allow lockhold pc.ch is buffered (cap 1) with exactly one send per call, so this send never blocks
		pc.ch <- callResult{err: err}
	}
	select {
	case <-c.ready:
	default:
		close(c.ready) // wake calls parked on the reconnect gate
	}
}

// backoff returns the jittered exponential delay for 1-based attempt k:
// base·2^(k-1) capped at max, scaled by a uniform factor in [0.5, 1.5).
func (c *Client) backoff(k int, base, max time.Duration) time.Duration {
	d := base << uint(k-1)
	if d > max || d <= 0 {
		d = max
	}
	c.rngMu.Lock()
	f := 0.5 + c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// reconnect re-establishes the transport with exponential backoff + jitter,
// re-opens every descriptor the client holds, installs the new connection,
// and replays the retained idempotent in-flight calls.
func (c *Client) reconnect(cause error, files []*openFile, replay []*pendingCall, replayIDs []uint64) {
	for attempt := 1; attempt <= c.cfg.ReconnectAttempts; attempt++ {
		time.Sleep(c.backoff(attempt, c.cfg.RetryBase, c.cfg.RetryMax))
		c.mu.Lock()
		if c.closed || c.lastErr != nil {
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		nc, err := c.cfg.Redial()
		if err != nil {
			continue
		}
		if err := reopenFiles(nc, files); err != nil {
			_ = nc.Close()
			continue
		}
		// Install the new connection and release parked callers.
		c.mu.Lock()
		if c.closed || c.lastErr != nil {
			c.mu.Unlock()
			_ = nc.Close()
			return
		}
		c.nc = nc
		c.gen++
		gen := c.gen
		close(c.ready)
		c.mu.Unlock()
		c.met.reconnects.Inc()
		//lint:allow goroleak replacement readLoop exits on its conn's read error; Client.Close closes the live nc, which unblocks and ends it
		go c.readLoop(nc, gen)
		// Replay idempotent in-flight ops with their original request ids;
		// responses route through the new readLoop to the original callers.
		for i, pc := range replay {
			c.met.retries.Inc()
			c.met.replays.Inc()
			if err := c.send(nc, replayIDs[i], pc); err != nil {
				// The fresh connection died already; its readLoop will
				// drive the next failover, which re-collects this pending.
				break
			}
		}
		return
	}
	c.mu.Lock()
	c.failLocked(fmt.Errorf("%w: reconnect failed after %d attempts: %v",
		ErrConnectionLost, c.cfg.ReconnectAttempts, cause))
	c.mu.Unlock()
}

// reopenFiles performs a synchronous open exchange for every retained
// descriptor on a candidate connection, before any readLoop owns it.
// Request ids live far above the call namespace to stay unique.
func reopenFiles(nc net.Conn, files []*openFile) error {
	id := uint64(1) << 62
	var h header
	for _, f := range files {
		id++
		req := header{op: OpOpen, reqID: id, pathLen: uint16(len(f.name))}
		if err := writeFrame(nc, &req, []byte(f.name)); err != nil {
			return err
		}
		if err := readHeader(nc, &h); err != nil {
			return err
		}
		if h.length > 0 {
			if _, err := io.CopyN(io.Discard, nc, int64(h.length)); err != nil {
				return err
			}
		}
		if Errno(h.pathLen) != EOK {
			return Errno(h.pathLen)
		}
		f.serverFD = h.offset
	}
	return nil
}

// send writes one request frame (with the fd translated to the current
// connection's descriptor) under the write mutex.
func (c *Client) send(nc net.Conn, id uint64, pc *pendingCall) error {
	fd := pc.fd
	c.mu.Lock()
	if f, ok := c.files[pc.fd]; ok {
		fd = f.serverFD
	}
	c.mu.Unlock()
	h := header{op: pc.op, reqID: id, fd: fd, offset: pc.offset,
		length: pc.length, pathLen: uint16(len(pc.path))}
	c.wmu.Lock()
	err := writeFrame(nc, &h, []byte(pc.path), pc.payload)
	c.wmu.Unlock()
	return err
}

// ctxErr converts a finished context into the client's error vocabulary: a
// deadline maps to ErrOpTimeout (counted as a timeout, exactly like the old
// deadline-channel path), a cancellation wraps context.Canceled so
// errors.Is(err, context.Canceled) holds for callers.
func (c *Client) ctxErr(ctx context.Context, op Op, what string) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		c.met.timeouts.Inc()
		return fmt.Errorf("%w: %s %s: %w", ErrOpTimeout, op, what, ctx.Err())
	}
	return fmt.Errorf("core: %s canceled while %s: %w", op, what, ctx.Err())
}

// call sends one request and waits for its response. The context governs
// every wait on the way — window admission, the reconnect gate, the
// response, and retry backoff — and ClientConfig.Timeout is layered on as a
// derived deadline, so the op fails when either the caller's context or the
// per-op budget expires. EAGAIN (shed) responses are retried with backoff
// for safely retryable data operations.
func (c *Client) call(ctx context.Context, op Op, fd uint64, offset uint64, length uint32, path string, payload []byte) (*response, error) {
	if c.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
	}
	for attempt := 0; ; attempt++ {
		r, err := c.callOnce(ctx, op, fd, offset, length, path, payload)
		if err != nil {
			return nil, err
		}
		if r.errno != EAGAIN || attempt >= c.cfg.MaxRetries || !retryableErrno(op) {
			return r, nil
		}
		c.met.retries.Inc()
		wait := time.NewTimer(c.backoff(attempt+1, c.cfg.RetryBase, c.cfg.RetryMax))
		select {
		case <-wait.C:
		case <-ctx.Done():
			wait.Stop()
			return nil, c.ctxErr(ctx, op, "retrying a shed operation")
		}
	}
}

// retryableErrno reports whether an EAGAIN reply to op is safe to reissue:
// the server sheds before reserving a cursor or staging anything, so every
// data operation qualifies.
func retryableErrno(op Op) bool {
	switch op {
	case OpWrite, OpPwrite, OpRead, OpPread, OpStat:
		return true
	}
	return false
}

// callOnce performs a single request/response exchange: window admission,
// the reconnect-gate wait, registration, send, and the response wait, all
// under ctx. It also feeds the congestion controller — a clean response is
// an ack (with an RTT sample unless the op was replayed across a
// reconnect), an EAGAIN or a deadline expiry is a congestion signal.
func (c *Client) callOnce(ctx context.Context, op Op, fd uint64, offset uint64, length uint32, path string, payload []byte) (*response, error) {
	if c.cg != nil {
		if err := c.cg.acquire(ctx); err != nil {
			if ctx.Err() != nil {
				return nil, c.ctxErr(ctx, op, "waiting for a window slot")
			}
			return nil, err
		}
		defer c.cg.release()
	}
	pc := &pendingCall{
		ch: make(chan callResult, 1),
		op: op, fd: fd, offset: offset, length: length, path: path, payload: payload,
	}
	// Admission: wait for an installed connection (reconnects park callers
	// here) or a terminal error, then register the call under the lock.
	c.mu.Lock()
	for {
		if c.lastErr != nil {
			err := c.lastErr
			c.mu.Unlock()
			return nil, err
		}
		ready := c.ready
		select {
		case <-ready:
		default:
			c.mu.Unlock()
			select {
			case <-ready:
			case <-ctx.Done():
				return nil, c.ctxErr(ctx, op, "waiting for reconnection")
			}
			c.mu.Lock()
			continue
		}
		break
	}
	id := c.nextID
	c.nextID++
	pc.sentAt = time.Now()
	c.pending[id] = pc
	nc := c.nc
	gen := c.gen
	c.mu.Unlock()

	if err := c.send(nc, id, pc); err != nil {
		// A write failure is a transport failure: let connFailed decide the
		// outcome of this call (replay or typed error) like any other
		// in-flight op, then wait for it.
		c.connFailed(gen, err)
	}
	select {
	case res := <-pc.ch:
		if c.cg != nil && res.err == nil {
			if res.resp.errno == EAGAIN {
				c.cg.onCongestion(pc.sentAt)
			} else {
				// pc.replayed was written under c.mu before the replay was
				// re-sent; the response delivery on pc.ch orders that write
				// before this read.
				c.cg.onAck(time.Since(pc.sentAt), !pc.replayed)
			}
		}
		return res.resp, res.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id) // a late response is dropped by readLoop
		c.mu.Unlock()
		if c.cg != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			c.cg.onCongestion(pc.sentAt)
		}
		return nil, c.ctxErr(ctx, op, "awaiting a response")
	}
}

// respErr converts a response's status into a Go error, reconstructing
// deferred-error reporting.
func respErr(fd uint64, r *response) error {
	if r.errno == EOK {
		return nil
	}
	if r.flags&FlagDeferredErr != 0 {
		return &DeferredError{FD: fd, Err: r.errno}
	}
	return r.errno
}

// Open opens (creating if needed) the named remote object. ctx bounds the
// exchange alongside ClientConfig.Timeout.
func (c *Client) Open(ctx context.Context, name string) (*File, error) {
	if len(name) == 0 || len(name) > MaxPath {
		return nil, EINVAL
	}
	r, err := c.call(ctx, OpOpen, 0, 0, 0, name, nil)
	if err != nil {
		return nil, err
	}
	if r.errno != EOK {
		return nil, r.errno
	}
	c.mu.Lock()
	fd := c.nextFD
	c.nextFD++
	c.files[fd] = &openFile{name: name, serverFD: uint64(r.value)}
	c.mu.Unlock()
	return &File{c: c, fd: fd, name: name}, nil
}

// Flush blocks until every staged operation on this connection has
// completed on the server.
func (c *Client) Flush(ctx context.Context) error {
	r, err := c.call(ctx, OpFlush, 0, 0, 0, "", nil)
	if err != nil {
		return err
	}
	return respErr(0, r)
}

// DropConnection forcibly closes the client's transport without closing the
// Client — a network-failure injection hook for chaos testing (see
// cmd/fwdbench -drop-every). With reconnection enabled the client redials,
// re-opens its descriptors, and replays idempotent in-flight operations.
func (c *Client) DropConnection() {
	c.mu.Lock()
	nc := c.nc
	c.mu.Unlock()
	if nc != nil {
		_ = nc.Close()
	}
}

// Close tears down the connection. Outstanding staged writes are drained by
// the server before their descriptors disappear. Calls after Close fail
// with an error wrapping ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nc := c.nc
	// Both the typed root and the errno are wrapped (%w twice), so callers
	// classify the shutdown either way: errors.Is(err, ErrClientClosed) and
	// errors.Is(err, ECLOSED) both hold.
	c.failLocked(fmt.Errorf("%w: %w", ErrClientClosed, ECLOSED))
	c.mu.Unlock()
	err := nc.Close()
	// Join the coalescer senders. failLocked already failed their merged
	// calls (and closed the window), and nc is closed above, so no sender
	// can still be blocked on the network.
	c.coalWG.Wait()
	return err
}

// File is an open remote descriptor.
type File struct {
	c    *Client
	fd   uint64
	name string
}

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.name }

// WriteCtx appends b at the server-side cursor. Under an
// asynchronous-staging server the data has been copied and queued when
// WriteCtx returns, not yet executed; a returned *DeferredError reports a
// *previous* staged write's failure while the current write was still
// accepted. Cursor writes are never coalesced and never replayed across a
// reconnect: they are not idempotent.
func (f *File) WriteCtx(ctx context.Context, b []byte) (int, error) {
	if len(b) > MaxPayload {
		return 0, EINVAL
	}
	r, err := f.c.call(ctx, OpWrite, f.fd, 0, uint32(len(b)), "", b)
	if err != nil {
		return 0, err
	}
	return int(r.value), respErr(f.fd, r)
}

// Write appends b at the server-side cursor with no caller context.
func (f *File) Write(b []byte) (int, error) {
	return f.WriteCtx(context.Background(), b)
}

// WriteAtCtx writes b at the given offset. Positional writes are
// idempotent: after a connection failure with reconnection enabled, an
// in-flight WriteAtCtx is replayed on the new connection instead of
// failing. With coalescing enabled and the congestion window full,
// adjacent writes on the same descriptor may be merged into one wire
// operation; completion (including per-sub-write short counts and errors)
// is split back per caller.
func (f *File) WriteAtCtx(ctx context.Context, b []byte, off int64) (int, error) {
	if len(b) > MaxPayload || off < 0 {
		return 0, EINVAL
	}
	if co := f.c.coal; co != nil {
		if n, err, handled := co.writeAt(ctx, f.fd, b, off); handled {
			return n, err
		}
	}
	r, err := f.c.call(ctx, OpPwrite, f.fd, uint64(off), uint32(len(b)), "", b)
	if err != nil {
		return 0, err
	}
	return int(r.value), respErr(f.fd, r)
}

// WriteAt writes b at the given offset with no caller context.
func (f *File) WriteAt(b []byte, off int64) (int, error) {
	return f.WriteAtCtx(context.Background(), b, off)
}

// ReadCtx fills b from the server-side cursor. Reads always block for the
// data and are ordered behind staged writes on the same descriptor.
func (f *File) ReadCtx(ctx context.Context, b []byte) (int, error) {
	if len(b) > MaxPayload {
		return 0, EINVAL
	}
	r, err := f.c.call(ctx, OpRead, f.fd, 0, uint32(len(b)), "", nil)
	if err != nil {
		return 0, err
	}
	return copy(b, r.payload), respErr(f.fd, r)
}

// Read fills b from the server-side cursor with no caller context.
func (f *File) Read(b []byte) (int, error) {
	return f.ReadCtx(context.Background(), b)
}

// ReadAtCtx fills b from the given offset. ReadAtCtx is idempotent and
// replayed across reconnects like WriteAtCtx.
func (f *File) ReadAtCtx(ctx context.Context, b []byte, off int64) (int, error) {
	if len(b) > MaxPayload || off < 0 {
		return 0, EINVAL
	}
	r, err := f.c.call(ctx, OpPread, f.fd, uint64(off), uint32(len(b)), "", nil)
	if err != nil {
		return 0, err
	}
	return copy(b, r.payload), respErr(f.fd, r)
}

// ReadAt fills b from the given offset with no caller context.
func (f *File) ReadAt(b []byte, off int64) (int, error) {
	return f.ReadAtCtx(context.Background(), b, off)
}

// SyncCtx drains staged operations on this descriptor and syncs the
// backend; it reports any deferred error.
func (f *File) SyncCtx(ctx context.Context) error {
	r, err := f.c.call(ctx, OpFsync, f.fd, 0, 0, "", nil)
	if err != nil {
		return err
	}
	return respErr(f.fd, r)
}

// Sync drains staged operations and syncs the backend with no caller
// context.
func (f *File) Sync() error {
	return f.SyncCtx(context.Background())
}

// StatCtx returns the remote object's current size.
func (f *File) StatCtx(ctx context.Context) (int64, error) {
	r, err := f.c.call(ctx, OpStat, f.fd, 0, 0, "", nil)
	if err != nil {
		return 0, err
	}
	return r.value, respErr(f.fd, r)
}

// Stat returns the remote object's current size with no caller context.
func (f *File) Stat() (int64, error) {
	return f.StatCtx(context.Background())
}

// PollError retrieves (and clears) a pending deferred error without
// performing I/O.
func (f *File) PollError() error {
	r, err := f.c.call(context.Background(), OpErrPoll, f.fd, 0, 0, "", nil)
	if err != nil {
		return err
	}
	return respErr(f.fd, r)
}

// Close drains staged operations, closes the remote descriptor, and
// reports any unconsumed deferred error.
func (f *File) Close() error {
	r, err := f.c.call(context.Background(), OpClose, f.fd, 0, 0, "", nil)
	if err != nil {
		return err
	}
	f.c.mu.Lock()
	delete(f.c.files, f.fd)
	f.c.mu.Unlock()
	return respErr(f.fd, r)
}
