package core

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// Client is the compute-node side of the forwarding protocol — the role of
// the compute node kernel, which ships every I/O call to the I/O node. A
// Client multiplexes concurrent requests from many goroutines over one
// connection.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *response
	readErr error
	done    chan struct{}
}

type response struct {
	flags   uint16
	errno   Errno
	value   int64
	payload []byte
}

// Dial connects to a forwarding server.
func Dial(network, addr string) (*Client, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (TCP, Unix socket, or one end
// of a net.Pipe).
func NewClient(nc net.Conn) *Client {
	c := &Client{nc: nc, nextID: 1, pending: make(map[uint64]chan *response), done: make(chan struct{})}
	go c.readLoop()
	return c
}

// readLoop demultiplexes responses to their callers by request id.
func (c *Client) readLoop() {
	var h header
	for {
		if err := readHeader(c.nc, &h); err != nil {
			c.fail(err)
			return
		}
		var payload []byte
		if h.length > 0 {
			payload = make([]byte, h.length)
			if _, err := io.ReadFull(c.nc, payload); err != nil {
				c.fail(err)
				return
			}
		}
		c.mu.Lock()
		ch := c.pending[h.reqID]
		delete(c.pending, h.reqID)
		c.mu.Unlock()
		if ch != nil {
			ch <- &response{flags: h.flags, errno: Errno(h.pathLen), value: int64(h.offset), payload: payload}
		}
	}
}

// fail terminates every pending call with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
		close(c.done)
	}
	pend := c.pending
	c.pending = make(map[uint64]chan *response)
	c.mu.Unlock()
	for _, ch := range pend {
		close(ch)
	}
}

// call sends one request and waits for its response.
func (c *Client) call(op Op, fd uint64, offset uint64, length uint32, path string, payload []byte) (*response, error) {
	ch := make(chan *response, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("core: connection failed: %w", err)
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	c.mu.Unlock()

	h := header{op: op, reqID: id, fd: fd, offset: offset, length: length, pathLen: uint16(len(path))}
	c.wmu.Lock()
	err := writeFrame(c.nc, &h, []byte(path), payload)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("core: connection failed: %w", err)
	}
	return resp, nil
}

// respErr converts a response's status into a Go error, reconstructing
// deferred-error reporting.
func respErr(fd uint64, r *response) error {
	if r.errno == EOK {
		return nil
	}
	if r.flags&FlagDeferredErr != 0 {
		return &DeferredError{FD: fd, Err: r.errno}
	}
	return r.errno
}

// Open opens (creating if needed) the named remote object.
func (c *Client) Open(name string) (*File, error) {
	if len(name) == 0 || len(name) > MaxPath {
		return nil, EINVAL
	}
	r, err := c.call(OpOpen, 0, 0, 0, name, nil)
	if err != nil {
		return nil, err
	}
	if r.errno != EOK {
		return nil, r.errno
	}
	return &File{c: c, fd: uint64(r.value), name: name}, nil
}

// Flush blocks until every staged operation on this connection has
// completed on the server.
func (c *Client) Flush() error {
	r, err := c.call(OpFlush, 0, 0, 0, "", nil)
	if err != nil {
		return err
	}
	return respErr(0, r)
}

// Close tears down the connection. Outstanding staged writes are drained by
// the server before their descriptors disappear.
func (c *Client) Close() error {
	err := c.nc.Close()
	c.fail(ECLOSED)
	return err
}

// File is an open remote descriptor.
type File struct {
	c    *Client
	fd   uint64
	name string
}

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.name }

// Write appends b at the server-side cursor. Under an asynchronous-staging
// server the data has been copied and queued when Write returns, not yet
// executed; a returned *DeferredError reports a *previous* staged write's
// failure while the current write was still accepted.
func (f *File) Write(b []byte) (int, error) {
	if len(b) > MaxPayload {
		return 0, EINVAL
	}
	r, err := f.c.call(OpWrite, f.fd, 0, uint32(len(b)), "", b)
	if err != nil {
		return 0, err
	}
	return int(r.value), respErr(f.fd, r)
}

// WriteAt writes b at the given offset.
func (f *File) WriteAt(b []byte, off int64) (int, error) {
	if len(b) > MaxPayload || off < 0 {
		return 0, EINVAL
	}
	r, err := f.c.call(OpPwrite, f.fd, uint64(off), uint32(len(b)), "", b)
	if err != nil {
		return 0, err
	}
	return int(r.value), respErr(f.fd, r)
}

// Read fills b from the server-side cursor. Reads always block for the
// data and are ordered behind staged writes on the same descriptor.
func (f *File) Read(b []byte) (int, error) {
	if len(b) > MaxPayload {
		return 0, EINVAL
	}
	r, err := f.c.call(OpRead, f.fd, 0, uint32(len(b)), "", nil)
	if err != nil {
		return 0, err
	}
	return copy(b, r.payload), respErr(f.fd, r)
}

// ReadAt fills b from the given offset.
func (f *File) ReadAt(b []byte, off int64) (int, error) {
	if len(b) > MaxPayload || off < 0 {
		return 0, EINVAL
	}
	r, err := f.c.call(OpPread, f.fd, uint64(off), uint32(len(b)), "", nil)
	if err != nil {
		return 0, err
	}
	return copy(b, r.payload), respErr(f.fd, r)
}

// Sync drains staged operations on this descriptor and syncs the backend;
// it reports any deferred error.
func (f *File) Sync() error {
	r, err := f.c.call(OpFsync, f.fd, 0, 0, "", nil)
	if err != nil {
		return err
	}
	return respErr(f.fd, r)
}

// Stat returns the remote object's current size.
func (f *File) Stat() (int64, error) {
	r, err := f.c.call(OpStat, f.fd, 0, 0, "", nil)
	if err != nil {
		return 0, err
	}
	return r.value, respErr(f.fd, r)
}

// PollError retrieves (and clears) a pending deferred error without
// performing I/O.
func (f *File) PollError() error {
	r, err := f.c.call(OpErrPoll, f.fd, 0, 0, "", nil)
	if err != nil {
		return err
	}
	return respErr(f.fd, r)
}

// Close drains staged operations, closes the remote descriptor, and
// reports any unconsumed deferred error.
func (f *File) Close() error {
	r, err := f.c.call(OpClose, f.fd, 0, 0, "", nil)
	if err != nil {
		return err
	}
	return respErr(f.fd, r)
}
