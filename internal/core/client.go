package core

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Client is the compute-node side of the forwarding protocol — the role of
// the compute node kernel, which ships every I/O call to the I/O node. A
// Client multiplexes concurrent requests from many goroutines over one
// connection.
//
// With options the Client is fault-tolerant: WithTimeout bounds every
// operation, WithRetry retries operations the server shed with EAGAIN, and
// WithReconnect/WithRedial re-establish a failed transport with exponential
// backoff plus jitter, re-open the descriptors that were open, and replay
// idempotent in-flight operations (Pread/Pwrite/Stat, keyed by request id).
// Non-idempotent in-flight operations fail fast with ErrConnectionLost.
type Client struct {
	opts clientOptions
	met  clientMetrics

	rngMu sync.Mutex
	rng   *rand.Rand

	wmu sync.Mutex // serializes request frames on the current conn

	mu      sync.Mutex
	nc      net.Conn
	gen     uint64 // connection generation, bumped on every failover
	nextID  uint64
	nextFD  uint64
	pending map[uint64]*pendingCall
	files   map[uint64]*openFile // client-visible fd -> remote state
	ready   chan struct{}        // closed while a conn is installed
	lastErr error                // terminal failure; nil while usable
	closed  bool
}

// openFile tracks one client-visible descriptor so it can be re-opened on a
// fresh connection after failover. serverFD is the descriptor on the
// *current* connection; it equals the client fd until the first reconnect.
type openFile struct {
	name     string
	serverFD uint64
}

// pendingCall is one in-flight request. The original arguments are retained
// so idempotent calls can be replayed verbatim on a new connection.
type pendingCall struct {
	ch      chan callResult
	op      Op
	fd      uint64 // client-visible fd
	offset  uint64
	length  uint32
	path    string
	payload []byte
}

type callResult struct {
	resp *response
	err  error
}

type response struct {
	flags   uint16
	errno   Errno
	value   int64
	payload []byte
}

// clientOptions collects the tunables; the zero value reproduces the
// original non-resilient client exactly.
type clientOptions struct {
	timeout           time.Duration
	maxRetries        int
	retryBase         time.Duration
	retryMax          time.Duration
	redial            func() (net.Conn, error)
	reconnectAttempts int
	seed              int64
	reg               *telemetry.Registry
}

// clientMetrics are the client-side fault counters; they are always counted
// and additionally exported when WithMetrics supplies a registry.
type clientMetrics struct {
	retries    telemetry.Counter
	timeouts   telemetry.Counter
	reconnects telemetry.Counter
	replays    telemetry.Counter
	lostOps    telemetry.Counter
}

func (m *clientMetrics) register(reg *telemetry.Registry) {
	reg.MustRegister("iofwd_retries_total",
		"Operations retried by the client (EAGAIN backoff retries and post-reconnect replays).", &m.retries)
	reg.MustRegister("iofwd_timeouts_total",
		"Operations abandoned because the per-op deadline expired.", &m.timeouts)
	reg.MustRegister("iofwd_reconnects_total",
		"Successful transport re-establishments after a connection failure.", &m.reconnects)
	reg.MustRegister("iofwd_replays_total",
		"Idempotent in-flight operations replayed on a fresh connection.", &m.replays)
	reg.MustRegister("iofwd_lost_ops_total",
		"Non-idempotent in-flight operations failed with ErrConnectionLost on a connection failure.", &m.lostOps)
}

// Option configures a Client.
type Option func(*clientOptions)

// WithTimeout bounds every operation: a call that has not completed within d
// fails with an error wrapping ErrOpTimeout. The deadline covers EAGAIN
// retries and reconnect waits.
func WithTimeout(d time.Duration) Option {
	return func(o *clientOptions) { o.timeout = d }
}

// WithRetry lets the client retry operations the server shed with EAGAIN up
// to max times, sleeping an exponentially growing, jittered delay between
// attempts (base doubling per attempt, capped at maxDelay).
func WithRetry(max int, base, maxDelay time.Duration) Option {
	return func(o *clientOptions) {
		o.maxRetries = max
		if base > 0 {
			o.retryBase = base
		}
		if maxDelay > 0 {
			o.retryMax = maxDelay
		}
	}
}

// WithReconnect enables transport failover with up to attempts redial
// attempts per outage. Dial installs a redialer to the original address
// automatically; NewClient users must also supply WithRedial.
func WithReconnect(attempts int) Option {
	return func(o *clientOptions) { o.reconnectAttempts = attempts }
}

// WithRedial supplies the function used to obtain a replacement connection
// after a transport failure (and enables reconnection if WithReconnect was
// not given).
func WithRedial(f func() (net.Conn, error)) Option {
	return func(o *clientOptions) { o.redial = f }
}

// WithSeed fixes the jitter RNG so chaos tests get a reproducible backoff
// schedule.
func WithSeed(seed int64) Option {
	return func(o *clientOptions) { o.seed = seed }
}

// WithMetrics registers the client's fault counters (iofwd_retries_total,
// iofwd_timeouts_total, iofwd_reconnects_total, ...) on reg.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(o *clientOptions) { o.reg = reg }
}

// Dial connects to a forwarding server. When WithReconnect is given, a
// redialer to the same address is installed automatically (unless WithRedial
// overrides it).
func Dial(network, addr string, opts ...Option) (*Client, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	var o clientOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.reconnectAttempts > 0 && o.redial == nil {
		opts = append(opts, WithRedial(func() (net.Conn, error) {
			return net.Dial(network, addr)
		}))
	}
	return NewClient(nc, opts...), nil
}

// NewClient wraps an established connection (TCP, Unix socket, or one end
// of a net.Pipe).
func NewClient(nc net.Conn, opts ...Option) *Client {
	o := clientOptions{
		retryBase:         5 * time.Millisecond,
		retryMax:          250 * time.Millisecond,
		reconnectAttempts: 0,
		seed:              1,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.redial != nil && o.reconnectAttempts <= 0 {
		o.reconnectAttempts = 8
	}
	c := &Client{
		opts:    o,
		rng:     rand.New(rand.NewSource(o.seed)),
		nc:      nc,
		nextID:  1,
		nextFD:  3, // mirrors the server's numbering until the first failover
		pending: make(map[uint64]*pendingCall),
		files:   make(map[uint64]*openFile),
		ready:   make(chan struct{}),
	}
	close(c.ready)
	if o.reg != nil {
		c.met.register(o.reg)
	}
	//lint:allow goroleak readLoop exits on its conn's read error; Client.Close closes nc, which unblocks and ends it
	go c.readLoop(nc, c.gen)
	return c
}

// Metrics returns a snapshot of the client-side fault counters:
// retries, timeouts, reconnects, replays, lost ops.
func (c *Client) Metrics() (retries, timeouts, reconnects, replays, lost uint64) {
	return c.met.retries.Value(), c.met.timeouts.Value(), c.met.reconnects.Value(),
		c.met.replays.Value(), c.met.lostOps.Value()
}

// readLoop demultiplexes responses to their callers by request id. One loop
// runs per connection generation; a stale loop exits silently.
func (c *Client) readLoop(nc net.Conn, gen uint64) {
	var h header
	for {
		if err := readHeader(nc, &h); err != nil {
			c.connFailed(gen, err)
			return
		}
		var payload []byte
		if h.length > 0 {
			payload = make([]byte, h.length)
			if _, err := io.ReadFull(nc, payload); err != nil {
				c.connFailed(gen, err)
				return
			}
		}
		c.mu.Lock()
		if c.gen != gen {
			c.mu.Unlock()
			return
		}
		pc := c.pending[h.reqID]
		delete(c.pending, h.reqID)
		c.mu.Unlock()
		if pc != nil {
			pc.ch <- callResult{resp: &response{
				flags: h.flags, errno: Errno(h.pathLen), value: int64(h.offset), payload: payload,
			}}
		}
	}
}

// idempotentOp reports whether an in-flight op may be replayed on a fresh
// connection without risking duplicate effects: positional reads and writes
// and stat are safe; cursor ops, open/close/fsync/flush/errpoll are not
// (cursor position and deferred-error state do not survive failover).
func idempotentOp(op Op) bool {
	switch op {
	case OpPread, OpPwrite, OpStat:
		return true
	}
	return false
}

// connFailed handles a transport failure observed on generation gen: it
// either fails everything (no redialer / client closed) or starts a
// reconnect, failing non-idempotent in-flight ops fast and keeping
// idempotent ones for replay.
func (c *Client) connFailed(gen uint64, cause error) {
	c.mu.Lock()
	if c.gen != gen || c.lastErr != nil {
		c.mu.Unlock()
		return
	}
	_ = c.nc.Close()
	if c.closed {
		c.failLocked(fmt.Errorf("%w: %v", ErrClientClosed, cause))
		c.mu.Unlock()
		return
	}
	if c.opts.redial == nil {
		c.failLocked(fmt.Errorf("%w: %v", ErrConnectionLost, cause))
		c.mu.Unlock()
		return
	}
	// Failover: invalidate the generation, block new calls on a fresh
	// ready gate, split the in-flight set.
	c.gen++
	c.ready = make(chan struct{})
	var replay []*pendingCall
	var replayIDs []uint64
	for id, pc := range c.pending {
		if idempotentOp(pc.op) {
			replay = append(replay, pc)
			replayIDs = append(replayIDs, id)
			continue
		}
		delete(c.pending, id)
		c.met.lostOps.Inc()
		//lint:allow lockhold pc.ch is buffered (cap 1) with exactly one send per call, so this send never blocks
		pc.ch <- callResult{err: fmt.Errorf("%w: %v", ErrConnectionLost, cause)}
	}
	files := make([]*openFile, 0, len(c.files))
	for _, f := range c.files {
		files = append(files, f)
	}
	c.mu.Unlock()
	//lint:allow goroleak reconnect is one-shot and self-terminating: it exits after redial success, retry exhaustion, or observing the client closed
	go c.reconnect(cause, files, replay, replayIDs)
}

// failLocked delivers a terminal error to every in-flight call and to all
// future calls. Callers hold c.mu.
func (c *Client) failLocked(err error) {
	c.lastErr = err
	for id, pc := range c.pending {
		delete(c.pending, id)
		//lint:allow lockhold pc.ch is buffered (cap 1) with exactly one send per call, so this send never blocks
		pc.ch <- callResult{err: err}
	}
	select {
	case <-c.ready:
	default:
		close(c.ready) // wake calls parked on the reconnect gate
	}
}

// backoff returns the jittered exponential delay for 1-based attempt k:
// base·2^(k-1) capped at max, scaled by a uniform factor in [0.5, 1.5).
func (c *Client) backoff(k int, base, max time.Duration) time.Duration {
	d := base << uint(k-1)
	if d > max || d <= 0 {
		d = max
	}
	c.rngMu.Lock()
	f := 0.5 + c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// reconnect re-establishes the transport with exponential backoff + jitter,
// re-opens every descriptor the client holds, installs the new connection,
// and replays the retained idempotent in-flight calls.
func (c *Client) reconnect(cause error, files []*openFile, replay []*pendingCall, replayIDs []uint64) {
	for attempt := 1; attempt <= c.opts.reconnectAttempts; attempt++ {
		time.Sleep(c.backoff(attempt, c.opts.retryBase, c.opts.retryMax))
		c.mu.Lock()
		if c.closed || c.lastErr != nil {
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		nc, err := c.opts.redial()
		if err != nil {
			continue
		}
		if err := reopenFiles(nc, files); err != nil {
			_ = nc.Close()
			continue
		}
		// Install the new connection and release parked callers.
		c.mu.Lock()
		if c.closed || c.lastErr != nil {
			c.mu.Unlock()
			_ = nc.Close()
			return
		}
		c.nc = nc
		c.gen++
		gen := c.gen
		close(c.ready)
		c.mu.Unlock()
		c.met.reconnects.Inc()
		//lint:allow goroleak replacement readLoop exits on its conn's read error; Client.Close closes the live nc, which unblocks and ends it
		go c.readLoop(nc, gen)
		// Replay idempotent in-flight ops with their original request ids;
		// responses route through the new readLoop to the original callers.
		for i, pc := range replay {
			c.met.retries.Inc()
			c.met.replays.Inc()
			if err := c.send(nc, replayIDs[i], pc); err != nil {
				// The fresh connection died already; its readLoop will
				// drive the next failover, which re-collects this pending.
				break
			}
		}
		return
	}
	c.mu.Lock()
	c.failLocked(fmt.Errorf("%w: reconnect failed after %d attempts: %v",
		ErrConnectionLost, c.opts.reconnectAttempts, cause))
	c.mu.Unlock()
}

// reopenFiles performs a synchronous open exchange for every retained
// descriptor on a candidate connection, before any readLoop owns it.
// Request ids live far above the call namespace to stay unique.
func reopenFiles(nc net.Conn, files []*openFile) error {
	id := uint64(1) << 62
	var h header
	for _, f := range files {
		id++
		req := header{op: OpOpen, reqID: id, pathLen: uint16(len(f.name))}
		if err := writeFrame(nc, &req, []byte(f.name)); err != nil {
			return err
		}
		if err := readHeader(nc, &h); err != nil {
			return err
		}
		if h.length > 0 {
			if _, err := io.CopyN(io.Discard, nc, int64(h.length)); err != nil {
				return err
			}
		}
		if Errno(h.pathLen) != EOK {
			return Errno(h.pathLen)
		}
		f.serverFD = h.offset
	}
	return nil
}

// send writes one request frame (with the fd translated to the current
// connection's descriptor) under the write mutex.
func (c *Client) send(nc net.Conn, id uint64, pc *pendingCall) error {
	fd := pc.fd
	c.mu.Lock()
	if f, ok := c.files[pc.fd]; ok {
		fd = f.serverFD
	}
	c.mu.Unlock()
	h := header{op: pc.op, reqID: id, fd: fd, offset: pc.offset,
		length: pc.length, pathLen: uint16(len(pc.path))}
	c.wmu.Lock()
	err := writeFrame(nc, &h, []byte(pc.path), pc.payload)
	c.wmu.Unlock()
	return err
}

// call sends one request and waits for its response, applying the per-op
// deadline and retrying EAGAIN (shed) responses with backoff for safely
// retryable data operations.
func (c *Client) call(op Op, fd uint64, offset uint64, length uint32, path string, payload []byte) (*response, error) {
	var deadline <-chan time.Time
	if c.opts.timeout > 0 {
		timer := time.NewTimer(c.opts.timeout)
		defer timer.Stop()
		deadline = timer.C
	}
	for attempt := 0; ; attempt++ {
		r, err := c.callOnce(op, fd, offset, length, path, payload, deadline)
		if err != nil {
			return nil, err
		}
		if r.errno != EAGAIN || attempt >= c.opts.maxRetries || !retryableErrno(op) {
			return r, nil
		}
		c.met.retries.Inc()
		wait := time.NewTimer(c.backoff(attempt+1, c.opts.retryBase, c.opts.retryMax))
		select {
		case <-wait.C:
		case <-deadline:
			wait.Stop()
			c.met.timeouts.Inc()
			return nil, fmt.Errorf("%w: %s retried past the %v deadline", ErrOpTimeout, op, c.opts.timeout)
		}
	}
}

// retryableErrno reports whether an EAGAIN reply to op is safe to reissue:
// the server sheds before reserving a cursor or staging anything, so every
// data operation qualifies.
func retryableErrno(op Op) bool {
	switch op {
	case OpWrite, OpPwrite, OpRead, OpPread, OpStat:
		return true
	}
	return false
}

// callOnce performs a single request/response exchange.
func (c *Client) callOnce(op Op, fd uint64, offset uint64, length uint32, path string, payload []byte, deadline <-chan time.Time) (*response, error) {
	pc := &pendingCall{
		ch: make(chan callResult, 1),
		op: op, fd: fd, offset: offset, length: length, path: path, payload: payload,
	}
	// Admission: wait for an installed connection (reconnects park callers
	// here) or a terminal error, then register the call under the lock.
	c.mu.Lock()
	for {
		if c.lastErr != nil {
			err := c.lastErr
			c.mu.Unlock()
			return nil, err
		}
		ready := c.ready
		select {
		case <-ready:
		default:
			c.mu.Unlock()
			select {
			case <-ready:
			case <-deadline:
				c.met.timeouts.Inc()
				return nil, fmt.Errorf("%w: %s waited %v for reconnection", ErrOpTimeout, op, c.opts.timeout)
			}
			c.mu.Lock()
			continue
		}
		break
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = pc
	nc := c.nc
	gen := c.gen
	c.mu.Unlock()

	if err := c.send(nc, id, pc); err != nil {
		// A write failure is a transport failure: let connFailed decide the
		// outcome of this call (replay or typed error) like any other
		// in-flight op, then wait for it.
		c.connFailed(gen, err)
	}
	select {
	case res := <-pc.ch:
		return res.resp, res.err
	case <-deadline:
		c.mu.Lock()
		delete(c.pending, id) // a late response is dropped by readLoop
		c.mu.Unlock()
		c.met.timeouts.Inc()
		return nil, fmt.Errorf("%w: %s after %v", ErrOpTimeout, op, c.opts.timeout)
	}
}

// respErr converts a response's status into a Go error, reconstructing
// deferred-error reporting.
func respErr(fd uint64, r *response) error {
	if r.errno == EOK {
		return nil
	}
	if r.flags&FlagDeferredErr != 0 {
		return &DeferredError{FD: fd, Err: r.errno}
	}
	return r.errno
}

// Open opens (creating if needed) the named remote object.
func (c *Client) Open(name string) (*File, error) {
	if len(name) == 0 || len(name) > MaxPath {
		return nil, EINVAL
	}
	r, err := c.call(OpOpen, 0, 0, 0, name, nil)
	if err != nil {
		return nil, err
	}
	if r.errno != EOK {
		return nil, r.errno
	}
	c.mu.Lock()
	fd := c.nextFD
	c.nextFD++
	c.files[fd] = &openFile{name: name, serverFD: uint64(r.value)}
	c.mu.Unlock()
	return &File{c: c, fd: fd, name: name}, nil
}

// Flush blocks until every staged operation on this connection has
// completed on the server.
func (c *Client) Flush() error {
	r, err := c.call(OpFlush, 0, 0, 0, "", nil)
	if err != nil {
		return err
	}
	return respErr(0, r)
}

// DropConnection forcibly closes the client's transport without closing the
// Client — a network-failure injection hook for chaos testing (see
// cmd/fwdbench -drop-every). With reconnection enabled the client redials,
// re-opens its descriptors, and replays idempotent in-flight operations.
func (c *Client) DropConnection() {
	c.mu.Lock()
	nc := c.nc
	c.mu.Unlock()
	if nc != nil {
		_ = nc.Close()
	}
}

// Close tears down the connection. Outstanding staged writes are drained by
// the server before their descriptors disappear. Calls after Close fail
// with an error wrapping ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nc := c.nc
	c.failLocked(fmt.Errorf("%w: %v", ErrClientClosed, ECLOSED))
	c.mu.Unlock()
	return nc.Close()
}

// File is an open remote descriptor.
type File struct {
	c    *Client
	fd   uint64
	name string
}

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.name }

// Write appends b at the server-side cursor. Under an asynchronous-staging
// server the data has been copied and queued when Write returns, not yet
// executed; a returned *DeferredError reports a *previous* staged write's
// failure while the current write was still accepted.
func (f *File) Write(b []byte) (int, error) {
	if len(b) > MaxPayload {
		return 0, EINVAL
	}
	r, err := f.c.call(OpWrite, f.fd, 0, uint32(len(b)), "", b)
	if err != nil {
		return 0, err
	}
	return int(r.value), respErr(f.fd, r)
}

// WriteAt writes b at the given offset. WriteAt is idempotent: after a
// connection failure with reconnection enabled, an in-flight WriteAt is
// replayed on the new connection instead of failing.
func (f *File) WriteAt(b []byte, off int64) (int, error) {
	if len(b) > MaxPayload || off < 0 {
		return 0, EINVAL
	}
	r, err := f.c.call(OpPwrite, f.fd, uint64(off), uint32(len(b)), "", b)
	if err != nil {
		return 0, err
	}
	return int(r.value), respErr(f.fd, r)
}

// Read fills b from the server-side cursor. Reads always block for the
// data and are ordered behind staged writes on the same descriptor.
func (f *File) Read(b []byte) (int, error) {
	if len(b) > MaxPayload {
		return 0, EINVAL
	}
	r, err := f.c.call(OpRead, f.fd, 0, uint32(len(b)), "", nil)
	if err != nil {
		return 0, err
	}
	return copy(b, r.payload), respErr(f.fd, r)
}

// ReadAt fills b from the given offset. ReadAt is idempotent and replayed
// across reconnects like WriteAt.
func (f *File) ReadAt(b []byte, off int64) (int, error) {
	if len(b) > MaxPayload || off < 0 {
		return 0, EINVAL
	}
	r, err := f.c.call(OpPread, f.fd, uint64(off), uint32(len(b)), "", nil)
	if err != nil {
		return 0, err
	}
	return copy(b, r.payload), respErr(f.fd, r)
}

// Sync drains staged operations on this descriptor and syncs the backend;
// it reports any deferred error.
func (f *File) Sync() error {
	r, err := f.c.call(OpFsync, f.fd, 0, 0, "", nil)
	if err != nil {
		return err
	}
	return respErr(f.fd, r)
}

// Stat returns the remote object's current size.
func (f *File) Stat() (int64, error) {
	r, err := f.c.call(OpStat, f.fd, 0, 0, "", nil)
	if err != nil {
		return 0, err
	}
	return r.value, respErr(f.fd, r)
}

// PollError retrieves (and clears) a pending deferred error without
// performing I/O.
func (f *File) PollError() error {
	r, err := f.c.call(OpErrPoll, f.fd, 0, 0, "", nil)
	if err != nil {
		return err
	}
	return respErr(f.fd, r)
}

// Close drains staged operations, closes the remote descriptor, and
// reports any unconsumed deferred error.
func (f *File) Close() error {
	r, err := f.c.call(OpClose, f.fd, 0, 0, "", nil)
	if err != nil {
		return err
	}
	f.c.mu.Lock()
	delete(f.c.files, f.fd)
	f.c.mu.Unlock()
	return respErr(f.fd, r)
}
