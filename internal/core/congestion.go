package core

import (
	"context"
	"sync"
	"time"
)

// congestion is the client's adaptive admission controller: an EWMA RTT /
// RTTVAR estimator (RFC 6298 constants) feeding an AIMD in-flight window.
// Every operation acquires a window slot before it touches the wire and
// releases it when its response (or deadline) arrives, so the number of
// concurrently outstanding requests never exceeds the window. The window
// grows one slot per clean round trip — doubling per RTT in slow start
// below ssthresh — and shrinks multiplicatively on a congestion signal
// (an EAGAIN shed or an op timeout), at most once per round trip: signals
// from operations sent before the previous decrease are echoes of the same
// congestion event, not new information (Karn-style epoch filtering).
//
// This is what turns the server's EAGAIN shedding from a survivable fault
// into a control signal: a fleet of clients each running this loop settles
// onto the server's service capacity instead of oscillating between
// hammering and idling in fixed backoff.
type congestion struct {
	mu       sync.Mutex
	cwnd     float64
	ssthresh float64
	max      float64
	beta     float64
	inflight int
	waiters  []*cwndWaiter
	closed   bool
	closeErr error

	srtt         time.Duration
	rttvar       time.Duration
	hasRTT       bool
	lastDecrease time.Time

	met *clientMetrics
}

// cwndWaiter parks one admission request. granted is written under
// congestion.mu by the granter before ch is closed, and read under the
// same lock by the waiter after it wakes.
type cwndWaiter struct {
	ch      chan struct{}
	granted bool
}

func newCongestion(w WindowConfig, met *clientMetrics) *congestion {
	g := &congestion{
		cwnd:     float64(w.Initial),
		ssthresh: float64(w.Max),
		max:      float64(w.Max),
		beta:     w.Beta,
		met:      met,
	}
	met.cwnd.Set(int64(g.cwnd))
	return g
}

// allowanceLocked is the integer admission limit implied by the window.
func (g *congestion) allowanceLocked() int {
	a := int(g.cwnd)
	if a < 1 {
		a = 1
	}
	return a
}

// acquire blocks until an in-flight slot is available, the context ends,
// or the client fails terminally.
func (g *congestion) acquire(ctx context.Context) error {
	g.mu.Lock()
	if g.closed {
		err := g.closeErr
		g.mu.Unlock()
		return err
	}
	if g.inflight < g.allowanceLocked() && len(g.waiters) == 0 {
		g.inflight++
		g.mu.Unlock()
		return nil
	}
	w := &cwndWaiter{ch: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()
	select {
	case <-w.ch:
		g.mu.Lock()
		defer g.mu.Unlock()
		if !w.granted {
			// Woken by close, not by a grant.
			return g.closeErr
		}
		if g.closed {
			// Granted, then the client failed before we ran: hand the
			// slot on so accounting stays exact, and fail the call.
			g.releaseLocked()
			return g.closeErr
		}
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		defer g.mu.Unlock()
		if w.granted {
			// The grant raced our cancellation; pass the slot on.
			g.releaseLocked()
		} else {
			g.removeWaiterLocked(w)
		}
		return ctx.Err()
	}
}

// hasRoom reports whether an admission slot is immediately available. The
// coalescer uses it as the merge trigger: a full window means writes are
// already queueing, so merging them costs no extra latency. The probe is
// advisory — a slot it sees may be taken before the caller acquires it —
// which at worst turns one coalescing opportunity into a short window wait.
func (g *congestion) hasRoom() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return !g.closed && len(g.waiters) == 0 && g.inflight < g.allowanceLocked()
}

// release returns an in-flight slot, handing it directly to the oldest
// waiter while the window still covers it.
func (g *congestion) release() {
	g.mu.Lock()
	g.releaseLocked()
	g.mu.Unlock()
}

func (g *congestion) releaseLocked() {
	if len(g.waiters) > 0 && g.inflight <= g.allowanceLocked() {
		g.grantLocked()
		return
	}
	g.inflight--
}

// grantLocked transfers the caller's slot to the oldest waiter: inflight
// is unchanged, ownership moves.
func (g *congestion) grantLocked() {
	w := g.waiters[0]
	g.waiters = g.waiters[1:]
	w.granted = true
	close(w.ch)
}

func (g *congestion) removeWaiterLocked(w *cwndWaiter) {
	for i, o := range g.waiters {
		if o == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}

// wakeLocked admits waiters into slots the window now covers (after an
// increase).
func (g *congestion) wakeLocked() {
	for len(g.waiters) > 0 && g.inflight < g.allowanceLocked() {
		g.inflight++
		g.grantLocked()
	}
}

// onAck records a clean round trip: the estimator absorbs the RTT sample
// (replayed operations are excluded, Karn's algorithm — their timestamps
// straddle a reconnect) and the window grows.
func (g *congestion) onAck(rtt time.Duration, sample bool) {
	g.mu.Lock()
	if sample && rtt > 0 {
		g.met.rttNS.Observe(rtt.Nanoseconds())
		if !g.hasRTT {
			g.srtt = rtt
			g.rttvar = rtt / 2
			g.hasRTT = true
		} else {
			d := g.srtt - rtt
			if d < 0 {
				d = -d
			}
			g.rttvar = (3*g.rttvar + d) / 4
			g.srtt = (7*g.srtt + rtt) / 8
		}
	}
	if g.cwnd < g.ssthresh {
		g.cwnd++ // slow start: +1 per ack doubles the window each RTT
	} else {
		g.cwnd += 1 / g.cwnd // congestion avoidance: +1 per window per RTT
	}
	if g.cwnd > g.max {
		g.cwnd = g.max
	}
	g.met.cwnd.Set(int64(g.cwnd))
	g.wakeLocked()
	g.mu.Unlock()
}

// onCongestion reacts to a shed or timeout for an operation sent at sentAt:
// multiplicative decrease, at most once per congestion epoch — signals from
// operations sent before the previous decrease already paid for it.
func (g *congestion) onCongestion(sentAt time.Time) {
	g.mu.Lock()
	if !g.lastDecrease.IsZero() && !sentAt.After(g.lastDecrease) {
		g.mu.Unlock()
		return
	}
	g.lastDecrease = time.Now()
	g.cwnd *= g.beta
	if g.cwnd < 1 {
		g.cwnd = 1
	}
	g.ssthresh = g.cwnd
	g.met.cwndDecreases.Inc()
	g.met.cwnd.Set(int64(g.cwnd))
	g.mu.Unlock()
}

// close delivers err to every parked and future admission request. Slots
// already held stay held; their operations are failed by failLocked.
func (g *congestion) close(err error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.closeErr = err
	for _, w := range g.waiters {
		close(w.ch)
	}
	g.waiters = nil
	g.mu.Unlock()
}

// snapshot returns the current window, estimator state, and in-flight
// count for Stats and the bench reporter.
func (g *congestion) snapshot() (cwnd float64, srtt, rttvar time.Duration, inflight int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cwnd, g.srtt, g.rttvar, g.inflight
}
