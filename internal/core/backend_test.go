package core

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestMemBackendGrowAndOverwrite(t *testing.T) {
	b := NewMemBackend()
	h, err := b.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("world"), 6); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("hello "), 0); err != nil {
		t.Fatal(err)
	}
	size, _ := h.Size()
	if size != 11 {
		t.Fatalf("size %d", size)
	}
	buf := make([]byte, 11)
	n, err := h.ReadAt(buf, 0)
	if err != nil || n != 11 || string(buf) != "hello world" {
		t.Fatalf("read %q n=%d err=%v", buf[:n], n, err)
	}
	// Read past EOF returns 0 bytes, no error (protocol-level short read).
	if n, err := h.ReadAt(buf, 100); n != 0 || err != nil {
		t.Fatalf("past-EOF read n=%d err=%v", n, err)
	}
}

func TestMemBackendOpenMissing(t *testing.T) {
	b := NewMemBackend()
	if _, err := b.Open("missing", false); !errors.Is(err, ENOENT) {
		t.Fatalf("err = %v", err)
	}
}

func TestNullBackend(t *testing.T) {
	h, err := NullBackend{}.Open("whatever", false)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := h.WriteAt(make([]byte, 1000), 0); n != 1000 || err != nil {
		t.Fatalf("write n=%d err=%v", n, err)
	}
	buf := []byte{1, 2, 3}
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0, 0, 0}) {
		t.Fatal("null read not zeroed")
	}
}

func TestFileBackend(t *testing.T) {
	dir := t.TempDir()
	b := NewFileBackend(dir)
	h, err := b.Open("sub/dir/file.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("persisted"), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	h2, err := b.Open("sub/dir/file.bin", false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if _, err := h2.ReadAt(buf, 0); err != nil || string(buf) != "persisted" {
		t.Fatalf("read back %q err=%v", buf, err)
	}
	_ = h2.Close()
	if _, err := b.Open("nope", false); !errors.Is(err, ENOENT) {
		t.Fatalf("missing file: %v", err)
	}
}

func TestFileBackendConfinesPaths(t *testing.T) {
	dir := t.TempDir()
	b := NewFileBackend(dir)
	// Escaping paths are cleaned into the root rather than walking out.
	h, err := b.Open("../../etc/escape-attempt", true)
	if err != nil {
		t.Fatal(err)
	}
	_ = h.Close()
	if _, err := b.Open("etc/escape-attempt", false); err != nil {
		t.Fatalf("cleaned path not under root: %v", err)
	}
}

func TestSinkBackendThrottles(t *testing.T) {
	// 1 MiB/s sink: a 128 KiB write must take ~125 ms.
	b := NewSinkBackend(NewMemBackend(), 1<<20, 0)
	h, err := b.Open("slow", true)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := h.WriteAt(make([]byte, 128<<10), 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("write completed in %v; throttle not applied", d)
	}
}

func TestSinkBackendSerializesConcurrentOps(t *testing.T) {
	b := NewSinkBackend(NewMemBackend(), 1<<20, 0)
	h, _ := b.Open("slow", true)
	start := time.Now()
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			_, _ = h.WriteAt(make([]byte, 64<<10), int64(i)*64<<10)
			done <- struct{}{}
		}()
	}
	<-done
	<-done
	// Two 62.5 ms operations through a serial sink take ~125 ms total.
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("concurrent ops completed in %v; sink did not serialize", d)
	}
}
