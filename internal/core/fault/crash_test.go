package fault

import (
	"testing"
)

func TestParseCrash(t *testing.T) {
	cs, err := ParseCrash("after-append:3, before-truncate:1 ,mid-append")
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Armed() {
		t.Fatal("parsed spec is not armed")
	}
	want := map[string]uint64{"after-append": 3, "before-truncate": 1, "mid-append": 1}
	for point, n := range want {
		if cs.plan[point] != n {
			t.Fatalf("plan[%s] = %d, want %d", point, cs.plan[point], n)
		}
	}
	if len(cs.plan) != len(want) {
		t.Fatalf("plan has %d points, want %d", len(cs.plan), len(want))
	}
}

func TestParseCrashEmpty(t *testing.T) {
	cs, err := ParseCrash("")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Armed() {
		t.Fatal("empty spec must not arm any point")
	}
	cs.Fire("anything") // must be a no-op, not a kill
	if cs.Hits("anything") != 1 {
		t.Fatal("unplanned hits must still be counted")
	}
}

func TestParseCrashErrors(t *testing.T) {
	for _, spec := range []string{
		"after-append:0",        // N must be >= 1
		"after-append:x",        // N must be a number
		":3",                    // empty point name
		"mid-append,mid-append", // duplicate point
	} {
		if _, err := ParseCrash(spec); err == nil {
			t.Fatalf("ParseCrash(%q) accepted a bad spec", spec)
		}
	}
}

func TestFireKillsAtNthHit(t *testing.T) {
	cs, err := ParseCrash("p:3")
	if err != nil {
		t.Fatal(err)
	}
	var killed []string
	cs.Kill = func(point string) { killed = append(killed, point) }
	for i := 0; i < 5; i++ {
		cs.Fire("p")
		cs.Fire("other") // unplanned point never kills
	}
	if len(killed) != 1 || killed[0] != "p" {
		t.Fatalf("killed = %v, want exactly one kill of p", killed)
	}
	if cs.Hits("p") != 5 || cs.Hits("other") != 5 {
		t.Fatalf("hits = %d/%d, want 5/5", cs.Hits("p"), cs.Hits("other"))
	}
}

func TestFireNilReceiver(t *testing.T) {
	var cs *CrashSet
	cs.Fire("p") // must not panic
	if cs.Armed() || cs.Hits("p") != 0 {
		t.Fatal("nil CrashSet must be inert")
	}
}
