// Package fault wraps a core.Backend with deterministic, seeded fault
// injection — the failure-testing layer DESIGN.md §8 calls for. It can
// inject transient I/O errors, added latency, long stalls, short
// reads/writes, and worker panics, with per-kind probabilities drawn from a
// single seeded schedule so chaos runs are reproducible.
//
// The injected failures model what the paper's hardware hid: a GPFS mount
// hiccuping under load, a congested external link, a wedged file server,
// and plain software bugs in the backend.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Config selects what to inject. All rates are probabilities in [0, 1]
// evaluated independently per data operation, drawn in a fixed order from
// one seeded RNG, so a given (Seed, op sequence) pair always yields the
// same fault schedule.
type Config struct {
	// Seed fixes the injection schedule; 0 means seed 1.
	Seed int64
	// ErrRate is the probability a data op fails with EIO.
	ErrRate float64
	// LatencyRate is the probability Latency is added to a data op.
	LatencyRate float64
	// Latency is the added delay for latency faults.
	Latency time.Duration
	// StallRate is the probability a data op hangs for Stall.
	StallRate float64
	// Stall is the hang duration for stall faults.
	Stall time.Duration
	// ShortRate is the probability a data op moves only half its bytes
	// (short writes also fail with EIO after the partial transfer, per the
	// WriteAt contract).
	ShortRate float64
	// PanicEvery makes every Nth data op panic (0 disables) — the worker
	// panic-recovery drill.
	PanicEvery uint64
	// OpenErrRate is the probability Open fails with EIO.
	OpenErrRate float64
}

// Stats counts injected faults by kind.
type Stats struct {
	Ops       uint64
	Errors    uint64
	Latencies uint64
	Stalls    uint64
	Shorts    uint64
	Panics    uint64
	OpenErrs  uint64
}

// Backend wraps an inner core.Backend with fault injection.
type Backend struct {
	inner core.Backend
	cfg   Config

	mu  sync.Mutex
	rng *rand.Rand
	ops uint64

	errs      telemetry.Counter
	latencies telemetry.Counter
	stalls    telemetry.Counter
	shorts    telemetry.Counter
	panics    telemetry.Counter
	openErrs  telemetry.Counter
	opCount   telemetry.Counter
}

// New wraps inner with the given fault configuration.
func New(inner core.Backend, cfg Config) *Backend {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Backend{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Stats returns a snapshot of the injection counters.
func (b *Backend) Stats() Stats {
	return Stats{
		Ops:       b.opCount.Value(),
		Errors:    b.errs.Value(),
		Latencies: b.latencies.Value(),
		Stalls:    b.stalls.Value(),
		Shorts:    b.shorts.Value(),
		Panics:    b.panics.Value(),
		OpenErrs:  b.openErrs.Value(),
	}
}

// Register exports the injection counters on reg as
// iofwd_fault_injected_total{kind=...}.
func (b *Backend) Register(reg *telemetry.Registry) {
	k := func(kind string, c *telemetry.Counter) {
		reg.MustRegister("iofwd_fault_injected_total",
			"Faults injected by the chaos backend, by kind.", c, telemetry.L("kind", kind))
	}
	k("error", &b.errs)
	k("latency", &b.latencies)
	k("stall", &b.stalls)
	k("short", &b.shorts)
	k("panic", &b.panics)
	k("open_error", &b.openErrs)
	reg.MustRegister("iofwd_fault_ops_total",
		"Data operations that passed through the chaos backend.", &b.opCount)
}

// verdict is one op's drawn fault plan.
type verdict struct {
	err     bool
	latency bool
	stall   bool
	short   bool
	panicy  bool
}

// decide draws the fault plan for the next data op. Every rate is drawn
// even when zero so the schedule depends only on (Seed, op index), not on
// which faults are enabled.
func (b *Backend) decide() verdict {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ops++
	v := verdict{
		err:     b.rng.Float64() < b.cfg.ErrRate,
		latency: b.rng.Float64() < b.cfg.LatencyRate,
		stall:   b.rng.Float64() < b.cfg.StallRate,
		short:   b.rng.Float64() < b.cfg.ShortRate,
	}
	if b.cfg.PanicEvery > 0 && b.ops%b.cfg.PanicEvery == 0 {
		v.panicy = true
	}
	return v
}

// Open implements core.Backend.
func (b *Backend) Open(name string, create bool) (core.Handle, error) {
	if b.cfg.OpenErrRate > 0 {
		b.mu.Lock()
		fail := b.rng.Float64() < b.cfg.OpenErrRate
		b.mu.Unlock()
		if fail {
			b.openErrs.Inc()
			return nil, fmt.Errorf("%w: injected open fault", core.EIO)
		}
	}
	h, err := b.inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &handle{b: b, inner: h}, nil
}

type handle struct {
	b     *Backend
	inner core.Handle
}

// before applies the drawn plan's delays and panic, returning the plan for
// the data-path decision.
func (h *handle) before() verdict {
	b := h.b
	b.opCount.Inc()
	v := b.decide()
	if v.latency && b.cfg.Latency > 0 {
		b.latencies.Inc()
		//lint:allow simclock injecting real wall-clock latency into the real server path is this backend's purpose; the *schedule* stays a pure function of (seed, op index)
		time.Sleep(b.cfg.Latency)
	}
	if v.stall && b.cfg.Stall > 0 {
		b.stalls.Inc()
		//lint:allow simclock injecting a real wall-clock stall into the real server path is this backend's purpose; the *schedule* stays a pure function of (seed, op index)
		time.Sleep(b.cfg.Stall)
	}
	if v.panicy {
		b.panics.Inc()
		panic(fmt.Sprintf("fault: injected backend panic (op %d)", b.ops))
	}
	return v
}

func (h *handle) WriteAt(p []byte, off int64) (int, error) {
	v := h.before()
	if v.err {
		h.b.errs.Inc()
		return 0, fmt.Errorf("%w: injected write fault", core.EIO)
	}
	if v.short && len(p) > 1 {
		h.b.shorts.Inc()
		n, err := h.inner.WriteAt(p[:len(p)/2], off)
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: injected short write (%d of %d bytes)", core.EIO, n, len(p))
	}
	return h.inner.WriteAt(p, off)
}

func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	v := h.before()
	if v.err {
		h.b.errs.Inc()
		return 0, fmt.Errorf("%w: injected read fault", core.EIO)
	}
	if v.short && len(p) > 1 {
		h.b.shorts.Inc()
		return h.inner.ReadAt(p[:len(p)/2], off)
	}
	return h.inner.ReadAt(p, off)
}

func (h *handle) Sync() error          { return h.inner.Sync() }
func (h *handle) Size() (int64, error) { return h.inner.Size() }
func (h *handle) Close() error         { return h.inner.Close() }

// Parse builds a Config from a compact flag spec, e.g.
//
//	err=0.01,lat=0.05:5ms,stall=0.001:250ms,short=0.005,panic=1000,openerr=0.01,seed=42
//
// Each field is optional; rates are floats in [0,1], durations use Go
// syntax, panic is an every-Nth count, seed is an integer.
func Parse(spec string) (Config, error) {
	var cfg Config
	if spec == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("fault: bad spec element %q (want key=value)", part)
		}
		rate := func(s string) (float64, error) {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil || f < 0 || f > 1 {
				return 0, fmt.Errorf("fault: %s wants a rate in [0,1], got %q", key, s)
			}
			return f, nil
		}
		var err error
		switch key {
		case "err":
			cfg.ErrRate, err = rate(val)
		case "lat":
			cfg.LatencyRate, cfg.Latency, err = rateDuration(key, val, 2*time.Millisecond)
		case "stall":
			cfg.StallRate, cfg.Stall, err = rateDuration(key, val, 250*time.Millisecond)
		case "short":
			cfg.ShortRate, err = rate(val)
		case "openerr":
			cfg.OpenErrRate, err = rate(val)
		case "panic":
			cfg.PanicEvery, err = strconv.ParseUint(val, 10, 64)
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return cfg, fmt.Errorf("fault: unknown spec key %q", key)
		}
		if err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// rateDuration parses "rate" or "rate:duration" with a default duration.
func rateDuration(key, val string, def time.Duration) (float64, time.Duration, error) {
	rs, ds, hasDur := strings.Cut(val, ":")
	f, err := strconv.ParseFloat(rs, 64)
	if err != nil || f < 0 || f > 1 {
		return 0, 0, fmt.Errorf("fault: %s wants rate[:duration], got %q", key, val)
	}
	d := def
	if hasDur {
		d, err = time.ParseDuration(ds)
		if err != nil {
			return 0, 0, fmt.Errorf("fault: %s duration: %v", key, err)
		}
	}
	return f, d, nil
}
