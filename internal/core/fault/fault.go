// Package fault wraps a core.Backend with deterministic, seeded fault
// injection — the failure-testing layer DESIGN.md §8 calls for. It can
// inject transient I/O errors, added latency, long stalls, short
// reads/writes, and worker panics, with per-kind probabilities drawn from a
// single seeded schedule so chaos runs are reproducible.
//
// The injected failures model what the paper's hardware hid: a GPFS mount
// hiccuping under load, a congested external link, a wedged file server,
// and plain software bugs in the backend.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Config selects what to inject. All rates are probabilities in [0, 1]
// evaluated independently per data operation, drawn in a fixed order from
// one seeded RNG, so a given (Seed, op sequence) pair always yields the
// same fault schedule.
type Config struct {
	// Seed fixes the injection schedule; 0 means seed 1.
	Seed int64
	// ErrRate is the probability a data op fails with EIO.
	ErrRate float64
	// LatencyRate is the probability Latency is added to a data op.
	LatencyRate float64
	// Latency is the added delay for latency faults.
	Latency time.Duration
	// StallRate is the probability a data op hangs for Stall.
	StallRate float64
	// Stall is the hang duration for stall faults.
	Stall time.Duration
	// ShortRate is the probability a data op moves only half its bytes
	// (short writes also fail with EIO after the partial transfer, per the
	// WriteAt contract).
	ShortRate float64
	// PanicEvery makes every Nth data op panic (0 disables) — the worker
	// panic-recovery drill.
	PanicEvery uint64
	// OpenErrRate is the probability Open fails with EIO.
	OpenErrRate float64
	// From arms the faults only once the 0-based data-op index reaches it.
	// The rates are still drawn for every op, so the schedule stays a pure
	// function of (Seed, op index) regardless of the window.
	From uint64
	// Until disarms the faults once the op index reaches it; 0 means no
	// upper bound. Together with From this scripts a deterministic outage
	// window ("ops 10..40 fail") with no wall clock involved.
	Until uint64
}

// Stats counts injected faults by kind.
type Stats struct {
	Ops       uint64
	Errors    uint64
	Latencies uint64
	Stalls    uint64
	Shorts    uint64
	Panics    uint64
	OpenErrs  uint64
}

// Backend wraps an inner core.Backend with fault injection.
type Backend struct {
	inner core.Backend
	cfg   Config

	mu  sync.Mutex
	rng *rand.Rand
	ops uint64

	errs      telemetry.Counter
	latencies telemetry.Counter
	stalls    telemetry.Counter
	shorts    telemetry.Counter
	panics    telemetry.Counter
	openErrs  telemetry.Counter
	opCount   telemetry.Counter
}

// New wraps inner with the given fault configuration.
func New(inner core.Backend, cfg Config) *Backend {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Backend{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Stats returns a snapshot of the injection counters.
func (b *Backend) Stats() Stats {
	return Stats{
		Ops:       b.opCount.Value(),
		Errors:    b.errs.Value(),
		Latencies: b.latencies.Value(),
		Stalls:    b.stalls.Value(),
		Shorts:    b.shorts.Value(),
		Panics:    b.panics.Value(),
		OpenErrs:  b.openErrs.Value(),
	}
}

// Register exports the injection counters on reg as
// iofwd_fault_injected_total{kind=...}. Extra labels distinguish multiple
// chaos backends on one registry (e.g. one per stripe member:
// telemetry.L("member", "2")).
func (b *Backend) Register(reg *telemetry.Registry, extra ...telemetry.Label) {
	k := func(kind string, c *telemetry.Counter) {
		labels := append([]telemetry.Label{telemetry.L("kind", kind)}, extra...)
		reg.MustRegister("iofwd_fault_injected_total",
			"Faults injected by the chaos backend, by kind.", c, labels...)
	}
	k("error", &b.errs)
	k("latency", &b.latencies)
	k("stall", &b.stalls)
	k("short", &b.shorts)
	k("panic", &b.panics)
	k("open_error", &b.openErrs)
	reg.MustRegister("iofwd_fault_ops_total",
		"Data operations that passed through the chaos backend.", &b.opCount, extra...)
}

// verdict is one op's drawn fault plan.
type verdict struct {
	err     bool
	latency bool
	stall   bool
	short   bool
	panicy  bool
}

// decide draws the fault plan for the next data op. Every rate is drawn
// even when zero (and even outside the From/Until window) so the schedule
// depends only on (Seed, op index), not on which faults are enabled.
func (b *Backend) decide() verdict {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := b.ops // 0-based index of the op being decided
	b.ops++
	v := verdict{
		err:     b.rng.Float64() < b.cfg.ErrRate,
		latency: b.rng.Float64() < b.cfg.LatencyRate,
		stall:   b.rng.Float64() < b.cfg.StallRate,
		short:   b.rng.Float64() < b.cfg.ShortRate,
	}
	if b.cfg.PanicEvery > 0 && b.ops%b.cfg.PanicEvery == 0 {
		v.panicy = true
	}
	if !b.armedLocked(idx) {
		return verdict{}
	}
	return v
}

// armedLocked reports whether faults apply at the given 0-based op index.
func (b *Backend) armedLocked(idx uint64) bool {
	if idx < b.cfg.From {
		return false
	}
	if b.cfg.Until > 0 && idx >= b.cfg.Until {
		return false
	}
	return true
}

// Open implements core.Backend.
func (b *Backend) Open(name string, create bool) (core.Handle, error) {
	if b.cfg.OpenErrRate > 0 {
		b.mu.Lock()
		fail := b.rng.Float64() < b.cfg.OpenErrRate
		fail = fail && b.armedLocked(b.ops)
		b.mu.Unlock()
		if fail {
			b.openErrs.Inc()
			return nil, fmt.Errorf("%w: injected open fault", core.EIO)
		}
	}
	h, err := b.inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &handle{b: b, inner: h}, nil
}

type handle struct {
	b     *Backend
	inner core.Handle
}

// before applies the drawn plan's delays and panic, returning the plan for
// the data-path decision.
func (h *handle) before() verdict {
	b := h.b
	b.opCount.Inc()
	v := b.decide()
	if v.latency && b.cfg.Latency > 0 {
		b.latencies.Inc()
		//lint:allow simclock injecting real wall-clock latency into the real server path is this backend's purpose; the *schedule* stays a pure function of (seed, op index)
		time.Sleep(b.cfg.Latency)
	}
	if v.stall && b.cfg.Stall > 0 {
		b.stalls.Inc()
		//lint:allow simclock injecting a real wall-clock stall into the real server path is this backend's purpose; the *schedule* stays a pure function of (seed, op index)
		time.Sleep(b.cfg.Stall)
	}
	if v.panicy {
		b.panics.Inc()
		panic(fmt.Sprintf("fault: injected backend panic (op %d)", b.ops))
	}
	return v
}

func (h *handle) WriteAt(p []byte, off int64) (int, error) {
	v := h.before()
	if v.err {
		h.b.errs.Inc()
		return 0, fmt.Errorf("%w: injected write fault", core.EIO)
	}
	if v.short && len(p) > 1 {
		h.b.shorts.Inc()
		n, err := h.inner.WriteAt(p[:len(p)/2], off)
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: injected short write (%d of %d bytes)", core.EIO, n, len(p))
	}
	return h.inner.WriteAt(p, off)
}

func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	v := h.before()
	if v.err {
		h.b.errs.Inc()
		return 0, fmt.Errorf("%w: injected read fault", core.EIO)
	}
	if v.short && len(p) > 1 {
		h.b.shorts.Inc()
		return h.inner.ReadAt(p[:len(p)/2], off)
	}
	return h.inner.ReadAt(p, off)
}

func (h *handle) Sync() error          { return h.inner.Sync() }
func (h *handle) Size() (int64, error) { return h.inner.Size() }
func (h *handle) Close() error         { return h.inner.Close() }

// Parse builds a Config from a compact flag spec, e.g.
//
//	err=0.01,lat=0.05:5ms,stall=0.001:250ms,short=0.005,panic=1000,openerr=0.01,seed=42
//
// Each field is optional; rates are floats in [0,1], durations use Go
// syntax, panic is an every-Nth count, seed is an integer.
func Parse(spec string) (Config, error) {
	var cfg Config
	if spec == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("fault: bad spec element %q (want key=value)", part)
		}
		rate := func(s string) (float64, error) {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil || f < 0 || f > 1 {
				return 0, fmt.Errorf("fault: %s wants a rate in [0,1], got %q", key, s)
			}
			return f, nil
		}
		var err error
		switch key {
		case "err", "eio":
			cfg.ErrRate, err = rate(val)
		case "lat":
			cfg.LatencyRate, cfg.Latency, err = rateDuration(key, val, 2*time.Millisecond)
		case "stall":
			cfg.StallRate, cfg.Stall, err = rateDuration(key, val, 250*time.Millisecond)
		case "short":
			cfg.ShortRate, err = rate(val)
		case "openerr":
			cfg.OpenErrRate, err = rate(val)
		case "panic":
			cfg.PanicEvery, err = strconv.ParseUint(val, 10, 64)
		case "from":
			cfg.From, err = strconv.ParseUint(val, 10, 64)
		case "until":
			cfg.Until, err = strconv.ParseUint(val, 10, 64)
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return cfg, fmt.Errorf("fault: unknown spec key %q", key)
		}
		if err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// ParseMulti builds a base Config plus per-member overrides from a
// ';'-separated spec, e.g.
//
//	seed=7;member=2:eio=0.05,from=10,until=40
//
// Sections without a "member=N:" prefix accumulate into the base config
// (and, via Parse's last-wins key handling, may be split across sections).
// A member section starts from the accumulated base and overlays its own
// fields, so "seed=7" above seeds every member's schedule. Unless a member
// section sets its own seed, each member's RNG is seeded with
// DeriveSeed(base seed, member), so members draw independent schedules
// that are still pure functions of (seed, member, op index).
func ParseMulti(spec string) (Config, map[int]Config, error) {
	var baseParts []string
	type memberPart struct {
		member int
		spec   string
	}
	var memberParts []memberPart
	for _, sec := range strings.Split(spec, ";") {
		sec = strings.TrimSpace(sec)
		if sec == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(sec, "member="); ok {
			ms, body, ok := strings.Cut(rest, ":")
			if !ok {
				return Config{}, nil, fmt.Errorf("fault: member section %q wants member=N:spec", sec)
			}
			m, err := strconv.Atoi(ms)
			if err != nil || m < 0 {
				return Config{}, nil, fmt.Errorf("fault: bad member index %q", ms)
			}
			memberParts = append(memberParts, memberPart{m, body})
			continue
		}
		baseParts = append(baseParts, sec)
	}
	baseSpec := strings.Join(baseParts, ",")
	base, err := Parse(baseSpec)
	if err != nil {
		return Config{}, nil, err
	}
	members := make(map[int]Config)
	for _, mp := range memberParts {
		combined := mp.spec
		if baseSpec != "" {
			combined = baseSpec + "," + mp.spec
		}
		cfg, err := Parse(combined)
		if err != nil {
			return Config{}, nil, fmt.Errorf("fault: member %d: %w", mp.member, err)
		}
		// A member that inherited the base seed gets a derived one, so two
		// members under the same global seed do not mirror each other's
		// schedules. An explicit per-member seed wins.
		memberOwn, err := Parse(mp.spec)
		if err != nil {
			return Config{}, nil, fmt.Errorf("fault: member %d: %w", mp.member, err)
		}
		if memberOwn.Seed == 0 {
			cfg.Seed = DeriveSeed(base.Seed, mp.member)
		}
		if _, dup := members[mp.member]; dup {
			return Config{}, nil, fmt.Errorf("fault: member %d configured twice", mp.member)
		}
		members[mp.member] = cfg
	}
	return base, members, nil
}

// DeriveSeed mixes a base seed with a member index into an independent
// per-member seed (splitmix64 finalizer — a pure function, so a chaos run
// is reproducible from the base seed alone).
func DeriveSeed(seed int64, member int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(member+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		s = 1
	}
	return s
}

// rateDuration parses "rate" or "rate:duration" with a default duration.
func rateDuration(key, val string, def time.Duration) (float64, time.Duration, error) {
	rs, ds, hasDur := strings.Cut(val, ":")
	f, err := strconv.ParseFloat(rs, 64)
	if err != nil || f < 0 || f > 1 {
		return 0, 0, fmt.Errorf("fault: %s wants rate[:duration], got %q", key, val)
	}
	d := def
	if hasDur {
		d, err = time.ParseDuration(ds)
		if err != nil {
			return 0, 0, fmt.Errorf("fault: %s duration: %v", key, err)
		}
	}
	return f, d, nil
}
