package fault

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// outcomes drives n writes through a fresh fault backend and records each
// op's observed result class.
func outcomes(t *testing.T, cfg Config, n int) []string {
	t.Helper()
	b := New(core.NewMemBackend(), cfg)
	h, err := b.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{9}, 64)
	var out []string
	for i := 0; i < n; i++ {
		wn, err := h.WriteAt(buf, int64(i*64))
		switch {
		case err == nil:
			out = append(out, "ok")
		case wn == len(buf)/2:
			out = append(out, "short")
		default:
			out = append(out, "err")
		}
	}
	return out
}

// TestDeterministicSchedule: same seed, same op sequence, same fault
// schedule — the reproducibility contract chaos tests rely on.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, ErrRate: 0.2, ShortRate: 0.2}
	a := outcomes(t, cfg, 200)
	b := outcomes(t, cfg, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d: %s vs %s", i, a[i], b[i])
		}
	}
	var faults int
	for _, o := range a {
		if o != "ok" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults injected at 40% combined rate over 200 ops")
	}
	diff := outcomes(t, Config{Seed: 43, ErrRate: 0.2, ShortRate: 0.2}, 200)
	same := true
	for i := range a {
		if a[i] != diff[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestInjectedErrorsAreEIO: injected failures must map onto the wire EIO
// code via errors.Is/As so the server forwards them faithfully.
func TestInjectedErrorsAreEIO(t *testing.T) {
	b := New(core.NewMemBackend(), Config{Seed: 1, ErrRate: 1})
	h, err := b.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("x"), 0); !errors.Is(err, core.EIO) {
		t.Fatalf("want EIO wrap, got %v", err)
	}
	if _, err := h.ReadAt(make([]byte, 1), 0); !errors.Is(err, core.EIO) {
		t.Fatalf("want EIO wrap on read, got %v", err)
	}
	if b.Stats().Errors != 2 {
		t.Fatalf("errors counted: %d", b.Stats().Errors)
	}
}

// TestShortWrite: a short-write fault transfers half the payload to the
// inner backend and fails the op, modelling a torn write.
func TestShortWrite(t *testing.T) {
	mem := core.NewMemBackend()
	b := New(mem, Config{Seed: 1, ShortRate: 1})
	h, err := b.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{5}, 128)
	n, err := h.WriteAt(payload, 0)
	if err == nil || !errors.Is(err, core.EIO) {
		t.Fatalf("short write must fail with EIO, got n=%d err=%v", n, err)
	}
	if n != 64 {
		t.Fatalf("short write moved %d bytes, want 64", n)
	}
	data, _ := mem.Bytes("f")
	if len(data) != 64 {
		t.Fatalf("inner backend got %d bytes, want 64", len(data))
	}
}

// TestPanicEvery: every Nth data op panics, deterministically.
func TestPanicEvery(t *testing.T) {
	b := New(core.NewMemBackend(), Config{Seed: 1, PanicEvery: 3})
	h, err := b.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	writeRecover := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		_, _ = h.WriteAt([]byte("x"), 0)
		return false
	}
	got := []bool{writeRecover(), writeRecover(), writeRecover(), writeRecover(), writeRecover(), writeRecover()}
	want := []bool{false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("panic schedule %v, want %v", got, want)
		}
	}
	if b.Stats().Panics != 2 {
		t.Fatalf("panics counted: %d", b.Stats().Panics)
	}
}

// TestParse covers the flag-spec grammar.
func TestParse(t *testing.T) {
	cfg, err := Parse("err=0.01,lat=0.05:5ms,stall=0.001:250ms,short=0.005,panic=1000,openerr=0.02,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 42, ErrRate: 0.01,
		LatencyRate: 0.05, Latency: 5 * time.Millisecond,
		StallRate: 0.001, Stall: 250 * time.Millisecond,
		ShortRate: 0.005, PanicEvery: 1000, OpenErrRate: 0.02,
	}
	if cfg != want {
		t.Fatalf("Parse = %+v, want %+v", cfg, want)
	}
	if cfg, err := Parse("lat=0.5"); err != nil || cfg.Latency != 2*time.Millisecond {
		t.Fatalf("default latency: %+v err=%v", cfg, err)
	}
	if _, err := Parse("err=1.5"); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if _, err := Parse("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := Parse("err"); err == nil {
		t.Fatal("missing value accepted")
	}
	if cfg, err := Parse(""); err != nil || cfg != (Config{}) {
		t.Fatal("empty spec must be the zero config")
	}
}

// TestOpWindow: From/Until scripts a deterministic outage window — faults
// fire only while the 0-based op index is inside [From, Until).
func TestOpWindow(t *testing.T) {
	out := outcomes(t, Config{Seed: 1, ErrRate: 1, From: 3, Until: 6}, 10)
	want := []string{"ok", "ok", "ok", "err", "err", "err", "ok", "ok", "ok", "ok"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("window schedule %v, want %v", out, want)
		}
	}
	// The window must not perturb the drawn schedule: ops outside it still
	// consume the same draws, so a windowed and unwindowed run agree inside
	// the window.
	full := outcomes(t, Config{Seed: 7, ErrRate: 0.5}, 20)
	windowed := outcomes(t, Config{Seed: 7, ErrRate: 0.5, From: 5, Until: 15}, 20)
	for i := 5; i < 15; i++ {
		if full[i] != windowed[i] {
			t.Fatalf("op %d: windowed run drew %s, unwindowed %s", i, windowed[i], full[i])
		}
	}
}

// TestEioAlias: "eio" parses as "err".
func TestEioAlias(t *testing.T) {
	cfg, err := Parse("eio=0.25")
	if err != nil || cfg.ErrRate != 0.25 {
		t.Fatalf("eio alias: %+v err=%v", cfg, err)
	}
}

// TestParseMulti covers the member-section grammar and seed derivation.
func TestParseMulti(t *testing.T) {
	base, members, err := ParseMulti("seed=7,lat=0.1:1ms;member=2:eio=0.05,from=10,until=40;member=0:seed=99,err=1")
	if err != nil {
		t.Fatal(err)
	}
	if base.Seed != 7 || base.LatencyRate != 0.1 {
		t.Fatalf("base = %+v", base)
	}
	m2, ok := members[2]
	if !ok {
		t.Fatal("member 2 missing")
	}
	if m2.ErrRate != 0.05 || m2.From != 10 || m2.Until != 40 || m2.LatencyRate != 0.1 {
		t.Fatalf("member 2 = %+v (must inherit base fields and overlay its own)", m2)
	}
	if m2.Seed != DeriveSeed(7, 2) {
		t.Fatalf("member 2 seed %d, want derived %d", m2.Seed, DeriveSeed(7, 2))
	}
	if m0 := members[0]; m0.Seed != 99 || m0.ErrRate != 1 {
		t.Fatalf("member 0 = %+v (explicit seed must win)", m0)
	}
	if _, _, err := ParseMulti("member=1:err=1;member=1:err=0"); err == nil {
		t.Fatal("duplicate member section accepted")
	}
	if _, _, err := ParseMulti("member=x:err=1"); err == nil {
		t.Fatal("bad member index accepted")
	}
	if _, _, err := ParseMulti("member=1"); err == nil {
		t.Fatal("member section without spec accepted")
	}
	if base, members, err := ParseMulti(""); err != nil || base != (Config{}) || len(members) != 0 {
		t.Fatal("empty multi spec must be the zero config")
	}
}

// TestDeriveSeed: derived seeds are deterministic, member-distinct, and
// never zero (zero would mean "seed 1" downstream).
func TestDeriveSeed(t *testing.T) {
	seen := make(map[int64]int)
	for m := 0; m < 64; m++ {
		s := DeriveSeed(7, m)
		if s == 0 {
			t.Fatalf("member %d derived seed 0", m)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("members %d and %d derive the same seed", prev, m)
		}
		seen[s] = m
		if s != DeriveSeed(7, m) {
			t.Fatalf("member %d seed not deterministic", m)
		}
	}
}

// TestOpenErrRate: open faults surface as EIO from Open.
func TestOpenErrRate(t *testing.T) {
	b := New(core.NewMemBackend(), Config{Seed: 1, OpenErrRate: 1})
	if _, err := b.Open("f", true); !errors.Is(err, core.EIO) {
		t.Fatalf("want EIO from injected open fault, got %v", err)
	}
	if b.Stats().OpenErrs != 1 {
		t.Fatalf("open errors counted: %d", b.Stats().OpenErrs)
	}
}
