package fault

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// outcomes drives n writes through a fresh fault backend and records each
// op's observed result class.
func outcomes(t *testing.T, cfg Config, n int) []string {
	t.Helper()
	b := New(core.NewMemBackend(), cfg)
	h, err := b.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{9}, 64)
	var out []string
	for i := 0; i < n; i++ {
		wn, err := h.WriteAt(buf, int64(i*64))
		switch {
		case err == nil:
			out = append(out, "ok")
		case wn == len(buf)/2:
			out = append(out, "short")
		default:
			out = append(out, "err")
		}
	}
	return out
}

// TestDeterministicSchedule: same seed, same op sequence, same fault
// schedule — the reproducibility contract chaos tests rely on.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, ErrRate: 0.2, ShortRate: 0.2}
	a := outcomes(t, cfg, 200)
	b := outcomes(t, cfg, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d: %s vs %s", i, a[i], b[i])
		}
	}
	var faults int
	for _, o := range a {
		if o != "ok" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults injected at 40% combined rate over 200 ops")
	}
	diff := outcomes(t, Config{Seed: 43, ErrRate: 0.2, ShortRate: 0.2}, 200)
	same := true
	for i := range a {
		if a[i] != diff[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestInjectedErrorsAreEIO: injected failures must map onto the wire EIO
// code via errors.Is/As so the server forwards them faithfully.
func TestInjectedErrorsAreEIO(t *testing.T) {
	b := New(core.NewMemBackend(), Config{Seed: 1, ErrRate: 1})
	h, err := b.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("x"), 0); !errors.Is(err, core.EIO) {
		t.Fatalf("want EIO wrap, got %v", err)
	}
	if _, err := h.ReadAt(make([]byte, 1), 0); !errors.Is(err, core.EIO) {
		t.Fatalf("want EIO wrap on read, got %v", err)
	}
	if b.Stats().Errors != 2 {
		t.Fatalf("errors counted: %d", b.Stats().Errors)
	}
}

// TestShortWrite: a short-write fault transfers half the payload to the
// inner backend and fails the op, modelling a torn write.
func TestShortWrite(t *testing.T) {
	mem := core.NewMemBackend()
	b := New(mem, Config{Seed: 1, ShortRate: 1})
	h, err := b.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{5}, 128)
	n, err := h.WriteAt(payload, 0)
	if err == nil || !errors.Is(err, core.EIO) {
		t.Fatalf("short write must fail with EIO, got n=%d err=%v", n, err)
	}
	if n != 64 {
		t.Fatalf("short write moved %d bytes, want 64", n)
	}
	data, _ := mem.Bytes("f")
	if len(data) != 64 {
		t.Fatalf("inner backend got %d bytes, want 64", len(data))
	}
}

// TestPanicEvery: every Nth data op panics, deterministically.
func TestPanicEvery(t *testing.T) {
	b := New(core.NewMemBackend(), Config{Seed: 1, PanicEvery: 3})
	h, err := b.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	writeRecover := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		_, _ = h.WriteAt([]byte("x"), 0)
		return false
	}
	got := []bool{writeRecover(), writeRecover(), writeRecover(), writeRecover(), writeRecover(), writeRecover()}
	want := []bool{false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("panic schedule %v, want %v", got, want)
		}
	}
	if b.Stats().Panics != 2 {
		t.Fatalf("panics counted: %d", b.Stats().Panics)
	}
}

// TestParse covers the flag-spec grammar.
func TestParse(t *testing.T) {
	cfg, err := Parse("err=0.01,lat=0.05:5ms,stall=0.001:250ms,short=0.005,panic=1000,openerr=0.02,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 42, ErrRate: 0.01,
		LatencyRate: 0.05, Latency: 5 * time.Millisecond,
		StallRate: 0.001, Stall: 250 * time.Millisecond,
		ShortRate: 0.005, PanicEvery: 1000, OpenErrRate: 0.02,
	}
	if cfg != want {
		t.Fatalf("Parse = %+v, want %+v", cfg, want)
	}
	if cfg, err := Parse("lat=0.5"); err != nil || cfg.Latency != 2*time.Millisecond {
		t.Fatalf("default latency: %+v err=%v", cfg, err)
	}
	if _, err := Parse("err=1.5"); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if _, err := Parse("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := Parse("err"); err == nil {
		t.Fatal("missing value accepted")
	}
	if cfg, err := Parse(""); err != nil || cfg != (Config{}) {
		t.Fatal("empty spec must be the zero config")
	}
}

// TestOpenErrRate: open faults surface as EIO from Open.
func TestOpenErrRate(t *testing.T) {
	b := New(core.NewMemBackend(), Config{Seed: 1, OpenErrRate: 1})
	if _, err := b.Open("f", true); !errors.Is(err, core.EIO) {
		t.Fatalf("want EIO from injected open fault, got %v", err)
	}
	if b.Stats().OpenErrs != 1 {
		t.Fatalf("open errors counted: %d", b.Stats().OpenErrs)
	}
}
