package fault

import (
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestRegisteredMetricNamesValidate holds the chaos backend's exported
// counters to the same naming convention the metricname analyzer enforces
// on literals (see the matching test in internal/core).
func TestRegisteredMetricNamesValidate(t *testing.T) {
	reg := telemetry.NewRegistry()
	New(core.NewMemBackend(), Config{}).Register(reg)

	fams := reg.Snapshot()
	if len(fams) == 0 {
		t.Fatal("no metric families registered")
	}
	for _, f := range fams {
		kind, ok := telemetry.KindFromString(f.Kind)
		if !ok {
			t.Errorf("metric %q has unknown kind %q", f.Name, f.Kind)
			continue
		}
		if err := telemetry.ValidateName(f.Name, kind); err != nil {
			t.Errorf("registered metric fails naming convention: %v", err)
		}
	}
}
