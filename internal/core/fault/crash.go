package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// CrashSet schedules deterministic process kills at named crash points —
// the recovery-drill side of fault injection. Code under test (the WAL
// spill tier) calls Fire("after-append") etc. at its crash points; a
// CrashSet armed with "after-append:3" SIGKILLs the process on the third
// hit of that point. The schedule is a pure function of the per-point hit
// count (an op index, not a clock or an RNG), so a kill/restart drill is
// exactly reproducible: same workload, same kill site.
//
// The zero kill function is a real self-SIGKILL — no deferred functions,
// no flushes, exactly what a node power loss looks like to the WAL. Tests
// that only want to observe firing override Kill.
type CrashSet struct {
	mu   sync.Mutex
	plan map[string]uint64 // point -> 1-based hit number to kill at
	hits map[string]uint64

	// Kill is invoked when a planned hit is reached. Nil means SIGKILL the
	// current process (which never returns).
	Kill func(point string)
}

// ParseCrash builds a CrashSet from a compact flag spec, e.g.
//
//	after-append:3,before-truncate:1
//
// Each element is point:N, killing at the Nth hit of that point (N >= 1);
// a bare point name means its first hit.
func ParseCrash(spec string) (*CrashSet, error) {
	cs := &CrashSet{plan: make(map[string]uint64), hits: make(map[string]uint64)}
	if spec == "" {
		return cs, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, ns, hasN := strings.Cut(part, ":")
		if point == "" {
			return nil, fmt.Errorf("fault: empty crash point in %q", spec)
		}
		n := uint64(1)
		if hasN {
			var err error
			n, err = strconv.ParseUint(ns, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("fault: crash point %q wants point:N with N >= 1", part)
			}
		}
		if _, dup := cs.plan[point]; dup {
			return nil, fmt.Errorf("fault: crash point %q configured twice", point)
		}
		cs.plan[point] = n
	}
	return cs, nil
}

// Armed reports whether any crash point is planned.
func (cs *CrashSet) Armed() bool {
	if cs == nil {
		return false
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.plan) > 0
}

// Fire records one hit of the named crash point and kills the process if
// the plan says this hit is the one. It is safe on a nil receiver (no-op),
// so call sites can pass cs.Fire around unconditionally.
func (cs *CrashSet) Fire(point string) {
	if cs == nil {
		return
	}
	cs.mu.Lock()
	cs.hits[point]++
	kill := cs.plan[point] != 0 && cs.hits[point] == cs.plan[point]
	fn := cs.Kill
	cs.mu.Unlock()
	if !kill {
		return
	}
	if fn != nil {
		fn(point)
		return
	}
	// A real crash: no exit handlers, no flushes. Kill never fails against
	// our own pid; if the signal is somehow delayed, hard-exit anyway so
	// the drill cannot continue past its kill site.
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	os.Exit(137)
}

// Hits returns how many times the named point has fired, for tests.
func (cs *CrashSet) Hits(point string) uint64 {
	if cs == nil {
		return 0
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.hits[point]
}
