package core

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func BenchmarkHeaderEncodeDecode(b *testing.B) {
	h := header{op: OpWrite, reqID: 1, fd: 3, offset: 1 << 30, length: 1 << 20}
	var buf [headerSize]byte
	var out header
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.encode(&buf)
		if err := decodeHeader(&buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMLGetPut(b *testing.B) {
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("size%dK", size/1024), func(b *testing.B) {
			pool := NewBML(256 << 20)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pool.Put(pool.Get(size))
			}
		})
	}
}

// BenchmarkBMLVsMake — the ablation for the pooled power-of-2 classes vs
// plain allocation under concurrent producers.
func BenchmarkBMLVsMake(b *testing.B) {
	const size = 256 << 10
	b.Run("bml", func(b *testing.B) {
		pool := NewBML(256 << 20)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				buf := pool.Get(size)
				buf[0] = 1
				pool.Put(buf)
			}
		})
	})
	b.Run("make", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				buf := make([]byte, size)
				buf[0] = 1
				_ = buf
			}
		})
	})
}

// benchServer wires n clients to a fresh server over TCP loopback and runs
// the write workload, reporting aggregate goodput.
func benchWrites(b *testing.B, mode Mode, clients int, msg int, backend Backend) {
	b.Helper()
	srv := NewServer(Config{Mode: mode, Workers: 4, BMLBytes: 512 << 20, Backend: backend})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	conns := make([]*File, clients)
	cls := make([]*Client, clients)
	for i := range conns {
		c, err := Dial("tcp", l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		cls[i] = c
		f, err := c.Open(context.Background(), fmt.Sprintf("bench%d", i))
		if err != nil {
			b.Fatal(err)
		}
		conns[i] = f
	}
	defer func() {
		for i := range conns {
			_ = conns[i].Close()
			_ = cls[i].Close()
		}
	}()

	payload := make([]byte, msg)
	b.SetBytes(int64(msg * clients))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, f := range conns {
			f := f
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := f.Write(payload); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	for _, f := range conns {
		if err := f.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerModesFastBackend — protocol + scheduling overhead when the
// backend is free: staging cannot win here, it only must not lose badly.
func BenchmarkServerModesFastBackend(b *testing.B) {
	for _, mode := range []Mode{ModeDirect, ModeWorkQueue, ModeAsync} {
		b.Run(mode.String(), func(b *testing.B) {
			benchWrites(b, mode, 4, 256<<10, NullBackend{})
		})
	}
}

// BenchmarkServerModesSlowSink — the paper's regime: a rate-limited sink
// makes the asynchronous mode's overlap visible as goodput.
func BenchmarkServerModesSlowSink(b *testing.B) {
	for _, mode := range []Mode{ModeDirect, ModeWorkQueue, ModeAsync} {
		b.Run(mode.String(), func(b *testing.B) {
			backend := NewSinkBackend(NewMemBackend(), 512<<20, 50*time.Microsecond)
			benchWrites(b, mode, 4, 256<<10, backend)
		})
	}
}

// BenchmarkPipelinedWrites — single client, no fan-out: measures per-op
// protocol latency across modes.
func BenchmarkPipelinedWrites(b *testing.B) {
	for _, mode := range []Mode{ModeDirect, ModeAsync} {
		b.Run(mode.String(), func(b *testing.B) {
			benchWrites(b, mode, 1, 64<<10, NullBackend{})
		})
	}
}

// BenchmarkReadPath — sequential remote reads.
func BenchmarkReadPath(b *testing.B) {
	srv := NewServer(Config{Mode: ModeWorkQueue, Workers: 4})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	c, err := Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	f, err := c.Open(context.Background(), "r")
	if err != nil {
		b.Fatal(err)
	}
	const msg = 256 << 10
	if _, err := f.Write(make([]byte, msg)); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, msg)
	b.SetBytes(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}
