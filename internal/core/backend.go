package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Backend supplies the terminal I/O a forwarding server executes on behalf
// of its clients — the role the ION's local filesystem, GPFS mount, or
// analysis-node socket plays on the real machine.
type Backend interface {
	// Open opens (creating if create is set) the named object.
	Open(name string, create bool) (Handle, error)
}

// Handle is one open backend object.
type Handle interface {
	WriteAt(b []byte, off int64) (int, error)
	ReadAt(b []byte, off int64) (int, error)
	Sync() error
	Size() (int64, error)
	Close() error
}

// --- Memory backend ---

// MemBackend keeps objects in memory; it is the default for tests and for
// benchmarks that must not measure the local disk. The name map is guarded
// by an RWMutex so the hot path (opening an object that already exists)
// never serializes against other readers; each file carries its own lock,
// so traffic to different objects does not contend at all.
type MemBackend struct {
	mu    sync.RWMutex
	files map[string]*memFile
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{files: make(map[string]*memFile)}
}

// Open implements Backend.
func (m *MemBackend) Open(name string, create bool) (Handle, error) {
	m.mu.RLock()
	f, ok := m.files[name]
	m.mu.RUnlock()
	if ok {
		return f, nil
	}
	if !create {
		return nil, ENOENT
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return f, nil
	}
	f = &memFile{}
	m.files[name] = f
	return f, nil
}

// Bytes returns a copy of the named object's contents, for verification.
func (m *MemBackend) Bytes(name string) ([]byte, bool) {
	m.mu.RLock()
	f, ok := m.files[name]
	m.mu.RUnlock()
	if !ok {
		return nil, false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, true
}

type memFile struct {
	mu   sync.RWMutex
	data []byte
}

func (f *memFile) WriteAt(b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, EINVAL
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + int64(len(b))
	if end > int64(len(f.data)) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:end], b)
	return len(b), nil
}

func (f *memFile) ReadAt(b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, EINVAL
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off >= int64(len(f.data)) {
		return 0, nil
	}
	n := copy(b, f.data[off:])
	return n, nil
}

func (f *memFile) Sync() error { return nil }

func (f *memFile) Size() (int64, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data)), nil
}

func (f *memFile) Close() error { return nil }

// --- Null backend ---

// NullBackend discards writes and reads zeros — the /dev/null target of the
// paper's collective-network microbenchmark (Section III-A).
type NullBackend struct{}

// Open implements Backend.
func (NullBackend) Open(name string, create bool) (Handle, error) { return nullHandle{}, nil }

type nullHandle struct{}

func (nullHandle) WriteAt(b []byte, off int64) (int, error) { return len(b), nil }
func (nullHandle) ReadAt(b []byte, off int64) (int, error) {
	for i := range b {
		b[i] = 0
	}
	return len(b), nil
}
func (nullHandle) Sync() error          { return nil }
func (nullHandle) Size() (int64, error) { return 0, nil }
func (nullHandle) Close() error         { return nil }

// --- OS file backend ---

// FileBackend stores objects as files under a root directory.
type FileBackend struct {
	Root string
}

// NewFileBackend returns a backend rooted at dir.
func NewFileBackend(dir string) *FileBackend { return &FileBackend{Root: dir} }

// Open implements Backend. Paths are confined to the root.
func (b *FileBackend) Open(name string, create bool) (Handle, error) {
	clean := filepath.Clean("/" + name)
	full := filepath.Join(b.Root, clean)
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return nil, fmt.Errorf("core: mkdir for %q: %w", name, err)
		}
	}
	f, err := os.OpenFile(full, flags, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ENOENT
		}
		return nil, err
	}
	return osHandle{f}, nil
}

type osHandle struct{ f *os.File }

func (h osHandle) WriteAt(b []byte, off int64) (int, error) { return h.f.WriteAt(b, off) }
func (h osHandle) ReadAt(b []byte, off int64) (int, error) {
	n, err := h.f.ReadAt(b, off)
	if err != nil && n > 0 {
		err = nil // short read at EOF is fine for this protocol
	} else if err != nil && err.Error() == "EOF" {
		err = nil
	}
	return n, err
}
func (h osHandle) Sync() error { return h.f.Sync() }
func (h osHandle) Size() (int64, error) {
	st, err := h.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
func (h osHandle) Close() error { return h.f.Close() }

// --- Rate-limited sink backend ---

// SinkBackend wraps a Backend and throttles its data path to a fixed
// bandwidth, emulating the slow external sink (a shared 10 GbE link, a busy
// parallel filesystem) that makes overlap worth having. It is what lets the
// benchmarks reproduce the paper's crossovers on a development machine whose
// local I/O is far faster than its CPUs are relative to Intrepid's.
type SinkBackend struct {
	Inner Backend
	// BytesPerSec is the sustained bandwidth of the sink.
	BytesPerSec int64
	// PerOp is a fixed latency added to every operation.
	PerOp time.Duration

	mu    sync.Mutex
	avail time.Time // time at which the sink is next free
}

// NewSinkBackend wraps inner with a bandwidth throttle.
func NewSinkBackend(inner Backend, bytesPerSec int64, perOp time.Duration) *SinkBackend {
	return &SinkBackend{Inner: inner, BytesPerSec: bytesPerSec, PerOp: perOp}
}

// Open implements Backend.
func (s *SinkBackend) Open(name string, create bool) (Handle, error) {
	h, err := s.Inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &sinkHandle{b: s, inner: h}, nil
}

// wait blocks the caller for n bytes of sink time. The sink is a shared
// serial resource: concurrent operations queue, like streams sharing a
// link.
func (s *SinkBackend) wait(n int) {
	cost := s.PerOp
	if s.BytesPerSec > 0 {
		cost += time.Duration(float64(n) / float64(s.BytesPerSec) * float64(time.Second))
	}
	if cost <= 0 {
		return
	}
	s.mu.Lock()
	now := time.Now()
	start := s.avail
	if start.Before(now) {
		start = now
	}
	s.avail = start.Add(cost)
	ready := s.avail
	s.mu.Unlock()
	time.Sleep(time.Until(ready))
}

type sinkHandle struct {
	b     *SinkBackend
	inner Handle
}

func (h *sinkHandle) WriteAt(b []byte, off int64) (int, error) {
	h.b.wait(len(b))
	return h.inner.WriteAt(b, off)
}

func (h *sinkHandle) ReadAt(b []byte, off int64) (int, error) {
	h.b.wait(len(b))
	return h.inner.ReadAt(b, off)
}

func (h *sinkHandle) Sync() error          { return h.inner.Sync() }
func (h *sinkHandle) Size() (int64, error) { return h.inner.Size() }
func (h *sinkHandle) Close() error         { return h.inner.Close() }
