package core

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// startMetricsServer runs a server on a TCP loopback and returns it with a
// connected client.
func startMetricsServer(t *testing.T, mode Mode) (*Server, *Client) {
	t.Helper()
	srv := NewServer(Config{Mode: mode, Workers: 2, BMLBytes: 64 << 20})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	cl, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return srv, cl
}

// findOpCounter extracts one labeled series value from a registry snapshot.
func findOpCounter(t *testing.T, snaps []telemetry.FamilySnapshot, family, label, value string) int64 {
	t.Helper()
	f := telemetry.Find(snaps, family)
	if f == nil {
		t.Fatalf("family %s not in snapshot", family)
	}
	for _, s := range f.Series {
		if s.Labels[label] == value && s.Value != nil {
			return *s.Value
		}
	}
	t.Fatalf("series %s{%s=%q} not in snapshot", family, label, value)
	return 0
}

// TestMetricsMatchWorkload runs a known mixed workload and checks that the
// registry's counters agree with it exactly — the /metrics numbers must be
// trustworthy before anyone tunes from them.
func TestMetricsMatchWorkload(t *testing.T) {
	const (
		files     = 3
		writesPer = 5
		readsPer  = 2
		msg       = 8 << 10
	)
	srv, cl := startMetricsServer(t, ModeAsync)

	var wg sync.WaitGroup
	for i := 0; i < files; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := cl.Open(context.Background(), fmt.Sprintf("m/%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, msg)
			for w := 0; w < writesPer; w++ {
				if _, err := f.Write(buf); err != nil {
					t.Error(err)
					return
				}
			}
			if err := f.Sync(); err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < readsPer; r++ {
				if _, err := f.ReadAt(buf, 0); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := f.Stat(); err != nil {
				t.Error(err)
				return
			}
			if err := f.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	snaps := srv.Metrics().Snapshot()
	for _, tc := range []struct {
		op   string
		want int64
	}{
		{"open", files},
		{"write", files * writesPer},
		{"pread", files * readsPer},
		{"fsync", files},
		{"stat", files},
		{"close", files},
	} {
		if got := findOpCounter(t, snaps, "iofwd_requests_total", "op", tc.op); got != tc.want {
			t.Errorf("iofwd_requests_total{op=%q} = %d, want %d", tc.op, got, tc.want)
		}
	}

	st := srv.Stats()
	if want := uint64(files * writesPer * msg); st.BytesWritten != want {
		t.Errorf("BytesWritten = %d, want %d", st.BytesWritten, want)
	}
	if want := uint64(files * readsPer * msg); st.BytesRead != want {
		t.Errorf("BytesRead = %d, want %d", st.BytesRead, want)
	}
	if want := uint64(files * writesPer); st.StagedWrites != want {
		t.Errorf("StagedWrites = %d, want %d", st.StagedWrites, want)
	}
	if st.Conns != 1 {
		t.Errorf("Conns = %d, want 1", st.Conns)
	}

	// ServerStats and the registry must agree (one source of truth).
	var ops int64
	if f := telemetry.Find(snaps, "iofwd_requests_total"); f != nil {
		for _, s := range f.Series {
			if s.Value != nil {
				ops += *s.Value
			}
		}
	}
	if uint64(ops) != st.Ops {
		t.Errorf("registry ops %d != Stats().Ops %d", ops, st.Ops)
	}

	// Gauges must have returned to idle after the workload drained.
	if got := findOpCounter(t, snaps, "iofwd_inflight_staged_ops", "", ""); got != 0 {
		t.Errorf("inflight staged ops = %d after drain, want 0", got)
	}
	if got := findOpCounter(t, snaps, "iofwd_open_descriptors", "", ""); got != 0 {
		t.Errorf("open descriptors = %d after close, want 0", got)
	}
}

// TestMetricsStageHistograms checks the per-stage histograms observe the
// right number of events on the paper's stage boundaries.
func TestMetricsStageHistograms(t *testing.T) {
	const writes = 6
	srv, cl := startMetricsServer(t, ModeAsync)
	f, err := cl.Open(context.Background(), "stages")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4<<10)
	for i := 0; i < writes; i++ {
		if _, err := f.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	snaps := srv.Metrics().Snapshot()
	hf := telemetry.Find(snaps, "iofwd_stage_latency_ns")
	if hf == nil {
		t.Fatal("stage latency family missing")
	}
	got := map[string]uint64{}
	for _, s := range hf.Series {
		if s.Histogram != nil {
			got[s.Labels["stage"]] = s.Histogram.Count
		}
	}
	// Every staged write passes recv, queue, and backend exactly once.
	for _, stage := range []string{"recv", "queue", "backend"} {
		if got[stage] != writes {
			t.Errorf("stage %q count = %d, want %d", stage, got[stage], writes)
		}
	}
	// One reply per request: open + writes + fsync + close.
	if want := uint64(writes + 3); got["reply"] != want {
		t.Errorf("stage \"reply\" count = %d, want %d", got["reply"], want)
	}

	// Request latency histogram counts must match the op counters.
	lf := telemetry.Find(snaps, "iofwd_request_latency_ns")
	for _, s := range lf.Series {
		if s.Labels["op"] == "write" && s.Histogram.Count != writes {
			t.Errorf("write latency count = %d, want %d", s.Histogram.Count, writes)
		}
	}
}

// TestMetricsPrometheusEndToEnd asserts the wire format a scraper sees
// carries the series the acceptance criteria name.
func TestMetricsPrometheusEndToEnd(t *testing.T) {
	srv, cl := startMetricsServer(t, ModeWorkQueue)
	f, err := cl.Open(context.Background(), "prom")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 1<<10)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := srv.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`iofwd_requests_total{op="write"} 1`,
		`iofwd_requests_total{op="open"} 1`,
		`iofwd_request_latency_ns_count{op="write"} 1`,
		`iofwd_request_bytes_sum{op="write"} 1024`,
		"# TYPE iofwd_queue_depth gauge",
		"# TYPE iofwd_bml_used_bytes gauge",
		"iofwd_bml_capacity_bytes",
		"# TYPE iofwd_stage_latency_ns histogram",
		`iofwd_worker_batch_ops_count`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}
}
