package core

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchShedding measures acked write throughput from 8 clients × 8 writer
// goroutines against a fixed-capacity shedding service (capacityServer: 8
// concurrent service slots, 1ms per op regardless of size, EAGAIN the
// instant every slot is busy — the shed knee the window is designed to
// find). The real server cannot stand in here: its per-connection FIFO and
// BML admission are themselves back-pressure, so a handful of loopback
// clients never see the stampede a fleet of compute nodes produces.
//
// The fixed variant is the pre-window client: 64 writers hammer a service
// with 8 slots, ~7 of 8 arrivals shed, and every shed op sits in jittered
// exponential backoff — the offered load oscillates between stampede and
// silence, so service slots idle while writers sleep. The adaptive variant
// runs the AIMD window plus coalescing: each client converges onto its
// share of the 8 slots, probes the knee a few percent of the time, and the
// writes that park on the full window merge into frames that carry up to
// 16 ops' bytes through one slot. Every op must ack — a lost ack fails the
// benchmark — so the MB/s numbers are goodput, not attempts.
//
// Run with a fixed op count for comparable results:
//
//	go test -run '^$' -bench Shedding -benchtime 3000x ./internal/core/
func benchShedding(b *testing.B, adaptive bool) {
	const (
		clients    = 8
		writersPer = 8
		capacity   = 8
		service    = time.Millisecond
		msg        = 4096
	)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	fs := &capacityServer{l: l, slots: make(chan struct{}, capacity), service: service}
	go fs.run()

	ctx := context.Background()
	type cli struct {
		c    *Client
		f    *File
		next atomic.Int64 // per-client offset allocator: adjacency is per-fd
	}
	cls := make([]*cli, clients)
	for i := range cls {
		cfg := ClientConfig{MaxRetries: 1024, Seed: int64(i + 1)}
		if adaptive {
			cfg.Window = WindowConfig{Max: 32}
			cfg.Coalesce = CoalesceConfig{MaxBytes: 64 << 10, MaxOps: 16, Linger: 2 * time.Millisecond}
		}
		c, err := cfg.Dial(ctx, "tcp", l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		f, err := c.Open(ctx, "bench")
		if err != nil {
			b.Fatal(err)
		}
		cls[i] = &cli{c: c, f: f}
	}

	buf := make([]byte, msg)
	var budget atomic.Int64
	var lost atomic.Int64
	b.SetBytes(msg)
	b.ResetTimer()
	var wg sync.WaitGroup
	for _, cl := range cls {
		for w := 0; w < writersPer; w++ {
			wg.Add(1)
			go func(cl *cli) {
				defer wg.Done()
				for budget.Add(1) <= int64(b.N) {
					// Consecutive allocations on one client stay adjacent —
					// the log-append pattern coalescing exists for.
					off := (cl.next.Add(1) - 1) * msg
					if _, err := cl.f.WriteAt(buf, off); err != nil {
						lost.Add(1)
						b.Errorf("write: %v", err)
						return
					}
				}
			}(cl)
		}
	}
	wg.Wait()
	b.StopTimer()
	if lost.Load() != 0 {
		b.Fatalf("%d lost acks", lost.Load())
	}
	var retries, coalesced, decreases uint64
	for _, cl := range cls {
		s := cl.c.Stats()
		retries += s.Retries
		coalesced += s.CoalescedWrites
		decreases += s.CwndDecreases
	}
	b.ReportMetric(float64(retries)/float64(b.N), "sheds/op")
	if adaptive {
		b.ReportMetric(float64(coalesced)/float64(b.N), "merged/op")
		b.ReportMetric(float64(decreases), "decreases")
	}
}

func BenchmarkSheddingFixedBackoff(b *testing.B)   { benchShedding(b, false) }
func BenchmarkSheddingAdaptiveWindow(b *testing.B) { benchShedding(b, true) }
