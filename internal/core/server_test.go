package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
)

// pipePair wires a client to a server over an in-memory connection.
func pipePair(t *testing.T, cfg Config) (*Client, *Server) {
	t.Helper()
	s := NewServer(cfg)
	cc, sc := net.Pipe()
	go func() { _ = s.ServeConn(sc) }()
	c := NewClient(cc)
	t.Cleanup(func() {
		_ = c.Close()
		_ = s.Close()
	})
	return c, s
}

var allModes = []Mode{ModeDirect, ModeWorkQueue, ModeAsync}

func TestWriteReadRoundTripAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			c, _ := pipePair(t, Config{Mode: mode, Workers: 2})
			f, err := c.Open(context.Background(), "data/test.bin")
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte("forward!"), 1024)
			if n, err := f.Write(payload); err != nil || n != len(payload) {
				t.Fatalf("write: n=%d err=%v", n, err)
			}
			if n, err := f.Write(payload); err != nil || n != len(payload) {
				t.Fatalf("second write: n=%d err=%v", n, err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			size, err := f.Stat()
			if err != nil || size != int64(2*len(payload)) {
				t.Fatalf("stat: size=%d err=%v", size, err)
			}
			got := make([]byte, len(payload))
			if n, err := f.ReadAt(got, int64(len(payload))); err != nil || n != len(payload) {
				t.Fatalf("read: n=%d err=%v", n, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("read data mismatch")
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSequentialCursorSemantics(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			backend := NewMemBackend()
			c, _ := pipePair(t, Config{Mode: mode, Backend: backend, Workers: 3})
			f, err := c.Open(context.Background(), "seq")
			if err != nil {
				t.Fatal(err)
			}
			// Many small sequential writes must land contiguously in order
			// even when workers complete them out of order.
			var want bytes.Buffer
			for i := 0; i < 64; i++ {
				chunk := bytes.Repeat([]byte{byte(i)}, 100+i)
				want.Write(chunk)
				if _, err := f.Write(chunk); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			got, ok := backend.Bytes("seq")
			if !ok || !bytes.Equal(got, want.Bytes()) {
				t.Fatalf("sequential contents diverge (ok=%v, len %d vs %d)", ok, len(got), want.Len())
			}
			// Sequential reads walk the same cursor from zero on a fresh fd.
			f2, err := c.Open(context.Background(), "seq")
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 150)
			if _, err := f2.Read(buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf[:100], want.Bytes()[:100]) {
				t.Fatal("sequential read mismatch")
			}
			_ = f2.Close()
			_ = f.Close()
		})
	}
}

func TestAsyncDeferredErrorReporting(t *testing.T) {
	backend := &failingBackend{inner: NewMemBackend(), failAfter: 2}
	c, _ := pipePair(t, Config{Mode: ModeAsync, Backend: backend, Workers: 1})
	f, err := c.Open(context.Background(), "doomed")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4096)
	// First two writes succeed, third fails in the background.
	for i := 0; i < 3; i++ {
		if _, err := f.Write(payload); err != nil {
			t.Fatalf("write %d reported error synchronously: %v", i, err)
		}
	}
	// The failure must surface on a subsequent operation as DeferredError.
	if err := f.Sync(); err == nil {
		t.Fatal("fsync did not report the staged failure")
	} else {
		var de *DeferredError
		if !errors.As(err, &de) {
			t.Fatalf("error %v is not a DeferredError", err)
		}
	}
	// Once consumed, the error is cleared.
	if err := f.PollError(); err != nil {
		t.Fatalf("error not cleared: %v", err)
	}
	_ = f.Close()
}

func TestDeferredErrorOnNextWrite(t *testing.T) {
	backend := &failingBackend{inner: NewMemBackend(), failAfter: 0}
	c, _ := pipePair(t, Config{Mode: ModeAsync, Backend: backend, Workers: 1})
	f, err := c.Open(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 128)); err != nil {
		t.Fatalf("first staged write rejected: %v", err)
	}
	// Drain so the failure is recorded before the next write.
	_ = c.Flush(context.Background())
	_, err = f.Write(make([]byte, 128))
	var de *DeferredError
	if !errors.As(err, &de) {
		t.Fatalf("next write returned %v, want DeferredError", err)
	}
}

func TestCloseReportsDeferredError(t *testing.T) {
	backend := &failingBackend{inner: NewMemBackend(), failAfter: 0}
	c, _ := pipePair(t, Config{Mode: ModeAsync, Backend: backend, Workers: 1})
	f, err := c.Open(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	var de *DeferredError
	if err := f.Close(); !errors.As(err, &de) {
		t.Fatalf("close returned %v, want DeferredError", err)
	}
}

func TestBadDescriptor(t *testing.T) {
	c, _ := pipePair(t, Config{})
	f := &File{c: c, fd: 999}
	if _, err := f.Write([]byte("x")); !errors.Is(err, EBADF) {
		t.Fatalf("write on bad fd: %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 4), 0); !errors.Is(err, EBADF) {
		t.Fatalf("read on bad fd: %v", err)
	}
	if err := f.Close(); !errors.Is(err, EBADF) {
		t.Fatalf("close on bad fd: %v", err)
	}
}

func TestConcurrentClientsOverTCP(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			backend := NewMemBackend()
			s := NewServer(Config{Mode: mode, Backend: backend, Workers: 4})
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go func() { _ = s.Serve(l) }()
			defer s.Close()

			const clients, writes = 8, 20
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for i := 0; i < clients; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					errs <- func() error {
						c, err := Dial("tcp", l.Addr().String())
						if err != nil {
							return err
						}
						defer c.Close()
						f, err := c.Open(context.Background(), fmt.Sprintf("client%d", i))
						if err != nil {
							return err
						}
						chunk := bytes.Repeat([]byte{byte(i)}, 8192)
						for j := 0; j < writes; j++ {
							if _, err := f.Write(chunk); err != nil {
								return fmt.Errorf("write: %w", err)
							}
						}
						if err := f.Sync(); err != nil {
							return err
						}
						size, err := f.Stat()
						if err != nil {
							return err
						}
						if size != int64(writes*8192) {
							return fmt.Errorf("size %d, want %d", size, writes*8192)
						}
						return f.Close()
					}()
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < clients; i++ {
				data, ok := backend.Bytes(fmt.Sprintf("client%d", i))
				if !ok || len(data) != writes*8192 {
					t.Fatalf("client %d data missing or short: %d", i, len(data))
				}
				for _, b := range data {
					if b != byte(i) {
						t.Fatalf("client %d data corrupted", i)
					}
				}
			}
		})
	}
}

func TestServerTeardownDrainsStagedWrites(t *testing.T) {
	backend := NewMemBackend()
	s := NewServer(Config{Mode: ModeAsync, Backend: backend, Workers: 1})
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() { _ = s.ServeConn(sc); close(done) }()
	c := NewClient(cc)
	f, err := c.Open(context.Background(), "orphan")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64*1024)); err != nil {
		t.Fatal(err)
	}
	// Close the client abruptly without closing the file: the server must
	// still execute the staged write during teardown.
	_ = c.Close()
	<-done
	if data, ok := backend.Bytes("orphan"); !ok || len(data) != 64*1024 {
		t.Fatalf("staged write lost on teardown: %d bytes", len(data))
	}
	_ = s.Close()
}

func TestFlushDrainsAllDescriptors(t *testing.T) {
	backend := NewMemBackend()
	c, srv := pipePair(t, Config{Mode: ModeAsync, Backend: backend, Workers: 1})
	var files []*File
	for i := 0; i < 4; i++ {
		f, err := c.Open(context.Background(), fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(make([]byte, 32*1024)); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := range files {
		if data, ok := backend.Bytes(fmt.Sprintf("f%d", i)); !ok || len(data) != 32*1024 {
			t.Fatalf("file %d not flushed", i)
		}
	}
	if srv.Stats().StagedWrites != 4 {
		t.Fatalf("staged count %d", srv.Stats().StagedWrites)
	}
}

func TestStatsAccounting(t *testing.T) {
	c, srv := pipePair(t, Config{Mode: ModeWorkQueue, Workers: 2})
	f, _ := c.Open(context.Background(), "acct")
	payload := make([]byte, 10000)
	_, _ = f.Write(payload)
	buf := make([]byte, 4000)
	_, _ = f.ReadAt(buf, 0)
	_ = f.Close()
	st := srv.Stats()
	if st.BytesWritten != 10000 {
		t.Fatalf("bytes written %d", st.BytesWritten)
	}
	if st.BytesRead != 4000 {
		t.Fatalf("bytes read %d", st.BytesRead)
	}
	if st.Ops < 4 {
		t.Fatalf("ops %d", st.Ops)
	}
}

func TestOpenValidation(t *testing.T) {
	c, _ := pipePair(t, Config{})
	if _, err := c.Open(context.Background(), ""); !errors.Is(err, EINVAL) {
		t.Fatalf("empty name: %v", err)
	}
}

// failingBackend fails every write after the first failAfter successes.
type failingBackend struct {
	inner     Backend
	mu        sync.Mutex
	writes    int
	failAfter int
}

func (b *failingBackend) Open(name string, create bool) (Handle, error) {
	h, err := b.inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &failingHandle{b: b, inner: h}, nil
}

type failingHandle struct {
	b     *failingBackend
	inner Handle
}

func (h *failingHandle) WriteAt(p []byte, off int64) (int, error) {
	h.b.mu.Lock()
	h.b.writes++
	fail := h.b.writes > h.b.failAfter
	h.b.mu.Unlock()
	if fail {
		return 0, ENOSPC
	}
	return h.inner.WriteAt(p, off)
}

func (h *failingHandle) ReadAt(p []byte, off int64) (int, error) { return h.inner.ReadAt(p, off) }
func (h *failingHandle) Sync() error                             { return h.inner.Sync() }
func (h *failingHandle) Size() (int64, error)                    { return h.inner.Size() }
func (h *failingHandle) Close() error                            { return h.inner.Close() }
