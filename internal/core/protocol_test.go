package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	in := header{op: OpPwrite, flags: FlagStaged | FlagDeferredErr, reqID: 42, fd: 7, offset: 1 << 40, length: 123456, pathLen: 77}
	var b [headerSize]byte
	in.encode(&b)
	var out header
	if err := decodeHeader(&b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	prop := func(op uint8, flags uint16, reqID, fd, offset uint64, length uint32, pathLen uint16) bool {
		in := header{op: Op(op), flags: flags, reqID: reqID, fd: fd, offset: offset, length: length, pathLen: pathLen}
		var b [headerSize]byte
		in.encode(&b)
		var out header
		if err := decodeHeader(&b, &out); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	var b [headerSize]byte
	b[0] = 0xde
	var h header
	if err := decodeHeader(&b, &h); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	in := header{op: OpOpen}
	var b [headerSize]byte
	in.encode(&b)
	b[4] = 99
	var h header
	if err := decodeHeader(&b, &h); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestWriteFrameSegments(t *testing.T) {
	var buf bytes.Buffer
	h := header{op: OpOpen, reqID: 1, pathLen: 3, length: 5}
	if err := writeFrame(&buf, &h, []byte("abc"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != headerSize+3+5 {
		t.Fatalf("frame length %d", buf.Len())
	}
	var out header
	if err := readHeader(&buf, &out); err != nil {
		t.Fatal(err)
	}
	rest := buf.Bytes()
	if string(rest) != "abchello" {
		t.Fatalf("segments %q", rest)
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{OpOpen, OpClose, OpWrite, OpPwrite, OpRead, OpPread, OpFsync, OpStat, OpFlush, OpErrPoll}
	seen := map[string]bool{}
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate op string %q", s)
		}
		seen[s] = true
	}
	if Op(200).String() != "op(200)" {
		t.Fatalf("unknown op string %q", Op(200).String())
	}
}
