package core

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/telemetry"
)

// ClientConfig is the validated, context-aware configuration for a Client.
// It replaces the accreted With* option soup as the primary construction
// surface: build a config, Validate it (or let Dial/Client do it), and every
// tunable is a named field instead of a closure. The zero value reproduces
// the original non-resilient, non-adaptive client exactly.
//
//	cfg := core.ClientConfig{
//		Timeout:           2 * time.Second,
//		MaxRetries:        8,
//		ReconnectAttempts: 8,
//		Window:            core.WindowConfig{Max: 64},
//		Coalesce:          core.CoalesceConfig{MaxBytes: 1 << 20},
//	}
//	c, err := cfg.Dial(ctx, "tcp", addr)
//
// Migration from the deprecated options:
//
//	WithTimeout(d)        -> Timeout: d
//	WithRetry(n, b, m)    -> MaxRetries: n, RetryBase: b, RetryMax: m
//	WithReconnect(n)      -> ReconnectAttempts: n
//	WithRedial(f)         -> Redial: f
//	WithSeed(s)           -> Seed: s
//	WithMetrics(reg)      -> Metrics: reg
type ClientConfig struct {
	// Timeout bounds every operation end to end, including EAGAIN retries
	// and reconnect waits. It composes with the caller's context: the op
	// fails when either expires. 0 disables the per-op deadline.
	Timeout time.Duration

	// MaxRetries is how many times an EAGAIN-shed retryable operation is
	// reissued before the shed is surfaced to the caller.
	MaxRetries int
	// RetryBase and RetryMax shape the jittered exponential backoff between
	// EAGAIN retries and reconnect attempts (base doubling per attempt,
	// capped at RetryMax). Zero values take the defaults (5ms / 250ms).
	RetryBase time.Duration
	RetryMax  time.Duration

	// ReconnectAttempts enables transport failover: up to this many redial
	// attempts per outage, re-opening descriptors and replaying idempotent
	// in-flight operations. 0 disables failover.
	ReconnectAttempts int
	// Redial obtains a replacement connection after a transport failure.
	// Dial installs one to the original address automatically; Client (from
	// an established conn) needs an explicit Redial for failover to work.
	Redial func() (net.Conn, error)

	// Seed fixes the jitter RNG so chaos runs replay the same backoff
	// schedule. 0 takes the default seed 1.
	Seed int64

	// Metrics, when non-nil, registers the client's counters
	// (iofwd_retries_total, ...) and — with the window enabled — the
	// congestion metrics (iofwd_client_cwnd, iofwd_client_rtt_ns,
	// iofwd_cwnd_decreases_total, iofwd_coalesced_writes_total) on reg.
	Metrics *telemetry.Registry

	// Window configures the adaptive in-flight congestion window; the zero
	// value disables congestion control (legacy unbounded admission).
	Window WindowConfig

	// Coalesce configures client-side write coalescing; the zero value
	// disables it. Coalescing requires Window.Max > 0: merging keys off the
	// window being full.
	Coalesce CoalesceConfig
}

// WindowConfig tunes the AIMD in-flight window that gates operation
// admission. The window grows by one slot per clean RTT (slow start below
// ssthresh, then additive increase) and shrinks multiplicatively by Beta on
// a congestion signal — an EAGAIN shed or an op timeout — at most once per
// round trip, so one burst of sheds costs one decrease, not a collapse.
type WindowConfig struct {
	// Max is the window ceiling in concurrent in-flight operations.
	// 0 disables congestion control entirely.
	Max int
	// Initial is the starting window. 0 takes the default of 1 (slow start
	// reaches capacity within log2(capacity) round trips).
	Initial int
	// Beta is the multiplicative decrease factor in (0, 1). 0 takes the
	// default 0.5.
	Beta float64
}

// CoalesceConfig tunes client-side write coalescing: when the congestion
// window is full, adjacent same-descriptor positional writes are merged
// into one wire operation — the client-side half of the paper's §IV
// aggregation argument. Each merged frame occupies one window slot and one
// round trip; completion is split back onto the constituent writes on ack.
type CoalesceConfig struct {
	// MaxBytes caps a merged frame's payload. 0 disables coalescing;
	// values above MaxPayload are invalid.
	MaxBytes int
	// MaxOps caps how many writes merge into one frame. 0 takes the
	// default 16.
	MaxOps int
	// Linger is how long an open buffer waits for adjacent writes to pile
	// on before it is sealed and sent. 0 takes the default 500µs; it must
	// stay under a second — a linger is a pipeline pause, not a deadline.
	Linger time.Duration
}

// Defaults applied by normalized(); exported so callers and fwdbench can
// reference the same numbers.
const (
	DefaultRetryBase      = 5 * time.Millisecond
	DefaultRetryMax       = 250 * time.Millisecond
	DefaultWindowBeta     = 0.5
	DefaultCoalesceOps    = 16
	DefaultCoalesceLinger = 500 * time.Microsecond
	// DefaultCoalesceBytes is a reasonable merged-frame cap for callers
	// that want coalescing without picking a number (fwdbench -coalesce).
	DefaultCoalesceBytes = 1 << 20
)

// Validate checks the configuration and returns an EINVAL-wrapped error
// describing the first problem found. Dial and Client call it; callers
// constructing configs from external input should call it directly for
// early, classifiable failures.
func (cfg *ClientConfig) Validate() error {
	if cfg.Timeout < 0 {
		return fmt.Errorf("%w: ClientConfig.Timeout %v is negative", EINVAL, cfg.Timeout)
	}
	if cfg.MaxRetries < 0 {
		return fmt.Errorf("%w: ClientConfig.MaxRetries %d is negative", EINVAL, cfg.MaxRetries)
	}
	if cfg.RetryBase < 0 || cfg.RetryMax < 0 {
		return fmt.Errorf("%w: ClientConfig retry backoff (%v, %v) is negative", EINVAL, cfg.RetryBase, cfg.RetryMax)
	}
	if cfg.RetryBase > 0 && cfg.RetryMax > 0 && cfg.RetryMax < cfg.RetryBase {
		return fmt.Errorf("%w: ClientConfig.RetryMax %v is below RetryBase %v", EINVAL, cfg.RetryMax, cfg.RetryBase)
	}
	if cfg.ReconnectAttempts < 0 {
		return fmt.Errorf("%w: ClientConfig.ReconnectAttempts %d is negative", EINVAL, cfg.ReconnectAttempts)
	}
	if cfg.Window.Max < 0 {
		return fmt.Errorf("%w: WindowConfig.Max %d is negative", EINVAL, cfg.Window.Max)
	}
	if cfg.Window.Initial < 0 {
		return fmt.Errorf("%w: WindowConfig.Initial %d is negative", EINVAL, cfg.Window.Initial)
	}
	if cfg.Window.Initial > cfg.Window.Max {
		return fmt.Errorf("%w: WindowConfig.Initial %d exceeds Max %d", EINVAL, cfg.Window.Initial, cfg.Window.Max)
	}
	if cfg.Window.Beta != 0 && (cfg.Window.Beta <= 0 || cfg.Window.Beta >= 1) {
		return fmt.Errorf("%w: WindowConfig.Beta %v is outside (0, 1)", EINVAL, cfg.Window.Beta)
	}
	if cfg.Coalesce.MaxBytes < 0 {
		return fmt.Errorf("%w: CoalesceConfig.MaxBytes %d is negative", EINVAL, cfg.Coalesce.MaxBytes)
	}
	if cfg.Coalesce.MaxBytes > MaxPayload {
		return fmt.Errorf("%w: CoalesceConfig.MaxBytes %d exceeds MaxPayload %d", EINVAL, cfg.Coalesce.MaxBytes, MaxPayload)
	}
	if cfg.Coalesce.MaxBytes > 0 && cfg.Window.Max == 0 {
		return fmt.Errorf("%w: CoalesceConfig.MaxBytes set without WindowConfig.Max; coalescing keys off the congestion window being full", EINVAL)
	}
	if cfg.Coalesce.MaxOps < 0 {
		return fmt.Errorf("%w: CoalesceConfig.MaxOps %d is negative", EINVAL, cfg.Coalesce.MaxOps)
	}
	if cfg.Coalesce.Linger < 0 || cfg.Coalesce.Linger >= time.Second {
		return fmt.Errorf("%w: CoalesceConfig.Linger %v is outside [0, 1s)", EINVAL, cfg.Coalesce.Linger)
	}
	return nil
}

// normalized returns a copy with defaults applied. Validation has already
// accepted the config (or the legacy option path deliberately skipped it).
func (cfg ClientConfig) normalized() ClientConfig {
	if cfg.RetryBase == 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Redial != nil && cfg.ReconnectAttempts <= 0 {
		cfg.ReconnectAttempts = 8
	}
	if cfg.Window.Max > 0 {
		if cfg.Window.Initial == 0 {
			cfg.Window.Initial = 1
		}
		if cfg.Window.Beta == 0 {
			cfg.Window.Beta = DefaultWindowBeta
		}
	}
	if cfg.Coalesce.MaxBytes > 0 {
		if cfg.Coalesce.MaxOps == 0 {
			cfg.Coalesce.MaxOps = DefaultCoalesceOps
		}
		if cfg.Coalesce.Linger == 0 {
			cfg.Coalesce.Linger = DefaultCoalesceLinger
		}
	}
	return cfg
}

// Dial validates the config, connects to a forwarding server (honoring
// ctx for the dial itself), and returns the configured Client. When
// ReconnectAttempts > 0 and no Redial is supplied, a redialer to the same
// address is installed automatically.
func (cfg ClientConfig) Dial(ctx context.Context, network, addr string) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var d net.Dialer
	nc, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	if cfg.ReconnectAttempts > 0 && cfg.Redial == nil {
		cfg.Redial = func() (net.Conn, error) {
			return net.Dial(network, addr)
		}
	}
	return cfg.newClient(nc), nil
}

// Client validates the config and wraps an established connection (TCP,
// Unix socket, or one end of a net.Pipe).
func (cfg ClientConfig) Client(nc net.Conn) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg.newClient(nc), nil
}

// Option configures a Client through the legacy functional-option surface.
//
// Deprecated: build a ClientConfig instead; every option is a thin wrapper
// over one of its fields.
type Option func(*ClientConfig)

// WithTimeout bounds every operation: a call that has not completed within d
// fails with an error wrapping ErrOpTimeout. The deadline covers EAGAIN
// retries and reconnect waits.
//
// Deprecated: set ClientConfig.Timeout.
func WithTimeout(d time.Duration) Option {
	return func(o *ClientConfig) { o.Timeout = d }
}

// WithRetry lets the client retry operations the server shed with EAGAIN up
// to max times, sleeping an exponentially growing, jittered delay between
// attempts (base doubling per attempt, capped at maxDelay).
//
// Deprecated: set ClientConfig.MaxRetries / RetryBase / RetryMax.
func WithRetry(max int, base, maxDelay time.Duration) Option {
	return func(o *ClientConfig) {
		o.MaxRetries = max
		if base > 0 {
			o.RetryBase = base
		}
		if maxDelay > 0 {
			o.RetryMax = maxDelay
		}
	}
}

// WithReconnect enables transport failover with up to attempts redial
// attempts per outage.
//
// Deprecated: set ClientConfig.ReconnectAttempts.
func WithReconnect(attempts int) Option {
	return func(o *ClientConfig) { o.ReconnectAttempts = attempts }
}

// WithRedial supplies the function used to obtain a replacement connection
// after a transport failure (and enables reconnection if WithReconnect was
// not given).
//
// Deprecated: set ClientConfig.Redial.
func WithRedial(f func() (net.Conn, error)) Option {
	return func(o *ClientConfig) { o.Redial = f }
}

// WithSeed fixes the jitter RNG so chaos tests get a reproducible backoff
// schedule.
//
// Deprecated: set ClientConfig.Seed.
func WithSeed(seed int64) Option {
	return func(o *ClientConfig) { o.Seed = seed }
}

// WithMetrics registers the client's fault counters (iofwd_retries_total,
// iofwd_timeouts_total, iofwd_reconnects_total, ...) on reg.
//
// Deprecated: set ClientConfig.Metrics.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(o *ClientConfig) { o.Metrics = reg }
}

// Dial connects to a forwarding server using the legacy option surface.
// When WithReconnect is given, a redialer to the same address is installed
// automatically (unless WithRedial overrides it).
//
// Deprecated: use ClientConfig.Dial, which takes a context and a validated
// config.
func Dial(network, addr string, opts ...Option) (*Client, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	var cfg ClientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.ReconnectAttempts > 0 && cfg.Redial == nil {
		cfg.Redial = func() (net.Conn, error) {
			return net.Dial(network, addr)
		}
	}
	return cfg.newClient(nc), nil
}

// NewClient wraps an established connection using the legacy option
// surface. Unlike ClientConfig.Client it performs no validation, exactly
// as the original option path did.
//
// Deprecated: use ClientConfig.Client.
func NewClient(nc net.Conn, opts ...Option) *Client {
	var cfg ClientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg.newClient(nc)
}
