package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGarbageInputRejected feeds random bytes to a server connection: the
// handler must reject the stream with an error, never panic or hang.
func TestGarbageInputRejected(t *testing.T) {
	srv := NewServer(Config{Mode: ModeAsync, Workers: 1})
	defer srv.Close()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 32; trial++ {
		cc, sc := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- srv.ServeConn(sc) }()
		junk := make([]byte, 8+rng.Intn(256))
		rng.Read(junk)
		_ = cc.SetWriteDeadline(time.Now().Add(time.Second))
		_, _ = cc.Write(junk)
		_ = cc.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("trial %d: server hung on garbage input", trial)
		}
	}
}

// TestTruncatedFrame: a header promising more payload than arrives must
// terminate the connection cleanly and still drain prior staged work.
func TestTruncatedFrame(t *testing.T) {
	backend := NewMemBackend()
	srv := NewServer(Config{Mode: ModeAsync, Workers: 1, Backend: backend})
	defer srv.Close()
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() { _ = srv.ServeConn(sc); close(done) }()

	c := NewClient(cc)
	f, err := c.Open(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	// Handcraft a write header announcing 1 MiB, then send only 10 bytes
	// and slam the connection.
	h := header{op: OpWrite, reqID: 99, fd: f.fd, length: 1 << 20}
	var hb [headerSize]byte
	h.encode(&hb)
	_, _ = cc.Write(hb[:])
	_, _ = cc.Write(make([]byte, 10))
	_ = cc.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server hung on truncated frame")
	}
	// The earlier staged write must have been executed during teardown.
	if data, ok := backend.Bytes("t"); !ok || len(data) != 8192 {
		t.Fatalf("staged write lost: %d bytes", len(data))
	}
}

// TestClientFailsPendingCallsOnDisconnect: when the server side vanishes,
// every in-flight and subsequent call errors out instead of hanging.
func TestClientFailsPendingCallsOnDisconnect(t *testing.T) {
	cc, sc := net.Pipe()
	c := NewClient(cc)
	errs := make(chan error, 1)
	go func() {
		_, err := c.Open(context.Background(), "x")
		errs <- err
	}()
	// Consume the request so the client is parked waiting for the reply,
	// then kill the connection.
	var hb [headerSize]byte
	if _, err := io.ReadFull(sc, hb[:]); err != nil {
		t.Fatal(err)
	}
	_ = sc.Close()
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("open succeeded on dead connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call hung")
	}
	if _, err := c.Open(context.Background(), "y"); err == nil {
		t.Fatal("later call succeeded on dead connection")
	}
}

// TestOversizedWriteRejectedClientSide: payloads above MaxPayload never hit
// the wire.
func TestOversizedWriteRejectedClientSide(t *testing.T) {
	cc, _ := net.Pipe()
	c := NewClient(cc)
	defer c.Close()
	f := &File{c: c, fd: 3}
	if _, err := f.Write(make([]byte, MaxPayload+1)); !errors.Is(err, EINVAL) {
		t.Fatalf("oversized write: %v", err)
	}
}

// TestShutdownRaceReturnsECLOSED: a connection racing server shutdown must
// get a clean ECLOSED error from the closed task queue, never a process
// panic (regression test for the old `put on closed task queue` panic).
func TestShutdownRaceReturnsECLOSED(t *testing.T) {
	srv := NewServer(Config{Mode: ModeWorkQueue, Workers: 2})
	cc, sc := net.Pipe()
	go func() { _ = srv.ServeConn(sc) }()
	c := NewClient(cc)
	defer c.Close()
	f, err := c.Open(context.Background(), "race")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := f.WriteAt(buf, 0); err != nil {
				errCh <- err
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ECLOSED) {
			t.Fatalf("want ECLOSED after shutdown, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer hung across server shutdown")
	}
	if got := srv.metrics.queueRejects.Value(); got == 0 {
		t.Fatal("queue reject not counted")
	}
}

// TestClientErrorsAreTyped: failures must wrap the typed roots so callers
// can classify them with errors.Is.
func TestClientErrorsAreTyped(t *testing.T) {
	// Transport failure -> ErrConnectionLost, carrying the cause.
	cc, sc := net.Pipe()
	c := NewClient(cc)
	_ = sc.Close()
	if _, err := c.Open(context.Background(), "x"); !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("after transport failure: want ErrConnectionLost wrap, got %v", err)
	}
	// ...and it is sticky for later calls.
	if _, err := c.Open(context.Background(), "y"); !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("subsequent call: want ErrConnectionLost wrap, got %v", err)
	}

	// Local Close -> ErrClientClosed.
	cc2, _ := net.Pipe()
	c2 := NewClient(cc2)
	_ = c2.Close()
	if _, err := c2.Open(context.Background(), "z"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("after Close: want ErrClientClosed wrap, got %v", err)
	}
}

// TestOpDeadline: a server that goes silent must not hang a client with
// WithTimeout; the error wraps ErrOpTimeout.
func TestOpDeadline(t *testing.T) {
	cc, sc := net.Pipe()
	c := NewClient(cc, WithTimeout(100*time.Millisecond))
	defer c.Close()
	go func() {
		var h header
		if err := readHeader(sc, &h); err != nil {
			return
		}
		_, _ = io.CopyN(io.Discard, sc, int64(h.pathLen))
		// Read the request, then never reply.
	}()
	start := time.Now()
	_, err := c.Open(context.Background(), "silent")
	if !errors.Is(err, ErrOpTimeout) {
		t.Fatalf("want ErrOpTimeout wrap, got %v", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("deadline did not bound the call")
	}
	if _, timeouts, _, _, _ := c.Metrics(); timeouts == 0 {
		t.Fatal("timeout not counted")
	}
}

// slowHandle delays every write so the work queue backs up on demand.
type slowBackend struct {
	inner Backend
	delay time.Duration
}

func (b *slowBackend) Open(name string, create bool) (Handle, error) {
	h, err := b.inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &slowHandle{inner: h, delay: b.delay}, nil
}

type slowHandle struct {
	inner Handle
	delay time.Duration
}

func (h *slowHandle) WriteAt(b []byte, off int64) (int, error) {
	time.Sleep(h.delay)
	return h.inner.WriteAt(b, off)
}
func (h *slowHandle) ReadAt(b []byte, off int64) (int, error) { return h.inner.ReadAt(b, off) }
func (h *slowHandle) Sync() error                             { return h.inner.Sync() }
func (h *slowHandle) Size() (int64, error)                    { return h.inner.Size() }
func (h *slowHandle) Close() error                            { return h.inner.Close() }

// TestOverloadShedAndRetry: past the queue high-water mark the server must
// refuse data ops with EAGAIN instead of queueing unboundedly, and a client
// with WithRetry must absorb the sheds transparently.
func TestOverloadShedAndRetry(t *testing.T) {
	// ModeAsync acks staged writes immediately, so a single connection can
	// flood the queue faster than the slow worker drains it.
	srv := NewServer(Config{
		Mode: ModeAsync, Workers: 1, Batch: 1, QueueHighWater: 4,
		Backend: &slowBackend{inner: NewMemBackend(), delay: 2 * time.Millisecond},
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	// Without retries: hammering concurrently must surface EAGAIN.
	c, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Open(context.Background(), "shed")
	if err != nil {
		t.Fatal(err)
	}
	var sheds atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := 0; i < 10; i++ {
				_, err := f.WriteAt(buf, 0)
				if errors.Is(err, EAGAIN) {
					sheds.Add(1)
				} else if err != nil {
					t.Errorf("unexpected error: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	_ = c.Close()
	if sheds.Load() == 0 || srv.Stats().Shed == 0 {
		t.Fatalf("no sheds observed (client %d, server %d)", sheds.Load(), srv.Stats().Shed)
	}

	// With retries: every op must eventually succeed.
	cr, err := Dial("tcp", l.Addr().String(),
		WithRetry(50, time.Millisecond, 20*time.Millisecond), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer cr.Close()
	fr, err := cr.Open(context.Background(), "shed")
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := 0; i < 10; i++ {
				if _, err := fr.WriteAt(buf, 0); err != nil {
					t.Errorf("retrying client saw error: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if retries, _, _, _, _ := cr.Metrics(); retries == 0 {
		t.Log("note: no retries needed (queue drained fast); shed path still covered above")
	}
}

// panicNthBackend panics on the Nth data operation, once.
type panicNthBackend struct {
	inner Backend
	n     int64
	ops   atomic.Int64
}

func (b *panicNthBackend) Open(name string, create bool) (Handle, error) {
	h, err := b.inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &panicNthHandle{b: b, inner: h}, nil
}

type panicNthHandle struct {
	b     *panicNthBackend
	inner Handle
}

func (h *panicNthHandle) WriteAt(p []byte, off int64) (int, error) {
	if h.b.ops.Add(1) == h.b.n {
		panic("injected backend panic")
	}
	return h.inner.WriteAt(p, off)
}
func (h *panicNthHandle) ReadAt(p []byte, off int64) (int, error) { return h.inner.ReadAt(p, off) }
func (h *panicNthHandle) Sync() error                             { return h.inner.Sync() }
func (h *panicNthHandle) Size() (int64, error)                    { return h.inner.Size() }
func (h *panicNthHandle) Close() error                            { return h.inner.Close() }

// TestWorkerPanicRecovery: a panicking backend task must fail exactly that
// op with EIO while the pool keeps serving.
func TestWorkerPanicRecovery(t *testing.T) {
	srv := NewServer(Config{
		Mode: ModeWorkQueue, Workers: 2,
		Backend: &panicNthBackend{inner: NewMemBackend(), n: 2},
	})
	cc, sc := net.Pipe()
	go func() { _ = srv.ServeConn(sc) }()
	c := NewClient(cc)
	defer c.Close()
	f, err := c.Open(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if _, err := f.WriteAt(buf, 1024); !errors.Is(err, EIO) {
		t.Fatalf("op 2: want EIO from recovered panic, got %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := f.WriteAt(buf, int64(2+i)*1024); err != nil {
			t.Fatalf("op %d after panic: %v", 3+i, err)
		}
	}
	if got := srv.Stats().WorkerPanics; got != 1 {
		t.Fatalf("worker panics counted: %d", got)
	}
}

// gateBackend blocks the first write until released, pinning a staging
// buffer to provoke BML exhaustion.
type gateBackend struct {
	inner   Backend
	release chan struct{}
	first   atomic.Bool
}

func (b *gateBackend) Open(name string, create bool) (Handle, error) {
	h, err := b.inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &gateHandle{b: b, inner: h}, nil
}

type gateHandle struct {
	b     *gateBackend
	inner Handle
}

func (h *gateHandle) WriteAt(p []byte, off int64) (int, error) {
	if h.b.first.CompareAndSwap(false, true) {
		<-h.b.release
	}
	return h.inner.WriteAt(p, off)
}
func (h *gateHandle) ReadAt(p []byte, off int64) (int, error) { return h.inner.ReadAt(p, off) }
func (h *gateHandle) Sync() error                             { return h.inner.Sync() }
func (h *gateHandle) Size() (int64, error)                    { return h.inner.Size() }
func (h *gateHandle) Close() error                            { return h.inner.Close() }

// TestBMLTimeoutDegradesToSync: when staging memory is exhausted and
// BMLTimeout elapses, a write must degrade to the synchronous path instead
// of blocking forever, and data must still land correctly.
func TestBMLTimeoutDegradesToSync(t *testing.T) {
	mem := NewMemBackend()
	gate := &gateBackend{inner: mem, release: make(chan struct{})}
	srv := NewServer(Config{
		Mode: ModeAsync, Workers: 1, BMLBytes: 4096, BMLTimeout: 25 * time.Millisecond,
		Backend: gate,
	})
	defer srv.Close()
	cc, sc := net.Pipe()
	go func() { _ = srv.ServeConn(sc) }()
	c := NewClient(cc)
	defer c.Close()
	f, err := c.Open(context.Background(), "d")
	if err != nil {
		t.Fatal(err)
	}
	w1 := bytes.Repeat([]byte{1}, 4096)
	w2 := bytes.Repeat([]byte{2}, 4096)
	if _, err := f.Write(w1); err != nil {
		t.Fatal(err) // staged; worker now blocks holding the only buffer
	}
	done := make(chan error, 1)
	go func() {
		_, err := f.Write(w2)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("degraded write: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write blocked on BML exhaustion despite BMLTimeout")
	}
	if got := srv.Stats().Degraded; got != 1 {
		t.Fatalf("degraded writes counted: %d", got)
	}
	close(gate.release)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	data, ok := mem.Bytes("d")
	if !ok || len(data) != 8192 {
		t.Fatalf("want 8192 bytes, got %d", len(data))
	}
	if !bytes.Equal(data[:4096], w1) || !bytes.Equal(data[4096:], w2) {
		t.Fatal("degraded path corrupted data")
	}
}

// blockingWriteBackend delays writes so ops can be caught in flight.
type blockingWriteBackend struct {
	inner Backend
	delay time.Duration
}

func (b *blockingWriteBackend) Open(name string, create bool) (Handle, error) {
	h, err := b.inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &slowHandle{inner: h, delay: b.delay}, nil
}

// TestReconnectReplaysIdempotentOps: with failover enabled, a connection
// drop mid-op must be absorbed — the in-flight positional write is replayed
// on a fresh connection and the caller never sees an error.
func TestReconnectReplaysIdempotentOps(t *testing.T) {
	mem := NewMemBackend()
	srv := NewServer(Config{
		Mode: ModeWorkQueue, Workers: 2,
		Backend: &blockingWriteBackend{inner: mem, delay: 150 * time.Millisecond},
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	c, err := Dial("tcp", l.Addr().String(),
		WithReconnect(8), WithSeed(3), WithTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Open(context.Background(), "replay")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 4096)
	done := make(chan error, 1)
	go func() {
		_, err := f.WriteAt(payload, 0) // in flight ~150ms
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	c.DropConnection()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("idempotent in-flight op not replayed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("replayed op hung")
	}
	// The client works after failover, on the re-opened descriptor.
	if _, err := f.WriteAt(payload, 4096); err != nil {
		t.Fatalf("op after reconnect: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after reconnect: %v", err)
	}
	_, _, reconnects, replays, _ := c.Metrics()
	if reconnects == 0 || replays == 0 {
		t.Fatalf("reconnects=%d replays=%d, want both > 0", reconnects, replays)
	}
	data, _ := mem.Bytes("replay")
	if len(data) != 8192 || !bytes.Equal(data[:4096], payload) || !bytes.Equal(data[4096:], payload) {
		t.Fatalf("data corrupted across reconnect (%d bytes)", len(data))
	}
}

// TestReconnectFailsNonIdempotentFast: a cursor write caught in flight by a
// connection drop must fail with ErrConnectionLost, not be replayed (the
// server-side cursor does not survive failover).
func TestReconnectFailsNonIdempotentFast(t *testing.T) {
	srv := NewServer(Config{
		Mode: ModeWorkQueue, Workers: 2,
		Backend: &blockingWriteBackend{inner: NewMemBackend(), delay: 150 * time.Millisecond},
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	c, err := Dial("tcp", l.Addr().String(),
		WithReconnect(8), WithSeed(5), WithTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Open(context.Background(), "cursor")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := f.Write(make([]byte, 4096)) // cursor op: non-idempotent
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	c.DropConnection()
	select {
	case err := <-done:
		if !errors.Is(err, ErrConnectionLost) {
			t.Fatalf("want ErrConnectionLost for in-flight cursor write, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("non-idempotent op hung instead of failing fast")
	}
	// After failover completes, new ops succeed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := f.WriteAt(make([]byte, 512), 0); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("client unusable after failover: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWorkerPoolSurvivesManyConnections cycles connections rapidly to
// shake out leaks in teardown bookkeeping.
func TestWorkerPoolSurvivesManyConnections(t *testing.T) {
	srv := NewServer(Config{Mode: ModeAsync, Workers: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	for i := 0; i < 50; i++ {
		c, err := Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		f, err := c.Open(context.Background(), "churn")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
		_ = c.Close() // abrupt: leaves the fd open, teardown must cope
	}
	// The pool still works afterwards.
	c, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Open(context.Background(), "after")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
