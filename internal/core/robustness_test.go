package core

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"
)

// TestGarbageInputRejected feeds random bytes to a server connection: the
// handler must reject the stream with an error, never panic or hang.
func TestGarbageInputRejected(t *testing.T) {
	srv := NewServer(Config{Mode: ModeAsync, Workers: 1})
	defer srv.Close()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 32; trial++ {
		cc, sc := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- srv.ServeConn(sc) }()
		junk := make([]byte, 8+rng.Intn(256))
		rng.Read(junk)
		_ = cc.SetWriteDeadline(time.Now().Add(time.Second))
		_, _ = cc.Write(junk)
		_ = cc.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("trial %d: server hung on garbage input", trial)
		}
	}
}

// TestTruncatedFrame: a header promising more payload than arrives must
// terminate the connection cleanly and still drain prior staged work.
func TestTruncatedFrame(t *testing.T) {
	backend := NewMemBackend()
	srv := NewServer(Config{Mode: ModeAsync, Workers: 1, Backend: backend})
	defer srv.Close()
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() { _ = srv.ServeConn(sc); close(done) }()

	c := NewClient(cc)
	f, err := c.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	// Handcraft a write header announcing 1 MiB, then send only 10 bytes
	// and slam the connection.
	h := header{op: OpWrite, reqID: 99, fd: f.fd, length: 1 << 20}
	var hb [headerSize]byte
	h.encode(&hb)
	_, _ = cc.Write(hb[:])
	_, _ = cc.Write(make([]byte, 10))
	_ = cc.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server hung on truncated frame")
	}
	// The earlier staged write must have been executed during teardown.
	if data, ok := backend.Bytes("t"); !ok || len(data) != 8192 {
		t.Fatalf("staged write lost: %d bytes", len(data))
	}
}

// TestClientFailsPendingCallsOnDisconnect: when the server side vanishes,
// every in-flight and subsequent call errors out instead of hanging.
func TestClientFailsPendingCallsOnDisconnect(t *testing.T) {
	cc, sc := net.Pipe()
	c := NewClient(cc)
	errs := make(chan error, 1)
	go func() {
		_, err := c.Open("x")
		errs <- err
	}()
	// Consume the request so the client is parked waiting for the reply,
	// then kill the connection.
	var hb [headerSize]byte
	if _, err := io.ReadFull(sc, hb[:]); err != nil {
		t.Fatal(err)
	}
	_ = sc.Close()
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("open succeeded on dead connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call hung")
	}
	if _, err := c.Open("y"); err == nil {
		t.Fatal("later call succeeded on dead connection")
	}
}

// TestOversizedWriteRejectedClientSide: payloads above MaxPayload never hit
// the wire.
func TestOversizedWriteRejectedClientSide(t *testing.T) {
	cc, _ := net.Pipe()
	c := NewClient(cc)
	defer c.Close()
	f := &File{c: c, fd: 3}
	if _, err := f.Write(make([]byte, MaxPayload+1)); !errors.Is(err, EINVAL) {
		t.Fatalf("oversized write: %v", err)
	}
}

// TestWorkerPoolSurvivesManyConnections cycles connections rapidly to
// shake out leaks in teardown bookkeeping.
func TestWorkerPoolSurvivesManyConnections(t *testing.T) {
	srv := NewServer(Config{Mode: ModeAsync, Workers: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	for i := 0; i < 50; i++ {
		c, err := Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		f, err := c.Open("churn")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
		_ = c.Close() // abrupt: leaves the fd open, teardown must cope
	}
	// The pool still works afterwards.
	c, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Open("after")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
