package core

import (
	"testing"

	"repro/internal/telemetry"
)

// TestRegisteredMetricNamesValidate holds every metric the forwarding stack
// registers — server families and client fault counters — to the naming
// convention the metricname analyzer enforces on literals: iofwd_ snake_case,
// _total counters, unit-suffixed histograms. Names built dynamically would
// slip past the analyzer; this closes that gap at runtime.
func TestRegisteredMetricNamesValidate(t *testing.T) {
	reg := telemetry.NewRegistry()

	s := NewServer(Config{Mode: ModeAsync, Metrics: reg})
	defer s.Close()

	var cm clientMetrics
	cm.register(reg)

	fams := reg.Snapshot()
	if len(fams) == 0 {
		t.Fatal("no metric families registered")
	}
	for _, f := range fams {
		kind, ok := telemetry.KindFromString(f.Kind)
		if !ok {
			t.Errorf("metric %q has unknown kind %q", f.Name, f.Kind)
			continue
		}
		if err := telemetry.ValidateName(f.Name, kind); err != nil {
			t.Errorf("registered metric fails naming convention: %v", err)
		}
	}
}
