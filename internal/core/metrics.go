package core

import (
	"strconv"

	"repro/internal/telemetry"
)

// The server's telemetry mirrors the paper's measurement methodology: the
// forwarding path is cut at the stage boundaries of Figures 4-6 and each
// stage is observed separately, so the bottleneck (ION contention in the
// paper) is visible from a running server instead of requiring offline
// experiments.
//
// Stage boundaries (metric label "stage"):
//
//	recv     — CN→ION transfer: header decoded until the payload is fully
//	           received into a staging buffer (includes BML admission wait,
//	           the paper's staging back-pressure)
//	queue    — work-queue wait: task enqueued until a worker starts it
//	backend  — terminal I/O service time at the backend (GPFS / DA role)
//	reply    — response frame written back toward the CN
//
// Naming scheme: iofwd_<subsystem>_<name>_<unit>; latencies are raw
// nanoseconds, sizes are bytes. Per-operation families are labeled with
// op="open|close|write|...".

// opCount sizes the per-op metric arrays; index 0 collects unknown ops.
const opCount = int(OpErrPoll) + 1

// opIndex maps an operation to its metric slot.
func opIndex(op Op) int {
	if op >= OpOpen && int(op) < opCount {
		return int(op)
	}
	return 0
}

// serverMetrics holds every instrument the server touches on the hot path,
// pre-resolved at construction so request handling never does a registry
// (map) lookup.
type serverMetrics struct {
	reg *telemetry.Registry

	// Per-op families, indexed by opIndex.
	requests   [opCount]*telemetry.Counter
	reqLatency [opCount]*telemetry.Histogram

	// Payload-size distributions.
	writeBytes *telemetry.Histogram
	readBytes  *telemetry.Histogram

	// Stage latency histograms (see the stage table above).
	stageRecv    *telemetry.Histogram
	stageQueue   *telemetry.Histogram
	stageBackend *telemetry.Histogram
	stageReply   *telemetry.Histogram
	stageSpill   *telemetry.Histogram

	// Scheduler behaviour.
	batchSize *telemetry.Histogram
	batches   *telemetry.Counter

	// Zero-copy reply frames written (reads whose payload left in a single
	// BML-leased frame write).
	zeroCopyReplies *telemetry.Counter

	// Cumulative counters (the ServerStats source of truth).
	bytesWritten *telemetry.Counter
	bytesRead    *telemetry.Counter
	staged       *telemetry.Counter
	conns        *telemetry.Counter
	replyErrors  *telemetry.Counter

	// Descriptor-database state.
	activeConns    *telemetry.Gauge
	openDescs      *telemetry.Gauge
	inflightStaged *telemetry.Gauge
	deferredErrors *telemetry.Counter

	// Failure paths (the fault-tolerance layer).
	shed         *telemetry.Counter
	bmlDegraded  *telemetry.Counter
	workerPanics *telemetry.Counter
	connPanics   *telemetry.Counter
	queueRejects *telemetry.Counter

	// Spill tier (the WAL overflow behind BML; see internal/wal).
	spilled      *telemetry.Counter
	spillRejects *telemetry.Counter
}

// opLabelName returns the op label value for metric slot i.
func opLabelName(i int) string {
	if i == 0 {
		return "other"
	}
	return Op(i).String()
}

// newServerMetrics registers the server's metric families on reg. Each
// Server needs its own Registry: families are registered once per server.
func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	m := &serverMetrics{reg: reg}
	for i := 0; i < opCount; i++ {
		op := telemetry.L("op", opLabelName(i))
		m.requests[i] = reg.Counter("iofwd_requests_total",
			"Forwarded operations handled, by op type.", op)
		m.reqLatency[i] = reg.Histogram("iofwd_request_latency_ns",
			"End-to-end server-side request latency (header decoded to reply written), by op type.", op)
	}
	m.writeBytes = reg.Histogram("iofwd_request_bytes",
		"Payload size per operation, by op type.", telemetry.L("op", "write"))
	m.readBytes = reg.Histogram("iofwd_request_bytes",
		"Payload size per operation, by op type.", telemetry.L("op", "read"))

	stage := func(s string) *telemetry.Histogram {
		return reg.Histogram("iofwd_stage_latency_ns",
			"Per-stage forwarding-path latency: recv (CN→ION receive incl. BML wait), queue (work-queue wait), backend (terminal I/O service), reply (response write).",
			telemetry.L("stage", s))
	}
	m.stageRecv = stage("recv")
	m.stageQueue = stage("queue")
	m.stageBackend = stage("backend")
	m.stageReply = stage("reply")
	m.stageSpill = stage("spill")

	m.batchSize = reg.Histogram("iofwd_worker_batch_ops",
		"Tasks dequeued per worker wakeup (the event-loop multiplexing depth).")
	m.batches = reg.Counter("iofwd_worker_batches_total",
		"Worker wakeups that dequeued at least one task.")
	m.zeroCopyReplies = reg.Counter("iofwd_zero_copy_replies_total",
		"Read replies whose payload was read straight into a BML-leased frame and written to the wire in one call (zero-copy reply path).")

	m.bytesWritten = reg.Counter("iofwd_bytes_written_total",
		"Payload bytes received for write operations.")
	m.bytesRead = reg.Counter("iofwd_bytes_read_total",
		"Payload bytes returned by read operations.")
	m.staged = reg.Counter("iofwd_staged_writes_total",
		"Writes acknowledged before execution (asynchronous data staging).")
	m.conns = reg.Counter("iofwd_connections_total",
		"Client connections accepted.")
	m.replyErrors = reg.Counter("iofwd_reply_errors_total",
		"Replies carrying a non-OK errno (including deferred errors).")

	m.activeConns = reg.Gauge("iofwd_active_connections",
		"Client connections currently being served.")
	m.openDescs = reg.Gauge("iofwd_open_descriptors",
		"Descriptors currently open across all connections.")
	m.inflightStaged = reg.Gauge("iofwd_inflight_staged_ops",
		"Staged operations accepted but not yet executed.")
	m.deferredErrors = reg.Counter("iofwd_deferred_errors_total",
		"Staged operations that failed after acknowledgement (reported on a later op).")

	m.shed = reg.Counter("iofwd_shed_total",
		"Data operations refused with EAGAIN because the work queue exceeded its high-water mark (overload shedding).")
	m.bmlDegraded = reg.Counter("iofwd_bml_degraded_total",
		"Writes that fell back to the synchronous path with an unpooled buffer after staging-pool admission timed out.")
	m.workerPanics = reg.Counter("iofwd_panics_total",
		"Panics recovered without killing the process, by scope (worker = pool task, conn = connection handler).",
		telemetry.L("scope", "worker"))
	m.connPanics = reg.Counter("iofwd_panics_total",
		"Panics recovered without killing the process, by scope (worker = pool task, conn = connection handler).",
		telemetry.L("scope", "conn"))
	m.queueRejects = reg.Counter("iofwd_queue_rejects_total",
		"Operations refused with ECLOSED because they raced server shutdown (closed work queue).")
	m.spilled = reg.Counter("iofwd_bml_spilled_total",
		"Writes that missed staging-pool admission and were absorbed by the write-ahead spill tier.")
	m.spillRejects = reg.Counter("iofwd_bml_spill_rejects_total",
		"Writes the spill tier refused (full or closed); they degraded to the synchronous path instead.")
	return m
}

// wire registers the instruments owned by the server's component structures
// (BML pool, task queue) once those exist.
func (m *serverMetrics) wire(s *Server) {
	reg := m.reg
	reg.GaugeFunc("iofwd_bml_used_bytes",
		"Staging-pool bytes currently reserved.", s.bml.Used)
	reg.GaugeFunc("iofwd_bml_capacity_bytes",
		"Staging-pool capacity (the BML cap).", s.bml.Capacity)
	reg.MustRegister("iofwd_bml_peak_bytes",
		"Staging-pool reservation high-water mark.", &s.bml.peak)
	reg.MustRegister("iofwd_bml_allocs_total",
		"Staging buffers handed out.", &s.bml.allocs)
	reg.MustRegister("iofwd_bml_fresh_total",
		"Staging buffer requests that required a new allocation.", &s.bml.fresh)
	reg.MustRegister("iofwd_bml_stalls_total",
		"Staging buffer requests that blocked on the capacity cap.", &s.bml.stalls)
	reg.MustRegister("iofwd_bml_stall_wait_ns",
		"Time spent blocked waiting for staging-pool capacity.", &s.bml.stallWait)
	reg.MustRegister("iofwd_bml_admission_timeouts_total",
		"Staging buffer requests that gave up waiting (BMLTimeout) and degraded.", &s.bml.timeouts)
	reg.GaugeFunc("iofwd_bml_waiters",
		"Requests currently blocked on staging-pool admission.", s.bml.Waiters)
	if s.sched != nil {
		q := s.sched
		reg.GaugeFunc("iofwd_queue_depth",
			"Tasks currently waiting across all scheduler shards (atomic aggregate; the overload-shed reference).",
			q.aggDepth.Load)
		reg.MustRegister("iofwd_queue_peak_depth",
			"Aggregate scheduler occupancy high-water mark.", &q.peak)
		q.steals = reg.Counter("iofwd_steals_total",
			"Half-batches an idle worker stole from the busiest sibling shard.")
		for i, sh := range q.shards {
			reg.GaugeFunc("iofwd_shard_depth",
				"Tasks currently queued on one scheduler shard, by shard index.",
				sh.depth.Load, telemetry.L("shard", strconv.Itoa(i)))
		}
	}
}
