package core

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Op identifies a forwarded operation.
type Op uint8

// Forwarded operations.
const (
	OpOpen Op = iota + 1
	OpClose
	OpWrite  // sequential write at the descriptor cursor
	OpPwrite // positional write
	OpRead   // sequential read at the descriptor cursor
	OpPread  // positional read
	OpFsync
	OpStat
	OpFlush   // drain every staged operation on the connection
	OpErrPoll // collect a pending deferred error without doing I/O
)

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpClose:
		return "close"
	case OpWrite:
		return "write"
	case OpPwrite:
		return "pwrite"
	case OpRead:
		return "read"
	case OpPread:
		return "pread"
	case OpFsync:
		return "fsync"
	case OpStat:
		return "stat"
	case OpFlush:
		return "flush"
	case OpErrPoll:
		return "errpoll"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Request flags.
const (
	// FlagStaged in a response tells the client the write was staged, not
	// yet executed (asynchronous data staging).
	FlagStaged uint16 = 1 << iota
	// FlagDeferredErr in a response tells the client the errno field
	// reports a *previous* staged operation's failure on this descriptor.
	FlagDeferredErr
	// FlagDegraded in a response tells the client the write bypassed
	// asynchronous staging and executed synchronously because staging-pool
	// admission timed out (BML exhaustion degradation).
	FlagDegraded
	// FlagSpilled in a response tells the client the write missed staging
	// admission but was durably appended to the write-ahead spill tier and
	// will be drained to the backend asynchronously (always accompanied by
	// FlagStaged: failures surface as deferred errors).
	FlagSpilled
)

// Protocol constants.
const (
	protoMagic   uint32 = 0x494F4657 // "IOFW"
	protoVersion uint8  = 1
	headerSize          = 40
	// MaxPayload bounds a single operation's payload.
	MaxPayload = 64 << 20
	// MaxPath bounds the path length in an open request.
	MaxPath = 4096
)

// header is the fixed-size frame prefix shared by requests and responses.
//
// Layout (big-endian):
//
//	0  magic   uint32
//	4  version uint8
//	5  op      uint8
//	6  flags   uint16
//	8  reqID   uint64
//	16 fd      uint64
//	24 offset  uint64   (requests) / value int64 (responses)
//	32 length  uint32   (payload bytes following the header [+path])
//	36 pathLen uint16   (requests) / errno uint16 (responses, 0 = ok)
//	38 pad     uint16
type header struct {
	op      Op
	flags   uint16
	reqID   uint64
	fd      uint64
	offset  uint64 // or response value
	length  uint32
	pathLen uint16 // or response errno
}

func (h *header) encode(b *[headerSize]byte) {
	binary.BigEndian.PutUint32(b[0:], protoMagic)
	b[4] = protoVersion
	b[5] = byte(h.op)
	binary.BigEndian.PutUint16(b[6:], h.flags)
	binary.BigEndian.PutUint64(b[8:], h.reqID)
	binary.BigEndian.PutUint64(b[16:], h.fd)
	binary.BigEndian.PutUint64(b[24:], h.offset)
	binary.BigEndian.PutUint32(b[32:], h.length)
	binary.BigEndian.PutUint16(b[36:], h.pathLen)
	binary.BigEndian.PutUint16(b[38:], 0)
}

func decodeHeader(b *[headerSize]byte, h *header) error {
	if binary.BigEndian.Uint32(b[0:]) != protoMagic {
		return fmt.Errorf("%w: bad frame magic %#x", EINVAL, binary.BigEndian.Uint32(b[0:]))
	}
	if b[4] != protoVersion {
		return fmt.Errorf("%w: unsupported protocol version %d", EINVAL, b[4])
	}
	h.op = Op(b[5])
	h.flags = binary.BigEndian.Uint16(b[6:])
	h.reqID = binary.BigEndian.Uint64(b[8:])
	h.fd = binary.BigEndian.Uint64(b[16:])
	h.offset = binary.BigEndian.Uint64(b[24:])
	h.length = binary.BigEndian.Uint32(b[32:])
	h.pathLen = binary.BigEndian.Uint16(b[36:])
	return nil
}

// writeFrame writes a header and optional trailing segments in one call.
func writeFrame(w io.Writer, h *header, segments ...[]byte) error {
	var hb [headerSize]byte
	h.encode(&hb)
	if _, err := w.Write(hb[:]); err != nil {
		return err
	}
	for _, seg := range segments {
		if len(seg) == 0 {
			continue
		}
		if _, err := w.Write(seg); err != nil {
			return err
		}
	}
	return nil
}

// readHeader reads and decodes one frame header.
func readHeader(r io.Reader, h *header) error {
	var hb [headerSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return err
	}
	return decodeHeader(&hb, h)
}
