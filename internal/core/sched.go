package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// task is one unit of queued I/O work (paper figure 7: the ZOID thread
// enqueues the I/O task into the work queue).
type task struct {
	d     *descriptor
	op    Op // OpWrite or OpRead
	buf   []byte
	off   int64
	opNum uint64
	// done, when non-nil, receives the result (synchronous scheduling);
	// when nil the task is staged and its result goes to the descriptor
	// database (asynchronous staging).
	done chan error
	// n is set to the byte count actually moved (reads).
	n int
	// enq is when the submitter stamped the task; the worker observes the
	// queue-wait stage from it.
	enq time.Time
}

// shard is one per-worker task queue. The paper's single shared FIFO made
// every producer and every worker serialize on one lock — the very ION
// contention the work queue was introduced to remove, relocated into the
// scheduler. Sharding gives each worker a private FIFO: producers hash by
// descriptor so one descriptor's operations stay in one FIFO (preserving
// per-descriptor opNum order), and contention drops to one producer set and
// (mostly) one consumer per lock.
type shard struct {
	mu   sync.Mutex
	cond *sync.Cond
	// items is the FIFO of queued tasks. Tasks of one descriptor only ever
	// appear in that descriptor's home shard, in submission (opNum) order.
	items []*task
	// executing counts, per descriptor sequence id, tasks dequeued from this
	// shard and not yet finished. A dequeue (owner batch or steal) may only
	// take a descriptor's tasks while this count is zero — or when the same
	// batch already holds the descriptor's earlier tasks — so a descriptor's
	// operations never run concurrently or out of order, even across steals.
	executing map[uint64]int
	// poked is set by wakeIdle to tell a parked worker that a sibling shard
	// has surplus work worth stealing.
	poked bool
	// depth mirrors len(items) for lock-free victim selection and the
	// per-shard depth gauge.
	depth atomic.Int64
}

// scheduler is the sharded work-stealing task queue. put hashes tasks to
// their descriptor's home shard; each worker drains its own shard and steals
// half-batches from the busiest sibling before parking, so a skewed hash
// cannot strand idle workers while one shard backs up.
type scheduler struct {
	shards []*shard
	// aggDepth is the aggregate queued-task count, maintained atomically so
	// the overload-shed check and /statz snapshots never touch a shard lock.
	aggDepth atomic.Int64
	closed   atomic.Bool
	peak     telemetry.MaxGauge
	steals   *telemetry.Counter

	// idle is a stack of parked worker ids; idleCount mirrors its size so
	// the put hot path can skip the idle lock when nobody is parked.
	idleMu    sync.Mutex
	idle      []int
	idleCount atomic.Int32
}

// defaultShards picks the shard count: one queue per worker, capped at
// GOMAXPROCS — more shards than runnable threads just spreads the same
// contention thinner without adding parallelism.
func defaultShards(workers int) int {
	n := workers
	if p := runtime.GOMAXPROCS(0); n > p {
		n = p
	}
	if n < 1 {
		n = 1
	}
	return n
}

func newScheduler(nshards int) *scheduler {
	if nshards < 1 {
		nshards = 1
	}
	s := &scheduler{shards: make([]*shard, nshards)}
	for i := range s.shards {
		sh := &shard{executing: make(map[uint64]int)}
		sh.cond = sync.NewCond(&sh.mu)
		s.shards[i] = sh
	}
	return s
}

// homeShard returns the shard owning d's tasks. The descriptor sequence id
// is a global round-robin ticket, so descriptors spread evenly regardless of
// per-connection fd reuse.
func (s *scheduler) homeShard(d *descriptor) *shard {
	return s.shards[d.sid%uint64(len(s.shards))]
}

// ownShard returns the shard worker id drains first. With fewer shards than
// workers, owners share shards; the shard lock serializes them.
func (s *scheduler) ownShard(id int) *shard {
	return s.shards[id%len(s.shards)]
}

// put enqueues one task on its descriptor's home shard. It returns ECLOSED
// (instead of panicking) when the scheduler has been closed, so a connection
// racing server shutdown gets a clean wire error rather than crashing the
// process. The signal goes to the owning shard's cond only — waking every
// worker for one task is the thundering herd the shards exist to avoid.
func (s *scheduler) put(t *task) error {
	sh := s.homeShard(t.d)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ECLOSED
	}
	sh.items = append(sh.items, t)
	qlen := len(sh.items)
	sh.depth.Store(int64(qlen))
	s.peak.Observe(s.aggDepth.Add(1))
	sh.mu.Unlock()
	sh.cond.Signal()
	// Backlog forming behind a busy owner: nominate a parked sibling to come
	// steal. The atomic gate keeps the fully-loaded hot path lock-free here.
	if qlen > 1 && s.idleCount.Load() > 0 {
		s.wakeIdle()
	}
	return nil
}

// depth returns the aggregate queued-task count without taking any lock —
// the shed check (QueueHighWater) and metric snapshots read it on every
// data operation.
func (s *scheduler) depth() int {
	return int(s.aggDepth.Load())
}

// close marks the scheduler closed and wakes every worker so they drain the
// remaining tasks and exit.
func (s *scheduler) close() {
	s.closed.Store(true)
	// The empty lock cycle serializes against workers evaluating their park
	// predicate: a worker either observes closed before Waiting, or is
	// already parked when the Broadcast lands — never in between.
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.mu.Unlock()
		sh.cond.Broadcast()
	}
}

// take removes up to limit runnable tasks from sh in FIFO order and marks
// their descriptors executing. A task is runnable when no earlier task of
// its descriptor is still executing elsewhere, or when this same batch
// already holds the descriptor's earlier tasks — either way the batch holds
// a prefix of the descriptor's queued operations and executes it serially,
// so opNum order survives both batching and stealing.
func (sh *shard) take(s *scheduler, limit int, out []*task) []*task {
	out = out[:0]
	if limit <= 0 {
		return out
	}
	sh.mu.Lock()
	if len(sh.items) == 0 {
		sh.mu.Unlock()
		return out
	}
	kept := 0
	for i := 0; i < len(sh.items); i++ {
		t := sh.items[i]
		runnable := sh.executing[t.d.sid] == 0 || batchHolds(out, t.d.sid)
		if len(out) < limit && runnable {
			out = append(out, t)
		} else {
			sh.items[kept] = t
			kept++
		}
	}
	for i := kept; i < len(sh.items); i++ {
		sh.items[i] = nil
	}
	sh.items = sh.items[:kept]
	for _, t := range out {
		sh.executing[t.d.sid]++
	}
	sh.depth.Store(int64(kept))
	sh.mu.Unlock()
	if n := len(out); n > 0 {
		s.aggDepth.Add(-int64(n))
	}
	return out
}

// batchHolds reports whether batch already contains a task of descriptor
// sequence id sid. Batches are small (≤ cfg.Batch), so a linear scan beats a
// per-dequeue map allocation.
func batchHolds(batch []*task, sid uint64) bool {
	for _, t := range batch {
		if t.d.sid == sid {
			return true
		}
	}
	return false
}

// steal takes up to half of victim's queue (capped at limit) for an idle
// worker, honoring the same descriptor-prefix rule as take. drain mode
// (shutdown) lifts the half cap so the last workers can empty every shard.
func (s *scheduler) steal(victim *shard, limit int, drain bool, out []*task) []*task {
	n := int(victim.depth.Load())
	if n == 0 {
		return out[:0]
	}
	want := (n + 1) / 2
	if drain {
		want = n
	}
	if want > limit {
		want = limit
	}
	batch := victim.take(s, want, out)
	if len(batch) > 0 && s.steals != nil {
		s.steals.Inc()
	}
	return batch
}

// next returns the worker's next batch and the shard it was taken from, or
// (nil, nil) when the scheduler is closed and fully drained. Order of
// preference: the worker's own shard, then a steal from the busiest sibling.
// Workers park on their own shard's cond when nothing is runnable anywhere.
func (s *scheduler) next(id, max int, out []*task) (*shard, []*task) {
	own := s.ownShard(id)
	for {
		if batch := own.take(s, max, out); len(batch) > 0 {
			return own, batch
		}
		closed := s.closed.Load()
		if victim := s.busiest(own); victim != nil {
			if batch := s.steal(victim, max, closed, out); len(batch) > 0 {
				return victim, batch
			}
		}
		if closed {
			if s.aggDepth.Load() == 0 {
				// Tasks still marked executing belong to live workers, which
				// re-enter next() after finishing and drain what they block.
				return nil, nil
			}
			// Queued tasks remain but none are runnable by us right now
			// (their descriptors are mid-execution elsewhere, or a racing put
			// landed on a shard we already scanned). Yield and rescan; this
			// only spins during shutdown drain.
			runtime.Gosched()
			continue
		}
		s.park(id, own)
	}
}

// busiest returns the deepest shard other than own, or nil when every other
// shard is empty. The depth reads are racy by design — a stale victim choice
// costs one wasted lock, never correctness.
func (s *scheduler) busiest(own *shard) *shard {
	var victim *shard
	var max int64
	for _, sh := range s.shards {
		if sh == own {
			continue
		}
		if d := sh.depth.Load(); d > max {
			max, victim = d, sh
		}
	}
	return victim
}

// park blocks the worker on its own shard's cond until new work arrives
// there, a producer pokes it to steal, or the scheduler closes. The worker
// registers as idle first so put's wakeIdle can find it; the poked flag is
// set under the shard lock, so the nomination is never lost between the
// worker's last scan and its Wait.
func (s *scheduler) park(id int, own *shard) {
	s.idleMu.Lock()
	s.idle = append(s.idle, id)
	s.idleMu.Unlock()
	s.idleCount.Add(1)
	own.mu.Lock()
	for len(own.items) == 0 && !own.poked && !s.closed.Load() {
		own.cond.Wait()
	}
	own.poked = false
	own.mu.Unlock()
	s.idleCount.Add(-1)
	s.idleMu.Lock()
	for i, w := range s.idle {
		if w == id {
			s.idle = append(s.idle[:i], s.idle[i+1:]...)
			break
		}
	}
	s.idleMu.Unlock()
}

// wakeIdle pops one parked worker and pokes it toward the backlog. Popping
// under idleMu and setting poked under the target's shard lock makes the
// handoff race-free: either the worker has not started waiting yet and sees
// the flag, or it is waiting and the signal lands.
func (s *scheduler) wakeIdle() {
	s.idleMu.Lock()
	if len(s.idle) == 0 {
		s.idleMu.Unlock()
		return
	}
	id := s.idle[len(s.idle)-1]
	s.idle = s.idle[:len(s.idle)-1]
	s.idleMu.Unlock()
	sh := s.ownShard(id)
	sh.mu.Lock()
	sh.poked = true
	sh.mu.Unlock()
	sh.cond.Signal()
}

// finish unmarks batch's descriptors on the shard the batch was taken from
// and wakes the shard's owner if tasks were left waiting (they may have been
// blocked on exactly these descriptors).
func (s *scheduler) finish(sh *shard, batch []*task) {
	sh.mu.Lock()
	for _, t := range batch {
		if sh.executing[t.d.sid]--; sh.executing[t.d.sid] <= 0 {
			delete(sh.executing, t.d.sid)
		}
	}
	notify := len(sh.items) > 0
	sh.mu.Unlock()
	if notify {
		sh.cond.Signal()
	}
}

// worker is one pool thread: it drains its own shard (stealing from the
// busiest sibling when idle), dequeues multiple I/O requests per wakeup and
// executes them in its event loop (paper Section IV).
func (s *Server) worker(id int) {
	defer s.workerWG.Done()
	m := s.metrics
	var batch []*task
	for {
		src, b := s.sched.next(id, s.cfg.Batch, batch)
		if b == nil {
			return
		}
		batch = b
		m.batches.Inc()
		m.batchSize.Observe(int64(len(batch)))
		// Timestamps chain through the batch: each task's service start is
		// the previous task's completion, so queue wait covers the full
		// time until service begins and backend covers exactly the
		// execution.
		now := time.Now()
		for _, t := range batch {
			if !t.enq.IsZero() {
				m.stageQueue.Observe(now.Sub(t.enq).Nanoseconds())
			}
			now = s.execute(t, now)
		}
		s.sched.finish(src, batch)
	}
}

// runTask executes the backend call for one task, converting a backend
// panic into an EIO failure of that operation alone so a buggy or
// fault-injected backend cannot take down the worker pool.
func (s *Server) runTask(t *task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.workerPanics.Inc()
			err = fmt.Errorf("%w: worker recovered panic: %v", EIO, r)
		}
	}()
	switch t.op {
	case OpWrite:
		_, err = t.d.handle.WriteAt(t.buf, t.off)
	case OpRead:
		t.n, err = t.d.handle.ReadAt(t.buf, t.off)
	}
	return err
}

// execute runs one task, observes its backend service time, and routes its
// result. The observation happens before the result is published so a
// snapshot taken after a drain sees every completed task. It returns the
// completion timestamp for the worker's chained batch timing.
func (s *Server) execute(t *task, start time.Time) time.Time {
	err := s.runTask(t)
	if t.op == OpWrite {
		s.bml.Put(t.buf)
	}
	end := time.Now()
	s.metrics.stageBackend.Observe(end.Sub(start).Nanoseconds())
	if t.done != nil {
		t.done <- err
		return end
	}
	// Staged: record the outcome in the descriptor database; the error (if
	// any) surfaces on a later operation on this descriptor.
	t.d.complete(t.opNum, err)
	return end
}
