package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// task is one unit of queued I/O work (paper figure 7: the ZOID thread
// enqueues the I/O task into the shared FIFO work queue).
type task struct {
	d     *descriptor
	op    Op // OpWrite or OpRead
	buf   []byte
	off   int64
	opNum uint64
	// done, when non-nil, receives the result (synchronous scheduling);
	// when nil the task is staged and its result goes to the descriptor
	// database (asynchronous staging).
	done chan error
	// n is set to the byte count actually moved (reads).
	n int
	// enq is when the submitter stamped the task; the worker observes the
	// queue-wait stage from it.
	enq time.Time
}

// taskQueue is the shared FIFO work queue: unbounded, multi-producer,
// drained in batches by the worker pool.
type taskQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*task
	closed bool
	peak   telemetry.MaxGauge
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// put enqueues one task. It returns ECLOSED (instead of panicking) when the
// queue has been closed, so a connection racing server shutdown gets a clean
// wire error rather than crashing the process.
func (q *taskQueue) put(t *task) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ECLOSED
	}
	q.items = append(q.items, t)
	q.peak.Observe(int64(len(q.items)))
	q.mu.Unlock()
	q.cond.Signal()
	return nil
}

// getBatch removes up to max tasks, blocking while the queue is empty. It
// returns nil once the queue is closed and drained.
func (q *taskQueue) getBatch(max int, out []*task) []*task {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
	n := min(max, len(q.items))
	out = append(out[:0], q.items[:n]...)
	for i := 0; i < n; i++ {
		q.items[i] = nil
	}
	q.items = q.items[n:]
	return out
}

func (q *taskQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *taskQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// worker is one pool thread: it dequeues multiple I/O requests per wakeup
// and executes them in its event loop (paper Section IV).
func (s *Server) worker() {
	defer s.workerWG.Done()
	m := s.metrics
	var batch []*task
	for {
		batch = s.queue.getBatch(s.cfg.Batch, batch)
		if batch == nil {
			return
		}
		m.batches.Inc()
		m.batchSize.Observe(int64(len(batch)))
		// Timestamps chain through the batch: each task's service start is
		// the previous task's completion, so queue wait covers the full
		// time until service begins and backend covers exactly the
		// execution.
		now := time.Now()
		for _, t := range batch {
			if !t.enq.IsZero() {
				m.stageQueue.Observe(now.Sub(t.enq).Nanoseconds())
			}
			now = s.execute(t, now)
		}
	}
}

// runTask executes the backend call for one task, converting a backend
// panic into an EIO failure of that operation alone so a buggy or
// fault-injected backend cannot take down the worker pool.
func (s *Server) runTask(t *task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.workerPanics.Inc()
			err = fmt.Errorf("%w: worker recovered panic: %v", EIO, r)
		}
	}()
	switch t.op {
	case OpWrite:
		_, err = t.d.handle.WriteAt(t.buf, t.off)
	case OpRead:
		t.n, err = t.d.handle.ReadAt(t.buf, t.off)
	}
	return err
}

// execute runs one task, observes its backend service time, and routes its
// result. The observation happens before the result is published so a
// snapshot taken after a drain sees every completed task. It returns the
// completion timestamp for the worker's chained batch timing.
func (s *Server) execute(t *task, start time.Time) time.Time {
	err := s.runTask(t)
	if t.op == OpWrite {
		s.bml.Put(t.buf)
	}
	end := time.Now()
	s.metrics.stageBackend.Observe(end.Sub(start).Nanoseconds())
	if t.done != nil {
		t.done <- err
		return end
	}
	// Staged: record the outcome in the descriptor database; the error (if
	// any) surfaces on a later operation on this descriptor.
	t.d.complete(t.opNum, err)
	return end
}
