package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// readFailBackend serves opens and writes normally but fails (or panics)
// every ReadAt — the mid-reply error branch of the zero-copy read path.
type readFailBackend struct {
	inner   Backend
	doPanic bool
}

func (b *readFailBackend) Open(name string, create bool) (Handle, error) {
	h, err := b.inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &readFailHandle{inner: h, doPanic: b.doPanic}, nil
}

type readFailHandle struct {
	inner   Handle
	doPanic bool
}

func (h *readFailHandle) WriteAt(b []byte, off int64) (int, error) { return h.inner.WriteAt(b, off) }
func (h *readFailHandle) ReadAt(b []byte, off int64) (int, error) {
	if h.doPanic {
		panic("injected backend read panic")
	}
	return 0, fmt.Errorf("%w: injected backend read failure", EIO)
}
func (h *readFailHandle) Sync() error          { return h.inner.Sync() }
func (h *readFailHandle) Size() (int64, error) { return h.inner.Size() }
func (h *readFailHandle) Close() error         { return h.inner.Close() }

// waitPoolDrained polls the staging pool until every leased byte is back.
// The reply reaches the client one connection write before the server puts
// the frame back, so the assertion allows the put a moment to land.
func waitPoolDrained(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.bml.Used() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("staging pool still holds %d bytes: leaked reply frame", s.bml.Used())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReadErrorReturnsLeasedFrame: when the backend ReadAt fails after the
// reply frame was leased, the error reply must still travel through
// replyFrame and the frame must return to the pool — the zero-copy path's
// error branch may not leak staging capacity.
func TestReadErrorReturnsLeasedFrame(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			c, s := pipePair(t, Config{
				Mode:    mode,
				Workers: 2,
				Backend: &readFailBackend{inner: NewMemBackend()},
			})
			f, err := c.Open(context.Background(), "obj")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(bytes.Repeat([]byte{7}, 4096)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				buf := make([]byte, 4096)
				if _, err := f.ReadAt(buf, 0); !errors.Is(err, EIO) {
					t.Fatalf("read %d: err = %v, want EIO", i, err)
				}
				waitPoolDrained(t, s)
			}
			// The connection must survive the failed reads: a working op
			// afterwards proves the error stayed op-local.
			if _, err := f.Write([]byte("still alive")); err != nil {
				t.Fatalf("write after failed reads: %v", err)
			}
		})
	}
}

// TestReadPanicReturnsLeasedFrame: a backend panic mid-read is recovered
// into EIO and must not leak the leased frame either.
func TestReadPanicReturnsLeasedFrame(t *testing.T) {
	c, s := pipePair(t, Config{
		Mode:    ModeDirect,
		Backend: &readFailBackend{inner: NewMemBackend(), doPanic: true},
	})
	f, err := c.Open(context.Background(), "obj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, EIO) {
		t.Fatalf("read err = %v, want EIO from recovered panic", err)
	}
	waitPoolDrained(t, s)
}
