package core

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Mode selects the server's execution model (see the package comment).
type Mode int

// Execution modes.
const (
	// ModeDirect executes operations on the per-connection handler.
	ModeDirect Mode = iota
	// ModeWorkQueue schedules operations on the worker pool; callers block.
	ModeWorkQueue
	// ModeAsync adds asynchronous data staging for writes.
	ModeAsync
)

func (m Mode) String() string {
	switch m {
	case ModeDirect:
		return "direct"
	case ModeWorkQueue:
		return "workqueue"
	case ModeAsync:
		return "async"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config configures a Server.
type Config struct {
	// Mode selects the execution model; the default is ModeDirect.
	Mode Mode
	// Workers is the worker-pool size for ModeWorkQueue and ModeAsync
	// (paper default: 4).
	Workers int
	// Shards is the number of scheduler task queues. Producers hash tasks to
	// shards by descriptor, each worker drains its own shard and steals from
	// the busiest sibling when idle. 0 picks one shard per worker, capped at
	// GOMAXPROCS.
	Shards int
	// Batch is the maximum number of tasks a worker dequeues per wakeup.
	Batch int
	// BMLBytes caps staging memory; writes block when it is exhausted.
	BMLBytes int64
	// Backend executes the terminal I/O; the default is NewMemBackend().
	Backend Backend
	// Filters, when non-nil, processes every write payload on the
	// forwarding node before it reaches the backend (the paper's data
	// filtering / in-situ analytics offload). Filters must not grow the
	// payload.
	Filters *FilterChain
	// Metrics, when non-nil, is the telemetry registry the server
	// registers its instruments on (a fresh one is created otherwise).
	// Each Server needs its own registry.
	Metrics *telemetry.Registry
	// QueueHighWater, when > 0, sheds incoming data operations with EAGAIN
	// while the scheduler's aggregate queued-task depth (summed over all
	// shards) is at least this deep, instead of letting a stalled backend
	// absorb unbounded queued work and block every forwarder. Shedding
	// happens before any side effect (no cursor movement, no staging), so
	// EAGAIN is always safe to retry.
	QueueHighWater int
	// BMLTimeout, when > 0, bounds the wait for staging-pool admission;
	// past it a write degrades to the synchronous path with an unpooled
	// buffer (reply carries FlagDegraded) instead of blocking forever on
	// BML exhaustion. 0 keeps the paper's pure back-pressure behaviour.
	BMLTimeout time.Duration
	// Spill, when non-nil, absorbs ModeAsync writes that miss staging-pool
	// admission into a durable write-ahead tier (internal/wal) instead of
	// degrading them to the synchronous path: the record is logged locally,
	// acknowledged with FlagStaged|FlagSpilled, and drained to the backend
	// in the background. A Spill refusal (full/closed) still falls back to
	// the synchronous degrade path, so the write never blocks on the tier.
	Spill Spiller
}

// ServerStats are cumulative server counters.
type ServerStats struct {
	Ops          uint64
	BytesWritten uint64
	BytesRead    uint64
	StagedWrites uint64
	WorkerBatch  uint64
	Conns        uint64
	// Shed counts data operations refused with EAGAIN under overload.
	Shed uint64
	// Degraded counts writes that bypassed staging after a BML admission
	// timeout.
	Degraded uint64
	// Spilled counts writes absorbed by the write-ahead spill tier after a
	// BML admission timeout.
	Spilled uint64
	// WorkerPanics counts backend panics recovered by the worker pool.
	WorkerPanics uint64
}

// Server is a forwarding server.
type Server struct {
	cfg     Config
	bml     *BML
	sched   *scheduler
	metrics *serverMetrics

	mu        sync.Mutex
	listeners []net.Listener
	closed    bool
	workerWG  sync.WaitGroup
}

// NewServer builds a server and starts its worker pool if the mode needs
// one.
func NewServer(cfg Config) *Server {
	if cfg.Backend == nil {
		cfg.Backend = NewMemBackend()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	if cfg.BMLBytes <= 0 {
		cfg.BMLBytes = 256 << 20
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{cfg: cfg, bml: NewBML(cfg.BMLBytes), metrics: newServerMetrics(reg)}
	if cfg.Mode != ModeDirect {
		nshards := cfg.Shards
		if nshards <= 0 {
			nshards = defaultShards(cfg.Workers)
		}
		s.sched = newScheduler(nshards)
	}
	s.metrics.wire(s)
	if s.sched != nil {
		for i := 0; i < cfg.Workers; i++ {
			s.workerWG.Add(1)
			go s.worker(i)
		}
	}
	return s
}

// Metrics returns the server's telemetry registry (serve it at /metrics —
// see cmd/fwdd).
func (s *Server) Metrics() *telemetry.Registry { return s.metrics.reg }

// Mode returns the server's execution model.
func (s *Server) Mode() Mode { return s.cfg.Mode }

// BMLStats exposes the staging pool counters.
func (s *Server) BMLStats() BMLStats { return s.bml.Stats() }

// Stats returns a snapshot of the server counters, read from the telemetry
// registry's atomics (the single source of truth the /metrics endpoint also
// exports).
func (s *Server) Stats() ServerStats {
	m := s.metrics
	var ops uint64
	for i := range m.requests {
		ops += m.requests[i].Value()
	}
	return ServerStats{
		Ops:          ops,
		BytesWritten: m.bytesWritten.Value(),
		BytesRead:    m.bytesRead.Value(),
		StagedWrites: m.staged.Value(),
		WorkerBatch:  m.batches.Value(),
		Conns:        m.conns.Value(),
		Shed:         m.shed.Value(),
		Degraded:     m.bmlDegraded.Value(),
		Spilled:      m.spilled.Value(),
		WorkerPanics: m.workerPanics.Value(),
	}
}

// shouldShed reports whether the scheduler is past its high-water mark. The
// depth read is a single atomic load, so the per-operation shed check never
// contends with producers or workers on a shard lock.
func (s *Server) shouldShed() bool {
	return s.sched != nil && s.cfg.QueueHighWater > 0 && s.sched.depth() >= s.cfg.QueueHighWater
}

// Serve accepts connections until the listener fails or the server closes.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ECLOSED
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		//lint:allow goroleak per-connection handlers exit on their conn's EOF/error; Close closes the listeners and in-flight conns are interrupted by their next I/O
		go func() { _ = s.ServeConn(c) }()
	}
}

// Close stops accepting, drains the worker pool, and releases resources.
// In-flight connections are interrupted by their next I/O.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ls := s.listeners
	s.mu.Unlock()
	for _, l := range ls {
		_ = l.Close()
	}
	if s.sched != nil {
		s.sched.close()
		s.workerWG.Wait()
	}
	return nil
}

// ServeConn handles one client connection until EOF or error. It is
// exported so tests and in-process users can serve a net.Pipe end directly.
func (s *Server) ServeConn(nc net.Conn) error {
	s.metrics.conns.Inc()
	s.metrics.activeConns.Inc()
	defer s.metrics.activeConns.Dec()
	c := &serverConn{srv: s, nc: nc, db: newDescDB(s.metrics)}
	err := c.run()
	c.teardown()
	_ = nc.Close()
	if err == io.EOF || errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// serverConn is the per-connection handler — the role of the per-CN ZOID
// thread. It decodes requests sequentially; whether it executes them itself
// or hands them to the worker pool depends on the server mode.
type serverConn struct {
	srv *Server
	nc  net.Conn
	db  *descDB
}

func (c *serverConn) run() (err error) {
	// A panic in a handler (a buggy backend on the direct path, a filter)
	// costs this connection, never the process; the deferred teardown in
	// ServeConn still drains and closes the connection's descriptors.
	defer func() {
		if r := recover(); r != nil {
			c.srv.metrics.connPanics.Inc()
			err = fmt.Errorf("%w: connection handler recovered panic: %v", EIO, r)
		}
	}()
	var h header
	for {
		if err := readHeader(c.nc, &h); err != nil {
			return err
		}
		if err := c.dispatch(&h); err != nil {
			return err
		}
	}
}

// teardown drains and closes every descriptor left open by the client.
func (c *serverConn) teardown() {
	for _, d := range c.db.all() {
		d.drain()
		_ = d.handle.Close()
		c.db.remove(d.fd)
	}
}

// reply sends a response frame. value carries op-specific results (fd,
// size, byte count); payload carries read data.
func (c *serverConn) reply(reqID uint64, flags uint16, errno Errno, value int64, payload []byte) error {
	h := header{
		op:      0, // responses reuse the header with op 0
		flags:   flags,
		reqID:   reqID,
		offset:  uint64(value),
		length:  uint32(len(payload)),
		pathLen: uint16(errno),
	}
	m := c.srv.metrics
	if errno != EOK {
		m.replyErrors.Inc()
	}
	t0 := time.Now()
	err := writeFrame(c.nc, &h, payload)
	m.stageReply.Observe(time.Since(t0).Nanoseconds())
	return err
}

// replyFrame sends a response whose payload already sits in a BML-leased
// reply frame (from Lease): the header is encoded into the frame's reserved
// header room and header+payload leave in a single connection write. The
// frame is returned to the pool here, exactly once, after the wire write.
func (c *serverConn) replyFrame(reqID uint64, flags uint16, errno Errno, frame []byte, n int) error {
	h := header{
		op:      0, // responses reuse the header with op 0
		flags:   flags,
		reqID:   reqID,
		offset:  uint64(int64(n)),
		length:  uint32(n),
		pathLen: uint16(errno),
	}
	h.encode((*[headerSize]byte)(frame))
	m := c.srv.metrics
	if errno != EOK {
		m.replyErrors.Inc()
	}
	t0 := time.Now()
	_, err := c.nc.Write(frame[:headerSize+n])
	m.stageReply.Observe(time.Since(t0).Nanoseconds())
	m.zeroCopyReplies.Inc()
	c.srv.bml.Put(frame)
	return err
}

// deferredFlags folds a descriptor's pending deferred error into a reply.
func deferredFlags(d *descriptor) (uint16, Errno) {
	if err := d.takeError(); err != nil {
		return FlagDeferredErr, toErrno(errors.Unwrap(err))
	}
	return 0, EOK
}

// dispatch times the whole request (header decoded to reply written) into
// the per-op latency histogram around handleOp.
func (c *serverConn) dispatch(h *header) error {
	m := c.srv.metrics
	i := opIndex(h.op)
	m.requests[i].Inc()
	start := time.Now()
	err := c.handleOp(h, start)
	m.reqLatency[i].Observe(time.Since(start).Nanoseconds())
	return err
}

func (c *serverConn) handleOp(h *header, start time.Time) error {
	s := c.srv
	switch h.op {
	case OpOpen:
		if h.pathLen == 0 || h.pathLen > MaxPath {
			return c.reply(h.reqID, 0, EINVAL, 0, nil)
		}
		path := make([]byte, h.pathLen)
		if _, err := io.ReadFull(c.nc, path); err != nil {
			return err
		}
		handle, err := s.cfg.Backend.Open(string(path), true)
		if err != nil {
			return c.reply(h.reqID, 0, toErrno(err), 0, nil)
		}
		d := c.db.open(string(path), handle)
		return c.reply(h.reqID, 0, EOK, int64(d.fd), nil)

	case OpClose:
		d, ok := c.db.lookup(h.fd)
		if !ok {
			return c.reply(h.reqID, 0, EBADF, 0, nil)
		}
		d.drain()
		flags, errno := deferredFlags(d)
		if err := d.handle.Close(); err != nil && errno == EOK {
			errno = toErrno(err)
		}
		c.db.remove(h.fd)
		return c.reply(h.reqID, flags, errno, 0, nil)

	case OpWrite, OpPwrite:
		return c.handleWrite(h, start)

	case OpRead, OpPread:
		return c.handleRead(h)

	case OpFsync:
		d, ok := c.db.lookup(h.fd)
		if !ok {
			return c.reply(h.reqID, 0, EBADF, 0, nil)
		}
		d.drain()
		flags, errno := deferredFlags(d)
		if err := d.handle.Sync(); err != nil && errno == EOK {
			errno = toErrno(err)
		}
		return c.reply(h.reqID, flags, errno, 0, nil)

	case OpStat:
		d, ok := c.db.lookup(h.fd)
		if !ok {
			return c.reply(h.reqID, 0, EBADF, 0, nil)
		}
		size, err := d.handle.Size()
		return c.reply(h.reqID, 0, toErrno(err), size, nil)

	case OpFlush:
		for _, d := range c.db.all() {
			d.drain()
		}
		return c.reply(h.reqID, 0, EOK, 0, nil)

	case OpErrPoll:
		d, ok := c.db.lookup(h.fd)
		if !ok {
			return c.reply(h.reqID, 0, EBADF, 0, nil)
		}
		flags, errno := deferredFlags(d)
		return c.reply(h.reqID, flags, errno, 0, nil)
	}
	return c.reply(h.reqID, 0, EINVAL, 0, nil)
}

// handleWrite receives the payload into a BML buffer and executes, queues,
// or stages it per the server mode. start is the dispatch timestamp; the
// recv stage is measured from it to payload-received (BML admission wait
// included — that is the staging back-pressure the paper describes).
func (c *serverConn) handleWrite(h *header, start time.Time) error {
	s := c.srv
	m := s.metrics
	if h.length > MaxPayload {
		return fmt.Errorf("%w: oversized write %d", EINVAL, h.length)
	}
	d, ok := c.db.lookup(h.fd)
	if !ok {
		// Drain the payload to keep the stream in sync.
		if _, err := io.CopyN(io.Discard, c.nc, int64(h.length)); err != nil {
			return err
		}
		return c.reply(h.reqID, 0, EBADF, 0, nil)
	}
	// Receive into a staging buffer. Allocation blocks under the BML cap,
	// which back-pressures the client exactly as the paper describes. With
	// BMLTimeout set, exhaustion instead degrades this write to the
	// synchronous path with an unpooled buffer, so one stalled backend
	// cannot wedge every forwarder on admission forever.
	buf, pooled := s.bml.GetTimeout(int(h.length), s.cfg.BMLTimeout)
	if !pooled {
		buf = make([]byte, h.length)
	}
	putBuf := func() {
		if pooled {
			s.bml.Put(buf)
		}
	}
	if _, err := io.ReadFull(c.nc, buf); err != nil {
		putBuf()
		return err
	}
	recvd := time.Now()
	m.stageRecv.Observe(recvd.Sub(start).Nanoseconds())
	m.writeBytes.Observe(int64(h.length))
	// Forwarding-node data filtering happens before offsets are reserved,
	// so reduced output still lands contiguously under cursor writes.
	if s.cfg.Filters != nil {
		filtered, ferr := s.cfg.Filters.Apply(d.name, int64(h.offset), buf)
		if ferr != nil {
			putBuf()
			return c.reply(h.reqID, 0, toErrno(ferr), 0, nil)
		}
		if len(filtered) > len(buf) {
			putBuf()
			return c.reply(h.reqID, 0, EINVAL, 0, nil)
		}
		if len(filtered) == 0 {
			buf = buf[:0]
		} else if &filtered[0] != &buf[0] || len(filtered) != len(buf) {
			n := copy(buf, filtered)
			buf = buf[:n]
		}
	}
	// Overload shedding happens before the cursor is reserved or anything
	// is staged, so a shed write has no side effect and EAGAIN is safely
	// retryable.
	if s.shouldShed() {
		putBuf()
		m.shed.Inc()
		return c.reply(h.reqID, 0, EAGAIN, 0, nil)
	}
	var off int64
	var opNum uint64
	if h.op == OpPwrite {
		off = int64(h.offset)
		opNum = d.at()
	} else {
		off, opNum = d.nextOffset(int64(len(buf)))
	}
	n := int64(h.length)
	m.bytesWritten.Add(uint64(n))

	// A write that missed staging admission is first offered to the spill
	// tier (when one is configured): the payload is durably logged locally
	// and acknowledged, and the background drainer applies it to the
	// backend later — burst absorption instead of sync collapse. The spill
	// registers with the descriptor's in-flight bookkeeping exactly like a
	// staged op, so reads, fsync, and close drain it and its failure
	// surfaces as a deferred error.
	//
	// Ordering: the spill drainer is a second executor outside the
	// descriptor's scheduler shard, so while any of the descriptor's
	// spilled records are still live in the WAL (replayable by a crash
	// recovery), subsequent writes — pooled or not — also route through
	// the WAL: its per-name FIFO keeps two acknowledged writes to the same
	// offset ordered, both live and across a restart replay.
	if s.cfg.Mode == ModeAsync && s.cfg.Spill != nil && (!pooled || d.spillPending()) {
		d.start()
		d.spillStart()
		serr := s.cfg.Spill.Append(d.name, off, buf,
			func(e error) { d.complete(opNum, e) }, d.spillRelease)
		if serr == nil {
			m.spilled.Inc()
			m.stageSpill.Observe(time.Since(recvd).Nanoseconds())
			putBuf() // the spiller copied the payload into its frame
			// Deferred flags are folded in only after the append landed, so
			// a refused spill leaves the pending error for the fallback
			// reply below to report.
			flags, errno := deferredFlags(d)
			return c.reply(h.reqID, flags|FlagStaged|FlagSpilled, errno, n, nil)
		}
		d.spillRelease()       // undo spillStart: the record never entered the log
		d.complete(opNum, nil) // undo start: ditto
		m.spillRejects.Inc()
		// Refused while older spilled records are still live: this write
		// must not overtake them on the sync or staged path (a recovery
		// replay could also undo it), so wait for the WAL to apply, flush,
		// and truncate them first.
		d.waitSpillReleased()
	}

	// A degraded (unpooled) write always executes synchronously: it must
	// not enter the queue, whose write path returns buffers to the pool.
	if s.cfg.Mode == ModeDirect || !pooled {
		if !pooled {
			m.bmlDegraded.Inc()
		}
		_, err := c.safeWriteAt(d, buf, off)
		m.stageBackend.Observe(time.Since(recvd).Nanoseconds())
		putBuf()
		var flags uint16
		if !pooled {
			flags = FlagDegraded
		}
		return c.reply(h.reqID, flags, toErrno(err), n, nil)
	}

	switch s.cfg.Mode {
	case ModeWorkQueue:
		done := make(chan error, 1)
		if err := s.sched.put(&task{d: d, op: OpWrite, buf: buf, off: off, done: done, enq: recvd}); err != nil {
			s.bml.Put(buf)
			m.queueRejects.Inc()
			return c.reply(h.reqID, 0, toErrno(err), 0, nil)
		}
		err := <-done
		return c.reply(h.reqID, 0, toErrno(err), n, nil)

	case ModeAsync:
		flags, errno := deferredFlags(d)
		d.start()
		if err := s.sched.put(&task{d: d, op: OpWrite, buf: buf, off: off, opNum: opNum, enq: recvd}); err != nil {
			d.complete(opNum, nil) // undo start: the op never entered the queue
			s.bml.Put(buf)
			m.queueRejects.Inc()
			return c.reply(h.reqID, flags, ECLOSED, 0, nil)
		}
		m.staged.Inc()
		return c.reply(h.reqID, flags|FlagStaged, errno, n, nil)
	}
	s.bml.Put(buf)
	return c.reply(h.reqID, 0, EINVAL, 0, nil)
}

// safeWriteAt executes a direct-path backend write, converting a backend
// panic into EIO for this op alone.
func (c *serverConn) safeWriteAt(d *descriptor, buf []byte, off int64) (n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			c.srv.metrics.connPanics.Inc()
			err = fmt.Errorf("%w: handler recovered panic: %v", EIO, r)
		}
	}()
	return d.handle.WriteAt(buf, off)
}

// handleRead executes or queues a read; reads block for the data in every
// mode, and under staging they first drain preceding writes on the
// descriptor so the client observes its own writes.
//
// The reply is zero-copy: the backend reads directly into the payload region
// of a BML-leased reply frame, the response header is encoded into the
// frame's header room, and the whole frame goes out in one connection write
// before the frame returns to the pool — no scratch buffer, no payload copy,
// no separate header write.
func (c *serverConn) handleRead(h *header) error {
	s := c.srv
	m := s.metrics
	if h.length > MaxPayload {
		return fmt.Errorf("%w: oversized read %d", EINVAL, h.length)
	}
	d, ok := c.db.lookup(h.fd)
	if !ok {
		return c.reply(h.reqID, 0, EBADF, 0, nil)
	}
	// A read whose padded reply frame could never be admitted by the staging
	// pool is refused before the cursor moves, instead of panicking in the
	// pool allocator.
	if !s.bml.LeaseFits(int(h.length)) {
		return c.reply(h.reqID, 0, EINVAL, 0, nil)
	}
	// Shed before the cursor moves so a refused read has no side effect.
	if s.shouldShed() {
		m.shed.Inc()
		return c.reply(h.reqID, 0, EAGAIN, 0, nil)
	}
	var off int64
	if h.op == OpPread {
		off = int64(h.offset)
		d.at()
	} else {
		off, _ = d.nextOffset(int64(h.length))
	}
	var flags uint16
	var derrno Errno
	if s.cfg.Mode == ModeAsync {
		d.drain()
		flags, derrno = deferredFlags(d)
	}
	frame := s.bml.Lease(int(h.length))
	buf := frame[headerSize : headerSize+int(h.length)]
	ready := time.Now()
	var n int
	var err error
	if s.cfg.Mode == ModeDirect {
		n, err = c.safeReadAt(d, buf, off)
		m.stageBackend.Observe(time.Since(ready).Nanoseconds())
	} else {
		done := make(chan error, 1)
		t := &task{d: d, op: OpRead, buf: buf, off: off, done: done, enq: ready}
		if qerr := s.sched.put(t); qerr != nil {
			s.bml.Put(frame)
			m.queueRejects.Inc()
			return c.reply(h.reqID, flags, toErrno(qerr), 0, nil)
		}
		err = <-done
		n = t.n
	}
	m.readBytes.Observe(int64(n))
	m.bytesRead.Add(uint64(n))
	errno := toErrno(err)
	if derrno != EOK && errno == EOK {
		errno = derrno
	}
	return c.replyFrame(h.reqID, flags, errno, frame, n)
}

// safeReadAt executes a direct-path backend read, converting a backend
// panic into EIO for this op alone.
func (c *serverConn) safeReadAt(d *descriptor, buf []byte, off int64) (n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			c.srv.metrics.connPanics.Inc()
			err = fmt.Errorf("%w: handler recovered panic: %v", EIO, r)
		}
	}()
	return d.handle.ReadAt(buf, off)
}
