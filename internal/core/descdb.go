package core

import (
	"sync"
	"sync/atomic"
)

// descSeq hands out global descriptor sequence ids. The scheduler hashes
// tasks to shards by sid, so a fresh ticket per open — rather than the
// per-connection fd, which restarts at 3 on every connection — spreads
// descriptors round-robin across shards.
var descSeq atomic.Uint64

// descriptor is one open descriptor in the server's database (paper Section
// IV): it tracks the backing handle, a cursor for sequential operations, an
// operation counter, the set of in-progress staged operations, and the first
// unreported deferred error.
//
// Ordering contract: all of a descriptor's queued operations live on one
// scheduler shard (hashed by sid) and the scheduler never runs two of them
// concurrently, so staged operations execute in opNum order. Offsets are
// still reserved at staging time, and the deferred-error bookkeeping in
// complete() remains exactly-once regardless of execution interleaving — the
// contract makes execution order deterministic, it is not load-bearing for
// data placement.
//
// The spill tier is a second executor outside the shard, so it carries its
// own serialization: while any of the descriptor's spilled records are
// still live in the WAL (spillLive > 0 — appended but not yet released by
// segment truncation), every subsequent write on the descriptor routes
// through the WAL too, whose per-name FIFO preserves order both live and
// across a crash replay. Only when the WAL refuses does the server wait
// for the live records to be released (waitSpillReleased) before letting
// the write reach the backend by the shard or sync path.
type descriptor struct {
	fd     uint64
	sid    uint64 // scheduler shard ticket, from descSeq
	handle Handle
	name   string
	// met, when non-nil, receives in-flight and deferred-error telemetry
	// (shared with the owning server; see internal/core/metrics.go).
	met *serverMetrics

	mu        sync.Mutex
	cursor    int64
	opCounter uint64
	inFlight  int
	spillLive int // spilled records whose durable WAL copy is still live
	completed uint64
	pendErr   error
	pendOp    uint64
	closed    bool
	idle      *sync.Cond // broadcast when inFlight or spillLive drops to zero
}

func newDescriptor(fd uint64, name string, h Handle) *descriptor {
	d := &descriptor{fd: fd, sid: descSeq.Add(1), name: name, handle: h}
	d.idle = sync.NewCond(&d.mu)
	return d
}

// nextOffset reserves n bytes at the sequential cursor and returns the
// operation's offset and counter. Reserving at staging time keeps cursor
// writes correct even when workers complete them out of order.
func (d *descriptor) nextOffset(n int64) (off int64, op uint64) {
	d.mu.Lock()
	off = d.cursor
	d.cursor += n
	d.opCounter++
	op = d.opCounter
	d.mu.Unlock()
	return off, op
}

// at reserves an operation counter for a positional operation.
func (d *descriptor) at() uint64 {
	d.mu.Lock()
	d.opCounter++
	op := d.opCounter
	d.mu.Unlock()
	return op
}

// start records a staged operation beginning. The gauge moves before the
// operation is visible anywhere else.
func (d *descriptor) start() {
	if d.met != nil {
		d.met.inflightStaged.Inc()
	}
	d.mu.Lock()
	d.inFlight++
	d.mu.Unlock()
}

// complete records a staged operation finishing with err. Telemetry moves
// before the idle broadcast so a drain-then-snapshot sequence observes the
// drained state.
func (d *descriptor) complete(op uint64, err error) {
	if d.met != nil {
		d.met.inflightStaged.Dec()
		if err != nil {
			d.met.deferredErrors.Inc()
		}
	}
	d.mu.Lock()
	d.inFlight--
	d.completed++
	if err != nil && d.pendErr == nil {
		d.pendErr = err
		d.pendOp = op
	}
	if d.inFlight == 0 {
		d.idle.Broadcast()
	}
	d.mu.Unlock()
}

// drain blocks until no staged operations are in flight.
func (d *descriptor) drain() {
	d.mu.Lock()
	for d.inFlight > 0 {
		d.idle.Wait()
	}
	d.mu.Unlock()
}

// spillStart records one record entering the spill tier; it stays counted
// until the WAL releases its durable copy (spillRelease). Incremented
// before Append so a release can never be observed before its start.
func (d *descriptor) spillStart() {
	d.mu.Lock()
	d.spillLive++
	d.mu.Unlock()
}

// spillRelease is the WAL's released callback (also used to undo a
// spillStart when Append refuses the record).
func (d *descriptor) spillRelease() {
	d.mu.Lock()
	d.spillLive--
	if d.spillLive == 0 {
		d.idle.Broadcast()
	}
	d.mu.Unlock()
}

// spillPending reports whether any of the descriptor's spilled records are
// still live in the WAL — replayable by a crash recovery, so subsequent
// writes must not reach the backend by another executor.
func (d *descriptor) spillPending() bool {
	d.mu.Lock()
	p := d.spillLive > 0
	d.mu.Unlock()
	return p
}

// waitSpillReleased blocks until the WAL has released every one of the
// descriptor's spilled records (applied, backend-flushed, and their
// segments truncated).
func (d *descriptor) waitSpillReleased() {
	d.mu.Lock()
	for d.spillLive > 0 {
		d.idle.Wait()
	}
	d.mu.Unlock()
}

// takeError returns and clears the deferred error, if any.
func (d *descriptor) takeError() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pendErr == nil {
		return nil
	}
	err := &DeferredError{FD: d.fd, Op: d.pendOp, Err: d.pendErr}
	d.pendErr = nil
	return err
}

// descDB is the per-connection descriptor table.
type descDB struct {
	mu     sync.Mutex
	nextFD uint64
	byFD   map[uint64]*descriptor
	// met, when non-nil, tracks the server-wide open-descriptor gauge and
	// is inherited by every descriptor the table opens.
	met *serverMetrics
}

func newDescDB(met *serverMetrics) *descDB {
	return &descDB{nextFD: 3, byFD: make(map[uint64]*descriptor), met: met}
}

func (db *descDB) open(name string, h Handle) *descriptor {
	db.mu.Lock()
	defer db.mu.Unlock()
	d := newDescriptor(db.nextFD, name, h)
	d.met = db.met
	db.nextFD++
	db.byFD[d.fd] = d
	if db.met != nil {
		db.met.openDescs.Inc()
	}
	return d
}

func (db *descDB) lookup(fd uint64) (*descriptor, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	d, ok := db.byFD[fd]
	if !ok || d.closed {
		return nil, false
	}
	return d, true
}

// remove drops the descriptor from the table; the caller drains it first.
func (db *descDB) remove(fd uint64) {
	db.mu.Lock()
	d, ok := db.byFD[fd]
	if ok {
		d.closed = true
		delete(db.byFD, fd)
	}
	db.mu.Unlock()
	if ok && db.met != nil {
		db.met.openDescs.Dec()
	}
}

// all returns a snapshot of open descriptors.
func (db *descDB) all() []*descriptor {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]*descriptor, 0, len(db.byFD))
	for _, d := range db.byFD {
		out = append(out, d)
	}
	return out
}
