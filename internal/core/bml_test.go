package core

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClassForPowersOfTwo(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{0, 4096}, {1, 4096}, {4096, 4096}, {4097, 8192},
		{8192, 8192}, {10000, 16384}, {1 << 20, 1 << 20}, {(1 << 20) + 1, 2 << 20},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestClassForProperty(t *testing.T) {
	prop := func(n uint16) bool {
		c := classFor(int(n))
		// Power of two, at least the minimum class, and holds n without
		// wasting more than half (above the minimum class).
		if c&(c-1) != 0 || c < minBMLClass || c < int64(n) {
			return false
		}
		return int64(n) <= minBMLClass || c < 2*int64(n)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBMLReuse(t *testing.T) {
	b := NewBML(1 << 20)
	buf := b.Get(5000)
	if len(buf) != 5000 || cap(buf) != 8192 {
		t.Fatalf("len=%d cap=%d", len(buf), cap(buf))
	}
	b.Put(buf)
	buf2 := b.Get(6000)
	if cap(buf2) != 8192 {
		t.Fatalf("second cap %d", cap(buf2))
	}
	st := b.Stats()
	if st.Allocs != 2 || st.Fresh != 1 {
		t.Fatalf("stats %+v, want 2 allocs 1 fresh", st)
	}
	b.Put(buf2)
	if b.Used() != 0 {
		t.Fatalf("used %d after all returned", b.Used())
	}
}

func TestBMLNeverExceedsCapacity(t *testing.T) {
	const capacity = 64 * 1024
	b := NewBML(capacity)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				buf := b.Get(5000)
				if u := b.Used(); u > capacity {
					t.Errorf("used %d exceeds capacity", u)
				}
				time.Sleep(time.Microsecond)
				b.Put(buf)
			}
		}()
	}
	wg.Wait()
	if b.Used() != 0 {
		t.Fatalf("used %d at end", b.Used())
	}
	if st := b.Stats(); st.Peak > capacity {
		t.Fatalf("peak %d exceeds capacity", st.Peak)
	}
}

func TestBMLBlocksUntilPut(t *testing.T) {
	b := NewBML(8192)
	first := b.Get(8000)
	released := make(chan struct{})
	got := make(chan struct{})
	go func() {
		b.Get(8000) // must block: pool is full
		close(got)
	}()
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(released)
		b.Put(first)
	}()
	select {
	case <-got:
		select {
		case <-released:
		default:
			t.Fatal("second Get returned before Put")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second Get never returned")
	}
	if b.Stats().Stalls == 0 {
		t.Fatal("no stall recorded")
	}
}

func TestBMLOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for over-capacity class")
		}
	}()
	NewBML(8192).Get(9000)
}

func TestBMLPutForeignBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-pool buffer")
		}
	}()
	NewBML(8192).Put(make([]byte, 1000))
}
