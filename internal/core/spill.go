package core

// Spiller is the disk-backed overflow tier behind the BML staging pool
// (implemented by internal/wal.Log). When staging-pool admission times out,
// the server offers the write here instead of degrading straight to the
// synchronous path: an accepted record is durably logged and the write is
// acknowledged immediately, burst-buffer style.
//
// Append must either (a) return nil and later invoke done exactly once with
// the terminal backend write's result, or (b) return a non-nil error and
// never invoke done — in which case the server falls back to the
// synchronous degrade path. done may be called from another goroutine; the
// server routes it into the descriptor's deferred-error bookkeeping, so
// spilled writes report failures on a later operation exactly like staged
// ones.
type Spiller interface {
	Append(name string, off int64, data []byte, done func(error)) error
}
