package core

// Spiller is the disk-backed overflow tier behind the BML staging pool
// (implemented by internal/wal.Log). When staging-pool admission times out,
// the server offers the write here instead of degrading straight to the
// synchronous path: an accepted record is durably logged and the write is
// acknowledged immediately, burst-buffer style.
//
// Append must either (a) return nil and later invoke done exactly once with
// the terminal backend write's result, or (b) return a non-nil error and
// never invoke either callback — in which case the server falls back to the
// synchronous degrade path. done may be called from another goroutine; the
// server routes it into the descriptor's deferred-error bookkeeping, so
// spilled writes report failures on a later operation exactly like staged
// ones.
//
// Append may block its caller for a bounded batching window: under group
// commit the record joins a cohort and parks until a leader has made the
// whole cohort durable with one shared fsync. A nil return still means
// exactly what it meant before — this record is durable (to the log's
// configured sync policy) and acknowledged — and the done/released
// callback semantics are unchanged. Callers on a latency-sensitive path
// must treat Append as a potentially-parking call, never as a pure
// enqueue.
//
// released, when non-nil, is invoked at most once, strictly after done,
// when the record's durable copy has left the log (its segment was
// truncated after the backend was flushed). Until it fires, a crash
// recovery could re-apply the record; the server therefore keeps routing
// the descriptor's subsequent writes through the spill tier — whose
// per-name FIFO keeps them ordered, both live and across a replay — rather
// than racing them on another executor (see descriptor ordering contract
// in descdb.go).
type Spiller interface {
	Append(name string, off int64, data []byte, done func(error), released func()) error
}
