package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or d elapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// patternAt is the deterministic byte expected at file offset off in the
// coalescing tests, so replays and merges can be byte-verified.
func patternAt(off int64) byte { return byte(off%251) ^ byte(off>>10) }

func patternChunk(off, n int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = patternAt(off + int64(i))
	}
	return b
}

// TestCongestionAIMDUnit drives the controller directly — no server, no
// clocks to race — and pins down the exact AIMD and RFC 6298 arithmetic.
func TestCongestionAIMDUnit(t *testing.T) {
	cg := newCongestion(WindowConfig{Max: 32, Initial: 1, Beta: 0.5}, &clientMetrics{})

	// Slow start: +1 per ack while cwnd < ssthresh (= Max initially).
	for i := 0; i < 7; i++ {
		cg.onAck(time.Millisecond, true)
	}
	if cwnd, _, _, _ := cg.snapshot(); cwnd != 8 {
		t.Fatalf("after 7 slow-start acks cwnd = %v, want 8", cwnd)
	}

	// Multiplicative decrease, once per epoch: a second signal from an op
	// sent before the decrease is an echo, not new information.
	sent := time.Now()
	cg.onCongestion(sent)
	if cwnd, _, _, _ := cg.snapshot(); cwnd != 4 {
		t.Fatalf("after decrease cwnd = %v, want 4", cwnd)
	}
	cg.onCongestion(sent) // same epoch: filtered
	if cwnd, _, _, _ := cg.snapshot(); cwnd != 4 {
		t.Fatalf("same-epoch signal moved cwnd to %v, want 4", cwnd)
	}
	if got := cg.met.cwndDecreases.Value(); got != 1 {
		t.Fatalf("cwndDecreases = %d, want 1", got)
	}

	// Congestion avoidance past ssthresh: +1/cwnd per ack.
	cg.onAck(time.Millisecond, true)
	if cwnd, _, _, _ := cg.snapshot(); cwnd != 4.25 {
		t.Fatalf("CA ack moved cwnd to %v, want 4.25", cwnd)
	}

	// Floor: repeated decreases in fresh epochs never go below 1.
	for i := 1; i <= 8; i++ {
		cg.onCongestion(time.Now().Add(time.Duration(i) * time.Minute))
	}
	if cwnd, _, _, _ := cg.snapshot(); cwnd != 1 {
		t.Fatalf("floored cwnd = %v, want 1", cwnd)
	}
	cg.mu.Lock()
	if a := cg.allowanceLocked(); a != 1 {
		t.Fatalf("allowance at floor = %d, want 1", a)
	}
	cg.mu.Unlock()
}

// TestCongestionRTTEstimator checks the RFC 6298 EWMA arithmetic exactly,
// including the Karn exclusion of replayed samples.
func TestCongestionRTTEstimator(t *testing.T) {
	cg := newCongestion(WindowConfig{Max: 8, Initial: 1, Beta: 0.5}, &clientMetrics{})

	cg.onAck(10*time.Millisecond, true)
	if _, srtt, rttvar, _ := cg.snapshot(); srtt != 10*time.Millisecond || rttvar != 5*time.Millisecond {
		t.Fatalf("first sample srtt=%v rttvar=%v, want 10ms/5ms", srtt, rttvar)
	}

	// Karn: a replayed op's timestamp straddles a reconnect; no sample.
	cg.onAck(90*time.Millisecond, false)
	if _, srtt, _, _ := cg.snapshot(); srtt != 10*time.Millisecond {
		t.Fatalf("replayed ack moved srtt to %v, want 10ms", srtt)
	}

	// srtt = (7*10 + 18)/8 = 11ms, rttvar = (3*5 + |10-18|)/4 = 5.75ms.
	cg.onAck(18*time.Millisecond, true)
	if _, srtt, rttvar, _ := cg.snapshot(); srtt != 11*time.Millisecond || rttvar != 5750*time.Microsecond {
		t.Fatalf("second sample srtt=%v rttvar=%v, want 11ms/5.75ms", srtt, rttvar)
	}
}

// TestCongestionSlotTransfer checks the acquire/release accounting: a
// release hands the slot to the oldest waiter, and close wakes the parked
// acquirer with the terminal error.
func TestCongestionSlotTransfer(t *testing.T) {
	cg := newCongestion(WindowConfig{Max: 1, Initial: 1, Beta: 0.5}, &clientMetrics{})
	if err := cg.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	got := make(chan error, 1)
	go func() { got <- cg.acquire(context.Background()) }()
	waitFor(t, time.Second, "acquirer to park", func() bool {
		cg.mu.Lock()
		defer cg.mu.Unlock()
		return len(cg.waiters) == 1
	})
	cg.release()
	if err := <-got; err != nil {
		t.Fatalf("granted waiter returned %v", err)
	}
	if _, _, _, inflight := cg.snapshot(); inflight != 1 {
		t.Fatalf("inflight after slot transfer = %d, want 1", inflight)
	}

	terminal := errors.New("terminal")
	go func() { got <- cg.acquire(context.Background()) }()
	waitFor(t, time.Second, "second acquirer to park", func() bool {
		cg.mu.Lock()
		defer cg.mu.Unlock()
		return len(cg.waiters) == 1
	})
	cg.close(terminal)
	if err := <-got; !errors.Is(err, terminal) {
		t.Fatalf("closed waiter returned %v, want %v", err, terminal)
	}
	if err := cg.acquire(context.Background()); !errors.Is(err, terminal) {
		t.Fatalf("acquire after close returned %v, want %v", err, terminal)
	}
}

// TestClientConfigValidate exercises the EINVAL classification of the new
// construction surface.
func TestClientConfigValidate(t *testing.T) {
	good := []ClientConfig{
		{},
		{Timeout: time.Second, MaxRetries: 8, Window: WindowConfig{Max: 64},
			Coalesce: CoalesceConfig{MaxBytes: 1 << 20, MaxOps: 4, Linger: time.Millisecond}},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := map[string]ClientConfig{
		"negative timeout":       {Timeout: -time.Second},
		"negative retries":       {MaxRetries: -1},
		"inverted backoff":       {RetryBase: time.Second, RetryMax: time.Millisecond},
		"beta out of range":      {Window: WindowConfig{Max: 8, Beta: 1.5}},
		"initial above max":      {Window: WindowConfig{Max: 4, Initial: 8}},
		"coalesce sans window":   {Coalesce: CoalesceConfig{MaxBytes: 4096}},
		"linger a second":        {Window: WindowConfig{Max: 8}, Coalesce: CoalesceConfig{MaxBytes: 4096, Linger: time.Second}},
		"oversized merged frame": {Window: WindowConfig{Max: 8}, Coalesce: CoalesceConfig{MaxBytes: MaxPayload + 1}},
	}
	for name, cfg := range bad {
		if err := cfg.Validate(); !errors.Is(err, EINVAL) {
			t.Errorf("%s: Validate() = %v, want EINVAL", name, err)
		}
	}
}

// capacityServer speaks just enough of the wire protocol to act as a
// fixed-capacity service: OpOpen hands out a descriptor, OpPwrite takes one
// of `capacity` service slots for `service` and acks, or is shed with
// EAGAIN the instant all slots are busy. It is the deterministic congestion
// source for the AIMD convergence test: the knee is exactly `capacity`
// concurrent operations, with none of the real server's queueing slack.
type capacityServer struct {
	l        net.Listener
	slots    chan struct{}
	service  time.Duration
	sheds    atomic.Int64
	served   atomic.Int64
	shutdown atomic.Bool
}

func (s *capacityServer) run() {
	for {
		nc, err := s.l.Accept()
		if err != nil {
			return
		}
		go s.serve(nc)
	}
}

func (s *capacityServer) serve(nc net.Conn) {
	defer nc.Close()
	var wmu sync.Mutex
	reply := func(op Op, reqID uint64, errno Errno, value uint64) {
		h := header{op: op, reqID: reqID, offset: value, pathLen: uint16(errno)}
		wmu.Lock()
		_ = writeFrame(nc, &h)
		wmu.Unlock()
	}
	var h header
	for {
		if err := readHeader(nc, &h); err != nil {
			return
		}
		if h.pathLen > 0 {
			if _, err := io.CopyN(io.Discard, nc, int64(h.pathLen)); err != nil {
				return
			}
		}
		if (h.op == OpWrite || h.op == OpPwrite) && h.length > 0 {
			if _, err := io.CopyN(io.Discard, nc, int64(h.length)); err != nil {
				return
			}
		}
		switch h.op {
		case OpOpen:
			reply(h.op, h.reqID, EOK, 1)
		case OpPwrite:
			select {
			case s.slots <- struct{}{}:
				go func(op Op, reqID uint64, length uint32) {
					time.Sleep(s.service)
					<-s.slots
					s.served.Add(1)
					reply(op, reqID, EOK, uint64(length))
				}(h.op, h.reqID, h.length)
			default:
				s.sheds.Add(1)
				reply(h.op, h.reqID, EAGAIN, 0)
			}
		default:
			reply(h.op, h.reqID, EOK, 0)
		}
	}
}

// TestAIMDConvergence runs the adaptive client against a fixed-capacity
// server and checks that the window settles onto the service capacity: the
// late-phase sawtooth peaks at the shed knee (capacity + 1, the first
// admission the server cannot hold) instead of climbing to Window.Max, and
// the steady state is not an EAGAIN storm.
func TestAIMDConvergence(t *testing.T) {
	const (
		capacity = 8
		service  = time.Millisecond
		workers  = 24
		runFor   = 800 * time.Millisecond
	)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fs := &capacityServer{l: l, slots: make(chan struct{}, capacity), service: service}
	go fs.run()

	ctx := context.Background()
	cfg := ClientConfig{
		Timeout:    10 * time.Second,
		MaxRetries: 10000,
		RetryBase:  500 * time.Microsecond,
		RetryMax:   4 * time.Millisecond,
		Seed:       42,
		Window:     WindowConfig{Max: 64},
	}
	c, err := cfg.Dial(ctx, "tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Open(ctx, "conv")
	if err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	var completed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 512)
			off := int64(w) << 20
			for !done.Load() {
				if _, err := f.WriteAt(buf, off); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				completed.Add(1)
			}
		}(w)
	}

	type sample struct {
		cwnd    float64
		retries uint64
		ops     int64
	}
	var samples []sample
	tick := time.NewTicker(2 * time.Millisecond)
	deadline := time.Now().Add(runFor)
	for time.Now().Before(deadline) {
		<-tick.C
		s := c.Stats()
		samples = append(samples, sample{s.Cwnd, s.Retries, completed.Load()})
	}
	tick.Stop()
	done.Store(true)
	wg.Wait()

	late := samples[len(samples)/2:]
	var maxLate, sumLate float64
	for _, s := range late {
		if s.cwnd > maxLate {
			maxLate = s.cwnd
		}
		sumLate += s.cwnd
	}
	avgLate := sumLate / float64(len(late))
	lateOps := late[len(late)-1].ops - late[0].ops
	lateRetries := late[len(late)-1].retries - late[0].retries
	st := c.Stats()
	t.Logf("completed=%d served=%d sheds=%d decreases=%d lateMax=%.1f lateAvg=%.1f lateSheds=%d/%d srtt=%v",
		completed.Load(), fs.served.Load(), fs.sheds.Load(), st.CwndDecreases,
		maxLate, avgLate, lateRetries, lateOps, st.SRTT)

	// The sawtooth peak is the shed knee: capacity+1 admissions, give or
	// take the op already acked but not yet released. Far below Window.Max.
	if int(maxLate) < capacity-1 || int(maxLate) > capacity+4 {
		t.Errorf("late-phase peak cwnd %.1f outside [%d, %d]; window did not settle on capacity %d",
			maxLate, capacity-1, capacity+4, capacity)
	}
	// The trough after a Beta=0.5 decrease from the knee is ~capacity/2;
	// the average must sit between trough and knee, not at 1 or at Max.
	if avgLate < float64(capacity)/2-1 || avgLate > float64(capacity)+2 {
		t.Errorf("late-phase mean cwnd %.1f outside [%.1f, %d]", avgLate, float64(capacity)/2-1, capacity+2)
	}
	// Steady state probes the knee roughly once per sawtooth cycle: a few
	// percent of operations, not the shed-majority of fixed backoff.
	if lateOps > 0 && float64(lateRetries) > 0.2*float64(lateOps) {
		t.Errorf("late-phase shed rate %d/%d above 20%%: still an EAGAIN storm", lateRetries, lateOps)
	}
	if st.CwndDecreases == 0 {
		t.Error("no multiplicative decreases recorded; the controller never found the knee")
	}
	if st.SRTT <= 0 || st.SRTT > 250*time.Millisecond {
		t.Errorf("srtt %v implausible for a %v service time", st.SRTT, service)
	}
	if completed.Load() < 1000 {
		t.Errorf("only %d ops completed; expected thousands at capacity %d / service %v",
			completed.Load(), capacity, service)
	}
}

// countingBackend counts terminal WriteAt calls so a test can assert how
// many wire writes actually reached the backend.
type countingBackend struct {
	inner  Backend
	writes atomic.Int64
}

func (b *countingBackend) Open(name string, create bool) (Handle, error) {
	h, err := b.inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &countingHandle{b: b, inner: h}, nil
}

type countingHandle struct {
	b     *countingBackend
	inner Handle
}

func (h *countingHandle) WriteAt(p []byte, off int64) (int, error) {
	h.b.writes.Add(1)
	return h.inner.WriteAt(p, off)
}
func (h *countingHandle) ReadAt(p []byte, off int64) (int, error) { return h.inner.ReadAt(p, off) }
func (h *countingHandle) Sync() error                             { return h.inner.Sync() }
func (h *countingHandle) Size() (int64, error)                    { return h.inner.Size() }
func (h *countingHandle) Close() error                            { return h.inner.Close() }

// TestCoalesceMergesAdjacentWrites pins the merge mechanics: with the
// window full (one gated write holding the single slot), three adjacent
// writes from three goroutines must ride one wire operation — two follower
// joins, one leader — and come back with their exact per-sub counts.
func TestCoalesceMergesAdjacentWrites(t *testing.T) {
	const chunk = 4096
	mem := NewMemBackend()
	counting := &countingBackend{inner: mem}
	gate := &gateBackend{inner: counting, release: make(chan struct{})}
	srv := NewServer(Config{Backend: gate})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	defer l.Close()

	ctx := context.Background()
	cfg := ClientConfig{
		Timeout: 10 * time.Second,
		Window:  WindowConfig{Max: 1},
		// MaxOps 3 seals the buffer the moment the third sub joins, so the
		// merged frame goes out on a deterministic trigger, not the linger
		// timer; the long linger only backstops scheduler stalls.
		Coalesce: CoalesceConfig{MaxBytes: 1 << 20, MaxOps: 3, Linger: 800 * time.Millisecond},
	}
	c, err := cfg.Dial(ctx, "tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Open(ctx, "merge")
	if err != nil {
		t.Fatal(err)
	}

	write := func(i int64) chan error {
		ch := make(chan error, 1)
		go func() {
			n, err := f.WriteAt(patternChunk(i*chunk, chunk), i*chunk)
			if err == nil && n != chunk {
				err = errors.New("short write")
			}
			ch <- err
		}()
		return ch
	}

	// w0 takes the only window slot and parks on the backend gate.
	w0 := write(0)
	waitFor(t, 2*time.Second, "gated write to hold the window slot", func() bool {
		return c.Stats().Inflight == 1
	})
	// w1 finds the window full and nothing to extend: it opens the buffer.
	w1 := write(1)
	time.Sleep(30 * time.Millisecond)
	// w2 and w3 extend it; each join ticks the coalesced counter.
	w2 := write(2)
	waitFor(t, 2*time.Second, "second write to join the merge buffer", func() bool {
		return c.Stats().CoalescedWrites >= 1
	})
	w3 := write(3)
	waitFor(t, 2*time.Second, "third write to join the merge buffer", func() bool {
		return c.Stats().CoalescedWrites >= 2
	})

	close(gate.release)
	for i, ch := range []chan error{w0, w1, w2, w3} {
		if err := <-ch; err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}

	if got := counting.writes.Load(); got != 2 {
		t.Errorf("backend saw %d writes, want 2 (the gated write plus one merged frame)", got)
	}
	if got := c.Stats().CoalescedWrites; got != 2 {
		t.Errorf("CoalescedWrites = %d, want 2 (followers only; the leader is not a merge)", got)
	}
	got, ok := mem.Bytes("merge")
	if !ok || len(got) != 4*chunk {
		t.Fatalf("backend object length %d, want %d", len(got), 4*chunk)
	}
	if want := patternChunk(0, 4*chunk); !bytes.Equal(got, want) {
		t.Error("merged write corrupted the byte pattern")
	}
	// Read back through the client too: the coalescer must be invisible to
	// the read path.
	rb := make([]byte, 4*chunk)
	if _, err := f.ReadAtCtx(ctx, rb, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb, patternChunk(0, 4*chunk)) {
		t.Error("readback mismatch after merge")
	}
}

// TestCoalescedWritesSurviveConnectionDrops is the chaos half of the
// coalescing contract: under a full window, concurrent writers allocating
// adjacent offsets merge opportunistically, a dropper kills the transport
// every 20ms, and every byte must still land exactly once — merged frames
// are plain idempotent Pwrites, replayed verbatim across reconnects.
func TestCoalescedWritesSurviveConnectionDrops(t *testing.T) {
	const (
		chunk   = int64(1024)
		chunks  = 768
		writers = 8
	)
	mem := NewMemBackend()
	srv := NewServer(Config{
		Mode: ModeAsync, Workers: 2, Batch: 4,
		Backend: &slowBackend{inner: mem, delay: 100 * time.Microsecond},
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	defer l.Close()

	ctx := context.Background()
	cfg := ClientConfig{
		Timeout:           10 * time.Second,
		MaxRetries:        64,
		RetryBase:         time.Millisecond,
		RetryMax:          10 * time.Millisecond,
		ReconnectAttempts: 64,
		Seed:              23,
		Window:            WindowConfig{Max: 2},
		Coalesce:          CoalesceConfig{MaxBytes: 32 << 10, MaxOps: 8, Linger: 2 * time.Millisecond},
	}
	c, err := cfg.Dial(ctx, "tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Open(ctx, "drop")
	if err != nil {
		t.Fatal(err)
	}

	stopDrop := make(chan struct{})
	var dropWG sync.WaitGroup
	dropWG.Add(1)
	go func() {
		defer dropWG.Done()
		tk := time.NewTicker(20 * time.Millisecond)
		defer tk.Stop()
		for {
			select {
			case <-stopDrop:
				return
			case <-tk.C:
				c.DropConnection()
			}
		}
	}()

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= chunks {
					return
				}
				off := i * chunk
				n, err := f.WriteAt(patternChunk(off, chunk), off)
				if err != nil {
					t.Errorf("chunk %d: %v", i, err)
					return
				}
				if int64(n) != chunk {
					t.Errorf("chunk %d: short write %d", i, n)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stopDrop)
	dropWG.Wait()

	if err := c.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Writes staged on connections the dropper killed drain as those
	// connections are torn down server-side; give that teardown a moment.
	want := patternChunk(0, chunks*chunk)
	waitFor(t, 5*time.Second, "every chunk to land in the backend", func() bool {
		got, ok := mem.Bytes("drop")
		return ok && len(got) == len(want) && bytes.Equal(got, want)
	})

	st := c.Stats()
	t.Logf("reconnects=%d replays=%d coalesced=%d retries=%d cwnd=%.1f",
		st.Reconnects, st.Replays, st.CoalescedWrites, st.Retries, st.Cwnd)
	if st.Reconnects == 0 {
		t.Error("dropper ran but the client never reconnected")
	}
	if st.CoalescedWrites == 0 {
		t.Error("no merges under a full window with adjacent concurrent writers")
	}
	// The deprecated Metrics 5-tuple must stay positionally identical to
	// Stats now that the client is quiescent.
	r, to, rc, rp, lost := c.Metrics()
	s2 := c.Stats()
	if r != s2.Retries || to != s2.Timeouts || rc != s2.Reconnects || rp != s2.Replays || lost != s2.LostOps {
		t.Errorf("Metrics() = (%d,%d,%d,%d,%d) disagrees with Stats() %+v", r, to, rc, rp, lost, s2)
	}
}

// TestCursorWriteFailsFastWithCoalescing: coalescing and the window must
// not change the non-idempotent contract — an in-flight cursor write caught
// by a connection failure fails with ErrConnectionLost instead of being
// replayed, while the descriptor itself survives the reconnect.
func TestCursorWriteFailsFastWithCoalescing(t *testing.T) {
	mem := NewMemBackend()
	gate := &gateBackend{inner: mem, release: make(chan struct{})}
	srv := NewServer(Config{Backend: gate})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	defer l.Close()

	ctx := context.Background()
	cfg := ClientConfig{
		Timeout:           10 * time.Second,
		ReconnectAttempts: 8,
		Window:            WindowConfig{Max: 4},
		Coalesce:          CoalesceConfig{MaxBytes: 1 << 20, MaxOps: 8, Linger: time.Millisecond},
	}
	c, err := cfg.Dial(ctx, "tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Open(ctx, "cursor")
	if err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 1)
	go func() {
		_, err := f.Write(make([]byte, 512))
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the cursor write reach the gate
	c.DropConnection()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrConnectionLost) {
			t.Fatalf("cursor write returned %v, want ErrConnectionLost", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cursor write did not fail fast after the drop")
	}

	close(gate.release)
	// The reconnect re-opened the descriptor: positional writes work again.
	if _, err := f.WriteAt(patternChunk(0, 512), 0); err != nil {
		t.Fatalf("positional write after reconnect: %v", err)
	}
}

// TestCtxCancelInFlightOp: canceling the caller's context while the
// operation is parked at the server returns context.Canceled promptly,
// the client stays usable, and nothing leaks.
func TestCtxCancelInFlightOp(t *testing.T) {
	before := runtime.NumGoroutine()
	mem := NewMemBackend()
	gate := &gateBackend{inner: mem, release: make(chan struct{})}
	srv := NewServer(Config{Backend: gate})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()

	c, err := ClientConfig{}.Dial(context.Background(), "tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Open(context.Background(), "cancel")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := f.WriteAtCtx(ctx, make([]byte, 256), 0)
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond) // the write is at the server, parked on the gate
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled op returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled op did not return")
	}

	// The abandoned response is dropped on arrival; the client keeps going.
	close(gate.release)
	if _, err := f.WriteAt(make([]byte, 256), 4096); err != nil {
		t.Fatalf("write after cancellation: %v", err)
	}

	_ = c.Close()
	srv.Close()
	_ = l.Close()
	waitFor(t, 2*time.Second, "goroutines to drain after close", func() bool {
		return runtime.NumGoroutine() <= before+2
	})
}

// TestCtxCancelWindowWait: a caller parked on window admission can be
// canceled (or time out via ErrOpTimeout) without corrupting the slot
// accounting — the slot the canceled caller never got still flows to later
// operations.
func TestCtxCancelWindowWait(t *testing.T) {
	const chunk = 512
	mem := NewMemBackend()
	gate := &gateBackend{inner: mem, release: make(chan struct{})}
	srv := NewServer(Config{Backend: gate})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	defer l.Close()

	ctx := context.Background()
	cfg := ClientConfig{Window: WindowConfig{Max: 1}}
	c, err := cfg.Dial(ctx, "tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Open(ctx, "slot")
	if err != nil {
		t.Fatal(err)
	}

	w0 := make(chan error, 1)
	go func() {
		_, err := f.WriteAt(make([]byte, chunk), 0)
		w0 <- err
	}()
	waitFor(t, 2*time.Second, "gated write to hold the window slot", func() bool {
		return c.Stats().Inflight == 1
	})

	cancelCtx, cancel := context.WithCancel(ctx)
	w1 := make(chan error, 1)
	go func() {
		_, err := f.WriteAtCtx(cancelCtx, make([]byte, chunk), chunk)
		w1 <- err
	}()
	waitFor(t, 2*time.Second, "second write to park on admission", func() bool {
		c.cg.mu.Lock()
		defer c.cg.mu.Unlock()
		return len(c.cg.waiters) == 1
	})
	cancel()
	if err := <-w1; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled admission wait returned %v, want context.Canceled", err)
	}

	// Deadline flavor: the wait maps to ErrOpTimeout and DeadlineExceeded.
	dlCtx, dlCancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer dlCancel()
	_, err = f.WriteAtCtx(dlCtx, make([]byte, chunk), 2*chunk)
	if !errors.Is(err, ErrOpTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline on admission wait returned %v, want ErrOpTimeout wrapping DeadlineExceeded", err)
	}

	close(gate.release)
	if err := <-w0; err != nil {
		t.Fatalf("gated write: %v", err)
	}
	// Slot accounting survived both abandoned waits.
	if _, err := f.WriteAt(make([]byte, chunk), 3*chunk); err != nil {
		t.Fatalf("write after abandoned waits: %v", err)
	}
	waitFor(t, 2*time.Second, "inflight to drain", func() bool {
		return c.Stats().Inflight == 0
	})
}
