package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeSpill is a controllable Spiller: it records appends and lets the test
// decide when (and with what error) each drain completes.
type fakeSpill struct {
	mu      sync.Mutex
	refuse  error // returned from Append when non-nil (done never called)
	appends []spillRec
}

type spillRec struct {
	name string
	off  int64
	data []byte
	done func(error)
}

func (f *fakeSpill) Append(name string, off int64, data []byte, done func(error)) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refuse != nil {
		return f.refuse
	}
	f.appends = append(f.appends, spillRec{name, off, append([]byte(nil), data...), done})
	return nil
}

func (f *fakeSpill) take(t *testing.T, i int) spillRec {
	t.Helper()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.appends) <= i {
		t.Fatalf("spiller saw %d appends, want at least %d", len(f.appends), i+1)
	}
	return f.appends[i]
}

// spillPair builds an async server whose one-class BML the test can plug, so
// a write deterministically misses admission and takes the spill (or
// degrade) path.
func spillPair(t *testing.T, fs *fakeSpill) (*Client, *Server) {
	t.Helper()
	cfg := Config{
		Mode:       ModeAsync,
		Workers:    1,
		BMLBytes:   minBMLClass,
		BMLTimeout: time.Millisecond,
		Backend:    NewMemBackend(),
	}
	if fs != nil {
		cfg.Spill = fs
	}
	c, s := pipePair(t, cfg)
	plug := s.bml.Get(minBMLClass)
	t.Cleanup(func() { s.bml.Put(plug) })
	return c, s
}

func TestSpillAbsorbsAdmissionMiss(t *testing.T) {
	fs := &fakeSpill{}
	c, s := spillPair(t, fs)
	f, err := c.Open("burst")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xab}, minBMLClass)
	if n, err := f.WriteAt(payload, 128); err != nil || n != len(payload) {
		t.Fatalf("spilled write: n=%d err=%v", n, err)
	}
	st := s.Stats()
	if st.Spilled != 1 || st.Degraded != 0 {
		t.Fatalf("stats: spilled=%d degraded=%d, want 1/0", st.Spilled, st.Degraded)
	}
	rec := fs.take(t, 0)
	if rec.name != "burst" || rec.off != 128 || !bytes.Equal(rec.data, payload) {
		t.Fatalf("spiller saw name=%q off=%d len=%d", rec.name, rec.off, len(rec.data))
	}
	// The op is in flight until the drainer reports; fsync must then see a
	// clean descriptor.
	rec.done(nil)
	if err := f.Sync(); err != nil {
		t.Fatalf("fsync after drain: %v", err)
	}
}

func TestSpillDrainFailureIsDeferred(t *testing.T) {
	fs := &fakeSpill{}
	c, s := spillPair(t, fs)
	f, err := c.Open("burst")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5c}, minBMLClass)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatalf("spilled write acked with error: %v", err)
	}
	fs.take(t, 0).done(EIO)
	if err := f.Sync(); !errors.Is(err, EIO) {
		t.Fatalf("fsync after failed drain: %v, want EIO", err)
	}
	// Exactly once: the next fsync is clean.
	if err := f.Sync(); err != nil {
		t.Fatalf("second fsync: %v", err)
	}
	if v := s.metrics.deferredErrors.Value(); v != 1 {
		t.Fatalf("deferred errors %d, want 1", v)
	}
}

func TestSpillRefusalFallsBackToDegrade(t *testing.T) {
	fs := &fakeSpill{refuse: errors.New("wal full")}
	c, s := spillPair(t, fs)
	f, err := c.Open("burst")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x11}, minBMLClass)
	if n, err := f.WriteAt(payload, 0); err != nil || n != len(payload) {
		t.Fatalf("degraded write: n=%d err=%v", n, err)
	}
	st := s.Stats()
	if st.Spilled != 0 || st.Degraded != 1 {
		t.Fatalf("stats: spilled=%d degraded=%d, want 0/1", st.Spilled, st.Degraded)
	}
	if v := s.metrics.spillRejects.Value(); v != 1 {
		t.Fatalf("spill rejects %d, want 1", v)
	}
	// The degraded path is synchronous: the bytes are already on the backend.
	got, ok := s.cfg.Backend.(*MemBackend).Bytes("burst")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("degraded write not on backend (ok=%v len=%d)", ok, len(got))
	}
	// No spill completion is pending, so fsync returns immediately clean.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestStageAttribution pins where write latency is charged: a degraded
// (sync-path) write observes the backend stage histogram, a spilled write
// observes the spill stage and leaves the backend stage alone.
func TestStageAttribution(t *testing.T) {
	t.Run("degrade", func(t *testing.T) {
		c, s := spillPair(t, nil) // no spiller: admission miss degrades
		f, err := c.Open("burst")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(bytes.Repeat([]byte{1}, minBMLClass), 0); err != nil {
			t.Fatal(err)
		}
		m := s.metrics
		if m.stageBackend.Count() != 1 || m.stageSpill.Count() != 0 {
			t.Fatalf("degrade: backend stage %d spill stage %d, want 1/0",
				m.stageBackend.Count(), m.stageSpill.Count())
		}
		if m.bmlDegraded.Value() != 1 {
			t.Fatalf("degraded counter %d, want 1", m.bmlDegraded.Value())
		}
	})
	t.Run("spill", func(t *testing.T) {
		fs := &fakeSpill{}
		c, s := spillPair(t, fs)
		f, err := c.Open("burst")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(bytes.Repeat([]byte{2}, minBMLClass), 0); err != nil {
			t.Fatal(err)
		}
		m := s.metrics
		if m.stageSpill.Count() != 1 || m.stageBackend.Count() != 0 {
			t.Fatalf("spill: spill stage %d backend stage %d, want 1/0",
				m.stageSpill.Count(), m.stageBackend.Count())
		}
		if m.bmlDegraded.Value() != 0 {
			t.Fatalf("spilled write counted as degraded (%d)", m.bmlDegraded.Value())
		}
		fs.take(t, 0).done(nil)
	})
}
