package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeSpill is a controllable Spiller: it records appends and lets the test
// decide when (and with what error) each drain completes.
type fakeSpill struct {
	mu      sync.Mutex
	refuse  error // returned from Append when non-nil (done never called)
	appends []spillRec
}

type spillRec struct {
	name     string
	off      int64
	data     []byte
	done     func(error)
	released func()
}

func (f *fakeSpill) Append(name string, off int64, data []byte, done func(error), released func()) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refuse != nil {
		return f.refuse
	}
	f.appends = append(f.appends, spillRec{name, off, append([]byte(nil), data...), done, released})
	return nil
}

func (f *fakeSpill) take(t *testing.T, i int) spillRec {
	t.Helper()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.appends) <= i {
		t.Fatalf("spiller saw %d appends, want at least %d", len(f.appends), i+1)
	}
	return f.appends[i]
}

// spillPair builds an async server whose one-class BML the test can plug, so
// a write deterministically misses admission and takes the spill (or
// degrade) path.
func spillPair(t *testing.T, fs *fakeSpill) (*Client, *Server) {
	t.Helper()
	cfg := Config{
		Mode:       ModeAsync,
		Workers:    1,
		BMLBytes:   minBMLClass,
		BMLTimeout: time.Millisecond,
		Backend:    NewMemBackend(),
	}
	if fs != nil {
		cfg.Spill = fs
	}
	c, s := pipePair(t, cfg)
	plug := s.bml.Get(minBMLClass)
	t.Cleanup(func() { s.bml.Put(plug) })
	return c, s
}

func TestSpillAbsorbsAdmissionMiss(t *testing.T) {
	fs := &fakeSpill{}
	c, s := spillPair(t, fs)
	f, err := c.Open(context.Background(), "burst")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xab}, minBMLClass)
	if n, err := f.WriteAt(payload, 128); err != nil || n != len(payload) {
		t.Fatalf("spilled write: n=%d err=%v", n, err)
	}
	st := s.Stats()
	if st.Spilled != 1 || st.Degraded != 0 {
		t.Fatalf("stats: spilled=%d degraded=%d, want 1/0", st.Spilled, st.Degraded)
	}
	rec := fs.take(t, 0)
	if rec.name != "burst" || rec.off != 128 || !bytes.Equal(rec.data, payload) {
		t.Fatalf("spiller saw name=%q off=%d len=%d", rec.name, rec.off, len(rec.data))
	}
	// The op is in flight until the drainer reports; fsync must then see a
	// clean descriptor.
	rec.done(nil)
	if err := f.Sync(); err != nil {
		t.Fatalf("fsync after drain: %v", err)
	}
}

func TestSpillDrainFailureIsDeferred(t *testing.T) {
	fs := &fakeSpill{}
	c, s := spillPair(t, fs)
	f, err := c.Open(context.Background(), "burst")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5c}, minBMLClass)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatalf("spilled write acked with error: %v", err)
	}
	fs.take(t, 0).done(EIO)
	if err := f.Sync(); !errors.Is(err, EIO) {
		t.Fatalf("fsync after failed drain: %v, want EIO", err)
	}
	// Exactly once: the next fsync is clean.
	if err := f.Sync(); err != nil {
		t.Fatalf("second fsync: %v", err)
	}
	if v := s.metrics.deferredErrors.Value(); v != 1 {
		t.Fatalf("deferred errors %d, want 1", v)
	}
}

func TestSpillRefusalFallsBackToDegrade(t *testing.T) {
	fs := &fakeSpill{refuse: errors.New("wal full")}
	c, s := spillPair(t, fs)
	f, err := c.Open(context.Background(), "burst")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x11}, minBMLClass)
	if n, err := f.WriteAt(payload, 0); err != nil || n != len(payload) {
		t.Fatalf("degraded write: n=%d err=%v", n, err)
	}
	st := s.Stats()
	if st.Spilled != 0 || st.Degraded != 1 {
		t.Fatalf("stats: spilled=%d degraded=%d, want 0/1", st.Spilled, st.Degraded)
	}
	if v := s.metrics.spillRejects.Value(); v != 1 {
		t.Fatalf("spill rejects %d, want 1", v)
	}
	// The degraded path is synchronous: the bytes are already on the backend.
	got, ok := s.cfg.Backend.(*MemBackend).Bytes("burst")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("degraded write not on backend (ok=%v len=%d)", ok, len(got))
	}
	// No spill completion is pending, so fsync returns immediately clean.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestSpillOrderingSerializesWithWAL pins the descriptor ordering contract
// across the spill tier's second executor: while any spilled record is
// still live in the WAL (not yet released by segment truncation), a
// subsequent write on the same descriptor must (a) route through the WAL
// too, even when BML admission succeeds, and (b) if the WAL refuses it,
// wait for the live records to be released before touching the backend by
// the sync path — otherwise two acknowledged writes to one offset could be
// applied inverted, or a crash replay could overwrite the newer one.
func TestSpillOrderingSerializesWithWAL(t *testing.T) {
	fs := &fakeSpill{}
	cfg := Config{
		Mode:       ModeAsync,
		Workers:    1,
		BMLBytes:   minBMLClass,
		BMLTimeout: time.Millisecond,
		Backend:    NewMemBackend(),
		Spill:      fs,
	}
	c, s := pipePair(t, cfg)
	f, err := c.Open(context.Background(), "burst")
	if err != nil {
		t.Fatal(err)
	}
	apply := func(rec spillRec) {
		h, err := s.cfg.Backend.Open(rec.name, true)
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		if _, err := h.WriteAt(rec.data, rec.off); err != nil {
			t.Fatal(err)
		}
	}

	// Write 1 misses admission (BML plugged) and spills.
	plug := s.bml.Get(minBMLClass)
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xa1}, minBMLClass), 0); err != nil {
		t.Fatal(err)
	}
	rec0 := fs.take(t, 0)

	// Write 2 would be admitted (BML free again), but record 1 is still
	// live in the WAL: it must route through the spiller, not the shard.
	s.bml.Put(plug)
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xb2}, minBMLClass), 0); err != nil {
		t.Fatal(err)
	}
	rec1 := fs.take(t, 1)
	if st := s.Stats(); st.Spilled != 2 || st.StagedWrites != 0 {
		t.Fatalf("stats: spilled=%d staged=%d, want 2/0", st.Spilled, st.StagedWrites)
	}

	// Write 3 is refused by the WAL while records 1 and 2 are still live:
	// the fallback must wait for their release before writing through.
	fs.mu.Lock()
	fs.refuse = errors.New("wal full")
	fs.mu.Unlock()
	final := bytes.Repeat([]byte{0xc3}, minBMLClass)
	done := make(chan error, 1)
	go func() {
		_, err := f.WriteAt(final, 0)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("refused write completed (err=%v) while spilled records were live", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Drain the WAL: apply, report, release — in append order. Only after
	// the last release may write 3 reach the backend.
	for _, rec := range []spillRec{rec0, rec1} {
		apply(rec)
		rec.done(nil)
		rec.released()
	}
	if err := <-done; err != nil {
		t.Fatalf("write after release: %v", err)
	}
	// Write 3 was admitted (pooled) after the wait, so it went down the
	// staged path: drain it before inspecting the backend.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	got, ok := s.cfg.Backend.(*MemBackend).Bytes("burst")
	if !ok || !bytes.Equal(got, final) {
		t.Fatalf("backend holds stale bytes (ok=%v first=%#x), want the last write", ok, got[0])
	}
}

// TestStageAttribution pins where write latency is charged: a degraded
// (sync-path) write observes the backend stage histogram, a spilled write
// observes the spill stage and leaves the backend stage alone.
func TestStageAttribution(t *testing.T) {
	t.Run("degrade", func(t *testing.T) {
		c, s := spillPair(t, nil) // no spiller: admission miss degrades
		f, err := c.Open(context.Background(), "burst")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(bytes.Repeat([]byte{1}, minBMLClass), 0); err != nil {
			t.Fatal(err)
		}
		m := s.metrics
		if m.stageBackend.Count() != 1 || m.stageSpill.Count() != 0 {
			t.Fatalf("degrade: backend stage %d spill stage %d, want 1/0",
				m.stageBackend.Count(), m.stageSpill.Count())
		}
		if m.bmlDegraded.Value() != 1 {
			t.Fatalf("degraded counter %d, want 1", m.bmlDegraded.Value())
		}
	})
	t.Run("spill", func(t *testing.T) {
		fs := &fakeSpill{}
		c, s := spillPair(t, fs)
		f, err := c.Open(context.Background(), "burst")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(bytes.Repeat([]byte{2}, minBMLClass), 0); err != nil {
			t.Fatal(err)
		}
		m := s.metrics
		if m.stageSpill.Count() != 1 || m.stageBackend.Count() != 0 {
			t.Fatalf("spill: spill stage %d backend stage %d, want 1/0",
				m.stageSpill.Count(), m.stageBackend.Count())
		}
		if m.bmlDegraded.Value() != 0 {
			t.Fatalf("spilled write counted as degraded (%d)", m.bmlDegraded.Value())
		}
		fs.take(t, 0).done(nil)
	})
}
