package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// orderHandle records the opNum encoded in each written payload, in
// execution order.
type orderHandle struct {
	mu   sync.Mutex
	seen []uint64
}

func (h *orderHandle) WriteAt(b []byte, off int64) (int, error) {
	h.mu.Lock()
	h.seen = append(h.seen, binary.BigEndian.Uint64(b))
	h.mu.Unlock()
	return len(b), nil
}
func (h *orderHandle) ReadAt(b []byte, off int64) (int, error) { return len(b), nil }
func (h *orderHandle) Sync() error                             { return nil }
func (h *orderHandle) Size() (int64, error)                    { return 0, nil }
func (h *orderHandle) Close() error                            { return nil }

// TestShardOrderingPerDescriptor floods one descriptor with staged writes
// while sibling descriptors keep every other shard busy: the hot
// descriptor's operations must execute in opNum order even though idle
// workers are stealing around it.
func TestShardOrderingPerDescriptor(t *testing.T) {
	srv := NewServer(Config{Mode: ModeAsync, Workers: 4, Shards: 4, Batch: 4})
	defer srv.Close()

	hot := newDescriptor(3, "hot", &orderHandle{})
	const ops = 200
	for i := 1; i <= ops; i++ {
		buf := srv.bml.Get(8)
		binary.BigEndian.PutUint64(buf, uint64(i))
		hot.start()
		if err := srv.sched.put(&task{d: hot, op: OpWrite, buf: buf, off: 0, opNum: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		// Interleave noise on other descriptors so steals actually happen.
		if i%4 == 0 {
			noise := newDescriptor(uint64(100+i), "noise", &orderHandle{})
			nb := srv.bml.Get(8)
			done := make(chan error, 1)
			if err := srv.sched.put(&task{d: noise, op: OpWrite, buf: nb, off: 0, done: done}); err != nil {
				t.Fatal(err)
			}
			go func() { <-done }()
		}
	}
	hot.drain()
	h := hot.handle.(*orderHandle)
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.seen) != ops {
		t.Fatalf("executed %d of %d staged writes", len(h.seen), ops)
	}
	for i, op := range h.seen {
		if op != uint64(i+1) {
			t.Fatalf("write %d executed out of order: got opNum %d, want %d (full: %v...)",
				i, op, i+1, h.seen[:i+1])
		}
	}
}

// slowCountHandle sleeps per write and records which descriptor ran.
type slowCountHandle struct {
	delay time.Duration
	runs  *atomic.Int64
}

func (h *slowCountHandle) WriteAt(b []byte, off int64) (int, error) {
	time.Sleep(h.delay)
	h.runs.Add(1)
	return len(b), nil
}
func (h *slowCountHandle) ReadAt(b []byte, off int64) (int, error) { return len(b), nil }
func (h *slowCountHandle) Sync() error                             { return nil }
func (h *slowCountHandle) Size() (int64, error)                    { return 0, nil }
func (h *slowCountHandle) Close() error                            { return nil }

// TestWorkStealingDrainsHotShard pins every descriptor to shard 0: the
// other three workers have empty shards and must drain the backlog via
// steals, which the steal counter records.
func TestWorkStealingDrainsHotShard(t *testing.T) {
	srv := NewServer(Config{Mode: ModeWorkQueue, Workers: 4, Shards: 4, Batch: 2})
	defer srv.Close()

	var runs atomic.Int64
	const descs = 8
	const perDesc = 6
	var wg sync.WaitGroup
	for i := 0; i < descs; i++ {
		d := newDescriptor(uint64(10+i), fmt.Sprintf("d%d", i), &slowCountHandle{delay: 2 * time.Millisecond, runs: &runs})
		d.sid = uint64(i) * uint64(len(srv.sched.shards)) // all home to shard 0
		for j := 0; j < perDesc; j++ {
			buf := srv.bml.Get(8)
			done := make(chan error, 1)
			if err := srv.sched.put(&task{d: d, op: OpWrite, buf: buf, off: 0, done: done}); err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() { defer wg.Done(); <-done }()
		}
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("hot shard did not drain: %d/%d tasks ran", runs.Load(), descs*perDesc)
	}
	if got := runs.Load(); got != descs*perDesc {
		t.Fatalf("ran %d tasks, want %d", got, descs*perDesc)
	}
	if srv.sched.steals == nil || srv.sched.steals.Value() == 0 {
		t.Fatal("hot shard drained without a single steal; idle workers never helped")
	}
}

// TestPutDuringCloseReturnsECLOSED hammers put from many producers while
// the scheduler closes mid-stream: every put must return nil (task will be
// drained) or ECLOSED — never panic, never strand a synchronous waiter.
// Run under -race this also checks the close/put publication ordering.
func TestPutDuringCloseReturnsECLOSED(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		srv := NewServer(Config{Mode: ModeWorkQueue, Workers: 2, Shards: 2})
		var wg sync.WaitGroup
		var rejected atomic.Int64
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				d := newDescriptor(uint64(3+p), "x", &orderHandle{})
				for i := 0; i < 100; i++ {
					buf := srv.bml.Get(8)
					done := make(chan error, 1)
					err := srv.sched.put(&task{d: d, op: OpWrite, buf: buf, off: 0, done: done})
					if err != nil {
						if !errors.Is(err, ECLOSED) {
							t.Errorf("put during close: %v", err)
						}
						srv.bml.Put(buf)
						rejected.Add(1)
						return
					}
					// Accepted: the worker pool must complete it even if
					// close raced in right after.
					select {
					case <-done:
					case <-time.After(10 * time.Second):
						t.Error("accepted task never completed across close")
						return
					}
				}
			}(p)
		}
		time.Sleep(time.Duration(trial%5) * 100 * time.Microsecond)
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}

// TestSchedulerAtomicDepth checks the shed reference: depth() must track
// puts and dequeues without touching shard locks (it is one atomic load),
// and must settle to zero after a drain.
func TestSchedulerAtomicDepth(t *testing.T) {
	srv := NewServer(Config{Mode: ModeAsync, Workers: 2, Shards: 2})
	defer srv.Close()
	if got := srv.sched.depth(); got != 0 {
		t.Fatalf("fresh scheduler depth %d", got)
	}
	d := newDescriptor(3, "gate", &slowCountHandle{delay: 5 * time.Millisecond, runs: new(atomic.Int64)})
	for i := 0; i < 16; i++ {
		buf := srv.bml.Get(8)
		d.start()
		if err := srv.sched.put(&task{d: d, op: OpWrite, buf: buf, opNum: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// One descriptor executes serially, so most of the backlog is queued.
	if got := srv.sched.depth(); got == 0 {
		t.Fatal("depth 0 with a queued backlog")
	}
	d.drain()
	deadline := time.Now().Add(5 * time.Second)
	for srv.sched.depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("depth stuck at %d after drain", srv.sched.depth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestZeroCopyReadE2E drives real reads over a connection in every mode and
// asserts the zero-copy reply invariants: correct data, the zero-copy
// counter moving, and the staging pool fully returned (a double Put would
// panic; a missed Put leaves Used > 0).
func TestZeroCopyReadE2E(t *testing.T) {
	for _, mode := range []Mode{ModeDirect, ModeWorkQueue, ModeAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			srv := NewServer(Config{Mode: mode, Workers: 2, Shards: 2})
			defer srv.Close()
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go func() { _ = srv.Serve(l) }()
			c, err := Dial("tcp", l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			f, err := c.Open(context.Background(), "zc")
			if err != nil {
				t.Fatal(err)
			}
			want := bytes.Repeat([]byte{0xA5}, 64<<10)
			if _, err := f.Write(want); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(want))
			for i := 0; i < 8; i++ {
				n, err := f.ReadAt(got, 0)
				if err != nil || n != len(want) {
					t.Fatalf("read %d: n=%d err=%v", i, n, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("read %d corrupted", i)
				}
			}
			if got := srv.metrics.zeroCopyReplies.Value(); got < 8 {
				t.Fatalf("zero-copy replies counted %d, want >= 8", got)
			}
			// Every leased frame must be back in the pool: a double Put
			// panics in BML, a leak shows up as non-zero usage.
			deadline := time.Now().Add(5 * time.Second)
			for srv.bml.Used() != 0 {
				if time.Now().After(deadline) {
					t.Fatalf("BML leak after reads: %d bytes still reserved", srv.bml.Used())
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// TestShardMetricsRegistered pins the new metric families: per-shard depth
// gauges (one per shard), the steal counter, and the zero-copy counter must
// all be exported.
func TestShardMetricsRegistered(t *testing.T) {
	srv := NewServer(Config{Mode: ModeAsync, Workers: 4, Shards: 3})
	defer srv.Close()
	var buf bytes.Buffer
	if err := srv.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`iofwd_shard_depth{shard="0"}`,
		`iofwd_shard_depth{shard="1"}`,
		`iofwd_shard_depth{shard="2"}`,
		"iofwd_steals_total",
		"iofwd_zero_copy_replies_total",
		"iofwd_queue_depth",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	_ = out
}

// TestDefaultShards pins the shard-count default: one per worker, capped at
// GOMAXPROCS, never below one.
func TestDefaultShards(t *testing.T) {
	if got := defaultShards(0); got != 1 {
		t.Fatalf("defaultShards(0) = %d", got)
	}
	if got := defaultShards(1); got != 1 {
		t.Fatalf("defaultShards(1) = %d", got)
	}
	big := defaultShards(1 << 20)
	if big < 1 || big > 1<<20 {
		t.Fatalf("defaultShards(huge) = %d", big)
	}
}
