package core_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/core/fault"
)

// blockOf returns the deterministic 4 KiB payload client c writes at index i.
func blockOf(c, i int) []byte {
	b := make([]byte, 4096)
	for j := range b {
		b[j] = byte(1 + (c*131+i*31+j)%255) // never zero, so absence is detectable
	}
	return b
}

// TestChaosEndToEnd drives the full client/server stack over TCP with a
// seeded fault backend (1% transient errors, 5% latency spikes) plus a
// mid-run connection drop per client, under -race. It asserts:
//
//   - no hangs: the whole run completes within the watchdog budget;
//   - no lost acks / corruption: every block in the backend is either the
//     exact written payload or untouched (all-zero) — a zero block must be
//     accounted for by an injected write fault;
//   - deferred errors surface via the write acks, Fsync, PollError or Close
//     exactly once each: a drained descriptor's PollError returns nil right
//     after the pending error is consumed;
//   - the client-side fault counters move (reconnects per client).
func TestChaosEndToEnd(t *testing.T) {
	const (
		nClients = 6
		nOps     = 60
		blk      = 4096
	)
	mem := core.NewMemBackend()
	fb := fault.New(mem, fault.Config{
		Seed:        42,
		ErrRate:     0.01,
		LatencyRate: 0.05,
		Latency:     500 * time.Microsecond,
	})
	srv := core.NewServer(core.Config{
		Mode: core.ModeAsync, Workers: 4, QueueHighWater: 256,
		BMLTimeout: 2 * time.Second, Backend: fb,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	var deferredSeen, opErrs atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := core.Dial("tcp", l.Addr().String(),
				core.WithTimeout(15*time.Second),
				core.WithRetry(10, time.Millisecond, 20*time.Millisecond),
				core.WithReconnect(8),
				core.WithSeed(int64(c)+1))
			if err != nil {
				t.Errorf("client %d dial: %v", c, err)
				return
			}
			defer cl.Close()
			f, err := cl.Open(context.Background(), fmt.Sprintf("chaos/%d", c))
			if err != nil {
				t.Errorf("client %d open: %v", c, err)
				return
			}
			for i := 0; i < nOps; i++ {
				if i == nOps/2 {
					cl.DropConnection() // mid-run transport failure
				}
				_, err := f.WriteAt(blockOf(c, i), int64(i)*blk)
				var de *core.DeferredError
				switch {
				case err == nil:
				case errors.As(err, &de):
					deferredSeen.Add(1)
				case errors.Is(err, core.EIO):
					opErrs.Add(1)
				default:
					t.Errorf("client %d op %d: unexpected error %v", c, i, err)
				}
			}
			// Drain, then consume any pending deferred error — each must
			// surface exactly once: the poll after a reported error (with no
			// new ops in flight) must be clean.
			if err := f.Sync(); err != nil {
				var de *core.DeferredError
				if errors.As(err, &de) {
					deferredSeen.Add(1)
				} else {
					t.Errorf("client %d sync: %v", c, err)
				}
			}
			if err := f.PollError(); err != nil {
				var de *core.DeferredError
				if !errors.As(err, &de) {
					t.Errorf("client %d poll: non-deferred error %v", c, err)
				} else {
					deferredSeen.Add(1)
				}
				if err2 := f.PollError(); err2 != nil {
					t.Errorf("client %d: deferred error surfaced twice: %v then %v", c, err, err2)
				}
			}
			if err := f.Close(); err != nil {
				var de *core.DeferredError
				if errors.As(err, &de) {
					deferredSeen.Add(1)
				} else {
					t.Errorf("client %d close: %v", c, err)
				}
			}
			if _, _, reconnects, _, _ := cl.Metrics(); reconnects == 0 {
				t.Errorf("client %d: drop absorbed without a reconnect", c)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("chaos run hung")
	}

	// Verify content: every block is either exactly the written payload or
	// untouched; untouched blocks require injected write faults to account
	// for them.
	var zeroBlocks int
	for c := 0; c < nClients; c++ {
		data, ok := mem.Bytes(fmt.Sprintf("chaos/%d", c))
		if !ok {
			t.Fatalf("client %d file missing", c)
		}
		for i := 0; i < nOps && (i+1)*blk <= len(data); i++ {
			got := data[i*blk : (i+1)*blk]
			want := blockOf(c, i)
			if bytes.Equal(got, want) {
				continue
			}
			if bytes.Equal(got, make([]byte, blk)) {
				zeroBlocks++
				continue
			}
			t.Fatalf("client %d block %d corrupted (neither payload nor zero)", c, i)
		}
	}
	st := fb.Stats()
	if uint64(zeroBlocks) > st.Errors {
		t.Fatalf("%d blocks lost but only %d write faults injected (lost acks)", zeroBlocks, st.Errors)
	}
	if st.Errors > 0 && deferredSeen.Load()+opErrs.Load() == 0 {
		t.Errorf("%d faults injected but none surfaced to clients", st.Errors)
	}
	t.Logf("chaos: %d ops, %d injected errors, %d latency spikes; clients saw %d deferred + %d direct errors, %d zero blocks",
		st.Ops, st.Errors, st.Latencies, deferredSeen.Load(), opErrs.Load(), zeroBlocks)
}

// TestChaosServerShutdownUnderTraffic closes the server while clients are
// mid-flight: no panic, and every client unblocks with a clean error (or
// success) promptly.
func TestChaosServerShutdownUnderTraffic(t *testing.T) {
	srv := core.NewServer(core.Config{Mode: core.ModeAsync, Workers: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := core.Dial("tcp", l.Addr().String(), core.WithTimeout(10*time.Second))
			if err != nil {
				return // raced the listener teardown
			}
			defer cl.Close()
			f, err := cl.Open(context.Background(), fmt.Sprintf("shutdown/%d", c))
			if err != nil {
				return
			}
			buf := make([]byte, 8192)
			for i := 0; i < 200; i++ {
				if _, err := f.WriteAt(buf, int64(i)*8192); err != nil {
					// ECLOSED (queue closed) or a transport error are both
					// clean outcomes; anything else is not.
					if !errors.Is(err, core.ECLOSED) && !errors.Is(err, core.ErrConnectionLost) &&
						!errors.Is(err, core.ErrClientClosed) && !errors.Is(err, core.ErrOpTimeout) {
						t.Errorf("client %d: unclean shutdown error %v", c, err)
					}
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("clients hung across server shutdown")
	}
}
