// Package core is a real, runnable I/O-forwarding library implementing the
// system the paper describes — not a simulation. A client ships POSIX-like
// I/O calls over a framed binary protocol to a forwarding server, which
// executes them against a pluggable backend. The server offers the paper's
// three execution models:
//
//   - ModeDirect: the per-connection handler executes each operation
//     itself, like stock ZOID's thread-per-client design (paper II-B2).
//   - ModeWorkQueue: handlers enqueue operations on a shared FIFO work
//     queue drained by a fixed worker pool that dequeues multiple requests
//     per wakeup — the paper's I/O scheduling (Section IV, figure 7). The
//     client still blocks until the operation completes.
//   - ModeAsync: work-queue scheduling plus asynchronous data staging
//     (Section IV, figure 8). Writes are copied into a buffer from the
//     buffer management layer (BML) and acknowledged immediately; a
//     descriptor database tracks in-progress operations, and errors from
//     staged writes are reported on subsequent operations on the same
//     descriptor, on Fsync, or on Close. When the BML memory cap is
//     reached, staging blocks until completed operations return buffers.
//     Opens, closes, and stats remain synchronous.
//
// Backends supply the terminal I/O: OS files (FileBackend), memory
// (MemBackend), a discard target (NullBackend), and a rate-limited wrapper
// (SinkBackend) that emulates the slow external sink — a 10 GbE link or a
// busy filesystem — so the benchmarks show the same mechanism crossovers on
// a laptop that the paper shows on Intrepid.
package core
