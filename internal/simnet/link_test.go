package simnet

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFramingWireBytes(t *testing.T) {
	f := Framing{PayloadBytes: 256, OverheadBytes: 26}
	cases := []struct{ in, want int64 }{
		{0, 0},
		{1, 1 + 26},
		{256, 256 + 26},
		{257, 257 + 52},
		{1024, 1024 + 4*26},
	}
	for _, c := range cases {
		if got := f.WireBytes(c.in); got != c.want {
			t.Errorf("WireBytes(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if zero := (Framing{}).WireBytes(1000); zero != 1000 {
		t.Errorf("zero framing WireBytes = %d", zero)
	}
}

func TestFramingEfficiencyMatchesPaper(t *testing.T) {
	// Paper III-A: 256-byte payload carries 16 bytes of forwarding header
	// plus 10 bytes of hardware header; raw 850 MB/s gives a packetized
	// peak of about 731 MiB/s, i.e. ~90% efficiency.
	f := Framing{PayloadBytes: 256, OverheadBytes: 26}
	eff := f.Efficiency()
	if math.Abs(eff-256.0/282.0) > 1e-12 {
		t.Fatalf("efficiency = %v", eff)
	}
	peak := 850e6 * eff / (1 << 20) // MiB/s
	if peak < 720 || peak < 0 || peak > 740 {
		t.Fatalf("packetized peak %.1f MiB/s, want ~731", peak)
	}
}

func TestFramingWireBytesProperty(t *testing.T) {
	f := Framing{PayloadBytes: 256, OverheadBytes: 26}
	prop := func(n uint32) bool {
		w := f.WireBytes(int64(n))
		// Wire bytes dominate payload and overhead is bounded by one
		// header per payload chunk plus one trailer chunk.
		return w >= int64(n) && w <= int64(n)+(int64(n)/256+1)*26
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkSingleTransferTime(t *testing.T) {
	e := sim.New(1)
	l := NewLink(e, "test", 100) // 100 B/s
	var done sim.Time
	e.Spawn("t", func(p *sim.Proc) {
		l.Transfer(p, 50)
		done = p.Now()
	})
	e.Run(0)
	if math.Abs(done.Seconds()-0.5) > 1e-9 {
		t.Fatalf("transfer done at %v, want 0.5s", done)
	}
}

func TestLinkFairSharing(t *testing.T) {
	e := sim.New(1)
	l := NewLink(e, "shared", 100)
	var done [4]sim.Time
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			l.Transfer(p, 25)
			done[i] = p.Now()
		})
	}
	e.Run(0)
	for i, d := range done {
		if math.Abs(d.Seconds()-1.0) > 1e-6 {
			t.Fatalf("transfer %d done at %v, want 1s (4x25B at 100B/s shared)", i, d)
		}
	}
}

func TestLinkLatencyAdds(t *testing.T) {
	e := sim.New(1)
	l := NewLink(e, "lat", 1000)
	l.SetLatency(10 * sim.Millisecond)
	var done sim.Time
	e.Spawn("t", func(p *sim.Proc) {
		l.Transfer(p, 1000)
		done = p.Now()
	})
	e.Run(0)
	want := sim.Second + 10*sim.Millisecond
	if done != want {
		t.Fatalf("done at %v, want %v", done, want)
	}
}

func TestLinkFramingSlowsTransfer(t *testing.T) {
	e := sim.New(1)
	l := NewLink(e, "framed", 282)
	l.SetFraming(Framing{PayloadBytes: 256, OverheadBytes: 26})
	var done sim.Time
	e.Spawn("t", func(p *sim.Proc) {
		l.Transfer(p, 256) // 282 wire bytes at 282 B/s = 1s
		done = p.Now()
	})
	e.Run(0)
	if math.Abs(done.Seconds()-1.0) > 1e-9 {
		t.Fatalf("done at %v, want 1s", done)
	}
}

func TestLinkTransferAsyncOverlap(t *testing.T) {
	e := sim.New(1)
	l := NewLink(e, "async", 100)
	var doneAt sim.Time
	e.Spawn("t", func(p *sim.Proc) {
		wg := e.NewWaitGroup(2)
		l.TransferAsync(e, 100, wg.Done) // 1s of wire time
		l.TransferAsync(e, 100, wg.Done) // shares the link: both take 2s
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run(0)
	if math.Abs(doneAt.Seconds()-2.0) > 1e-6 {
		t.Fatalf("async transfers done at %v, want 2s", doneAt)
	}
}

func TestLinkAccounting(t *testing.T) {
	e := sim.New(1)
	l := NewLink(e, "acct", 1000)
	e.Spawn("t", func(p *sim.Proc) {
		l.Transfer(p, 500)
		p.Sleep(sim.Second)
		l.Transfer(p, 500)
	})
	e.Run(0)
	if math.Abs(l.BytesMoved()-1000) > 1e-6 {
		t.Fatalf("moved %g bytes, want 1000", l.BytesMoved())
	}
	if math.Abs(l.BusyTime().Seconds()-1.0) > 1e-6 {
		t.Fatalf("busy %v, want 1s", l.BusyTime())
	}
}
