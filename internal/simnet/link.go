// Package simnet provides network models for the discrete-event simulator:
// fair-shared links with framing overhead and propagation latency.
//
// A Link is an egalitarian fair-share pipe: k concurrent transfers each
// progress at bandwidth/k, matching the behaviour of both the BG/P
// collective (tree) network uplink and a TCP-fair 10 GbE port under many
// streams. Framing charges per-packet header overhead, which is how the
// collective network's 256-byte payload / 26-byte header tax (paper
// Section III-A: raw 850 MB/s, packetized peak about 731 MiB/s) enters the
// model.
package simnet

import (
	"fmt"

	"repro/internal/sim"
)

// Framing describes fixed per-packet overhead on a link.
type Framing struct {
	// PayloadBytes is the maximum payload carried per packet.
	PayloadBytes int64
	// OverheadBytes is transmitted per packet in addition to payload.
	OverheadBytes int64
}

// WireBytes returns the number of bytes actually clocked onto the wire to
// carry n payload bytes, including per-packet overhead. A zero Framing
// returns n unchanged.
func (f Framing) WireBytes(n int64) int64 {
	if f.PayloadBytes <= 0 || f.OverheadBytes <= 0 {
		return n
	}
	packets := (n + f.PayloadBytes - 1) / f.PayloadBytes
	return n + packets*f.OverheadBytes
}

// Efficiency returns the fraction of wire bandwidth available to payload for
// maximum-size packets.
func (f Framing) Efficiency() float64 {
	if f.PayloadBytes <= 0 || f.OverheadBytes <= 0 {
		return 1
	}
	return float64(f.PayloadBytes) / float64(f.PayloadBytes+f.OverheadBytes)
}

// Link is a shared network link with fair bandwidth sharing, optional
// framing overhead, and a fixed per-transfer latency.
type Link struct {
	name    string
	ps      *sim.PS
	frame   Framing
	latency sim.Time
	rate    float64
}

// NewLink returns a link delivering bandwidth bytes per second of wire
// capacity, shared fairly among concurrent transfers.
func NewLink(e *sim.Engine, name string, bandwidth float64) *Link {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("simnet: bandwidth %g for link %q", bandwidth, name))
	}
	return &Link{name: name, ps: sim.NewPS(e, 1, bandwidth), rate: bandwidth}
}

// SetFraming installs per-packet overhead accounting.
func (l *Link) SetFraming(f Framing) { l.frame = f }

// SetEfficiency installs a delivered-bandwidth multiplier as a function of
// the number of concurrent transfers, modelling fan-in arbitration and
// flow-control overhead on heavily multiplexed links. eff must return a
// value in (0, 1].
func (l *Link) SetEfficiency(fn func(k int) float64) { l.ps.SetEfficiency(fn) }

// SetLatency installs a fixed per-transfer propagation/processing latency,
// charged after the bytes have been clocked out.
func (l *Link) SetLatency(d sim.Time) { l.latency = d }

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Bandwidth returns the raw wire bandwidth in bytes per second.
func (l *Link) Bandwidth() float64 { return l.rate }

// PayloadBandwidth returns the maximum payload rate after framing overhead.
func (l *Link) PayloadBandwidth() float64 { return l.rate * l.frame.Efficiency() }

// Transfer moves bytes of payload across the link, blocking the calling
// process for the fair-shared transmission time plus latency.
func (l *Link) Transfer(p *sim.Proc, bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("simnet: negative transfer %d on %q", bytes, l.name))
	}
	l.ps.Serve(p, float64(l.frame.WireBytes(bytes)))
	if l.latency > 0 {
		p.Sleep(l.latency)
	}
}

// TransferAsync starts a transfer and calls done when the bytes have been
// delivered, without blocking the caller. Latency is included.
func (l *Link) TransferAsync(e *sim.Engine, bytes int64, done func()) {
	if bytes < 0 {
		panic(fmt.Sprintf("simnet: negative transfer %d on %q", bytes, l.name))
	}
	l.ps.ServeAsync(float64(l.frame.WireBytes(bytes)), func() {
		if l.latency > 0 {
			e.At(l.latency, done)
		} else {
			done()
		}
	})
}

// Active returns the number of in-flight transfers.
func (l *Link) Active() int { return l.ps.Active() }

// BytesMoved returns cumulative wire bytes delivered.
func (l *Link) BytesMoved() float64 { return l.ps.TotalWork() }

// BusyTime returns cumulative time the link was non-idle.
func (l *Link) BusyTime() sim.Time { return l.ps.BusyTime() }
