package experiments

import (
	"testing"

	"repro/internal/bgp"
)

// quickE2E runs a short experiment for shape assertions.
func quickE2E(t *testing.T, mech Mechanism, cns int, msg int64) float64 {
	t.Helper()
	r := RunE2E(E2EConfig{
		Mech: mech, Psets: 1, CNsPerPset: cns, DANodes: 1,
		MsgBytes: msg, Iters: 25, Workers: 4,
	})
	return r.ThroughputMiBps
}

// TestPaperHeadlineOrdering asserts the central result (figure 9): at 32
// CNs, both optimizations clearly outperform both baselines, ZOID is not
// slower than CIOD, and the optimized mechanisms land near the maximum
// achievable throughput.
func TestPaperHeadlineOrdering(t *testing.T) {
	ciod := quickE2E(t, CIOD, 32, mib)
	zoid := quickE2E(t, ZOID, 32, mib)
	wq := quickE2E(t, WQ, 32, mib)
	async := quickE2E(t, Async, 32, mib)
	if !(zoid >= ciod) {
		t.Errorf("zoid %.0f < ciod %.0f", zoid, ciod)
	}
	if wq < zoid*1.2 {
		t.Errorf("wq %.0f not >20%% over zoid %.0f (paper: +23%%)", wq, zoid)
	}
	if async < ciod*1.35 {
		t.Errorf("async %.0f not >35%% over ciod %.0f (paper: +57%%)", async, ciod)
	}
	// The paper's efficiency story: baselines around 2/3 of achievable,
	// optimized mechanisms close to it.
	if async < 550 || async > 700 {
		t.Errorf("async %.0f outside the ~617 MiB/s band", async)
	}
	if ciod < 330 || ciod > 520 {
		t.Errorf("ciod %.0f outside the ~390-440 MiB/s band", ciod)
	}
}

// TestCollectivePeakAndDecline asserts the figure-4 shape: ~680 MiB/s near
// the peak and a visible decline at 64 CNs.
func TestCollectivePeakAndDecline(t *testing.T) {
	peak := RunE2E(E2EConfig{Mech: ZOID, Psets: 1, CNsPerPset: 4, MsgBytes: mib, Iters: 30}).ThroughputMiBps
	at64 := RunE2E(E2EConfig{Mech: ZOID, Psets: 1, CNsPerPset: 64, MsgBytes: mib, Iters: 30}).ThroughputMiBps
	if peak < 640 || peak > 740 {
		t.Errorf("collective peak %.0f, want ~680-730", peak)
	}
	if at64 >= peak {
		t.Errorf("no decline: 64 CNs %.0f >= peak %.0f", at64, peak)
	}
}

// TestNuttcpAnchors asserts the figure-5 anchors the whole calibration
// hangs on.
func TestNuttcpAnchors(t *testing.T) {
	one := RunNuttcpIONToDA(1, mib, 100).ThroughputMiBps
	four := RunNuttcpIONToDA(4, mib, 100).ThroughputMiBps
	eight := RunNuttcpIONToDA(8, mib, 100).ThroughputMiBps
	if one < 295 || one > 320 {
		t.Errorf("1 thread %.0f, want ~307", one)
	}
	if four < 750 || four > 830 {
		t.Errorf("4 threads %.0f, want ~791", four)
	}
	if eight >= four {
		t.Errorf("8 threads %.0f did not dip below 4 threads %.0f", eight, four)
	}
	da := RunNuttcpDAToDA(1, mib, 100).ThroughputMiBps
	if da < 1090 || da > 1130 {
		t.Errorf("DA-DA %.0f, want ~1110", da)
	}
}

// TestWorkerSweepShape asserts figure 11: one worker is capped near the
// single-core rate, four workers peak, eight do not improve.
func TestWorkerSweepShape(t *testing.T) {
	get := func(w int) float64 {
		return RunE2E(E2EConfig{Mech: Async, Psets: 1, CNsPerPset: 64, DANodes: 1,
			MsgBytes: mib, Iters: 25, Workers: w}).ThroughputMiBps
	}
	one, four, eight := get(1), get(4), get(8)
	if one > 360 {
		t.Errorf("1 worker %.0f; paper caps it near 307", one)
	}
	if four < one*1.5 {
		t.Errorf("4 workers %.0f not well above 1 worker %.0f", four, one)
	}
	if eight > four*1.02 {
		t.Errorf("8 workers %.0f improved over 4 %.0f; paper shows a dip", eight, four)
	}
}

// TestSmallMessagesGatedByControlExchange asserts the figure-10 left edge:
// throughput at 64 KiB falls well below 1 MiB for every mechanism, because
// of the two-step control exchange.
func TestSmallMessagesGatedByControlExchange(t *testing.T) {
	for _, mech := range AllMechanisms {
		small := quickE2E(t, mech, 64, 64*1024)
		large := quickE2E(t, mech, 64, mib)
		if small >= large {
			t.Errorf("%s: 64 KiB (%.0f) not below 1 MiB (%.0f)", mech, small, large)
		}
	}
}

// TestWeakScalingAddsIONs asserts figure 12: aggregate throughput grows
// with pset count because every pset brings its own ION.
func TestWeakScalingAddsIONs(t *testing.T) {
	one := RunE2E(E2EConfig{Mech: Async, Psets: 1, CNsPerPset: 64, DANodes: 20,
		MsgBytes: mib, Iters: 15, Workers: 4}).ThroughputMiBps
	four := RunE2E(E2EConfig{Mech: Async, Psets: 4, CNsPerPset: 64, DANodes: 20,
		MsgBytes: mib, Iters: 15, Workers: 4}).ThroughputMiBps
	if four < 3.5*one {
		t.Errorf("4 psets %.0f not ~4x of 1 pset %.0f", four, one)
	}
}

// TestDeterministicRuns: identical configurations produce identical
// throughput, the reproducibility guarantee of the whole harness.
func TestDeterministicRuns(t *testing.T) {
	cfg := E2EConfig{Mech: Async, Psets: 1, CNsPerPset: 16, DANodes: 1, MsgBytes: mib, Iters: 20, Workers: 4}
	a := RunE2E(cfg)
	b := RunE2E(cfg)
	if a.ThroughputMiBps != b.ThroughputMiBps || a.Elapsed != b.Elapsed {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
}

// TestReadsWorkEndToEnd drives the read direction of figure 4's benchmark.
func TestReadsWorkEndToEnd(t *testing.T) {
	r := RunE2E(E2EConfig{Mech: ZOID, Psets: 1, CNsPerPset: 8, MsgBytes: mib, Iters: 20, Reads: true})
	if r.ThroughputMiBps < 300 {
		t.Fatalf("read throughput %.0f implausibly low", r.ThroughputMiBps)
	}
}

// TestJitterSensitivity: adding per-op jitter must not slow the async
// mechanism (it is already decoupled) and the run must stay deterministic.
func TestJitterSensitivity(t *testing.T) {
	base := RunE2E(E2EConfig{Mech: Async, Psets: 1, CNsPerPset: 16, DANodes: 1, MsgBytes: mib, Iters: 20, Workers: 4})
	jit := RunE2E(E2EConfig{Mech: Async, Psets: 1, CNsPerPset: 16, DANodes: 1, MsgBytes: mib, Iters: 20, Workers: 4,
		JitterMax: 20 * 1000}) // 20us
	if jit.ThroughputMiBps < base.ThroughputMiBps*0.9 {
		t.Fatalf("jitter collapsed async throughput: %.0f vs %.0f", jit.ThroughputMiBps, base.ThroughputMiBps)
	}
}

func TestFigureTablesWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runners are slow")
	}
	for name, tab := range map[string]func(bool) interface {
		Format() string
	}{
		"fig5": func(q bool) interface{ Format() string } { return Figure5(q) },
	} {
		got := tab(true)
		if got.Format() == "" {
			t.Errorf("%s produced empty table", name)
		}
	}
}

// TestUtilizationExplainsThroughput checks the bottleneck analysis the
// paper's Section III builds: under the asynchronous mechanism the tree
// uplink (the binding stage) runs near saturation, while the synchronous
// baseline leaves it substantially idle — the phase-coupling loss.
func TestUtilizationExplainsThroughput(t *testing.T) {
	async := RunE2E(E2EConfig{Mech: Async, Psets: 1, CNsPerPset: 32, DANodes: 1, MsgBytes: mib, Iters: 25, Workers: 4})
	zoid := RunE2E(E2EConfig{Mech: ZOID, Psets: 1, CNsPerPset: 32, DANodes: 1, MsgBytes: mib, Iters: 25})
	if async.TreeUtil < 0.85 {
		t.Errorf("async tree utilization %.2f, want near saturation", async.TreeUtil)
	}
	if zoid.TreeUtil >= async.TreeUtil {
		t.Errorf("zoid tree utilization %.2f not below async %.2f", zoid.TreeUtil, async.TreeUtil)
	}
	if async.IONCPUUtil <= 0 || async.IONCPUUtil > 1 {
		t.Errorf("CPU utilization %.2f out of range", async.IONCPUUtil)
	}
	if async.IONNICUtil <= 0 || async.IONNICUtil > 1 {
		t.Errorf("NIC utilization %.2f out of range", async.IONNICUtil)
	}
}

func TestMaxAchievableIsMinOfStages(t *testing.T) {
	p := bgp.Default()
	if p.MaxAchievable(1, 2) != 1 || p.MaxAchievable(3, 2) != 2 {
		t.Fatal("MaxAchievable broken")
	}
}
