// Package experiments contains one runner per figure of the paper's
// evaluation (Figures 4-6 and 9-13), built on the simulated ALCF machine.
// Each runner returns a stats.Table whose measured series can be printed
// next to the paper-reported reference values.
package experiments

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/iofwd"
	"repro/internal/iofwd/ciod"
	"repro/internal/iofwd/staging"
	"repro/internal/iofwd/wq"
	"repro/internal/iofwd/zoid"
	"repro/internal/sim"
)

// Mechanism names one of the four forwarding mechanisms under study.
type Mechanism string

// The four mechanisms of the paper's evaluation.
const (
	CIOD  Mechanism = "ciod"
	ZOID  Mechanism = "zoid"
	WQ    Mechanism = "zoid+wq"
	Async Mechanism = "zoid+wq+async"
)

// AllMechanisms lists the mechanisms in the order the paper plots them.
var AllMechanisms = []Mechanism{CIOD, ZOID, WQ, Async}

// NewForwarder constructs the named mechanism for a pset.
func NewForwarder(e *sim.Engine, ps *bgp.Pset, p bgp.Params, mech Mechanism, workers, batch int) iofwd.Forwarder {
	return NewForwarderDisc(e, ps, p, mech, workers, batch, iofwd.SharedFIFO)
}

// NewForwarderDisc is NewForwarder with an explicit queueing discipline for
// the worker-pool mechanisms (CIOD and ZOID have no pool; the discipline is
// ignored for them).
func NewForwarderDisc(e *sim.Engine, ps *bgp.Pset, p bgp.Params, mech Mechanism, workers, batch int, disc iofwd.Discipline) iofwd.Forwarder {
	switch mech {
	case CIOD:
		return ciod.New(e, ps, p)
	case ZOID:
		return zoid.New(e, ps, p)
	case WQ:
		return wq.New(e, ps, p, wq.Config{Workers: workers, Batch: batch, Discipline: disc})
	case Async:
		return staging.New(e, ps, p, staging.Config{Workers: workers, Batch: batch, Discipline: disc})
	default:
		panic(fmt.Sprintf("experiments: unknown mechanism %q", mech))
	}
}

// E2EConfig describes one end-to-end forwarding run: every CN concurrently
// streams Iters messages of MsgBytes to its sink, as in the paper's
// memory-to-memory data transfer microbenchmark (Section III-C).
type E2EConfig struct {
	Mech       Mechanism
	Psets      int
	CNsPerPset int
	// DANodes is the number of data-analysis sink nodes; CN connections are
	// distributed round-robin among them (the MxN redistribution of V-A4).
	// Zero means the data terminates in /dev/null on the ION (fig 4).
	DANodes  int
	MsgBytes int64
	Iters    int
	Workers  int
	Batch    int
	// Discipline selects the worker-pool queueing discipline for the WQ and
	// Async mechanisms (SharedFIFO, LeastLoaded, or Sharded).
	Discipline iofwd.Discipline
	Params     *bgp.Params
	// Reads switches the workload from writes to reads (fig 4 measures
	// both directions; the shape is the same).
	Reads bool
	// JitterMax, when positive, adds a uniform random per-operation pause
	// in [0, JitterMax) on each CN — useful for sensitivity studies of how
	// phase decorrelation affects the synchronous mechanisms. The paper's
	// workload is collective I/O ("typically in HPC applications, all the
	// nodes concurrently perform I/O operations"), so the default is no
	// jitter: all CNs issue operations in lockstep.
	JitterMax sim.Time
}

// E2EResult is the outcome of one run.
type E2EResult struct {
	ThroughputMiBps float64
	Elapsed         sim.Time
	Bytes           int64
	// Utilization of the first pset's resources over the run: the busy
	// fraction of the tree uplink, the ION CPU, and the ION NIC. These are
	// the quantities the paper's bottleneck analysis reasons about.
	TreeUtil   float64
	IONCPUUtil float64
	IONNICUtil float64
}

// barrier releases all n participants once the last one arrives and records
// the release time as the measurement start.
type barrier struct {
	eng     *sim.Engine
	n       int
	arrived int
	waiting []*sim.Proc
	at      sim.Time
}

func (b *barrier) wait(p *sim.Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.at = p.Now()
		for _, w := range b.waiting {
			b.eng.Ready(w)
		}
		b.waiting = nil
		return
	}
	b.waiting = append(b.waiting, p)
	p.Suspend()
}

// RunE2E executes one end-to-end forwarding experiment and returns the
// sustained aggregate throughput. The clock starts when every CN has opened
// its descriptor and stops when every byte has been delivered (descriptors
// closed, staged operations drained).
func RunE2E(cfg E2EConfig) E2EResult {
	if cfg.Iters <= 0 {
		cfg.Iters = 100
	}
	e := sim.New(1)
	p := bgp.Default()
	if cfg.Params != nil {
		p = *cfg.Params
	}
	m := bgp.NewMachine(e, bgp.Config{
		Psets:      cfg.Psets,
		CNsPerPset: cfg.CNsPerPset,
		DANodes:    cfg.DANodes,
		Params:     &p,
	})
	totalCNs := m.TotalCNs()
	start := &barrier{eng: e, n: totalCNs}
	var endAt sim.Time
	finished := 0

	var fwds []iofwd.Forwarder
	for pi, ps := range m.Psets {
		fwd := NewForwarderDisc(e, ps, p, cfg.Mech, cfg.Workers, cfg.Batch, cfg.Discipline)
		fwds = append(fwds, fwd)
		for cn := 0; cn < ps.CNs; cn++ {
			global := pi*ps.CNs + cn
			var sink iofwd.Sink
			if cfg.DANodes > 0 {
				sink = iofwd.NewDASink(e, ps.ION, m.DAs[global%len(m.DAs)], p)
			} else {
				sink = &iofwd.NullSink{ION: ps.ION, P: p}
			}
			cn := cn
			e.Spawn(fmt.Sprintf("cn%d", global), func(proc *sim.Proc) {
				fd, err := fwd.Open(proc, cn, sink)
				if err != nil {
					panic(err)
				}
				start.wait(proc)
				for it := 0; it < cfg.Iters; it++ {
					if cfg.JitterMax > 0 {
						proc.Sleep(sim.Time(e.Rand().Int63n(int64(cfg.JitterMax))))
					}
					if cfg.Reads {
						err = fwd.Read(proc, cn, fd, cfg.MsgBytes)
					} else {
						err = fwd.Write(proc, cn, fd, cfg.MsgBytes)
					}
					if err != nil {
						panic(err)
					}
				}
				if err := fwd.Close(proc, cn, fd); err != nil {
					panic(err)
				}
				finished++
				if finished == totalCNs {
					endAt = proc.Now()
				}
			})
		}
	}
	e.Run(0)
	for _, fwd := range fwds {
		fwd.Shutdown()
	}
	bytes := int64(totalCNs) * int64(cfg.Iters) * cfg.MsgBytes
	elapsed := endAt - start.at
	if elapsed <= 0 {
		panic("experiments: zero elapsed time")
	}
	ps0 := m.Psets[0]
	cpuCap := float64(ps0.ION.CPU.Cores()) * endAt.Seconds()
	return E2EResult{
		ThroughputMiBps: float64(bytes) / elapsed.Seconds() / bgp.MiB,
		Elapsed:         elapsed,
		Bytes:           bytes,
		TreeUtil:        ps0.Tree.BusyTime().Seconds() / endAt.Seconds(),
		IONCPUUtil:      ps0.ION.CPU.CoreSecondsDelivered() / cpuCap,
		IONNICUtil:      ps0.ION.NIC.BusyTime().Seconds() / endAt.Seconds(),
	}
}

// NuttcpResult is the outcome of a raw external-network run.
type NuttcpResult struct {
	ThroughputMiBps float64
}

// RunNuttcpIONToDA models the Section III-B nuttcp measurement: k sender
// threads on one ION stream 1 MiB messages memory-to-memory to a DA node,
// with no forwarding involved.
func RunNuttcpIONToDA(threads int, msgBytes int64, iters int) NuttcpResult {
	e := sim.New(1)
	p := bgp.Default()
	m := bgp.NewMachine(e, bgp.Config{Psets: 1, CNsPerPset: 1, DANodes: 1, Params: &p})
	ion, da := m.Psets[0].ION, m.DAs[0]
	var endAt sim.Time
	finished := 0
	for t := 0; t < threads; t++ {
		// Each sender thread drives its own TCP connection, as nuttcp does.
		sink := iofwd.NewDASink(e, ion, da, p)
		e.Spawn(fmt.Sprintf("sender%d", t), func(proc *sim.Proc) {
			for i := 0; i < iters; i++ {
				if err := sink.Write(proc, msgBytes); err != nil {
					panic(err)
				}
			}
			sink.CloseCost(proc)
			finished++
			if finished == threads {
				endAt = proc.Now()
			}
		})
	}
	e.Run(0)
	bytes := int64(threads) * int64(iters) * msgBytes
	return NuttcpResult{ThroughputMiBps: float64(bytes) / endAt.Seconds() / bgp.MiB}
}

// RunNuttcpDAToDA models the DA-to-DA reference: a single stream between two
// Xeon analysis nodes sustains ~1110 MiB/s (Section III-B).
func RunNuttcpDAToDA(threads int, msgBytes int64, iters int) NuttcpResult {
	e := sim.New(1)
	p := bgp.Default()
	m := bgp.NewMachine(e, bgp.Config{Psets: 1, CNsPerPset: 1, DANodes: 2, Params: &p})
	src, dst := m.DAs[0], m.DAs[1]
	var endAt sim.Time
	finished := 0
	for t := 0; t < threads; t++ {
		e.Spawn(fmt.Sprintf("sender%d", t), func(proc *sim.Proc) {
			for i := 0; i < iters; i++ {
				n := msgBytes
				sim.Fork(proc,
					func(done func()) { src.CPU.ComputeAsync(float64(n)*p.DASendCost, done) },
					func(done func()) { src.NIC.TransferAsync(e, n, done) },
					func(done func()) { dst.NIC.TransferAsync(e, n, done) },
					func(done func()) { dst.CPU.ComputeAsync(float64(n)*p.DARecvCost, done) },
				)
			}
			finished++
			if finished == threads {
				endAt = proc.Now()
			}
		})
	}
	e.Run(0)
	bytes := int64(threads) * int64(iters) * msgBytes
	return NuttcpResult{ThroughputMiBps: float64(bytes) / endAt.Seconds() / bgp.MiB}
}
