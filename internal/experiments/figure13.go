package experiments

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/iofwd"
	"repro/internal/madbench"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Figure13 reproduces "Performance of the MADBench2 application benchmark
// using the I/O forwarding mechanisms" (paper V-B): MADbench2 in I/O mode
// (α=1, RMOD=WMOD=1, all processes doing I/O concurrently) against GPFS,
// weak-scaled from 64 nodes (NPIX=4096) to 256 nodes (NPIX=8192), so every
// process moves ~2 MiB per operation. Paper: staging+scheduling achieves
// +53%/+40% over CIOD/ZOID at 64 nodes and +49%/+34% at 256 nodes.
//
// The paper sets the number of component matrices to 1024 (128 GB total at
// 64 nodes); the runner defaults to a smaller NBin, which scales the run
// length linearly but leaves the steady-state throughput comparison intact
// (EXPERIMENTS.md records the scaling check).
func Figure13(quick bool) *stats.Table {
	scales := []struct {
		nodes, npix int
	}{{64, 4096}, {256, 8192}}
	nbin := 24
	if quick {
		nbin = 8
	}
	t := &stats.Table{
		Title:  "Figure 13: MADbench2 (I/O mode) on GPFS, 1 pset / 4 psets",
		XLabel: "nodes",
		YLabel: "MiB/s",
	}
	for _, s := range scales {
		t.X = append(t.X, fmt.Sprint(s.nodes))
	}
	for _, mech := range AllMechanisms {
		mech := mech
		var y []float64
		for _, s := range scales {
			r := madbench.Run(madbench.Config{
				Nodes: s.nodes,
				NPix:  s.npix,
				NBin:  nbin,
				Alpha: 1,
				NewForwarder: func(e *sim.Engine, ps *bgp.Pset, p bgp.Params) iofwd.Forwarder {
					return NewForwarder(e, ps, p, mech, 4, 8)
				},
			})
			y = append(y, r.ThroughputMiBps)
		}
		t.Add(string(mech), y)
	}
	for i, s := range scales {
		addImprovementNotes(t, i, fmt.Sprintf("at %d nodes", s.nodes))
	}
	t.Notes = append(t.Notes,
		"paper: async over ciod +53%/+49%, over zoid +40%/+34% at 64/256 nodes",
		//lint:allow tracefmt NBin is the paper's figure-axis notation, not a trace key
		fmt.Sprintf("NBin=%d (paper: 1024); aggregate I/O scales linearly with NBin", nbin))
	return t
}
