package experiments

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/stats"
)

const mib = bgp.MiB

// iters picks an iteration count: enough to amortize startup and drain
// tails, smaller under quick mode.
func iters(quick bool, full int) int {
	if quick {
		return full / 4
	}
	return full
}

// Figure4 reproduces "Performance of collective network streaming from
// compute nodes to I/O node": CNs write 1 MiB messages to /dev/null on the
// ION through CIOD and ZOID, sweeping the number of CNs in the pset.
// Paper: sustains up to ~680 MiB/s (93% of the ~731 MiB/s packetized peak),
// peaks between 4 and 8 nodes, declines beyond 32 as ION contention grows;
// ZOID is ~2% ahead of CIOD.
func Figure4(quick bool) *stats.Table {
	nodes := []int{1, 2, 4, 8, 16, 32, 64}
	t := &stats.Table{
		Title:  "Figure 4: collective network streaming CN->ION (1 MiB writes to /dev/null)",
		XLabel: "CNs",
		YLabel: "MiB/s",
	}
	for _, n := range nodes {
		t.X = append(t.X, fmt.Sprint(n))
	}
	it := iters(quick, 120)
	for _, mech := range []Mechanism{CIOD, ZOID} {
		var writes, reads []float64
		for _, n := range nodes {
			r := RunE2E(E2EConfig{Mech: mech, Psets: 1, CNsPerPset: n, MsgBytes: mib, Iters: it})
			writes = append(writes, r.ThroughputMiBps)
			rd := RunE2E(E2EConfig{Mech: mech, Psets: 1, CNsPerPset: n, MsgBytes: mib, Iters: it, Reads: true})
			reads = append(reads, rd.ThroughputMiBps)
		}
		t.Add(string(mech)+"/write", writes)
		t.Add(string(mech)+"/read", reads)
	}
	p := bgp.Default()
	t.Notes = append(t.Notes,
		fmt.Sprintf("packetized collective peak: %.0f MiB/s (paper: ~731)", p.CollPeakPayload()/mib),
		"paper: peak ~680 MiB/s at 4-8 CNs, decline beyond 32, ZOID ~2% over CIOD")
	return t
}

// Figure4MessageSizes sweeps the message size at a fixed CN count — the
// second axis of the paper's figure 4 ("varying the buffer sizes as well as
// the number of CNs").
func Figure4MessageSizes(quick bool, cns int) *stats.Table {
	sizes := []int64{4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024, mib, 4 * mib}
	t := &stats.Table{
		Title:  fmt.Sprintf("Figure 4 (size axis): collective streaming, %d CNs", cns),
		XLabel: "msg",
		YLabel: "MiB/s",
	}
	for _, s := range sizes {
		t.X = append(t.X, sizeLabel(s))
	}
	it := iters(quick, 120)
	for _, mech := range []Mechanism{CIOD, ZOID} {
		var y []float64
		for _, s := range sizes {
			r := RunE2E(E2EConfig{Mech: mech, Psets: 1, CNsPerPset: cns, MsgBytes: s, Iters: it})
			y = append(y, r.ThroughputMiBps)
		}
		t.Add(string(mech), y)
	}
	return t
}

// Figure5 reproduces "Performance of data streaming from an I/O node to an
// analysis node": nuttcp-style memory-to-memory streaming over the external
// 10 GbE, sweeping sender threads on the ION. Paper: 1 thread 307 MiB/s,
// 4 threads 791 MiB/s (the maximum), 8 threads lower; DA-to-DA sustains
// 1110 MiB/s with one thread.
func Figure5(quick bool) *stats.Table {
	threads := []int{1, 2, 4, 8}
	t := &stats.Table{
		Title:  "Figure 5: external network streaming ION->DA (nuttcp, 1 MiB)",
		XLabel: "threads",
		YLabel: "MiB/s",
	}
	it := iters(quick, 400)
	var y []float64
	for _, k := range threads {
		t.X = append(t.X, fmt.Sprint(k))
		y = append(y, RunNuttcpIONToDA(k, mib, it).ThroughputMiBps)
	}
	t.Add("ION->DA", y)
	t.Add("paper", []float64{307, 560, 791, 760})
	da := RunNuttcpDAToDA(1, mib, it).ThroughputMiBps
	t.Notes = append(t.Notes,
		fmt.Sprintf("DA->DA single stream: %.0f MiB/s (paper: 1110)", da),
		"paper series at 2 and 8 threads read from the figure (approximate)")
	return t
}

// Figure6 reproduces "Performance of I/O forwarding between an I/O node and
// analysis node": end-to-end CN->DA streaming under CIOD and ZOID, with the
// max-achievable line (min of the two stage maxima, ~650 MiB/s). Paper:
// both sustain at most ~420 MiB/s, 66% of the achievable throughput, and
// decline as CNs increase.
func Figure6(quick bool) *stats.Table {
	nodes := []int{1, 2, 4, 8, 16, 32, 64}
	t := &stats.Table{
		Title:  "Figure 6: end-to-end I/O forwarding CN->DA (1 MiB), baselines",
		XLabel: "CNs",
		YLabel: "MiB/s",
	}
	for _, n := range nodes {
		t.X = append(t.X, fmt.Sprint(n))
	}
	it := iters(quick, 120)
	for _, mech := range []Mechanism{CIOD, ZOID} {
		var y []float64
		for _, n := range nodes {
			r := RunE2E(E2EConfig{Mech: mech, Psets: 1, CNsPerPset: n, DANodes: 1, MsgBytes: mib, Iters: it})
			y = append(y, r.ThroughputMiBps)
		}
		t.Add(string(mech), y)
	}
	max := maxAchievable(quick)
	line := make([]float64, len(nodes))
	for i := range line {
		line[i] = max
	}
	t.Add("max-achievable", line)
	t.Notes = append(t.Notes, "paper: CIOD/ZOID max ~420 MiB/s = 66% of ~650 MiB/s achievable")
	return t
}

// maxAchievable computes the figure 6/9 reference line the way the paper
// does: the minimum of the maximum sustained collective-network throughput
// (fig 4) and external-network throughput (fig 5).
func maxAchievable(quick bool) float64 {
	it := iters(quick, 120)
	coll := 0.0
	for _, n := range []int{4, 8} {
		r := RunE2E(E2EConfig{Mech: ZOID, Psets: 1, CNsPerPset: n, MsgBytes: mib, Iters: it})
		if r.ThroughputMiBps > coll {
			coll = r.ThroughputMiBps
		}
	}
	ext := RunNuttcpIONToDA(4, mib, iters(quick, 400)).ThroughputMiBps
	if coll < ext {
		return coll
	}
	return ext
}

// Figure9 reproduces "Performance comparison of I/O forwarding mechanism as
// we increase the number of CNs sending 1 MiB messages over the I/O network
// to a DA node": all four mechanisms, 4 worker threads. Paper at 32 CNs:
// work-queue scheduling is +38% over CIOD (+23% over ZOID, 83% efficiency);
// scheduling+staging is +57% over CIOD (+40% over ZOID, ~95% efficiency,
// +14% over scheduling alone).
func Figure9(quick bool) *stats.Table {
	nodes := []int{1, 2, 4, 8, 16, 32, 64}
	t := &stats.Table{
		Title:  "Figure 9: I/O forwarding mechanisms vs number of CNs (1 MiB, 4 workers)",
		XLabel: "CNs",
		YLabel: "MiB/s",
	}
	for _, n := range nodes {
		t.X = append(t.X, fmt.Sprint(n))
	}
	it := iters(quick, 120)
	for _, mech := range AllMechanisms {
		var y []float64
		for _, n := range nodes {
			r := RunE2E(E2EConfig{Mech: mech, Psets: 1, CNsPerPset: n, DANodes: 1, MsgBytes: mib, Iters: it, Workers: 4})
			y = append(y, r.ThroughputMiBps)
		}
		t.Add(string(mech), y)
	}
	addImprovementNotes(t, 5 /* index of 32 CNs */, "at 32 CNs")
	t.Notes = append(t.Notes, "paper at 32 CNs: wq +38% over ciod, +23% over zoid; async +57% over ciod, +40% over zoid, ~95% efficiency")
	return t
}

// Figure10 reproduces "Performance comparison of I/O forwarding mechanism
// for 64 CNs over the I/O network to a DA node with varying message size".
// Paper at 256 KiB: CIOD 64%, ZOID 74%, scheduling 86%, staging 95%
// efficiency; small messages are gated by the two-step control exchange.
func Figure10(quick bool) *stats.Table {
	sizes := []int64{64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, mib, 2 * mib, 4 * mib}
	t := &stats.Table{
		Title:  "Figure 10: I/O forwarding mechanisms vs message size (64 CNs, 4 workers)",
		XLabel: "msg",
		YLabel: "MiB/s",
	}
	for _, s := range sizes {
		t.X = append(t.X, sizeLabel(s))
	}
	it := iters(quick, 120)
	for _, mech := range AllMechanisms {
		var y []float64
		for _, s := range sizes {
			r := RunE2E(E2EConfig{Mech: mech, Psets: 1, CNsPerPset: 64, DANodes: 1, MsgBytes: s, Iters: it, Workers: 4})
			y = append(y, r.ThroughputMiBps)
		}
		t.Add(string(mech), y)
	}
	t.Notes = append(t.Notes, "paper at 256 KiB: efficiency ciod 64%, zoid 74%, wq 86%, async 95%")
	return t
}

// Figure11 reproduces "Impact of the number of threads on I/O forwarding":
// the full mechanism (scheduling + staging) with 1-8 workers, 1 MiB
// messages. Paper: 1 thread cannot exceed ~300 MiB/s, throughput peaks at 4
// workers (matching the 4 ION cores), and declines at 8.
func Figure11(quick bool) *stats.Table {
	workers := []int{1, 2, 4, 8}
	t := &stats.Table{
		Title:  "Figure 11: worker-pool size sweep (zoid+wq+async, 64 CNs, 1 MiB)",
		XLabel: "workers",
		YLabel: "MiB/s",
	}
	it := iters(quick, 120)
	var y []float64
	for _, w := range workers {
		t.X = append(t.X, fmt.Sprint(w))
		r := RunE2E(E2EConfig{Mech: Async, Psets: 1, CNsPerPset: 64, DANodes: 1, MsgBytes: mib, Iters: it, Workers: w})
		y = append(y, r.ThroughputMiBps)
	}
	t.Add(string(Async), y)
	t.Notes = append(t.Notes, "paper: ~300 MiB/s at 1 worker, peak at 4, decline at 8")
	return t
}

// Figure12 reproduces "Weak scaling performance of the I/O forwarding
// mechanisms": 256, 512, and 1024 CNs (4, 8, and 16 psets/IONs) streaming
// 1 MiB messages to 20 DA sink nodes, connections distributed MxN. Paper:
// staging+scheduling is +53/43/47% over CIOD and +33/25/34% over ZOID.
func Figure12(quick bool) *stats.Table {
	scales := []int{256, 512, 1024}
	t := &stats.Table{
		Title:  "Figure 12: weak scaling to 20 DA sinks (1 MiB, 4 workers per ION)",
		XLabel: "CNs",
		YLabel: "MiB/s",
	}
	for _, n := range scales {
		t.X = append(t.X, fmt.Sprint(n))
	}
	it := iters(quick, 60)
	for _, mech := range AllMechanisms {
		var y []float64
		for _, n := range scales {
			r := RunE2E(E2EConfig{
				Mech: mech, Psets: n / 64, CNsPerPset: 64, DANodes: 20,
				MsgBytes: mib, Iters: it, Workers: 4,
			})
			y = append(y, r.ThroughputMiBps)
		}
		t.Add(string(mech), y)
	}
	for i, n := range scales {
		addImprovementNotes(t, i, fmt.Sprintf("at %d CNs", n))
	}
	t.Notes = append(t.Notes, "paper: async over ciod +53/43/47%; over zoid +33/25/34% at 256/512/1024 CNs")
	return t
}

// Utilization reports the resource-utilization view of the figure-9
// operating point (32 CNs, 1 MiB, 4 workers): the busy fractions of the
// tree uplink, ION CPU, and ION NIC per mechanism. This is the paper's
// Section III bottleneck analysis made directly visible: the synchronous
// mechanisms leave the binding stage (the tree) idle while phases couple,
// and the staged mechanism saturates it.
func Utilization(quick bool) *stats.Table {
	t := &stats.Table{
		Title:  "Resource utilization at 32 CNs, 1 MiB, 4 workers (busy fraction x100)",
		XLabel: "mechanism",
		YLabel: "percent busy",
	}
	it := iters(quick, 120)
	var tree, cpu, nic []float64
	for _, mech := range AllMechanisms {
		t.X = append(t.X, string(mech))
		r := RunE2E(E2EConfig{Mech: mech, Psets: 1, CNsPerPset: 32, DANodes: 1, MsgBytes: mib, Iters: it, Workers: 4})
		tree = append(tree, 100*r.TreeUtil)
		cpu = append(cpu, 100*r.IONCPUUtil)
		nic = append(nic, 100*r.IONNICUtil)
	}
	t.Add("tree", tree)
	t.Add("ion-cpu", cpu)
	t.Add("ion-nic", nic)
	t.Notes = append(t.Notes, "the tree uplink is the binding stage; its idle fraction under the synchronous mechanisms is the efficiency loss of figs 6 and 9")
	return t
}

// addImprovementNotes appends measured improvement percentages of the
// wq/async series over the baselines at column i.
func addImprovementNotes(t *stats.Table, i int, where string) {
	c, z := t.Get(string(CIOD)), t.Get(string(ZOID))
	w, a := t.Get(string(WQ)), t.Get(string(Async))
	if c == nil || z == nil || w == nil || a == nil {
		return
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"measured %s: wq %+.0f%% over ciod, %+.0f%% over zoid; async %+.0f%% over ciod, %+.0f%% over zoid",
		where,
		stats.Improvement(w.Y[i], c.Y[i]), stats.Improvement(w.Y[i], z.Y[i]),
		stats.Improvement(a.Y[i], c.Y[i]), stats.Improvement(a.Y[i], z.Y[i])))
}

func sizeLabel(n int64) string {
	switch {
	case n >= mib:
		return fmt.Sprintf("%dMiB", n/mib)
	case n >= 1024:
		return fmt.Sprintf("%dKiB", n/1024)
	default:
		return fmt.Sprint(n)
	}
}
