package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}

	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}

	var m MaxGauge
	for _, v := range []int64{3, 9, 1, 9, 4} {
		m.Observe(v)
	}
	if got := m.Value(); got != 9 {
		t.Fatalf("max gauge = %d, want 9", got)
	}

	gf := NewGaugeFunc(func() int64 { return 123 })
	if got := gf.Value(); got != 123 {
		t.Fatalf("gauge func = %d, want 123", got)
	}
}

func TestHistogramCountSumMax(t *testing.T) {
	var h Histogram
	vals := []int64{1, 2, 3, 100, 1000, 1 << 20}
	var sum int64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if got := h.Count(); got != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", got, len(vals))
	}
	if got := h.Sum(); got != sum {
		t.Fatalf("sum = %d, want %d", got, sum)
	}
	if got := h.Max(); got != 1<<20 {
		t.Fatalf("max = %d, want %d", got, 1<<20)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 1000 observations uniform in [1, 1000]: the q-quantile estimate must
	// land within one log₂ bucket (factor of 2) of the true value.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}} {
		got := float64(h.Quantile(tc.q))
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("q%.2f = %.0f, want within [%.0f, %.0f]",
				tc.q, got, tc.want/2, tc.want*2)
		}
	}
	// The estimate never exceeds the observed maximum.
	if got := h.Quantile(1.0); got > h.Max() {
		t.Fatalf("q1.0 = %d exceeds max %d", got, h.Max())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	if bucketIndex(0) != 0 || bucketIndex(-5) != 0 {
		t.Fatal("non-positive values must land in bucket 0")
	}
	if bucketIndex(1) != 1 || bucketIndex(2) != 2 || bucketIndex(3) != 2 || bucketIndex(4) != 3 {
		t.Fatal("log2 bucket indexing is off")
	}
	if bucketIndex(math.MaxInt64) != 63 {
		t.Fatalf("MaxInt64 bucket = %d, want 63", bucketIndex(math.MaxInt64))
	}
	if bucketUpper(63) != math.MaxInt64 {
		t.Fatalf("bucketUpper(63) = %d, want MaxInt64", bucketUpper(63))
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.", L("op", "write"))
	c.Add(7)
	c2 := r.Counter("test_requests_total", "Requests handled.", L("op", "read"))
	c2.Add(3)
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(5)
	h := r.Histogram("test_latency_ns", "Latency.")
	h.Observe(3) // bucket le=4
	h.Observe(5) // bucket le=8

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests handled.",
		"# TYPE test_requests_total counter",
		`test_requests_total{op="write"} 7`,
		`test_requests_total{op="read"} 3`,
		"# TYPE test_depth gauge",
		"test_depth 5",
		"# TYPE test_latency_ns histogram",
		`test_latency_ns_bucket{le="4"} 1`,
		`test_latency_ns_bucket{le="8"} 2`,
		`test_latency_ns_bucket{le="+Inf"} 2`,
		"test_latency_ns_sum 8",
		"test_latency_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
}

func TestRegistryJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Add(9)
	r.Histogram("b_ns", "B.").Observe(100)
	r.GaugeFunc("c_bytes", "C.", func() int64 { return 77 })

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snaps []FamilySnapshot
	if err := json.Unmarshal(buf.Bytes(), &snaps); err != nil {
		t.Fatalf("statz output is not valid JSON: %v", err)
	}
	if f := Find(snaps, "a_total"); f == nil || *f.Series[0].Value != 9 {
		t.Fatalf("a_total snapshot wrong: %+v", f)
	}
	if f := Find(snaps, "b_ns"); f == nil || f.Series[0].Histogram.Count != 1 {
		t.Fatalf("b_ns snapshot wrong: %+v", f)
	}
	if f := Find(snaps, "c_bytes"); f == nil || *f.Series[0].Value != 77 {
		t.Fatalf("c_bytes snapshot wrong: %+v", f)
	}
}

func TestRegistryConflicts(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("x_total", "X.", &Counter{})
	if err := r.Register("x_total", "X.", &Counter{}); err == nil {
		t.Fatal("duplicate unlabeled series should fail")
	}
	if err := r.Register("x_total", "X.", &Gauge{}); err == nil {
		t.Fatal("kind conflict should fail")
	}
	if err := r.Register("x_total", "X.", &Counter{}, L("op", "a")); err != nil {
		t.Fatalf("new label set should register: %v", err)
	}
	if err := r.Register("x_total", "X.", &Counter{}, L("op", "a")); err == nil {
		t.Fatal("duplicate labeled series should fail")
	}
	if err := r.Register("", "empty", &Counter{}); err == nil {
		t.Fatal("empty name should fail")
	}
}
