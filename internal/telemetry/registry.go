package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// series is one registered instrument plus its label set.
type series struct {
	labels []Label
	m      Metric
}

// family groups every series that shares a metric name. All series in a
// family must have the same kind; the Prometheus encoder emits one
// HELP/TYPE pair per family.
type family struct {
	name   string
	help   string
	kind   Kind
	series []series
}

// Registry holds metric families for export. Registration takes a lock;
// reads of registered instruments are lock-free. A Registry is safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	byName   map[string]*family
	families []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Register adds a metric series under name. Series sharing a name form one
// family and must agree on kind and on the exact label-set shape; a
// duplicate label set or a kind conflict is a programming error and
// returns one.
func (r *Registry) Register(name, help string, m Metric, labels ...Label) error {
	if name == "" {
		return fmt.Errorf("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: m.metricKind()}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != m.metricKind() {
		return fmt.Errorf("telemetry: %s registered as %s, got %s", name, f.kind, m.metricKind())
	}
	key := labelKey(labels)
	for _, s := range f.series {
		if labelKey(s.labels) == key {
			return fmt.Errorf("telemetry: duplicate series %s%s", name, key)
		}
	}
	f.series = append(f.series, series{labels: append([]Label(nil), labels...), m: m})
	return nil
}

// MustRegister is Register that panics on error — for init-time wiring.
func (r *Registry) MustRegister(name, help string, m Metric, labels ...Label) {
	if err := r.Register(name, help, m, labels...); err != nil {
		panic(err)
	}
}

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.MustRegister(name, help, c, labels...)
	return c
}

// Gauge registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.MustRegister(name, help, g, labels...)
	return g
}

// GaugeFunc registers fn as a computed gauge series.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.MustRegister(name, help, NewGaugeFunc(fn), labels...)
}

// MaxGauge registers and returns a new high-water-mark series.
func (r *Registry) MaxGauge(name, help string, labels ...Label) *MaxGauge {
	m := &MaxGauge{}
	r.MustRegister(name, help, m, labels...)
	return m
}

// Histogram registers and returns a new histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.MustRegister(name, help, h, labels...)
	return h
}

// labelKey canonicalises a label set for duplicate detection.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	key := "{"
	for i, l := range ls {
		if i > 0 {
			key += ","
		}
		key += l.Name + "=" + l.Value
	}
	return key + "}"
}

// visit calls fn for every family in registration order while holding the
// read lock. The encoders are built on it.
func (r *Registry) visit(fn func(f *family)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.families {
		fn(f)
	}
}
