// Package telemetry is the repository's lock-free metrics subsystem: atomic
// counters, gauges, and log₂-bucketed histograms, organised into a Registry
// of labeled metric families with a Prometheus text-format encoder and a
// JSON snapshot encoder.
//
// The package exists because the paper's whole method is *measuring each
// stage* of the I/O forwarding path to find the bottleneck; internal/core
// uses it to expose per-operation latency distributions, queue occupancy,
// and staging-pool behaviour from a running server (see cmd/fwdd's
// -metrics flag).
//
// All metric types are usable as zero values so that hot-path structs can
// embed them directly; every mutation is a single atomic operation (plus a
// rare CAS for maxima), making them safe for unsynchronised concurrent use
// and cheap enough for per-request instrumentation.
package telemetry

import "sync/atomic"

// Kind discriminates the metric families a Registry can hold.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Metric is any instrument a Registry can export.
type Metric interface {
	metricKind() Kind
}

// Counter is a monotonically increasing counter. The zero value is ready to
// use.
type Counter struct {
	v atomic.Uint64
}

func (c *Counter) metricKind() Kind { return KindCounter }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down. The zero value
// is ready to use.
type Gauge struct {
	v atomic.Int64
}

func (g *Gauge) metricKind() Kind { return KindGauge }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFunc is a gauge whose value is computed at read time by a callback —
// for occupancy values some other structure already tracks (queue depth,
// pool bytes in use).
type GaugeFunc struct {
	fn func() int64
}

// NewGaugeFunc wraps fn as a readable gauge.
func NewGaugeFunc(fn func() int64) *GaugeFunc { return &GaugeFunc{fn: fn} }

func (g *GaugeFunc) metricKind() Kind { return KindGauge }

// Value invokes the callback.
func (g *GaugeFunc) Value() int64 { return g.fn() }

// MaxGauge tracks the maximum value ever observed (a high-water mark). The
// zero value is ready to use; observations below the current maximum cost
// one atomic load.
type MaxGauge struct {
	v atomic.Int64
}

func (m *MaxGauge) metricKind() Kind { return KindGauge }

// Observe raises the recorded maximum to v if v exceeds it.
func (m *MaxGauge) Observe(v int64) {
	for {
		cur := m.v.Load()
		if v <= cur {
			return
		}
		if m.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the high-water mark.
func (m *MaxGauge) Value() int64 { return m.v.Load() }

// readGauge is the read side shared by Gauge, GaugeFunc and MaxGauge.
type readGauge interface {
	Value() int64
}
