package telemetry

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentCounterGauge hammers shared counters/gauges from many
// goroutines; totals must be exact and the run must be clean under -race.
func TestConcurrentCounterGauge(t *testing.T) {
	const goroutines, iters = 16, 10000
	var c Counter
	var g Gauge
	var m MaxGauge
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				m.Observe(int64(i*iters + j))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := m.Value(); got != goroutines*iters-1 {
		t.Fatalf("max = %d, want %d", got, goroutines*iters-1)
	}
}

// TestConcurrentHistogram checks that parallel Observe calls on one shared
// histogram lose nothing: count, sum, and max must all be exact.
func TestConcurrentHistogram(t *testing.T) {
	const goroutines, iters = 16, 5000
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				h.Observe(int64(i + j + 1))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*iters {
		t.Fatalf("count = %d, want %d", got, goroutines*iters)
	}
	var want int64
	for i := 0; i < goroutines; i++ {
		for j := 0; j < iters; j++ {
			want += int64(i + j + 1)
		}
	}
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if got := h.Max(); got != goroutines-1+iters-1+1 {
		t.Fatalf("max = %d, want %d", got, goroutines+iters-1)
	}
}

// TestConcurrentRegistryEncode registers and mutates metrics while another
// goroutine repeatedly encodes — registration, writes, and reads must not
// race.
func TestConcurrentRegistryEncode(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("enc_ns", "Encode race test.")
	c := r.Counter("enc_total", "Encode race test.")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(42)
				c.Inc()
			}
		}
	}()
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
