package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE pair per family, then
// one line per series. Histograms emit cumulative `_bucket{le="..."}`
// lines at the log₂ bucket boundaries actually used, plus `_sum` and
// `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.visit(func(f *family) {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch m := s.m.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(s.labels, ""), m.Value())
			case readGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(s.labels, ""), m.Value())
			case *Histogram:
				writePromHistogram(bw, f.name, s.labels, m)
			}
		}
	})
	return bw.Flush()
}

// writePromHistogram emits the cumulative bucket series for one histogram.
// Buckets below the first and above the last non-empty bucket are elided;
// +Inf always appears.
func writePromHistogram(w io.Writer, name string, labels []Label, h *Histogram) {
	counts, total := h.snapshot()
	lo, hi := -1, -1
	for i, c := range counts {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	var cum uint64
	if lo >= 0 {
		for i := lo; i <= hi; i++ {
			cum += counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n",
				name, labelString(labels, fmt.Sprintf("%d", bucketUpper(i))), cum)
		}
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, "+Inf"), total)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, labelString(labels, ""), h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels, ""), total)
}

// labelString renders a label set; le, when non-empty, is appended as the
// histogram bucket boundary label.
func labelString(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, escapeLabel(l.Value))
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// SeriesSnapshot is one series in a point-in-time registry snapshot.
type SeriesSnapshot struct {
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     *int64             `json:"value,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// FamilySnapshot is one metric family in a point-in-time registry snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot captures every family for programmatic consumption (the /statz
// endpoint, tests, example programs). Counters and gauges carry Value;
// histograms carry count/sum/max and interpolated p50/p90/p99.
func (r *Registry) Snapshot() []FamilySnapshot {
	var out []FamilySnapshot
	r.visit(func(f *family) {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, s := range f.series {
			ss := SeriesSnapshot{}
			if len(s.labels) > 0 {
				ss.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					ss.Labels[l.Name] = l.Value
				}
			}
			switch m := s.m.(type) {
			case *Counter:
				v := int64(m.Value())
				ss.Value = &v
			case readGauge:
				v := m.Value()
				ss.Value = &v
			case *Histogram:
				hs := m.Snapshot()
				ss.Histogram = &hs
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	})
	return out
}

// WriteJSON renders the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Find returns the snapshot of the named family, if present — convenience
// for tests and example programs.
func Find(snaps []FamilySnapshot, name string) *FamilySnapshot {
	for i := range snaps {
		if snaps[i].Name == name {
			return &snaps[i]
		}
	}
	return nil
}
