package telemetry

import "testing"

func TestValidateName(t *testing.T) {
	cases := []struct {
		name string
		kind Kind
		ok   bool
	}{
		{"iofwd_requests_total", KindCounter, true},
		{"iofwd_request_latency_ns", KindHistogram, true},
		{"iofwd_request_bytes", KindHistogram, true},
		{"iofwd_worker_batch_ops", KindHistogram, true},
		{"iofwd_queue_depth", KindGauge, true},
		{"iofwd_bml_peak_bytes", KindGauge, true},
		{"iofwd_stripe_member_state", KindGauge, true}, // enumeration gauge

		{"requests_total", KindCounter, false},            // missing prefix
		{"iofwd_requests", KindCounter, false},            // counter without _total
		{"iofwd_worker_batch_size", KindHistogram, false}, // histogram without unit
		{"iofwd_shed_total", KindGauge, false},            // gauge posing as counter
		{"iofwd_member_state_total", KindCounter, false},  // _state is gauge-only
		{"iofwd_member_state", KindHistogram, false},      // _state is gauge-only (and no unit)
		{"iofwd_member_state_ops", KindHistogram, true},   // _state mid-name is fine
		{"iofwd_BadCase_total", KindCounter, false},       // not snake_case
		{"iofwd__double_total", KindCounter, false},       // empty segment
		{"iofwd_", KindCounter, false},
		{"", KindGauge, false},
	}
	for _, c := range cases {
		err := ValidateName(c.name, c.kind)
		if c.ok && err != nil {
			t.Errorf("ValidateName(%q, %v) = %v, want nil", c.name, c.kind, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ValidateName(%q, %v) = nil, want error", c.name, c.kind)
		}
	}
}

func TestKindFromString(t *testing.T) {
	for _, k := range []Kind{KindCounter, KindGauge, KindHistogram} {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("summary"); ok {
		t.Error("KindFromString(summary) unexpectedly ok")
	}
}
