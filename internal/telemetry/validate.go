package telemetry

import (
	"fmt"
	"regexp"
	"strings"
)

// Metric naming convention, shared between runtime checks and the
// `metricname` analyzer in internal/analysis (one rule, two enforcement
// points):
//
//   - every name is `iofwd_` + snake_case ([a-z0-9_] segments)
//   - counters end in `_total`
//   - histograms end in a unit suffix: `_ns`, `_bytes`, or `_ops`
//   - gauges carry no structural suffix but must not end in `_total`
//     (that would read as a counter to a Prometheus consumer)
//   - `_state` marks an enumeration gauge (a small-integer state machine
//     position, e.g. iofwd_stripe_member_state) and is gauge-only: on a
//     counter or histogram the suffix would misdescribe the series
var nameRE = regexp.MustCompile(`^iofwd(_[a-z0-9]+)+$`)

// histogramUnits are the accepted histogram unit suffixes.
var histogramUnits = []string{"_ns", "_bytes", "_ops"}

// ValidateName reports whether name follows the repository's metric naming
// convention for an instrument of the given kind. It is exported so the
// static analyzer, the registry tests, and any future runtime gate all
// apply the identical rule.
func ValidateName(name string, kind Kind) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("metric %q is not iofwd_-prefixed snake_case", name)
	}
	switch kind {
	case KindCounter:
		if !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("counter %q must end in _total", name)
		}
		if strings.HasSuffix(name, "_state_total") {
			return fmt.Errorf("counter %q: _state is the enumeration-gauge suffix", name)
		}
	case KindHistogram:
		if strings.HasSuffix(name, "_state") {
			return fmt.Errorf("histogram %q: _state is the enumeration-gauge suffix", name)
		}
		ok := false
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("histogram %q must end in a unit suffix (%s)",
				name, strings.Join(histogramUnits, ", "))
		}
	case KindGauge:
		if strings.HasSuffix(name, "_total") {
			return fmt.Errorf("gauge %q must not end in _total", name)
		}
	}
	return nil
}

// KindFromString is the inverse of Kind.String, for callers validating
// snapshot output. Unknown strings return (0, false).
func KindFromString(s string) (Kind, bool) {
	switch s {
	case "counter":
		return KindCounter, true
	case "gauge":
		return KindGauge, true
	case "histogram":
		return KindHistogram, true
	}
	return 0, false
}
