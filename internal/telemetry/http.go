package telemetry

import "net/http"

// Handler serves the registry in Prometheus text format — mount at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// StatzHandler serves the registry as a JSON snapshot — mount at /statz.
func (r *Registry) StatzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}
