package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of log₂ buckets. Bucket i counts observations v
// with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i (bucket 0 holds v <= 0
// and v == 0 is impossible for Len64, so it holds non-positive values).
// 64 buckets cover the full int64 range, so nanosecond latencies and byte
// sizes both fit without configuration.
const histBuckets = 64

// Histogram is a lock-free log₂-bucketed histogram of int64 observations
// (latencies in nanoseconds, sizes in bytes). The zero value is ready to
// use. Observe is a few atomic adds; readers reconstruct counts, the sum,
// the maximum, and interpolated quantiles from a bucket snapshot.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

func (h *Histogram) metricKind() Kind { return KindHistogram }

// bucketIndex returns the log₂ bucket for v.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketUpper returns the exclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(1)<<62 + (int64(1)<<62 - 1) // max int64, avoiding overflow
	}
	return int64(1) << uint(i)
}

// Observe records v.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// snapshot copies the bucket counts and returns them with the total.
func (h *Histogram) snapshot() (counts [histBuckets]uint64, total uint64) {
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the log₂ bucket containing the target rank. It returns 0 for an
// empty histogram. The estimate's relative error is bounded by the bucket
// width (a factor of 2), which is plenty to distinguish the paper's stage
// regimes (µs-scale queueing vs ms-scale backend service).
func (h *Histogram) Quantile(q float64) int64 {
	counts, total := h.snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation.
	rank := uint64(q*float64(total-1)) + 1
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := float64(bucketUpper(i) / 2) // inclusive lower bound of bucket i
			hi := float64(bucketUpper(i))
			if i == 0 {
				return 0
			}
			// Position of the target inside this bucket, in (0, 1].
			frac := float64(rank-cum) / float64(c)
			v := lo + frac*(hi-lo)
			if m := h.max.Load(); v > float64(m) {
				return m
			}
			return int64(v)
		}
		cum += c
	}
	return h.max.Load()
}

// HistogramSnapshot is a consistent read of a histogram for encoding.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
}

// Snapshot returns the summary used by the JSON encoder.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}
