// Package storage models the ALCF parallel filesystem substrate (paper
// II-A): file server nodes (FSNs) fronting DDN disk arrays, reached from the
// IONs over the same external network, with GPFS-style block striping.
//
// The model is deliberately at the level MADbench2 exercises: large
// contiguous reads and writes from many clients, striped round-robin across
// servers, each server imposing NIC and disk service. Metadata is a fixed
// open/close latency. The paper's figure-13 comparison is about the
// forwarding mechanisms, not GPFS internals; the substrate only has to keep
// storage from being the artificial bottleneck, as on the real machine.
package storage

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Config describes the filesystem.
type Config struct {
	// FSNs is the number of file server nodes (128 at the ALCF).
	FSNs int
	// StripeBytes is the block/stripe unit (GPFS blocks).
	StripeBytes int64
	// NICBandwidth is each FSN's network bandwidth in bytes/second.
	NICBandwidth float64
	// DiskBandwidth is each FSN's effective storage bandwidth in
	// bytes/second (its share of the DDN arrays).
	DiskBandwidth float64
	// OpenLatency is the metadata cost of open/create/close.
	OpenLatency sim.Time
}

// FSN is one file server node: a NIC and a disk service.
type FSN struct {
	ID   int
	NIC  *simnet.Link
	Disk *sim.PS
}

// System is the parallel filesystem.
type System struct {
	eng  *sim.Engine
	cfg  Config
	fsns []*FSN

	nextInode uint64
	files     map[string]*fileState
}

type fileState struct {
	inode   uint64
	size    int64
	written int64 // cumulative bytes written, for verification
	reads   int64
	opens   int
	// firstFSN rotates the stripe placement per file, as GPFS does, so
	// concurrent files do not all hammer server 0 for block 0.
	firstFSN int
}

// New builds the filesystem on the engine.
func New(e *sim.Engine, cfg Config) *System {
	if cfg.FSNs <= 0 || cfg.StripeBytes <= 0 {
		panic(fmt.Sprintf("storage: invalid config %+v", cfg))
	}
	s := &System{eng: e, cfg: cfg, files: make(map[string]*fileState)}
	for i := 0; i < cfg.FSNs; i++ {
		s.fsns = append(s.fsns, &FSN{
			ID:   i,
			NIC:  simnet.NewLink(e, fmt.Sprintf("fsn%d-nic", i), cfg.NICBandwidth),
			Disk: sim.NewPS(e, 1, cfg.DiskBandwidth),
		})
	}
	return s
}

// Config returns the filesystem configuration.
func (s *System) Config() Config { return s.cfg }

// FSNCount returns the number of file server nodes.
func (s *System) FSNCount() int { return len(s.fsns) }

// FSN returns server i, for tests and instrumentation.
func (s *System) FSN(i int) *FSN { return s.fsns[i] }

// Open opens (creating if needed) the named file and charges the metadata
// latency.
func (s *System) Open(p *sim.Proc, name string) *File {
	st, ok := s.files[name]
	if !ok {
		st = &fileState{inode: s.nextInode, firstFSN: int(s.nextInode) % len(s.fsns)}
		s.nextInode++
		s.files[name] = st
	}
	st.opens++
	if s.cfg.OpenLatency > 0 {
		p.Sleep(s.cfg.OpenLatency)
	}
	return &File{sys: s, st: st, name: name}
}

// Stat returns the current size of the named file and whether it exists,
// without charging any simulated time.
func (s *System) Stat(name string) (int64, bool) {
	st, ok := s.files[name]
	if !ok {
		return 0, false
	}
	return st.size, true
}

// BytesWritten returns cumulative bytes written to the named file.
func (s *System) BytesWritten(name string) int64 {
	if st, ok := s.files[name]; ok {
		return st.written
	}
	return 0
}

// File is an open handle.
type File struct {
	sys  *System
	st   *fileState
	name string
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file size.
func (f *File) Size() int64 { return f.st.size }

// Close charges the metadata latency.
func (f *File) Close(p *sim.Proc) {
	if f.sys.cfg.OpenLatency > 0 {
		p.Sleep(f.sys.cfg.OpenLatency)
	}
}

// stripe describes one contiguous extent on a single server.
type stripe struct {
	fsn   *FSN
	bytes int64
}

// stripes splits [off, off+n) into per-server extents, round-robin by
// stripe unit starting at the file's rotated first server.
func (f *File) stripes(off, n int64) []stripe {
	var out []stripe
	unit := f.sys.cfg.StripeBytes
	for n > 0 {
		idx := off / unit
		inBlock := unit - off%unit
		c := min(inBlock, n)
		fsn := f.sys.fsns[(int(idx)+f.st.firstFSN)%len(f.sys.fsns)]
		out = append(out, stripe{fsn: fsn, bytes: c})
		off += c
		n -= c
	}
	return out
}

// ServeWrite charges the server-side resources for writing [off, off+n):
// every touched server's NIC and disk, in parallel across servers. The
// caller (an ION-side sink) models the client-side cost and blocks p until
// all stripes land.
func (f *File) ServeWrite(p *sim.Proc, off, n int64) error {
	if n < 0 || off < 0 {
		return fmt.Errorf("storage: bad write off=%d n=%d on %q", off, n, f.name)
	}
	if n == 0 {
		return nil
	}
	eng := f.sys.eng
	parts := f.stripes(off, n)
	wg := eng.NewWaitGroup(2 * len(parts))
	for _, part := range parts {
		part := part
		part.fsn.NIC.TransferAsync(eng, part.bytes, wg.Done)
		part.fsn.Disk.ServeAsync(float64(part.bytes), wg.Done)
	}
	wg.Wait(p)
	f.st.written += n
	if off+n > f.st.size {
		f.st.size = off + n
	}
	return nil
}

// ServeRead charges the server-side resources for reading [off, off+n).
func (f *File) ServeRead(p *sim.Proc, off, n int64) error {
	if n < 0 || off < 0 {
		return fmt.Errorf("storage: bad read off=%d n=%d on %q", off, n, f.name)
	}
	if off+n > f.st.size {
		return fmt.Errorf("storage: read past EOF on %q: off=%d n=%d size=%d", f.name, off, n, f.st.size)
	}
	if n == 0 {
		return nil
	}
	eng := f.sys.eng
	parts := f.stripes(off, n)
	wg := eng.NewWaitGroup(2 * len(parts))
	for _, part := range parts {
		part := part
		part.fsn.Disk.ServeAsync(float64(part.bytes), func() {
			part.fsn.NIC.TransferAsync(eng, part.bytes, wg.Done)
			wg.Done()
		})
	}
	wg.Wait(p)
	f.st.reads += n
	return nil
}
