package storage

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testFS(e *sim.Engine) *System {
	return New(e, Config{
		FSNs:          8,
		StripeBytes:   4 << 20,
		NICBandwidth:  1.25e9,
		DiskBandwidth: 350e6,
		OpenLatency:   sim.Millisecond,
	})
}

func TestStripingLayout(t *testing.T) {
	e := sim.New(1)
	fs := testFS(e)
	var f *File
	e.Spawn("t", func(p *sim.Proc) { f = fs.Open(p, "a") })
	e.Run(0)
	// 10 MiB starting at 2 MiB: 2 MiB in block 0, 4 MiB in block 1, 4 MiB
	// in block 2.
	parts := f.stripes(2<<20, 10<<20)
	if len(parts) != 3 {
		t.Fatalf("%d stripes, want 3", len(parts))
	}
	if parts[0].bytes != 2<<20 || parts[1].bytes != 4<<20 || parts[2].bytes != 4<<20 {
		t.Fatalf("stripe sizes %d %d %d", parts[0].bytes, parts[1].bytes, parts[2].bytes)
	}
	if parts[0].fsn == parts[1].fsn || parts[1].fsn == parts[2].fsn {
		t.Fatal("adjacent stripes on the same server")
	}
}

func TestStripingCoversExactly(t *testing.T) {
	e := sim.New(1)
	fs := testFS(e)
	var f *File
	e.Spawn("t", func(p *sim.Proc) { f = fs.Open(p, "b") })
	e.Run(0)
	prop := func(off uint32, n uint32) bool {
		parts := f.stripes(int64(off), int64(n))
		var sum int64
		for _, part := range parts {
			if part.bytes <= 0 || part.bytes > f.sys.cfg.StripeBytes {
				return false
			}
			sum += part.bytes
		}
		return sum == int64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadAccounting(t *testing.T) {
	e := sim.New(1)
	fs := testFS(e)
	e.Spawn("t", func(p *sim.Proc) {
		f := fs.Open(p, "data")
		if err := f.ServeWrite(p, 0, 10<<20); err != nil {
			t.Errorf("write: %v", err)
		}
		if f.Size() != 10<<20 {
			t.Errorf("size %d", f.Size())
		}
		if err := f.ServeRead(p, 0, 10<<20); err != nil {
			t.Errorf("read: %v", err)
		}
		if err := f.ServeRead(p, 5<<20, 6<<20); err == nil {
			t.Error("read past EOF succeeded")
		}
		f.Close(p)
	})
	e.Run(0)
	if fs.BytesWritten("data") != 10<<20 {
		t.Fatalf("bytes written %d", fs.BytesWritten("data"))
	}
	if size, ok := fs.Stat("data"); !ok || size != 10<<20 {
		t.Fatalf("stat %d %v", size, ok)
	}
}

func TestWriteTimeBoundedByDisk(t *testing.T) {
	e := sim.New(1)
	fs := testFS(e)
	var took sim.Time
	e.Spawn("t", func(p *sim.Proc) {
		f := fs.Open(p, "x")
		start := p.Now()
		// 4 MiB to a single stripe: bounded below by one disk at 350 MB/s.
		if err := f.ServeWrite(p, 0, 4<<20); err != nil {
			t.Errorf("write: %v", err)
		}
		took = p.Now() - start
	})
	e.Run(0)
	minTime := sim.Seconds(float64(4<<20) / 350e6)
	if took < minTime {
		t.Fatalf("write took %v, faster than the disk %v", took, minTime)
	}
}

func TestParallelStripesFasterThanSerial(t *testing.T) {
	// A 32 MiB write spanning 8 servers must complete far faster than
	// 8 sequential 4 MiB writes to one server would.
	e := sim.New(1)
	fs := testFS(e)
	var took sim.Time
	e.Spawn("t", func(p *sim.Proc) {
		f := fs.Open(p, "wide")
		start := p.Now()
		if err := f.ServeWrite(p, 0, 32<<20); err != nil {
			t.Errorf("write: %v", err)
		}
		took = p.Now() - start
	})
	e.Run(0)
	serial := sim.Seconds(float64(32<<20) / 350e6)
	if took > serial/4 {
		t.Fatalf("striped write took %v; not parallel (serial would be %v)", took, serial)
	}
}

func TestDistinctFilesRotateServers(t *testing.T) {
	e := sim.New(1)
	fs := testFS(e)
	firsts := map[int]bool{}
	e.Spawn("t", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			f := fs.Open(p, fmt.Sprintf("f%d", i))
			parts := f.stripes(0, 1)
			firsts[parts[0].fsn.ID] = true
		}
	})
	e.Run(0)
	if len(firsts) < 4 {
		t.Fatalf("first stripes clustered on %d servers", len(firsts))
	}
}

func TestOpenIsIdempotentOnState(t *testing.T) {
	e := sim.New(1)
	fs := testFS(e)
	e.Spawn("t", func(p *sim.Proc) {
		a := fs.Open(p, "same")
		if err := a.ServeWrite(p, 0, 1024); err != nil {
			t.Errorf("write: %v", err)
		}
		b := fs.Open(p, "same")
		if b.Size() != 1024 {
			t.Errorf("reopened size %d", b.Size())
		}
	})
	e.Run(0)
}
