package stats

import (
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "T", XLabel: "x", YLabel: "MiB/s", X: []string{"1", "2"}}
	t.Add("a", []float64{1.5, 2.5})
	t.Add("b", []float64{3})
	t.Notes = append(t.Notes, "a note")
	return t
}

func TestFormatAligned(t *testing.T) {
	out := sample().Format()
	for _, want := range []string{"T\n=", "x", "a", "b", "1.5", "2.5", "3.0", "note: a note", "(values in MiB/s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
	// The short series renders a dash, not a panic.
	if !strings.Contains(out, "-") {
		t.Fatal("missing placeholder for short series")
	}
}

func TestCSV(t *testing.T) {
	out := sample().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if lines[0] != "x,a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[2] != "2,2.5," {
		t.Fatalf("row %q", lines[2])
	}
}

func TestGet(t *testing.T) {
	tb := sample()
	if tb.Get("a") == nil || tb.Get("missing") != nil {
		t.Fatal("Get misbehaves")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(150, 100); math.Abs(got-50) > 1e-12 {
		t.Fatalf("Improvement = %v", got)
	}
	if got := Improvement(100, 0); got != 0 {
		t.Fatalf("Improvement by zero = %v", got)
	}
}
