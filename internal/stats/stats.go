// Package stats holds small series/table utilities used by the experiment
// runners and benchmark harness to print paper-style figures as text tables.
package stats

import (
	"fmt"
	"strings"
)

// Series is one named curve: y values indexed like the table's x column.
type Series struct {
	Name string
	Y    []float64
}

// Table is a printable experiment result: one x column and several series.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	X      []string
	Series []Series
	Notes  []string
}

// Add appends a named series; missing points may be NaN-padded by the
// caller.
func (t *Table) Add(name string, y []float64) {
	t.Series = append(t.Series, Series{Name: name, Y: y})
}

// Get returns the series with the given name, or nil.
func (t *Table) Get(name string) *Series {
	for i := range t.Series {
		if t.Series[i].Name == name {
			return &t.Series[i]
		}
	}
	return nil
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(t.Title)))
	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for i, x := range t.X {
		row := []string{x}
		for _, s := range t.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.1f", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	width := make([]int, len(header))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > width[c] {
				width[c] = len(cell)
			}
		}
	}
	for r, row := range rows {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[c], cell)
		}
		b.WriteByte('\n')
		if r == 0 {
			for c := range row {
				if c > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", width[c]))
			}
			b.WriteByte('\n')
		}
	}
	if t.YLabel != "" {
		fmt.Fprintf(&b, "(values in %s)\n", t.YLabel)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, ",%s", s.Name)
	}
	b.WriteByte('\n')
	for i, x := range t.X {
		b.WriteString(x)
		for _, s := range t.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, ",%g", s.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Improvement returns the percentage by which a exceeds b: 100*(a-b)/b.
func Improvement(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a - b) / b
}
