package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Sync policy names accepted by Config.Sync (and fwdd's -wal-sync flag).
const (
	// SyncAlways fsyncs the active segment after every append: an
	// acknowledged spill is durable before the client hears about it.
	SyncAlways = "always"
	// SyncInterval fsyncs every Config.SyncEvery appends and at rotation:
	// the default trade — a crash can lose at most SyncEvery-1 acked
	// spills' durability, while the common-case append stays one write.
	SyncInterval = "interval"
	// SyncNever leaves flushing to the OS: fastest, crash-unsafe; for
	// benchmarking the framing cost alone.
	SyncNever = "never"
)

// Crash-point names fired through Config.Crash, in op order. Each fires at
// a deterministic position in the append/truncate sequence, so a kill
// schedule expressed as occurrence counts is reproducible (see
// fault.CrashSet).
const (
	// CrashMidAppend fires between the two halves of a deliberately split
	// frame write: the on-disk tail is torn mid-record.
	CrashMidAppend = "mid-append"
	// CrashAfterAppend fires after a frame is fully written (and synced,
	// under SyncAlways) but before the caller acknowledges it.
	CrashAfterAppend = "after-append"
	// CrashBeforeTruncate fires when a rotated segment's last record has
	// drained, before the segment file is removed: recovery re-replays the
	// whole segment (idempotently).
	CrashBeforeTruncate = "before-truncate"
	// CrashAfterTruncate fires just after a drained segment is removed.
	CrashAfterTruncate = "after-truncate"
	// CrashMidBatchAppend fires between the two halves of a deliberately
	// split group-commit batch write: the on-disk tail tears mid-cohort,
	// possibly mid-frame. No cohort member was acked.
	CrashMidBatchAppend = "mid-batch-append"
	// CrashBeforeBatchSync fires after a cohort's frames are fully written
	// but before the batch fsync. No cohort member was acked.
	CrashBeforeBatchSync = "before-batch-sync"
	// CrashAfterBatchSync fires after the batch fsync but before any cohort
	// member is acknowledged: the whole cohort is durable yet no client
	// heard an ack — recovery replays it all, proving the cohort is
	// all-or-nothing at the ack level.
	CrashAfterBatchSync = "after-batch-sync-before-ack"
)

// Config configures a Log.
type Config struct {
	// Dir holds the segment files. It is created if missing. The log owns
	// files matching wal-*.seg inside it; other files are ignored.
	Dir string
	// Backend receives replayed and drained records.
	Backend core.Backend
	// SegmentBytes rotates the active segment once it would exceed this
	// size (default 8 MiB). A single record larger than the limit still
	// occupies one (oversized) segment by itself.
	SegmentBytes int64
	// Sync is the fsync policy: SyncAlways, SyncInterval or SyncNever
	// (default SyncInterval).
	Sync string
	// SyncEvery is the append interval for SyncInterval (default 32).
	SyncEvery int
	// MaxBytes caps the bytes queued on disk awaiting drain; an append
	// past the cap fails with ErrFull so the caller can fall back to its
	// non-spill path. 0 means unlimited.
	MaxBytes int64
	// Crash, when non-nil, is invoked at named crash points (the Crash*
	// constants). Production leaves it nil; the kill/restart harness
	// installs fault.CrashSet.Fire to SIGKILL the process mid-sequence.
	Crash func(point string)
	// GroupCommit batches concurrent SyncAlways appends into cohorts that
	// share one buffered frame write and one fsync (leader/follower group
	// commit, see group.go). Ignored under the other sync policies, which
	// already amortise fsyncs by counting appends.
	GroupCommit bool
	// GroupLinger bounds how long a cohort leader waits for followers
	// before committing (default 200µs). The wait ends early once the
	// cohort holds every append currently in flight, so a lone writer's
	// cohort wakes itself the moment it forms and pays nothing for the
	// window.
	GroupLinger time.Duration
	// GroupMaxBytes seals a cohort once its buffered frames reach this
	// size (default 1 MiB); the next append starts a new cohort.
	GroupMaxBytes int64
	// DrainFailed, when non-nil, is invoked — off the append path, after
	// the record's done callback fired with the error — for every record
	// whose drain-time or recovery-time backend apply failed. fwdd wires
	// it to the stripe tier's repair enqueue so a spilled write that
	// missed a replica heals without a second discovery pass.
	DrainFailed func(name string, off int64, n int)
}

// RecoverStats reports what Open found and replayed from a previous
// incarnation's segments.
type RecoverStats struct {
	// Segments is how many segment files were scanned.
	Segments int
	// Replayed is how many intact records were applied to the backend.
	Replayed int
	// Torn is how many segments ended in a discarded torn tail.
	Torn int
	// Errors is how many records failed to apply (backend errors), plus
	// one per backend handle that failed to sync after a segment's replay.
	// Affected segments are kept on disk for the next recovery pass.
	Errors int
}

// record is the in-memory drain queue entry for one appended frame. The
// payload itself stays on disk (bounded memory is the point of spilling);
// the drainer reads it back by position.
type record struct {
	seg      *segment
	name     string
	off      int64
	dataPos  int64 // absolute file offset of the write payload
	n        int   // payload length
	frame    int64 // whole frame length, for liveBytes accounting
	done     func(error)
	released func()
}

// segment is one on-disk WAL file.
type segment struct {
	id      uint64
	path    string
	f       *os.File
	size    int64 // bytes of intact appended frames (plus reserved regions)
	pending int   // appended records not yet drained
	// reserved counts records whose cohort has claimed a region of the
	// file but has not committed yet (group commit). A segment with
	// reservations must not be truncated, removed, or released: the bytes
	// under them are about to become acknowledged records.
	reserved int
	rotated  bool // no longer the active segment
	// unflushed marks an active segment whose records were all applied but
	// whose pre-truncate backend flush failed: the applied bytes may not be
	// durable, so the file must survive until a flush succeeds (or recovery
	// re-applies it).
	unflushed bool
	// releases holds the drained records' release callbacks; they fire
	// only when the segment's bytes durably leave the log (file removed or
	// rewound after a successful backend flush). Until then the records
	// remain replayable by recovery, so callers must keep treating them as
	// live (see core.Spiller).
	releases []func()
}

// Log is the write-ahead spill tier. Appends go to the active segment;
// a single background drainer replays records to the backend in append
// order and truncates segments whose records have all been applied.
type Log struct {
	cfg Config

	mu          sync.Mutex
	cond        *sync.Cond // signalled on enqueue and on close
	queue       []record
	active      *segment
	rotatedSegs []*segment // rotated, still holding undrained records
	nextSeg     uint64
	liveBytes   int64
	unsynced    int // appends since the last fsync (SyncInterval pacing)
	closed      bool

	// Group-commit state (see group.go). cohortQ holds created but not yet
	// published cohorts in seq order; commitHead is the seq whose commit
	// turn it is; curCohort is the open (joinable) cohort, always the tail
	// of cohortQ; sweeps are segments orphaned by a cohort failure that the
	// drainer must finish (no drain completion will visit them).
	curCohort     *cohort
	cohortQ       []*cohort
	nextCohortSeq uint64
	commitHead    uint64
	commitCond    *sync.Cond // signalled when commitHead advances
	sweeps        []*segment
	draining      int // records taken off the queue, not yet applied
	// inflight counts goroutines currently inside appendGrouped — the
	// population a lingering leader can still hope to capture. The linger
	// heuristic reads it without l.mu.
	inflight atomic.Int64

	wg sync.WaitGroup

	// drainer-only handle cache: most bursts hammer one descriptor, so one
	// slot captures almost all reopens without a map that never shrinks.
	cacheName   string
	cacheHandle core.Handle
	// syncDebt (drainer-only) names backends whose eviction-time Sync
	// failed: their applied records are not yet durable, so no segment may
	// be released until the debt is repaid by a successful sync (see
	// syncBackendCache).
	syncDebt map[string]struct{}

	// Counters are value fields registered via MustRegister so the hot
	// path never chases a pointer it doesn't already have.
	appends      telemetry.Counter
	appendErrors telemetry.Counter
	replayed     telemetry.Counter
	replayErrors telemetry.Counter
	torn         telemetry.Counter
	drained      telemetry.Counter
	drainErrors  telemetry.Counter
	truncated    telemetry.Counter
	syncs        telemetry.Counter
	// fsyncs by reason: per-append (SyncAlways without group commit),
	// SyncEvery pacing, rotation seal, and group-commit batch. Their sum
	// tracks syncs; the split is what shows fsync amortisation working.
	fsyncAppend   telemetry.Counter
	fsyncInterval telemetry.Counter
	fsyncRotate   telemetry.Counter
	fsyncBatch    telemetry.Counter
	batchOps      telemetry.Histogram // records per group-commit batch
	batchBytes    telemetry.Histogram // frame bytes per group-commit batch
	compacted     telemetry.Counter   // bytes skipped by pre-drain compaction
	drainRepair   telemetry.Counter   // drain failures handed to DrainFailed
}

const (
	defaultSegmentBytes  = 8 << 20
	defaultSyncEvery     = 32
	defaultGroupLinger   = 200 * time.Microsecond
	defaultGroupMaxBytes = 1 << 20
	segPrefix            = "wal-"
	segSuffix            = ".seg"
)

// segName formats a segment file name; lexicographic order is ID order.
func segName(id uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, id, segSuffix) }

// Open recovers any segments left in cfg.Dir by a previous incarnation —
// replaying every intact record to the backend and discarding torn
// tails — then starts the drainer and returns a log ready for appends.
// Callers must not accept traffic before Open returns: recovery ordering
// with respect to new writes is only guaranteed by that barrier.
func Open(cfg Config) (*Log, RecoverStats, error) {
	if cfg.Dir == "" {
		return nil, RecoverStats{}, fmt.Errorf("%w: wal: empty dir", core.EINVAL)
	}
	if cfg.Backend == nil {
		return nil, RecoverStats{}, fmt.Errorf("%w: wal: nil backend", core.EINVAL)
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = defaultSegmentBytes
	}
	if cfg.Sync == "" {
		cfg.Sync = SyncInterval
	}
	switch cfg.Sync {
	case SyncAlways, SyncInterval, SyncNever:
	default:
		return nil, RecoverStats{}, fmt.Errorf("%w: wal: unknown sync policy %q", core.EINVAL, cfg.Sync)
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = defaultSyncEvery
	}
	if cfg.Sync != SyncAlways {
		// Group commit exists to amortise SyncAlways's per-append fsync;
		// the other policies already batch by counting appends.
		cfg.GroupCommit = false
	}
	if cfg.GroupLinger < 0 {
		return nil, RecoverStats{}, fmt.Errorf("%w: wal: negative group linger", core.EINVAL)
	}
	if cfg.GroupLinger == 0 {
		cfg.GroupLinger = defaultGroupLinger
	}
	if cfg.GroupMaxBytes < 0 {
		return nil, RecoverStats{}, fmt.Errorf("%w: wal: negative group batch cap", core.EINVAL)
	}
	if cfg.GroupMaxBytes == 0 {
		cfg.GroupMaxBytes = defaultGroupMaxBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, RecoverStats{}, fmt.Errorf("%w: creating wal dir: %v", core.EIO, err)
	}
	l := &Log{cfg: cfg}
	l.cond = sync.NewCond(&l.mu)
	l.commitCond = sync.NewCond(&l.mu)
	stats, err := l.recover()
	if err != nil {
		return nil, stats, err
	}
	if err := l.openActive(); err != nil {
		return nil, stats, err
	}
	l.wg.Add(1)
	go l.drain()
	return l, stats, nil
}

// recover scans segment files oldest-first, applies intact records to the
// backend, and removes segments that replayed fully. A torn tail ends that
// segment's scan (later segments are still processed: a torn tail in an
// older segment can only exist if the crash tore a write that was never
// acknowledged, and replay is positional and idempotent either way). A
// segment with backend apply errors is kept for the next recovery.
//
// A segment is removed only after the backend handles it wrote through are
// fsynced — the same sync-before-truncate order the drainer follows — so a
// power loss at any point during recovery can never lose an acknowledged
// spill: either the segment is still on disk or its records are durable on
// the backend. A sync failure keeps the segment (counted in Errors) rather
// than failing Open.
func (l *Log) recover() (RecoverStats, error) {
	var stats RecoverStats
	names, err := filepath.Glob(filepath.Join(l.cfg.Dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return stats, fmt.Errorf("%w: listing wal dir: %v", core.EIO, err)
	}
	sort.Strings(names) // fixed-width hex IDs: lexicographic == numeric
	handles := make(map[string]core.Handle)
	defer func() {
		for _, h := range handles {
			_ = h.Close()
		}
	}()
	touched := make(map[string]struct{})
	for _, path := range names {
		base := filepath.Base(path)
		idHex := strings.TrimSuffix(strings.TrimPrefix(base, segPrefix), segSuffix)
		var id uint64
		if _, err := fmt.Sscanf(idHex, "%x", &id); err != nil {
			continue // not one of ours
		}
		if id >= l.nextSeg {
			l.nextSeg = id + 1
		}
		stats.Segments++
		clear(touched)
		clean, err := l.replaySegment(path, handles, touched, &stats)
		if err != nil {
			return stats, err
		}
		if clean {
			for name := range touched {
				if serr := handles[name].Sync(); serr != nil {
					stats.Errors++
					l.replayErrors.Inc()
					clean = false
					break
				}
			}
		}
		if clean {
			if err := os.Remove(path); err != nil {
				return stats, fmt.Errorf("%w: removing replayed segment: %v", core.EIO, err)
			}
		}
	}
	return stats, nil
}

// replaySegment streams one segment's records into the backend, adding
// every name it writes through to touched. It reports clean=true when
// every record in the file was applied successfully (the file may then be
// deleted once the touched handles are synced).
func (l *Log) replaySegment(path string, handles map[string]core.Handle, touched map[string]struct{}, stats *RecoverStats) (clean bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("%w: opening segment: %v", core.EIO, err)
	}
	defer f.Close()
	clean = true
	sc := NewScanner(f)
	for {
		payload, err := sc.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			if errors.Is(err, ErrTorn) {
				stats.Torn++
				l.torn.Inc()
				break // everything past a tear is garbage
			}
			return false, err
		}
		name, off, data, derr := decodeRecord(payload)
		if derr != nil {
			stats.Torn++
			l.torn.Inc()
			break
		}
		h, ok := handles[name]
		if !ok {
			h, err = l.cfg.Backend.Open(name, true)
			if err != nil {
				stats.Errors++
				l.replayErrors.Inc()
				clean = false
				if l.cfg.DrainFailed != nil {
					l.drainRepair.Inc()
					l.cfg.DrainFailed(name, off, len(data))
				}
				continue
			}
			handles[name] = h
		}
		n, werr := h.WriteAt(data, off)
		touched[name] = struct{}{}
		if werr == nil && n < len(data) {
			werr = fmt.Errorf("%w: short replay write (%d of %d bytes)", core.EIO, n, len(data))
		}
		if werr != nil {
			stats.Errors++
			l.replayErrors.Inc()
			clean = false
			if l.cfg.DrainFailed != nil {
				l.drainRepair.Inc()
				l.cfg.DrainFailed(name, off, len(data))
			}
			continue
		}
		stats.Replayed++
		l.replayed.Inc()
	}
	return clean, nil
}

// openActive creates a fresh active segment.
func (l *Log) openActive() error {
	id := l.nextSeg
	l.nextSeg++
	path := filepath.Join(l.cfg.Dir, segName(id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("%w: creating segment: %v", core.EIO, err)
	}
	l.active = &segment{id: id, path: path, f: f}
	return nil
}

// Append durably stages one positional write and returns once the record
// is in the log (synced per policy). done is invoked exactly once from the
// drainer with the backend write's result — nil on success, the wrapped
// error otherwise — mirroring the deferred-error semantics of the staged
// async path. released, when non-nil, is invoked at most once, strictly
// after done, when the record's durable copy has left the log (its segment
// was removed or rewound after a backend flush): until then the record
// could be re-applied by a crash recovery, so the caller must not let a
// conflicting write reach the backend by another path. If Append returns a
// non-nil error the record was NOT logged, neither callback will ever be
// called, and the caller must fall back to its non-spill path.
//
// Append implements core.Spiller.
func (l *Log) Append(name string, off int64, data []byte, done func(error), released func()) error {
	if name == "" || len(name) > 1<<16-1 {
		return fmt.Errorf("%w: bad record name length %d", core.EINVAL, len(name))
	}
	if off < 0 {
		return fmt.Errorf("%w: negative record offset", core.EINVAL)
	}
	if payload := recHeaderLen(name) + len(data); payload > MaxFramePayload {
		return fmt.Errorf("%w: record payload %d exceeds frame limit %d", core.EINVAL, payload, MaxFramePayload)
	}
	frame := encodeFrame(encodeRecordHeader(name, off), data)
	if l.cfg.GroupCommit {
		return l.appendGrouped(name, off, data, frame, done, released)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.cfg.MaxBytes > 0 && l.liveBytes+int64(len(frame)) > l.cfg.MaxBytes {
		return fmt.Errorf("%w: %d live + %d frame > %d cap", ErrFull, l.liveBytes, len(frame), l.cfg.MaxBytes)
	}
	if l.active.size > 0 && l.active.size+int64(len(frame)) > l.cfg.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.appendErrors.Inc()
			return err
		}
	}
	seg := l.active
	if err := l.writeFrameLocked(seg, frame); err != nil {
		l.appendErrors.Inc()
		return err
	}
	if err := l.syncPolicyLocked(seg); err != nil {
		// The frame hit the file but its durability is unknown; leave
		// seg.size where it was so the next append overwrites the orphan
		// and recovery at worst idempotently re-applies it.
		l.appendErrors.Inc()
		return err
	}
	dataPos := seg.size + frameHeader + int64(recHeaderLen(name))
	seg.size += int64(len(frame))
	seg.pending++
	l.liveBytes += int64(len(frame))
	l.queue = append(l.queue, record{
		seg: seg, name: name, off: off,
		dataPos: dataPos, n: len(data), frame: int64(len(frame)),
		done: done, released: released,
	})
	l.appends.Inc()
	l.fire(CrashAfterAppend)
	l.cond.Signal()
	return nil
}

// writeFrameLocked lands one frame at the segment's append position using
// positional writes (no seek state to corrupt). When a crash hook is
// installed the write is split so CrashMidAppend genuinely tears a record
// on disk.
func (l *Log) writeFrameLocked(seg *segment, frame []byte) error {
	if l.cfg.Crash != nil && len(frame) > 1 {
		half := len(frame) / 2
		if _, err := seg.f.WriteAt(frame[:half], seg.size); err != nil {
			return fmt.Errorf("%w: appending frame: %v", core.EIO, err)
		}
		l.fire(CrashMidAppend)
		if _, err := seg.f.WriteAt(frame[half:], seg.size+int64(half)); err != nil {
			return fmt.Errorf("%w: appending frame: %v", core.EIO, err)
		}
		return nil
	}
	if _, err := seg.f.WriteAt(frame, seg.size); err != nil {
		return fmt.Errorf("%w: appending frame: %v", core.EIO, err)
	}
	return nil
}

// syncPolicyLocked applies the fsync policy after an append.
func (l *Log) syncPolicyLocked(seg *segment) error {
	switch l.cfg.Sync {
	case SyncAlways:
		return l.fsyncLocked(seg, &l.fsyncAppend)
	case SyncInterval:
		l.unsynced++
		if l.unsynced >= l.cfg.SyncEvery {
			return l.fsyncLocked(seg, &l.fsyncInterval)
		}
	}
	return nil
}

func (l *Log) fsyncLocked(seg *segment, reason *telemetry.Counter) error {
	if err := seg.f.Sync(); err != nil {
		return fmt.Errorf("%w: syncing segment: %v", core.EIO, err)
	}
	l.unsynced = 0
	l.syncs.Inc()
	reason.Inc()
	return nil
}

// rotateLocked seals the active segment and opens a fresh one. Under
// SyncInterval the sealed segment is synced first, so a segment file is
// fully durable the moment it stops being written.
func (l *Log) rotateLocked() error {
	seg := l.active
	if l.cfg.Sync == SyncInterval && l.unsynced > 0 {
		if err := l.fsyncLocked(seg, &l.fsyncRotate); err != nil {
			return err
		}
	}
	seg.rotated = true
	switch {
	case seg.pending == 0 && seg.reserved == 0 && !seg.unflushed:
		// Already fully drained and flushed through to the backend: no
		// truncate barrier needed, just drop it.
		l.removeSegLocked(seg)
	case seg.pending == 0 && seg.reserved == 0:
		// Drained, but the backend flush failed when the drainer tried to
		// rewind it: the applied records may not be durable yet, so the
		// file stays on disk for recovery (idempotent re-apply) and its
		// release callbacks stay withheld.
		l.drainErrors.Inc()
		_ = seg.f.Close()
	default:
		l.rotatedSegs = append(l.rotatedSegs, seg)
	}
	return l.openActive()
}

// removeSegLocked closes and deletes a fully drained segment file. Removal
// failure is not fatal — the records were all applied, and recovery would
// only re-apply them idempotently — but it is counted, and the records'
// release callbacks are withheld (the file could still be replayed).
func (l *Log) removeSegLocked(seg *segment) {
	l.fire(CrashBeforeTruncate)
	_ = seg.f.Close()
	if err := os.Remove(seg.path); err != nil {
		l.drainErrors.Inc()
		return
	}
	l.truncated.Inc()
	l.fire(CrashAfterTruncate)
	l.releaseSegLocked(seg)
}

// releaseSegLocked fires and clears the segment's accumulated release
// callbacks, after its bytes have durably left the log. Callbacks are
// plain bookkeeping on the caller's side (descriptor counters) — cheap and
// non-blocking — so invoking them under l.mu is fine.
func (l *Log) releaseSegLocked(seg *segment) {
	rel := seg.releases
	seg.releases = nil
	for _, f := range rel {
		f()
	}
}

// drain is the background replay loop: take the whole queue as one batch,
// plan it through the compaction interval map, then apply each record's
// surviving byte ranges to the backend in FIFO order, report through done,
// and release segment space. Global FIFO order preserves per-name append
// order (the property the deferred-write semantics need); compaction
// preserves it too — a shadowed byte is simply written by its newest
// writer instead of every writer.
func (l *Log) drain() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && len(l.sweeps) == 0 && !(l.closed && len(l.cohortQ) == 0) {
			l.cond.Wait()
		}
		if len(l.sweeps) > 0 {
			seg := l.sweeps[0]
			l.sweeps = l.sweeps[1:]
			l.finishSegLocked(seg)
			l.mu.Unlock()
			continue
		}
		if len(l.queue) == 0 {
			// Closed, fully drained, and no cohort can still publish.
			l.mu.Unlock()
			return
		}
		batch := l.queue
		l.queue = nil
		l.draining = len(batch)
		l.mu.Unlock()

		plans, skipped := compactBatch(batch)
		if skipped > 0 {
			l.compacted.Add(uint64(skipped))
		}
		for i := range batch {
			rec := batch[i]
			err := l.applySpans(rec, plans[i])
			if err != nil {
				l.drainErrors.Inc()
			} else {
				l.drained.Inc()
			}
			if rec.done != nil {
				rec.done(err)
			}
			if err != nil && l.cfg.DrainFailed != nil {
				l.drainRepair.Inc()
				l.cfg.DrainFailed(rec.name, rec.off, rec.n)
			}

			l.mu.Lock()
			l.draining--
			rec.seg.pending--
			l.liveBytes -= rec.frame
			if rec.released != nil {
				// Queued for the segment's release barrier: the durable copy
				// outlives the apply until the whole segment is truncated.
				rec.seg.releases = append(rec.seg.releases, rec.released)
			}
			if rec.seg.pending == 0 && rec.seg.reserved == 0 {
				l.finishSegLocked(rec.seg)
			}
			l.mu.Unlock()
		}
	}
}

// finishSegLocked runs the segment-completion barrier once a segment has
// no pending or reserved records: flush the backend handles its records
// wrote through, then remove (rotated) or rewind (active) the file and
// fire the release callbacks. The segment is about to lose the records'
// only durable copy, so the flush comes first — a crash immediately after
// the truncate cannot lose an applied-but-unsynced record. On flush
// failure the rotated segment stays on disk for the next recovery
// (idempotent re-apply) and the active one keeps its bytes. Drainer-side
// only (syncBackendCache touches the drainer's handle cache).
func (l *Log) finishSegLocked(seg *segment) {
	if seg.pending != 0 || seg.reserved != 0 {
		// A sweep raced new reservations or appends; whoever completes them
		// finishes the segment.
		return
	}
	if seg.rotated {
		found := false
		for i, s := range l.rotatedSegs {
			if s == seg {
				l.rotatedSegs = append(l.rotatedSegs[:i], l.rotatedSegs[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			return // already finished by an earlier completion
		}
		if l.syncBackendCache() == nil {
			l.removeSegLocked(seg)
		} else {
			l.drainErrors.Inc()
			_ = seg.f.Close()
		}
		return
	}
	if seg.size == 0 && !seg.unflushed {
		return // already rewound; nothing to flush or release
	}
	if l.syncBackendCache() == nil {
		// Active segment fully drained: rewind it in place so a quiet log
		// stays one small file.
		seg.unflushed = false
		if err := seg.f.Truncate(0); err == nil {
			seg.size = 0
			l.truncated.Inc()
			l.releaseSegLocked(seg)
		}
	} else {
		// Active segment drained but the backend flush failed: mark it so
		// a later rotation keeps the file instead of dropping the records'
		// only maybe-durable copy.
		seg.unflushed = true
	}
}

// syncBackendCache flushes the drainer's current backend handle and repays
// any outstanding sync debt (names whose eviction-time Sync failed, left
// applied-but-unsynced). Called before a drained segment is discarded; it
// must succeed for every name with applied records — current and evicted —
// before any segment may be released, or a crash after the truncate could
// lose an applied-but-unsynced record that no longer has a WAL copy.
func (l *Log) syncBackendCache() error {
	if l.cacheHandle != nil {
		if err := l.cacheHandle.Sync(); err != nil {
			return fmt.Errorf("%w: syncing backend before truncate: %v", core.EIO, err)
		}
		delete(l.syncDebt, l.cacheName)
	}
	for name := range l.syncDebt {
		h, err := l.cfg.Backend.Open(name, true)
		if err != nil {
			return fmt.Errorf("%w: reopening %q to repay sync debt: %v", core.EIO, name, err)
		}
		serr := h.Sync()
		_ = h.Close()
		if serr != nil {
			return fmt.Errorf("%w: syncing %q before truncate: %v", core.EIO, name, serr)
		}
		delete(l.syncDebt, name)
	}
	return nil
}

// applySpans reads a record's surviving byte ranges back from its segment
// and writes them to the backend, reusing the one-slot handle cache. An
// empty plan means the record was fully shadowed by newer records in the
// same batch: nothing to write, the record succeeds vacuously.
func (l *Log) applySpans(rec record, spans []span) error {
	if len(spans) == 0 {
		return nil
	}
	if l.cacheHandle == nil || l.cacheName != rec.name {
		if l.cacheHandle != nil {
			// Sync before eviction: see syncBackendCache. A failure is
			// sticky — the name joins the sync debt, so no segment can be
			// released until a later sync of that name succeeds. Without
			// the debt, a segment holding several names' records could be
			// deleted while the evicted name's applied writes are still
			// unsynced, losing them on a crash.
			if l.cacheHandle.Sync() != nil {
				l.drainErrors.Inc()
				if l.syncDebt == nil {
					l.syncDebt = make(map[string]struct{})
				}
				l.syncDebt[l.cacheName] = struct{}{}
			}
			_ = l.cacheHandle.Close()
			l.cacheHandle = nil
		}
		h, err := l.cfg.Backend.Open(rec.name, true)
		if err != nil {
			return fmt.Errorf("%w: opening %q for drain: %v", core.EIO, rec.name, err)
		}
		l.cacheName, l.cacheHandle = rec.name, h
	}
	for _, sp := range spans {
		n := int(sp.hi - sp.lo)
		buf := make([]byte, n)
		if _, err := rec.seg.f.ReadAt(buf, rec.dataPos+(sp.lo-rec.off)); err != nil {
			return fmt.Errorf("%w: reading back spilled record: %v", core.EIO, err)
		}
		w, err := l.cacheHandle.WriteAt(buf, sp.lo)
		if err != nil {
			return fmt.Errorf("%w: draining to %q: %v", core.EIO, rec.name, err)
		}
		if w < n {
			return fmt.Errorf("%w: short drain write (%d of %d bytes)", core.EIO, w, n)
		}
	}
	return nil
}

// fire invokes the crash hook if one is installed. cfg.Crash is immutable
// after Open, so fire is safe with or without l.mu held (the batch-write
// points fire outside the lock); the production hook never returns
// (SIGKILL), and test hooks must be safe for concurrent use.
func (l *Log) fire(point string) {
	if l.cfg.Crash != nil {
		l.cfg.Crash(point)
	}
}

// Close stops appends, waits for the drainer to apply every queued record,
// and releases the files. A fully drained log leaves an empty active
// segment behind; recovery of an empty segment is a no-op.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.wg.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cacheHandle != nil {
		_ = l.cacheHandle.Close()
		l.cacheHandle = nil
	}
	var err error
	if l.active != nil {
		if l.active.size == 0 {
			_ = l.active.f.Close()
			if rerr := os.Remove(l.active.path); rerr != nil {
				err = fmt.Errorf("%w: removing empty segment: %v", core.EIO, rerr)
			}
		} else {
			// Shouldn't happen after a full drain, but if it does the
			// segment stays for the next recovery rather than vanishing.
			_ = l.active.f.Close()
		}
		l.active = nil
	}
	return err
}

// Stats is a point-in-time snapshot for tests and /statz.
type Stats struct {
	Appends   uint64
	Drained   uint64
	DrainErrs uint64
	Replayed  uint64
	Torn      uint64
	Truncated uint64
	Syncs     uint64
	// GroupBatches is how many group-commit cohorts have published;
	// Appends/GroupBatches is the realised fsync amortisation.
	GroupBatches uint64
	// CompactedBytes is how many spilled bytes the drainer skipped because
	// newer records in the same batch covered them.
	CompactedBytes uint64
	LiveBytes      int64
	Lag            int
	Segments       int
}

// SnapshotStats returns current counters and occupancy.
func (l *Log) SnapshotStats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:        l.appends.Value(),
		Drained:        l.drained.Value(),
		DrainErrs:      l.drainErrors.Value(),
		Replayed:       l.replayed.Value(),
		Torn:           l.torn.Value(),
		Truncated:      l.truncated.Value(),
		Syncs:          l.syncs.Value(),
		GroupBatches:   l.batchOps.Count(),
		CompactedBytes: l.compacted.Value(),
		LiveBytes:      l.liveBytes,
		Lag:            len(l.queue) + l.draining,
		Segments:       l.segmentsLocked(),
	}
}

func (l *Log) segmentsLocked() int {
	n := len(l.rotatedSegs)
	if l.active != nil {
		n++
	}
	return n
}

// Register exposes the log's instruments on reg under the iofwd_wal_*
// families.
func (l *Log) Register(reg *telemetry.Registry) {
	reg.MustRegister("iofwd_wal_appends_total",
		"Writes spilled to the WAL after BML admission timed out.", &l.appends)
	reg.MustRegister("iofwd_wal_append_errors_total",
		"WAL appends that failed (caller fell back to the sync path).", &l.appendErrors)
	reg.MustRegister("iofwd_wal_replayed_total",
		"Records replayed to the backend during startup recovery.", &l.replayed)
	reg.MustRegister("iofwd_wal_replay_errors_total",
		"Recovery records the backend rejected (segment kept on disk).", &l.replayErrors)
	reg.MustRegister("iofwd_wal_torn_discarded_total",
		"Torn segment tails discarded during recovery.", &l.torn)
	reg.MustRegister("iofwd_wal_drained_total",
		"Spilled records applied to the backend by the drainer.", &l.drained)
	reg.MustRegister("iofwd_wal_drain_errors_total",
		"Spilled records whose backend write failed (deferred error).", &l.drainErrors)
	reg.MustRegister("iofwd_wal_truncated_segments_total",
		"Segments truncated or removed after draining fully.", &l.truncated)
	reg.MustRegister("iofwd_wal_syncs_total",
		"fsyncs of the active segment.", &l.syncs)
	reg.MustRegister("iofwd_wal_fsyncs_total",
		"fsyncs of the active segment by reason.", &l.fsyncAppend, telemetry.L("reason", "append"))
	reg.MustRegister("iofwd_wal_fsyncs_total",
		"fsyncs of the active segment by reason.", &l.fsyncInterval, telemetry.L("reason", "interval"))
	reg.MustRegister("iofwd_wal_fsyncs_total",
		"fsyncs of the active segment by reason.", &l.fsyncRotate, telemetry.L("reason", "rotate"))
	reg.MustRegister("iofwd_wal_fsyncs_total",
		"fsyncs of the active segment by reason.", &l.fsyncBatch, telemetry.L("reason", "batch"))
	reg.MustRegister("iofwd_wal_commit_batch_ops",
		"Records per group-commit cohort (fsync amortisation).", &l.batchOps)
	reg.MustRegister("iofwd_wal_commit_batch_bytes",
		"Frame bytes per group-commit cohort.", &l.batchBytes)
	reg.MustRegister("iofwd_wal_compacted_bytes_total",
		"Spilled bytes skipped at drain: newer records in the batch covered them.", &l.compacted)
	reg.MustRegister("iofwd_wal_drain_repair_enqueues_total",
		"Drain/replay failures handed to the backend repair hook.", &l.drainRepair)
	reg.GaugeFunc("iofwd_wal_bytes",
		"Bytes on disk awaiting drain.", func() int64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return l.liveBytes
		})
	reg.GaugeFunc("iofwd_wal_drain_lag_records",
		"Appended records not yet applied to the backend.", func() int64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return int64(len(l.queue) + l.draining)
		})
	reg.GaugeFunc("iofwd_wal_segments",
		"Live segment files (active + rotated awaiting drain).", func() int64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return int64(l.segmentsLocked())
		})
}
