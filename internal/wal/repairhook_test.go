package wal

// Drain-into-repair hook tests: when a spilled record's backend apply
// fails — live drain or recovery replay — Config.DrainFailed must receive
// the record's (name, off, n) so a replicated backend can mark the
// affected stripes stale and repair them, instead of replicas silently
// disagreeing about bytes the client was promised.

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
)

// hookCalls records DrainFailed invocations from the drainer goroutine.
type hookCalls struct {
	mu    sync.Mutex
	calls []struct {
		name string
		off  int64
		n    int
	}
}

func (h *hookCalls) hook(name string, off int64, n int) {
	h.mu.Lock()
	h.calls = append(h.calls, struct {
		name string
		off  int64
		n    int
	}{name, off, n})
	h.mu.Unlock()
}

func (h *hookCalls) snapshot() []struct {
	name string
	off  int64
	n    int
} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append(h.calls[:0:0], h.calls...)
}

func TestDrainFailedHookOnDrainError(t *testing.T) {
	var hooked hookCalls
	lg, _, err := Open(Config{
		Dir:         t.TempDir(),
		Backend:     &failingBackend{Backend: core.NewMemBackend(), failWrites: true},
		Sync:        SyncNever,
		DrainFailed: hooked.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newCollect(1)
	if err := lg.Append("obj", 96, pattern(0, 32), c.done, nil); err != nil {
		t.Fatal(err)
	}
	if errs := c.wait(t, 1); !errors.Is(errs[0], core.EIO) {
		t.Fatalf("drain error %v does not wrap EIO", errs[0])
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	calls := hooked.snapshot()
	if len(calls) != 1 {
		t.Fatalf("DrainFailed fired %d times, want 1: %+v", len(calls), calls)
	}
	if c := calls[0]; c.name != "obj" || c.off != 96 || c.n != 32 {
		t.Fatalf("DrainFailed(%q, %d, %d), want (\"obj\", 96, 32)", c.name, c.off, c.n)
	}
	if got := lg.drainRepair.Value(); got != 1 {
		t.Fatalf("drainRepair counter = %d, want 1", got)
	}
}

func TestDrainFailedHookOnRecoveryReplay(t *testing.T) {
	dir := t.TempDir()
	frame := encodeFrame(encodeRecordHeader("obj", 64), pattern(0, 16))
	if err := os.WriteFile(filepath.Join(dir, segName(0)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	var hooked hookCalls
	lg, stats, err := Open(Config{
		Dir:         dir,
		Backend:     &failingBackend{Backend: core.NewMemBackend(), failWrites: true},
		DrainFailed: hooked.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = lg.Close()
	if stats.Errors != 1 || stats.Replayed != 0 {
		t.Fatalf("recover stats: %+v", stats)
	}
	calls := hooked.snapshot()
	if len(calls) != 1 {
		t.Fatalf("DrainFailed fired %d times during replay, want 1: %+v", len(calls), calls)
	}
	if c := calls[0]; c.name != "obj" || c.off != 64 || c.n != 16 {
		t.Fatalf("DrainFailed(%q, %d, %d), want (\"obj\", 64, 16)", c.name, c.off, c.n)
	}
}
