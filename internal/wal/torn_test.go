package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// tornFixture builds one segment holding nRecs records and returns the
// file bytes plus the byte offset where the last record's frame begins.
func tornFixture(nRecs, payloadLen int) (data []byte, lastStart int) {
	var buf bytes.Buffer
	for i := 0; i < nRecs; i++ {
		lastStart = buf.Len()
		buf.Write(encodeFrame(encodeRecordHeader("obj", int64(i*payloadLen)), pattern(i, payloadLen)))
	}
	return buf.Bytes(), lastStart
}

// recoverFixture writes seg to a fresh dir, runs recovery, and returns the
// backend plus recover stats.
func recoverFixture(t *testing.T, seg []byte) (*core.MemBackend, RecoverStats) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(0)), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	be := core.NewMemBackend()
	lg, stats, err := Open(Config{Dir: dir, Backend: be})
	if err != nil {
		t.Fatalf("recovery failed outright: %v", err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	return be, stats
}

// checkPrefix asserts the backend holds exactly the first n records of the
// fixture, byte for byte, and nothing of any later record.
func checkPrefix(t *testing.T, be *core.MemBackend, nRecs, payloadLen int) {
	t.Helper()
	got, ok := be.Bytes("obj")
	if nRecs == 0 {
		if ok && len(got) != 0 {
			t.Fatalf("backend holds %d bytes, want none", len(got))
		}
		return
	}
	if !ok || len(got) != nRecs*payloadLen {
		t.Fatalf("backend holds %d bytes, want exactly %d (the %d intact records)",
			len(got), nRecs*payloadLen, nRecs)
	}
	for i := 0; i < nRecs; i++ {
		if !bytes.Equal(got[i*payloadLen:(i+1)*payloadLen], pattern(i, payloadLen)) {
			t.Fatalf("record %d bytes corrupted after recovery", i)
		}
	}
}

// TestTornTailTruncation truncates the segment at EVERY byte offset of the
// last record's frame and asserts recovery applies exactly the intact
// prefix: all earlier records, none of the cut one.
func TestTornTailTruncation(t *testing.T) {
	const nRecs, payloadLen = 4, 48
	seg, lastStart := tornFixture(nRecs, payloadLen)
	frameLen := len(seg) - lastStart
	for cut := 0; cut <= frameLen; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut%03d", cut), func(t *testing.T) {
			be, stats := recoverFixture(t, seg[:lastStart+cut])
			wantIntact := nRecs - 1
			if cut == frameLen {
				wantIntact = nRecs
			}
			checkPrefix(t, be, wantIntact, payloadLen)
			wantTorn := 1
			if cut == 0 || cut == frameLen {
				// Cut at a frame boundary: the file ends cleanly, nothing
				// is torn (at cut==frameLen the last record is intact and
				// must be applied too).
				wantTorn = 0
			}
			wantReplayed := nRecs - 1
			if cut == frameLen {
				wantReplayed = nRecs
			}
			if stats.Torn != wantTorn || stats.Replayed != wantReplayed {
				t.Fatalf("cut %d/%d: stats %+v, want torn=%d replayed=%d",
					cut, frameLen, stats, wantTorn, wantReplayed)
			}
		})
	}
}

// TestTornTailCorruption flips one byte at EVERY offset of the last
// record's frame and asserts recovery keeps the intact prefix and discards
// the corrupt record (CRC or structural check, depending on the byte).
func TestTornTailCorruption(t *testing.T) {
	const nRecs, payloadLen = 4, 48
	seg, lastStart := tornFixture(nRecs, payloadLen)
	frameLen := len(seg) - lastStart
	for off := 0; off < frameLen; off++ {
		off := off
		t.Run(fmt.Sprintf("flip%03d", off), func(t *testing.T) {
			mut := append([]byte(nil), seg...)
			mut[lastStart+off] ^= 0xa5
			be, stats := recoverFixture(t, mut)
			checkPrefix(t, be, nRecs-1, payloadLen)
			if stats.Replayed != nRecs-1 {
				t.Fatalf("flip at %d: replayed %d, want %d", off, stats.Replayed, nRecs-1)
			}
			if stats.Torn != 1 {
				t.Fatalf("flip at %d: torn=%d, want 1", off, stats.Torn)
			}
		})
	}
}

// TestTornMidSegment pins the scan-stops-at-tear rule: a corrupt record in
// the middle of a segment discards it AND everything after it in that
// segment (append order would otherwise be violated), while later segments
// still replay.
func TestTornMidSegment(t *testing.T) {
	const payloadLen = 48
	dir := t.TempDir()
	// Segment 0: rec0 intact, rec1 corrupt, rec2 intact-but-after-tear.
	seg0, lastStart := tornFixture(2, payloadLen)
	seg0[lastStart+frameHeader+4] ^= 0xff // corrupt rec1's payload
	seg0 = append(seg0, encodeFrame(encodeRecordHeader("obj", 2*payloadLen), pattern(2, payloadLen))...)
	if err := os.WriteFile(filepath.Join(dir, segName(0)), seg0, 0o644); err != nil {
		t.Fatal(err)
	}
	// Segment 1: rec at a disjoint offset, fully intact.
	seg1 := encodeFrame(encodeRecordHeader("obj", 10*payloadLen), pattern(9, payloadLen))
	if err := os.WriteFile(filepath.Join(dir, segName(1)), seg1, 0o644); err != nil {
		t.Fatal(err)
	}
	be := core.NewMemBackend()
	lg, stats, err := Open(Config{Dir: dir, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if stats.Replayed != 2 || stats.Torn != 1 || stats.Segments != 2 {
		t.Fatalf("stats: %+v, want replayed=2 torn=1 segments=2", stats)
	}
	got, _ := be.Bytes("obj")
	if !bytes.Equal(got[:payloadLen], pattern(0, payloadLen)) {
		t.Fatalf("rec0 not replayed")
	}
	for _, b := range got[payloadLen : 3*payloadLen] {
		if b != 0 {
			t.Fatalf("bytes from the torn tail leaked into the backend")
		}
	}
	if !bytes.Equal(got[10*payloadLen:11*payloadLen], pattern(9, payloadLen)) {
		t.Fatalf("segment after the torn one not replayed")
	}
}

// TestTornBatchTruncation is the group-commit shape of the torn-tail
// matrix: a cohort's frames hit the disk as ONE buffered write, so a crash
// mid-batch (CrashMidBatchAppend) can tear the file at any byte of any
// frame in the cohort — not just the last record. Cutting a four-frame
// batch at every byte offset of the whole file must recover exactly the
// complete-frame prefix: all-or-nothing per record, prefix-closed per
// cohort.
func TestTornBatchTruncation(t *testing.T) {
	const nRecs, payloadLen = 4, 32
	seg, lastStart := tornFixture(nRecs, payloadLen)
	frameLen := (len(seg) - lastStart) // fixed name+payload: all frames equal
	if frameLen*nRecs != len(seg) {
		t.Fatalf("fixture frames are not equal-sized: %d * %d != %d", frameLen, nRecs, len(seg))
	}
	for cut := 0; cut <= len(seg); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut%03d", cut), func(t *testing.T) {
			be, stats := recoverFixture(t, seg[:cut])
			intact := cut / frameLen
			checkPrefix(t, be, intact, payloadLen)
			wantTorn := 1
			if cut%frameLen == 0 {
				wantTorn = 0 // clean frame boundary: nothing mid-record
			}
			if stats.Replayed != intact || stats.Torn != wantTorn {
				t.Fatalf("cut %d: stats %+v, want replayed=%d torn=%d",
					cut, stats, intact, wantTorn)
			}
		})
	}
}
