package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// frameLen is the on-disk frame size of one record with the given name and
// payload length — what the cohort byte-cap and rotation tests size their
// limits with.
func frameLen(name string, n int) int {
	return frameHeader + recHeaderLen(name) + n
}

// gateBackend wraps a MemBackend but blocks every WriteAt until released,
// so a test can pile records into the drain queue (forcing one big
// compaction batch) or keep segments pending on disk while it inspects
// them.
type gateBackend struct {
	*core.MemBackend
	gate chan struct{}
}

func newGateBackend() *gateBackend {
	return &gateBackend{MemBackend: core.NewMemBackend(), gate: make(chan struct{})}
}

func (g *gateBackend) release() { close(g.gate) }

func (g *gateBackend) Open(name string, create bool) (core.Handle, error) {
	h, err := g.MemBackend.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &gateHandle{Handle: h, gate: g.gate}, nil
}

type gateHandle struct {
	core.Handle
	gate chan struct{}
}

func (h *gateHandle) WriteAt(p []byte, off int64) (int, error) {
	<-h.gate
	return h.Handle.WriteAt(p, off)
}

// groupAppend launches n concurrent appends of payloadLen-byte records at
// disjoint offsets of "obj" and waits for every ack, returning the ack
// errors and how many Append calls returned a (non-callback) error.
func groupAppend(t *testing.T, lg *Log, n, payloadLen int) []error {
	t.Helper()
	col := newCollect(n)
	var wg sync.WaitGroup
	var refused atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := lg.Append("obj", int64(i*payloadLen), pattern(i, payloadLen), col.done, nil)
			if err != nil {
				refused.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if r := refused.Load(); r != 0 {
		t.Fatalf("%d of %d grouped appends were refused", r, n)
	}
	return col.wait(t, n)
}

// TestGroupCommitSharesFsync: with the linger primed and the cohort byte
// cap set to exactly N frames, N concurrent appends form one cohort — one
// fsync, one batch of N — and every member is acked durable.
func TestGroupCommitSharesFsync(t *testing.T) {
	const n, payloadLen = 8, 100
	dir := t.TempDir()
	be := core.NewMemBackend()
	lg, _, err := Open(Config{
		Dir: dir, Backend: be, Sync: SyncAlways,
		GroupCommit:   true,
		GroupLinger:   10 * time.Second, // commit must come from the byte-cap seal
		GroupMaxBytes: int64(n * frameLen("obj", payloadLen)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the count-wake open: with extra phantom in-flight appends the
	// cohort can never capture the whole population, so the leader lingers
	// until the seal (or timer) this test arranges.
	lg.inflight.Add(int64(n))
	for i, err := range groupAppend(t, lg, n, payloadLen) {
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	st := lg.SnapshotStats()
	if st.Syncs != 1 {
		t.Fatalf("got %d fsyncs for %d concurrent appends, want 1 shared one", st.Syncs, n)
	}
	if st.GroupBatches != 1 {
		t.Fatalf("got %d batches, want 1", st.GroupBatches)
	}
	if got := lg.batchOps.Max(); got != n {
		t.Fatalf("batch held %d records, want %d", got, n)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := be.Bytes("obj")
	for i := 0; i < n; i++ {
		if !bytes.Equal(got[i*payloadLen:(i+1)*payloadLen], pattern(i, payloadLen)) {
			t.Fatalf("record %d corrupted after drain", i)
		}
	}
}

// TestGroupCommitCohortNeverStraddlesRotation: with a segment that holds
// exactly two frames, three concurrent appends must land as two clean
// single-segment cohorts (2 frames + 1 frame) — never a cohort whose
// frames span the rotation boundary. The drain gate keeps both segment
// files on disk so the test can scan them after all three acks.
func TestGroupCommitCohortNeverStraddlesRotation(t *testing.T) {
	const payloadLen = 64
	fl := frameLen("obj", payloadLen)
	dir := t.TempDir()
	be := newGateBackend()
	lg, _, err := Open(Config{
		Dir: dir, Backend: be, Sync: SyncAlways,
		SegmentBytes:  int64(2 * fl),
		GroupCommit:   true,
		GroupLinger:   50 * time.Millisecond,
		GroupMaxBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the count-wake open: with extra phantom in-flight appends the
	// cohort can never capture the whole population, so the leader lingers
	// until the seal (or timer) this test arranges.
	lg.inflight.Add(8)
	// Append returns are the durability acks; the done callbacks sit
	// behind the gated drain, so wait only on the former.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := lg.Append("obj", int64(i*payloadLen), pattern(i, payloadLen), nil, nil); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// All three acked; the gate holds their records pending, so both
	// segment files are still on disk. Every file must scan clean (no
	// cohort left a hole at a rotation boundary) and hold whole frames
	// summing to the three appended records.
	paths, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d segment files, want 2 (one rotation)", len(paths))
	}
	frames := 0
	seen := make(map[int64]bool)
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		sc := NewScanner(f)
		perSeg := 0
		for {
			payload, err := sc.Next()
			if err != nil {
				if errors.Is(err, ErrTorn) {
					t.Fatalf("segment %s scans torn: a cohort straddled the rotation", p)
				}
				break
			}
			name, off, data, derr := decodeRecord(payload)
			if derr != nil || name != "obj" {
				t.Fatalf("segment %s holds a mangled record: %v", p, derr)
			}
			i := off / payloadLen
			if !bytes.Equal(data, pattern(int(i), payloadLen)) {
				t.Fatalf("record at off %d corrupted on disk", off)
			}
			seen[off] = true
			perSeg++
		}
		f.Close()
		if perSeg > 2 {
			t.Fatalf("segment %s holds %d frames, capacity is 2", p, perSeg)
		}
		frames += perSeg
	}
	if frames != 3 || len(seen) != 3 {
		t.Fatalf("segments hold %d frames (%d distinct), want all 3 records", frames, len(seen))
	}

	be.release()
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitAllOrNothingAck: at the after-batch-sync-before-ack crash
// point the whole cohort is durable on disk, yet no member's Append has
// returned — the cohort is acknowledged all-or-nothing.
func TestGroupCommitAllOrNothingAck(t *testing.T) {
	const n, payloadLen = 8, 100
	dir := t.TempDir()
	var returned atomic.Int64
	var ackedAtFire atomic.Int64
	ackedAtFire.Store(-1)
	cfg := Config{
		Dir: dir, Backend: core.NewMemBackend(), Sync: SyncAlways,
		GroupCommit:   true,
		GroupLinger:   10 * time.Second,
		GroupMaxBytes: int64(n * frameLen("obj", payloadLen)),
		Crash: func(point string) {
			if point == CrashAfterBatchSync {
				ackedAtFire.CompareAndSwap(-1, returned.Load())
			}
		},
	}
	lg, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hold the count-wake open: with extra phantom in-flight appends the
	// cohort can never capture the whole population, so the leader lingers
	// until the seal (or timer) this test arranges.
	lg.inflight.Add(int64(n))
	col := newCollect(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := lg.Append("obj", int64(i*payloadLen), pattern(i, payloadLen), col.done, nil); err != nil {
				t.Errorf("append %d refused: %v", i, err)
			}
			returned.Add(1)
		}(i)
	}
	wg.Wait()
	col.wait(t, n)
	if got := ackedAtFire.Load(); got != 0 {
		t.Fatalf("%d appends had already returned when the batch became durable, want 0 (all-or-nothing ack)", got)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitFailureUnparksCohort: when the batch write fails, every
// cohort member's Append returns the error, nothing is acked, and the
// reservation accounting rolls back.
func TestGroupCommitFailureUnparksCohort(t *testing.T) {
	const n, payloadLen = 4, 100
	dir := t.TempDir()
	lg, _, err := Open(Config{
		Dir: dir, Backend: core.NewMemBackend(), Sync: SyncAlways,
		GroupCommit:   true,
		GroupLinger:   10 * time.Second,
		GroupMaxBytes: int64(n * frameLen("obj", payloadLen)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the count-wake open: with extra phantom in-flight appends the
	// cohort can never capture the whole population, so the leader lingers
	// until the seal (or timer) this test arranges.
	lg.inflight.Add(int64(n))
	// Close the active segment file underneath the log: the cohort's batch
	// write must fail, and the failure must reach every parked member.
	lg.mu.Lock()
	lg.active.f.Close()
	lg.mu.Unlock()

	var wg sync.WaitGroup
	var refused atomic.Int64
	var acked atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := lg.Append("obj", int64(i*payloadLen), pattern(i, payloadLen),
				func(error) { acked.Add(1) }, nil)
			if err != nil {
				refused.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if got := refused.Load(); got != n {
		t.Fatalf("%d of %d members saw the batch failure, want all", got, n)
	}
	if got := acked.Load(); got != 0 {
		t.Fatalf("%d done callbacks fired for a failed cohort, want 0", got)
	}
	lg.mu.Lock()
	if lg.liveBytes != 0 || lg.active.reserved != 0 || lg.active.size != 0 {
		t.Fatalf("rollback left liveBytes=%d reserved=%d size=%d, want all zero",
			lg.liveBytes, lg.active.reserved, lg.active.size)
	}
	lg.mu.Unlock()
	st := lg.SnapshotStats()
	if st.Syncs != 0 || st.Appends != 0 {
		t.Fatalf("failed cohort published: syncs=%d appends=%d", st.Syncs, st.Appends)
	}
	_ = lg.Close()
}

// TestGroupCommitSingleWriter: a lone sequential writer never lingers
// (cohorts stay singletons) and still gets per-record durability.
func TestGroupCommitSingleWriter(t *testing.T) {
	const n, payloadLen = 6, 80
	dir := t.TempDir()
	be := core.NewMemBackend()
	lg, _, err := Open(Config{
		Dir: dir, Backend: be, Sync: SyncAlways,
		GroupCommit: true,
		GroupLinger: 10 * time.Second, // would hang the test if a singleton lingered
	})
	if err != nil {
		t.Fatal(err)
	}
	col := newCollect(n)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := lg.Append("obj", int64(i*payloadLen), pattern(i, payloadLen), col.done, nil); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	for i, err := range col.wait(t, n) {
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("sequential appends took %v: a singleton cohort lingered", el)
	}
	st := lg.SnapshotStats()
	if st.Syncs != n || st.GroupBatches != n {
		t.Fatalf("got %d syncs / %d batches for %d sequential appends, want %d singleton cohorts",
			st.Syncs, st.GroupBatches, n, n)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := be.Bytes("obj")
	if len(got) != n*payloadLen {
		t.Fatalf("backend holds %d bytes, want %d", len(got), n*payloadLen)
	}
}
