package wal

// End-to-end crash/recovery drills: run fwdd as a real process, SIGKILL it
// at deterministic WAL crash points mid-burst (internal/core/fault.CrashSet),
// restart it on the same -wal-dir, and verify every acknowledged spilled
// write is byte-exact on the backend.
//
// The burst is forced down the spill path deterministically: the BML is one
// buffer class wide of exactly 16 slots (-bml 1 MiB, 64 KiB writes), a
// "plug" file fills all 16 slots, and a fault-injected backend latency keeps
// the single worker stuck so no slot frees until long after the burst — so
// every "data" write misses admission, times out (-bml-timeout), and spills
// to the WAL. Under -wal-sync always an acknowledged spill is fsynced, so
// the acked set is exactly what recovery must reproduce.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
)

const (
	e2ePayload = 64 << 10 // one BML class exactly
	e2ePlugs   = 16       // fills the 1 MiB pool
)

var (
	fwddOnce sync.Once
	fwddBin  string
	fwddErr  error
)

// buildFwdd compiles cmd/fwdd once per test process.
func buildFwdd(t *testing.T) string {
	t.Helper()
	fwddOnce.Do(func() {
		dir, err := os.MkdirTemp("", "fwdd-e2e-")
		if err != nil {
			fwddErr = err
			return
		}
		fwddBin = filepath.Join(dir, "fwdd")
		root, err := filepath.Abs("../..")
		if err != nil {
			fwddErr = err
			return
		}
		cmd := exec.Command("go", "build", "-o", fwddBin, "repro/cmd/fwdd")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			fwddErr = fmt.Errorf("building fwdd: %v\n%s", err, out)
		}
	})
	if fwddErr != nil {
		t.Fatal(fwddErr)
	}
	return fwddBin
}

var listenRe = regexp.MustCompile(`listening on (127\.0\.0\.1:\d+)`)

// daemon is one fwdd incarnation with captured stderr.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	exit chan error

	mu  sync.Mutex
	log bytes.Buffer
}

func (d *daemon) stderr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.String()
}

// startFwdd launches fwdd and waits for its listen line.
func startFwdd(t *testing.T, args ...string) *daemon {
	t.Helper()
	d := &daemon{
		cmd:  exec.Command(buildFwdd(t), args...),
		exit: make(chan error, 1),
	}
	pipe, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.cmd.Process.Kill() })
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		sent := false
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.log.WriteString(line)
			d.log.WriteByte('\n')
			d.mu.Unlock()
			if !sent {
				if m := listenRe.FindStringSubmatch(line); m != nil {
					addrc <- m[1]
					sent = true
				}
			}
		}
		d.exit <- d.cmd.Wait()
	}()
	select {
	case d.addr = <-addrc:
	case err := <-d.exit:
		t.Fatalf("fwdd exited before listening: %v\nstderr:\n%s", err, d.stderr())
	case <-time.After(20 * time.Second):
		t.Fatalf("fwdd never reported a listen address\nstderr:\n%s", d.stderr())
	}
	return d
}

// waitExit blocks until the daemon exits and returns the wait error.
func (d *daemon) waitExit(t *testing.T, timeout time.Duration) error {
	t.Helper()
	select {
	case err := <-d.exit:
		return err
	case <-time.After(timeout):
		t.Fatalf("fwdd did not exit in %v\nstderr:\n%s", timeout, d.stderr())
		return nil
	}
}

// sigkilled reports whether the exited daemon died from SIGKILL (self-kill
// at a crash point) rather than a clean exit.
func sigkilled(d *daemon) bool {
	ps := d.cmd.ProcessState
	if ps == nil {
		return false
	}
	if ws, ok := ps.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
		return true
	}
	return ps.ExitCode() == 137 // the os.Exit fallback in fault.CrashSet
}

// crashArgs builds the shared fwdd argument list for one incarnation.
// group selects the WAL append path: the legacy per-record crash points
// (mid-append, after-append) only fire with group commit off, the batch
// points (mid-batch-append, before-batch-sync, after-batch-sync-before-ack)
// only with it on.
func crashArgs(root, walDir string, segBytes int64, plugLat time.Duration, crash string, group bool) []string {
	args := []string{
		"-listen", "127.0.0.1:0",
		"-mode", "async",
		"-workers", "1",
		"-bml", "1",
		"-bml-timeout", "5ms",
		"-backend", "file",
		"-root", root,
		"-wal-dir", walDir,
		"-wal-sync", SyncAlways,
		"-wal-segment", fmt.Sprint(segBytes),
		fmt.Sprintf("-wal-group=%v", group),
	}
	if plugLat > 0 {
		args = append(args, "-fault", fmt.Sprintf("lat=1:%s,seed=1", plugLat))
	}
	if crash != "" {
		args = append(args, "-crash", crash)
	}
	return args
}

// runBurst plugs the BML, then writes nData patterned 64 KiB records to
// "data" until the daemon dies, returning which records were acknowledged.
func runBurst(t *testing.T, addr string, nData int) []bool {
	t.Helper()
	c, err := core.Dial("tcp", addr, core.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	plug, err := c.Open(context.Background(), "plug")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e2ePlugs; i++ {
		if _, err := plug.WriteAt(pattern(i, e2ePayload), int64(i*e2ePayload)); err != nil {
			t.Fatalf("plug write %d: %v", i, err)
		}
	}
	data, err := c.Open(context.Background(), "data")
	if err != nil {
		t.Fatal(err)
	}
	acked := make([]bool, nData)
	for i := 0; i < nData; i++ {
		if _, err := data.WriteAt(pattern(100+i, e2ePayload), int64(i*e2ePayload)); err != nil {
			break // the daemon died under us; everything before i is acked
		}
		acked[i] = true
	}
	return acked
}

// runBurstConcurrent plugs the BML, then lets `workers` goroutines — one
// connection each — write disjoint regions of "data" until the daemon
// dies. Concurrent spilled appends are what group commit batches into
// cohorts; each worker's WriteAt return is its ack, recorded per record.
func runBurstConcurrent(t *testing.T, addr string, workers, perWorker int) []bool {
	t.Helper()
	c, err := core.Dial("tcp", addr, core.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	plug, err := c.Open(context.Background(), "plug")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e2ePlugs; i++ {
		if _, err := plug.WriteAt(pattern(i, e2ePayload), int64(i*e2ePayload)); err != nil {
			t.Fatalf("plug write %d: %v", i, err)
		}
	}
	acked := make([]bool, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc, err := core.Dial("tcp", addr, core.WithTimeout(5*time.Second))
			if err != nil {
				return // the daemon died before this worker connected
			}
			defer wc.Close()
			f, err := wc.Open(context.Background(), "data")
			if err != nil {
				return
			}
			for i := 0; i < perWorker; i++ {
				idx := w*perWorker + i
				if _, err := f.WriteAt(pattern(100+idx, e2ePayload), int64(idx*e2ePayload)); err != nil {
					return // death under us; this worker's later records are unacked
				}
				acked[idx] = true
			}
		}(w)
	}
	wg.Wait()
	return acked
}

// verifyRecovered reads every acknowledged record back from a restarted
// daemon and checks it byte for byte.
func verifyRecovered(t *testing.T, addr string, acked []bool) int {
	t.Helper()
	c, err := core.Dial("tcp", addr, core.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Open(context.Background(), "data")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("fsync after restart: %v", err)
	}
	buf := make([]byte, e2ePayload)
	verified := 0
	for i, ok := range acked {
		if !ok {
			continue
		}
		if _, err := f.ReadAt(buf, int64(i*e2ePayload)); err != nil {
			t.Fatalf("record %d: acknowledged before the crash but unreadable after recovery: %v", i, err)
		}
		if !bytes.Equal(buf, pattern(100+i, e2ePayload)) {
			t.Fatalf("record %d: acknowledged bytes differ after recovery", i)
		}
		verified++
	}
	return verified
}

// TestCrashRecoveryE2E is the acceptance drill: SIGKILL fwdd mid-burst at
// each injected crash point, restart on the same -wal-dir, and require
// byte-exact recovery of every acknowledged write.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-level crash drills in -short mode")
	}
	cases := []struct {
		name     string
		crash    string
		segBytes int64
		plugLat  time.Duration
		nData    int
		// group runs fwdd with -wal-group=true; concurrent drives the burst
		// with 8 worker connections so spilled appends actually share cohorts.
		group      bool
		concurrent bool
		// wantUnacked requires the crash to interrupt the burst itself
		// (append-side points); drain-side points fire after the burst.
		wantUnacked bool
		wantTorn    bool
	}{
		// Killed halfway through writing the 8th spilled frame: the tail is
		// torn, records 1..7 were acknowledged and must survive.
		{name: "mid-append", crash: "mid-append:8", segBytes: 8 << 20,
			plugLat: 3 * time.Second, nData: 24, wantUnacked: true, wantTorn: true},
		// Killed after the 8th frame landed but before its reply: the acked
		// prefix plus possibly one unacked record recover.
		{name: "after-append", crash: "after-append:8", segBytes: 8 << 20,
			plugLat: 3 * time.Second, nData: 24, wantUnacked: true},
		// One record per segment; killed when the drainer finished the first
		// segment but before removing it — replay must be idempotent.
		{name: "before-truncate", crash: "before-truncate:1", segBytes: 4 << 10,
			plugLat: 1200 * time.Millisecond, nData: 12},
		// Killed right after the first segment was removed: its record must
		// already be fsynced on the backend (the drainer's durability rule).
		{name: "after-truncate", crash: "after-truncate:1", segBytes: 4 << 10,
			plugLat: 1200 * time.Millisecond, nData: 12},
		// Group-commit arm: 8 concurrent writers, batched cohorts. Killed
		// one byte short of finishing the 3rd batch write: the cohort is
		// torn on disk and none of its members were acknowledged, so
		// recovery discards the tear and every acked record still reads back.
		{name: "mid-batch-append", crash: "mid-batch-append:3", segBytes: 8 << 20,
			plugLat: 3 * time.Second, nData: 24, group: true, concurrent: true,
			wantUnacked: true, wantTorn: true},
		// Killed after the 3rd batch reached the file but before its fsync:
		// earlier (acked) cohorts must survive; batch 3 was never acked and
		// may or may not replay.
		{name: "before-batch-sync", crash: "before-batch-sync:3", segBytes: 8 << 20,
			plugLat: 3 * time.Second, nData: 24, group: true, concurrent: true,
			wantUnacked: true},
		// Killed after the 3rd batch's fsync but before any member unparked:
		// the whole cohort is durable yet unacknowledged — all-or-nothing at
		// the ack level means recovery may replay all of it, never half.
		{name: "after-batch-sync-before-ack", crash: "after-batch-sync-before-ack:3", segBytes: 8 << 20,
			plugLat: 3 * time.Second, nData: 24, group: true, concurrent: true,
			wantUnacked: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			root, walDir := t.TempDir(), t.TempDir()

			// Incarnation 1: crash point armed, backend latency holding the
			// plug in place.
			d1 := startFwdd(t, crashArgs(root, walDir, tc.segBytes, tc.plugLat, tc.crash, tc.group)...)
			var acked []bool
			if tc.concurrent {
				acked = runBurstConcurrent(t, d1.addr, 8, tc.nData/8)
			} else {
				acked = runBurst(t, d1.addr, tc.nData)
			}
			if err := d1.waitExit(t, 30*time.Second); err == nil {
				t.Fatalf("fwdd exited cleanly; want death at crash point %s", tc.crash)
			}
			if !sigkilled(d1) {
				t.Fatalf("fwdd died but not by SIGKILL: %v\nstderr:\n%s",
					d1.cmd.ProcessState, d1.stderr())
			}
			nAcked := 0
			for _, ok := range acked {
				if ok {
					nAcked++
				}
			}
			if nAcked == 0 {
				t.Fatalf("no data writes acknowledged before the crash\nstderr:\n%s", d1.stderr())
			}
			if tc.wantUnacked && nAcked == tc.nData {
				t.Fatalf("crash %s did not interrupt the burst (%d/%d acked)",
					tc.crash, nAcked, tc.nData)
			}

			// Incarnation 2: same backend root and WAL dir, no crash points,
			// no chaos — recovery replays survivors before listening.
			d2 := startFwdd(t, crashArgs(root, walDir, tc.segBytes, 0, "", tc.group)...)
			verified := verifyRecovered(t, d2.addr, acked)
			t.Logf("%s: %d/%d acked records byte-exact after kill+restart", tc.name, verified, tc.nData)
			if tc.wantTorn && !regexp.MustCompile(`\b[1-9]\d* torn tails discarded`).MatchString(d2.stderr()) {
				t.Fatalf("recovery log reports no torn tail after %s\nstderr:\n%s", tc.crash, d2.stderr())
			}
			_ = d2.cmd.Process.Signal(syscall.SIGTERM)
			if err := d2.waitExit(t, 30*time.Second); err != nil {
				t.Fatalf("restarted fwdd did not shut down cleanly: %v\nstderr:\n%s", err, d2.stderr())
			}
		})
	}
}
