package wal

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
)

// Group commit: under SyncAlways every append used to pay its own fsync,
// serialised on l.mu — the exact small-synchronous-write shape the paper's
// forwarding layer exists to absorb. With Config.GroupCommit, concurrent
// appends instead join a cohort. The first joiner is the leader; followers
// add their frames to the cohort's buffer and park. The leader writes the
// whole buffer with one positional append, fsyncs once, then publishes
// every member to the drain queue before any member unparks — the cohort
// is acknowledged all-or-nothing, and the fsync cost is shared.
//
// Cohorts commit in creation order (FIFO per segment). That ordering is a
// durability requirement, not a fairness nicety: recovery stops scanning a
// segment at the first tear, so if cohort N+1 reached disk before cohort N
// and the process died in between, N+1's acked records would sit beyond
// N's hole and be discarded. A cohort also never straddles a segment
// rotation — rotation seals the open cohort on the old segment and the
// triggering append starts a fresh cohort on the new one — so a cohort's
// frames are always one contiguous reserved region of one file.
type cohort struct {
	seq  uint64
	seg  *segment
	base int64 // segment offset where the cohort's frames land
	buf  []byte
	recs []record

	sealed   bool
	woken    bool
	sealedCh chan struct{} // closed on wake or seal; ends a leader's linger
	done     chan struct{} // closed once published or failed
	err      error
	failed   bool
}

// wakeLocked ends the leader's linger without closing the cohort to new
// members: joins keep accumulating until the leader reaches its commit
// turn and seals. Idempotent.
func (c *cohort) wakeLocked() {
	if !c.woken {
		c.woken = true
		close(c.sealedCh)
	}
}

// appendGrouped is Append's group-commit path: join (or lead) the open
// cohort, reserve the frame's region of the active segment, and park until
// the cohort's leader has made the whole batch durable.
func (l *Log) appendGrouped(name string, off int64, data []byte, frame []byte, done func(error), released func()) error {
	l.inflight.Add(1)
	defer l.inflight.Add(-1)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.cfg.MaxBytes > 0 && l.liveBytes+int64(len(frame)) > l.cfg.MaxBytes {
		live := l.liveBytes
		l.mu.Unlock()
		return fmt.Errorf("%w: %d live + %d frame > %d cap", ErrFull, live, len(frame), l.cfg.MaxBytes)
	}
	if l.active.size > 0 && l.active.size+int64(len(frame)) > l.cfg.SegmentBytes {
		// Seal-then-rotate: the open cohort stays whole on the old segment
		// and this append starts a new cohort on the fresh one.
		l.sealCohortLocked()
		if err := l.rotateLocked(); err != nil {
			l.appendErrors.Inc()
			l.mu.Unlock()
			return err
		}
	}
	c := l.curCohort
	leader := c == nil
	if leader {
		c = &cohort{
			seq:      l.nextCohortSeq,
			seg:      l.active,
			base:     l.active.size,
			sealedCh: make(chan struct{}),
			done:     make(chan struct{}),
		}
		l.nextCohortSeq++
		l.curCohort = c
		l.cohortQ = append(l.cohortQ, c)
	}
	seg := c.seg
	dataPos := seg.size + frameHeader + int64(recHeaderLen(name))
	c.buf = append(c.buf, frame...)
	c.recs = append(c.recs, record{
		seg: seg, name: name, off: off,
		dataPos: dataPos, n: len(data), frame: int64(len(frame)),
		done: done, released: released,
	})
	seg.size += int64(len(frame))
	seg.reserved++
	l.liveBytes += int64(len(frame))
	if int64(len(c.buf)) >= l.cfg.GroupMaxBytes {
		l.sealCohortLocked()
	} else if int64(len(c.recs)) >= l.inflight.Load() {
		// The cohort holds every append currently in flight: lingering
		// further cannot gain members, so end the leader's wait now. A lone
		// writer hits this on its own join (1 >= 1) and skips the window
		// entirely. The cohort stays open — stragglers arriving before the
		// leader's commit turn still share this fsync.
		c.wakeLocked()
	}
	l.mu.Unlock()

	if leader {
		l.lead(c)
	}
	<-c.done
	return c.err
}

// sealCohortLocked closes the open cohort to new members (byte cap,
// rotation, or the leader starting its commit). Sealing does not publish:
// the cohort keeps its reserved region until its commit turn.
func (l *Log) sealCohortLocked() {
	if c := l.curCohort; c != nil {
		c.sealed = true
		c.wakeLocked()
		l.curCohort = nil
	}
}

// lead runs the leader side of the protocol: optionally linger so
// concurrent appenders can share the fsync, seal, wait for the cohort's
// FIFO commit turn, write the whole batch with one buffered append and one
// fsync, then publish every member before any member is acknowledged.
func (l *Log) lead(c *cohort) {
	// Yield once before any linger/seal decision: concurrent appenders that
	// exist but have not been scheduled yet are invisible to the in-flight
	// count, and on a single-P runtime a leader that never parks would run
	// its whole commit before a second writer touched the CPU — every
	// cohort a singleton no matter how concurrent the workload. One
	// voluntary reschedule lets runnable appenders reach the open cohort;
	// on an idle log it returns immediately.
	runtime.Gosched()
	if l.cfg.GroupLinger > 0 {
		// Linger is evidence-driven: the wait ends as soon as the cohort has
		// captured every in-flight append (the joiner-side wake above), so
		// only the presence of appenders the cohort has not absorbed yet
		// keeps the leader here. A lone writer woke its own cohort when it
		// joined, and this select falls straight through the closed channel.
		//lint:allow simclock the linger window is a bounded real-time batching heuristic; crash points and replay stay op-ordered
		timer := time.NewTimer(l.cfg.GroupLinger)
		select {
		case <-c.sealedCh:
		case <-timer.C:
		}
		timer.Stop()
	}

	l.mu.Lock()
	for l.commitHead != c.seq && !c.failed {
		l.commitCond.Wait()
	}
	if c.failed {
		// A predecessor cohort on the same segment failed and took this one
		// down with it (failCohortsLocked already unparked the members).
		l.mu.Unlock()
		return
	}
	// Seal only now, at the commit turn: members kept joining through the
	// linger AND through the wait on predecessor commits. That second
	// window is where group commit earns its keep under contention — every
	// append that arrives while the previous cohort fsyncs shares this one.
	if l.curCohort == c {
		l.sealCohortLocked()
	}
	seg := c.seg
	l.mu.Unlock()

	// The batch write needs no lock: the cohort's region was reserved under
	// l.mu, nothing else writes there (rotation moved new appends to a new
	// segment if it sealed us; the drainer only reads published regions),
	// and commit turns are serialised by commitHead.
	err := l.writeBatch(seg, c.base, c.buf)
	if err == nil {
		l.fire(CrashBeforeBatchSync)
		if serr := seg.f.Sync(); serr != nil {
			err = fmt.Errorf("%w: syncing batch: %v", core.EIO, serr)
		}
	}

	l.mu.Lock()
	if err != nil {
		l.failCohortsLocked(c, err)
		l.mu.Unlock()
		return
	}
	l.unsynced = 0
	l.syncs.Inc()
	l.fsyncBatch.Inc()
	l.batchOps.Observe(int64(len(c.recs)))
	l.batchBytes.Observe(int64(len(c.buf)))
	seg.reserved -= len(c.recs)
	seg.pending += len(c.recs)
	l.queue = append(l.queue, c.recs...)
	l.appends.Add(uint64(len(c.recs)))
	l.cohortQ = l.cohortQ[1:] // c is the head: all predecessors published
	l.commitHead++
	l.commitCond.Broadcast()
	l.fire(CrashAfterBatchSync)
	l.cond.Signal()
	l.mu.Unlock()
	close(c.done)
}

// writeBatch lands a cohort's concatenated frames at its reserved region
// with positional writes. When a crash hook is installed the batch is
// split one byte short of the end so CrashMidBatchAppend always leaves a
// genuinely torn frame on disk — a cut at any other fraction could land
// exactly on a frame boundary and scan clean.
func (l *Log) writeBatch(seg *segment, base int64, buf []byte) error {
	if l.cfg.Crash != nil && len(buf) > 1 {
		cut := len(buf) - 1
		if _, err := seg.f.WriteAt(buf[:cut], base); err != nil {
			return fmt.Errorf("%w: appending batch: %v", core.EIO, err)
		}
		l.fire(CrashMidBatchAppend)
		if _, err := seg.f.WriteAt(buf[cut:], base+int64(cut)); err != nil {
			return fmt.Errorf("%w: appending batch: %v", core.EIO, err)
		}
		return nil
	}
	if _, err := seg.f.WriteAt(buf, base); err != nil {
		return fmt.Errorf("%w: appending batch: %v", core.EIO, err)
	}
	return nil
}

// failCohortsLocked fails c — whose batch write or fsync failed — plus
// every queued cohort behind it on the same segment. Commits are FIFO per
// segment, so the later cohorts' reserved regions sit above c's torn
// bytes; publishing them would strand acked records behind a hole that
// recovery's first-tear scan discards. The segment is rewound to c.base so
// the region is reused; cohorts on newer segments (after a rotation) are
// untouched and commit normally once commitHead skips past the failures.
func (l *Log) failCohortsLocked(c *cohort, err error) {
	seg := c.seg
	for len(l.cohortQ) > 0 && l.cohortQ[0].seg == seg {
		f := l.cohortQ[0]
		l.cohortQ = l.cohortQ[1:]
		if l.curCohort == f {
			l.curCohort = nil
		}
		f.sealed = true
		f.wakeLocked()
		f.failed = true
		f.err = err
		seg.reserved -= len(f.recs)
		l.liveBytes -= int64(len(f.buf))
		l.appendErrors.Add(uint64(len(f.recs)))
		l.commitHead = f.seq + 1
		close(f.done)
	}
	seg.size = c.base
	l.commitCond.Broadcast()
	if seg.pending == 0 && seg.reserved == 0 {
		// No future drain completion will visit this segment, so hand it to
		// the drainer explicitly: releases and file lifecycle are
		// drainer-side work (syncBackendCache touches drainer-only state).
		l.sweeps = append(l.sweeps, seg)
	}
	// Wake the drainer unconditionally: if the log is closed, the emptied
	// cohort queue may be what it is waiting on to exit.
	l.cond.Signal()
}
