package wal

// BenchmarkGroupCommit measures what group commit exists to change: the
// acknowledged-burst bandwidth of concurrent spilled appends under
// -wal-sync always, where every ack must be preceded by an fsync. The
// group-off arm pays one serialized fsync per record; the group-on arm
// shares each fsync across a cohort of concurrent appenders. The drain to
// the backend runs off the timer between iterations, exactly like
// BenchmarkBurstAck: ack latency is the measured quantity.
//
// The record size is deliberately small (1 KiB): an fsync's cost is a
// fixed journal commit plus a data-volume term, and sharing it only wins
// where the fixed term dominates — the small-synchronous-write shape the
// paper's forwarding layer exists to absorb. At 64 KiB records the
// data-volume term dominates and batching the fsync saves nothing
// (measured on this filesystem: group-on loses there).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

const (
	groupBenchWriters = 16      // concurrent appenders per iteration
	groupBenchRecord  = 1 << 10 // bytes per record: the small-synchronous-write shape group commit exists for
)

func runGroupBench(b *testing.B, group bool) {
	const perWriter = 8
	lg, _, err := Open(Config{
		Dir:         b.TempDir(),
		Backend:     core.NewMemBackend(),
		Sync:        SyncAlways,
		GroupCommit: group,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = lg.Close() })
	payload := pattern(1, groupBenchRecord)
	b.SetBytes(int64(groupBenchRecord * groupBenchWriters * perWriter))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < groupBenchWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Every iteration rewrites the same per-writer window:
				// offsets are distinct within an iteration (what cohort
				// correctness needs) but bounded across them, so the
				// in-memory backend never grows and its O(size) buffer
				// regrowth cannot leak into the timed window.
				base := int64(w * perWriter * groupBenchRecord)
				for r := 0; r < perWriter; r++ {
					if err := lg.Append("bench", base+int64(r*groupBenchRecord), payload, nil, nil); err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		b.StopTimer()
		for lg.SnapshotStats().Lag > 0 {
			time.Sleep(time.Millisecond)
		}
		b.StartTimer()
	}
}

func BenchmarkGroupCommit(b *testing.B) {
	b.Run(fmt.Sprintf("group-off/w%d", groupBenchWriters), func(b *testing.B) { runGroupBench(b, false) })
	b.Run(fmt.Sprintf("group-on/w%d", groupBenchWriters), func(b *testing.B) { runGroupBench(b, true) })
}

// TestEmitWalgroupBench runs both BenchmarkGroupCommit arms and writes the
// comparison to the JSON file named by WALGROUP_BENCH_OUT (skipped when
// unset). CI's crashrecovery job uses it for the BENCH_walgroup.json
// artifact; the committed copy at the repo root was produced the same way.
func TestEmitWalgroupBench(t *testing.T) {
	out := os.Getenv("WALGROUP_BENCH_OUT")
	if out == "" {
		t.Skip("set WALGROUP_BENCH_OUT to emit the group-commit bench comparison")
	}
	mibs := func(group bool) float64 {
		r := testing.Benchmark(func(b *testing.B) { runGroupBench(b, group) })
		return float64(r.Bytes) * float64(r.N) / r.T.Seconds() / (1 << 20)
	}
	off, on := mibs(false), mibs(true)
	//lint:allow simclock the emitted report stamps real wall time; nothing replayed depends on it
	doc := map[string]any{
		"title": "WAL group commit vs per-record fsync: acknowledged burst bandwidth under -wal-sync always",
		"date":  time.Now().Format("2006-01-02"),
		"environment": map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
			"note":   "fsync cost on this filesystem is a fixed journal commit plus a data-volume term; the benchmark uses small records so the fixed term (what group commit shares) dominates",
		},
		"workload": fmt.Sprintf(
			"BenchmarkGroupCommit: %d concurrent writers x 8 records x %d KiB direct Log.Append under SyncAlways; drain off-timer between iterations",
			groupBenchWriters, groupBenchRecord>>10),
		"method":        "WALGROUP_BENCH_OUT=BENCH_walgroup.json go test -run TestEmitWalgroupBench -count=1 ./internal/wal/",
		"results_mib_s": map[string]float64{"group-off": off, "group-on": on},
		"speedup":       on / off,
		"writers":       groupBenchWriters,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("group-off %.1f MiB/s, group-on %.1f MiB/s (%.1fx) -> %s", off, on, on/off, out)
	if on < 3*off {
		t.Errorf("group commit speedup %.2fx below the 3x acceptance bar (off=%.1f on=%.1f MiB/s)", on/off, off, on)
	}
}
