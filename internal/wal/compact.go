package wal

import "sort"

// Pre-drain compaction: the drainer takes the whole queue as one batch and
// plans, per record, the byte ranges NOT overwritten by a newer record of
// the same name later in the batch. A hot region rewritten many times
// while spilled collapses to the newest bytes — one backend write instead
// of N. Compaction changes only what is *replayed*, never what is on
// disk: a crash before the drain completes still recovers by replaying
// every record in append order, which lands on the same final bytes.
//
// Interval-map invariants (see DESIGN.md §12):
//
//  1. covered[name] is the union of the ranges of all records of that name
//     strictly newer than the one being planned, kept sorted and
//     non-overlapping (insertSpan merges).
//  2. A record's plan is its range minus covered at plan time, so every
//     surviving byte is written by exactly one record in the batch — the
//     newest one covering it.
//  3. Applying the plans in the original FIFO order is byte-identical to a
//     full sequential replay: any byte two records both cover is planned
//     only for the newer record, and bytes outside any overlap are written
//     by their only writer.
//
// Records appended after the batch was taken are a later batch; they only
// append newer data, so compacting within a batch can never resurrect
// stale bytes.

// span is a half-open byte range [lo, hi) in a backend object's offset
// space.
type span struct{ lo, hi int64 }

// compactBatch plans one drain batch. plans[i] holds record i's surviving
// ranges (empty means fully shadowed — nothing to write); skipped is the
// total byte count compaction removed from the replay.
func compactBatch(batch []record) (plans [][]span, skipped int64) {
	plans = make([][]span, len(batch))
	covered := make(map[string][]span, 1)
	for i := len(batch) - 1; i >= 0; i-- {
		rec := &batch[i]
		if rec.n == 0 {
			continue
		}
		s := span{rec.off, rec.off + int64(rec.n)}
		surviving := subtractSpans(s, covered[rec.name])
		plans[i] = surviving
		kept := int64(0)
		for _, sp := range surviving {
			kept += sp.hi - sp.lo
		}
		skipped += int64(rec.n) - kept
		covered[rec.name] = insertSpan(covered[rec.name], s)
	}
	return plans, skipped
}

// subtractSpans returns s minus the union of cover. cover must be sorted
// and non-overlapping (insertSpan's invariant).
func subtractSpans(s span, cover []span) []span {
	var out []span
	lo := s.lo
	for _, c := range cover {
		if c.hi <= lo {
			continue
		}
		if c.lo >= s.hi {
			break
		}
		if c.lo > lo {
			out = append(out, span{lo, c.lo})
		}
		if c.hi > lo {
			lo = c.hi
		}
		if lo >= s.hi {
			return out
		}
	}
	if lo < s.hi {
		out = append(out, span{lo, s.hi})
	}
	return out
}

// insertSpan merges s into a sorted, non-overlapping span set (adjacent
// spans coalesce too, keeping the set small for hot sequential regions).
func insertSpan(set []span, s span) []span {
	i := sort.Search(len(set), func(i int) bool { return set[i].hi >= s.lo })
	j := i
	for j < len(set) && set[j].lo <= s.hi {
		if set[j].lo < s.lo {
			s.lo = set[j].lo
		}
		if set[j].hi > s.hi {
			s.hi = set[j].hi
		}
		j++
	}
	if j > i {
		// s absorbed set[i:j]; splice it over them in place.
		set[i] = s
		return append(set[:i+1], set[j:]...)
	}
	set = append(set, span{})
	copy(set[i+1:], set[i:])
	set[i] = s
	return set
}
