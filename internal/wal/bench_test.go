package wal

// BenchmarkBurstAck compares the two things a server can do with a write
// that misses BML admission: execute it synchronously against the (slow)
// backend — the degrade-to-sync path — or append it to the WAL spill tier
// and acknowledge. The measured quantity is acknowledged-burst bandwidth:
// how fast a client's fixed burst is acked, which is what an application
// blocked on write() observes. Spill drain runs off the timer (that is the
// point of a burst buffer); each iteration still waits for the drain so
// iterations are independent.

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

const (
	benchRecord = 64 << 10
	benchBurst  = 32 // records per iteration: a 2 MiB burst
)

// benchServer wires a client to an async server over a net.Pipe with a
// one-buffer BML and a rate-limited sink backend, optionally spilling to a
// fresh WAL.
func benchServer(b *testing.B, spill *Log, backend core.Backend) *core.Client {
	b.Helper()
	s := core.NewServer(core.Config{
		Mode:       core.ModeAsync,
		Workers:    1,
		BMLBytes:   benchRecord, // one buffer: the burst overwhelms staging
		BMLTimeout: 100 * time.Microsecond,
		Backend:    backend,
		Spill:      spillOrNil(spill),
	})
	cc, sc := net.Pipe()
	go func() { _ = s.ServeConn(sc) }()
	c := core.NewClient(cc)
	b.Cleanup(func() {
		_ = c.Close()
		_ = s.Close()
	})
	return c
}

// spillOrNil avoids storing a typed nil *Log in the Spiller interface.
func spillOrNil(l *Log) core.Spiller {
	if l == nil {
		return nil
	}
	return l
}

func runBurstBench(b *testing.B, withSpill bool) {
	// 4 MiB/s sink: slow enough that a synchronous 64 KiB write (16 ms)
	// clearly dominates scheduler noise, so the comparison isolates where
	// the ack waits — on the sink (degrade) or on a local WAL append.
	backend := core.NewSinkBackend(core.NewMemBackend(), 4<<20, 0)
	var lg *Log
	if withSpill {
		var err error
		lg, _, err = Open(Config{Dir: b.TempDir(), Backend: backend})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = lg.Close() })
	}
	c := benchServer(b, lg, backend)
	f, err := c.Open(context.Background(), "burst")
	if err != nil {
		b.Fatal(err)
	}
	payload := pattern(1, benchRecord)
	b.SetBytes(benchRecord * benchBurst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < benchBurst; r++ {
			off := int64((i*benchBurst + r) * benchRecord)
			if _, err := f.WriteAt(payload, off); err != nil {
				b.Fatal(err)
			}
		}
		if lg != nil {
			// Drain between bursts, off the timer: iterations must not
			// compound lag, and ack bandwidth is the measured quantity.
			b.StopTimer()
			for {
				st := lg.SnapshotStats()
				if st.Lag == 0 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			b.StartTimer()
		}
	}
}

func BenchmarkBurstAck(b *testing.B) {
	b.Run("degrade-to-sync", func(b *testing.B) { runBurstBench(b, false) })
	b.Run("wal-spill", func(b *testing.B) { runBurstBench(b, true) })
}
