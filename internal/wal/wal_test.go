package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// collect waits for n done callbacks and returns the errors in call order.
type collect struct {
	mu   sync.Mutex
	errs []error
	ch   chan struct{}
}

func newCollect(n int) *collect { return &collect{ch: make(chan struct{}, n)} }

func (c *collect) done(err error) {
	c.mu.Lock()
	c.errs = append(c.errs, err)
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collect) wait(t *testing.T, n int) []error {
	t.Helper()
	for i := 0; i < n; i++ {
		<-c.ch
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.errs...)
}

func pattern(i, n int) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte(i*131 + j)
	}
	return b
}

func TestAppendDrainApplies(t *testing.T) {
	dir := t.TempDir()
	be := core.NewMemBackend()
	lg, stats, err := Open(Config{Dir: dir, Backend: be, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 0 {
		t.Fatalf("fresh dir recovered %d segments", stats.Segments)
	}
	const n = 40
	c := newCollect(n)
	want := make([]byte, 0, n*64)
	for i := 0; i < n; i++ {
		p := pattern(i, 64)
		want = append(want, p...)
		if err := lg.Append("obj", int64(i*64), p, c.done, nil); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	for _, err := range c.wait(t, n) {
		if err != nil {
			t.Fatalf("drain error: %v", err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	got, ok := be.Bytes("obj")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("backend bytes mismatch (ok=%v, %d vs %d bytes)", ok, len(got), len(want))
	}
	s := lg.SnapshotStats()
	if s.Appends != n || s.Drained != n || s.Lag != 0 || s.LiveBytes != 0 {
		t.Fatalf("stats after close: %+v", s)
	}
	// Clean close leaves no segment files behind.
	left, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(left) != 0 {
		t.Fatalf("segments left after clean close: %v", left)
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	be := core.NewMemBackend()
	// Tiny segments force rotation every couple of appends.
	lg, _, err := Open(Config{Dir: dir, Backend: be, SegmentBytes: 256, Sync: SyncInterval, SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	c := newCollect(n)
	for i := 0; i < n; i++ {
		if err := lg.Append("obj", int64(i*100), pattern(i, 100), c.done, nil); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	c.wait(t, n)
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	s := lg.SnapshotStats()
	if s.Truncated == 0 {
		t.Fatalf("no segments truncated across %d rotating appends: %+v", n, s)
	}
	for i := 0; i < n; i++ {
		got, _ := be.Bytes("obj")
		if !bytes.Equal(got[i*100:i*100+100], pattern(i, 100)) {
			t.Fatalf("record %d corrupted after rotation", i)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy string
		every  int
		want   func(syncs uint64, n int) bool
	}{
		{SyncAlways, 0, func(s uint64, n int) bool { return s == uint64(n) }},
		{SyncInterval, 5, func(s uint64, n int) bool { return s == uint64(n/5) }},
		{SyncNever, 0, func(s uint64, n int) bool { return s == 0 }},
	} {
		t.Run(tc.policy, func(t *testing.T) {
			lg, _, err := Open(Config{
				Dir: t.TempDir(), Backend: core.NewMemBackend(),
				Sync: tc.policy, SyncEvery: tc.every,
			})
			if err != nil {
				t.Fatal(err)
			}
			const n = 20
			c := newCollect(n)
			for i := 0; i < n; i++ {
				if err := lg.Append("o", int64(i*8), pattern(i, 8), c.done, nil); err != nil {
					t.Fatal(err)
				}
			}
			c.wait(t, n)
			if err := lg.Close(); err != nil {
				t.Fatal(err)
			}
			if s := lg.SnapshotStats(); !tc.want(s.Syncs, n) {
				t.Fatalf("policy %s: %d syncs over %d appends", tc.policy, s.Syncs, n)
			}
		})
	}
}

func TestRecoveryReplaysSurvivors(t *testing.T) {
	dir := t.TempDir()
	// Hand-build two segment files, as a crashed incarnation would leave
	// them: all records intact, never drained.
	for seg, base := range map[uint64]int{3: 0, 7: 4} {
		var buf bytes.Buffer
		for i := base; i < base+4; i++ {
			frame := encodeFrame(encodeRecordHeader("obj", int64(i*32)), pattern(i, 32))
			buf.Write(frame)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(seg)), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	be := core.NewMemBackend()
	lg, stats, err := Open(Config{Dir: dir, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if stats.Segments != 2 || stats.Replayed != 8 || stats.Torn != 0 || stats.Errors != 0 {
		t.Fatalf("recover stats: %+v", stats)
	}
	got, _ := be.Bytes("obj")
	for i := 0; i < 8; i++ {
		if !bytes.Equal(got[i*32:i*32+32], pattern(i, 32)) {
			t.Fatalf("replayed record %d mismatch", i)
		}
	}
	// Fully replayed segments are removed; the new active segment gets an
	// id past the recovered maximum so names never collide.
	left, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(left) != 1 || filepath.Base(left[0]) != segName(8) {
		t.Fatalf("segments after recovery: %v (want only %s)", left, segName(8))
	}
}

func TestRecoveryIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	frame := encodeFrame(encodeRecordHeader("obj", 0), pattern(1, 32))
	if err := os.WriteFile(filepath.Join(dir, segName(0)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	be := core.NewMemBackend()
	// Apply once directly, then recover over it: positional replay must
	// leave the same bytes.
	h, _ := be.Open("obj", true)
	_, _ = h.WriteAt(pattern(1, 32), 0)
	lg, stats, err := Open(Config{Dir: dir, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if stats.Replayed != 1 {
		t.Fatalf("recover stats: %+v", stats)
	}
	got, _ := be.Bytes("obj")
	if !bytes.Equal(got, pattern(1, 32)) {
		t.Fatalf("double-applied record changed bytes")
	}
}

// failingBackend rejects opens or writes to drill the error paths.
type failingBackend struct {
	core.Backend
	failWrites bool
}

func (f *failingBackend) Open(name string, create bool) (core.Handle, error) {
	if f.Backend == nil {
		return nil, fmt.Errorf("%w: backend down", core.EIO)
	}
	h, err := f.Backend.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &failingHandle{Handle: h, failWrites: f.failWrites}, nil
}

type failingHandle struct {
	core.Handle
	failWrites bool
}

func (h *failingHandle) WriteAt(b []byte, off int64) (int, error) {
	if h.failWrites {
		return 0, fmt.Errorf("%w: injected drain failure", core.EIO)
	}
	return h.Handle.WriteAt(b, off)
}

func TestDrainErrorReachesDone(t *testing.T) {
	lg, _, err := Open(Config{
		Dir:     t.TempDir(),
		Backend: &failingBackend{Backend: core.NewMemBackend(), failWrites: true},
		Sync:    SyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newCollect(1)
	if err := lg.Append("obj", 0, pattern(0, 16), c.done, nil); err != nil {
		t.Fatal(err)
	}
	errs := c.wait(t, 1)
	if !errors.Is(errs[0], core.EIO) {
		t.Fatalf("drain error %v does not wrap EIO", errs[0])
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if s := lg.SnapshotStats(); s.DrainErrs != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestRecoveryKeepsSegmentOnApplyError(t *testing.T) {
	dir := t.TempDir()
	frame := encodeFrame(encodeRecordHeader("obj", 0), pattern(0, 16))
	if err := os.WriteFile(filepath.Join(dir, segName(0)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	lg, stats, err := Open(Config{Dir: dir, Backend: &failingBackend{}})
	if err != nil {
		t.Fatal(err)
	}
	_ = lg.Close()
	if stats.Errors != 1 || stats.Replayed != 0 {
		t.Fatalf("recover stats: %+v", stats)
	}
	// The unapplied segment survives for the next recovery attempt.
	if _, err := os.Stat(filepath.Join(dir, segName(0))); err != nil {
		t.Fatalf("segment with apply errors was deleted: %v", err)
	}
}

// syncTrackBackend wraps a backend, recording every handle Sync by name
// and failing the ones whose name is marked. It drills the two
// sync-before-truncate barriers: recovery's segment removal and the
// drainer's eviction debt.
type syncTrackBackend struct {
	core.Backend
	mu       sync.Mutex
	failSync map[string]bool
	syncs    []string
}

func (b *syncTrackBackend) setFail(name string, fail bool) {
	b.mu.Lock()
	if b.failSync == nil {
		b.failSync = make(map[string]bool)
	}
	b.failSync[name] = fail
	b.mu.Unlock()
}

func (b *syncTrackBackend) Open(name string, create bool) (core.Handle, error) {
	h, err := b.Backend.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &syncTrackHandle{Handle: h, b: b, name: name}, nil
}

type syncTrackHandle struct {
	core.Handle
	b    *syncTrackBackend
	name string
}

func (h *syncTrackHandle) Sync() error {
	h.b.mu.Lock()
	h.b.syncs = append(h.b.syncs, h.name)
	fail := h.b.failSync[h.name]
	h.b.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: injected sync failure", core.EIO)
	}
	return h.Handle.Sync()
}

// TestRecoveryKeepsSegmentOnSyncError: a replayed segment is removed only
// after the backend handles it wrote through are fsynced. When the sync
// fails the segment must survive (its records may not be durable) and Open
// must still succeed — a healed backend drains it on the next recovery.
func TestRecoveryKeepsSegmentOnSyncError(t *testing.T) {
	dir := t.TempDir()
	frame := encodeFrame(encodeRecordHeader("obj", 0), pattern(0, 16))
	if err := os.WriteFile(filepath.Join(dir, segName(0)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	be := &syncTrackBackend{Backend: core.NewMemBackend()}
	be.setFail("obj", true)
	lg, stats, err := Open(Config{Dir: dir, Backend: be})
	if err != nil {
		t.Fatalf("Open failed on a backend sync error: %v", err)
	}
	if stats.Replayed != 1 || stats.Errors != 1 {
		t.Fatalf("recover stats: %+v, want Replayed=1 Errors=1", stats)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(0))); err != nil {
		t.Fatalf("segment removed before its backend writes were synced: %v", err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	be.setFail("obj", false)
	lg2, stats2, err := Open(Config{Dir: dir, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if stats2.Replayed != 1 || stats2.Errors != 0 {
		t.Fatalf("healed recover stats: %+v, want Replayed=1 Errors=0", stats2)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(0))); !os.IsNotExist(err) {
		t.Fatalf("segment not removed after a successful sync: %v", err)
	}
}

// TestEvictionSyncDebtBlocksTruncate: when the drainer evicts its cached
// backend handle and that handle's Sync fails, the failure must be sticky —
// no segment holding that name's records may be released until a sync
// succeeds, or a crash could lose the applied-but-unsynced writes.
func TestEvictionSyncDebtBlocksTruncate(t *testing.T) {
	be := &syncTrackBackend{Backend: core.NewMemBackend()}
	be.setFail("a", true)
	lg, _, err := Open(Config{Dir: t.TempDir(), Backend: be, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	relCh := make(chan string, 3)
	c := newCollect(3)
	// Record for "a", then "b": applying b evicts a's handle, whose Sync
	// fails. The segment then holds both names' records.
	if err := lg.Append("a", 0, pattern(0, 16), c.done, func() { relCh <- "a" }); err != nil {
		t.Fatal(err)
	}
	if err := lg.Append("b", 0, pattern(1, 16), c.done, func() { relCh <- "b" }); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 2)
	// Both records applied, but "a"'s sync debt is outstanding: the
	// segment must not be released.
	select {
	case name := <-relCh:
		t.Fatalf("record %q released while %q's applied writes were unsynced", name, "a")
	case <-time.After(50 * time.Millisecond):
	}
	if s := lg.SnapshotStats(); s.Truncated != 0 {
		t.Fatalf("segment truncated with sync debt outstanding: %+v", s)
	}

	// Heal the backend; the next drained record repays the debt and the
	// whole segment finally truncates, releasing all three records.
	be.setFail("a", false)
	if err := lg.Append("b", 16, pattern(2, 16), c.done, func() { relCh <- "b2" }); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 1)
	for i := 0; i < 3; i++ {
		<-relCh
	}
	if s := lg.SnapshotStats(); s.Truncated == 0 {
		t.Fatalf("segment never truncated after the debt was repaid: %+v", s)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMaxFrameCoversWorstCaseRecord: every record Append accepts must scan
// back — the frame payload bound covers the protocol's largest write under
// the longest possible name, and anything larger is refused up front
// instead of being acknowledged and then discarded as a torn length.
func TestMaxFrameCoversWorstCaseRecord(t *testing.T) {
	maxName := strings.Repeat("n", 1<<16-1)
	if worst := recHeaderLen(maxName) + core.MaxPayload; worst > MaxFramePayload {
		t.Fatalf("worst-case record payload %d exceeds MaxFramePayload %d", worst, MaxFramePayload)
	}
	// A max-length-name record round-trips through the scanner.
	var buf bytes.Buffer
	data := pattern(3, 64)
	if err := AppendFrame(&buf, append(encodeRecordHeader(maxName, 7), data...)); err != nil {
		t.Fatal(err)
	}
	payload, err := NewScanner(&buf).Next()
	if err != nil {
		t.Fatalf("scanning max-name frame: %v", err)
	}
	name, off, got, err := decodeRecord(payload)
	if err != nil || name != maxName || off != 7 || !bytes.Equal(got, data) {
		t.Fatalf("max-name record mangled: name len %d off %d err %v", len(name), off, err)
	}
	// An oversized record is rejected at Append, never logged.
	lg, _, err := Open(Config{Dir: t.TempDir(), Backend: core.NewMemBackend(), Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	over := make([]byte, core.MaxPayload+maxRecordHeader)
	if err := lg.Append(maxName, 0, over, nil, nil); !errors.Is(err, core.EINVAL) {
		t.Fatalf("oversized append: %v, want EINVAL", err)
	}
	// AppendFrame refuses payloads the scanner would reject as torn.
	if err := AppendFrame(&buf, nil); !errors.Is(err, core.EINVAL) {
		t.Fatalf("empty frame payload: %v, want EINVAL", err)
	}
}

func TestAppendLimits(t *testing.T) {
	lg, _, err := Open(Config{Dir: t.TempDir(), Backend: core.NewMemBackend(), MaxBytes: 128, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Append("obj", 0, make([]byte, 1024), nil, nil); !errors.Is(err, ErrFull) {
		t.Fatalf("over-cap append: %v, want ErrFull", err)
	}
	if err := lg.Append("", 0, nil, nil, nil); !errors.Is(err, core.EINVAL) {
		t.Fatalf("empty-name append: %v, want EINVAL", err)
	}
	if err := lg.Append("obj", -1, nil, nil, nil); !errors.Is(err, core.EINVAL) {
		t.Fatalf("negative-offset append: %v, want EINVAL", err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lg.Append("obj", 0, pattern(0, 8), nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestCloseDrainsFully(t *testing.T) {
	be := core.NewMemBackend()
	lg, _, err := Open(Config{Dir: t.TempDir(), Backend: be, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	c := newCollect(n)
	for i := 0; i < n; i++ {
		if err := lg.Append("obj", int64(i*16), pattern(i, 16), c.done, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Close must not return before every queued record has been applied
	// and acknowledged.
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if s := lg.SnapshotStats(); s.Drained != n || s.Lag != 0 {
		t.Fatalf("close returned with lag: %+v", s)
	}
	got, _ := be.Bytes("obj")
	if len(got) != n*16 {
		t.Fatalf("backend holds %d bytes, want %d", len(got), n*16)
	}
}

func TestCrashHookFiresInOrder(t *testing.T) {
	var fired []string
	lg, _, err := Open(Config{
		Dir: t.TempDir(), Backend: core.NewMemBackend(),
		SegmentBytes: 64, Sync: SyncNever,
		Crash: func(p string) { fired = append(fired, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newCollect(2)
	// Two appends big enough to force a rotation between them; the crash
	// hook runs under l.mu, so the recorded order is the real op order.
	if err := lg.Append("o", 0, pattern(0, 48), c.done, nil); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 1)
	if err := lg.Append("o", 48, pattern(1, 48), c.done, nil); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 1)
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{CrashMidAppend: true, CrashAfterAppend: true}
	for _, p := range fired {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("crash points never fired: %v (saw %v)", want, fired)
	}
}
