package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
)

// collect waits for n done callbacks and returns the errors in call order.
type collect struct {
	mu   sync.Mutex
	errs []error
	ch   chan struct{}
}

func newCollect(n int) *collect { return &collect{ch: make(chan struct{}, n)} }

func (c *collect) done(err error) {
	c.mu.Lock()
	c.errs = append(c.errs, err)
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collect) wait(t *testing.T, n int) []error {
	t.Helper()
	for i := 0; i < n; i++ {
		<-c.ch
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.errs...)
}

func pattern(i, n int) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte(i*131 + j)
	}
	return b
}

func TestAppendDrainApplies(t *testing.T) {
	dir := t.TempDir()
	be := core.NewMemBackend()
	lg, stats, err := Open(Config{Dir: dir, Backend: be, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 0 {
		t.Fatalf("fresh dir recovered %d segments", stats.Segments)
	}
	const n = 40
	c := newCollect(n)
	want := make([]byte, 0, n*64)
	for i := 0; i < n; i++ {
		p := pattern(i, 64)
		want = append(want, p...)
		if err := lg.Append("obj", int64(i*64), p, c.done); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	for _, err := range c.wait(t, n) {
		if err != nil {
			t.Fatalf("drain error: %v", err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	got, ok := be.Bytes("obj")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("backend bytes mismatch (ok=%v, %d vs %d bytes)", ok, len(got), len(want))
	}
	s := lg.SnapshotStats()
	if s.Appends != n || s.Drained != n || s.Lag != 0 || s.LiveBytes != 0 {
		t.Fatalf("stats after close: %+v", s)
	}
	// Clean close leaves no segment files behind.
	left, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(left) != 0 {
		t.Fatalf("segments left after clean close: %v", left)
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	be := core.NewMemBackend()
	// Tiny segments force rotation every couple of appends.
	lg, _, err := Open(Config{Dir: dir, Backend: be, SegmentBytes: 256, Sync: SyncInterval, SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	c := newCollect(n)
	for i := 0; i < n; i++ {
		if err := lg.Append("obj", int64(i*100), pattern(i, 100), c.done); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	c.wait(t, n)
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	s := lg.SnapshotStats()
	if s.Truncated == 0 {
		t.Fatalf("no segments truncated across %d rotating appends: %+v", n, s)
	}
	for i := 0; i < n; i++ {
		got, _ := be.Bytes("obj")
		if !bytes.Equal(got[i*100:i*100+100], pattern(i, 100)) {
			t.Fatalf("record %d corrupted after rotation", i)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy string
		every  int
		want   func(syncs uint64, n int) bool
	}{
		{SyncAlways, 0, func(s uint64, n int) bool { return s == uint64(n) }},
		{SyncInterval, 5, func(s uint64, n int) bool { return s == uint64(n/5) }},
		{SyncNever, 0, func(s uint64, n int) bool { return s == 0 }},
	} {
		t.Run(tc.policy, func(t *testing.T) {
			lg, _, err := Open(Config{
				Dir: t.TempDir(), Backend: core.NewMemBackend(),
				Sync: tc.policy, SyncEvery: tc.every,
			})
			if err != nil {
				t.Fatal(err)
			}
			const n = 20
			c := newCollect(n)
			for i := 0; i < n; i++ {
				if err := lg.Append("o", int64(i*8), pattern(i, 8), c.done); err != nil {
					t.Fatal(err)
				}
			}
			c.wait(t, n)
			if err := lg.Close(); err != nil {
				t.Fatal(err)
			}
			if s := lg.SnapshotStats(); !tc.want(s.Syncs, n) {
				t.Fatalf("policy %s: %d syncs over %d appends", tc.policy, s.Syncs, n)
			}
		})
	}
}

func TestRecoveryReplaysSurvivors(t *testing.T) {
	dir := t.TempDir()
	// Hand-build two segment files, as a crashed incarnation would leave
	// them: all records intact, never drained.
	for seg, base := range map[uint64]int{3: 0, 7: 4} {
		var buf bytes.Buffer
		for i := base; i < base+4; i++ {
			frame := encodeFrame(encodeRecordHeader("obj", int64(i*32)), pattern(i, 32))
			buf.Write(frame)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(seg)), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	be := core.NewMemBackend()
	lg, stats, err := Open(Config{Dir: dir, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if stats.Segments != 2 || stats.Replayed != 8 || stats.Torn != 0 || stats.Errors != 0 {
		t.Fatalf("recover stats: %+v", stats)
	}
	got, _ := be.Bytes("obj")
	for i := 0; i < 8; i++ {
		if !bytes.Equal(got[i*32:i*32+32], pattern(i, 32)) {
			t.Fatalf("replayed record %d mismatch", i)
		}
	}
	// Fully replayed segments are removed; the new active segment gets an
	// id past the recovered maximum so names never collide.
	left, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(left) != 1 || filepath.Base(left[0]) != segName(8) {
		t.Fatalf("segments after recovery: %v (want only %s)", left, segName(8))
	}
}

func TestRecoveryIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	frame := encodeFrame(encodeRecordHeader("obj", 0), pattern(1, 32))
	if err := os.WriteFile(filepath.Join(dir, segName(0)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	be := core.NewMemBackend()
	// Apply once directly, then recover over it: positional replay must
	// leave the same bytes.
	h, _ := be.Open("obj", true)
	_, _ = h.WriteAt(pattern(1, 32), 0)
	lg, stats, err := Open(Config{Dir: dir, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if stats.Replayed != 1 {
		t.Fatalf("recover stats: %+v", stats)
	}
	got, _ := be.Bytes("obj")
	if !bytes.Equal(got, pattern(1, 32)) {
		t.Fatalf("double-applied record changed bytes")
	}
}

// failingBackend rejects opens or writes to drill the error paths.
type failingBackend struct {
	core.Backend
	failWrites bool
}

func (f *failingBackend) Open(name string, create bool) (core.Handle, error) {
	if f.Backend == nil {
		return nil, fmt.Errorf("%w: backend down", core.EIO)
	}
	h, err := f.Backend.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &failingHandle{Handle: h, failWrites: f.failWrites}, nil
}

type failingHandle struct {
	core.Handle
	failWrites bool
}

func (h *failingHandle) WriteAt(b []byte, off int64) (int, error) {
	if h.failWrites {
		return 0, fmt.Errorf("%w: injected drain failure", core.EIO)
	}
	return h.Handle.WriteAt(b, off)
}

func TestDrainErrorReachesDone(t *testing.T) {
	lg, _, err := Open(Config{
		Dir:     t.TempDir(),
		Backend: &failingBackend{Backend: core.NewMemBackend(), failWrites: true},
		Sync:    SyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newCollect(1)
	if err := lg.Append("obj", 0, pattern(0, 16), c.done); err != nil {
		t.Fatal(err)
	}
	errs := c.wait(t, 1)
	if !errors.Is(errs[0], core.EIO) {
		t.Fatalf("drain error %v does not wrap EIO", errs[0])
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if s := lg.SnapshotStats(); s.DrainErrs != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestRecoveryKeepsSegmentOnApplyError(t *testing.T) {
	dir := t.TempDir()
	frame := encodeFrame(encodeRecordHeader("obj", 0), pattern(0, 16))
	if err := os.WriteFile(filepath.Join(dir, segName(0)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	lg, stats, err := Open(Config{Dir: dir, Backend: &failingBackend{}})
	if err != nil {
		t.Fatal(err)
	}
	_ = lg.Close()
	if stats.Errors != 1 || stats.Replayed != 0 {
		t.Fatalf("recover stats: %+v", stats)
	}
	// The unapplied segment survives for the next recovery attempt.
	if _, err := os.Stat(filepath.Join(dir, segName(0))); err != nil {
		t.Fatalf("segment with apply errors was deleted: %v", err)
	}
}

func TestAppendLimits(t *testing.T) {
	lg, _, err := Open(Config{Dir: t.TempDir(), Backend: core.NewMemBackend(), MaxBytes: 128, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Append("obj", 0, make([]byte, 1024), nil); !errors.Is(err, ErrFull) {
		t.Fatalf("over-cap append: %v, want ErrFull", err)
	}
	if err := lg.Append("", 0, nil, nil); !errors.Is(err, core.EINVAL) {
		t.Fatalf("empty-name append: %v, want EINVAL", err)
	}
	if err := lg.Append("obj", -1, nil, nil); !errors.Is(err, core.EINVAL) {
		t.Fatalf("negative-offset append: %v, want EINVAL", err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lg.Append("obj", 0, pattern(0, 8), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestCloseDrainsFully(t *testing.T) {
	be := core.NewMemBackend()
	lg, _, err := Open(Config{Dir: t.TempDir(), Backend: be, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	c := newCollect(n)
	for i := 0; i < n; i++ {
		if err := lg.Append("obj", int64(i*16), pattern(i, 16), c.done); err != nil {
			t.Fatal(err)
		}
	}
	// Close must not return before every queued record has been applied
	// and acknowledged.
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if s := lg.SnapshotStats(); s.Drained != n || s.Lag != 0 {
		t.Fatalf("close returned with lag: %+v", s)
	}
	got, _ := be.Bytes("obj")
	if len(got) != n*16 {
		t.Fatalf("backend holds %d bytes, want %d", len(got), n*16)
	}
}

func TestCrashHookFiresInOrder(t *testing.T) {
	var fired []string
	lg, _, err := Open(Config{
		Dir: t.TempDir(), Backend: core.NewMemBackend(),
		SegmentBytes: 64, Sync: SyncNever,
		Crash: func(p string) { fired = append(fired, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newCollect(2)
	// Two appends big enough to force a rotation between them; the crash
	// hook runs under l.mu, so the recorded order is the real op order.
	if err := lg.Append("o", 0, pattern(0, 48), c.done); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 1)
	if err := lg.Append("o", 48, pattern(1, 48), c.done); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 1)
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{CrashMidAppend: true, CrashAfterAppend: true}
	for _, p := range fired {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("crash points never fired: %v (saw %v)", want, fired)
	}
}
