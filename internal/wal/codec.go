// Package wal implements a crash-safe, segment-based write-ahead spill
// tier: the disk-backed overflow behind the BML staging pool (the
// "burst-buffer" direction in ROADMAP and the periodic/burst I/O literature
// in PAPERS.md). When staging-pool admission times out, the server appends
// the write to a local WAL segment and acknowledges it; a background
// drainer replays records to the backend in append order and truncates
// segments once every record in them has been applied. On startup the log
// is scanned, torn tails are discarded, and surviving records are replayed
// before the daemon accepts traffic — so a SIGKILL mid-burst loses nothing
// that was acknowledged.
//
// The package's durability logic is deterministic by design: fsync pacing
// under SyncInterval is append-count-driven, crash points for recovery
// drills are injected through Config.Crash as a pure function of the
// operation sequence (see internal/core/fault.CrashSet), and the only
// long-lived goroutine, the drainer, is WaitGroup-joined by Close. The
// single exception is the group-commit linger window (Config.GroupLinger,
// see group.go): a bounded real-time wait that only changes how appends
// share an fsync, never what is on disk or what replay produces.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
)

// Frame layout, shared by WAL segments and any other journal that reuses
// the codec (the stripetier pending-repair journal does):
//
//	0 length uint32   payload bytes following the 8-byte frame header
//	4 crc    uint32   CRC32C (Castagnoli) of the payload
//	8 payload...
//
// A frame is valid only when the full payload is present and its CRC
// matches; anything else — a short header, a short payload, a length
// outside (0, MaxFramePayload], a CRC mismatch — is a torn tail and ends
// the scan.
const frameHeader = 8

// maxRecordHeader is the largest record header a frame can carry: type
// byte, name length prefix, a maximum-length name, and the offset.
const maxRecordHeader = 1 + 2 + (1<<16 - 1) + 8

// MaxFramePayload bounds a single frame's payload: the protocol's largest
// write plus the worst-case record header. Append refuses anything larger,
// so a scanned length beyond it is garbage (a torn length field), never a
// real frame — nothing appendable is unscannable.
const MaxFramePayload = core.MaxPayload + maxRecordHeader

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn reports a torn or corrupt frame: the scanned tail from this
// point on is discarded by recovery.
var ErrTorn = errors.New("wal: torn frame")

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrFull reports that an append would push the log past its configured
// byte cap; the caller must fall back to its non-spill path.
var ErrFull = errors.New("wal: log full")

// encodeFrame assembles one frame from the payload parts into a single
// buffer (header + payload), so an append is one write call.
func encodeFrame(parts ...[]byte) []byte {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	buf := make([]byte, frameHeader+n)
	binary.BigEndian.PutUint32(buf[0:], uint32(n))
	crc := crc32.New(castagnoli)
	at := frameHeader
	for _, p := range parts {
		_, _ = crc.Write(p) // hash.Hash.Write never fails
		at += copy(buf[at:], p)
	}
	binary.BigEndian.PutUint32(buf[4:], crc.Sum32())
	return buf
}

// AppendFrame writes one length-prefixed CRC32C frame holding payload to
// w. It is exported so other journals (the stripetier pending-repair set)
// can reuse the exact on-disk framing and recovery semantics. Payloads the
// Scanner would reject as torn (empty or past MaxFramePayload) are refused
// here, so an appended frame is always recoverable.
func AppendFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxFramePayload {
		return fmt.Errorf("%w: unscannable frame payload length %d", core.EINVAL, len(payload))
	}
	if _, err := w.Write(encodeFrame(payload)); err != nil {
		return fmt.Errorf("%w: appending frame: %v", core.EIO, err)
	}
	return nil
}

// Scanner reads frames sequentially from r. Next returns io.EOF at a clean
// end of input and an ErrTorn-wrapped error at a torn tail; Offset reports
// how many bytes of intact frames have been consumed (the truncation point
// for discarding a torn tail).
type Scanner struct {
	r   io.Reader
	off int64
}

// NewScanner returns a Scanner over r.
func NewScanner(r io.Reader) *Scanner { return &Scanner{r: r} }

// Offset returns the byte offset just past the last intact frame.
func (s *Scanner) Offset() int64 { return s.off }

// Next returns the next frame's payload. io.EOF marks a clean end (the
// previous frame ended exactly at EOF); a short header, short payload,
// out-of-range length, or CRC mismatch returns an error wrapping ErrTorn.
func (s *Scanner) Next() ([]byte, error) {
	var hb [frameHeader]byte
	if _, err := io.ReadFull(s.r, hb[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: short frame header", ErrTorn)
		}
		return nil, fmt.Errorf("%w: reading frame header: %v", core.EIO, err)
	}
	n := binary.BigEndian.Uint32(hb[0:])
	want := binary.BigEndian.Uint32(hb[4:])
	if n == 0 || n > MaxFramePayload {
		return nil, fmt.Errorf("%w: frame length %d out of range", ErrTorn, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(s.r, payload); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: short frame payload (%d of %d bytes)", ErrTorn, 0, n)
		}
		return nil, fmt.Errorf("%w: reading frame payload: %v", core.EIO, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: payload crc %#x, frame says %#x", ErrTorn, got, want)
	}
	s.off += int64(frameHeader) + int64(n)
	return payload, nil
}

// WAL record payload layout (inside a frame):
//
//	0 type    uint8    recWrite
//	1 nameLen uint16   backend object name length
//	3 name    ...
//	. offset  uint64   backend offset the data applies at
//	. data    ...      the write payload (rest of the frame)
const recWrite = 1

// recHeaderLen returns the record header size for a name.
func recHeaderLen(name string) int { return 1 + 2 + len(name) + 8 }

// encodeRecordHeader builds the record header for a write of dataLen bytes
// at off on name. The data itself follows as a separate frame part so the
// payload is never copied twice.
func encodeRecordHeader(name string, off int64) []byte {
	hdr := make([]byte, recHeaderLen(name))
	hdr[0] = recWrite
	binary.BigEndian.PutUint16(hdr[1:], uint16(len(name)))
	at := 3 + copy(hdr[3:], name)
	binary.BigEndian.PutUint64(hdr[at:], uint64(off))
	return hdr
}

// decodeRecord splits a frame payload into its record fields. A payload
// that does not parse is corrupt in a way the CRC cannot catch (a bug, not
// bit rot) and is reported as torn so recovery discards it.
func decodeRecord(payload []byte) (name string, off int64, data []byte, err error) {
	if len(payload) < 3 || payload[0] != recWrite {
		return "", 0, nil, fmt.Errorf("%w: bad record type", ErrTorn)
	}
	nameLen := int(binary.BigEndian.Uint16(payload[1:]))
	if nameLen == 0 || len(payload) < 3+nameLen+8 {
		return "", 0, nil, fmt.Errorf("%w: record header overruns payload", ErrTorn)
	}
	name = string(payload[3 : 3+nameLen])
	off = int64(binary.BigEndian.Uint64(payload[3+nameLen:]))
	data = payload[3+nameLen+8:]
	if off < 0 {
		return "", 0, nil, fmt.Errorf("%w: negative record offset", ErrTorn)
	}
	return name, off, data, nil
}
