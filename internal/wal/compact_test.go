package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestInsertSubtractSpans(t *testing.T) {
	// Build a covered set out of order and with overlaps; it must stay
	// sorted, merged, and subtraction must carve exact holes.
	var set []span
	for _, s := range []span{{50, 60}, {10, 20}, {18, 30}, {60, 70}, {0, 5}} {
		set = append([]span(nil), insertSpan(set, s)...)
	}
	want := []span{{0, 5}, {10, 30}, {50, 70}}
	if len(set) != len(want) {
		t.Fatalf("merged set %v, want %v", set, want)
	}
	for i := range want {
		if set[i] != want[i] {
			t.Fatalf("merged set %v, want %v", set, want)
		}
	}
	cases := []struct {
		s    span
		want []span
	}{
		{span{0, 100}, []span{{5, 10}, {30, 50}, {70, 100}}},
		{span{10, 30}, nil},
		{span{12, 28}, nil},
		{span{25, 55}, []span{{30, 50}}},
		{span{100, 110}, []span{{100, 110}}},
		{span{5, 10}, []span{{5, 10}}},
	}
	for _, c := range cases {
		got := subtractSpans(c.s, set)
		if len(got) != len(c.want) {
			t.Fatalf("subtract %v from %v = %v, want %v", c.s, set, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("subtract %v from %v = %v, want %v", c.s, set, got, c.want)
			}
		}
	}
}

func TestCompactBatchNewestWins(t *testing.T) {
	// Three records on one name: [0,100), [40,60), [50,120). The newest
	// covers [50,120); the middle keeps [40,50); the oldest keeps [0,40).
	batch := []record{
		{name: "a", off: 0, n: 100},
		{name: "a", off: 40, n: 20},
		{name: "a", off: 50, n: 70},
		{name: "b", off: 0, n: 10}, // other names are untouched
	}
	plans, skipped := compactBatch(batch)
	wantPlans := [][]span{
		{{0, 40}},
		{{40, 50}},
		{{50, 120}},
		{{0, 10}},
	}
	for i, want := range wantPlans {
		got := plans[i]
		if len(got) != len(want) {
			t.Fatalf("record %d plan %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("record %d plan %v, want %v", i, got, want)
			}
		}
	}
	// Oldest lost [40,100) = 60 bytes; middle lost [50,60) = 10 bytes.
	if skipped != 70 {
		t.Fatalf("skipped %d bytes, want 70", skipped)
	}
}

// goldenReplay applies a schedule sequentially — the uncompacted drain — and
// returns the per-name final bytes.
type schedOp struct {
	name string
	off  int64
	data []byte
}

func goldenReplay(sched []schedOp) map[string][]byte {
	out := make(map[string][]byte)
	for _, op := range sched {
		end := op.off + int64(len(op.data))
		b := out[op.name]
		if int64(len(b)) < end {
			nb := make([]byte, end)
			copy(nb, b)
			b = nb
		}
		copy(b[op.off:end], op.data)
		out[op.name] = b
	}
	return out
}

func randomSchedule(rng *rand.Rand, n int) []schedOp {
	names := []string{"a", "b", "c"}
	sched := make([]schedOp, n)
	for i := range sched {
		ln := 1 + rng.Intn(300)
		data := make([]byte, ln)
		rng.Read(data)
		sched[i] = schedOp{
			name: names[rng.Intn(len(names))],
			off:  int64(rng.Intn(2000)),
			data: data,
		}
	}
	return sched
}

func runSchedule(t *testing.T, sched []schedOp, gated bool) (*core.MemBackend, Stats) {
	t.Helper()
	dir := t.TempDir()
	var be core.Backend
	var gate *gateBackend
	mem := core.NewMemBackend()
	be = mem
	if gated {
		gate = newGateBackend()
		mem = gate.MemBackend
		be = gate
	}
	lg, _, err := Open(Config{Dir: dir, Backend: be, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	col := newCollect(len(sched))
	for _, op := range sched {
		if err := lg.Append(op.name, op.off, op.data, col.done, nil); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if gated {
		// Everything is queued behind the first blocked backend write: the
		// drainer must compact the whole schedule as (nearly) one batch.
		gate.release()
	}
	for _, err := range col.wait(t, len(sched)) {
		if err != nil {
			t.Fatalf("drain error: %v", err)
		}
	}
	st := lg.SnapshotStats()
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	return mem, st
}

// TestCompactionProperty: random overlapping write schedules drained with
// compaction — both free-running (arbitrary batch splits) and forced into
// one big batch — must leave the backend byte-identical to an uncompacted
// sequential replay.
func TestCompactionProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sched := randomSchedule(rand.New(rand.NewSource(seed)), 150)
			want := goldenReplay(sched)
			var compactedTotal uint64
			for _, gated := range []bool{false, true} {
				be, st := runSchedule(t, sched, gated)
				for name, wantBytes := range want {
					got, ok := be.Bytes(name)
					if !ok {
						t.Fatalf("gated=%v: %q missing from backend", gated, name)
					}
					// MemBackend may not track trailing zero extent exactly
					// like the golden map; compare the written prefix.
					if len(got) != len(wantBytes) {
						t.Fatalf("gated=%v: %q holds %d bytes, want %d", gated, name, len(got), len(wantBytes))
					}
					if !bytes.Equal(got, wantBytes) {
						t.Fatalf("gated=%v: %q diverged from sequential replay", gated, name)
					}
				}
				compactedTotal += st.CompactedBytes
			}
			// The gated arm drains one giant overlapping batch: compaction
			// must actually have skipped something, or this test proves
			// nothing.
			if compactedTotal == 0 {
				t.Fatal("no bytes were compacted across both arms; schedule not overlapping enough?")
			}
		})
	}
}
