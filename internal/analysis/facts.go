package analysis

// Facts: the cross-package channel of the analyzer suite, mirroring
// golang.org/x/tools/go/analysis Fact semantics on the stdlib-only
// framework. An analyzer declares the fact types it exchanges in
// Analyzer.FactTypes, attaches facts to package-level objects
// (ExportObjectFact) or whole packages (ExportPackageFact) while analyzing
// one package, and reads facts attached by earlier-analyzed packages
// (ImportObjectFact / ImportPackageFact / AllPackageFacts).
//
// Both drivers thread the same *Facts store in dependency order:
//
//   - the standalone loader analyzes `go list -deps` output, which is
//     already topologically sorted, so one in-memory store accumulates
//     facts from every package in the run (imports and siblings alike);
//   - the go vet unitchecker driver persists the store to the .vetx file
//     named by the .cfg's VetxOutput field and seeds it from the dep .vetx
//     files named by PackageVetx. A package's .vetx carries every fact
//     known after its analysis — its own and its transitive dependencies' —
//     so facts cross any number of import hops even though go vet only
//     hands each package its direct imports' files.
//
// Serialization is gob. Object facts are keyed by a stable textual object
// key ("FuncName" or "Type.Method") rather than export-data object
// identity, so decoding never needs to resolve objects: importers recompute
// the key from the types.Object they hold. Only package-level objects have
// keys; that is not a practical limit, because a fact is only reachable
// cross-package through an object the importing package can name.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// Fact is an analyzer-defined datum attached to a package or object and
// exchanged across package boundaries. Implementations must be pointers to
// gob-serializable structs, registered in registerFactTypes, and should
// implement fmt.Stringer for analysistest `// want name:"..."` assertions.
type Fact interface {
	// AFact marks the type as a fact. It is never called.
	AFact()
}

// PackageFact is one fact attached to a whole package.
type PackageFact struct {
	PkgPath string
	Pos     token.Pos // package clause of the exporting pass; NoPos if decoded
	Fact    Fact
}

// ObjectFact is one fact attached to a package-level object.
type ObjectFact struct {
	PkgPath string
	Object  string    // stable key: "Func" or "Type.Method"
	Pos     token.Pos // object declaration in the exporting pass; NoPos if decoded
	Fact    Fact
}

type factKey struct {
	pkg string
	obj string // "" for package facts
	typ string // concrete fact type name
}

// Facts is the fact store threaded through one driver run.
type Facts struct {
	m     map[factKey]Fact
	pos   map[factKey]token.Pos
	order []factKey // insertion order, for deterministic encoding
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{m: make(map[factKey]Fact), pos: make(map[factKey]token.Pos)}
}

func (fs *Facts) set(k factKey, pos token.Pos, fact Fact) {
	if _, ok := fs.m[k]; !ok {
		fs.order = append(fs.order, k)
	}
	fs.m[k] = fact
	fs.pos[k] = pos
}

// get copies a stored fact into the pointer fact and reports whether one
// was found. fact's concrete type selects which fact to look up.
func (fs *Facts) get(k factKey, fact Fact) bool {
	stored, ok := fs.m[k]
	if !ok {
		return false
	}
	rv, sv := reflect.ValueOf(fact), reflect.ValueOf(stored)
	if rv.Type() != sv.Type() || rv.Kind() != reflect.Pointer {
		return false
	}
	rv.Elem().Set(sv.Elem())
	return true
}

// AllPackage returns every package fact, sorted by package path then fact
// type so reports derived from them are deterministic under both drivers.
func (fs *Facts) AllPackage() []PackageFact {
	var out []PackageFact
	for _, k := range fs.order {
		if k.obj == "" {
			out = append(out, PackageFact{PkgPath: k.pkg, Pos: fs.pos[k], Fact: fs.m[k]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PkgPath != out[j].PkgPath {
			return out[i].PkgPath < out[j].PkgPath
		}
		return factTypeName(out[i].Fact) < factTypeName(out[j].Fact)
	})
	return out
}

// AllObject returns every object fact, sorted like AllPackage.
func (fs *Facts) AllObject() []ObjectFact {
	var out []ObjectFact
	for _, k := range fs.order {
		if k.obj != "" {
			out = append(out, ObjectFact{PkgPath: k.pkg, Object: k.obj, Pos: fs.pos[k], Fact: fs.m[k]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return factTypeName(a.Fact) < factTypeName(b.Fact)
	})
	return out
}

func factTypeName(f Fact) string {
	return reflect.TypeOf(f).String()
}

// objectKey computes the stable textual key for a package-level object:
// "Name" for package-scope functions, vars, consts, and types, and
// "Recv.Method" for methods on named types. It returns "" for objects that
// cannot be named from another package (locals, fields, interface methods
// of anonymous types), which therefore cannot carry exchangeable facts.
func objectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return ""
			}
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return obj.Name()
}

// --- vetx serialization -------------------------------------------------

// vetxMagic guards against feeding an unrelated file to the decoder. A
// zero-length file is also accepted as an empty fact set: the driver writes
// one for packages outside the module, and empty files are what pre-fact
// versions of the tool produced.
const vetxMagic = "iofwdlint.vetx v1\n"

// wireFact is the serialized form of one fact.
type wireFact struct {
	PkgPath string
	Object  string
	Fact    Fact
}

// EncodeVetx serializes every fact in the store, in insertion order.
func (fs *Facts) EncodeVetx() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(vetxMagic)
	enc := gob.NewEncoder(&buf)
	for _, k := range fs.order {
		wf := wireFact{PkgPath: k.pkg, Object: k.obj, Fact: fs.m[k]}
		if err := enc.Encode(wf); err != nil {
			return nil, fmt.Errorf("encoding fact %T for %s: %v", fs.m[k], k.pkg, err)
		}
	}
	return buf.Bytes(), nil
}

// DecodeVetx merges the facts serialized in data into the store. Positions
// are not serialized (they are meaningless outside the encoding process),
// so decoded facts carry token.NoPos.
func (fs *Facts) DecodeVetx(data []byte) error {
	if len(data) == 0 {
		return nil // pre-fact empty vetx: no facts
	}
	if len(data) < len(vetxMagic) || string(data[:len(vetxMagic)]) != vetxMagic {
		return fmt.Errorf("not an iofwdlint vetx file (bad magic)")
	}
	dec := gob.NewDecoder(bytes.NewReader(data[len(vetxMagic):]))
	for {
		var wf wireFact
		err := dec.Decode(&wf)
		if err != nil {
			if err.Error() == "EOF" {
				return nil
			}
			return fmt.Errorf("decoding fact stream: %v", err)
		}
		if wf.Fact == nil {
			return fmt.Errorf("decoding fact stream: nil fact")
		}
		fs.set(factKey{pkg: wf.PkgPath, obj: wf.Object, typ: factTypeName(wf.Fact)}, token.NoPos, wf.Fact)
	}
}

// registerFactTypes registers the concrete fact types under stable names so
// gob streams survive refactors that move or rename the Go types.
func init() {
	gob.RegisterName("iofwdlint.MetricFamilies", &MetricFamilies{})
	gob.RegisterName("iofwdlint.AdHocError", &AdHocError{})
}

// --- Pass fact API ------------------------------------------------------

// ExportPackageFact attaches fact to the package being analyzed. One fact
// per concrete type per package: a second export overwrites the first.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		return
	}
	pos := token.NoPos
	if len(p.Files) > 0 {
		pos = p.Files[0].Name.Pos()
	}
	p.facts.set(factKey{pkg: p.Pkg.Path(), typ: factTypeName(fact)}, pos, fact)
}

// ImportPackageFact copies the fact of fact's concrete type attached to pkg
// into fact and reports whether one exists.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.facts == nil || pkg == nil {
		return false
	}
	return p.facts.get(factKey{pkg: pkg.Path(), typ: factTypeName(fact)}, fact)
}

// ExportObjectFact attaches fact to obj, which must be a package-level
// object (or method) of the package being analyzed; facts on objects other
// packages cannot name are dropped, since no importer could ever look them
// up.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != p.Pkg.Path() {
		return
	}
	key := objectKey(obj)
	if key == "" {
		return
	}
	p.facts.set(factKey{pkg: p.Pkg.Path(), obj: key, typ: factTypeName(fact)}, obj.Pos(), fact)
}

// ImportObjectFact copies the fact of fact's concrete type attached to obj
// into fact and reports whether one exists. obj may belong to any package.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key := objectKey(obj)
	if key == "" {
		return false
	}
	return p.facts.get(factKey{pkg: obj.Pkg().Path(), obj: key, typ: factTypeName(fact)}, fact)
}

// AllPackageFacts returns every package fact visible to this pass: under
// the standalone driver that is every package analyzed so far in the run
// (dependency order makes that a superset of the import closure); under
// the vet driver it is the import closure carried by the dep .vetx files.
// Sorted for deterministic reporting.
func (p *Pass) AllPackageFacts() []PackageFact {
	if p.facts == nil {
		return nil
	}
	return p.facts.AllPackage()
}
