// Package analysis is iofwdlint: a suite of static analyzers that turn the
// repository's determinism, locking, error-classification, and metric-naming
// invariants into mechanical checks. The API deliberately mirrors
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic / Fact) so
// the suite can migrate onto the upstream framework wholesale if the
// dependency ever becomes available; until then the stdlib-only driver in
// this package and the loader in internal/analysis/load stand in for it.
//
// Suppression: a diagnostic is silenced by a directive comment
//
//	//lint:allow <analyzer> <reason>
//
// placed either at the end of the offending line or alone on the line
// directly above it. A directive covers the full extent of the statement it
// is attached to, so a finding on the third line of a multi-line call is
// still suppressed by the directive above the call. The reason is
// mandatory — an allow without one is itself reported — so every exception
// is documented at the point it is granted.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// Diagnostic is one problem found by an analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	facts *Facts
	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one named check. Analyzers may keep per-run state, so
// instances must not be shared between concurrent drivers; obtain fresh
// ones from Analyzers().
type Analyzer struct {
	Name string
	Doc  string
	// Scope reports whether the analyzer reports diagnostics for a package
	// import path. A nil Scope means every package. Analyzers that declare
	// FactTypes still *run* on out-of-scope module packages — facts must be
	// produced wherever the objects they describe live — but their
	// diagnostics there are discarded. Fixture tests bypass Scope entirely.
	Scope func(pkgPath string) bool
	// FactTypes lists the fact types the analyzer exports or imports (one
	// exemplar pointer per type). Declaring them opts the analyzer into
	// running on every module package the driver loads, and is what makes
	// its facts survive the vetx round-trip under go vet.
	FactTypes []Fact
	Run       func(*Pass) error
}

// Finding is a located, attributed diagnostic ready for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzers returns fresh instances of the full iofwdlint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewSimclock(),
		NewLockhold(),
		NewMetricname(),
		NewErrnofact(),
		NewOpexhaustive(),
		NewGoroleak(),
		NewCtxpropagate(),
		NewTracefmt(),
	}
}

// Options controls a driver run.
type Options struct {
	// IgnoreScope runs every analyzer on every package, regardless of the
	// analyzer's Scope. Fixture tests use it.
	IgnoreScope bool
}

// Run executes the analyzers over the loaded packages and returns the
// surviving findings sorted by position. pkgs should be the full
// `go list -deps` output in dependency order (not just the targets):
// module-local dependency packages are analyzed facts-only so targets can
// import their facts, exactly as the vet driver sees them through .vetx
// files. Allow directives are applied and malformed directives are
// reported here, so every driver (CLI, vet shim, fixture tests) shares
// identical suppression semantics.
func Run(pkgs []*load.Package, fset *token.FileSet, analyzers []*Analyzer, opts Options) []Finding {
	findings, _ := RunWithFacts(pkgs, fset, analyzers, opts)
	return findings
}

// RunWithFacts is Run, additionally returning the fact store accumulated
// across the run (analysistest asserts against it).
func RunWithFacts(pkgs []*load.Package, fset *token.FileSet, analyzers []*Analyzer, opts Options) ([]Finding, *Facts) {
	facts := NewFacts()
	var findings []Finding
	for _, pkg := range pkgs {
		if pkg.Types == nil || pkg.Info == nil {
			continue // external dep: checked API-only, no fact production
		}
		if !pkg.Target && !pkg.Local {
			continue
		}
		fs := runPackage(pkg.ImportPath, pkg.Syntax, pkg.Types, pkg.Info, fset, analyzers, opts, facts, pkg.Target)
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, facts
}

// RunSingle analyzes one pre-type-checked package: the vet -vettool path,
// where the go command supplies per-package type information and facts
// arrive through the .vetx files of the package's dependencies. When
// factsOnly is set (the .cfg's VetxOnly), only fact-declaring analyzers
// run and no diagnostics are reported — the package is being analyzed for
// its facts, not vetted itself.
func RunSingle(importPath string, files []*ast.File, pkg *types.Package, info *types.Info, fset *token.FileSet, facts *Facts, factsOnly bool) []Finding {
	if facts == nil {
		facts = NewFacts()
	}
	findings := runPackage(importPath, files, pkg, info, fset, Analyzers(), Options{}, facts, !factsOnly)
	sortFindings(findings)
	return findings
}

func runPackage(importPath string, files []*ast.File, pkg *types.Package, info *types.Info, fset *token.FileSet, analyzers []*Analyzer, opts Options, facts *Facts, report bool) []Finding {
	// The invariants guard production code; test files use throwaway metric
	// names, real clocks for timeouts, and ad-hoc errors by design. The
	// standalone loader never feeds test files, but the vet -vettool path
	// does, so filter here to keep the two drivers in agreement.
	files = withoutTestFiles(fset, files)
	var findings []Finding
	dirs := collectDirectives(fset, files)
	for _, a := range analyzers {
		inScope := opts.IgnoreScope || a.Scope == nil || a.Scope(importPath)
		// Out-of-scope and facts-only passes still run fact-declaring
		// analyzers: their facts describe this package's objects for
		// importers to consume. Everything else is skipped outright.
		if (!inScope || !report) && len(a.FactTypes) == 0 {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			facts:    facts,
		}
		if err := a.Run(pass); err != nil {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
			})
			continue
		}
		if !inScope || !report {
			continue // fact production only; diagnostics discarded
		}
		for _, d := range pass.diags {
			pos := fset.Position(d.Pos)
			if dirs.allows(a.Name, pos) {
				continue
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	if report {
		findings = append(findings, dirs.malformed...)
	}
	return findings
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
}

// withoutTestFiles drops *_test.go files from the analysis set.
func withoutTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	kept := files[:0:0]
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// directiveSet indexes //lint:allow directives by file and line.
type directiveSet struct {
	// byLine maps file -> line -> analyzer names allowed on that line.
	byLine    map[string]map[int][]string
	malformed []Finding
}

const directivePrefix = "//lint:allow"

// collectDirectives scans file comments for allow directives. A directive
// covers its own line, the line below it (so it can trail the offending
// statement or sit on its own line above), and — when either of those
// lines starts a statement that spans further lines — the statement's full
// extent, so a finding deep inside a multi-line call is still suppressed
// by the directive above the call. For block statements (if/for/switch,
// func declarations) the extent stops at the opening brace: a directive
// above a loop covers its multi-line header, not its whole body.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		var extent map[int]int // statement start line -> last line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				parts := strings.Fields(rest)
				if len(parts) < 2 {
					ds.malformed = append(ds.malformed, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" (reason is mandatory)",
					})
					continue
				}
				if extent == nil {
					extent = statementExtents(fset, f)
				}
				name := parts[0]
				lines := ds.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					ds.byLine[pos.Filename] = lines
				}
				cover := func(line int) {
					for _, have := range lines[line] {
						if have == name {
							return
						}
					}
					lines[line] = append(lines[line], name)
				}
				// Own line and the next, then out to the end of any
				// multi-line statement starting on either.
				for _, start := range []int{pos.Line, pos.Line + 1} {
					cover(start)
					for l := start + 1; l <= extent[start]; l++ {
						cover(l)
					}
				}
			}
		}
	}
	return ds
}

// statementExtents maps the starting line of every multi-line statement
// (and value spec) in f to its last line. Block-bodied constructs map to
// the line of their opening brace instead, so a directive never silently
// blankets a whole loop or function body.
func statementExtents(fset *token.FileSet, f *ast.File) map[int]int {
	extent := make(map[int]int)
	record := func(from, to token.Pos) {
		s, e := fset.Position(from).Line, fset.Position(to).Line
		if e > s && e > extent[s] {
			extent[s] = e
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt, *ast.AssignStmt, *ast.ReturnStmt, *ast.GoStmt,
			*ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.ValueSpec:
			record(n.Pos(), n.End())
		case *ast.IfStmt:
			record(n.Pos(), n.Body.Lbrace)
		case *ast.ForStmt:
			record(n.Pos(), n.Body.Lbrace)
		case *ast.RangeStmt:
			record(n.Pos(), n.Body.Lbrace)
		case *ast.SwitchStmt:
			record(n.Pos(), n.Body.Lbrace)
		case *ast.TypeSwitchStmt:
			record(n.Pos(), n.Body.Lbrace)
		case *ast.FuncDecl:
			if n.Body != nil {
				record(n.Pos(), n.Body.Lbrace)
			}
		}
		return true
	})
	return extent
}

// allows reports whether a directive for analyzer covers pos.
func (ds *directiveSet) allows(analyzer string, pos token.Position) bool {
	for _, name := range ds.byLine[pos.Filename][pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}
