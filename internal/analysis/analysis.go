// Package analysis is iofwdlint: a suite of static analyzers that turn the
// repository's determinism, locking, error-classification, and metric-naming
// invariants into mechanical checks. The API deliberately mirrors
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic) so the suite
// can migrate onto the upstream framework wholesale if the dependency ever
// becomes available; until then the stdlib-only driver in this package and
// the loader in internal/analysis/load stand in for it.
//
// Suppression: a diagnostic is silenced by a directive comment
//
//	//lint:allow <analyzer> <reason>
//
// placed either at the end of the offending line or alone on the line
// directly above it. The reason is mandatory — an allow without one is
// itself reported — so every exception is documented at the point it is
// granted.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// Diagnostic is one problem found by an analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one named check. Analyzers may keep cross-package state
// (metricname does, for duplicate detection), so instances must not be
// shared between concurrent drivers; obtain fresh ones from Analyzers().
type Analyzer struct {
	Name string
	Doc  string
	// Scope reports whether the analyzer applies to a package import path.
	// A nil Scope means every package. The driver consults it; fixture
	// tests bypass it so testdata packages are always analyzed.
	Scope func(pkgPath string) bool
	Run   func(*Pass) error
}

// Finding is a located, attributed diagnostic ready for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzers returns fresh instances of the full iofwdlint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewSimclock(),
		NewLockhold(),
		NewMetricname(),
		NewErrnowrap(),
		NewOpexhaustive(),
		NewGoroleak(),
		NewCtxpropagate(),
	}
}

// Options controls a driver run.
type Options struct {
	// IgnoreScope runs every analyzer on every package, regardless of the
	// analyzer's Scope. Fixture tests use it.
	IgnoreScope bool
}

// Run executes the analyzers over the target packages and returns the
// surviving findings sorted by position. Allow directives are applied and
// malformed directives are reported here, so every driver (CLI, vet shim,
// fixture tests) shares identical suppression semantics.
func Run(pkgs []*load.Package, fset *token.FileSet, analyzers []*Analyzer, opts Options) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		if !pkg.Target || pkg.Types == nil {
			continue
		}
		findings = append(findings, runPackage(pkg.ImportPath, pkg.Syntax, pkg.Types, pkg.Info, fset, analyzers, opts)...)
	}
	sortFindings(findings)
	return findings
}

// RunSingle analyzes one pre-type-checked package: the vet -vettool path,
// where the go command supplies per-package type information. Cross-package
// checks (metricname kind conflicts) only see this one package here; the
// standalone driver is the whole-repo authority.
func RunSingle(importPath string, files []*ast.File, pkg *types.Package, info *types.Info, fset *token.FileSet) []Finding {
	findings := runPackage(importPath, files, pkg, info, fset, Analyzers(), Options{})
	sortFindings(findings)
	return findings
}

func runPackage(importPath string, files []*ast.File, pkg *types.Package, info *types.Info, fset *token.FileSet, analyzers []*Analyzer, opts Options) []Finding {
	// The invariants guard production code; test files use throwaway metric
	// names, real clocks for timeouts, and ad-hoc errors by design. The
	// standalone loader never feeds test files, but the vet -vettool path
	// does, so filter here to keep the two drivers in agreement.
	files = withoutTestFiles(fset, files)
	var findings []Finding
	dirs := collectDirectives(fset, files)
	for _, a := range analyzers {
		if !opts.IgnoreScope && a.Scope != nil && !a.Scope(importPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
		}
		if err := a.Run(pass); err != nil {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
			})
			continue
		}
		for _, d := range pass.diags {
			pos := fset.Position(d.Pos)
			if dirs.allows(a.Name, pos) {
				continue
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	return append(findings, dirs.malformed...)
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
}

// withoutTestFiles drops *_test.go files from the analysis set.
func withoutTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	kept := files[:0:0]
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// directiveSet indexes //lint:allow directives by file and line.
type directiveSet struct {
	// byLine maps file -> line -> analyzer names allowed on that line.
	byLine    map[string]map[int][]string
	malformed []Finding
}

const directivePrefix = "//lint:allow"

// collectDirectives scans file comments for allow directives. A directive
// covers its own line and the line below it (so it can trail the offending
// statement or sit on its own line above).
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				parts := strings.Fields(rest)
				if len(parts) < 2 {
					ds.malformed = append(ds.malformed, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" (reason is mandatory)",
					})
					continue
				}
				name := parts[0]
				lines := ds.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					ds.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
				lines[pos.Line+1] = append(lines[pos.Line+1], name)
			}
		}
	}
	return ds
}

// allows reports whether a directive for analyzer covers pos.
func (ds *directiveSet) allows(analyzer string, pos token.Position) bool {
	for _, name := range ds.byLine[pos.Filename][pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}
