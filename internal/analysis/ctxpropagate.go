package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewCtxpropagate returns the ctxpropagate analyzer: internal/core's public
// surface is the compute-node API, and since the client redesign every
// potentially-blocking entry point takes a context.Context (PR 8). This
// analyzer keeps that property from eroding, in both directions:
//
//   - An exported function or method of an exported type that contains a
//     directly blocking operation — channel send/receive, range over a
//     channel, select without default, time.Sleep, sync.WaitGroup.Wait,
//     sync.Cond.Wait — must accept a context.Context, so callers can bound
//     or cancel the wait. Close is exempt (the io.Closer contract has no
//     ctx, and shutdown must run unconditionally); deliberate exceptions
//     carry a //lint:allow ctxpropagate <reason> at the blocking site.
//   - A function that *has* a ctx parameter must not synthesize a fresh
//     context.Background()/context.TODO() inside its body: that silently
//     severs the caller's cancellation chain. Ctx-less convenience
//     wrappers (File.WriteAt delegating to WriteAtCtx) are fine — they
//     have no ctx parameter, so the severed chain is the caller's explicit
//     choice, visible in the signature.
//
// The check is syntactic and direct: blocking operations inside nested
// function literals belong to the goroutine that runs them, not to this
// entry point, and are skipped.
func NewCtxpropagate() *Analyzer {
	return &Analyzer{
		Name:  "ctxpropagate",
		Doc:   "blocking exported core entry points must take a context.Context; ctx-taking functions must not synthesize context.Background/TODO",
		Scope: func(path string) bool { return path == "repro/internal/core" },
		Run:   runCtxpropagate,
	}
}

func runCtxpropagate(pass *Pass) error {
	if pass.Info == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasCtxParam(pass, fd) {
				checkNoFreshCtx(pass, fd)
				continue
			}
			if !publicEntryPoint(fd) || fd.Name.Name == "Close" {
				continue
			}
			reportDirectBlocking(pass, fd)
		}
	}
	return nil
}

// hasCtxParam reports whether fd declares a context.Context parameter.
func hasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := pass.Info.Types[field.Type]; ok && tv.Type != nil {
			if named, ok := tv.Type.(*types.Named); ok {
				obj := named.Obj()
				if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
					return true
				}
			}
		}
	}
	return false
}

// publicEntryPoint reports whether fd is part of the package's exported
// surface: an exported function, or an exported method on an exported type.
func publicEntryPoint(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	return ast.IsExported(recvTypeName(fd.Recv.List[0].Type))
}

// recvTypeName unwraps a receiver type expression to its type name.
func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	}
	return ""
}

// checkNoFreshCtx flags context.Background()/context.TODO() inside a
// function that already receives a ctx.
func checkNoFreshCtx(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calledFunc(pass, call)
		if fn == nil {
			return true
		}
		switch fn.FullName() {
		case "context.Background", "context.TODO":
			pass.Reportf(call.Pos(),
				"%s receives a context.Context but synthesizes %s here, severing the caller's cancellation chain; pass the ctx down (or //lint:allow ctxpropagate <reason>)",
				fd.Name.Name, fn.Name())
		}
		return true
	})
}

// reportDirectBlocking flags blocking operations in the direct body of a
// ctx-less exported entry point. Nested function literals run on other
// goroutines (or are themselves closures with their own contracts) and are
// skipped.
func reportDirectBlocking(pass *Pass, fd *ast.FuncDecl) {
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos,
			"exported %s blocks on %s but takes no context.Context; callers cannot cancel or bound the wait (add a ctx parameter or //lint:allow ctxpropagate <reason>)",
			fd.Name.Name, what)
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			report(n.Pos(), "a channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "a channel receive")
			}
		case *ast.SelectStmt:
			// The select statement is the blocking construct; the channel
			// operations in its comm clauses belong to it, whether or not a
			// default makes it non-blocking. Only the clause bodies are
			// walked for further blocking operations.
			if !selectHasDefault(n) {
				report(n.Pos(), "a select without default")
			}
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						ast.Inspect(stmt, visit)
					}
				}
			}
			return false
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(n.Pos(), "a range over a channel")
				}
			}
		case *ast.CallExpr:
			fn := calledFunc(pass, n)
			if fn == nil {
				return true
			}
			switch fn.FullName() {
			case "time.Sleep":
				report(n.Pos(), "time.Sleep")
			case "(*sync.WaitGroup).Wait":
				report(n.Pos(), "sync.WaitGroup.Wait")
			case "(*sync.Cond).Wait":
				report(n.Pos(), "sync.Cond.Wait")
			}
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// selectHasDefault reports whether the select statement has a default
// clause (making it non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
