package analysis

import (
	"go/ast"
	"strings"
)

// NewErrnowrap returns the errnowrap analyzer: errors constructed inside
// functions of internal/core cross the wire-protocol boundary (handler
// returns become reply errnos via toErrno; client failures must satisfy
// errors.Is against the typed roots), so they must carry their
// classification in the wrap chain. Concretely:
//
//   - fmt.Errorf must use %w to wrap an Errno or one of the typed roots
//     (ErrConnectionLost, ErrClientClosed, ErrOpTimeout); without %w the
//     chain is cut and toErrno / errors.Is silently degrade to EIO.
//   - errors.New inside a function creates an unclassifiable error; the
//     only legitimate errors.New calls are the package-level typed root
//     declarations, which live outside function bodies and are not flagged.
//
// internal/wal is in scope for the same reason: its I/O failures surface
// through descdb deferred errors and fsync replies, so a WAL error that
// does not wrap core.EIO (or one of the wal typed roots) would reach the
// client as an unclassifiable failure.
func NewErrnowrap() *Analyzer {
	return &Analyzer{
		Name:  "errnowrap",
		Doc:   "errors built on internal/core's and internal/wal's wire paths must be Errno-typed or wrap a typed root with %w",
		Scope: func(path string) bool { return path == "repro/internal/core" || path == "repro/internal/wal" },
		Run:   runErrnowrap,
	}
}

func runErrnowrap(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := pkgLevelFunc(pass, sel)
				if fn == nil {
					return true
				}
				switch fn.FullName() {
				case "errors.New":
					pass.Reportf(call.Pos(),
						"errors.New on a core error path; return an Errno or wrap a typed root (ErrConnectionLost/ErrClientClosed/ErrOpTimeout) with %%w so errors.Is classification works")
				case "fmt.Errorf":
					if len(call.Args) == 0 {
						return true
					}
					format, ok := stringLiteral(call.Args[0])
					if ok && !strings.Contains(format, "%w") {
						pass.Reportf(call.Pos(),
							"fmt.Errorf without %%w on a core error path; wrap an Errno or typed root so toErrno and errors.Is keep classifying it")
					}
				}
				return true
			})
		}
	}
	return nil
}
