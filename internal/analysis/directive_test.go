package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestDirectiveCoverage(t *testing.T) {
	const src = `package p

//lint:allow simclock the schedule is still seeded
var a = 1

var b = 2 //lint:allow lockhold send is buffered
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ds := collectDirectives(fset, []*ast.File{f})

	at := func(line int) token.Position { return token.Position{Filename: "dir.go", Line: line} }

	// A directive covers its own line and the one below.
	if !ds.allows("simclock", at(3)) || !ds.allows("simclock", at(4)) {
		t.Error("standalone directive should cover its line and the next")
	}
	if ds.allows("simclock", at(5)) {
		t.Error("directive must not leak two lines down")
	}
	// Trailing directive covers the statement it trails.
	if !ds.allows("lockhold", at(6)) {
		t.Error("trailing directive should cover its own line")
	}
	// Analyzer names are not interchangeable.
	if ds.allows("lockhold", at(3)) || ds.allows("simclock", at(6)) {
		t.Error("directives must be analyzer-specific")
	}
	if len(ds.malformed) != 0 {
		t.Errorf("well-formed directives reported malformed: %v", ds.malformed)
	}
}

func TestDirectiveMalformed(t *testing.T) {
	const src = `package p

//lint:allow simclock
var a = 1

//lint:allow
var b = 2
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ds := collectDirectives(fset, []*ast.File{f})

	if len(ds.malformed) != 2 {
		t.Fatalf("got %d malformed findings, want 2: %v", len(ds.malformed), ds.malformed)
	}
	for _, m := range ds.malformed {
		if m.Analyzer != "directive" {
			t.Errorf("malformed finding attributed to %q, want \"directive\"", m.Analyzer)
		}
	}
	// A reason-less directive grants nothing.
	if ds.allows("simclock", token.Position{Filename: "dir.go", Line: 4}) {
		t.Error("directive without a reason must not suppress anything")
	}
}
