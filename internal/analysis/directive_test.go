package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestDirectiveCoverage(t *testing.T) {
	const src = `package p

//lint:allow simclock the schedule is still seeded
var a = 1

var b = 2 //lint:allow lockhold send is buffered
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ds := collectDirectives(fset, []*ast.File{f})

	at := func(line int) token.Position { return token.Position{Filename: "dir.go", Line: line} }

	// A directive covers its own line and the one below.
	if !ds.allows("simclock", at(3)) || !ds.allows("simclock", at(4)) {
		t.Error("standalone directive should cover its line and the next")
	}
	if ds.allows("simclock", at(5)) {
		t.Error("directive must not leak two lines down")
	}
	// Trailing directive covers the statement it trails.
	if !ds.allows("lockhold", at(6)) {
		t.Error("trailing directive should cover its own line")
	}
	// Analyzer names are not interchangeable.
	if ds.allows("lockhold", at(3)) || ds.allows("simclock", at(6)) {
		t.Error("directives must be analyzer-specific")
	}
	if len(ds.malformed) != 0 {
		t.Errorf("well-formed directives reported malformed: %v", ds.malformed)
	}
}

// TestDirectiveStatementExtent pins the multi-line rule: a directive above
// (or trailing the first line of) a statement covers the statement's whole
// extent, but a directive above a block construct stops at the opening
// brace instead of blanketing the body.
func TestDirectiveStatementExtent(t *testing.T) {
	const src = `package p

import "fmt"

//lint:allow metricname grandfathered dashboard name
var spec = fmt.Sprintf(
	"%s",
	"legacy_requests_total",
)

func f(ch chan int) {
	//lint:allow lockhold send is buffered and cannot block
	ch <- multi(
		1,
		2,
	)

	//lint:allow simclock loop header only
	for i := 0; i < multi(
		3, 4); i++ {
		_ = i
	}
}

func multi(a, b int) int { return a + b }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ext.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ds := collectDirectives(fset, []*ast.File{f})
	at := func(line int) token.Position { return token.Position{Filename: "ext.go", Line: line} }

	// Multi-line ValueSpec: lines 6-9 are all covered by the directive on 5.
	for line := 6; line <= 9; line++ {
		if !ds.allows("metricname", at(line)) {
			t.Errorf("directive above multi-line var should cover line %d", line)
		}
	}
	if ds.allows("metricname", at(10)) {
		t.Error("directive must not leak past the ValueSpec's extent")
	}

	// Multi-line send statement inside a function body: lines 13-16.
	for line := 13; line <= 16; line++ {
		if !ds.allows("lockhold", at(line)) {
			t.Errorf("directive above multi-line send should cover line %d", line)
		}
	}
	if ds.allows("lockhold", at(17)) {
		t.Error("directive must not leak past the send statement's extent")
	}

	// A for statement's extent stops at its opening brace: the multi-line
	// header (19-20) is covered, the body (21) is not.
	if !ds.allows("simclock", at(19)) || !ds.allows("simclock", at(20)) {
		t.Error("directive above a loop should cover its multi-line header")
	}
	if ds.allows("simclock", at(21)) {
		t.Error("directive above a loop must not blanket the loop body")
	}
}

func TestDirectiveMalformed(t *testing.T) {
	const src = `package p

//lint:allow simclock
var a = 1

//lint:allow
var b = 2
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ds := collectDirectives(fset, []*ast.File{f})

	if len(ds.malformed) != 2 {
		t.Fatalf("got %d malformed findings, want 2: %v", len(ds.malformed), ds.malformed)
	}
	for _, m := range ds.malformed {
		if m.Analyzer != "directive" {
			t.Errorf("malformed finding attributed to %q, want \"directive\"", m.Analyzer)
		}
	}
	// A reason-less directive grants nothing.
	if ds.allows("simclock", token.Position{Filename: "dir.go", Line: 4}) {
		t.Error("directive without a reason must not suppress anything")
	}
}
