// Package load type-checks Go packages for the iofwdlint analyzers without
// depending on golang.org/x/tools. It shells out to `go list -json -deps`
// for build metadata (which the go command emits in dependency order) and
// type-checks every package from source with go/types, ignoring function
// bodies for pure external dependencies so a whole-repo load stays fast.
//
// Packages that live inside the loaded module ("local" packages) are fully
// parsed and type-checked even when they are only dependencies of the load
// patterns: the fact-passing analyzers (metricname, errnofact) need to
// inspect their bodies to export facts that target packages then import.
// The dependency order of `go list -deps` is exactly the topological order
// facts must flow in, so the driver can make a single pass.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths
	Target     bool     // matched the load patterns (vs. pulled in as a dep)
	Local      bool     // lives inside the loaded module (fact producer)
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info // populated for targets and local deps
	TypeErrors []error     // non-fatal type-check problems
}

// listPkg mirrors the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns (and their dependencies) in the module rooted at dir
// and returns the type-checked packages in dependency order. Test files are
// not loaded: the analyzers police production code, and tests legitimately
// use wall-clock timeouts to bound hangs.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, fmt.Errorf("go list: %v", err)
	}

	absDir, err := filepath.Abs(dir)
	if err != nil {
		absDir = dir
	}

	fset := token.NewFileSet()
	byPath := make(map[string]*Package)
	var pkgs []*Package

	dec := json.NewDecoder(out)
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, nil, fmt.Errorf("go list: decoding output: %v (stderr: %s)", err, stderr.String())
		}
		if lp.ImportPath == "unsafe" {
			continue // handled via types.Unsafe in the importer
		}
		p := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Target:     !lp.DepOnly,
			Local:      lp.Dir == absDir || strings.HasPrefix(lp.Dir, absDir+string(filepath.Separator)),
		}
		for _, f := range append(append([]string{}, lp.GoFiles...), lp.CgoFiles...) {
			if !filepath.IsAbs(f) {
				f = filepath.Join(lp.Dir, f)
			}
			p.GoFiles = append(p.GoFiles, f)
		}
		if err := check(p, lp.ImportMap, fset, byPath); err != nil {
			_ = cmd.Wait()
			return nil, nil, fmt.Errorf("loading %s: %v", p.ImportPath, err)
		}
		byPath[p.ImportPath] = p
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, nil, fmt.Errorf("go list: %v (stderr: %s)", err, stderr.String())
	}
	return pkgs, fset, nil
}

// Targets filters pkgs down to the ones that matched the load patterns.
func Targets(pkgs []*Package) []*Package {
	var out []*Package
	for _, p := range pkgs {
		if p.Target {
			out = append(out, p)
		}
	}
	return out
}

// check parses and type-checks one package whose dependencies are already
// in byPath (guaranteed by go list's dependency-ordered -deps output).
// Targets and local dependencies get full bodies and type info; external
// (std) dependencies are checked API-only.
func check(p *Package, importMap map[string]string, fset *token.FileSet, byPath map[string]*Package) error {
	full := p.Target || p.Local
	mode := parser.SkipObjectResolution
	if full {
		mode |= parser.ParseComments
	}
	for _, f := range p.GoFiles {
		af, err := parser.ParseFile(fset, f, nil, mode)
		if af == nil {
			return fmt.Errorf("parsing %s: %v", f, err)
		}
		if err != nil {
			p.TypeErrors = append(p.TypeErrors, err)
		}
		p.Syntax = append(p.Syntax, af)
	}
	conf := types.Config{
		Importer:         &mapImporter{importMap: importMap, byPath: byPath},
		IgnoreFuncBodies: !full,
		FakeImportC:      true,
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	if full {
		p.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	// Errors are collected in p.TypeErrors; a partially checked package is
	// still analyzable, so the return value is deliberately dropped.
	p.Types, _ = conf.Check(p.ImportPath, fset, p.Syntax, p.Info)
	return nil
}

// mapImporter resolves imports against already-checked packages, applying
// the per-package ImportMap (std-vendored paths like vendor/golang.org/x/...).
type mapImporter struct {
	importMap map[string]string
	byPath    map[string]*Package
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if r, ok := m.importMap[path]; ok {
		path = r
	}
	if p, ok := m.byPath[path]; ok && p.Types != nil {
		return p.Types, nil
	}
	return nil, fmt.Errorf("package %q not loaded", path)
}
