package load

import (
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot finds the repo root from this source file's location.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

func TestLoadCorePackage(t *testing.T) {
	pkgs, fset, err := Load(moduleRoot(t), "./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if fset == nil {
		t.Fatal("nil fset")
	}
	targets := Targets(pkgs)
	if len(targets) != 1 || targets[0].ImportPath != "repro/internal/core" {
		t.Fatalf("targets = %v, want [repro/internal/core]", paths(targets))
	}
	core := targets[0]
	if len(core.TypeErrors) > 0 {
		t.Fatalf("type errors in healthy package: %v", core.TypeErrors)
	}
	if core.Info == nil || len(core.Info.Uses) == 0 {
		t.Fatal("target package missing type info")
	}
	// Dependencies (std + telemetry) ride along, deps-first.
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.ImportPath] = true
	}
	for _, want := range []string{"sync", "time", "repro/internal/telemetry"} {
		if !seen[want] {
			t.Errorf("dependency %s not loaded", want)
		}
	}
}

// TestLoadDiamondDepOrder pins the property the fact subsystem rests on:
// `go list -deps` output is topologically sorted, so a package's
// module-local dependencies appear (and are analyzed, producing facts)
// before it, and those dependencies carry full syntax and type info even
// when only the root is the load target.
func TestLoadDiamondDepOrder(t *testing.T) {
	pkgs, _, err := Load(moduleRoot(t), "./internal/analysis/testdata/src/factdiamond/root")
	if err != nil {
		t.Fatal(err)
	}
	const base = "repro/internal/analysis/testdata/src/factdiamond/"
	idx := map[string]int{}
	for i, p := range pkgs {
		idx[p.ImportPath] = i
	}
	for _, leaf := range []string{base + "leafa", base + "leafb"} {
		i, ok := idx[leaf]
		if !ok {
			t.Fatalf("leaf %s not loaded; got %v", leaf, paths(pkgs))
		}
		root, ok := idx[base+"root"]
		if !ok {
			t.Fatalf("root not loaded; got %v", paths(pkgs))
		}
		if i >= root {
			t.Errorf("%s at index %d does not precede root at %d; fact propagation needs deps-first order", leaf, i, root)
		}
		p := pkgs[i]
		if p.Target {
			t.Errorf("%s should be a dependency, not a target", leaf)
		}
		if !p.Local {
			t.Errorf("%s should be marked Local (module-local dependency)", leaf)
		}
		if p.Info == nil || len(p.Syntax) == 0 {
			t.Errorf("%s missing syntax/type info; local deps must be fully parsed for fact production", leaf)
		}
	}
}

func paths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.ImportPath)
	}
	return out
}
