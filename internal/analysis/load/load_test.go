package load

import (
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot finds the repo root from this source file's location.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

func TestLoadCorePackage(t *testing.T) {
	pkgs, fset, err := Load(moduleRoot(t), "./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if fset == nil {
		t.Fatal("nil fset")
	}
	targets := Targets(pkgs)
	if len(targets) != 1 || targets[0].ImportPath != "repro/internal/core" {
		t.Fatalf("targets = %v, want [repro/internal/core]", paths(targets))
	}
	core := targets[0]
	if len(core.TypeErrors) > 0 {
		t.Fatalf("type errors in healthy package: %v", core.TypeErrors)
	}
	if core.Info == nil || len(core.Info.Uses) == 0 {
		t.Fatal("target package missing type info")
	}
	// Dependencies (std + telemetry) ride along, deps-first.
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.ImportPath] = true
	}
	for _, want := range []string{"sync", "time", "repro/internal/telemetry"} {
		if !seen[want] {
			t.Errorf("dependency %s not loaded", want)
		}
	}
}

func paths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.ImportPath)
	}
	return out
}
