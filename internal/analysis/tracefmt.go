package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// stageNames are the forwarding-path stages of DESIGN.md §7 (the paper's
// Fig 4-6 cut points). Any "stage" label or stage= trace token must name
// one of them, or per-stage attribution silently fragments.
var stageNames = map[string]bool{
	"recv":    true,
	"queue":   true,
	"backend": true,
	"reply":   true,
	"spill":   true,
}

// snakeKeyRE is the discipline for telemetry label keys and key=value
// tokens in trace/log format strings: lowercase snake_case, matching the
// iofwd_ metric-name convention so scraped logs and metrics join on the
// same vocabulary.
var snakeKeyRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// formatFuncs maps printf-style functions to the index of their format
// string argument.
var formatFuncs = map[string]int{
	"fmt.Errorf":             0,
	"fmt.Printf":             0,
	"fmt.Sprintf":            0,
	"fmt.Fprintf":            1,
	"log.Printf":             0,
	"log.Fatalf":             0,
	"log.Panicf":             0,
	"(*log.Logger).Printf":   0,
	"(*log.Logger).Fatalf":   0,
	"(*log.Logger).Panicf":   0,
	"(*testing.common).Logf": 0, // never reached (test files are filtered); kept for completeness
}

// NewTracefmt returns the tracefmt analyzer: telemetry labels and trace/log
// format strings must keep the repository's key=value discipline so logs,
// metrics, and the paper's stage attribution stay machine-joinable:
//
//   - telemetry.L label keys (when literal) are lowercase snake_case, and
//     a "stage" label's literal value is one of recv/queue/backend/reply/
//     spill — the §7 stage table is closed, and an off-vocabulary stage
//     would silently fall out of every per-stage figure;
//   - key=value tokens inside printf-style format literals use snake_case
//     keys ("torn_tails=%d", not "tornTails=%d"), and a literal stage=
//     token names a real stage;
//   - an Errno value formatted by fmt.Errorf with any verb other than %w
//     (%v, %s, %d, ...) is flagged: the rendering looks fine in the
//     message, but the wrap chain is cut and errors.Is classification is
//     lost. This is the repo-wide complement to errnofact's wire-path
//     scope.
func NewTracefmt() *Analyzer {
	return &Analyzer{
		Name: "tracefmt",
		Doc:  "telemetry label keys and log format strings keep snake_case key=value discipline, stage names come from the closed §7 set, and Errno values are never formatted with %v where %w is required",
		Run:  runTracefmt,
	}
}

func runTracefmt(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass, call)
			if fn == nil {
				return true
			}
			if fn.FullName() == registryPkg+".L" {
				checkLabelCall(pass, call)
				return true
			}
			if idx, ok := formatFuncs[fn.FullName()]; ok && len(call.Args) > idx {
				checkFormatCall(pass, fn.FullName(), call, idx)
			}
			return true
		})
	}
	return nil
}

// checkLabelCall validates a telemetry.L(key, value) call with literal
// arguments.
func checkLabelCall(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	key, ok := stringLiteral(call.Args[0])
	if !ok {
		return
	}
	if !snakeKeyRE.MatchString(key) {
		pass.Reportf(call.Args[0].Pos(),
			"telemetry label key %q is not lowercase snake_case; label keys share the iofwd_ metric vocabulary", key)
		return
	}
	if key == "stage" {
		if val, ok := stringLiteral(call.Args[1]); ok && !stageNames[val] {
			pass.Reportf(call.Args[1].Pos(),
				"stage label %q is not a forwarding-path stage (recv/queue/backend/reply/spill); off-vocabulary stages fall out of per-stage attribution", val)
		}
	}
}

// kvTokenRE matches candidate key=value tokens in a format literal. The
// preceding character is checked separately so verbs ("%s=") and word
// tails ("MiB=") inside larger tokens are not misread as keys.
var kvTokenRE = regexp.MustCompile(`[A-Za-z][A-Za-z0-9_]*=`)

// stageTokenRE captures the literal value of a stage= token.
var stageTokenRE = regexp.MustCompile(`\bstage=([a-zA-Z_]+)`)

// checkFormatCall validates one printf-style call: key=value discipline in
// the format literal, and (for fmt.Errorf) no Errno argument formatted with
// a verb other than %w.
func checkFormatCall(pass *Pass, fullName string, call *ast.CallExpr, formatIdx int) {
	format, ok := stringLiteral(call.Args[formatIdx])
	if !ok {
		return
	}
	for _, loc := range kvTokenRE.FindAllStringIndex(format, -1) {
		if loc[0] > 0 {
			prev := format[loc[0]-1]
			if prev == '%' || prev == '_' || prev == '.' || prev == '[' ||
				('a' <= prev && prev <= 'z') || ('A' <= prev && prev <= 'Z') || ('0' <= prev && prev <= '9') {
				continue
			}
		}
		key := format[loc[0] : loc[1]-1]
		if !snakeKeyRE.MatchString(key) {
			pass.Reportf(call.Args[formatIdx].Pos(),
				"format key %q is not lowercase snake_case; trace key=value tokens share the iofwd_ metric vocabulary", key)
		}
	}
	for _, m := range stageTokenRE.FindAllStringSubmatch(format, -1) {
		if !stageNames[m[1]] {
			pass.Reportf(call.Args[formatIdx].Pos(),
				"stage token %q is not a forwarding-path stage (recv/queue/backend/reply/spill)", "stage="+m[1])
		}
	}

	if fullName != "fmt.Errorf" {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // indexed or otherwise exotic verbs: mapping unreliable
	}
	args := call.Args[formatIdx+1:]
	for i, verb := range verbs {
		if verb == 'w' || i >= len(args) {
			continue
		}
		if tv, ok := pass.Info.Types[args[i]]; ok && isErrnoType(tv.Type) {
			pass.Reportf(args[i].Pos(),
				"Errno formatted with %%%c; the text looks right but the wrap chain is cut — use %%w so errors.Is keeps classifying it", verb)
		}
	}
}

// formatVerbs returns the verb runes of a printf format string in argument
// order ('*' width/precision slots appear as '*'). It reports !ok for
// explicit argument indexes (%[n]d), where positional mapping would lie.
func formatVerbs(format string) ([]rune, bool) {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || ('1' <= c && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, rune(format[i]))
		}
	}
	return verbs, true
}

// isErrnoType reports whether t is a named integer type called Errno —
// core.Errno on the real stack, or a fixture mirror of it.
func isErrnoType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Errno" {
		return false
	}
	basic, ok := named.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
