// Package analysistest runs an analyzer over a fixture package under
// internal/analysis/testdata/src and compares its diagnostics and exported
// facts against `// want` comments in the fixture, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Expectation syntax: a comment anywhere on a line of the form
//
//	// want "re1" `re2` name:"re3" ...
//
// Each token is either a diagnostic expectation (a bare "regexp" or
// `regexp`) requiring a matching diagnostic on that line, or a fact
// expectation (name:"regexp", where name is the analyzer's name) requiring
// a fact whose fmt.Sprint rendering matches, attached to an object
// declared on that line (object facts) or to the package clause (package
// facts). Lines without a want comment must produce no diagnostics and
// export no facts; that is how `//lint:allow` suppression is asserted —
// the violation is present but no want comment accompanies it.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var wantCommentRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// wantTokenRE matches one expectation token at the start of the remainder:
// an optional analyzer-name prefix, then a quoted or backquoted pattern.
var wantTokenRE = regexp.MustCompile("^(?:([A-Za-z_][A-Za-z0-9_]*):)?(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// expectation is one parsed want token.
type expectation struct {
	fact bool // name:"re" token — matches a fact, not a diagnostic
	name string
	re   *regexp.Regexp
}

// Run loads testdata/src/<fixture>/... relative to the module root,
// applies a fresh analyzer from mk, and checks diagnostics and facts
// against the fixture's want comments. Scope is bypassed: fixtures are
// always analyzed.
func Run(t *testing.T, mk func() *analysis.Analyzer, fixture string) {
	t.Helper()
	root := moduleRoot(t)
	pattern := "./internal/analysis/testdata/src/" + fixture + "/..."
	pkgs, fset, err := load.Load(root, pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	targets := load.Targets(pkgs)
	if len(targets) == 0 {
		t.Fatalf("fixture %s matched no packages", fixture)
	}
	for _, p := range targets {
		for _, e := range p.TypeErrors {
			t.Errorf("fixture %s: type error: %v", p.ImportPath, e)
		}
	}

	a := mk()
	findings, facts := analysis.RunWithFacts(pkgs, fset, []*analysis.Analyzer{a}, analysis.Options{IgnoreScope: true})

	type key struct {
		file string
		line int
	}
	gotDiags := make(map[key][]string)
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		gotDiags[k] = append(gotDiags[k], f.Message)
	}

	// Facts are asserted only at positions inside the fixture's own files:
	// module-local dependencies outside the fixture may legitimately export
	// facts the fixture never mentions.
	fixtureFiles := make(map[string]bool)
	for _, p := range targets {
		for _, f := range p.GoFiles {
			fixtureFiles[f] = true
		}
	}
	gotFacts := make(map[key][]string)
	addFact := func(pos int, file string, fact analysis.Fact) {
		if !fixtureFiles[file] {
			return
		}
		k := key{file, pos}
		gotFacts[k] = append(gotFacts[k], fmt.Sprint(fact))
	}
	for _, pf := range facts.AllPackage() {
		if pf.Pos.IsValid() {
			p := fset.Position(pf.Pos)
			addFact(p.Line, p.Filename, pf.Fact)
		}
	}
	for _, of := range facts.AllObject() {
		if of.Pos.IsValid() {
			p := fset.Position(of.Pos)
			addFact(p.Line, p.Filename, of.Fact)
		}
	}

	want := make(map[key][]expectation)
	for _, p := range targets {
		for _, file := range p.GoFiles {
			for k, exps := range parseWants(t, file) {
				want[k] = exps
			}
		}
	}

	// Every want must be matched by exactly one diagnostic or fact on its
	// line, and every diagnostic and fixture-file fact must be wanted.
	for k, exps := range want {
		diags, fcts := gotDiags[k], gotFacts[k]
		for _, exp := range exps {
			if exp.fact {
				if exp.name != a.Name {
					t.Errorf("%s:%d: fact want %q names analyzer %q, but running %q", k.file, k.line, exp.re, exp.name, a.Name)
					continue
				}
				idx := matchIndex(fcts, exp.re)
				if idx < 0 {
					t.Errorf("%s:%d: no fact matching %q (got %v)", k.file, k.line, exp.re, fcts)
					continue
				}
				fcts = append(fcts[:idx], fcts[idx+1:]...)
				continue
			}
			idx := matchIndex(diags, exp.re)
			if idx < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %v)", k.file, k.line, exp.re, diags)
				continue
			}
			diags = append(diags[:idx], diags[idx+1:]...)
		}
		if len(diags) > 0 {
			t.Errorf("%s:%d: unexpected extra diagnostics %v", k.file, k.line, diags)
		}
		if len(fcts) > 0 {
			t.Errorf("%s:%d: unexpected extra facts %v", k.file, k.line, fcts)
		}
		delete(gotDiags, k)
		delete(gotFacts, k)
	}
	for k, msgs := range gotDiags {
		t.Errorf("%s:%d: unexpected diagnostics %v", k.file, k.line, msgs)
	}
	for k, fcts := range gotFacts {
		t.Errorf("%s:%d: unexpected facts %v", k.file, k.line, fcts)
	}
}

func matchIndex(msgs []string, re *regexp.Regexp) int {
	for i, m := range msgs {
		if re.MatchString(m) {
			return i
		}
	}
	return -1
}

// parseWants extracts want expectations from one fixture file.
func parseWants(t *testing.T, file string) map[struct {
	file string
	line int
}][]expectation {
	t.Helper()
	type key = struct {
		file string
		line int
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("reading fixture %s: %v", file, err)
	}
	out := make(map[key][]expectation)
	for i, line := range strings.Split(string(data), "\n") {
		m := wantCommentRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rest := m[1]
		var exps []expectation
		for {
			rest = strings.TrimLeft(rest, " \t")
			tok := wantTokenRE.FindStringSubmatch(rest)
			if tok == nil {
				break
			}
			rest = rest[len(tok[0]):]
			pat := tok[3] // backquoted: raw
			if tok[2] != "" || tok[3] == "" {
				var err error
				pat, err = unescape(tok[2])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", file, i+1, tok[2], err)
				}
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, pat, err)
			}
			exps = append(exps, expectation{fact: tok[1] != "", name: tok[1], re: re})
		}
		if len(exps) == 0 {
			continue // prose containing the word "want", not an expectation
		}
		out[key{file, i + 1}] = exps
	}
	return out
}

// unescape handles \" and \\ inside want string arguments.
func unescape(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			default:
				return "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

// moduleRoot walks up from this file to the directory containing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}

// Findings runs analyzers over real repo packages (not fixtures); the
// revert-guard tests in other packages use it to assert the suite stays
// green on the committed tree. The full deps-first package list goes to
// the runner so cross-package facts flow exactly as they do for the CLI
// drivers.
func Findings(t *testing.T, patterns ...string) []analysis.Finding {
	t.Helper()
	root := moduleRoot(t)
	pkgs, fset, err := load.Load(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Run(pkgs, fset, analysis.Analyzers(), analysis.Options{})
}
