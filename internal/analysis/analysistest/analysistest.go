// Package analysistest runs an analyzer over a fixture package under
// internal/analysis/testdata/src and compares its diagnostics against
// `// want "regexp"` comments in the fixture, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Expectation syntax: a comment anywhere on a line of the form
//
//	// want "re1" "re2" ...
//
// requires exactly those diagnostics (by regexp match against the message)
// on that line. Lines without a want comment must produce no diagnostics;
// that is how `//lint:allow` suppression is asserted — the violation is
// present but no want comment accompanies it.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads testdata/src/<fixture>/... relative to the analysis package,
// applies a fresh analyzer from mk, and checks diagnostics against the
// fixture's want comments. Scope is bypassed: fixtures are always analyzed.
func Run(t *testing.T, mk func() *analysis.Analyzer, fixture string) {
	t.Helper()
	root := moduleRoot(t)
	pattern := "./internal/analysis/testdata/src/" + fixture + "/..."
	pkgs, fset, err := load.Load(root, pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	targets := load.Targets(pkgs)
	if len(targets) == 0 {
		t.Fatalf("fixture %s matched no packages", fixture)
	}
	for _, p := range targets {
		for _, e := range p.TypeErrors {
			t.Errorf("fixture %s: type error: %v", p.ImportPath, e)
		}
	}

	findings := analysis.Run(targets, fset, []*analysis.Analyzer{mk()}, analysis.Options{IgnoreScope: true})

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		got[k] = append(got[k], f.Message)
	}

	want := make(map[key][]*regexp.Regexp)
	for _, p := range targets {
		for _, file := range p.GoFiles {
			for k, res := range parseWants(t, file) {
				want[k] = res
			}
		}
	}

	// Every want must be matched by exactly one diagnostic on its line, and
	// every diagnostic must be wanted.
	for k, res := range want {
		msgs := got[k]
		for _, re := range res {
			idx := -1
			for i, m := range msgs {
				if re.MatchString(m) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %v)", k.file, k.line, re, msgs)
				continue
			}
			msgs = append(msgs[:idx], msgs[idx+1:]...)
		}
		if len(msgs) > 0 {
			t.Errorf("%s:%d: unexpected extra diagnostics %v", k.file, k.line, msgs)
		}
		delete(got, k)
	}
	for k, msgs := range got {
		t.Errorf("%s:%d: unexpected diagnostics %v", k.file, k.line, msgs)
	}
}

// parseWants extracts want expectations from one fixture file.
func parseWants(t *testing.T, file string) map[struct {
	file string
	line int
}][]*regexp.Regexp {
	t.Helper()
	type key = struct {
		file string
		line int
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("reading fixture %s: %v", file, err)
	}
	out := make(map[key][]*regexp.Regexp)
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var res []*regexp.Regexp
		for _, am := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
			pat, err := unescape(am[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", file, i+1, am[1], err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, pat, err)
			}
			res = append(res, re)
		}
		out[key{file, i + 1}] = res
	}
	return out
}

// unescape handles \" and \\ inside want string arguments.
func unescape(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			default:
				return "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

// moduleRoot walks up from this file to the directory containing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}

// Findings runs analyzers over real repo packages (not fixtures); the
// revert-guard tests in other packages use it to assert the suite stays
// green on the committed tree.
func Findings(t *testing.T, patterns ...string) []analysis.Finding {
	t.Helper()
	root := moduleRoot(t)
	pkgs, fset, err := load.Load(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	targets := load.Targets(pkgs)
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return analysis.Run(targets, fset, analysis.Analyzers(), analysis.Options{})
}
