package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewLockhold returns the lockhold analyzer: no blocking operation —
// channel send/receive, select without default, time.Sleep, net.Conn I/O,
// WaitGroup.Wait — may run while a sync.Mutex/RWMutex is held. sync.Cond
// Wait is permitted only in its documented pattern (inside a for loop, lock
// held). This is exactly the deadlock class the BML sync.Cond→channel
// rewrite existed to kill: a goroutine parked under a lock starves every
// other path through that lock.
//
// The analysis is intraprocedural and flow-approximate: function literals
// are skipped (they may run on another goroutine), loops are analyzed for
// their bodies but assumed lock-neutral, and branch joins keep only locks
// held on every non-returning path. Functions whose names end in "Locked"
// are analyzed as if the caller's lock were held on entry, per the
// repository's naming convention.
func NewLockhold() *Analyzer {
	return &Analyzer{
		Name:  "lockhold",
		Doc:   "flags blocking operations performed while a sync mutex is held",
		Scope: scopePrefixes("repro/internal/core", "repro/internal/telemetry"),
		Run:   runLockhold,
	}
}

// callerLockKey is the pseudo-lock seeded into *Locked functions.
const callerLockKey = "caller's lock"

func runLockhold(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass}
			st := lockState{}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				st[callerLockKey] = fd.Name.Pos()
			}
			w.walkBlock(fd.Body, st, false)
		}
	}
	return nil
}

// lockState maps a lock expression (its source text) to the position where
// it was acquired.
type lockState map[string]token.Pos

func (st lockState) clone() lockState {
	c := make(lockState, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

func (st lockState) names() string {
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

type lockWalker struct {
	pass *Pass
}

// walkBlock analyzes stmts sequentially, mutating st. It reports whether
// the block always terminates (return/panic/branch) before falling off.
func (w *lockWalker) walkBlock(b *ast.BlockStmt, st lockState, inFor bool) bool {
	for _, s := range b.List {
		if w.walkStmt(s, st, inFor) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, st lockState, inFor bool) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.checkExpr(s.X, st, inFor)
		w.applyLockOps(s.X, st)
		return isPanicCall(w.pass, s.X)
	case *ast.SendStmt:
		if len(st) > 0 {
			w.pass.Reportf(s.Arrow, "channel send while holding %s; a blocked send parks the goroutine with the lock held", st.names())
		}
		w.checkExpr(s.Chan, st, inFor)
		w.checkExpr(s.Value, st, inFor)
		return false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, st, inFor)
			w.applyLockOps(e, st)
		}
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e, st, inFor)
					}
				}
			}
		}
		return false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, st, inFor)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt, *ast.GoStmt:
		// Runs later / elsewhere: no effect on the current lock state, and
		// FuncLit bodies are skipped by checkExpr anyway.
		return false
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, inFor)
		}
		w.checkExpr(s.Cond, st, inFor)
		branches := make([]lockState, 0, 2)
		thenSt := st.clone()
		if !w.walkBlock(s.Body, thenSt, inFor) {
			branches = append(branches, thenSt)
		}
		if s.Else != nil {
			elseSt := st.clone()
			if !w.walkStmt(s.Else, elseSt, inFor) {
				branches = append(branches, elseSt)
			}
		} else {
			branches = append(branches, st.clone())
		}
		if len(branches) == 0 {
			return true
		}
		merge(st, branches)
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, inFor)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, st, inFor)
		}
		body := st.clone()
		w.walkBlock(s.Body, body, true)
		return false
	case *ast.RangeStmt:
		w.checkExpr(s.X, st, inFor)
		if len(st) > 0 && isChanType(w.pass, s.X) {
			w.pass.Reportf(s.For, "range over channel while holding %s", st.names())
		}
		body := st.clone()
		w.walkBlock(s.Body, body, true)
		return false
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, inFor)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, st, inFor)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			body := st.clone()
			for _, cs := range cc.Body {
				if w.walkStmt(cs, body, inFor) {
					break
				}
			}
		}
		return false
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			body := st.clone()
			for _, cs := range cc.Body {
				if w.walkStmt(cs, body, inFor) {
					break
				}
			}
		}
		return false
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(st) > 0 {
			w.pass.Reportf(s.Select, "select without default blocks while holding %s", st.names())
		}
		branches := make([]lockState, 0, len(s.Body.List))
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			body := st.clone()
			terminated := false
			for _, cs := range cc.Body {
				if w.walkStmt(cs, body, inFor) {
					terminated = true
					break
				}
			}
			if !terminated {
				branches = append(branches, body)
			}
		}
		if len(branches) > 0 {
			merge(st, branches)
		}
		return false
	case *ast.BlockStmt:
		return w.walkBlock(s, st, inFor)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st, inFor)
	case *ast.IncDecStmt:
		w.checkExpr(s.X, st, inFor)
		return false
	}
	return false
}

// merge rewrites st to the intersection of the branch exit states: a lock
// counts as held after the join only if every surviving path still holds it.
func merge(st lockState, branches []lockState) {
	for k := range st {
		delete(st, k)
	}
	for k, pos := range branches[0] {
		inAll := true
		for _, b := range branches[1:] {
			if _, ok := b[k]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			st[k] = pos
		}
	}
}

// checkExpr reports blocking operations inside e given the held locks.
// Function literals are not descended into.
func (w *lockWalker) checkExpr(e ast.Expr, st lockState, inFor bool) {
	if e == nil || len(st) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.pass.Reportf(n.OpPos, "channel receive while holding %s; a blocked receive parks the goroutine with the lock held", st.names())
			}
		case *ast.CallExpr:
			w.checkCall(n, st, inFor)
		}
		return true
	})
}

func (w *lockWalker) checkCall(call *ast.CallExpr, st lockState, inFor bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || w.pass.Info == nil {
		return
	}
	fn, _ := w.pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return
	}
	switch fn.FullName() {
	case "time.Sleep":
		w.pass.Reportf(call.Pos(), "time.Sleep while holding %s", st.names())
	case "(*sync.Cond).Wait":
		if !inFor {
			w.pass.Reportf(call.Pos(), "sync.Cond Wait outside the documented for-loop recheck pattern while holding %s", st.names())
		}
	case "(*sync.WaitGroup).Wait":
		w.pass.Reportf(call.Pos(), "sync.WaitGroup Wait while holding %s", st.names())
	default:
		if isNetConnIO(w.pass, sel, fn) {
			w.pass.Reportf(call.Pos(), "net.Conn %s while holding %s; network I/O can block indefinitely", fn.Name(), st.names())
		}
	}
}

// isNetConnIO reports whether sel is a Read/Write call on a net.Conn (the
// interface or any concrete conn type from package net).
func isNetConnIO(pass *Pass, sel *ast.SelectorExpr, fn *types.Func) bool {
	if fn.Name() != "Read" && fn.Name() != "Write" {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net"
}

// applyLockOps updates st for mutex Lock/Unlock calls found in e.
func (w *lockWalker) applyLockOps(e ast.Expr, st lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || w.pass.Info == nil {
			return true
		}
		fn, _ := w.pass.Info.Uses[sel.Sel].(*types.Func)
		if fn == nil {
			return true
		}
		var acquire bool
		switch fn.FullName() {
		case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
			acquire = true
		case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
			acquire = false
		default:
			return true
		}
		key := exprText(sel.X)
		if acquire {
			st[key] = call.Pos()
		} else {
			delete(st, key)
		}
		return true
	})
}

// exprText renders a lock receiver expression for state keys and messages.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.UnaryExpr:
		return exprText(e.X)
	case *ast.StarExpr:
		return exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "()"
	}
	return fmt.Sprintf("%T", e)
}

// isChanType reports whether e's static type is a channel.
func isChanType(pass *Pass, e ast.Expr) bool {
	if pass.Info == nil {
		return false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if pass.Info != nil {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
		return pass.Info.Uses[id] == nil
	}
	return true
}
