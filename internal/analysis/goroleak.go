package analysis

import (
	"go/ast"
	"go/types"
)

// NewGoroleak returns the goroleak analyzer: every `go` statement in the
// forwarding server must spawn a joinable goroutine. Concretely, the spawned
// function (literal or same-package function/method) must call Done on a
// sync.WaitGroup, and that WaitGroup's Wait must be either in the spawning
// function itself (the scoped spawn-and-join pattern) or in a function
// reachable from some Close via the in-package call graph — the shutdown
// path. A goroutine with no such join outlives Close invisibly: it races
// resource teardown and leaks under the repo's goroutine-per-connection
// design. Deliberately unjoined goroutines (e.g. per-connection handlers
// that exit when their connection closes) must carry a //lint:allow with the
// reason.
//
// The analysis is per-package and call-graph approximate: calls through
// function values or interfaces are not edges, and a Done anywhere in the
// spawned body (including under defer) counts.
func NewGoroleak() *Analyzer {
	return &Analyzer{
		Name:  "goroleak",
		Doc:   "flags go statements whose goroutine has no WaitGroup join reachable from Close",
		Scope: scopePrefixes("repro/internal/core", "repro/internal/wal"),
		Run:   runGoroleak,
	}
}

func runGoroleak(pass *Pass) error {
	if pass.Info == nil {
		return nil
	}
	g := &goroleakPass{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		calls: make(map[*ast.FuncDecl][]*ast.FuncDecl),
		waits: make(map[types.Object][]*ast.FuncDecl),
	}
	g.collect()
	g.markReachableFromClose()
	g.checkGoStmts()
	return nil
}

type goroleakPass struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	calls map[*ast.FuncDecl][]*ast.FuncDecl
	// waits maps a WaitGroup object (field or variable) to the declarations
	// containing a Wait call on it.
	waits     map[types.Object][]*ast.FuncDecl
	reachable map[*ast.FuncDecl]bool
}

// collect indexes declarations, builds the in-package call graph, and
// records every WaitGroup Wait site.
func (g *goroleakPass) collect() {
	info := g.pass.Info
	for _, file := range g.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				g.decls[fn] = fd
			}
		}
	}
	for _, fd := range g.decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calledFunc(g.pass, call)
			if callee == nil {
				return true
			}
			if target, ok := g.decls[callee]; ok {
				g.calls[fd] = append(g.calls[fd], target)
			}
			if callee.FullName() == "(*sync.WaitGroup).Wait" {
				if obj := methodRecvObject(g.pass, call); obj != nil {
					g.waits[obj] = append(g.waits[obj], fd)
				}
			}
			return true
		})
	}
}

// markReachableFromClose BFSes the call graph from every function or method
// named Close.
func (g *goroleakPass) markReachableFromClose() {
	g.reachable = make(map[*ast.FuncDecl]bool)
	var frontier []*ast.FuncDecl
	for _, fd := range g.decls {
		if fd.Name.Name == "Close" {
			g.reachable[fd] = true
			frontier = append(frontier, fd)
		}
	}
	for len(frontier) > 0 {
		fd := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, callee := range g.calls[fd] {
			if !g.reachable[callee] {
				g.reachable[callee] = true
				frontier = append(frontier, callee)
			}
		}
	}
}

// checkGoStmts verifies every go statement against the join rule.
func (g *goroleakPass) checkGoStmts() {
	for _, fd := range sortedDecls(g.decls) {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			g.checkGo(gs, fd)
			return true
		})
	}
}

// sortedDecls returns the declarations in source order so diagnostics are
// deterministic.
func sortedDecls(decls map[*types.Func]*ast.FuncDecl) []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, 0, len(decls))
	for _, fd := range decls {
		out = append(out, fd)
	}
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && out[b].Pos() < out[b-1].Pos(); b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	return out
}

func (g *goroleakPass) checkGo(gs *ast.GoStmt, enclosing *ast.FuncDecl) {
	body := g.spawnedBody(gs.Call)
	if body == nil {
		g.pass.Reportf(gs.Pos(), "go statement spawns a function with no visible body in this package; its WaitGroup join cannot be verified (//lint:allow goroleak <reason> if it is joined another way)")
		return
	}
	wgs := doneObjects(g.pass, body)
	if len(wgs) == 0 {
		g.pass.Reportf(gs.Pos(), "go statement spawns a goroutine with no WaitGroup Done; it cannot be joined from Close (add a join or //lint:allow goroleak <reason>)")
		return
	}
	// The goroutine passes if any Done'd WaitGroup has a Wait in the
	// spawning function (scoped join) or in a function reachable from Close.
	var sawWait bool
	for _, obj := range wgs {
		for _, waiter := range g.waits[obj] {
			sawWait = true
			if waiter == enclosing || g.reachable[waiter] {
				return
			}
		}
	}
	name := wgs[0].Name()
	if !sawWait {
		g.pass.Reportf(gs.Pos(), "goroutine's WaitGroup %s is never Waited; the goroutine cannot be joined", name)
		return
	}
	g.pass.Reportf(gs.Pos(), "goroutine's WaitGroup %s has a Wait, but it is not reachable from Close (shutdown cannot join this goroutine)", name)
}

// spawnedBody returns the body the go statement runs: a function literal's
// body, or the declaration body of a same-package function or method.
func (g *goroleakPass) spawnedBody(call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	default:
		if fn := calledFunc(g.pass, call); fn != nil {
			if fd, ok := g.decls[fn]; ok {
				return fd.Body
			}
		}
	}
	return nil
}

// doneObjects returns the WaitGroup objects Done'd anywhere in body.
func doneObjects(pass *Pass, body *ast.BlockStmt) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calledFunc(pass, call)
		if fn == nil || fn.FullName() != "(*sync.WaitGroup).Done" {
			return true
		}
		if obj := methodRecvObject(pass, call); obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// calledFunc resolves a call expression to the *types.Func it invokes, or
// nil for calls through function values, builtins, or conversions.
func calledFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// methodRecvObject resolves the receiver of a method call like
// s.workerWG.Wait() to the object naming the receiver value — the struct
// field or variable — so the same WaitGroup is recognized across functions.
func methodRecvObject(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return recvObject(pass, sel.X)
}

func recvObject(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if o := pass.Info.Uses[e]; o != nil {
			return o
		}
		return pass.Info.Defs[e]
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[e]; ok {
			return s.Obj()
		}
		return pass.Info.Uses[e.Sel]
	case *ast.ParenExpr:
		return recvObject(pass, e.X)
	case *ast.UnaryExpr:
		return recvObject(pass, e.X)
	case *ast.StarExpr:
		return recvObject(pass, e.X)
	}
	return nil
}
