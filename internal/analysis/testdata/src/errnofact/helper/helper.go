// Package helper exports functions whose errors carry no Errno
// classification. The AdHocError facts exported here are what lets the
// caller fixture package flag `return helper.Fetch()` across the package
// boundary — under the standalone driver through the shared in-memory
// store, under go vet through this package's .vetx file.
package helper

import (
	"errors"
	"fmt"
)

// Fetch reads a descriptor and fails with an unclassifiable error.
func Fetch() error { // want errnofact:`adhoc\(helper.go:\d+\)`
	return errors.New("helper: descriptor fetch failed") // want "errors.New on a core error path"
}

// Stat fails with an unwrapped fmt.Errorf.
func Stat(path string) error { // want errnofact:`adhoc\(helper.go:\d+\)`
	return fmt.Errorf("helper: stat %s failed", path) // want "fmt.Errorf without %w on a core error path"
}

// Probe wraps a typed root properly and carries no fact.
func Probe(err error) error {
	if err != nil {
		return fmt.Errorf("%w: probe", ErrProbe)
	}
	return nil
}

// ErrProbe is a typed root.
var ErrProbe = errors.New("helper: probe failed")
