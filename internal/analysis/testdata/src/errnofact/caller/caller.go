// Package caller returns errors built by the helper package. Returning a
// fact-carrying callee's error directly is flagged at the return site: the
// classification must be attached here, at the package boundary, before
// the error reaches the wire.
package caller

import (
	"fmt"

	"repro/internal/analysis/testdata/src/errnofact/helper"
)

// Errno mimics the wire error code type.
type Errno uint16

func (e Errno) Error() string { return "errno" }

// EIO mimics a wire code.
const EIO Errno = 1

// Relay hands helper's unclassifiable error straight to its own caller.
func Relay() error {
	return helper.Fetch() // want "returns the error from helper.Fetch, which constructs unclassifiable errors"
}

// RelayStat does the same through a multi-value-free single return.
func RelayStat(path string) error {
	return helper.Stat(path) // want "returns the error from helper.Stat, which constructs unclassifiable errors"
}

// RelayWrapped attaches the Errno before returning: fine.
func RelayWrapped() error {
	if err := helper.Fetch(); err != nil {
		return fmt.Errorf("%w: relay: %v", EIO, err)
	}
	return nil
}

// RelayProbe returns a non-fact callee's error: fine.
func RelayProbe(err error) error {
	return helper.Probe(err)
}
