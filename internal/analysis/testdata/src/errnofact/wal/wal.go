// Package wal is the errnofact fixture for the spill tier: WAL I/O
// failures surface to clients through descdb deferred errors and fsync
// replies, so every error built on those paths must wrap EIO (or a wal
// typed root) with %w — otherwise toErrno and errors.Is degrade it to an
// unclassifiable failure.
package wal

import (
	"errors"
	"fmt"
)

// Errno mimics core's wire error code type.
type Errno uint16

func (e Errno) Error() string { return "errno" }

// EIO mimics core.EIO, the classification WAL I/O errors must carry.
const EIO Errno = 5

// ErrTorn is a typed root: package-level errors.New is the declaration
// pattern, not a wire path, and is not flagged.
var ErrTorn = errors.New("wal: torn frame")

func appendFrame(err error) error {
	if err != nil {
		return fmt.Errorf("%w: wal append: %v", EIO, err) // classifiable: fine
	}
	return nil
}

func scanTail(off int64) error {
	return fmt.Errorf("%w at offset %d", ErrTorn, off) // wraps a typed root: fine
}

func badSegmentName(name string) error { // want errnofact:`adhoc\(wal.go:\d+\)`
	return errors.New("unparseable segment " + name) // want "errors.New on a core error path"
}

func crcMismatch(got, want uint32) error { // want errnofact:`adhoc\(wal.go:\d+\)`
	return fmt.Errorf("crc mismatch: got %#x want %#x", got, want) // want "fmt.Errorf without %w on a core error path"
}

func drainFailed(err error) error { // want errnofact:`adhoc\(wal.go:\d+\)`
	return fmt.Errorf("replay to backend: %v", err) // want "fmt.Errorf without %w on a core error path"
}
