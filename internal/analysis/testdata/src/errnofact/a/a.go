// Package a is the errnofact fixture: errors built inside functions must
// be Errno-typed or wrap a typed root with %w; package-level typed root
// declarations are the only legitimate errors.New calls. Functions that
// both construct ad-hoc errors and return error carry an AdHocError
// object fact (asserted with the errnofact:"..." want tokens).
package a

import (
	"errors"
	"fmt"
)

// Errno mimics the wire error code type.
type Errno uint16

func (e Errno) Error() string { return "errno" }

// EIO mimics a wire code.
const EIO Errno = 1

// ErrRoot is a typed root: package-level errors.New is the declaration
// pattern, not a wire path, and is not flagged.
var ErrRoot = errors.New("a: typed root")

func wrapped(err error) error {
	if err != nil {
		return fmt.Errorf("%w: backend failed: %v", EIO, err) // classifiable: fine
	}
	return fmt.Errorf("%w: gave up", ErrRoot) // wraps a typed root: fine
}

func naked() error { // want errnofact:`adhoc\(a.go:\d+\)`
	return errors.New("ad hoc failure") // want "errors.New on a core error path"
}

func cutChain(n int) error { // want errnofact:`adhoc\(a.go:\d+\)`
	return fmt.Errorf("oversized frame %d", n) // want "fmt.Errorf without %w on a core error path"
}

func swallowed(err error) error { // want errnofact:`adhoc\(a.go:\d+\)`
	return fmt.Errorf("backend said: %v", err) // want "fmt.Errorf without %w on a core error path"
}

func allowed(n int) error { // want errnofact:`adhoc\(a.go:\d+\)`
	//lint:allow errnofact config parse error, reported to the operator and never encoded onto the wire
	return fmt.Errorf("bad spec element %d", n)
}
