// Package a is the opexhaustive fixture: a miniature of internal/core's
// opcode plumbing with deliberate gaps in each of the three places a new
// opcode must appear (server dispatch, String, opCount).
package a

import "fmt"

// Op mimics the wire opcode type.
type Op uint8

// Opcodes. OpWrite is missing from String, OpPoll from dispatch, and
// OpReserved from both (suppressed); opCount is stale.
const (
	OpOpen Op = iota + 1
	OpClose
	OpWrite // want "OpWrite has no case in Op.String"
	//lint:allow opexhaustive reserved opcode is intentionally unimplemented until the protocol bump
	OpReserved
	OpPoll // want "OpPoll has no dispatch case in any .Server/.serverConn switch"
)

// opCount is stale: it should be int(OpPoll) + 1.
const opCount = int(OpWrite) + 1 // want "opCount = 4 but the highest Op is OpPoll = 5"

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpClose:
		return "close"
	case OpPoll:
		return "poll"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

type serverConn struct{}

func (c *serverConn) handleOp(op Op) error {
	switch op {
	case OpOpen, OpClose:
		return nil
	case OpWrite:
		return nil
	}
	return nil
}
