// Package sibb registers siba's family under a different kind. The
// standalone whole-repo store reports the conflict here (siba is analyzed
// first); under go vet neither sibling sees the other, and the report
// comes from sibroot, their first common importer.
package sibb // want metricname:`families\(iofwd_sib_flux_bytes=histogram\)`

import "repro/internal/telemetry"

// Register installs sibb's instruments.
func Register(reg *telemetry.Registry) {
	reg.Histogram("iofwd_sib_flux_bytes", "flux payload size.") // want "registered as histogram here but as gauge in .*sibconflict/siba"
}
