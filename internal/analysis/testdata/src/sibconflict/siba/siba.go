// Package siba is one of two sibling leaves of the sibconflict fixture.
// Neither sibling imports the other, so under go vet's import-closure
// fact model neither can flag that they register iofwd_sib_flux_bytes
// under different instrument kinds.
package siba // want metricname:`families\(iofwd_sib_flux_bytes=gauge\)`

import "repro/internal/telemetry"

// Register installs siba's instruments.
func Register(reg *telemetry.Registry) {
	reg.Gauge("iofwd_sib_flux_bytes", "in-flight bytes.")
}
