// Package sibroot imports both siblings without registering anything
// itself: the pairwise dependency check must surface the siblings' kind
// conflict here — the first package whose fact view holds both sides —
// under the standalone driver and go vet alike.
package sibroot // want `metric "iofwd_sib_flux_bytes" registered as gauge in .*sibconflict/siba \(siba.go:11\) but as histogram in .*sibconflict/sibb \(sibb.go:11\)`

import (
	"repro/internal/analysis/testdata/src/sibconflict/siba"
	"repro/internal/analysis/testdata/src/sibconflict/sibb"

	"repro/internal/telemetry"
)

// Register installs the whole tree.
func Register(reg *telemetry.Registry) {
	siba.Register(reg)
	sibb.Register(reg)
}
