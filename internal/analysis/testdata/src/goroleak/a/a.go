// Package a is the goroleak fixture: every go statement must spawn a
// goroutine whose WaitGroup join (Done in the body, Wait on the same
// WaitGroup) is in the spawning function or reachable from a Close; unjoined
// spawns are flagged unless a //lint:allow documents why.
package a

import "sync"

// S is the well-behaved shape: worker goroutines joined by Close.
type S struct {
	wg     sync.WaitGroup
	lostWG sync.WaitGroup
}

func (s *S) Start() {
	for i := 0; i < 4; i++ {
		s.wg.Add(1)
		go s.worker() // ok: Done in worker, Wait reachable from Close
	}
}

func (s *S) worker() {
	defer s.wg.Done()
}

func (s *S) Close() {
	s.wg.Wait()
}

func (s *S) spawnNoJoin() {
	go func() {}() // want "no WaitGroup Done"
}

func (s *S) spawnNeverWaited() {
	s.lostWG.Add(1)
	go func() { defer s.lostWG.Done() }() // want "never Waited"
}

func (s *S) spawnForeign() {
	go external() // want "no visible body"
}

// external is a function value, so the spawned body is invisible to the
// in-package analysis.
var external func()

func (s *S) allowedHandler() {
	//lint:allow goroleak per-connection handler exits when its conn closes
	go func() {}()
}

// T has a join, but nothing named Close ever reaches it.
type T struct {
	wg sync.WaitGroup
}

func (t *T) spawnWaitNotFromClose() {
	t.wg.Add(1)
	go func() { defer t.wg.Done() }() // want "not reachable from Close"
}

func (t *T) join() { t.wg.Wait() }

// scopedJoin is the spawn-and-join-in-place pattern: fine without Close.
func scopedJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }() // ok: Wait in the spawning function
	wg.Wait()
}

// U joins through a helper on the Close path: reachability must follow the
// in-package call graph, not just Close's own body.
type U struct{ wg sync.WaitGroup }

func (u *U) Start() {
	u.wg.Add(1)
	go u.run() // ok: Wait reachable from Close via shutdown
}

func (u *U) run() { defer u.wg.Done() }

func (u *U) Close() { u.shutdown() }

func (u *U) shutdown() { u.wg.Wait() }
