// Package a seeds the driver-parity fixture: one metric family and one
// fact-carrying function. No want comments here — this fixture is checked
// by diffing the standalone driver's findings against go vet's, which
// must be identical (see cmd/iofwdlint's parity test and the CI lint job).
package a

import (
	"errors"

	"repro/internal/telemetry"
)

// Register installs a's instruments: iofwd_parity_ops_ns is a histogram
// here, and package b re-registers it as a gauge.
func Register(reg *telemetry.Registry) {
	reg.Histogram("iofwd_parity_ops_ns", "per-op latency.")
}

// Fetch fails with an unclassifiable error, exporting an AdHocError fact
// that package b's return site must trip over.
func Fetch() error {
	return errors.New("a: descriptor fetch failed")
}
