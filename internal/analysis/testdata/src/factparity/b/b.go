// Package b trips both cross-package checks against package a: a metric
// kind conflict (metricname, via a's MetricFamilies package fact) and an
// unwrapped cross-package error return (errnofact, via Fetch's AdHocError
// object fact). The standalone driver and go vet -vettool must report the
// identical findings here; the parity test diffs them line by line.
package b

import (
	"repro/internal/analysis/testdata/src/factparity/a"
	"repro/internal/telemetry"
)

// Register re-registers a's histogram family as a gauge: cross-package
// kind conflict.
func Register(reg *telemetry.Registry) {
	a.Register(reg)
	reg.Gauge("iofwd_parity_ops_ns", "conflicts with a's histogram.")
}

// Relay returns a's unclassifiable error without attaching an Errno.
func Relay() error {
	return a.Fetch()
}
