// Package a is the tracefmt fixture: telemetry label keys and trace/log
// format strings keep snake_case key=value discipline, stage names come
// from the closed recv/queue/backend/reply/spill set, and Errno values
// are never formatted by fmt.Errorf with a verb other than %w.
package a

import (
	"fmt"
	"log"

	"repro/internal/telemetry"
)

// Errno mimics the wire error code type.
type Errno uint16

func (e Errno) Error() string { return "errno" }

// EIO mimics a wire code.
const EIO Errno = 1

func labels() {
	_ = telemetry.L("stage", "backend")    // fine
	_ = telemetry.L("torn_tails", "3")     // fine
	_ = telemetry.L("stage", "midpath")    // want "not a forwarding-path stage"
	_ = telemetry.L("tornTails", "3")      // want `label key "tornTails" is not lowercase snake_case`
	_ = telemetry.L("Stage", "recv")       // want `label key "Stage" is not lowercase snake_case`
	_ = telemetry.L("stage", someStage())  // non-literal value: not checked
	_ = telemetry.L(someKey(), "whatever") // non-literal key: not checked
}

func someStage() string { return "recv" }
func someKey() string   { return "stage" }

func formats(n int, err error) {
	log.Printf("drain done frames=%d stage=spill", n)      // fine
	log.Printf("drain done stage=flush frames=%d", n)      // want `stage token "stage=flush" is not a forwarding-path stage`
	log.Printf("drain done tornTails=%d", n)               // want `format key "tornTails" is not lowercase snake_case`
	fmt.Printf("progress pct=%.1f ok", 1.0)                // fine: %.1f then "f ok" not keys; pct is snake
	log.Printf("window grew to %d MiB=ignored", n)         // want `format key "MiB" is not lowercase snake_case`
	_ = fmt.Sprintf("queue_depth=%d", n)                   // fine
	fmt.Fprintf(nil, "reply sent bytes=%d stage=reply", n) // fine
	_ = fmt.Sprintf("NBin=%d bins", n)                     // want `format key "NBin" is not lowercase snake_case`
	log.Printf("addr=%s x_y=%v a1=%d", "a", err, n)        // fine: all snake_case
}

func errnoVerbs(err error) error {
	if err != nil {
		return fmt.Errorf("%w: backend failed: %v", EIO, err) // fine: Errno under %w
	}
	return fmt.Errorf("reply failed: %v", EIO) // want `Errno formatted with %v`
}

func errnoVerbS() error {
	return fmt.Errorf("op rejected (%s)", EIO) // want `Errno formatted with %s`
}

func errnoVerbD(code Errno) error {
	return fmt.Errorf("code %d on wire", code) // want `Errno formatted with %d`
}

func errnoOutsideErrorf(code Errno) {
	// Only fmt.Errorf builds wrap chains; rendering an Errno in a log line
	// with %v is fine.
	log.Printf("saw code %v", code)
}

func suppressed(n int) {
	//lint:allow tracefmt paper notation NBin is the figure axis label, not a trace key
	_ = fmt.Sprintf("NBin=%d (paper: 1024)", n)
}
