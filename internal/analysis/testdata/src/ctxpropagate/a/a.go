// Package a is the ctxpropagate fixture: blocking exported entry points
// must take a context.Context, and ctx-taking functions must not sever the
// caller's cancellation chain with a fresh Background/TODO context.
package a

import (
	"context"
	"sync"
	"time"
)

// Pool mimics an exported core type with blocking entry points.
type Pool struct {
	ch   chan int
	wg   sync.WaitGroup
	cond *sync.Cond
}

// Get blocks on a receive with no ctx: flagged.
func (p *Pool) Get() int {
	return <-p.ch // want "exported Get blocks on a channel receive but takes no context.Context"
}

// Put blocks on a send with no ctx: flagged.
func (p *Pool) Put(v int) {
	p.ch <- v // want "exported Put blocks on a channel send but takes no context.Context"
}

// Drain ranges over a channel with no ctx: flagged.
func (p *Pool) Drain() {
	for range p.ch { // want "exported Drain blocks on a range over a channel but takes no context.Context"
	}
}

// Join waits on a WaitGroup with no ctx: flagged.
func (p *Pool) Join() {
	p.wg.Wait() // want "exported Join blocks on sync.WaitGroup.Wait but takes no context.Context"
}

// Settle sleeps and selects with no ctx: both sites flagged.
func (p *Pool) Settle(stop chan struct{}) {
	time.Sleep(time.Millisecond) // want "exported Settle blocks on time.Sleep but takes no context.Context"
	select {                     // want "exported Settle blocks on a select without default but takes no context.Context"
	case <-p.ch:
	case <-stop:
	}
}

// GetCtx is the compliant shape: same wait, caller-cancelable.
func (p *Pool) GetCtx(ctx context.Context) (int, error) {
	select {
	case v := <-p.ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// GetDefault delegates with Background and has no ctx parameter: the
// severed chain is visible in the signature, so the wrapper is clean.
func (p *Pool) GetDefault() (int, error) {
	return p.GetCtx(context.Background())
}

// Close is exempt by name: shutdown runs unconditionally.
func (p *Pool) Close() error {
	p.wg.Wait()
	return nil
}

// TrySteal's select has a default, so it never blocks: clean.
func (p *Pool) TrySteal() (int, bool) {
	select {
	case v := <-p.ch:
		return v, true
	default:
		return 0, false
	}
}

// Spawn only blocks inside a function literal run by another goroutine:
// the entry point itself is clean.
func (p *Pool) Spawn() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		<-p.ch
	}()
}

// get is unexported: internal plumbing may block.
func (p *Pool) get() int {
	return <-p.ch
}

// pool is an unexported type: its exported-looking methods are not public
// surface.
type pool struct{ ch chan int }

// Get on an unexported receiver: clean.
func (p *pool) Get() int {
	return <-p.ch
}

// Forward receives a ctx and drops it on the floor: flagged.
func (p *Pool) Forward(ctx context.Context) (int, error) {
	return p.GetCtx(context.Background()) // want "Forward receives a context.Context but synthesizes Background here"
}

// Probe blocks deliberately without a ctx and says why: suppressed.
func (p *Pool) Probe() int {
	//lint:allow ctxpropagate fixture: bounded by the pool's own shutdown, not caller contexts
	return <-p.ch
}
