// Package a is the lockhold fixture: blocking operations under a held
// sync.Mutex/RWMutex must be flagged; the unlock-before-block and
// Cond-Wait-in-for patterns must not.
package a

import (
	"net"
	"sync"
	"time"
)

type T struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	wg   sync.WaitGroup
	ch   chan int
	conn net.Conn
}

func (t *T) sendUnderLock() {
	t.mu.Lock()
	t.ch <- 1 // want "channel send while holding t.mu"
	t.mu.Unlock()
}

func (t *T) recvUnderDeferredUnlock() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return <-t.ch // want "channel receive while holding t.mu"
}

func (t *T) sleepUnderRLock() {
	t.rw.RLock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding t.rw"
	t.rw.RUnlock()
}

func (t *T) selectNoDefault() {
	t.mu.Lock()
	defer t.mu.Unlock()
	select { // want "select without default blocks while holding t.mu"
	case <-t.ch:
	}
}

func (t *T) selectWithDefault() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case v := <-t.ch:
		return v
	default:
	}
	return 0
}

func (t *T) netIOUnderLock(buf []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, _ = t.conn.Write(buf) // want "net.Conn Write while holding t.mu"
}

func (t *T) condWaitDocumented(ready func() bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for !ready() {
		t.cond.Wait() // documented pattern: for-loop recheck, lock held
	}
}

func (t *T) condWaitBare() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cond.Wait() // want "sync.Cond Wait outside the documented for-loop recheck pattern"
}

func (t *T) waitGroupUnderLock() {
	t.mu.Lock()
	t.wg.Wait() // want "sync.WaitGroup Wait while holding t.mu"
	t.mu.Unlock()
}

func (t *T) unlockBeforeBlocking() {
	t.mu.Lock()
	ch := t.ch
	t.mu.Unlock()
	<-ch // fine: the lock was released first (the BML admission pattern)
}

func (t *T) guardReturnKeepsHeld() {
	t.mu.Lock()
	if t.ch == nil {
		t.mu.Unlock()
		return
	}
	t.ch <- 1 // want "channel send while holding t.mu"
	t.mu.Unlock()
}

func (t *T) deliverLocked() {
	// The *Locked naming convention means the caller holds the lock.
	t.ch <- 1 // want "channel send while holding caller's lock"
}

func (t *T) allowedSend() {
	t.mu.Lock()
	//lint:allow lockhold fixture channel is buffered, send cannot block
	t.ch <- 1
	t.mu.Unlock()
}

func (t *T) goroutineEscapes() {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() { t.ch <- 1 }() // fine: runs on another goroutine
}
