// Package root closes the fact diamond: it imports both leaves, and
// re-registers each leaf's family under a different instrument kind. Both
// conflicts must be reported here — which requires the leaves' facts to
// have been produced before root is analyzed (topological order) and
// merged into one visible store (deps-first accumulation standalone,
// .vetx union under go vet).
package root // want metricname:`families\(iofwd_diamond_left_ns=gauge iofwd_diamond_right_bytes=gauge\)`

import (
	"repro/internal/analysis/testdata/src/factdiamond/leafa"
	"repro/internal/analysis/testdata/src/factdiamond/leafb"
	"repro/internal/telemetry"
)

// Register installs every instrument in the diamond.
func Register(reg *telemetry.Registry) {
	leafa.Register(reg)
	leafb.Register(reg)
	reg.Gauge("iofwd_diamond_left_ns", "conflict with leafa.")     // want "registered as gauge here but as histogram in .*factdiamond/leafa"
	reg.Gauge("iofwd_diamond_right_bytes", "conflict with leafb.") // want "registered as gauge here but as histogram in .*factdiamond/leafb"
}
