// Package leafa is the left leaf of the fact-diamond fixture: it
// registers one histogram family whose MetricFamilies fact must reach the
// root package through the import DAG.
package leafa // want metricname:`families\(iofwd_diamond_left_ns=histogram\)`

import "repro/internal/telemetry"

// Register installs leafa's instruments.
func Register(reg *telemetry.Registry) {
	reg.Histogram("iofwd_diamond_left_ns", "left leaf latency.")
}
