// Package leafb is the right leaf of the fact-diamond fixture: it
// registers one histogram family whose MetricFamilies fact must reach the
// root package through the import DAG.
package leafb // want metricname:`families\(iofwd_diamond_right_bytes=histogram\)`

import "repro/internal/telemetry"

// Register installs leafb's instruments.
func Register(reg *telemetry.Registry) {
	reg.Histogram("iofwd_diamond_right_bytes", "right leaf payload.")
}
