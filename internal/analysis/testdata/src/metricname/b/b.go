// Package b proves metricname's cross-package kind-conflict detection:
// package a registered iofwd_cross_ops as a histogram.
package b // want metricname:`families\(iofwd_cross_ops=gauge\)`

import "repro/internal/telemetry"

func register(reg *telemetry.Registry) {
	reg.Gauge("iofwd_cross_ops", "conflict.") // want "registered as gauge here but as histogram in .*metricname/a"
}
