// Package a is the metricname fixture: names registered on a
// telemetry.Registry must be iofwd_-prefixed snake_case with
// kind-appropriate suffixes.
package a // want metricname:`families\(.*iofwd_cross_ops=histogram.*\)`

import "repro/internal/telemetry"

func register(reg *telemetry.Registry) {
	reg.Counter("iofwd_good_total", "ok.")
	reg.Histogram("iofwd_latency_ns", "ok.")
	reg.Histogram("iofwd_payload_bytes", "ok.")
	reg.Gauge("iofwd_queue_depth", "ok.")
	reg.GaugeFunc("iofwd_pool_bytes", "ok.", func() int64 { return 0 })
	reg.MaxGauge("iofwd_peak_bytes", "ok.")
	reg.MustRegister("iofwd_wait_ns", "ok: histogram inferred from arg type.", &telemetry.Histogram{})
	reg.Gauge("iofwd_member_state", "ok: enumeration gauge.")

	reg.Counter("requests_total", "bad.")                                                          // want "not iofwd_-prefixed snake_case"
	reg.Counter("iofwd_requests", "bad.")                                                          // want "must end in _total"
	reg.Histogram("iofwd_batch_size", "bad.")                                                      // want "must end in a unit suffix"
	reg.Gauge("iofwd_depth_total", "bad.")                                                         // want "must not end in _total"
	reg.Counter("iofwd_link_state_total", "bad.")                                                  // want "_state is the enumeration-gauge suffix"
	reg.Histogram("iofwd_link_state", "bad.")                                                      // want "_state is the enumeration-gauge suffix"
	reg.Counter("iofwd_MixedCase_total", "bad")                                                    // want "not iofwd_-prefixed snake_case"
	reg.MustRegister("iofwd_allocs", "bad: counter inferred from arg type.", &telemetry.Counter{}) // want "must end in _total"

	reg.Histogram("iofwd_cross_ops", "first registration: histogram.")

	//lint:allow metricname grandfathered exporter name kept for dashboard compatibility
	reg.Counter("legacy_requests_total", "suppressed.")
}
