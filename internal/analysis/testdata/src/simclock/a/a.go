// Package a is the simclock fixture: wall-clock reads and global math/rand
// use must be flagged; explicitly seeded sources and duration arithmetic
// must not.
package a

import (
	"math/rand"
	"time"
)

func bad() {
	_ = time.Now()                     // want "time.Now reads the wall clock"
	time.Sleep(time.Second)            // want "time.Sleep blocks on the wall clock"
	<-time.After(time.Second)          // want "time.After waits on the wall clock"
	_ = time.Tick(time.Second)         // want "time.Tick ticks on the wall clock"
	_ = time.NewTimer(time.Second)     // want "time.NewTimer schedules on the wall clock"
	_ = time.Since(time.Time{})        // want "time.Since reads the wall clock"
	_ = rand.Intn(10)                  // want "rand.Intn uses the global math/rand state"
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle uses the global math/rand state"
	_ = rand.Float64()                 // want "rand.Float64 uses the global math/rand state"
}

func good(seed int64) {
	r := rand.New(rand.NewSource(seed)) // seeded constructor: the blessed pattern
	_ = r.Intn(10)                      // method on a seeded *rand.Rand, not the global state
	d := 5 * time.Second                // duration arithmetic never reads the clock
	var t0 time.Time                    // time.Time values are data, not clock reads
	_ = t0.Add(d)
}

func allowed() {
	//lint:allow simclock fixture demonstrates documented suppression
	time.Sleep(time.Millisecond)
}

func allowedTrailing() {
	time.Sleep(time.Millisecond) //lint:allow simclock trailing-form suppression also works
}
