package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AdHocError is an object fact on an exported package-level function (or
// method): somewhere in its body it constructs an error that carries no
// Errno classification — errors.New, or fmt.Errorf without %w — and the
// function returns an error, so that unclassifiable value can escape to
// callers. Packages on the wire path (internal/core, internal/wal) must
// not return such a callee's error unwrapped.
type AdHocError struct {
	At string // "file.go:line" of the first ad-hoc construction
}

// AFact marks AdHocError as a fact.
func (*AdHocError) AFact() {}

func (f *AdHocError) String() string { return "adhoc(" + f.At + ")" }

// NewErrnofact returns the errnofact analyzer (the fact-aware successor of
// errnowrap): errors constructed inside functions of internal/core cross
// the wire-protocol boundary (handler returns become reply errnos via
// toErrno; client failures must satisfy errors.Is against the typed roots),
// so they must carry their classification in the wrap chain. Concretely:
//
//   - fmt.Errorf must use %w to wrap an Errno or one of the typed roots
//     (ErrConnectionLost, ErrClientClosed, ErrOpTimeout); without %w the
//     chain is cut and toErrno / errors.Is silently degrade to EIO.
//   - errors.New inside a function creates an unclassifiable error; the
//     only legitimate errors.New calls are the package-level typed root
//     declarations, which live outside function bodies and are not flagged.
//   - returning another package's function-call result directly as an
//     error is flagged when that function carries an AdHocError fact: the
//     helper builds unclassifiable errors, so the caller must wrap the
//     result with %w and an Errno before putting it on the wire. The facts
//     are produced for every module package (that is what FactTypes opts
//     into) and flow through .vetx files under go vet, so the check holds
//     across package boundaries under both drivers.
//
// internal/wal is in scope for the same reason as core: its I/O failures
// surface through descdb deferred errors and fsync replies, so a WAL error
// that does not wrap core.EIO (or one of the wal typed roots) would reach
// the client as an unclassifiable failure. Fixture packages under
// internal/analysis/testdata are in scope so the standalone and vet
// drivers can be diffed for parity on seeded violations without the
// fixture-only IgnoreScope escape hatch.
func NewErrnofact() *Analyzer {
	return &Analyzer{
		Name: "errnofact",
		Doc:  "errors on internal/core's and internal/wal's wire paths must be Errno-typed or wrap a typed root with %w, including errors returned from other packages (AdHocError facts)",
		Scope: func(path string) bool {
			return path == "repro/internal/core" || path == "repro/internal/wal" ||
				strings.Contains(path, "internal/analysis/testdata/")
		},
		FactTypes: []Fact{&AdHocError{}},
		Run:       runErrnofact,
	}
}

func runErrnofact(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			adHocAt := checkConstructionSites(pass, fd)
			if adHocAt != "" && returnsError(pass, fd) {
				if obj, ok := pass.Info.Defs[fd.Name]; ok {
					pass.ExportObjectFact(obj, &AdHocError{At: adHocAt})
				}
			}
			checkCrossPackageReturns(pass, fd)
		}
	}
	return nil
}

// checkConstructionSites reports ad-hoc error constructions (errors.New,
// fmt.Errorf without %w) inside fd and returns the short position of the
// first one found ("" if none) for the exported fact.
func checkConstructionSites(pass *Pass, fd *ast.FuncDecl) string {
	first := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := pkgLevelFunc(pass, sel)
		if fn == nil {
			return true
		}
		switch fn.FullName() {
		case "errors.New":
			pass.Reportf(call.Pos(),
				"errors.New on a core error path; return an Errno or wrap a typed root (ErrConnectionLost/ErrClientClosed/ErrOpTimeout) with %%w so errors.Is classification works")
			if first == "" {
				first = shortPos(pass.Fset, call.Pos())
			}
		case "fmt.Errorf":
			if len(call.Args) == 0 {
				return true
			}
			format, ok := stringLiteral(call.Args[0])
			if ok && !strings.Contains(format, "%w") {
				pass.Reportf(call.Pos(),
					"fmt.Errorf without %%w on a core error path; wrap an Errno or typed root so toErrno and errors.Is keep classifying it")
				if first == "" {
					first = shortPos(pass.Fset, call.Pos())
				}
			}
		}
		return true
	})
	return first
}

// returnsError reports whether fd's result list includes the error type.
func returnsError(pass *Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// checkCrossPackageReturns flags `return otherpkg.F(...)` (and any return
// operand that is directly a call into another package yielding an error)
// when the callee carries an AdHocError fact: the helper's error is
// unclassifiable and must be wrapped with %w and an Errno here, at the
// package boundary, before it reaches the wire.
func checkCrossPackageReturns(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := res.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := calledFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == pass.Pkg.Path() {
				continue
			}
			if !callYieldsError(pass, call) {
				continue
			}
			var fact AdHocError
			if pass.ImportObjectFact(fn, &fact) {
				pass.Reportf(call.Pos(),
					"returns the error from %s.%s, which constructs unclassifiable errors (%s); wrap it with %%w and an Errno so errors.Is classification survives the package boundary",
					fn.Pkg().Name(), fn.Name(), fact.At)
			}
		}
		return true
	})
}

// callYieldsError reports whether the call expression's type includes an
// error value (single error result or a tuple containing one).
func callYieldsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}
