package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSimclockFixture(t *testing.T) {
	analysistest.Run(t, analysis.NewSimclock, "simclock")
}

func TestLockholdFixture(t *testing.T) {
	analysistest.Run(t, analysis.NewLockhold, "lockhold")
}

func TestMetricnameFixture(t *testing.T) {
	analysistest.Run(t, analysis.NewMetricname, "metricname")
}

func TestErrnofactFixture(t *testing.T) {
	analysistest.Run(t, analysis.NewErrnofact, "errnofact")
}

func TestTracefmtFixture(t *testing.T) {
	analysistest.Run(t, analysis.NewTracefmt, "tracefmt")
}

// TestFactDiamondFixture proves topological fact propagation: both leaves'
// MetricFamilies facts must be visible when the root of the import diamond
// is analyzed, so both of root's kind conflicts are reported.
func TestFactDiamondFixture(t *testing.T) {
	analysistest.Run(t, analysis.NewMetricname, "factdiamond")
}

// TestSibConflictFixture proves the pairwise dependency check: two sibling
// packages registering one family under different kinds are flagged from
// their common importer, the only vantage point whose fact view holds both
// sides under go vet's import-closure model.
func TestSibConflictFixture(t *testing.T) {
	analysistest.Run(t, analysis.NewMetricname, "sibconflict")
}

func TestOpexhaustiveFixture(t *testing.T) {
	analysistest.Run(t, analysis.NewOpexhaustive, "opexhaustive")
}

func TestGoroleakFixture(t *testing.T) {
	analysistest.Run(t, analysis.NewGoroleak, "goroleak")
}

func TestCtxpropagateFixture(t *testing.T) {
	analysistest.Run(t, analysis.NewCtxpropagate, "ctxpropagate")
}

// TestSuiteCleanOnRepo is the revert guard: the committed tree must be
// free of findings. Reintroducing global math/rand in internal/sim, a
// blocking op under a core lock, a malformed metric name, an unwrapped
// core error (including one returned from another package, via AdHocError
// facts), an off-vocabulary trace key or stage name, or an opcode gap
// turns this test red — the same signal CI's
// lint job gives, but available to a plain `go test ./...`.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo type-check is slow; run without -short")
	}
	findings := analysistest.Findings(t, "./...")
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestScopes pins each analyzer's package scope so a refactor cannot
// silently stop analyzing a deterministic package.
func TestScopes(t *testing.T) {
	byName := map[string]func(string) bool{}
	for _, a := range analysis.Analyzers() {
		byName[a.Name] = a.Scope
	}

	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"simclock", "repro/internal/sim", true},
		{"simclock", "repro/internal/simnet", true},
		{"simclock", "repro/internal/simcpu", true},
		{"simclock", "repro/internal/iofwd/staging", true},
		{"simclock", "repro/internal/experiments", true},
		{"simclock", "repro/internal/bgp", true},
		{"simclock", "repro/internal/core/fault", true},
		{"simclock", "repro/internal/wal", true},        // fsync pacing and crash points are op-driven
		{"simclock", "repro/internal/core", false},      // the real server uses wall time
		{"simclock", "repro/internal/simcputil", false}, // prefix match must not leak

		{"lockhold", "repro/internal/core", true},
		{"lockhold", "repro/internal/core/fault", true},
		{"lockhold", "repro/internal/telemetry", true},
		{"lockhold", "repro/internal/sim", false},

		{"errnofact", "repro/internal/core", true},
		{"errnofact", "repro/internal/wal", true},                                // WAL I/O errors surface as deferred wire errors
		{"errnofact", "repro/internal/core/fault", false},                        // spec-parse errors are operator-facing
		{"errnofact", "repro/internal/analysis/testdata/src/factparity/a", true}, // parity fixtures stay in scope under both drivers

		{"opexhaustive", "repro/internal/core", true},
		{"opexhaustive", "repro/internal/telemetry", false},

		{"goroleak", "repro/internal/core", true},
		{"goroleak", "repro/internal/core/fault", true},
		{"goroleak", "repro/internal/wal", true}, // the drainer must be WaitGroup-joined by Close
		{"goroleak", "repro/internal/telemetry", false},
		{"goroleak", "repro/internal/sim", false}, // sim procs are engine-joined, not WaitGroup-joined

		{"ctxpropagate", "repro/internal/core", true},        // the public client surface is ctx-aware
		{"ctxpropagate", "repro/internal/core/fault", false}, // chaos backends follow core.Backend, not the client API
		{"ctxpropagate", "repro/internal/sim", false},        // sim blocking is engine-scheduled
	}
	for _, c := range cases {
		scope := byName[c.analyzer]
		if scope == nil {
			if c.analyzer == "metricname" || c.analyzer == "tracefmt" {
				continue // nil scope = repo-wide
			}
			t.Fatalf("analyzer %s missing or has nil scope", c.analyzer)
		}
		if got := scope(c.pkg); got != c.want {
			t.Errorf("%s scope(%s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
	if byName["metricname"] != nil {
		t.Error("metricname should be repo-wide (nil scope)")
	}
	if byName["tracefmt"] != nil {
		t.Error("tracefmt should be repo-wide (nil scope)")
	}
}

// TestAnalyzerDocs keeps the -list output useful.
func TestAnalyzerDocs(t *testing.T) {
	names := map[string]bool{}
	for _, a := range analysis.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		names[a.Name] = true
		if strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q contains whitespace (breaks //lint:allow parsing)", a.Name)
		}
	}
	for _, want := range []string{"simclock", "lockhold", "metricname", "errnofact", "opexhaustive", "goroleak", "ctxpropagate", "tracefmt"} {
		if !names[want] {
			t.Errorf("suite missing analyzer %s", want)
		}
	}
}
