package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"repro/internal/telemetry"
)

// registryPkg is the package whose Registry methods the analyzer watches.
const registryPkg = "repro/internal/telemetry"

// kindUnknown makes telemetry.ValidateName check only the generic shape
// (iofwd_ prefix, snake_case) when the instrument kind cannot be resolved.
const kindUnknown = telemetry.Kind(-1)

// registryMethodKinds maps telemetry.Registry constructor methods to the
// kind of instrument they register. Register/MustRegister are resolved from
// the static type of their metric argument instead.
var registryMethodKinds = map[string]telemetry.Kind{
	"Counter":   telemetry.KindCounter,
	"Gauge":     telemetry.KindGauge,
	"GaugeFunc": telemetry.KindGauge,
	"MaxGauge":  telemetry.KindGauge,
	"Histogram": telemetry.KindHistogram,
}

// NewMetricname returns the metricname analyzer: every metric name literal
// registered on a telemetry.Registry must follow the convention enforced by
// telemetry.ValidateName (iofwd_ prefix, snake_case, _total on counters, a
// unit suffix on histograms), and a name must keep one instrument kind
// across the whole repository — the Prometheus exposition format cannot
// represent a name that is a counter in one package and a gauge in another.
func NewMetricname() *Analyzer {
	// seen accumulates across packages within one driver run so
	// kind conflicts are caught repo-wide.
	type regSite struct {
		kind telemetry.Kind
		pos  token.Pos
	}
	seen := make(map[string]regSite)

	return &Analyzer{
		Name: "metricname",
		Doc:  "metric names registered on telemetry.Registry must be iofwd_-prefixed snake_case with kind-appropriate suffixes, and keep one kind repo-wide",
		Run: func(pass *Pass) error {
			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					method, ok := registryMethod(pass, call)
					if !ok || len(call.Args) == 0 {
						return true
					}
					name, ok := stringLiteral(call.Args[0])
					if !ok {
						return true
					}
					kind := kindUnknown
					if k, ok := registryMethodKinds[method]; ok {
						kind = k
					} else if len(call.Args) >= 3 { // Register/MustRegister(name, help, metric, ...)
						kind = metricArgKind(pass, call.Args[2])
					}
					if err := telemetry.ValidateName(name, kind); err != nil {
						pass.Reportf(call.Args[0].Pos(), "%v", err)
					}
					if kind != kindUnknown {
						if prev, ok := seen[name]; ok && prev.kind != kind {
							pass.Reportf(call.Args[0].Pos(),
								"metric %q registered as %s here but as %s elsewhere; one name must keep one instrument kind",
								name, kind, prev.kind)
						} else if !ok {
							seen[name] = regSite{kind: kind, pos: call.Args[0].Pos()}
						}
					}
					return true
				})
			}
			return nil
		},
	}
}

// registryMethod returns the method name if call is a method call on
// *telemetry.Registry.
func registryMethod(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || pass.Info == nil {
		return "", false
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Pkg().Path() != registryPkg {
		return "", false
	}
	return fn.Name(), true
}

// metricArgKind infers the instrument kind from the static type of a
// Register/MustRegister metric argument.
func metricArgKind(pass *Pass, arg ast.Expr) telemetry.Kind {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return kindUnknown
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != registryPkg {
		return kindUnknown
	}
	switch named.Obj().Name() {
	case "Counter":
		return telemetry.KindCounter
	case "Gauge", "GaugeFunc", "MaxGauge":
		return telemetry.KindGauge
	case "Histogram":
		return telemetry.KindHistogram
	}
	return kindUnknown
}

// stringLiteral evaluates e if it is a string literal or a concatenation
// of string literals.
func stringLiteral(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(e.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return "", false
		}
		l, ok1 := stringLiteral(e.X)
		r, ok2 := stringLiteral(e.Y)
		return l + r, ok1 && ok2
	case *ast.ParenExpr:
		return stringLiteral(e.X)
	}
	return "", false
}
