package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// registryPkg is the package whose Registry methods the analyzer watches.
const registryPkg = "repro/internal/telemetry"

// kindUnknown makes telemetry.ValidateName check only the generic shape
// (iofwd_ prefix, snake_case) when the instrument kind cannot be resolved.
const kindUnknown = telemetry.Kind(-1)

// registryMethodKinds maps telemetry.Registry constructor methods to the
// kind of instrument they register. Register/MustRegister are resolved from
// the static type of their metric argument instead.
var registryMethodKinds = map[string]telemetry.Kind{
	"Counter":   telemetry.KindCounter,
	"Gauge":     telemetry.KindGauge,
	"GaugeFunc": telemetry.KindGauge,
	"MaxGauge":  telemetry.KindGauge,
	"Histogram": telemetry.KindHistogram,
}

// MetricFamilies is a package fact: every metric family the package
// registers on a telemetry.Registry, name -> kind. Importing packages (and,
// under the standalone driver, every later-analyzed package) compare their
// own registrations against it, which is how the one-kind-per-name rule
// crosses package boundaries under both drivers.
type MetricFamilies struct {
	Families map[string]MetricFamily
}

// MetricFamily is one registered family: its instrument kind and the
// "file:line" of its first registration site, for cross-package reports.
type MetricFamily struct {
	Kind telemetry.Kind
	At   string
}

// AFact marks MetricFamilies as a fact.
func (*MetricFamilies) AFact() {}

func (f *MetricFamilies) String() string {
	names := make([]string, 0, len(f.Families))
	for n := range f.Families {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("families(")
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", n, f.Families[n].Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// NewMetricname returns the metricname analyzer: every metric name literal
// registered on a telemetry.Registry must follow the convention enforced by
// telemetry.ValidateName (iofwd_ prefix, snake_case, _total on counters, a
// unit suffix on histograms), and a name must keep one instrument kind
// across the whole repository — the Prometheus exposition format cannot
// represent a name that is a counter in one package and a gauge in another.
// Registered families are exported as a MetricFamilies package fact, so the
// cross-package check holds under go vet's per-package model, not just the
// whole-repo standalone run.
func NewMetricname() *Analyzer {
	return &Analyzer{
		Name:      "metricname",
		Doc:       "metric names registered on telemetry.Registry must be iofwd_-prefixed snake_case with kind-appropriate suffixes, and keep one kind repo-wide (exchanged as MetricFamilies facts)",
		FactTypes: []Fact{&MetricFamilies{}},
		Run:       runMetricname,
	}
}

func runMetricname(pass *Pass) error {
	type regSite struct {
		kind telemetry.Kind
		pos  token.Pos
	}
	local := make(map[string]regSite)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := registryMethod(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, ok := stringLiteral(call.Args[0])
			if !ok {
				return true
			}
			kind := kindUnknown
			if k, ok := registryMethodKinds[method]; ok {
				kind = k
			} else if len(call.Args) >= 3 { // Register/MustRegister(name, help, metric, ...)
				kind = metricArgKind(pass, call.Args[2])
			}
			if err := telemetry.ValidateName(name, kind); err != nil {
				pass.Reportf(call.Args[0].Pos(), "%v", err)
			}
			if kind != kindUnknown {
				if prev, ok := local[name]; ok && prev.kind != kind {
					pass.Reportf(call.Args[0].Pos(),
						"metric %q registered as %s here but as %s at %s; one name must keep one instrument kind",
						name, kind, prev.kind, shortPos(pass.Fset, prev.pos))
				} else if !ok {
					local[name] = regSite{kind: kind, pos: call.Args[0].Pos()}
				}
			}
			return true
		})
	}

	// Cross-package: compare local registrations against the families every
	// visible package exported. AllPackageFacts is sorted, so the package
	// blamed when a name conflicts with several is deterministic under both
	// drivers.
	for _, pf := range pass.AllPackageFacts() {
		mf, ok := pf.Fact.(*MetricFamilies)
		if !ok || pf.PkgPath == pass.Pkg.Path() {
			continue
		}
		for name, site := range local {
			if fam, ok := mf.Families[name]; ok && fam.Kind != site.kind {
				pass.Reportf(site.pos,
					"metric %q registered as %s here but as %s in %s (%s); one name must keep one instrument kind",
					name, site.kind, fam.Kind, pf.PkgPath, fam.At)
			}
		}
	}

	// Sibling dependencies: two packages with no import edge between them
	// never see each other's facts under go vet's import-closure model, so
	// a kind conflict between true siblings is invisible at either package.
	// Any common importer holds both fact sets, so the conflict is surfaced
	// here, pinned to this package's clause. Pairs with an import relation
	// are skipped — the importing side already compared its registrations
	// against its dependency's fact at its own registration site — and the
	// comparison is restricted to this package's import closure so the
	// standalone driver (whole-repo fact store) does not re-report every
	// sibling conflict at every unrelated package analyzed later.
	if len(pass.Files) > 0 {
		deps := importClosure(pass.Pkg)
		var depFacts []PackageFact
		for _, pf := range pass.AllPackageFacts() {
			if pf.PkgPath == pass.Pkg.Path() {
				continue
			}
			if _, ok := deps[pf.PkgPath]; !ok {
				continue
			}
			if _, ok := pf.Fact.(*MetricFamilies); ok {
				depFacts = append(depFacts, pf)
			}
		}
		pos := pass.Files[0].Name.Pos()
		for i := 0; i < len(depFacts); i++ {
			for j := i + 1; j < len(depFacts); j++ {
				a, b := depFacts[i], depFacts[j]
				if importsPath(deps[a.PkgPath], b.PkgPath, nil) ||
					importsPath(deps[b.PkgPath], a.PkgPath, nil) {
					continue
				}
				fa := a.Fact.(*MetricFamilies).Families
				fb := b.Fact.(*MetricFamilies).Families
				shared := make([]string, 0)
				for name := range fa {
					if _, ok := fb[name]; ok {
						shared = append(shared, name)
					}
				}
				sort.Strings(shared)
				for _, name := range shared {
					if fa[name].Kind != fb[name].Kind {
						pass.Reportf(pos,
							"metric %q registered as %s in %s (%s) but as %s in %s (%s); one name must keep one instrument kind (sibling packages cannot see each other's facts — the conflict is reported from their common importer)",
							name, fa[name].Kind, a.PkgPath, fa[name].At,
							fb[name].Kind, b.PkgPath, fb[name].At)
					}
				}
			}
		}
	}

	if len(local) > 0 {
		fact := &MetricFamilies{Families: make(map[string]MetricFamily, len(local))}
		for name, site := range local {
			fact.Families[name] = MetricFamily{Kind: site.kind, At: shortPos(pass.Fset, site.pos)}
		}
		pass.ExportPackageFact(fact)
	}
	return nil
}

// importClosure returns every package transitively imported by root, keyed
// by path. Under the vet driver dependencies are loaded from export data,
// whose Imports() graph can be pruned to referenced packages — membership
// is therefore best-effort there, which only ever skips a pair, never
// invents one.
func importClosure(root *types.Package) map[string]*types.Package {
	out := make(map[string]*types.Package)
	var walk func(*types.Package)
	walk = func(p *types.Package) {
		for _, im := range p.Imports() {
			if _, ok := out[im.Path()]; ok {
				continue
			}
			out[im.Path()] = im
			walk(im)
		}
	}
	walk(root)
	return out
}

// importsPath reports whether p transitively imports path. seen may be nil.
func importsPath(p *types.Package, path string, seen map[string]bool) bool {
	if seen == nil {
		seen = make(map[string]bool)
	}
	for _, im := range p.Imports() {
		if im.Path() == path {
			return true
		}
		if seen[im.Path()] {
			continue
		}
		seen[im.Path()] = true
		if importsPath(im, path, seen) {
			return true
		}
	}
	return false
}

// shortPos renders pos as "file.go:line" (basename only), compact enough to
// embed in cross-package fact payloads and diagnostics.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// registryMethod returns the method name if call is a method call on
// *telemetry.Registry.
func registryMethod(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || pass.Info == nil {
		return "", false
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Pkg().Path() != registryPkg {
		return "", false
	}
	return fn.Name(), true
}

// metricArgKind infers the instrument kind from the static type of a
// Register/MustRegister metric argument.
func metricArgKind(pass *Pass, arg ast.Expr) telemetry.Kind {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return kindUnknown
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != registryPkg {
		return kindUnknown
	}
	switch named.Obj().Name() {
	case "Counter":
		return telemetry.KindCounter
	case "Gauge", "GaugeFunc", "MaxGauge":
		return telemetry.KindGauge
	case "Histogram":
		return telemetry.KindHistogram
	}
	return kindUnknown
}

// stringLiteral evaluates e if it is a string literal or a concatenation
// of string literals.
func stringLiteral(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(e.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return "", false
		}
		l, ok1 := stringLiteral(e.X)
		r, ok2 := stringLiteral(e.Y)
		return l + r, ok1 && ok2
	case *ast.ParenExpr:
		return stringLiteral(e.X)
	}
	return "", false
}
