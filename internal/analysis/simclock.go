package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs are the packages whose behaviour must be a pure
// function of their inputs (seed, schedule, op index): the discrete-event
// simulator and everything that runs inside it, plus the seeded chaos
// backend. Wall-clock reads or global RNG state there silently break
// replayability — the property EXPERIMENTS.md figures and the chaos CI
// jobs depend on.
var deterministicPkgs = []string{
	"repro/internal/sim",
	"repro/internal/simnet",
	"repro/internal/simcpu",
	"repro/internal/iofwd",
	"repro/internal/experiments",
	"repro/internal/bgp",
	"repro/internal/core/fault",
	// The striped tier's health tracker and repair loop are keyed off an
	// op-driven logical clock, never the wall clock — ejection and
	// readmission decisions replay exactly from an op trace.
	"repro/internal/stripetier",
	// The WAL spill tier is append-count-driven by design (fsync pacing,
	// drainer wakeups, crash points are all pure functions of the op
	// sequence); a wall-clock read there would make kill/restart drills
	// unreproducible.
	"repro/internal/wal",
}

// scopePrefixes builds a Scope func matching any of the prefixes (a prefix
// matches itself and its subpackages).
func scopePrefixes(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
}

// bannedTimeFuncs are package time functions that read or wait on the wall
// clock. time.Duration arithmetic and time.Time values remain fine.
var bannedTimeFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"After":     "waits on the wall clock",
	"AfterFunc": "schedules on the wall clock",
	"Tick":      "ticks on the wall clock",
	"NewTimer":  "schedules on the wall clock",
	"NewTicker": "ticks on the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
}

// allowedRandFuncs are the math/rand package-level functions that only
// construct explicitly seeded sources — the blessed pattern.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// NewSimclock returns the simclock analyzer: deterministic packages must
// use the sim clock and per-engine seeded RNGs, never the wall clock or the
// global math/rand state.
func NewSimclock() *Analyzer {
	return &Analyzer{
		Name:  "simclock",
		Doc:   "forbids wall-clock reads (time.Now/Sleep/After/...) and global math/rand functions in the deterministic simulation packages",
		Scope: scopePrefixes(deterministicPkgs...),
		Run:   runSimclock,
	}
}

func runSimclock(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pkgLevelFunc(pass, sel)
			if fn == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if why, bad := bannedTimeFuncs[fn.Name()]; bad {
					pass.Reportf(sel.Pos(),
						"time.%s %s; deterministic code must take time from the sim engine (sim.Engine.Now / At)",
						fn.Name(), why)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"rand.%s uses the global math/rand state; use a per-engine seeded *rand.Rand (sim.Engine.Rand) so replay stays a pure function of the seed",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// pkgLevelFunc resolves sel to a package-level function object, or nil if
// it is a method, a variable, or unresolved.
func pkgLevelFunc(pass *Pass, sel *ast.SelectorExpr) *types.Func {
	if pass.Info == nil {
		return nil
	}
	obj := pass.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}
