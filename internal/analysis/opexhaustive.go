package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
)

// NewOpexhaustive returns the opexhaustive analyzer: every Op constant in
// internal/core must be (1) dispatched by the server — a case in some
// switch inside a *Server / *serverConn method, (2) stringable — a case in
// Op.String(), and (3) countable — covered by the opCount constant that
// sizes the per-op metric arrays (opCount must be max(Op)+1, or the new
// op's metrics silently collapse into the "other" label). A future PR that
// adds an opcode and forgets any of the three gets a diagnostic at the
// constant's declaration.
func NewOpexhaustive() *Analyzer {
	return &Analyzer{
		Name:  "opexhaustive",
		Doc:   "every Op constant needs a server dispatch case, a String() case, and opCount coverage for its metrics label",
		Scope: func(path string) bool { return path == "repro/internal/core" },
		Run:   runOpexhaustive,
	}
}

// dispatchReceivers are the method receiver type names whose switches count
// as server-side dispatch.
var dispatchReceivers = map[string]bool{"Server": true, "serverConn": true}

func runOpexhaustive(pass *Pass) error {
	opType, consts := opConstants(pass)
	if opType == nil || len(consts) == 0 {
		return nil // no Op type in this package; nothing to enforce
	}

	inString := make(map[types.Object]bool)
	inDispatch := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := receiverTypeName(fd)
			isString := fd.Name.Name == "String" && recv == "Op"
			isDispatch := dispatchReceivers[recv]
			if !isString && !isDispatch {
				continue
			}
			collectOpCases(pass, fd.Body, func(obj types.Object) {
				if isString {
					inString[obj] = true
				} else {
					inDispatch[obj] = true
				}
			})
		}
	}

	var maxVal int64
	var maxName string
	for _, c := range consts {
		if v := constInt(c); v > maxVal {
			maxVal, maxName = v, c.Name()
		}
	}
	for _, c := range consts {
		if !inString[c] {
			pass.Reportf(c.Pos(), "%s has no case in Op.String(); logs and metric labels will show op(%d)", c.Name(), constInt(c))
		}
		if !inDispatch[c] {
			pass.Reportf(c.Pos(), "%s has no dispatch case in any *Server/*serverConn switch; the server cannot execute it", c.Name())
		}
	}

	if cnt := pass.Pkg.Scope().Lookup("opCount"); cnt != nil {
		if cc, ok := cnt.(*types.Const); ok {
			if v, ok := constant.Int64Val(constant.ToInt(cc.Val())); ok && v != maxVal+1 {
				pass.Reportf(cc.Pos(),
					"opCount = %d but the highest Op is %s = %d; per-op metric slots will collapse ops above opCount into the \"other\" label (want opCount = int(%s) + 1)",
					v, maxName, maxVal, maxName)
			}
		}
	}
	return nil
}

// opConstants returns the package's named type Op and its typed constants
// in declaration order.
func opConstants(pass *Pass) (*types.Named, []*types.Const) {
	obj := pass.Pkg.Scope().Lookup("Op")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	var consts []*types.Const
	for _, name := range pass.Pkg.Scope().Names() {
		if c, ok := pass.Pkg.Scope().Lookup(name).(*types.Const); ok && c.Type() == named.Obj().Type() {
			consts = append(consts, c)
		}
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].Pos() < consts[j].Pos() })
	return named, consts
}

func constInt(c *types.Const) int64 {
	v, _ := constant.Int64Val(constant.ToInt(c.Val()))
	return v
}

// receiverTypeName returns the bare receiver type name of fd ("" for
// functions).
func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// collectOpCases invokes found for every Op constant referenced in a case
// clause of any switch inside body.
func collectOpCases(pass *Pass, body *ast.BlockStmt, found func(types.Object)) {
	ast.Inspect(body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			id := caseIdent(e)
			if id == nil {
				continue
			}
			if obj, ok := pass.Info.Uses[id].(*types.Const); ok {
				found(obj)
			}
		}
		return true
	})
}

// caseIdent unwraps a case expression to its identifier (handles pkg-
// qualified selectors for cross-package fixtures).
func caseIdent(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.ParenExpr:
		return caseIdent(e.X)
	}
	return nil
}
