package sim

// Queue is a blocking FIFO of simulated work items with optional capacity.
// It is the simulation analogue of a buffered channel and is the substrate
// for the paper's shared work queue (Section IV, Figure 7).
type Queue[T any] struct {
	eng     *Engine
	items   []T
	cap     int // 0 means unbounded
	getters []*Proc
	putters []*Proc
}

// NewQueue returns a FIFO with the given capacity; capacity 0 is unbounded.
func NewQueue[T any](e *Engine, capacity int) *Queue[T] {
	return &Queue[T]{eng: e, cap: capacity}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v, blocking the calling process while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.cap > 0 && len(q.items) >= q.cap {
		q.putters = append(q.putters, p)
		p.Suspend()
	}
	q.items = append(q.items, v)
	q.wakeOneGetter()
}

// TryPut appends v without blocking; it reports whether the item was queued.
func (q *Queue[T]) TryPut(v T) bool {
	if q.cap > 0 && len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, v)
	q.wakeOneGetter()
	return true
}

// Get removes and returns the head item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.Suspend()
	}
	v := q.pop()
	q.wakeOnePutter()
	return v
}

// GetBatch removes up to max items, blocking only while the queue is empty.
// It models the paper's per-thread I/O multiplexing: a worker dequeues
// multiple I/O requests and executes them in an event loop.
func (q *Queue[T]) GetBatch(p *Proc, max int) []T {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.Suspend()
	}
	n := min(max, len(q.items))
	batch := make([]T, n)
	copy(batch, q.items[:n])
	q.items = append(q.items[:0], q.items[n:]...)
	for i := 0; i < n; i++ {
		q.wakeOnePutter()
	}
	return batch
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}

// TakeFunc removes up to max items for which keep returns true, scanning
// from the head without blocking. Items that keep rejects stay queued in
// their original order — the substrate for schedulers that must skip work
// whose turn has not come (e.g. a descriptor already executing elsewhere).
func (q *Queue[T]) TakeFunc(max int, keep func(T) bool) []T {
	if max <= 0 || len(q.items) == 0 {
		return nil
	}
	var taken []T
	var zero T
	w := 0
	for r, v := range q.items {
		if len(taken) < max && keep(v) {
			taken = append(taken, v)
			continue
		}
		q.items[w] = v
		if w != r {
			q.items[r] = zero
		}
		w++
	}
	for i := w; i < len(q.items); i++ {
		q.items[i] = zero
	}
	q.items = q.items[:w]
	for range taken {
		q.wakeOnePutter()
	}
	return taken
}

// TryGet removes the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.pop()
	q.wakeOnePutter()
	return v, true
}

func (q *Queue[T]) pop() T {
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v
}

func (q *Queue[T]) wakeOneGetter() {
	if len(q.getters) > 0 {
		p := q.getters[0]
		q.getters = q.getters[1:]
		q.eng.Ready(p)
	}
}

func (q *Queue[T]) wakeOnePutter() {
	if len(q.putters) > 0 {
		p := q.putters[0]
		q.putters = q.putters[1:]
		q.eng.Ready(p)
	}
}
