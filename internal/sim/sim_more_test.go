package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// TestPSAsyncMatchesSync: ServeAsync and Serve deliver identical timing for
// identical demands.
func TestPSAsyncMatchesSync(t *testing.T) {
	syncEnd := func() Time {
		e := New(1)
		ps := NewPS(e, 2, 100)
		for i := 0; i < 3; i++ {
			e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) { ps.Serve(p, 50) })
		}
		return e.Run(0)
	}()
	asyncEnd := func() Time {
		e := New(1)
		ps := NewPS(e, 2, 100)
		e.Spawn("submitter", func(p *Proc) {
			wg := e.NewWaitGroup(3)
			for i := 0; i < 3; i++ {
				ps.ServeAsync(50, wg.Done)
			}
			wg.Wait(p)
		})
		return e.Run(0)
	}()
	if syncEnd != asyncEnd {
		t.Fatalf("sync %v vs async %v", syncEnd, asyncEnd)
	}
}

// TestForkWaitsForAll: the fork-join helper returns at the maximum of its
// branches, which is how overlapped resource usage is modelled everywhere.
func TestForkWaitsForAll(t *testing.T) {
	e := New(1)
	var done Time
	e.Spawn("f", func(p *Proc) {
		Fork(p,
			func(d func()) { e.At(1*Second, d) },
			func(d func()) { e.At(3*Second, d) },
			func(d func()) { d() }, // immediate completion
		)
		done = p.Now()
	})
	e.Run(0)
	if done != 3*Second {
		t.Fatalf("fork joined at %v, want 3s", done)
	}
}

// TestPSLongRunPrecision: many sequential jobs must not accumulate drift
// beyond a relative tolerance, exercising the attained-service arithmetic.
func TestPSLongRunPrecision(t *testing.T) {
	e := New(1)
	ps := NewPS(e, 1, 1e9) // a fast link
	const jobs = 5000
	e.Spawn("j", func(p *Proc) {
		for i := 0; i < jobs; i++ {
			ps.Serve(p, 1e5) // 100us each
		}
	})
	end := e.Run(0)
	want := Seconds(jobs * 1e5 / 1e9)
	drift := math.Abs(float64(end-want)) / float64(want)
	if drift > 1e-6 {
		t.Fatalf("relative drift %.2e after %d jobs (end %v, want %v)", drift, jobs, end, want)
	}
}

// TestQueuePreservesAllItems: no item is lost or duplicated under many
// producers and consumers with random interleavings.
func TestQueuePreservesAllItems(t *testing.T) {
	for trial := int64(0); trial < 10; trial++ {
		e := New(trial)
		q := NewQueue[int](e, 3)
		const producers, perProducer = 5, 20
		seen := make(map[int]int)
		for pr := 0; pr < producers; pr++ {
			pr := pr
			e.Spawn(fmt.Sprintf("p%d", pr), func(p *Proc) {
				for i := 0; i < perProducer; i++ {
					p.Sleep(Time(e.Rand().Int63n(int64(Millisecond))))
					q.Put(p, pr*1000+i)
				}
			})
		}
		// Two consumers split the exact item count between them.
		for co := 0; co < 2; co++ {
			e.Spawn(fmt.Sprintf("c%d", co), func(p *Proc) {
				for i := 0; i < producers*perProducer/2; i++ {
					seen[q.Get(p)]++
				}
			})
		}
		e.Run(0)
		if len(seen) != producers*perProducer {
			t.Fatalf("trial %d: %d distinct items, want %d", trial, len(seen), producers*perProducer)
		}
		for k, n := range seen {
			if n != 1 {
				t.Fatalf("trial %d: item %d delivered %d times", trial, k, n)
			}
		}
	}
}

// TestTimeStringFormats pins the human-readable trace formatting.
func TestTimeStringFormats(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d -> %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// TestSecondsRoundTrip is the Time conversion property.
func TestSecondsRoundTrip(t *testing.T) {
	prop := func(ms uint16) bool {
		d := Seconds(float64(ms) / 1000)
		return math.Abs(d.Seconds()-float64(ms)/1000) < 2e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTracef exercises the trace hook.
func TestTracef(t *testing.T) {
	e := New(1)
	var lines []string
	e.SetTrace(func(at Time, format string, args ...any) {
		lines = append(lines, fmt.Sprintf("%v: ", at)+fmt.Sprintf(format, args...))
	})
	e.Spawn("p", func(p *Proc) {
		p.Sleep(Second)
		e.Tracef("woke %s", p.Name())
	})
	e.Run(0)
	if len(lines) != 1 || lines[0] != "1.000000s: woke p" {
		t.Fatalf("trace lines %q", lines)
	}
	e.SetTrace(nil)
	e.Tracef("dropped") // must not panic
}

// TestSpawnDaemonNoDeadlockPanic: blocked daemons do not trip the deadlock
// detector.
func TestSpawnDaemonNoDeadlockPanic(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e, 0)
	e.SpawnDaemon("server", func(p *Proc) {
		for {
			_ = q.Get(p)
		}
	})
	e.Spawn("client", func(p *Proc) {
		q.Put(p, 1)
		p.Sleep(Second)
	})
	if end := e.Run(0); end != Second {
		t.Fatalf("end %v", end)
	}
}

// TestReadyPanicsOnRunningProc: waking a process that is not suspended is a
// model bug and must be loud.
func TestReadyPanicsOnRunningProc(t *testing.T) {
	e := New(1)
	p1 := e.Spawn("a", func(p *Proc) { p.Sleep(Second) })
	e.Spawn("b", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Ready on sleeping proc did not panic")
			}
		}()
		e.Ready(p1) // p1 is sleeping, not suspended
	})
	e.Run(0)
}
