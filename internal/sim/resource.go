package sim

import "fmt"

// Resource is a counted semaphore with FIFO admission, used for bounded
// pools such as the staging buffer memory cap (paper Section IV: "If there
// is insufficient memory to stage the data, the I/O operation is blocked
// until a number of queued I/O operations complete").
type Resource struct {
	eng      *Engine
	capacity int64
	avail    int64
	waiters  []resWaiter
}

type resWaiter struct {
	p *Proc
	n int64
}

// NewResource returns a Resource with the given capacity, fully available.
func NewResource(e *Engine, capacity int64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource capacity %d", capacity))
	}
	return &Resource{eng: e, capacity: capacity, avail: capacity}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// Available returns the currently unclaimed capacity.
func (r *Resource) Available() int64 { return r.avail }

// Acquire claims n units, blocking the process until they are available.
// Requests are admitted strictly in FIFO order, so a large request cannot be
// starved by a stream of small ones.
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d of capacity %d", n, r.capacity))
	}
	if len(r.waiters) == 0 && r.avail >= n {
		r.avail -= n
		return
	}
	r.waiters = append(r.waiters, resWaiter{p, n})
	p.Suspend()
	// Woken by Release once our claim has been deducted.
}

// TryAcquire claims n units without blocking; it reports success.
func (r *Resource) TryAcquire(n int64) bool {
	if len(r.waiters) > 0 || r.avail < n {
		return false
	}
	r.avail -= n
	return true
}

// Release returns n units and admits queued waiters in FIFO order.
func (r *Resource) Release(n int64) {
	r.avail += n
	if r.avail > r.capacity {
		panic(fmt.Sprintf("sim: release overflows capacity: %d > %d", r.avail, r.capacity))
	}
	for len(r.waiters) > 0 && r.avail >= r.waiters[0].n {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.avail -= w.n
		r.eng.Ready(w.p)
	}
}
