package sim

import (
	"fmt"
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.At(3*Second, func() { got = append(got, 3) })
	e.At(1*Second, func() { got = append(got, 1) })
	e.At(2*Second, func() { got = append(got, 2) })
	e.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*Second {
		t.Fatalf("final time %v, want 3s", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Second, func() { got = append(got, i) })
	}
	e.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.At(Second, func() { fired = true })
	e.At(Millisecond, func() {
		if !tm.Stop() {
			t.Error("Stop returned false for pending timer")
		}
		if tm.Stop() {
			t.Error("second Stop returned true")
		}
	})
	e.Run(0)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunLimit(t *testing.T) {
	e := New(1)
	fired := false
	e.At(2*Second, func() { fired = true })
	end := e.Run(Second)
	if fired {
		t.Fatal("event beyond limit fired")
	}
	if end != Second {
		t.Fatalf("Run returned %v, want 1s", end)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative delay")
		}
	}()
	New(1).At(-1, func() {})
}

func TestProcSleep(t *testing.T) {
	e := New(1)
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Second)
		wake = p.Now()
	})
	e.Run(0)
	if wake != 5*Second {
		t.Fatalf("woke at %v, want 5s", wake)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	e := New(1)
	var marks []Time
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(Second)
			marks = append(marks, p.Now())
		}
	})
	e.Run(0)
	for i, m := range marks {
		if m != Time(i+1)*Second {
			t.Fatalf("mark %d at %v", i, m)
		}
	}
}

func TestProcJoin(t *testing.T) {
	e := New(1)
	var joinedAt Time
	worker := e.Spawn("worker", func(p *Proc) { p.Sleep(3 * Second) })
	e.Spawn("joiner", func(p *Proc) {
		p.Join(worker)
		joinedAt = p.Now()
	})
	e.Run(0)
	if joinedAt != 3*Second {
		t.Fatalf("joined at %v, want 3s", joinedAt)
	}
}

func TestJoinDeadProcReturnsImmediately(t *testing.T) {
	e := New(1)
	worker := e.Spawn("worker", func(p *Proc) {})
	ok := false
	e.Spawn("joiner", func(p *Proc) {
		p.Sleep(Second) // ensure worker is already dead
		p.Join(worker)
		ok = true
	})
	e.Run(0)
	if !ok {
		t.Fatal("join on dead proc did not return")
	}
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no deadlock panic")
		}
	}()
	e := New(1)
	e.Spawn("stuck", func(p *Proc) { p.Suspend() })
	e.Run(0)
}

func TestWaitGroup(t *testing.T) {
	e := New(1)
	wg := e.NewWaitGroup(3)
	for i := 1; i <= 3; i++ {
		d := Time(i) * Second
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	var doneAt Time
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run(0)
	if doneAt != 3*Second {
		t.Fatalf("waitgroup released at %v, want 3s", doneAt)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e, 0)
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Millisecond)
			q.Put(p, i)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("queue order %v", got)
		}
	}
}

func TestQueueCapacityBlocks(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e, 2)
	var thirdPutAt Time
	e.Spawn("producer", func(p *Proc) {
		q.Put(p, 0)
		q.Put(p, 1)
		q.Put(p, 2) // must block until consumer drains one
		thirdPutAt = p.Now()
	})
	e.Spawn("consumer", func(p *Proc) {
		p.Sleep(Second)
		q.Get(p)
	})
	e.Run(0)
	if thirdPutAt != Second {
		t.Fatalf("third Put completed at %v, want 1s", thirdPutAt)
	}
}

func TestQueueGetBatch(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e, 0)
	var batch []int
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 7; i++ {
			q.Put(p, i)
		}
	})
	e.Spawn("c", func(p *Proc) {
		p.Sleep(Millisecond)
		batch = q.GetBatch(p, 4)
	})
	e.Run(0)
	if len(batch) != 4 || batch[0] != 0 || batch[3] != 3 {
		t.Fatalf("batch = %v", batch)
	}
	if q.Len() != 3 {
		t.Fatalf("remaining %d, want 3", q.Len())
	}
}

func TestQueueTryOps(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e, 1)
	e.Spawn("p", func(p *Proc) {
		if _, ok := q.TryGet(); ok {
			t.Error("TryGet on empty queue succeeded")
		}
		if !q.TryPut(7) {
			t.Error("TryPut on empty queue failed")
		}
		if q.TryPut(8) {
			t.Error("TryPut on full queue succeeded")
		}
		v, ok := q.TryGet()
		if !ok || v != 7 {
			t.Errorf("TryGet = %d,%v", v, ok)
		}
	})
	e.Run(0)
}

func TestResourceBlocking(t *testing.T) {
	e := New(1)
	r := NewResource(e, 10)
	var acquiredAt Time
	e.Spawn("big", func(p *Proc) {
		r.Acquire(p, 8)
		p.Sleep(Second)
		r.Release(8)
	})
	e.Spawn("second", func(p *Proc) {
		p.Sleep(Millisecond)
		r.Acquire(p, 5) // only 2 free; must wait for release at t=1s
		acquiredAt = p.Now()
		r.Release(5)
	})
	e.Run(0)
	if acquiredAt != Second {
		t.Fatalf("acquired at %v, want 1s", acquiredAt)
	}
	if r.Available() != 10 {
		t.Fatalf("available %d, want 10", r.Available())
	}
}

func TestResourceFIFONoStarvation(t *testing.T) {
	e := New(1)
	r := NewResource(e, 10)
	var order []string
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 10)
		p.Sleep(Second)
		r.Release(10)
	})
	e.Spawn("large", func(p *Proc) {
		p.Sleep(Millisecond)
		r.Acquire(p, 9)
		order = append(order, "large")
		p.Sleep(Second)
		r.Release(9)
	})
	e.Spawn("small", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	e.Run(0)
	if len(order) != 2 || order[0] != "large" {
		t.Fatalf("admission order %v, want [large small]", order)
	}
}

func TestPSOneJobExactTime(t *testing.T) {
	e := New(1)
	ps := NewPS(e, 1, 100) // 100 units/sec
	var doneAt Time
	e.Spawn("j", func(p *Proc) {
		ps.Serve(p, 50)
		doneAt = p.Now()
	})
	e.Run(0)
	if math.Abs(doneAt.Seconds()-0.5) > 1e-9 {
		t.Fatalf("done at %v, want 0.5s", doneAt)
	}
}

func TestPSEqualSharing(t *testing.T) {
	e := New(1)
	ps := NewPS(e, 1, 100)
	var done [2]Time
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
			ps.Serve(p, 50)
			done[i] = p.Now()
		})
	}
	e.Run(0)
	// Two equal jobs sharing a single server both finish at 1s.
	for i, d := range done {
		if math.Abs(d.Seconds()-1.0) > 1e-6 {
			t.Fatalf("job %d done at %v, want 1s", i, d)
		}
	}
}

func TestPSMulticoreNoSharingBelowCapacity(t *testing.T) {
	e := New(1)
	ps := NewPS(e, 4, 100)
	var done [4]Time
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
			ps.Serve(p, 100)
			done[i] = p.Now()
		})
	}
	e.Run(0)
	for i, d := range done {
		if math.Abs(d.Seconds()-1.0) > 1e-6 {
			t.Fatalf("job %d done at %v, want 1s (4 jobs on 4 servers)", i, d)
		}
	}
}

func TestPSStaggeredArrivals(t *testing.T) {
	e := New(1)
	ps := NewPS(e, 1, 100)
	var firstDone, secondDone Time
	e.Spawn("first", func(p *Proc) {
		ps.Serve(p, 100)
		firstDone = p.Now()
	})
	e.Spawn("second", func(p *Proc) {
		p.Sleep(Second / 2)
		ps.Serve(p, 100)
		secondDone = p.Now()
	})
	e.Run(0)
	// First runs alone [0, 0.5): gets 50. Then shares: each at 50/s.
	// First needs 50 more: done at 1.5s. Second then runs alone with 50
	// left at 100/s: done at 2.0s.
	if math.Abs(firstDone.Seconds()-1.5) > 1e-6 {
		t.Fatalf("first done at %v, want 1.5s", firstDone)
	}
	if math.Abs(secondDone.Seconds()-2.0) > 1e-6 {
		t.Fatalf("second done at %v, want 2.0s", secondDone)
	}
}

func TestPSEfficiencyCurve(t *testing.T) {
	e := New(1)
	ps := NewPS(e, 1, 100)
	ps.SetEfficiency(func(k int) float64 {
		if k > 1 {
			return 0.5
		}
		return 1
	})
	var done [2]Time
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
			ps.Serve(p, 50)
			done[i] = p.Now()
		})
	}
	e.Run(0)
	// Total rate halves with 2 jobs: 100 units of total work at 50/s = 2s.
	for i, d := range done {
		if math.Abs(d.Seconds()-2.0) > 1e-6 {
			t.Fatalf("job %d done at %v, want 2s", i, d)
		}
	}
}

func TestPSZeroDemandImmediate(t *testing.T) {
	e := New(1)
	ps := NewPS(e, 1, 100)
	e.Spawn("j", func(p *Proc) {
		ps.Serve(p, 0)
		if p.Now() != 0 {
			t.Errorf("zero demand advanced time to %v", p.Now())
		}
	})
	e.Run(0)
}

func TestPSWorkConservation(t *testing.T) {
	// Property: total delivered work equals the sum of demands, and busy
	// time never exceeds the makespan, across randomized workloads.
	for trial := 0; trial < 20; trial++ {
		e := New(int64(trial))
		ps := NewPS(e, 3, 77)
		rng := e.Rand()
		n := 2 + rng.Intn(20)
		var totalDemand float64
		for i := 0; i < n; i++ {
			demand := 1 + rng.Float64()*100
			start := Time(rng.Int63n(int64(Second)))
			totalDemand += demand
			e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
				p.Sleep(start)
				ps.Serve(p, demand)
			})
		}
		end := e.Run(0)
		got := ps.TotalWork()
		if math.Abs(got-totalDemand) > 1e-6*totalDemand+1e-9 {
			t.Fatalf("trial %d: delivered %g, demanded %g", trial, got, totalDemand)
		}
		if ps.BusyTime() > end {
			t.Fatalf("trial %d: busy %v exceeds makespan %v", trial, ps.BusyTime(), end)
		}
		if ps.Active() != 0 {
			t.Fatalf("trial %d: %d jobs still active", trial, ps.Active())
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := New(42)
		var log []string
		q := NewQueue[int](e, 4)
		ps := NewPS(e, 2, 1000)
		for i := 0; i < 8; i++ {
			i := i
			e.Spawn(fmt.Sprintf("prod%d", i), func(p *Proc) {
				p.Sleep(Time(e.Rand().Int63n(int64(Millisecond))))
				q.Put(p, i)
			})
		}
		for w := 0; w < 2; w++ {
			w := w
			e.Spawn(fmt.Sprintf("worker%d", w), func(p *Proc) {
				for j := 0; j < 4; j++ {
					v := q.Get(p)
					ps.Serve(p, float64(10+v))
					log = append(log, fmt.Sprintf("%d:%d@%v", w, v, p.Now()))
				}
			})
		}
		e.Run(0)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
