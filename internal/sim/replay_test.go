package sim

import (
	"fmt"
	"testing"
)

// randomWorkload runs a small randomized simulation — producer processes
// sleeping random amounts and a timer storm drawing from the engine's RNG —
// and returns the full trace. Every random choice goes through e.Rand(), so
// the trace is a pure function of the seed.
func randomWorkload(seed int64) []string {
	e := New(seed)
	var trace []string
	e.SetTrace(func(t Time, format string, args ...any) {
		trace = append(trace, fmt.Sprintf("%v %s", t, fmt.Sprintf(format, args...)))
	})

	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("worker-%d", i), func(p *Proc) {
			for step := 0; step < 8; step++ {
				d := Time(e.Rand().Intn(900)+100) * Microsecond
				p.Sleep(d)
				e.Tracef("worker-%d step=%d slept=%v draw=%d", i, step, d, e.Rand().Int63())
			}
		})
	}

	// A timer storm layered on top: random fire times, some cancelled based
	// on further draws, exercising heap order and cancellation determinism.
	var timers []*Timer
	for i := 0; i < 16; i++ {
		i := i
		d := Time(e.Rand().Intn(5000)) * Microsecond
		timers = append(timers, e.At(d, func() {
			e.Tracef("timer-%d fired", i)
		}))
	}
	e.At(2*Millisecond, func() {
		for i, t := range timers {
			if e.Rand().Intn(2) == 0 && t.Stop() {
				e.Tracef("timer-%d cancelled", i)
			}
		}
	})

	e.Run(0)
	return trace
}

// TestReplayIdenticalTraces is the determinism contract simclock exists to
// protect: two engines built with the same seed must produce bit-identical
// traces, because the only entropy in a simulation is the per-engine seeded
// RNG. If anyone reintroduces global math/rand or wall-clock reads into the
// sim packages, this test (and the simclock analyzer) goes red.
func TestReplayIdenticalTraces(t *testing.T) {
	for _, seed := range []int64{1, 42, 0x1234_5678} {
		a := randomWorkload(seed)
		b := randomWorkload(seed)
		if len(a) == 0 {
			t.Fatalf("seed %d: workload produced no trace", seed)
		}
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at event %d:\n  run1: %s\n  run2: %s", seed, i, a[i], b[i])
			}
		}
	}
}

// TestReplayDistinctSeedsDiverge guards against the RNG being ignored: if
// the workload were insensitive to the seed, identical-trace comparisons
// would pass vacuously.
func TestReplayDistinctSeedsDiverge(t *testing.T) {
	a := randomWorkload(1)
	b := randomWorkload(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical traces; workload is not exercising the engine RNG")
	}
}
