// Package sim implements a deterministic discrete-event simulation engine
// with coroutine-style processes, in the spirit of SimPy.
//
// The engine maintains a virtual clock and an ordered event queue. Simulated
// processes run as goroutines, but the engine enforces a strict
// single-runnable invariant: at any instant either the engine loop or exactly
// one process goroutine is executing. Combined with a stable (time, sequence)
// event ordering and a seeded random source, every run of a simulation is
// bit-for-bit reproducible.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds. It is also used for
// durations, mirroring time.Duration.
type Time int64

// Duration units in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a float64 number of seconds into a virtual Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Seconds returns t expressed in float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with adaptive units for traces and errors.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}
