package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Engine is a deterministic discrete-event simulation engine. It is not safe
// for concurrent use: all interaction must happen from the goroutine that
// called Run, or from process goroutines while they hold the run token.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	parked chan struct{} // handoff: process goroutine -> engine loop
	rng    *rand.Rand
	nlive  int // live (spawned, not yet dead) processes
	trace  func(t Time, format string, args ...any)
}

// New returns an engine whose random source is seeded with seed. The same
// seed always yields the same simulation.
func New(seed int64) *Engine {
	return &Engine{
		parked: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetTrace installs a trace callback invoked by Tracef. A nil callback
// disables tracing.
func (e *Engine) SetTrace(fn func(t Time, format string, args ...any)) { e.trace = fn }

// Tracef emits a trace record at the current virtual time if tracing is on.
func (e *Engine) Tracef(format string, args ...any) {
	if e.trace != nil {
		e.trace(e.now, format, args...)
	}
}

// Timer is a scheduled callback that can be cancelled before it fires.
type Timer struct{ ev *event }

// Stop cancels the timer. It reports whether the timer was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	return true
}

// At schedules fn to run after delay d of virtual time. Negative delays are
// an error in simulation logic and panic. Events scheduled for the same time
// fire in scheduling order.
func (e *Engine) At(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	ev := &event{at: e.now + d, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// Run executes events until the queue is empty or the virtual clock would
// pass limit (limit <= 0 means no limit). It returns the final virtual time.
// Run panics if processes are still live when the event queue drains, as
// that means the simulation deadlocked.
func (e *Engine) Run(limit Time) Time {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			continue
		}
		if limit > 0 && ev.at > limit {
			e.now = limit
			return e.now
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: event time %v before now %v", ev.at, e.now))
		}
		e.now = ev.at
		ev.fn()
	}
	if e.nlive > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) still blocked with no pending events at t=%v", e.nlive, e.now))
	}
	return e.now
}

type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
