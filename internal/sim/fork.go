package sim

// Fork starts several asynchronous operations and blocks the calling process
// until every one has signalled completion. Each start function receives a
// done callback it must invoke exactly once.
//
// Fork models overlapped resource usage: for example, a socket send consumes
// CPU cycles while the NIC clocks the same bytes onto the wire, so the
// elapsed time is the maximum of the two contended service times, not their
// sum.
func Fork(p *Proc, starts ...func(done func())) {
	wg := p.eng.NewWaitGroup(len(starts))
	for _, s := range starts {
		s(wg.Done)
	}
	wg.Wait(p)
}
