package sim

import "fmt"

// ProcState describes the lifecycle of a simulated process.
type ProcState int

// Process lifecycle states.
const (
	StateCreated ProcState = iota
	StateRunning
	StateSleeping
	StateSuspended
	StateDead
)

func (s ProcState) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateSuspended:
		return "suspended"
	case StateDead:
		return "dead"
	}
	return "invalid"
}

// Proc is a simulated process: a goroutine interleaved with the engine under
// the single-runnable invariant. All Proc methods must be called from the
// process's own goroutine, except as documented.
type Proc struct {
	eng     *Engine
	name    string
	resume  chan struct{}
	state   ProcState
	joiners []*Proc
	wake    *Timer // pending sleep timer
	daemon  bool
}

// Spawn creates a process running fn. The process starts at the current
// virtual time, after already-scheduled events for this instant. Spawn may be
// called before Run or from any running simulation context.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// SpawnDaemon creates a process like Spawn, but a blocked daemon does not
// count as a deadlock when the event queue drains — use it for server loops
// such as worker pools that park waiting for work that may never come.
func (e *Engine) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Engine) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{}), state: StateCreated, daemon: daemon}
	if !daemon {
		e.nlive++
	}
	e.At(0, func() {
		go func() {
			<-p.resume
			p.state = StateRunning
			fn(p)
			p.die()
		}()
		// Hand the token to the new goroutine and wait for it to park.
		p.resume <- struct{}{}
		<-e.parked
	})
	return p
}

// die marks the process dead, wakes joiners, and returns the run token to
// the engine. Runs on the process goroutine as its final act.
func (p *Proc) die() {
	p.state = StateDead
	if !p.daemon {
		p.eng.nlive--
	}
	for _, j := range p.joiners {
		p.eng.ready(j)
	}
	p.joiners = nil
	p.eng.parked <- struct{}{}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// State returns the current lifecycle state.
func (p *Proc) State() ProcState { return p.state }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// park transfers control back to the engine and blocks until resumed.
func (p *Proc) park() {
	p.eng.parked <- struct{}{}
	<-p.resume
	p.state = StateRunning
}

// transfer wakes process p. Must be called while holding the run token
// inside an engine event callback.
func (e *Engine) transfer(p *Proc) {
	if p.state == StateDead {
		panic(fmt.Sprintf("sim: waking dead process %q", p.name))
	}
	p.resume <- struct{}{}
	<-e.parked
}

// ready schedules p to be resumed at the current virtual time.
func (e *Engine) ready(p *Proc) {
	e.At(0, func() { e.transfer(p) })
}

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.state = StateSleeping
	p.wake = p.eng.At(d, func() { p.eng.transfer(p) })
	p.park()
	p.wake = nil
}

// Suspend blocks the process until another context calls Ready on it. Use it
// to build condition-style synchronization.
func (p *Proc) Suspend() {
	p.state = StateSuspended
	p.park()
}

// Ready schedules a suspended process to resume at the current virtual time.
// It panics if the process is not suspended, which almost always indicates a
// lost-wakeup or double-wakeup bug in the model.
func (e *Engine) Ready(p *Proc) {
	if p.state != StateSuspended {
		panic(fmt.Sprintf("sim: Ready(%q) in state %v", p.name, p.state))
	}
	p.state = StateSleeping // wakeup in flight
	e.ready(p)
}

// Join blocks until other has terminated. Returns immediately if it already
// has.
func (p *Proc) Join(other *Proc) {
	if other.state == StateDead {
		return
	}
	other.joiners = append(other.joiners, p)
	p.Suspend()
}

// WaitGroup blocks a process until a counted number of completions arrive.
type WaitGroup struct {
	eng     *Engine
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup expecting count Done calls.
func (e *Engine) NewWaitGroup(count int) *WaitGroup {
	return &WaitGroup{eng: e, count: count}
}

// Add increases the expected completion count by n.
func (w *WaitGroup) Add(n int) { w.count += n }

// Done records one completion and wakes waiters when the count reaches zero.
// Callable from any running simulation context.
func (w *WaitGroup) Done() {
	w.count--
	if w.count < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			w.eng.Ready(p)
		}
		w.waiters = nil
	}
}

// Wait blocks the process until the count reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.Suspend()
}
