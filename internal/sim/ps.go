package sim

import (
	"fmt"
	"math"
)

// PS is an egalitarian processor-sharing server with a configurable number
// of parallel servers and an efficiency curve.
//
// A PS with servers=1 models a shared network link: k concurrent transfers
// each progress at rate/k. A PS with servers=C models a C-core CPU under a
// time-slicing scheduler: k <= C jobs each run at full rate, k > C jobs each
// get C/k of a core. The efficiency curve eff(k) scales the total delivered
// rate and is how resource contention on the BG/P I/O node (memory-bandwidth
// pressure and context-switch overhead, the bottleneck identified in
// Section III of the paper) enters the model.
//
// Implementation: attained-service. Because sharing is egalitarian, every
// active job accrues service at the same instantaneous rate, so a single
// accumulator advances all jobs at once and each completion is an O(k) scan.
type PS struct {
	eng     *Engine
	servers int
	rate    float64 // work units per second per server
	eff     func(k int) float64

	jobs       []*psJob
	attained   float64 // cumulative per-job service since engine start
	lastUpdate Time
	timer      *Timer

	totalWork float64 // total work units delivered, for utilization stats
	busy      Time    // total time with at least one active job
}

type psJob struct {
	target float64 // attained value at which this job completes
	proc   *Proc   // blocked process to wake, or nil
	done   func()  // completion callback when proc is nil
}

// NewPS returns a processor-sharing server with the given number of parallel
// servers, each delivering ratePerServer work units per second.
func NewPS(e *Engine, servers int, ratePerServer float64) *PS {
	if servers <= 0 || ratePerServer <= 0 {
		panic(fmt.Sprintf("sim: invalid PS servers=%d rate=%g", servers, ratePerServer))
	}
	return &PS{eng: e, servers: servers, rate: ratePerServer, lastUpdate: e.Now()}
}

// SetEfficiency installs the total-rate multiplier as a function of the
// number of concurrently active jobs. eff must return a value in (0, 1] for
// every k >= 1. A nil function means perfect efficiency.
func (s *PS) SetEfficiency(fn func(k int) float64) { s.eff = fn }

// Active returns the number of jobs currently in service.
func (s *PS) Active() int { return len(s.jobs) }

// TotalWork returns the cumulative work units delivered so far.
func (s *PS) TotalWork() float64 {
	s.update()
	return s.totalWork
}

// BusyTime returns the cumulative virtual time during which the server had
// at least one active job.
func (s *PS) BusyTime() Time {
	s.update()
	return s.busy
}

// perJobRate returns the instantaneous service rate each of k jobs receives.
func (s *PS) perJobRate(k int) float64 {
	if k == 0 {
		return 0
	}
	total := s.rate * float64(min(k, s.servers))
	if s.eff != nil {
		f := s.eff(k)
		if f <= 0 || f > 1 {
			panic(fmt.Sprintf("sim: PS efficiency %g for k=%d outside (0,1]", f, k))
		}
		total *= f
	}
	return total / float64(k)
}

// Serve blocks the calling process until demand work units have been
// delivered to it under processor sharing. Zero or negative demand returns
// immediately.
func (s *PS) Serve(p *Proc, demand float64) {
	if demand <= 0 {
		return
	}
	s.update()
	s.jobs = append(s.jobs, &psJob{target: s.attained + demand, proc: p})
	s.reschedule()
	p.Suspend()
}

// ServeAsync submits a job and invokes done when it completes, without
// blocking the caller. A zero demand invokes done immediately in the
// caller's context. Use with WaitGroup to model overlapped resources, e.g. a
// socket send that consumes CPU while the NIC clocks bytes onto the wire.
func (s *PS) ServeAsync(demand float64, done func()) {
	if demand <= 0 {
		done()
		return
	}
	s.update()
	s.jobs = append(s.jobs, &psJob{target: s.attained + demand, done: done})
	s.reschedule()
}

// update advances the attained-service accumulator to the current time.
func (s *PS) update() {
	now := s.eng.Now()
	dt := now - s.lastUpdate
	if dt <= 0 {
		return
	}
	s.lastUpdate = now
	k := len(s.jobs)
	if k == 0 {
		return
	}
	r := s.perJobRate(k)
	s.attained += r * dt.Seconds()
	s.totalWork += r * dt.Seconds() * float64(k)
	s.busy += dt
}

// reschedule arms the timer for the earliest pending completion.
func (s *PS) reschedule() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if len(s.jobs) == 0 {
		return
	}
	minTarget := s.jobs[0].target
	for _, j := range s.jobs[1:] {
		if j.target < minTarget {
			minTarget = j.target
		}
	}
	r := s.perJobRate(len(s.jobs))
	dtSec := (minTarget - s.attained) / r
	if dtSec < 0 {
		dtSec = 0
	}
	// Round up to the next nanosecond so the timer never fires before the
	// completion point in exact arithmetic.
	d := Time(math.Ceil(dtSec * float64(Second)))
	s.timer = s.eng.At(d, s.fire)
}

// fire completes every job whose target has been reached and re-arms.
func (s *PS) fire() {
	s.timer = nil
	s.update()
	// Relative tolerance absorbs the float error introduced by the
	// nanosecond rounding of completion times.
	const relEps = 1e-9
	var remaining []*psJob
	completed := make([]*psJob, 0, 1)
	for _, j := range s.jobs {
		if j.target <= s.attained+relEps*math.Abs(j.target)+1e-12 {
			completed = append(completed, j)
		} else {
			remaining = append(remaining, j)
		}
	}
	s.jobs = remaining
	for _, j := range completed {
		if j.proc != nil {
			s.eng.Ready(j.proc)
		} else {
			j.done()
		}
	}
	s.reschedule()
}
