package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/stats"
)

// runFigure dispatches to the experiment runner for one paper figure.
func runFigure(fig int, csv, quick bool) {
	var t *stats.Table
	switch fig {
	case 4:
		t = experiments.Figure4(quick)
		// The paper's figure 4 also sweeps the buffer size; print that
		// second axis at the full pset population.
		defer func() {
			sizes := experiments.Figure4MessageSizes(quick, 64)
			if csv {
				fmt.Print(sizes.CSV())
			} else {
				fmt.Print("\n" + sizes.Format())
			}
		}()
	case 5:
		t = experiments.Figure5(quick)
	case 6:
		t = experiments.Figure6(quick)
	case 9:
		t = experiments.Figure9(quick)
	case 10:
		t = experiments.Figure10(quick)
	case 11:
		t = experiments.Figure11(quick)
	case 12:
		t = experiments.Figure12(quick)
	case 13:
		t = experiments.Figure13(quick)
	default:
		fmt.Fprintf(os.Stderr, "iofsim: no runner for figure %d (have 4,5,6,9,10,11,12,13)\n", fig)
		os.Exit(2)
	}
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.Format())
	}
}
