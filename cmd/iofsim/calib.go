package main

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/experiments"
)

// runCalib prints the raw Section III calibration probes next to the
// paper-reported targets, for tuning internal/bgp/params.go.
func runCalib() {
	const mib = bgp.MiB
	fmt.Println("== nuttcp ION->DA (paper fig 5: 1->307, 4->791, 8->lower) ==")
	for _, k := range []int{1, 2, 4, 8} {
		r := experiments.RunNuttcpIONToDA(k, mib, 200)
		fmt.Printf("  threads=%d  %7.1f MiB/s\n", k, r.ThroughputMiBps)
	}
	fmt.Println("== nuttcp DA->DA (paper: 1110 single stream) ==")
	r := experiments.RunNuttcpDAToDA(1, mib, 200)
	fmt.Printf("  threads=1  %7.1f MiB/s\n", r.ThroughputMiBps)

	fmt.Println("== collective CN->ION /dev/null, 1 MiB (paper fig 4: peak ~680 at 4-8 CNs, drop >32) ==")
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		for _, mech := range []experiments.Mechanism{experiments.CIOD, experiments.ZOID} {
			res := experiments.RunE2E(experiments.E2EConfig{
				Mech: mech, Psets: 1, CNsPerPset: n, MsgBytes: mib, Iters: 60,
			})
			fmt.Printf("  cn=%2d %-14s %7.1f MiB/s\n", n, mech, res.ThroughputMiBps)
		}
	}

	fmt.Println("== e2e CN->DA, 1 MiB (paper fig 6: CIOD/ZOID peak ~420; fig 9 @32: zoid~440 wq~540 async~617) ==")
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		for _, mech := range experiments.AllMechanisms {
			res := experiments.RunE2E(experiments.E2EConfig{
				Mech: mech, Psets: 1, CNsPerPset: n, DANodes: 1, MsgBytes: mib, Iters: 60, Workers: 4,
			})
			fmt.Printf("  cn=%2d %-14s %7.1f MiB/s\n", n, mech, res.ThroughputMiBps)
		}
	}
}
