// Command iofsim runs the simulated reproduction of the paper's
// experiments. Each figure of the evaluation section (4-6, 9-13) has a
// runner that prints the measured series as a text table, alongside the
// values the paper reports where it states them exactly.
//
// Usage:
//
//	iofsim -fig 9          # reproduce figure 9
//	iofsim -all            # reproduce every figure
//	iofsim -calib          # print the Section III calibration probes
//	iofsim -fig 12 -csv    # CSV output
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to reproduce (4, 5, 6, 9, 10, 11, 12, 13)")
	all := flag.Bool("all", false, "reproduce every figure")
	util := flag.Bool("util", false, "print the resource-utilization view of the figure-9 operating point")
	calib := flag.Bool("calib", false, "print raw calibration probes")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	quick := flag.Bool("quick", false, "fewer iterations (faster, slightly noisier shapes)")
	flag.Parse()

	switch {
	case *calib:
		runCalib()
	case *util:
		t := experiments.Utilization(*quick)
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Format())
		}
	case *all:
		for _, f := range []int{4, 5, 6, 9, 10, 11, 12, 13} {
			runFigure(f, *csv, *quick)
			fmt.Println()
		}
	case *fig != 0:
		runFigure(*fig, *csv, *quick)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
