// Command fwdbench drives a forwarding server (see cmd/fwdd) with the
// paper's memory-to-memory microbenchmark: N client connections each write
// a stream of fixed-size messages, and the aggregate sustained throughput
// is reported.
//
//	fwdbench -addr 127.0.0.1:7070 -clients 32 -msg 1048576 -iters 200
//
// With -report > 0 a periodic stats line (ops, interval and cumulative
// MiB/s) is printed to stderr while the run is in progress.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// progress is the client-side telemetry the periodic reporter reads; the
// worker goroutines bump it after every completed operation.
var progress struct {
	ops   telemetry.Counter
	bytes telemetry.Counter
}

// report prints one stats line per interval until stop is closed.
func report(interval time.Duration, start time.Time, stop <-chan struct{}) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var lastBytes, lastOps uint64
	last := start
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			b, o := progress.bytes.Value(), progress.ops.Value()
			dt := now.Sub(last).Seconds()
			fmt.Fprintf(os.Stderr,
				"t=%5.1fs ops=%-8d +%-6d %7.1f MiB/s (interval)  %7.1f MiB/s (cumulative)\n",
				now.Sub(start).Seconds(), o, o-lastOps,
				float64(b-lastBytes)/dt/(1<<20),
				float64(b)/now.Sub(start).Seconds()/(1<<20))
			lastBytes, lastOps, last = b, o, now
		}
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	clients := flag.Int("clients", 8, "concurrent client connections (compute nodes)")
	msg := flag.Int("msg", 1<<20, "message size in bytes")
	iters := flag.Int("iters", 100, "messages per client")
	reads := flag.Bool("reads", false, "benchmark reads instead of writes")
	reportEvery := flag.Duration("report", time.Second, "periodic stats-line interval on stderr (0 disables)")
	flag.Parse()

	var wg sync.WaitGroup
	start := time.Now()
	stop := make(chan struct{})
	if *reportEvery > 0 {
		go report(*reportEvery, start, stop)
	}
	for c := 0; c < *clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := core.Dial("tcp", *addr)
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			defer cl.Close()
			f, err := cl.Open(fmt.Sprintf("bench/client%04d", c))
			if err != nil {
				log.Fatalf("client %d open: %v", c, err)
			}
			buf := make([]byte, *msg)
			if *reads {
				// Populate, then read back.
				if _, err := f.Write(buf); err != nil {
					log.Fatal(err)
				}
				if err := f.Sync(); err != nil {
					log.Fatal(err)
				}
				for i := 0; i < *iters; i++ {
					if _, err := f.ReadAt(buf, 0); err != nil {
						log.Fatalf("client %d read %d: %v", c, i, err)
					}
					progress.ops.Inc()
					progress.bytes.Add(uint64(*msg))
				}
			} else {
				for i := 0; i < *iters; i++ {
					if _, err := f.Write(buf); err != nil {
						log.Fatalf("client %d write %d: %v", c, i, err)
					}
					progress.ops.Inc()
					progress.bytes.Add(uint64(*msg))
				}
				if err := f.Sync(); err != nil {
					log.Fatalf("client %d sync: %v", c, err)
				}
			}
			if err := f.Close(); err != nil {
				log.Fatalf("client %d close: %v", c, err)
			}
		}()
	}
	wg.Wait()
	close(stop)
	elapsed := time.Since(start)
	total := int64(*clients) * int64(*iters) * int64(*msg)
	op := "writes"
	if *reads {
		op = "reads"
	}
	fmt.Printf("%d clients x %d %s of %d bytes: %.1f MiB/s aggregate (%.2fs)\n",
		*clients, *iters, op, *msg,
		float64(total)/elapsed.Seconds()/(1<<20), elapsed.Seconds())
}
