// Command fwdbench drives a forwarding server (see cmd/fwdd) with the
// paper's memory-to-memory microbenchmark: N client connections each write
// a stream of fixed-size messages, and the aggregate sustained throughput
// is reported.
//
//	fwdbench -addr 127.0.0.1:7070 -clients 32 -msg 1048576 -iters 200
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	clients := flag.Int("clients", 8, "concurrent client connections (compute nodes)")
	msg := flag.Int("msg", 1<<20, "message size in bytes")
	iters := flag.Int("iters", 100, "messages per client")
	reads := flag.Bool("reads", false, "benchmark reads instead of writes")
	flag.Parse()

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := core.Dial("tcp", *addr)
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			defer cl.Close()
			f, err := cl.Open(fmt.Sprintf("bench/client%04d", c))
			if err != nil {
				log.Fatalf("client %d open: %v", c, err)
			}
			buf := make([]byte, *msg)
			if *reads {
				// Populate, then read back.
				if _, err := f.Write(buf); err != nil {
					log.Fatal(err)
				}
				if err := f.Sync(); err != nil {
					log.Fatal(err)
				}
				for i := 0; i < *iters; i++ {
					if _, err := f.ReadAt(buf, 0); err != nil {
						log.Fatalf("client %d read %d: %v", c, i, err)
					}
				}
			} else {
				for i := 0; i < *iters; i++ {
					if _, err := f.Write(buf); err != nil {
						log.Fatalf("client %d write %d: %v", c, i, err)
					}
				}
				if err := f.Sync(); err != nil {
					log.Fatalf("client %d sync: %v", c, err)
				}
			}
			if err := f.Close(); err != nil {
				log.Fatalf("client %d close: %v", c, err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := int64(*clients) * int64(*iters) * int64(*msg)
	op := "writes"
	if *reads {
		op = "reads"
	}
	fmt.Printf("%d clients x %d %s of %d bytes: %.1f MiB/s aggregate (%.2fs)\n",
		*clients, *iters, op, *msg,
		float64(total)/elapsed.Seconds()/(1<<20), elapsed.Seconds())
}
