// Command fwdbench drives a forwarding server (see cmd/fwdd) with the
// paper's memory-to-memory microbenchmark: N client connections each write
// a stream of fixed-size messages, and the aggregate sustained throughput
// is reported.
//
//	fwdbench -addr 127.0.0.1:7070 -clients 32 -msg 1048576 -iters 200
//
// With -report > 0 a periodic stats line (ops, interval and cumulative
// MiB/s) is printed to stderr while the run is in progress.
//
// Fault-tolerance knobs (for chaos runs against a fwdd -fault server):
//
//	fwdbench -deadline 2s -retries 8 -reconnect 8 -drop-every 500ms -metrics :9091
//
// -deadline bounds each op, -retries retries EAGAIN-shed ops with backoff,
// -reconnect enables transport failover with idempotent replay, -drop-every
// injects periodic connection drops on each client, and -metrics serves the
// client-side fault counters (iofwd_retries_total, iofwd_timeouts_total,
// iofwd_reconnects_total, ...) as Prometheus text on /metrics. Per-op I/O
// errors are counted and reported instead of aborting the run.
//
// -nosync skips the final fsync in the write benchmark, so the reported
// number is acknowledged-burst bandwidth rather than drain-inclusive
// throughput — the right measure when the server absorbs bursts into a WAL
// spill tier (fwdd -wal-dir) and drains them in the background.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// progress is the client-side telemetry the periodic reporter reads; the
// worker goroutines bump it after every completed operation.
var progress struct {
	ops         telemetry.Counter
	bytes       telemetry.Counter
	errs        telemetry.Counter
	deferred    telemetry.Counter
	verifyFails telemetry.Counter
}

// statsClient is the fleet representative (client 0) the reporter samples
// for congestion-window and RTT-estimator state.
var statsClient atomic.Pointer[core.Client]

// fillPattern writes client c's iteration i payload: a deterministic byte
// string every reader can recompute, so -readback catches data served from
// the wrong stripe, offset, or replica.
func fillPattern(buf []byte, c, i int) {
	base := int64(c)*1_000_003 + int64(i)*257
	for j := range buf {
		buf[j] = byte(1 + (base+int64(j))%251)
	}
}

// report prints one stats line per interval until stop is closed.
func report(interval time.Duration, start time.Time, stop <-chan struct{}) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var lastBytes, lastOps uint64
	last := start
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			b, o := progress.bytes.Value(), progress.ops.Value()
			dt := now.Sub(last).Seconds()
			var cong string
			if cl := statsClient.Load(); cl != nil {
				if s := cl.Stats(); s.Cwnd > 0 {
					cong = fmt.Sprintf(" cwnd=%-4.1f srtt=%-9v coalesced=%d", s.Cwnd,
						s.SRTT.Round(10*time.Microsecond), s.CoalescedWrites)
				}
			}
			fmt.Fprintf(os.Stderr,
				"t=%5.1fs ops=%-8d +%-6d errs=%-5d %7.1f MiB/s (interval)  %7.1f MiB/s (cumulative)%s\n",
				now.Sub(start).Seconds(), o, o-lastOps, progress.errs.Value(),
				float64(b-lastBytes)/dt/(1<<20),
				float64(b)/now.Sub(start).Seconds()/(1<<20), cong)
			lastBytes, lastOps, last = b, o, now
		}
	}
}

// opDone records one finished operation; typed/deferred errors are counted
// rather than aborting the run, so chaos benchmarks can measure goodput
// under injected faults.
func opDone(size int, err error) {
	if err == nil {
		progress.ops.Inc()
		progress.bytes.Add(uint64(size))
		return
	}
	var de *core.DeferredError
	if errors.As(err, &de) {
		progress.deferred.Inc()
		progress.ops.Inc() // the current op itself was accepted
		progress.bytes.Add(uint64(size))
		return
	}
	progress.errs.Inc()
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	clients := flag.Int("clients", 8, "concurrent client connections (compute nodes)")
	msg := flag.Int("msg", 1<<20, "message size in bytes")
	iters := flag.Int("iters", 100, "messages per client")
	reads := flag.Bool("reads", false, "benchmark reads instead of writes")
	readback := flag.Bool("readback", false, "verify mode: write per-iteration patterned payloads, read every one back, and compare byte-for-byte (exit 1 on any mismatch)")
	reportEvery := flag.Duration("report", time.Second, "periodic stats-line interval on stderr (0 disables)")
	deadline := flag.Duration("deadline", 0, "per-operation deadline (0 disables)")
	retries := flag.Int("retries", 0, "max retries of EAGAIN-shed operations, with backoff")
	reconnect := flag.Int("reconnect", 0, "max redial attempts per connection outage (0 disables failover)")
	dropEvery := flag.Duration("drop-every", 0, "inject a connection drop on every client at this interval (chaos; needs -reconnect)")
	seed := flag.Int64("seed", 1, "jitter/backoff RNG seed (reproducible chaos runs)")
	window := flag.Int("window", 0, "adaptive AIMD in-flight window ceiling per client (0 disables congestion control)")
	coalesce := flag.Bool("coalesce", false, "merge adjacent positional writes into single wire ops when the window is full (needs -window)")
	linger := flag.Duration("linger", 0, "coalescing linger: how long an open merge buffer waits for neighbors (0 takes the library default)")
	noSync := flag.Bool("nosync", false, "skip the final fsync after the write loop, so the reported number is pure acknowledged-burst bandwidth (what a WAL spill tier absorbs) instead of drain-inclusive throughput")
	metricsAddr := flag.String("metrics", "", "serve client-side fault counters on this address (/metrics, /statz); empty disables")
	jsonOut := flag.String("json", "", "also write the final summary as JSON to this path (two-arm comparison scripts diff these instead of scraping stdout)")
	flag.Parse()

	reg := telemetry.NewRegistry()
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/statz", reg.StatzHandler())
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("fwdbench: metrics listener: %v", err)
		}
		log.Printf("fwdbench: serving client /metrics on %s", ml.Addr())
		go func() { _ = http.Serve(ml, mux) }()
	}

	var wg sync.WaitGroup
	start := time.Now()
	stop := make(chan struct{})
	if *reportEvery > 0 {
		go report(*reportEvery, start, stop)
	}
	base := core.ClientConfig{
		Timeout:           *deadline,
		MaxRetries:        *retries,
		ReconnectAttempts: *reconnect,
		Window:            core.WindowConfig{Max: *window},
	}
	if *coalesce {
		if *window <= 0 {
			log.Fatal("fwdbench: -coalesce needs -window > 0 (merging keys off a full window)")
		}
		// Size the merge buffer to hold several messages, so coalescing has
		// something to merge even at large -msg sizes.
		cb := core.DefaultCoalesceBytes
		if m := 8 * *msg; m > cb {
			cb = m
		}
		if cb > core.MaxPayload {
			cb = core.MaxPayload
		}
		base.Coalesce = core.CoalesceConfig{MaxBytes: cb, Linger: *linger}
	}
	if err := base.Validate(); err != nil {
		log.Fatalf("fwdbench: %v", err)
	}
	ctx := context.Background()
	for c := 0; c < *clients; c++ {
		c := c
		cfg := base
		cfg.Seed = *seed + int64(c)
		if c == 0 {
			// One client carries the registry: registered once, sampled as
			// a representative of the fleet.
			cfg.Metrics = reg
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := cfg.Dial(ctx, "tcp", *addr)
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			defer cl.Close()
			if c == 0 {
				statsClient.Store(cl)
			}
			if *dropEvery > 0 {
				chaosStop := make(chan struct{})
				defer close(chaosStop)
				go func() {
					tick := time.NewTicker(*dropEvery)
					defer tick.Stop()
					for {
						select {
						case <-chaosStop:
							return
						case <-tick.C:
							cl.DropConnection()
						}
					}
				}()
			}
			f, err := cl.Open(ctx, fmt.Sprintf("bench/client%04d", c))
			if err != nil {
				log.Printf("client %d open: %v", c, err)
				progress.errs.Inc()
				return
			}
			buf := make([]byte, *msg)
			if *readback {
				// Verify mode: positional patterned writes, then full
				// readback with byte comparison. Data corruption (wrong
				// stripe, stale replica) is invisible to a throughput
				// run; this mode makes it a counted, fatal result.
				for i := 0; i < *iters; i++ {
					fillPattern(buf, c, i)
					_, err := f.WriteAt(buf, int64(i)*int64(*msg))
					opDone(*msg, err)
				}
				if err := f.Sync(); err != nil {
					opDone(0, err)
				}
				got := make([]byte, *msg)
				want := make([]byte, *msg)
				for i := 0; i < *iters; i++ {
					n, err := f.ReadAt(got, int64(i)*int64(*msg))
					opDone(*msg, err)
					if err != nil {
						continue
					}
					fillPattern(want, c, i)
					if n != *msg || !bytes.Equal(got[:n], want) {
						progress.verifyFails.Inc()
						log.Printf("client %d iter %d: readback mismatch (%d bytes)", c, i, n)
					}
				}
			} else if *reads {
				// Populate, then read back.
				if _, err := f.WriteAt(buf, 0); err != nil {
					opDone(0, err)
				}
				if err := f.Sync(); err != nil {
					opDone(0, err)
				}
				for i := 0; i < *iters; i++ {
					_, err := f.ReadAt(buf, 0)
					opDone(*msg, err)
				}
			} else {
				for i := 0; i < *iters; i++ {
					// With failover enabled, use positional writes: they
					// are idempotent and survive connection drops via
					// replay. Otherwise keep the paper's cursor writes.
					var err error
					if *reconnect > 0 {
						_, err = f.WriteAt(buf, int64(i)*int64(*msg))
					} else {
						_, err = f.Write(buf)
					}
					opDone(*msg, err)
				}
				if !*noSync {
					if err := f.Sync(); err != nil {
						opDone(0, err)
					}
				}
			}
			if err := f.Close(); err != nil {
				opDone(0, err)
			}
		}()
	}
	wg.Wait()
	close(stop)
	elapsed := time.Since(start)
	total := int64(progress.bytes.Value())
	op := "writes"
	if *readback {
		op = "write+verify rounds"
	} else if *reads {
		op = "reads"
	}
	fmt.Printf("%d clients x %d %s of %d bytes: %.1f MiB/s aggregate (%.2fs), %d ok, %d errors, %d deferred\n",
		*clients, *iters, op, *msg,
		float64(total)/elapsed.Seconds()/(1<<20), elapsed.Seconds(),
		progress.ops.Value(), progress.errs.Value(), progress.deferred.Value())
	if cl := statsClient.Load(); cl != nil {
		if s := cl.Stats(); s.Cwnd > 0 {
			fmt.Printf("congestion (client 0): cwnd=%.1f srtt=%v rttvar=%v decreases=%d retries=%d coalesced=%d\n",
				s.Cwnd, s.SRTT.Round(10*time.Microsecond), s.RTTVar.Round(10*time.Microsecond),
				s.CwndDecreases, s.Retries, s.CoalescedWrites)
		}
	}
	if *jsonOut != "" {
		doc := map[string]any{
			"clients":    *clients,
			"iters":      *iters,
			"msg_bytes":  *msg,
			"op":         op,
			"mib_s":      float64(total) / elapsed.Seconds() / (1 << 20),
			"elapsed_s":  elapsed.Seconds(),
			"ok":         progress.ops.Value(),
			"errors":     progress.errs.Value(),
			"deferred":   progress.deferred.Value(),
			"nosync":     *noSync,
			"total_byte": total,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatalf("fwdbench: marshal summary: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("fwdbench: write %s: %v", *jsonOut, err)
		}
	}
	if *readback {
		fails := progress.verifyFails.Value()
		fmt.Printf("readback: %d mismatches\n", fails)
		if fails > 0 || progress.errs.Value() > 0 {
			os.Exit(1)
		}
	}
}
