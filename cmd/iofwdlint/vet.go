package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"repro/internal/analysis"
)

// vetConfig is the per-package JSON config the go vet driver writes for
// -vettool binaries (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetMode analyzes one package described by a vet .cfg file: parse its
// GoFiles, type-check against the export data the go command already
// compiled, run the suite, print findings. The facts output file must be
// created even though the suite exchanges no facts — the driver checks for
// it.
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "iofwdlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Scope early: skip type-checking packages no analyzer cares about.
	anyInScope := false
	for _, a := range analysis.Analyzers() {
		if a.Scope == nil || a.Scope(cfg.ImportPath) {
			anyInScope = true
			break
		}
	}
	if !anyInScope {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tconf := types.Config{
		Importer: importMapper{imp: imp, importMap: cfg.ImportMap},
		Error:    func(error) {},
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil && cfg.SucceedOnTypecheckFailure {
		return 0
	}

	findings := analysis.RunSingle(cfg.ImportPath, files, pkg, info, fset)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// importMapper applies the vet config's ImportMap (vendored std paths)
// before delegating to the export-data importer.
type importMapper struct {
	imp       types.Importer
	importMap map[string]string
}

func (m importMapper) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.imp.Import(path)
}
