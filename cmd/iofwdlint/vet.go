package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// vetConfig is the per-package JSON config the go vet driver writes for
// -vettool binaries (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// modulePath gates which packages the vet driver fully analyzes. Std and
// third-party packages get an empty .vetx and no analysis — the suite's
// facts only describe this module's objects.
const modulePath = "repro"

func isModulePackage(importPath string) bool {
	return importPath == modulePath || strings.HasPrefix(importPath, modulePath+"/")
}

// vetMode analyzes one package described by a vet .cfg file: parse its
// GoFiles, type-check against the export data the go command already
// compiled, seed the fact store from the dependencies' .vetx files
// (PackageVetx), run the suite, write the accumulated facts to VetxOutput,
// and print findings. Each .vetx carries the full transitive fact closure
// known after its package's analysis, so facts cross any number of import
// hops even though go vet only names direct imports in PackageVetx.
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "iofwdlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Non-module packages carry no iofwdlint facts and get no diagnostics:
	// write an empty .vetx (the driver checks for it) and stop.
	if !isModulePackage(cfg.ImportPath) {
		return writeVetx(cfg.VetxOutput, analysis.NewFacts())
	}

	facts := analysis.NewFacts()
	if code := readDepFacts(&cfg, facts); code != 0 {
		return code
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg.VetxOutput, facts)
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tconf := types.Config{
		Importer: importMapper{imp: imp, importMap: cfg.ImportMap},
		Error:    func(error) {},
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil && cfg.SucceedOnTypecheckFailure {
		return writeVetx(cfg.VetxOutput, facts)
	}

	// VetxOnly: the go command wants this package's facts for a downstream
	// target, not its diagnostics. The suite still runs fact-declaring
	// analyzers in full; reporting is suppressed inside RunSingle.
	findings := analysis.RunSingle(cfg.ImportPath, files, pkg, info, fset, facts, cfg.VetxOnly)
	if code := writeVetx(cfg.VetxOutput, facts); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// readDepFacts merges the dependencies' .vetx files into facts, in sorted
// import-path order for determinism. A missing or corrupt file is a hard
// driver error — silently dropping facts would make go vet report fewer
// findings than the standalone driver with no indication why.
func readDepFacts(cfg *vetConfig, facts *analysis.Facts) int {
	paths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			fmt.Fprintf(os.Stderr, "iofwdlint: missing facts for dependency %q: %v (stale go vet build cache? try go clean -cache)\n", path, err)
			return 1
		}
		if err := facts.DecodeVetx(data); err != nil {
			fmt.Fprintf(os.Stderr, "iofwdlint: reading facts for dependency %q from %s: %v\n", path, cfg.PackageVetx[path], err)
			return 1
		}
	}
	return 0
}

// writeVetx persists the fact store to path. The go command requires the
// file to exist even when empty.
func writeVetx(path string, facts *analysis.Facts) int {
	if path == "" {
		return 0
	}
	data, err := facts.EncodeVetx()
	if err != nil {
		fmt.Fprintf(os.Stderr, "iofwdlint: encoding facts: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// importMapper applies the vet config's ImportMap (vendored std paths)
// before delegating to the export-data importer.
type importMapper struct {
	imp       types.Importer
	importMap map[string]string
}

func (m importMapper) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.imp.Import(path)
}
