package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// writeCfg marshals a vetConfig into dir and returns its path.
func writeCfg(t *testing.T, dir string, cfg vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestVetModeMissingVetx: a dependency .vetx named by the config but absent
// on disk (a stale or manually cleaned go build cache) must be a hard,
// explained driver error — not a silent run with fewer facts that would
// make go vet under-report relative to the standalone driver.
func TestVetModeMissingVetx(t *testing.T) {
	dir := t.TempDir()
	cfg := writeCfg(t, dir, vetConfig{
		ImportPath:  "repro/internal/core",
		PackageVetx: map[string]string{"repro/internal/telemetry": filepath.Join(dir, "no-such.vetx")},
		VetxOutput:  filepath.Join(dir, "out.vetx"),
	})
	if rc := vetMode(cfg); rc != 1 {
		t.Fatalf("vetMode with missing dependency vetx = %d, want 1", rc)
	}
	if _, err := os.Stat(filepath.Join(dir, "out.vetx")); err == nil {
		t.Error("driver wrote a vetx output despite failing to load dependency facts")
	}
}

// TestVetModeCorruptVetx: garbage in a dependency .vetx degrades to a clear
// decode error, not a crash or a silent fact drop.
func TestVetModeCorruptVetx(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.vetx")
	if err := os.WriteFile(bad, []byte("not a vetx stream"), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := writeCfg(t, dir, vetConfig{
		ImportPath:  "repro/internal/core",
		PackageVetx: map[string]string{"repro/internal/telemetry": bad},
	})
	if rc := vetMode(cfg); rc != 1 {
		t.Fatalf("vetMode with corrupt dependency vetx = %d, want 1", rc)
	}
}

// TestVetModeNonModulePackage: std and third-party packages are skipped
// with an empty (but present) vetx — the go command requires the file.
func TestVetModeNonModulePackage(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fmt.vetx")
	cfg := writeCfg(t, dir, vetConfig{ImportPath: "fmt", VetxOutput: out})
	if rc := vetMode(cfg); rc != 0 {
		t.Fatalf("vetMode on std package = %d, want 0", rc)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("vetx output not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "iofwdlint.vetx") {
		t.Errorf("vetx output %q does not carry the iofwdlint magic", data)
	}
}

var findingLineRE = regexp.MustCompile(`\.go:\d+:\d+: `)

// TestDriverParity is the acceptance gate for the fact subsystem: the
// standalone driver and go vet -vettool must report the identical findings
// on the seeded cross-package fixture (a metricname kind conflict and an
// errnofact violation spanning two packages).
func TestDriverParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "iofwdlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/iofwdlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building iofwdlint: %v\n%s", err, out)
	}

	const pattern = "./internal/analysis/testdata/src/factparity/..."

	standalone := exec.Command(bin, pattern)
	standalone.Dir = root
	saOut, _ := standalone.CombinedOutput()
	saLines := findingLines(root, string(saOut))

	vet := exec.Command("go", "vet", "-vettool="+bin, pattern)
	vet.Dir = root
	vetOut, _ := vet.CombinedOutput()
	vetLines := findingLines(root, string(vetOut))

	if len(saLines) == 0 {
		t.Fatalf("standalone driver found nothing on the seeded fixture:\n%s", saOut)
	}
	if strings.Join(saLines, "\n") != strings.Join(vetLines, "\n") {
		t.Errorf("drivers disagree\nstandalone:\n  %s\ngo vet:\n  %s",
			strings.Join(saLines, "\n  "), strings.Join(vetLines, "\n  "))
	}
	joined := strings.Join(saLines, "\n")
	for _, want := range []string{
		"metricname: metric \"iofwd_parity_ops_ns\" registered as gauge here but as histogram",
		"errnofact: returns the error from a.Fetch",
		"errnofact: errors.New on a core error path",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("seeded finding missing from both drivers: %q\ngot:\n%s", want, joined)
		}
	}
}

// findingLines extracts diagnostic lines from driver output and normalizes
// file paths to be root-relative, so the standalone driver's absolute
// positions compare equal to go vet's relative ones.
func findingLines(root, out string) []string {
	var lines []string
	for _, line := range strings.Split(out, "\n") {
		if !findingLineRE.MatchString(line) {
			continue
		}
		line = strings.TrimPrefix(line, root+string(filepath.Separator))
		lines = append(lines, line)
	}
	sort.Strings(lines)
	return lines
}

// TestVetSurfacesSiblingConflict: the documented vet-model gap was that two
// sibling packages (no import edge) registering one metric family under
// different kinds were invisible under go vet — each sees only its import
// closure's facts. The pairwise dependency check closes the gap from their
// common importer; this test requires the conflict line under BOTH drivers.
// The at-sibling report itself stays standalone-only (whole-repo store),
// which is the residual asymmetry documented in DESIGN.md §9.
func TestVetSurfacesSiblingConflict(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "iofwdlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/iofwdlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building iofwdlint: %v\n%s", err, out)
	}

	const pattern = "./internal/analysis/testdata/src/sibconflict/..."
	const conflict = `metric "iofwd_sib_flux_bytes" registered as gauge in`

	vet := exec.Command("go", "vet", "-vettool="+bin, pattern)
	vet.Dir = root
	vetOut, _ := vet.CombinedOutput()
	vetLines := findingLines(root, string(vetOut))
	joinedVet := strings.Join(vetLines, "\n")
	if !strings.Contains(joinedVet, "sibroot.go") || !strings.Contains(joinedVet, conflict) {
		t.Errorf("go vet did not surface the sibling conflict at the common importer:\n%s", vetOut)
	}

	standalone := exec.Command(bin, pattern)
	standalone.Dir = root
	saOut, _ := standalone.CombinedOutput()
	joinedSa := strings.Join(findingLines(root, string(saOut)), "\n")
	if !strings.Contains(joinedSa, conflict) {
		t.Errorf("standalone driver lost the common-importer report:\n%s", saOut)
	}
	if !strings.Contains(joinedSa, "registered as histogram here but as gauge in") {
		t.Errorf("standalone driver lost the at-sibling report:\n%s", saOut)
	}
}
