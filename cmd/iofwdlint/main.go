// Command iofwdlint runs the repository's custom static analyzers (see
// internal/analysis) over Go packages. It mechanically enforces the
// invariants the forwarding stack's correctness rests on: sim determinism
// (simclock), no blocking under locks (lockhold), metric naming
// (metricname), wire-error classification (errnofact), opcode
// exhaustiveness (opexhaustive), and trace/label formatting discipline
// (tracefmt). metricname and errnofact exchange cross-package facts;
// under go vet those flow through per-package .vetx files, so both
// drivers report the same cross-package findings.
//
// Standalone:
//
//	go run ./cmd/iofwdlint ./...
//
// As a vet tool (unitchecker protocol — go vet type-checks each package
// with export data and hands this binary a .cfg file per package):
//
//	go build -o /tmp/iofwdlint ./cmd/iofwdlint
//	go vet -vettool=/tmp/iofwdlint ./...
//
// Diagnostics are suppressed by `//lint:allow <analyzer> <reason>` on the
// offending line or the line above; the reason is mandatory.
//
// Exit status: 0 clean, 1 usage/load error, 2 diagnostics found.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func main() {
	// The go vet driver probes the tool's identity with -V=full and its
	// flag set with -flags (a JSON array of flag descriptors; we expose
	// none) before handing it package configs.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		// The go command keys its vet result cache (including the .vetx
		// fact files) on the trailing buildID= field, so print a content
		// hash of this executable: unchanged tool -> cache hits, rebuilt
		// tool -> full re-vet. Falling back to "do-not-cache" on error
		// disables caching rather than serving stale results.
		//lint:allow tracefmt buildID= is the go command's required field name, not a trace key
		fmt.Printf("iofwdlint version devel buildID=%s\n", toolBuildID())
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}

	listOnly := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: iofwdlint [packages]   (default ./...)\n\nanalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-13s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *listOnly {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetMode(args[0]))
	}
	os.Exit(standalone(args))
}

// toolBuildID hashes the running executable so go vet's cache key tracks
// the tool's actual contents.
func toolBuildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "do-not-cache"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "do-not-cache"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "do-not-cache"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkgs, fset, err := load.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The full deps-first package list (not just the targets) goes to the
	// runner: module-local dependencies are analyzed facts-only so targets
	// see their facts, mirroring what go vet provides through .vetx files.
	findings := analysis.Run(pkgs, fset, analysis.Analyzers(), analysis.Options{})
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "iofwdlint: %d finding(s)\n", len(findings))
		return 2
	}
	return 0
}
